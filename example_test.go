package aceso_test

import (
	"fmt"
	"time"

	"aceso"
)

// ExampleSearch searches a parallel configuration for GPT-3 350M on
// four simulated V100s and reports whether the result fits in memory.
func ExampleSearch() {
	g, err := aceso.GPT3("350M")
	if err != nil {
		panic(err)
	}
	cl := aceso.DGX1V100(1).Restrict(4)
	res, err := aceso.Search(g, cl, aceso.Options{
		TimeBudget: 500 * time.Millisecond,
		Seed:       1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("feasible:", res.Best.Estimate.Feasible)
	fmt.Println("within memory:", res.Best.Estimate.PeakMem <= cl.MemoryBytes)
	// Output:
	// feasible: true
	// within memory: true
}

// ExampleSimulate executes a manual 2-stage configuration in the
// discrete-event 1F1B runtime simulator.
func ExampleSimulate() {
	g, err := aceso.GPT3("350M")
	if err != nil {
		panic(err)
	}
	cl := aceso.DGX1V100(1).Restrict(4)
	cfg, err := aceso.Balanced(g, 4, 2, 1)
	if err != nil {
		panic(err)
	}
	sim, err := aceso.Simulate(g, cl, cfg, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("trained an iteration:", sim.IterTime > 0)
	fmt.Println("OOM:", sim.OOM)
	// Output:
	// trained an iteration: true
	// OOM: false
}

// ExampleEstimateConfig predicts iteration time and memory for a
// configuration without executing it.
func ExampleEstimateConfig() {
	g, err := aceso.GPT3("350M")
	if err != nil {
		panic(err)
	}
	cl := aceso.DGX1V100(1).Restrict(4)
	cfg, err := aceso.Balanced(g, 4, 4, 1)
	if err != nil {
		panic(err)
	}
	est := aceso.EstimateConfig(g, cl, cfg, 1)
	fmt.Println("stages:", len(est.Stages))
	fmt.Println("positive time:", est.IterTime > 0)
	// Output:
	// stages: 4
	// positive time: true
}
