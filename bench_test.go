// Benchmarks regenerating the paper's evaluation artifacts, one per
// table or figure (see DESIGN.md §4 for the mapping and EXPERIMENTS.md
// for paper-vs-measured results). Each benchmark runs a scaled-down
// version of the corresponding experiment (short search budgets, the
// first two of the five model sizes) and reports the figure's headline
// quantity as a custom metric, e.g.
//
//	go test -bench=Fig7 -benchmem
//
// reports Aceso's speedup over the best baseline. cmd/acesobench runs
// the full-scale versions.
package aceso

import (
	"io"
	"testing"
	"time"

	"aceso/internal/exps"
	"aceso/internal/pipesim"
)

// benchSettings keeps benchmark iterations short; cmd/acesobench runs
// the full-size experiments.
func benchSettings() exps.Settings {
	return exps.Settings{Budget: 300 * time.Millisecond, Seed: 1, Sizes: 2}
}

func BenchmarkFig1ConfigSpace(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows := exps.Fig1(nil)
		last = rows[len(rows)-1].Log10Four
	}
	b.ReportMetric(last, "log10-configs-1Klayer")
}

// benchFig7 runs the end-to-end comparison for one family and reports
// Aceso's mean speedup over the best baseline.
func benchFig7(b *testing.B, family string) {
	b.Helper()
	var speedup float64
	for i := 0; i < b.N; i++ {
		e, err := exps.RunE2E(benchSettings(), []string{family})
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		n := 0
		for _, c := range e.Cells {
			base := c.MegatronIter
			if c.AlpaIter > 0 && (base == 0 || c.AlpaIter < base) {
				base = c.AlpaIter
			}
			if base > 0 && c.AcesoIter > 0 {
				sum += base / c.AcesoIter
				n++
			}
		}
		if n > 0 {
			speedup = sum / float64(n)
		}
	}
	b.ReportMetric(speedup, "aceso-speedup")
}

func BenchmarkFig7_GPT3(b *testing.B)       { benchFig7(b, "gpt3") }
func BenchmarkFig7_WideResNet(b *testing.B) { benchFig7(b, "wresnet") }
func BenchmarkFig7_T5(b *testing.B)         { benchFig7(b, "t5") }

func BenchmarkFig8SearchCost(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		e, err := exps.RunE2E(benchSettings(), []string{"gpt3"})
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		n := 0
		for _, c := range e.Cells {
			if c.AlpaSearch > 0 && c.AcesoSearch > 0 {
				sum += c.AcesoSearch / c.AlpaSearch
				n++
			}
		}
		if n > 0 {
			ratio = sum / float64(n)
		}
	}
	b.ReportMetric(100*ratio, "aceso-%-of-alpa-cost")
}

func BenchmarkFig9Scale1K(b *testing.B) {
	var acesoSearch float64
	for i := 0; i < b.N; i++ {
		rows, err := exps.Fig9(benchSettings(), []int{8, 64, 128, 256})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Layers == 256 {
				acesoSearch = r.AcesoSearch
				if !r.AlpaFailed {
					b.Fatal("Alpa baseline should fail beyond 64 layers")
				}
			}
		}
	}
	b.ReportMetric(acesoSearch, "aceso-search-s-256layers")
}

func BenchmarkFig10DPvsAceso(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := exps.Fig10(benchSettings())
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0] // GPT-3 2.6B
		if r.DPExplored > 0 {
			ratio = 100 * float64(r.AcesoExplored) / float64(r.DPExplored)
		}
	}
	b.ReportMetric(ratio, "aceso-%-of-dp-explored")
}

func BenchmarkFig11Heuristics(b *testing.B) {
	var firstTry float64
	for i := 0; i < b.N; i++ {
		r, err := exps.Fig11(benchSettings())
		if err != nil {
			b.Fatal(err)
		}
		firstTry = 100 * r.FirstTryRate()
	}
	b.ReportMetric(firstTry, "first-try-bottleneck-%")
}

func BenchmarkFig12Heuristic2(b *testing.B) {
	var curves int
	for i := 0; i < b.N; i++ {
		m, err := exps.Fig12(benchSettings())
		if err != nil {
			b.Fatal(err)
		}
		for _, cs := range m {
			curves += len(cs)
		}
	}
	b.ReportMetric(float64(curves)/float64(b.N), "curves")
}

func BenchmarkFig13MaxHops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exps.Fig13(benchSettings()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14InitRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exps.Fig14(benchSettings()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15TimeAccuracy(b *testing.B) {
	var avgErr float64
	for i := 0; i < b.N; i++ {
		e, err := exps.RunE2E(benchSettings(), []string{"gpt3"})
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		n := 0
		for _, c := range e.Cells {
			if c.ActualTime > 0 {
				d := (c.PredTime - c.ActualTime) / c.ActualTime
				if d < 0 {
					d = -d
				}
				sum += d
				n++
			}
		}
		if n > 0 {
			avgErr = 100 * sum / float64(n)
		}
	}
	b.ReportMetric(avgErr, "time-prediction-error-%")
}

func BenchmarkFig16MemAccuracy(b *testing.B) {
	var avgErr float64
	for i := 0; i < b.N; i++ {
		e, err := exps.RunE2E(benchSettings(), []string{"gpt3"})
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		n := 0
		for _, c := range e.Cells {
			if c.ActualMem > 0 {
				d := (c.PredMem - c.ActualMem) / c.ActualMem
				if d < 0 {
					d = -d
				}
				sum += d
				n++
			}
		}
		if n > 0 {
			avgErr = 100 * sum / float64(n)
		}
	}
	b.ReportMetric(avgErr, "mem-prediction-error-%")
}

func BenchmarkTables3to5TFLOPS(b *testing.B) {
	var tf float64
	for i := 0; i < b.N; i++ {
		e, err := exps.RunE2E(benchSettings(), []string{"gpt3"})
		if err != nil {
			b.Fatal(err)
		}
		e.RenderTables(io.Discard)
		tf = e.Cells[len(e.Cells)-1].AcesoTF
	}
	b.ReportMetric(tf, "aceso-tflops-per-gpu")
}

// BenchmarkSearchThroughput measures raw search speed on the paper's
// GPT-3 2.6B / 16-GPU setting. The search is iteration-bounded rather
// than time-bounded so ns/op tracks the machinery's cost per fixed
// amount of exploration: a faster hot path means more configurations
// per fixed TimeBudget in real searches (Algorithm 1 explores until
// the deadline, so configs/second is search quality).
func BenchmarkSearchThroughput(b *testing.B) {
	g, err := GPT3("2.6B")
	if err != nil {
		b.Fatal(err)
	}
	cl := DGX1V100(2) // 16 V100s
	var explored int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Search(g, cl, Options{
			TimeBudget:    time.Hour, // never expires; MaxIterations bounds the run
			MaxIterations: 4,
			Seed:          1,
		})
		if err != nil {
			b.Fatal(err)
		}
		explored = res.Explored
	}
	b.ReportMetric(float64(explored), "explored")
}

// BenchmarkEstimate measures the performance model's evaluation rate —
// the inner loop of everything.
func BenchmarkEstimate(b *testing.B) {
	g, err := GPT3("2.6B")
	if err != nil {
		b.Fatal(err)
	}
	cl := DGX1V100(1)
	pm := NewPerfModel(g, cl, 1)
	cfg, err := Balanced(g, 8, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if est := pm.Estimate(cfg); !est.Feasible && est.IterTime <= 0 {
			b.Fatal("bad estimate")
		}
	}
}

// BenchmarkEstimateNeighbor measures the search's actual inner step:
// clone a configuration, flip one op's recompute flag through the
// invalidation helpers, and re-estimate. With the memoized hashes and
// the stage-level cache only the mutated stage is re-evaluated; the
// other stages are cache hits.
func BenchmarkEstimateNeighbor(b *testing.B) {
	g, err := GPT3("2.6B")
	if err != nil {
		b.Fatal(err)
	}
	cl := DGX1V100(1)
	pm := NewPerfModel(g, cl, 1)
	cfg, err := Balanced(g, 8, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	pm.Estimate(cfg) // warm the stage cache for the base config
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := cfg.Clone()
		st := i % n.NumStages()
		n.MutOp(st, n.Stages[st].Start, func(op *OpSetting) { op.Recompute = !op.Recompute })
		if est := pm.Estimate(n); !est.Feasible && est.IterTime <= 0 {
			b.Fatal("bad estimate")
		}
	}
}

// BenchmarkSimulate measures the discrete-event runtime simulator.
func BenchmarkSimulate(b *testing.B) {
	g, err := GPT3("1.3B")
	if err != nil {
		b.Fatal(err)
	}
	cl := DGX1V100(1).Restrict(4)
	pm := NewPerfModel(g, cl, 1)
	cfg, err := Balanced(g, 4, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(g, cl, cfg, 1); err != nil {
			b.Fatal(err)
		}
	}
	_ = pm
}

// --- Ablation benches for DESIGN.md's called-out design choices ---

// benchAblation runs a fixed-budget search with mutated options and
// reports the best estimated iteration time.
func benchAblation(b *testing.B, mut func(*Options)) {
	g, err := GPT3("1.3B")
	if err != nil {
		b.Fatal(err)
	}
	cl := DGX1V100(1).Restrict(4)
	var best float64
	for i := 0; i < b.N; i++ {
		opts := Options{TimeBudget: 400 * time.Millisecond, Seed: 1, StageCounts: []int{1, 2, 4}}
		if mut != nil {
			mut(&opts)
		}
		res, err := Search(g, cl, opts)
		if err != nil {
			b.Fatal(err)
		}
		best = res.Best.Score
	}
	b.ReportMetric(best, "best-iter-s")
}

func BenchmarkAblationBaseline(b *testing.B) { benchAblation(b, nil) }

func BenchmarkAblationBranchFactor1(b *testing.B) {
	benchAblation(b, func(o *Options) { o.BranchFactor = 1 })
}

func BenchmarkAblationBranchFactor6(b *testing.B) {
	benchAblation(b, func(o *Options) { o.BranchFactor = 6 })
}

func BenchmarkAblationNoFineTune(b *testing.B) {
	benchAblation(b, func(o *Options) { o.DisableFineTune = true })
}

func BenchmarkAblationNoHeuristic2(b *testing.B) {
	benchAblation(b, func(o *Options) { o.DisableHeuristic2 = true })
}

// BenchmarkAblationGPipeVs1F1B quantifies why the memory model assumes
// 1F1B (Eq. 1): GPipe scheduling stashes every microbatch.
func BenchmarkAblationGPipeVs1F1B(b *testing.B) {
	g, err := GPT3("350M")
	if err != nil {
		b.Fatal(err)
	}
	cl := DGX1V100(1)
	pm := NewPerfModel(g, cl, 1)
	cfg, err := Balanced(g, 8, 4, 8)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		one, err := pipesim.Simulate(pm, cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		gp, err := pipesim.SimulateSchedule(pm, cfg, 1, pipesim.GPipe)
		if err != nil {
			b.Fatal(err)
		}
		ratio = gp.PeakMem / one.PeakMem
	}
	b.ReportMetric(ratio, "gpipe-mem-ratio")
}

// BenchmarkAblationExtendedPrimitives measures the effect of adding
// the ZeRO extension primitives to the searched space on a
// parameter-heavy workload.
func BenchmarkAblationExtendedPrimitives(b *testing.B) {
	benchAblation(b, func(o *Options) { o.ExtendedPrimitives = true })
}
