package aceso

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestPublicAPIRoundTrip exercises the facade the way a downstream
// user would: build a model, search, inspect, estimate, simulate.
func TestPublicAPIRoundTrip(t *testing.T) {
	g, err := GPT3("350M")
	if err != nil {
		t.Fatal(err)
	}
	cl := DGX1V100(1).Restrict(4)
	res, err := Search(g, cl, Options{TimeBudget: 500 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := res.Best.Config
	if !res.Best.Estimate.Feasible {
		t.Fatal("infeasible best config")
	}
	if !strings.Contains(cfg.String(), "mbs=") {
		t.Errorf("Config.String() = %q", cfg.String())
	}

	est := EstimateConfig(g, cl, cfg, 1)
	if est.IterTime <= 0 {
		t.Fatalf("estimate: %+v", est)
	}
	sim, err := Simulate(g, cl, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sim.OOM {
		t.Error("search result OOMs in the simulator")
	}
	// The estimate and the simulation must agree within a small factor.
	ratio := est.IterTime / sim.IterTime
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("prediction %.3f vs simulation %.3f: ratio %.2f out of range",
			est.IterTime, sim.IterTime, ratio)
	}
}

func TestPublicModelBuilders(t *testing.T) {
	if _, err := T5("3B"); err != nil {
		t.Error(err)
	}
	if _, err := WideResNet("2B"); err != nil {
		t.Error(err)
	}
	if _, err := DeepTransformer(16); err != nil {
		t.Error(err)
	}
	if _, err := GPT3("nope"); err == nil {
		t.Error("bad size accepted")
	}
}

func TestPublicInitializers(t *testing.T) {
	g, err := GPT3("350M")
	if err != nil {
		t.Fatal(err)
	}
	for _, init := range []Initializer{Balanced, ImbalancedOps, ImbalancedGPUs} {
		cfg, err := init(g, 8, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(g, 8); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPrecisionConstants(t *testing.T) {
	g, _ := GPT3("350M")
	if g.Precision != FP16 {
		t.Error("GPT-3 should be FP16")
	}
	w, _ := WideResNet("0.5B")
	if w.Precision != FP32 {
		t.Error("Wide-ResNet should be FP32")
	}
}

func TestNewPerfModelSharing(t *testing.T) {
	g, _ := GPT3("350M")
	cl := DGX1V100(1).Restrict(4)
	pm := NewPerfModel(g, cl, 7)
	cfg, err := Balanced(g, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := pm.Estimate(cfg).IterTime
	b := pm.Estimate(cfg).IterTime
	if a != b {
		t.Error("shared performance model not deterministic")
	}
	// The same model can back a search (shared profiling database).
	res, err := Search(g, cl, Options{
		TimeBudget: 300 * time.Millisecond, Seed: 7, Model: pm,
		StageCounts: []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Score <= 0 {
		t.Error("search with shared model failed")
	}
}

func TestPublicElasticAPI(t *testing.T) {
	g, err := GPT3("350M")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Balanced(g, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := ProjectConfig(g, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := proj.Validate(g, 4); err != nil {
		t.Fatal(err)
	}
	init := WarmStart(cfg)
	warm, err := init(g, 4, proj.NumStages(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if warm.TotalDevices() != 4 {
		t.Errorf("warm start devices = %d", warm.TotalDevices())
	}
}

func TestPublicLlama(t *testing.T) {
	g, err := Llama("8B")
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalParams() < 6e9 {
		t.Errorf("Llama 8B params = %.3g", g.TotalParams())
	}
}

// TestPublicFaultToleranceAPI exercises SearchContext, Degrade and
// Replan through the facade: plan on a healthy cluster, wound it,
// replan around the straggler.
func TestPublicFaultToleranceAPI(t *testing.T) {
	g, err := GPT3("350M")
	if err != nil {
		t.Fatal(err)
	}
	cl := DGX1V100(1).Restrict(4)
	opts := Options{TimeBudget: 30 * time.Second, MaxIterations: 3, Seed: 1}
	base, err := SearchContext(context.Background(), g, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	faults := FaultSpec{Devices: []DeviceFault{{Device: 1, FLOPSScale: 0.5, MemScale: 1}}}
	deg, err := Degrade(cl, faults)
	if err != nil {
		t.Fatal(err)
	}
	if deg.TotalDevices() != 4 {
		t.Fatalf("derated (not dead) device changed the count: %d", deg.TotalDevices())
	}
	res, err := Replan(context.Background(), g, cl, faults, base.Best.Config, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Config == nil || !res.Best.Estimate.Feasible {
		t.Fatalf("replan produced no feasible plan: %+v", res.Best)
	}
	// Cancellation through the facade keeps the partial-result contract.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	part, err := SearchContext(ctx, g, cl, Options{TimeBudget: time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !part.Partial || part.Best.Config == nil {
		t.Errorf("pre-canceled facade search: Partial=%v Best=%v", part.Partial, part.Best.Config)
	}
}
