module aceso

go 1.22
