// Wide-ResNet: a heterogeneous vision model where different operators
// want different parallelism — the paper's second §5.4 case study.
//
// Early convolutions are small and shard poorly (8-way tensor
// parallelism would run them at a fraction of peak), while the late,
// memory-heavy blocks need aggressive sharding to fit. Aceso's
// fine-tuning pass mixes per-operator dp×tp inside a stage; this
// example prints the mixes it found.
package main

import (
	"fmt"
	"log"
	"time"

	"aceso"
)

func main() {
	g, err := aceso.WideResNet("6.8B")
	if err != nil {
		log.Fatal(err)
	}
	cl := aceso.DGX1V100(2) // 16 GPUs
	fmt.Printf("model %s: %d operators, %.2fB parameters, fp32, batch %d\n",
		g.Name, len(g.Ops), g.TotalParams()/1e9, g.GlobalBatch)

	res, err := aceso.Search(g, cl, aceso.Options{TimeBudget: 3 * time.Second, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	cfg := res.Best.Config
	fmt.Printf("\nfound %d pipeline stages, microbatch %d (explored %d configs)\n",
		cfg.NumStages(), cfg.MicroBatch, res.Explored)

	for i := range cfg.Stages {
		st := &cfg.Stages[i]
		mixes := map[[2]int]int{}
		for j := range st.Ops {
			mixes[[2]int{st.Ops[j].TP, st.Ops[j].DP}]++
		}
		fmt.Printf("stage %d: ops %d-%d on %d GPUs, %d recomputed\n",
			i, st.Start, st.End-1, st.Devices, cfg.RecomputedOps(i))
		for mix, n := range mixes {
			fmt.Printf("    tp%d × dp%d on %d ops\n", mix[0], mix[1], n)
		}
	}

	sim, err := aceso.Simulate(g, cl, cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated: %.2f s/iter, peak memory %.1f GiB\n",
		sim.IterTime, sim.PeakMem/(1<<30))
}
