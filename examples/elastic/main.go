// Elastic recluster: the shared-cluster scenario motivating cheap
// reconfiguration (§1: "search overhead can be a huge burden when
// quick reconfiguration is needed, e.g., in a shared cluster with
// frequent changes in resources").
//
// A GPT-3 2.6B training job starts on 16 GPUs; a node is preempted,
// leaving 8; later the node returns. After every resource change the
// job re-searches in ~a second and keeps training with a configuration
// tailored to the new cluster.
package main

import (
	"fmt"
	"log"
	"time"

	"aceso"
)

func main() {
	g, err := aceso.GPT3("2.6B")
	if err != nil {
		log.Fatal(err)
	}
	events := []struct {
		what string
		gpus int
	}{
		{"initial allocation", 16},
		{"node preempted", 8},
		{"node restored", 16},
	}
	var prev *aceso.Config
	for _, ev := range events {
		cl := aceso.DGX1V100(4).Restrict(ev.gpus)
		opts := aceso.Options{TimeBudget: 1500 * time.Millisecond, Seed: 1}
		if prev != nil {
			// Warm start: project the previous plan onto the resized
			// cluster and search outward from it.
			opts.Initializer = aceso.WarmStart(prev)
		}
		start := time.Now()
		res, err := aceso.Search(g, cl, opts)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := aceso.Simulate(g, cl, res.Best.Config, 1)
		if err != nil {
			log.Fatal(err)
		}
		prev = res.Best.Config
		fmt.Printf("%-20s %2d GPUs: re-searched in %v → %d stages, mbs %d, %.2f s/iter (%.0f samples/s)\n",
			ev.what, ev.gpus, time.Since(start).Round(time.Millisecond),
			res.Best.Config.NumStages(), res.Best.Config.MicroBatch,
			sim.IterTime, float64(g.GlobalBatch)/sim.IterTime)
	}
}
