// GPT-3 sweep: compare Aceso against a Megatron-LM-style global grid
// search across model sizes — a miniature of the paper's Figure 7.
//
// For each size, both searches run against the same performance model
// and the found configurations are executed in the runtime simulator;
// the table reports simulated iteration times and Aceso's speedup.
package main

import (
	"fmt"
	"log"
	"time"

	"aceso"
)

func main() {
	cases := []struct {
		size string
		gpus int
	}{
		{"350M", 4},
		{"1.3B", 4},
		{"2.6B", 8},
	}
	fmt.Printf("%-6s %-5s %-22s %-22s %s\n", "size", "GPUs", "grid search (s/iter)", "Aceso (s/iter)", "speedup")
	for _, tc := range cases {
		g, err := aceso.GPT3(tc.size)
		if err != nil {
			log.Fatal(err)
		}
		cl := aceso.DGX1V100(4).Restrict(tc.gpus)

		grid := gridSearch(g, cl)
		res, err := aceso.Search(g, cl, aceso.Options{TimeBudget: 2 * time.Second, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		sim, err := aceso.Simulate(g, cl, res.Best.Config, 1)
		if err != nil {
			log.Fatal(err)
		}
		speedup := "-"
		if grid > 0 {
			speedup = fmt.Sprintf("%.2fx", grid/sim.IterTime)
		}
		fmt.Printf("%-6s %-5d %-22.2f %-22.2f %s\n", tc.size, tc.gpus, grid, sim.IterTime, speedup)
	}
}

// gridSearch emulates Megatron-LM's global configuration space with
// the public API: every (pp, tp, dp, mbs, recompute) combination where
// all layers share the same settings.
func gridSearch(g *aceso.Graph, cl aceso.Cluster) float64 {
	devices := cl.TotalDevices()
	best := 0.0
	var bestCfg *aceso.Config
	for pp := 1; pp <= devices; pp *= 2 {
		per := devices / pp
		for tp := 1; tp <= per; tp *= 2 {
			dp := per / tp
			for mbs := dp; mbs <= 32; mbs *= 2 {
				if mbs == 0 || g.GlobalBatch%mbs != 0 || mbs%dp != 0 {
					continue
				}
				for _, rc := range []bool{false, true} {
					cfg, err := aceso.Balanced(g, devices, pp, mbs)
					if err != nil {
						continue
					}
					for i := range cfg.Stages {
						for j := range cfg.Stages[i].Ops {
							cfg.Stages[i].Ops[j] = aceso.OpSetting{TP: tp, DP: dp, Recompute: rc}
						}
					}
					if cfg.Validate(g, devices) != nil {
						continue
					}
					est := aceso.EstimateConfig(g, cl, cfg, 1)
					if !est.Feasible {
						continue
					}
					if bestCfg == nil || est.IterTime < best {
						best, bestCfg = est.IterTime, cfg
					}
				}
			}
		}
	}
	if bestCfg == nil {
		return 0
	}
	sim, err := aceso.Simulate(g, cl, bestCfg, 1)
	if err != nil {
		return 0
	}
	return sim.IterTime
}
