// Quickstart: search a parallel-training configuration for GPT-3 1.3B
// on 4 V100 GPUs and inspect the result.
package main

import (
	"fmt"
	"log"
	"time"

	"aceso"
)

func main() {
	// 1. Build the workload: GPT-3 1.3B (24 transformer layers at
	//    operator granularity, batch 1024, sequence length 2048).
	g, err := aceso.GPT3("1.3B")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s: %d operators, %.2fB parameters\n",
		g.Name, len(g.Ops), g.TotalParams()/1e9)

	// 2. Describe the hardware: 4 V100-32GB GPUs in one server.
	cl := aceso.DGX1V100(1).Restrict(4)

	// 3. Search. Aceso iteratively finds the bottleneck pipeline stage
	//    and applies the reconfiguration primitive that alleviates it,
	//    in parallel over candidate pipeline depths.
	res, err := aceso.Search(g, cl, aceso.Options{
		TimeBudget: 2 * time.Second,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d configurations in %v\n", res.Explored, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("best configuration:\n  %v\n", res.Best.Config)

	// 4. The performance model's prediction...
	est := res.Best.Estimate
	fmt.Printf("predicted: %.2f s/iter (%.0f samples/s), peak memory %.1f GiB\n",
		est.IterTime, est.Throughput(g.GlobalBatch), est.PeakMem/(1<<30))

	// 5. ...verified by the discrete-event 1F1B runtime simulator.
	sim, err := aceso.Simulate(g, cl, res.Best.Config, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: %.2f s/iter, peak memory %.1f GiB, OOM=%v\n",
		sim.IterTime, sim.PeakMem/(1<<30), sim.OOM)
}
