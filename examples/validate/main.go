// Validate: numerically prove that Aceso's reconfiguration primitives
// are semantic-preserving (§3.2.1), reproducing the paper's §4
// correctness methodology ("we ensured the correctness of our
// implementation by comparing the output with that of the original
// Megatron-LM").
//
// An MLP is trained (a) serially on one device and (b) under several
// parallel configurations — data/tensor/pipeline parallelism and
// recomputation, executed by concurrent pipeline-stage goroutines with
// channel-based collectives. Every configuration must produce the same
// losses and final weights up to floating-point summation order.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"aceso/internal/config"
	"aceso/internal/model"
	"aceso/internal/runtime"
	"aceso/internal/tensor"
)

func main() {
	const (
		dim, layersN, batch = 8, 4, 16
		lr, iters           = 0.05, 3
	)
	g, err := model.MLP(layersN, dim, batch)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	x, y := randMat(rng, batch, dim), randMat(rng, batch, dim)

	ref := runtime.InitParams(g, 7)
	serialLosses, err := runtime.Serial(g, ref.Clone(), x, y, 4, lr, iters)
	if err != nil {
		log.Fatal(err)
	}
	serialFinal := ref.Clone()
	if _, err := runtime.Serial(g, serialFinal, x, y, 4, lr, iters); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial reference: losses %v\n\n", fmtLosses(serialLosses))

	cases := []struct {
		name           string
		stages, tp, dp int
		recompute      bool
	}{
		{"4-way data parallel", 1, 1, 4, false},
		{"4-way tensor parallel", 1, 4, 1, false},
		{"2dp × 2tp hybrid", 1, 2, 2, false},
		{"4-stage pipeline", 4, 1, 1, false},
		{"2-stage × (2tp×2dp) + recompute", 2, 2, 2, true},
	}
	for _, tc := range cases {
		cfg, err := config.Balanced(g, tc.stages*tc.tp*tc.dp, tc.stages, 4)
		if err != nil {
			log.Fatal(err)
		}
		for i := range cfg.Stages {
			for j := range cfg.Stages[i].Ops {
				cfg.Stages[i].Ops[j] = config.OpSetting{TP: tc.tp, DP: tc.dp, Recompute: tc.recompute}
			}
		}
		p := ref.Clone()
		losses, err := runtime.Parallel(g, cfg, p, x, y, lr, iters)
		if err != nil {
			log.Fatal(err)
		}
		diff := p.MaxDiff(serialFinal)
		fmt.Printf("%-34s losses %v  max weight diff vs serial: %.1e\n",
			tc.name+":", fmtLosses(losses), diff)
		if diff > 1e-9 {
			log.Fatalf("%s: NOT semantic-preserving", tc.name)
		}
	}
	fmt.Println("\nall parallel MLP configurations train identically to the serial reference ✓")

	// The same check on a transformer: attention heads split across
	// tensor-parallel ranks, layer norms computed replicated, pipeline
	// stages as goroutines.
	gpt, err := model.TinyGPT(2, 6, 8, 4, 8)
	if err != nil {
		log.Fatal(err)
	}
	arch := runtime.Arch{Seq: 6, Hidden: 8, Heads: 4}
	gref, err := runtime.InitParamsArch(gpt, arch, 7)
	if err != nil {
		log.Fatal(err)
	}
	gx, gy := randMat(rng, 8*6, 8), randMat(rng, 8*6, 8)
	serialGPT := gref.Clone()
	if _, err := runtime.Serial(gpt, serialGPT, gx, gy, 4, lr, iters); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntransformer (TinyGPT, 4 heads):")
	for _, tc := range []struct {
		name           string
		stages, tp, dp int
	}{
		{"4-way head-split tensor parallel", 1, 4, 1},
		{"2 stages × (2tp×2dp)", 2, 2, 2},
	} {
		cfg, err := config.Balanced(gpt, tc.stages*tc.tp*tc.dp, tc.stages, 4)
		if err != nil {
			log.Fatal(err)
		}
		for i := range cfg.Stages {
			for j := range cfg.Stages[i].Ops {
				cfg.Stages[i].Ops[j] = config.OpSetting{TP: tc.tp, DP: tc.dp}
			}
		}
		p := gref.Clone()
		if _, err := runtime.Parallel(gpt, cfg, p, gx, gy, lr, iters); err != nil {
			log.Fatal(err)
		}
		diff := p.MaxDiff(serialGPT)
		fmt.Printf("%-34s max weight diff vs serial: %.1e\n", tc.name+":", diff)
		if diff > 1e-9 {
			log.Fatalf("%s: NOT semantic-preserving", tc.name)
		}
	}
	fmt.Println("\ntransformer configurations also train identically ✓")
}

func randMat(rng *rand.Rand, rows, cols int) *tensor.Mat {
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func fmtLosses(ls []float64) []string {
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = fmt.Sprintf("%.6f", l)
	}
	return out
}
