// Shared cluster: quantify the paper's §1 motivation. A GPT-3 2.6B
// training job runs on a shared cluster whose allocation changes every
// half hour; each change forces a re-plan before training can resume,
// so planner latency translates directly into lost samples. Compare a
// cold Aceso search, a warm-started Aceso search, and the Alpa-like
// solver (whose emulated per-kernel compile cost is what the paper's
// Figure 8 measures).
package main

import (
	"fmt"
	"log"
	"time"

	"aceso/internal/clustersim"
	"aceso/internal/hardware"
	"aceso/internal/model"
)

func main() {
	g, err := model.GPT3("2.6B")
	if err != nil {
		log.Fatal(err)
	}
	trace := []clustersim.Event{
		{At: 0, GPUs: 16},
		{At: 1 * time.Hour, GPUs: 8},
		{At: 2 * time.Hour, GPUs: 16},
		{At: 3 * time.Hour, GPUs: 24},
		{At: 4 * time.Hour, GPUs: 16},
	}
	const horizon = 5 * time.Hour
	fmt.Printf("job: %s (batch %d) on a shared cluster, %d allocation changes over %v\n\n",
		g.Name, g.GlobalBatch, len(trace)-1, horizon)

	results, err := clustersim.Run(g, hardware.DGX1V100(4), trace, horizon,
		[]clustersim.Strategy{
			clustersim.AcesoStrategy{Budget: 2 * time.Second, Seed: 1},
			clustersim.AcesoStrategy{Budget: 2 * time.Second, Seed: 1, Warm: true},
			clustersim.AlpaStrategy{Seed: 1},
		}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-16s %-14s %-12s\n", "planner", "samples trained", "plan overhead", "utilization")
	base := results[0].Samples
	for _, r := range results {
		fmt.Printf("%-12s %-16.0f %-14v %.1f%%  (%.2fx vs aceso)\n",
			r.Strategy, r.Samples, r.PlanOverhead.Round(time.Second),
			100*r.Utilization, r.Samples/base)
	}
	fmt.Println("\nper-window detail (aceso):")
	for i, w := range results[0].Windows {
		fmt.Printf("  window %d: %2d GPUs for %-10v plan %-8v %.2f s/iter → %.0f samples\n",
			i, w.GPUs, w.Duration, w.PlanTime.Round(time.Millisecond), w.IterTime, w.Samples)
	}
}
