package diffcheck

// Satellite property tests: these re-derive the Eq. 1 contracts
// independently of Check (no shared helper on the assertion path) so a
// bug in the harness itself cannot mask a model/simulator divergence.
// The corpus is the same RandomTuple generator the differential runs
// use — one generator, three consumers (Run, these tests, the
// acesobench diff target).

import (
	"math/rand"
	"testing"

	"aceso/internal/pipesim"
)

// drawTuple pulls generator tuples, filtered on fault presence: want
// nil keeps only healthy clusters, non-nil only degraded ones.
func drawTuple(rng *rand.Rand, wantFault bool) Tuple {
	for {
		t := RandomTuple(rng)
		if (t.Fault != nil) == wantFault {
			return t
		}
	}
}

func checkEq1Properties(t *testing.T, tup Tuple) {
	t.Helper()
	pm, cfg, err := tup.Build()
	if err != nil {
		t.Fatalf("generator emitted unbuildable tuple: %v", err)
	}
	est := pm.Estimate(cfg)
	sim, err := pipesim.SimulateEffects(pm, cfg, tup.Seed, pipesim.OneFOneB, pipesim.ModelFaithful())
	if err != nil {
		t.Fatalf("simulator rejected a model-accepted config: %v", err)
	}
	p := cfg.NumStages()
	n := est.Microbatches
	anyOOM := false
	for i := 0; i < p; i++ {
		// Eq. 1 in-flight: stage i stashes min(p−i, n) microbatches.
		want := p - i
		if want > n {
			want = n
		}
		if sim.PeakInflight[i] != want {
			t.Errorf("stage %d: PeakInflight = %d, want min(%d-%d, %d) = %d",
				i, sim.PeakInflight[i], p, i, n, want)
		}
		// OOM verdicts agree per stage against the (possibly derated)
		// capacity.
		modelOOM := est.Stages[i].PeakMem > est.Stages[i].CapMem
		if sim.StageOOM[i] != modelOOM {
			t.Errorf("stage %d: sim OOM %v, model OOM %v (mem %v/%v cap %v)",
				i, sim.StageOOM[i], modelOOM,
				sim.StagePeakMem[i], est.Stages[i].PeakMem, est.Stages[i].CapMem)
		}
		anyOOM = anyOOM || modelOOM
	}
	if sim.OOM != anyOOM {
		t.Errorf("aggregate OOM %v, want %v", sim.OOM, anyOOM)
	}
	if est.Feasible == anyOOM {
		t.Errorf("model Feasible %v inconsistent with its own per-stage verdicts %v",
			est.Feasible, anyOOM)
	}
}

func TestEq1PropertiesHealthyClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 300; i++ {
		checkEq1Properties(t, drawTuple(rng, false))
		if t.Failed() {
			t.Fatalf("violated on healthy trial %d", i)
		}
	}
}

func TestEq1PropertiesDeratedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	sawDerate := false
	for i := 0; i < 300; i++ {
		tup := drawTuple(rng, true)
		for _, f := range tup.Fault.Devices {
			if !f.Dead && (f.MemScale != 1 || f.FLOPSScale != 1) {
				sawDerate = true
			}
		}
		checkEq1Properties(t, tup)
		if t.Failed() {
			t.Fatalf("violated on derated trial %d", i)
		}
	}
	if !sawDerate {
		t.Error("corpus never exercised a per-device derate")
	}
}
