package diffcheck

import (
	"fmt"
	"math"

	"aceso/internal/perfmodel"
	"aceso/internal/pipesim"
)

// Violation kinds reported by Check. Each is one invariant of the
// model/simulator contract (DESIGN.md §5e).
const (
	KindBuild    = "build"            // tuple failed to rebuild (repro rot)
	KindSimError = "sim-error"        // simulator rejected a config the model accepted
	KindInflight = "inflight"         // PeakInflight[i] ≠ Eq. 1's min(p−i, n)
	KindMemComp  = "mem-composition"  // stage memory ≠ Eq. 1 term-for-term
	KindOOM      = "oom-verdict"      // per-stage OOM disagreement vs CapMem
	KindGPipe    = "gpipe-mem"        // GPipe peak memory < 1F1B peak memory
	KindIterBand = "iter-band"        // makespan outside the signed band of Eq. 2
)

// Finding is one invariant violation on one tuple.
type Finding struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// relEps absorbs the floating-point slop between the simulator's
// event-ordered additions and Eq. 2's closed-form composition. It
// guards only the *time* comparisons; the memory invariants are exact
// by construction and use none.
const relEps = 1e-9

// Check rebuilds the tuple and confronts model and simulator. With
// effectsOn false it runs the simulator in model-faithful mode and
// asserts the hard invariants; with effectsOn true it runs the default
// effects and asserts the calibration band plus the effect-adjusted
// memory contract. The returned band sample is the signed relative
// deviation (sim − model)/model of the iteration time (NaN when the
// trial never got that far).
func Check(t *Tuple, effectsOn bool) (findings []Finding, band float64) {
	band = math.NaN()
	pm, cfg, err := t.Build()
	if err != nil {
		return []Finding{{Kind: KindBuild, Detail: err.Error()}}, band
	}
	est := pm.Estimate(cfg)
	fx := pipesim.ModelFaithful()
	if effectsOn {
		fx = pipesim.DefaultEffects()
	}
	sim, err := pipesim.SimulateEffects(pm, cfg, t.Seed, pipesim.OneFOneB, fx)
	if err != nil {
		// The generator only emits model-accepted configs, so a
		// simulator rejection is itself a divergence.
		return []Finding{{Kind: KindSimError, Detail: err.Error()}}, band
	}
	p := cfg.NumStages()
	n := est.Microbatches

	// Invariant 1 — Eq. 1 in-flight counts. The 1F1B task order keeps
	// exactly min(p−i, n) microbatches stashed at stage i's peak;
	// holds in any effects mode (the order is duration-independent).
	for i := 0; i < p; i++ {
		want := p - i
		if want > n {
			want = n
		}
		if sim.PeakInflight[i] != want {
			findings = append(findings, Finding{Kind: KindInflight,
				Detail: fmt.Sprintf("stage %d: sim inflight %d, Eq.1 min(p-i,n) = %d (p=%d n=%d)",
					i, sim.PeakInflight[i], want, p, n)})
		}
	}

	// Invariant 2 — memory composition, term-for-term. Effects off:
	// the simulator's stage memory must be bitwise Eq. 1 (the model's
	// own PeakMem). Effects on: it must equal the exported composition
	// helper exactly (same terms, scaled by the knobs and mem-skew).
	for i := 0; i < p; i++ {
		want := est.Stages[i].PeakMem
		if effectsOn {
			want = pipesim.ExpectedStageMem(&est.Stages[i], sim.PeakInflight[i], fx, t.Seed, cfg, i)
		}
		if sim.StagePeakMem[i] != want {
			findings = append(findings, Finding{Kind: KindMemComp,
				Detail: fmt.Sprintf("stage %d: sim mem %v, composed %v (diff %g)",
					i, sim.StagePeakMem[i], want, sim.StagePeakMem[i]-want)})
		}
	}

	// Invariant 3 — per-stage OOM verdicts against the fault-derated
	// CapMem. Exact agreement is only contractual with effects off
	// (with effects on the simulator's allocator deliberately retains
	// less than the model's reserve).
	if !effectsOn {
		for i := 0; i < p; i++ {
			modelOOM := est.Stages[i].PeakMem > est.Stages[i].CapMem
			if sim.StageOOM[i] != modelOOM {
				findings = append(findings, Finding{Kind: KindOOM,
					Detail: fmt.Sprintf("stage %d: sim OOM %v, model OOM %v (mem %v cap %v)",
						i, sim.StageOOM[i], modelOOM, est.Stages[i].PeakMem, est.Stages[i].CapMem)})
			}
		}
		if sim.OOM == est.Feasible && n > 0 {
			findings = append(findings, Finding{Kind: KindOOM,
				Detail: fmt.Sprintf("aggregate: sim OOM %v, model Feasible %v", sim.OOM, est.Feasible)})
		}
	}

	// Invariant 4 — GPipe stashes a superset of 1F1B on every stage,
	// so its peak memory can never be lower.
	gp, err := pipesim.SimulateEffects(pm, cfg, t.Seed, pipesim.GPipe, fx)
	if err != nil {
		findings = append(findings, Finding{Kind: KindSimError,
			Detail: fmt.Sprintf("gpipe: %v", err)})
	} else if gp.PeakMem < sim.PeakMem {
		findings = append(findings, Finding{Kind: KindGPipe,
			Detail: fmt.Sprintf("GPipe peak %v < 1F1B peak %v", gp.PeakMem, sim.PeakMem)})
	}

	// Invariant 5 — the iteration-time band (signed: both bounds are
	// provable scheduling facts, not symmetric tolerances).
	if est.IterTime > 0 {
		band = (sim.IterTime - est.IterTime) / est.IterTime
	}
	lo, hi := iterTimeBounds(est.Stages, n, effectsOn, fx)
	if sim.IterTime < lo*(1-relEps) || sim.IterTime > hi*(1+relEps) {
		findings = append(findings, Finding{Kind: KindIterBand,
			Detail: fmt.Sprintf("sim IterTime %v outside [%v, %v] (model %v, band %+.4f)",
				sim.IterTime, lo, hi, est.IterTime, band)})
	}
	return findings, band
}

// iterTimeBounds derives the provable [lo, hi] envelope for the
// simulated makespan from the model's per-stage metrics.
//
// Effects off, the simulator runs exactly the model's durations, so:
//
//   - Lower bound: Eq. 2's StageTime_k counts stage k's fill
//     (Σ_{j≤k} F_j), its serial work ((n−1)(F_k+B_k) — plus its own
//     F+B inside fill/drain) and its drain (Σ_{j≥k} B_j). The fill and
//     serial-work parts are a chain of real dependencies, but the
//     drain of stages *above* the bottleneck can overlap the
//     bottleneck's steady state, so the closed form is NOT a lower
//     bound of the simulation. Subtracting the overlappable part —
//     the backward tail strictly below k, Σ_{j>k} B_j — leaves a
//     dependency chain that must be serial in any schedule:
//     lo = max_k (StageTime_k − Σ_{j>k} B_j).
//
//   - Upper bound: Eq. 2 paces each stage by its *own* cycle
//     F_k + B_k, but the 1F1B dependency loop (forwards flow down,
//     backwards flow back) paces every stage's steady state by the
//     slowest cycle in the pipeline — development shrinking surfaced a
//     stage with negligible compute but a large DPSync whose compute
//     drained at the global bottleneck's pace and then synced, beating
//     Eq. 2 by +36% (EXPERIMENTS.md). The envelope therefore anchors
//     on the global cycle: hi = ΣF + n·max_j(F_j+B_j) + ΣB +
//     max_k DPSync_k — a full fill, n global-pace cycles, a full
//     drain, and the largest sync tail. Validated over 10⁶ randomized
//     tuples in development (largest observed headroom ~0.8·hi).
//
// Effects on, every duration is scaled into
// [1+SkewBias−SkewAmp/2, 1+SkewBias+SkewAmp/2] and gains TaskOverhead;
// the makespan is monotone in task durations and scales linearly under
// a scalar factor, so the envelope scales by the same factors with a
// TaskOverhead·2·n·p additive term (a path visits at most all 2·n·p
// tasks) on top.
func iterTimeBounds(stages []perfmodel.StageMetrics, n int, effectsOn bool, fx pipesim.Effects) (lo, hi float64) {
	p := len(stages)
	var sumF, sumB, maxCycle, maxSync float64
	for i := 0; i < p; i++ {
		sumF += stages[i].FwdTime
		sumB += stages[i].BwdTime
		if c := stages[i].FwdTime + stages[i].BwdTime; c > maxCycle {
			maxCycle = c
		}
		if stages[i].DPSync > maxSync {
			maxSync = stages[i].DPSync
		}
	}
	tailB := 0.0 // Σ_{j>k} B_j while scanning k downward
	for k := p - 1; k >= 0; k-- {
		if chain := stages[k].StageTime - tailB; chain > lo {
			lo = chain
		}
		tailB += stages[k].BwdTime
	}
	hi = sumF + float64(n)*maxCycle + sumB + maxSync
	if effectsOn {
		sLo := 1 + fx.SkewBias - fx.SkewAmp/2
		sHi := 1 + fx.SkewBias + fx.SkewAmp/2
		if sLo < 0 {
			sLo = 0
		}
		lo *= sLo
		hi = hi*sHi + fx.TaskOverhead*float64(2*n*p)
	}
	return lo, hi
}
