package diffcheck

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"aceso/internal/obs"
)

// Options tunes a differential run.
type Options struct {
	// Trials is the number of randomized tuples (DefaultTrials if ≤ 0).
	Trials int
	// Seed makes the tuple sequence deterministic: trial i draws from
	// rand.NewSource(Seed + i·1000003), the same per-trial scheme the
	// chaos harness uses, so any trial replays in isolation.
	Seed int64
	// EffectsOn checks the calibration band under the realistic
	// effects instead of the hard model-faithful invariants.
	EffectsOn bool
	// Metrics, when non-nil, accumulates trial/violation/shrink
	// counters (violations labeled by kind).
	Metrics *obs.Registry
	// Generator draws each trial's tuple (RandomTuple when nil). Pass
	// RandomHeteroTuple to restrict the run to mixed-class clusters —
	// the hetero slice of the diff smoke.
	Generator func(rng *rand.Rand) Tuple
	// Log, when non-nil, receives one line per trial batch.
	Log func(format string, args ...any)
}

// DefaultTrials is the trial count when Options.Trials is unset.
const DefaultTrials = 5000

// Violation is one invariant violation, already shrunk to a minimal
// reproducing tuple.
type Violation struct {
	Trial       int     `json:"trial"`
	Seed        int64   `json:"seed"` // per-trial generator seed
	Kind        string  `json:"kind"`
	Detail      string  `json:"detail"`
	Tuple       Tuple   `json:"tuple"`        // shrunken repro
	ShrinkSteps int     `json:"shrink_steps"` // accepted reductions
}

// BandStats summarizes the signed relative deviation
// (sim − model)/model of the iteration time across the run.
type BandStats struct {
	Samples int     `json:"samples"`
	Min     float64 `json:"min"`
	P50     float64 `json:"p50"`
	P95     float64 `json:"p95"`
	Max     float64 `json:"max"`
}

// Report summarizes a differential run.
type Report struct {
	Trials     int           `json:"trials"`
	EffectsOn  bool          `json:"effects_on"`
	Violations []Violation   `json:"violations,omitempty"`
	Band       BandStats     `json:"band"`
	Elapsed    time.Duration `json:"elapsed_ns"`
}

// Failed reports whether any invariant broke.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Summary renders a one-paragraph human-readable outcome.
func (r *Report) Summary() string {
	var b strings.Builder
	mode := "effects-off"
	if r.EffectsOn {
		mode = "effects-on"
	}
	fmt.Fprintf(&b, "diffcheck: %d %s trials in %v: %d violations; band [%.4f, %.4f] p50 %.4f p95 %.4f\n",
		r.Trials, mode, r.Elapsed.Round(time.Millisecond), len(r.Violations),
		r.Band.Min, r.Band.Max, r.Band.P50, r.Band.P95)
	for i, v := range r.Violations {
		if i == 10 {
			fmt.Fprintf(&b, "  ... and %d more\n", len(r.Violations)-10)
			break
		}
		fmt.Fprintf(&b, "  trial %d %s: %s (shrunk in %d steps)\n", v.Trial, v.Kind, v.Detail, v.ShrinkSteps)
	}
	return b.String()
}

// TrialSeed returns the deterministic generator seed of trial i under
// base seed — the replay contract shared with the chaos harness.
func TrialSeed(base int64, i int) int64 { return base + int64(i)*1000003 }

// Run executes the differential trials and returns the report. Every
// violating tuple is shrunk before being reported; only the first
// finding of each trial is shrunk (the rest are usually the same root
// cause seen through different invariants).
func Run(o Options) *Report {
	start := time.Now()
	trials := o.Trials
	if trials <= 0 {
		trials = DefaultTrials
	}
	rep := &Report{Trials: trials, EffectsOn: o.EffectsOn}
	gen := o.Generator
	if gen == nil {
		gen = RandomTuple
	}

	var mTrials, mShrink *obs.Counter
	if o.Metrics != nil {
		mTrials = o.Metrics.Counter(obs.DiffTrialsTotal)
		mShrink = o.Metrics.Counter(obs.DiffShrinkStepsTotal)
	}
	violationCounter := func(kind string) *obs.Counter {
		if o.Metrics == nil {
			return nil
		}
		return o.Metrics.Counter(fmt.Sprintf("%s{kind=%q}", obs.DiffViolationsTotal, kind))
	}

	samples := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		seed := TrialSeed(o.Seed, i)
		rng := rand.New(rand.NewSource(seed))
		t := gen(rng)
		findings, band := Check(&t, o.EffectsOn)
		if mTrials != nil {
			mTrials.Inc()
		}
		if !math.IsNaN(band) {
			samples = append(samples, band)
		}
		if len(findings) > 0 {
			f := findings[0]
			shrunk, steps := Shrink(t, f.Kind, o.EffectsOn)
			// Re-check the shrunken tuple for the detail to report: the
			// minimal form's message is the one worth reading.
			detail := f.Detail
			if sf, _ := Check(&shrunk, o.EffectsOn); len(sf) > 0 {
				for _, s := range sf {
					if s.Kind == f.Kind {
						detail = s.Detail
						break
					}
				}
			}
			rep.Violations = append(rep.Violations, Violation{
				Trial: i, Seed: seed, Kind: f.Kind, Detail: detail,
				Tuple: shrunk, ShrinkSteps: steps,
			})
			if c := violationCounter(f.Kind); c != nil {
				c.Inc()
			}
			if mShrink != nil {
				mShrink.Add(int64(steps))
			}
		}
		if o.Log != nil && (i+1)%1024 == 0 {
			o.Log("diffcheck: %d trials, %d violations", i+1, len(rep.Violations))
		}
	}
	rep.Band = bandStats(samples)
	rep.Elapsed = time.Since(start)
	return rep
}

// ReplayTuple re-runs one tuple (typically loaded from a repro JSON)
// and returns its findings.
func ReplayTuple(t Tuple, effectsOn bool) []Finding {
	findings, _ := Check(&t, effectsOn)
	return findings
}

// bandStats computes the percentile summary of the band samples.
func bandStats(samples []float64) BandStats {
	if len(samples) == 0 {
		return BandStats{}
	}
	sort.Float64s(samples)
	q := func(p float64) float64 {
		idx := int(p * float64(len(samples)-1))
		return samples[idx]
	}
	return BandStats{
		Samples: len(samples),
		Min:     samples[0],
		P50:     q(0.50),
		P95:     q(0.95),
		Max:     samples[len(samples)-1],
	}
}
