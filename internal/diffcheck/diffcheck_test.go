package diffcheck

import (
	"encoding/json"
	"math/rand"
	"testing"

	"aceso/internal/obs"
)

func TestRunCleanEffectsOff(t *testing.T) {
	reg := obs.NewRegistry()
	rep := Run(Options{Trials: 1500, Seed: 1, Metrics: reg})
	if rep.Failed() {
		t.Fatalf("effects-off invariants violated:\n%s", rep.Summary())
	}
	if rep.Trials != 1500 {
		t.Errorf("Trials = %d, want 1500", rep.Trials)
	}
	if rep.Band.Samples == 0 {
		t.Error("no band samples collected")
	}
	if got := reg.Counter(obs.DiffTrialsTotal).Value(); got != 1500 {
		t.Errorf("%s = %d, want 1500", obs.DiffTrialsTotal, got)
	}
	// Sanity on the signed band itself: the simulator must both under-
	// and over-shoot Eq. 2 across a corpus this size (a one-sided band
	// would mean the closed form is secretly a bound, and the documented
	// band rationale would be wrong).
	if rep.Band.Min >= 0 {
		t.Errorf("band min %v: simulator never beat the closed form", rep.Band.Min)
	}
	if rep.Band.Max <= 0 {
		t.Errorf("band max %v: simulator never exceeded the closed form", rep.Band.Max)
	}
}

func TestRunCleanEffectsOn(t *testing.T) {
	rep := Run(Options{Trials: 800, Seed: 2, EffectsOn: true})
	if rep.Failed() {
		t.Fatalf("effects-on calibration violated:\n%s", rep.Summary())
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(Options{Trials: 300, Seed: 7})
	b := Run(Options{Trials: 300, Seed: 7})
	if a.Band != b.Band {
		t.Errorf("band stats differ across identical runs: %+v vs %+v", a.Band, b.Band)
	}
	if len(a.Violations) != len(b.Violations) {
		t.Errorf("violation counts differ: %d vs %d", len(a.Violations), len(b.Violations))
	}
}

func TestTupleJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		orig := RandomTuple(rng)
		raw, err := json.Marshal(orig)
		if err != nil {
			t.Fatal(err)
		}
		var back Tuple
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		fa, ba := Check(&orig, false)
		fb, bb := Check(&back, false)
		if len(fa) != len(fb) || ba != bb {
			t.Fatalf("tuple %d: JSON round trip changed the verdict (%d/%v vs %d/%v)\n%s",
				i, len(fa), ba, len(fb), bb, raw)
		}
	}
}

func TestReplayTupleMatchesRun(t *testing.T) {
	// The replay contract: trial i of a run is exactly
	// RandomTuple(rand(TrialSeed(seed, i))) checked in the same mode.
	const base, trial = 11, 37
	rng := rand.New(rand.NewSource(TrialSeed(base, trial)))
	tup := RandomTuple(rng)
	direct := ReplayTuple(tup, false)
	again, _ := Check(&tup, false)
	if len(direct) != len(again) {
		t.Errorf("replay disagrees with direct check: %d vs %d findings", len(direct), len(again))
	}
}

func TestShrinkGreedyMinimizes(t *testing.T) {
	// Drive the greedy engine with a synthetic predicate so the search
	// behavior is testable without a real model/simulator divergence:
	// "reproduces" iff ops ≥ 3 and devices ≥ 2 — the minimum should
	// come out at exactly that boundary.
	start := Tuple{
		Ops: 24, FwdFLOPs: 1e9, Params: 1e6, Act: 1e5, GlobalBatch: 64,
		Devices: 16, Stages: 4, MicroBatch: 4, MutSeed: 99, Slope: 1.5, Seed: 1,
	}
	got, steps := shrinkWith(start, func(c Tuple) bool {
		return c.Ops >= 3 && c.Devices >= 2
	})
	if got.Ops != 3 || got.Devices != 2 {
		t.Errorf("shrunk to ops=%d devices=%d, want 3/2", got.Ops, got.Devices)
	}
	if got.MutSeed != 0 || got.Slope != 0 {
		t.Errorf("irrelevant knobs not dropped: mutSeed=%d slope=%v", got.MutSeed, got.Slope)
	}
	if steps == 0 {
		t.Error("no shrink steps counted")
	}
	// Local minimum: no reduction of the result still reproduces.
	for _, r := range reductions(got) {
		if r.Ops >= 3 && r.Devices >= 2 {
			t.Errorf("result not minimal: %+v still reproduces", r)
		}
	}
}

func TestReductionsDoNotAliasFault(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var tup Tuple
	for tup.Fault == nil {
		tup = RandomTuple(rng)
	}
	before := len(tup.Fault.Devices)
	for _, r := range reductions(tup) {
		if r.Fault != nil && r.Fault == tup.Fault {
			t.Fatal("reduction shares the parent's FaultSpec pointer")
		}
	}
	if len(tup.Fault.Devices) != before {
		t.Error("reductions mutated the parent fault spec")
	}
}

func TestBuildRejectsUnconstructible(t *testing.T) {
	bad := []Tuple{
		{Ops: 2, FwdFLOPs: 1e9, Params: 1e6, Act: 1e5, GlobalBatch: 8, Devices: 4, Stages: 4, MicroBatch: 1}, // stages > ops
		{Ops: 4, FwdFLOPs: 1e9, Params: 1e6, Act: 1e5, GlobalBatch: 8, Devices: 4, Stages: 2, MicroBatch: 3}, // mbs ∤ batch
		{Ops: 0, FwdFLOPs: 1e9, Params: 1e6, Act: 1e5, GlobalBatch: 8, Devices: 4, Stages: 1, MicroBatch: 1}, // empty graph
	}
	for i, tup := range bad {
		if _, _, err := tup.Build(); err == nil {
			t.Errorf("tuple %d built despite unconstructible shape", i)
		}
		findings, _ := Check(&tup, false)
		if len(findings) != 1 || findings[0].Kind != KindBuild {
			t.Errorf("tuple %d: Check findings = %+v, want one %q", i, findings, KindBuild)
		}
	}
}
