// Package diffcheck is the differential-validation harness: it
// confronts the closed-form performance model (internal/perfmodel,
// Eq. 1–2) with the discrete-event simulator (internal/pipesim) on
// randomized (graph, cluster, fault-spec, config) tuples and asserts
// that the two substrates agree wherever they model the same thing.
//
// The confrontation runs in pipesim's model-faithful mode (effects
// zeroed), where every second-order deviation is off and the contract
// is exact: simulated in-flight counts must equal Eq. 1's min(p−i, n),
// per-stage memory must reproduce Eq. 1 term-for-term (bitwise — the
// knobs multiply by exactly 1.0), OOM verdicts must agree per stage
// against the fault-derated CapMem, GPipe must stash at least as much
// as 1F1B, and the simulated makespan must fall inside a *signed* band
// around Eq. 2's closed form whose bounds are provable scheduling
// facts, not tuned tolerances (DESIGN.md §5e). With the realistic
// effects on, the time contract relaxes to a calibration band derived
// from the effects constants; the memory contract stays exact via
// pipesim.ExpectedStageMem.
//
// Any violation is auto-shrunk — ops, stages, microbatches, devices
// dropped greedily while the violation still reproduces — into a
// minimal Tuple that serializes to JSON and replays with ReplayTuple.
package diffcheck

import (
	"fmt"
	"math/rand"

	"aceso/internal/chaos"
	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
)

// Tuple is one self-contained differential trial: everything needed to
// rebuild the (graph, cluster, config) triple deterministically. The
// JSON form is the repro format written next to BENCH_diff.json.
type Tuple struct {
	// Synthetic workload shape: Ops operators of FwdFLOPs/Params/Act
	// base cost; Slope > 0 makes op i (1+i·Slope)× as expensive
	// (model.Skewed), 0 selects model.Uniform.
	Ops         int     `json:"ops"`
	FwdFLOPs    float64 `json:"fwd_flops"`
	Params      float64 `json:"params"`
	Act         float64 `json:"act"`
	Slope       float64 `json:"slope,omitempty"`
	GlobalBatch int     `json:"global_batch"`

	// Cluster shape: Devices healthy V100s, optionally degraded by
	// Fault (dead devices shrink the logical cluster; deratings shrink
	// per-stage CapMem). Hetero, when non-empty, switches to a mixed
	// A100+V100 fleet instead: one entry per 8-device node, 0 = A100,
	// 1 = V100, restricted to exactly Devices devices.
	Devices int                 `json:"devices"`
	Hetero  []int               `json:"hetero,omitempty"`
	Fault   *hardware.FaultSpec `json:"fault,omitempty"`

	// Configuration: a Balanced(stages, micro_batch) start, then
	// deterministic MutSeed-driven mutations (per-op tp/dp re-splits,
	// sharding dims, recomputation, ZeRO, sequence parallelism) so the
	// corpus covers the heterogeneous configs the search emits, not
	// just the balanced initializers.
	Stages     int   `json:"stages"`
	MicroBatch int   `json:"micro_batch"`
	MutSeed    int64 `json:"mut_seed,omitempty"`

	// Seed drives the simulator's deterministic skew streams.
	Seed int64 `json:"seed"`
}

// Build rebuilds the trial's model and configuration. It fails on
// tuples whose shape is unconstructible (stages exceeding ops, a fault
// spec killing devices a Balanced split needs, a microbatch that does
// not divide the batch) — the generator retries and the shrinker
// treats a failed build as "does not reproduce".
func (t *Tuple) Build() (*perfmodel.Model, *config.Config, error) {
	var g *model.Graph
	if t.Slope > 0 {
		g = model.Skewed(t.Ops, t.FwdFLOPs, t.Params, t.Act, t.Slope, t.GlobalBatch)
	} else {
		g = model.Uniform(t.Ops, t.FwdFLOPs, t.Params, t.Act, t.GlobalBatch)
	}
	if err := g.Validate(); err != nil {
		return nil, nil, fmt.Errorf("diffcheck: graph: %w", err)
	}
	var cl hardware.Cluster
	if len(t.Hetero) > 0 {
		cl = hardware.Mixed(8, t.Hetero, hardware.A100Class(), hardware.V100Class()).Restrict(t.Devices)
	} else {
		cl = hardware.DGX1V100((t.Devices + 7) / 8).Restrict(t.Devices)
	}
	if err := cl.Validate(); err != nil {
		return nil, nil, fmt.Errorf("diffcheck: cluster: %w", err)
	}
	if t.Fault != nil {
		deg, err := cl.Degrade(*t.Fault)
		if err != nil {
			return nil, nil, fmt.Errorf("diffcheck: fault spec: %w", err)
		}
		cl = deg
	}
	cfg, err := config.Balanced(g, cl.TotalDevices(), t.Stages, t.MicroBatch)
	if err != nil {
		return nil, nil, fmt.Errorf("diffcheck: config: %w", err)
	}
	if t.MutSeed != 0 {
		mutate(cfg, g, t.MutSeed)
	}
	if err := cfg.Validate(g, cl.TotalDevices()); err != nil {
		return nil, nil, fmt.Errorf("diffcheck: mutated config: %w", err)
	}
	pm := perfmodel.New(g, cl, 1)
	return pm, cfg, nil
}

// mutate applies deterministic validity-preserving mutations: per-op
// tp/dp re-splits (tp·dp fixed to the stage's devices, dp constrained
// to divide the microbatch), sharding-dim choices, recomputation
// flips, and the extension primitives where legal.
func mutate(cfg *config.Config, g *model.Graph, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for si := range cfg.Stages {
		devs := cfg.Stages[si].Devices
		start, end := cfg.Stages[si].Start, cfg.Stages[si].End
		for op := start; op < end; op++ {
			if rng.Intn(2) == 0 {
				continue
			}
			// Legal (tp, dp) splits: tp a power-of-two divisor of the
			// stage's devices with dp = devs/tp dividing the microbatch.
			var splits [][2]int
			for tp := 1; tp <= devs; tp *= 2 {
				dp := devs / tp
				if tp*dp == devs && cfg.MicroBatch%dp == 0 {
					splits = append(splits, [2]int{tp, dp})
				}
			}
			if len(splits) == 0 {
				continue
			}
			pickIdx := rng.Intn(len(splits))
			dims := len(g.Ops[op].Dims)
			dim := rng.Intn(dims)
			rc := rng.Intn(3) == 0
			zero := rng.Intn(4) == 0
			seqpar := rng.Intn(4) == 0
			cfg.MutOp(si, op, func(s *config.OpSetting) {
				s.TP, s.DP = splits[pickIdx][0], splits[pickIdx][1]
				s.Dim = dim
				s.Recompute = rc
				s.ZeRO = zero && s.DP > 1
				s.SeqPar = seqpar && s.TP > 1
			})
		}
	}
}

// RandomTuple draws a buildable tuple from rng, retrying shapes the
// constructors reject (odd device splits after dead devices, stages
// deeper than the op list). The bias toward small shapes keeps the
// 5k-trial smoke gate inside its time budget while still reaching
// multi-node clusters and 16-deep pipelines.
func RandomTuple(rng *rand.Rand) Tuple {
	for {
		t := Tuple{
			Ops:         1 + rng.Intn(24),
			FwdFLOPs:    1e8 * (1 + 99*rng.Float64()), // 1e8 .. 1e10
			Params:      1e5 * (1 + 99*rng.Float64()),
			Act:         1e4 * (1 + 99*rng.Float64()),
			GlobalBatch: 1 << rng.Intn(7), // 1 .. 64
			Devices:     1 << rng.Intn(5), // 1 .. 16
			Seed:        rng.Int63(),
		}
		if rng.Intn(3) == 0 {
			t.Slope = rng.Float64() * 2
		}
		t.Stages = 1 << rng.Intn(5) // 1 .. 16
		t.MicroBatch = 1 << rng.Intn(4)
		if rng.Intn(2) == 0 {
			t.MutSeed = rng.Int63()
		}
		if rng.Intn(4) == 0 {
			// Mixed fleet: random per-node class assignment over the
			// nodes the device count needs.
			nodes := (t.Devices + 7) / 8
			t.Hetero = make([]int, nodes)
			for i := range t.Hetero {
				t.Hetero[i] = rng.Intn(2)
			}
		}
		if rng.Intn(3) == 0 {
			spec := chaos.RandomValidFaultSpec(rng, t.Devices)
			if len(spec.Devices) > 0 || spec.InterBWScale != 0 {
				t.Fault = &spec
			}
		}
		if _, _, err := t.Build(); err == nil {
			return t
		}
	}
}

// RandomHeteroTuple draws a buildable tuple guaranteed to sit on a
// mixed-class cluster — the hetero slice of the diff smoke, where the
// class-aware model and simulator must agree with zero violations.
func RandomHeteroTuple(rng *rand.Rand) Tuple {
	for {
		t := RandomTuple(rng)
		if len(t.Hetero) == 0 {
			nodes := (t.Devices + 7) / 8
			t.Hetero = make([]int, nodes)
			for i := range t.Hetero {
				t.Hetero[i] = rng.Intn(2)
			}
			if _, _, err := t.Build(); err != nil {
				continue
			}
		}
		hasBoth := false
		for _, k := range t.Hetero {
			if k != t.Hetero[0] {
				hasBoth = true
			}
		}
		// Single-node (or single-class) layouts are still heterogeneous
		// in the model's eyes only when both classes appear; bias toward
		// genuinely mixed fleets but keep uniform-class layouts too.
		if hasBoth || rng.Intn(4) == 0 {
			return t
		}
	}
}
