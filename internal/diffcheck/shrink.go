package diffcheck

// Shrink greedily minimizes a violating tuple: each pass tries a fixed
// list of reductions (halve ops, stages, batch, microbatch, devices;
// drop the fault spec, the mutations, the cost skew) and keeps any
// whose result still reproduces a violation of the same kind. Passes
// repeat until none of the reductions apply — a local minimum, which
// in practice is a tuple small enough to step through by hand. The
// returned step count is the number of accepted reductions (mirrored
// into the DiffShrinkStepsTotal metric by Run).
func Shrink(t Tuple, kind string, effectsOn bool) (Tuple, int) {
	return shrinkWith(t, func(c Tuple) bool {
		findings, _ := Check(&c, effectsOn)
		for _, f := range findings {
			if f.Kind == kind {
				return true
			}
		}
		return false
	})
}

// shrinkWith is the greedy engine behind Shrink, parameterized by an
// arbitrary reproduction predicate (t itself is assumed to reproduce).
func shrinkWith(t Tuple, reproduces func(Tuple) bool) (Tuple, int) {
	steps := 0
	for {
		improved := false
		for _, cand := range reductions(t) {
			if reproduces(cand) {
				t = cand
				steps++
				improved = true
				break // restart the pass from the smallest reduction
			}
		}
		if !improved {
			return t, steps
		}
	}
}

// reductions lists the candidate one-step reductions of t, most
// aggressive first. Unconstructible results are fine: Check reports a
// "build" finding for them, which never matches the violation kind
// being shrunk, so the shrinker simply rejects the step.
func reductions(t Tuple) []Tuple {
	var out []Tuple
	add := func(mut func(*Tuple)) {
		c := t
		if c.Fault != nil {
			f := *c.Fault // don't alias the parent's spec
			c.Fault = &f
		}
		mut(&c)
		out = append(out, c)
	}
	if t.Ops > 1 {
		add(func(c *Tuple) { c.Ops /= 2 })
		add(func(c *Tuple) { c.Ops-- })
	}
	if t.Stages > 1 {
		add(func(c *Tuple) { c.Stages /= 2 })
	}
	if t.GlobalBatch > 1 {
		add(func(c *Tuple) { c.GlobalBatch /= 2 })
	}
	if t.MicroBatch > 1 {
		add(func(c *Tuple) { c.MicroBatch /= 2 })
	}
	if t.Devices > 1 {
		add(func(c *Tuple) { c.Devices /= 2; c.Fault = nil })
	}
	if t.Fault != nil {
		add(func(c *Tuple) { c.Fault = nil })
	}
	if t.MutSeed != 0 {
		add(func(c *Tuple) { c.MutSeed = 0 })
	}
	if t.Slope != 0 {
		add(func(c *Tuple) { c.Slope = 0 })
	}
	return out
}
