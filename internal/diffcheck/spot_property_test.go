package diffcheck

// Satellite property tests for the spot rework model: monotonicity is
// re-derived over randomized (hazard, cadence, recovery, checkpoint)
// tuples whose iteration times come from the shared RandomTuple
// generator — the same corpus the differential runs use, so the risk
// model is exercised over realistic plan timings, not synthetic ones.

import (
	"math/rand"
	"testing"

	"aceso/internal/perfmodel"
)

func TestReworkMonotoneProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	trials := 0
	for trials < 300 {
		tup := RandomTuple(rng)
		pm, cfg, err := tup.Build()
		if err != nil {
			t.Fatalf("generator emitted unbuildable tuple: %v", err)
		}
		est := pm.Estimate(cfg)
		iterTime := est.IterTime
		if iterTime <= 0 {
			continue // infeasible tuple: no meaningful iteration time
		}
		trials++

		lam := rng.Float64() * 0.05 // reclaims/second, generously high
		cadence := 1 + rng.Intn(64)
		recovery := rng.Float64() * 20 * iterTime
		ckpt := rng.Float64() * 2 * iterTime

		rw := perfmodel.Rework(lam, cadence, iterTime, recovery)
		if rw < 1 {
			t.Fatalf("Rework(%v, %d, %v, %v) = %v < 1", lam, cadence, iterTime, recovery, rw)
		}
		exp := perfmodel.ExpectedIterTime(iterTime, lam, cadence, recovery, ckpt)
		if exp < iterTime {
			t.Fatalf("ExpectedIterTime %v < nominal %v (lam=%v k=%d rec=%v ck=%v)",
				exp, iterTime, lam, cadence, recovery, ckpt)
		}

		// More hazard never shrinks the expected iteration time.
		lam2 := lam + rng.Float64()*0.05
		exp2 := perfmodel.ExpectedIterTime(iterTime, lam2, cadence, recovery, ckpt)
		if exp2 < exp {
			t.Fatalf("hazard monotonicity violated: lam %v→%v but expected %v→%v (k=%d rec=%v ck=%v iter=%v)",
				lam, lam2, exp, exp2, cadence, recovery, ckpt, iterTime)
		}

		// A longer cadence never shrinks the rework factor: more
		// un-checkpointed work is at risk per reclaim.
		cadence2 := cadence + rng.Intn(64)
		rw2 := perfmodel.Rework(lam, cadence2, iterTime, recovery)
		if rw2 < rw {
			t.Fatalf("cadence monotonicity violated: k %d→%d but rework %v→%v (lam=%v rec=%v iter=%v)",
				cadence, cadence2, rw, rw2, lam, recovery, iterTime)
		}

		// The recommended cadence is always actionable: within [1, max].
		max := 1 + rng.Intn(64)
		k := perfmodel.RecommendedCadence(lam, iterTime, ckpt, max)
		if k < 1 || k > max {
			t.Fatalf("RecommendedCadence(%v, %v, %v, %d) = %d outside [1, %d]",
				lam, iterTime, ckpt, max, k, max)
		}
	}
}
