package model

import (
	"fmt"
	"strconv"
	"strings"
)

func errUnknownSize(family, size string, known []string) error {
	return fmt.Errorf("model: unknown %s size %q (known: %s)",
		family, size, strings.Join(known, ", "))
}

func errInvalidArg(builder, arg string, v int) error {
	return fmt.Errorf("model: %s: invalid %s %d", builder, arg, v)
}

func itoa(v int) string { return strconv.Itoa(v) }
