package model

import "aceso/internal/hardware"

// DimPass marks layout-polymorphic operators (activations flow through
// element-wise): the op adopts its input layout and benefits from
// tensor parallelism only when that layout is Split. The performance
// model special-cases this name.
var DimPass = PartitionDim{Name: "pass", In: Split, Out: Split}

// transformerSpec bundles the dimensions shared by the transformer
// builders (GPT-3, T5, DeepTransformer).
type transformerSpec struct {
	Hidden int
	Heads  int
	FFN    int // feed-forward inner dimension
	Vocab  int
}

// addAttention appends the self-attention ops of one transformer layer
// operating on sequences of length seq: LN → QKV (column-parallel) →
// attention core (head-parallel) → output projection (row-parallel).
func (g *Graph) addAttention(layer, seq int, sp transformerSpec, prefix string) {
	h := float64(sp.Hidden)
	s := float64(seq)
	g.addOp(Op{
		Name: prefix + "ln1", Kind: KindLayerNorm, Layer: layer,
		FwdFLOPs: 5 * s * h, Params: 2 * h,
		ActElems: s * h, BwdFLOPsFactor: 1,
		Dims: []PartitionDim{DimNone},
	})
	g.addOp(Op{
		Name: prefix + "qkv", Kind: KindMatMul, Layer: layer,
		FwdFLOPs: 6 * s * h * h, Params: 3*h*h + 3*h,
		ActElems: 3 * s * h,
		Dims:     []PartitionDim{DimColumn, DimRow},
	})
	g.addOp(Op{
		Name: prefix + "attn", Kind: KindAttentionCore, Layer: layer,
		FwdFLOPs: 4 * s * s * h,
		ActElems: s * h, WorkElems: float64(sp.Heads) * s * s,
		Dims: []PartitionDim{DimHead},
	})
	g.addOp(Op{
		Name: prefix + "attn-out", Kind: KindMatMul, Layer: layer,
		FwdFLOPs: 2 * s * h * h, Params: h*h + h,
		ActElems: s * h,
		Dims:     []PartitionDim{DimRow, DimColumn},
	})
}

// addMLP appends the feed-forward ops of one transformer layer:
// LN → H→F (column-parallel) → GeLU → F→H (row-parallel).
func (g *Graph) addMLP(layer, seq int, sp transformerSpec, prefix string) {
	h := float64(sp.Hidden)
	f := float64(sp.FFN)
	s := float64(seq)
	g.addOp(Op{
		Name: prefix + "ln2", Kind: KindLayerNorm, Layer: layer,
		FwdFLOPs: 5 * s * h, Params: 2 * h,
		ActElems: s * h, BwdFLOPsFactor: 1,
		Dims: []PartitionDim{DimNone},
	})
	g.addOp(Op{
		Name: prefix + "mlp1", Kind: KindMatMul, Layer: layer,
		FwdFLOPs: 2 * s * h * f, Params: h*f + f,
		ActElems: s * f,
		Dims:     []PartitionDim{DimColumn, DimRow},
	})
	g.addOp(Op{
		Name: prefix + "gelu", Kind: KindElementwise, Layer: layer,
		FwdFLOPs: 8 * s * f,
		ActElems: s * f, BwdFLOPsFactor: 1,
		Dims: []PartitionDim{DimPass},
	})
	g.addOp(Op{
		Name: prefix + "mlp2", Kind: KindMatMul, Layer: layer,
		FwdFLOPs: 2 * s * h * f, Params: f*h + h,
		ActElems: s * h,
		Dims:     []PartitionDim{DimRow, DimColumn},
	})
}

// addDecoderLayer appends a GPT-style decoder layer (8 ops).
func (g *Graph) addDecoderLayer(layer, seq int, sp transformerSpec) {
	g.addAttention(layer, seq, sp, "")
	g.addMLP(layer, seq, sp, "")
}

// addEmbedding appends the (vocab-parallel) token+position embedding.
func (g *Graph) addEmbedding(seq int, sp transformerSpec) {
	h := float64(sp.Hidden)
	s := float64(seq)
	g.addOp(Op{
		Name: "embedding", Kind: KindEmbedding, Layer: -1,
		FwdFLOPs: 2 * s * h, // lookup + position add
		Params:   float64(sp.Vocab)*h + s*h,
		ActElems: s * h, BwdFLOPsFactor: 1,
		Dims: []PartitionDim{
			// Vocab-parallel embedding: each rank looks up its vocab
			// shard; outputs are summed with an all-reduce.
			{Name: "vocab", In: Replicated, Out: Replicated, AllReduceOut: true},
		},
	})
}

// addLMHead appends the final LN, the (weight-tied, column-parallel)
// LM projection, and the loss.
func (g *Graph) addLMHead(seq int, sp transformerSpec) {
	h := float64(sp.Hidden)
	s := float64(seq)
	v := float64(sp.Vocab)
	g.addOp(Op{
		Name: "final-ln", Kind: KindLayerNorm, Layer: -1,
		FwdFLOPs: 5 * s * h, Params: 2 * h,
		ActElems: s * h, BwdFLOPsFactor: 1,
		Dims: []PartitionDim{DimNone},
	})
	g.addOp(Op{
		Name: "lm-head", Kind: KindMatMul, Layer: -1,
		FwdFLOPs: 2 * s * h * v,
		Params:   0, // weight-tied with the embedding
		ActElems: s * v,
		Dims:     []PartitionDim{DimColumn},
	})
	g.addOp(Op{
		Name: "loss", Kind: KindLoss, Layer: -1,
		FwdFLOPs: 5 * s * v,
		ActElems: s, BwdFLOPsFactor: 1,
		Dims: []PartitionDim{DimPass},
	})
}

// GPT3Sizes lists the parameter-size labels from Table 2.
var GPT3Sizes = []string{"350M", "1.3B", "2.6B", "6.7B", "13B"}

type gptConfig struct {
	layers, hidden, heads int
}

var gptConfigs = map[string]gptConfig{
	"350M": {24, 1024, 16},
	"1.3B": {24, 2048, 16},
	"2.6B": {32, 2560, 32},
	"6.7B": {32, 4096, 32},
	"13B":  {40, 5120, 40},
}

// GPT3 builds the GPT-3 model of the given size label (Table 2:
// FP16, batch 1024, sequence length 2048).
func GPT3(size string) (*Graph, error) {
	cfg, ok := gptConfigs[size]
	if !ok {
		return nil, errUnknownSize("GPT-3", size, GPT3Sizes)
	}
	const seq = 2048
	sp := transformerSpec{Hidden: cfg.hidden, Heads: cfg.heads, FFN: 4 * cfg.hidden, Vocab: 51200}
	g := &Graph{
		Name:        "gpt3-" + size,
		Precision:   hardware.FP16,
		GlobalBatch: 1024,
		SeqLen:      seq,
	}
	g.addEmbedding(seq, sp)
	for l := 0; l < cfg.layers; l++ {
		g.addDecoderLayer(l, seq, sp)
	}
	g.addLMHead(seq, sp)
	return g, nil
}

// DeepTransformer builds the DeepNet-style model used in the
// 1K-layer scalability study (Exp#3): a stack of `layers` transformer
// layers with the hyper-parameters from Wang et al. 2022 (hidden 1024)
// on sequence length 1024.
func DeepTransformer(layers int) (*Graph, error) {
	if layers <= 0 {
		return nil, errInvalidArg("DeepTransformer", "layers", layers)
	}
	const seq = 1024
	sp := transformerSpec{Hidden: 1024, Heads: 16, FFN: 4096, Vocab: 32768}
	g := &Graph{
		Name:        "deep-" + itoa(layers),
		Precision:   hardware.FP16,
		GlobalBatch: 256,
		SeqLen:      seq,
	}
	g.addEmbedding(seq, sp)
	for l := 0; l < layers; l++ {
		g.addDecoderLayer(l, seq, sp)
	}
	g.addLMHead(seq, sp)
	return g, nil
}
