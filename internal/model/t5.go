package model

import (
	"math"

	"aceso/internal/hardware"
)

// T5Sizes lists the parameter-size labels from Table 2.
var T5Sizes = []string{"770M", "3B", "6B", "11B", "22B"}

type t5Config struct {
	encLayers, decLayers, hidden, heads int
	targetParams                        float64
}

var t5Configs = map[string]t5Config{
	"770M": {24, 24, 1024, 16, 0.77e9},
	"3B":   {24, 24, 1024, 32, 3e9},
	"6B":   {24, 24, 2048, 32, 6e9},
	"11B":  {24, 24, 2048, 64, 11e9},
	"22B":  {24, 24, 4096, 64, 22e9},
}

// T5 builds the T5 encoder-decoder model of the given size label
// (Table 2: FP16, batch 1024, sequence length 2048 for encoders and
// 512 for decoders). Sizes are hit by solving the feed-forward width
// for the target parameter count at fixed depth/hidden, preserving the
// heterogeneous, imbalanced structure the paper highlights.
func T5(size string) (*Graph, error) {
	cfg, ok := t5Configs[size]
	if !ok {
		return nil, errUnknownSize("T5", size, T5Sizes)
	}
	const (
		encSeq = 2048
		decSeq = 512
		vocab  = 32128
	)
	h := float64(cfg.hidden)
	// Solve FFN width f from:
	//   target ≈ V·h + encL·(4h² + 2hf) + decL·(8h² + 2hf)
	fixed := float64(vocab)*h +
		float64(cfg.encLayers)*4*h*h +
		float64(cfg.decLayers)*8*h*h
	f := (cfg.targetParams - fixed) / (2 * h * float64(cfg.encLayers+cfg.decLayers))
	ffn := int(math.Round(f/64) * 64)
	if ffn < 4*cfg.hidden {
		ffn = 4 * cfg.hidden
	}
	sp := transformerSpec{Hidden: cfg.hidden, Heads: cfg.heads, FFN: ffn, Vocab: vocab}

	g := &Graph{
		Name:        "t5-" + size,
		Precision:   hardware.FP16,
		GlobalBatch: 1024,
		SeqLen:      encSeq,
	}
	g.addEmbedding(encSeq, sp)
	layer := 0
	for l := 0; l < cfg.encLayers; l++ {
		g.addAttention(layer, encSeq, sp, "enc-")
		g.addMLP(layer, encSeq, sp, "enc-")
		layer++
	}
	for l := 0; l < cfg.decLayers; l++ {
		g.addAttention(layer, decSeq, sp, "dec-")
		g.addCrossAttention(layer, decSeq, encSeq, sp)
		g.addMLP(layer, decSeq, sp, "dec-")
		layer++
	}
	g.addLMHead(decSeq, sp)
	return g, nil
}

// addCrossAttention appends decoder cross-attention over the encoder
// output: LN → Q (from decoder, column) + KV (from encoder memory,
// column) → cross attention core → output projection (row).
func (g *Graph) addCrossAttention(layer, qSeq, kvSeq int, sp transformerSpec) {
	h := float64(sp.Hidden)
	sq := float64(qSeq)
	skv := float64(kvSeq)
	g.addOp(Op{
		Name: "dec-xln", Kind: KindLayerNorm, Layer: layer,
		FwdFLOPs: 5 * sq * h, Params: 2 * h,
		ActElems: sq * h, BwdFLOPsFactor: 1,
		Dims: []PartitionDim{DimNone},
	})
	g.addOp(Op{
		Name: "dec-xq", Kind: KindMatMul, Layer: layer,
		FwdFLOPs: 2 * sq * h * h, Params: h * h,
		ActElems: sq * h,
		Dims:     []PartitionDim{DimColumn, DimRow},
	})
	g.addOp(Op{
		Name: "dec-xkv", Kind: KindMatMul, Layer: layer,
		FwdFLOPs: 4 * skv * h * h, Params: 2 * h * h,
		ActElems: 2 * skv * h,
		Dims:     []PartitionDim{DimColumn, DimRow},
	})
	g.addOp(Op{
		Name: "dec-xattn", Kind: KindAttentionCore, Layer: layer,
		FwdFLOPs: 4 * sq * skv * h,
		ActElems: sq * h, WorkElems: float64(sp.Heads) * sq * skv,
		Dims: []PartitionDim{DimHead},
	})
	g.addOp(Op{
		Name: "dec-xout", Kind: KindMatMul, Layer: layer,
		FwdFLOPs: 2 * sq * h * h, Params: h * h,
		ActElems: sq * h,
		Dims:     []PartitionDim{DimRow, DimColumn},
	})
}
