// Package model defines the operator-level intermediate representation
// that Aceso's configuration search operates on, together with builders
// for the paper's benchmark models (GPT-3, T5, Wide-ResNet) and the
// 1K-layer DeepNet-style transformer used in the scalability study.
//
// All models in the paper are sequential at the granularity Aceso
// configures: a pipeline stage is a contiguous range of operators. A
// Graph is therefore an ordered slice of Ops. Each Op carries analytic
// per-sample costs (FLOPs, parameter count, activation bytes) from
// which the profiler and performance model derive time and memory.
package model

import (
	"fmt"
	"math"

	"aceso/internal/hardware"
)

// OpKind classifies an operator. The kind determines how tensor
// parallelism applies (e.g. layer norms are replicated, matmuls split).
type OpKind int

const (
	KindEmbedding OpKind = iota
	KindLayerNorm
	KindMatMul
	KindAttentionCore // score computation + softmax + context matmul
	KindConv
	KindPool
	KindElementwise
	KindLoss
)

var opKindNames = map[OpKind]string{
	KindEmbedding:     "embedding",
	KindLayerNorm:     "layernorm",
	KindMatMul:        "matmul",
	KindAttentionCore: "attention",
	KindConv:          "conv",
	KindPool:          "pool",
	KindElementwise:   "elementwise",
	KindLoss:          "loss",
}

// String implements fmt.Stringer.
func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Layout describes how a tensor is distributed across the ranks of a
// tensor-parallel group.
type Layout int

const (
	// Replicated: every tp rank holds the full tensor.
	Replicated Layout = iota
	// Split: the tensor is partitioned across tp ranks.
	Split
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	if l == Split {
		return "split"
	}
	return "replicated"
}

// PartitionDim is one way of sharding an operator's weights under
// tensor parallelism. Following Megatron-LM, a column-parallel matmul
// takes replicated input and produces split output with no collective;
// a row-parallel matmul takes split input and produces replicated
// output at the cost of an all-reduce. Convolutions mirror this with
// output-channel (column-like) and input-channel (row-like) splits.
type PartitionDim struct {
	Name string
	// In is the input layout this dim expects; Out is what it produces.
	In, Out Layout
	// AllReduceOut is true when producing the output requires an
	// all-reduce of the op's activation across the tp group
	// (row-parallel matmul / input-channel conv).
	AllReduceOut bool
}

// Canonical partition dimensions.
var (
	DimColumn     = PartitionDim{Name: "col", In: Replicated, Out: Split}
	DimRow        = PartitionDim{Name: "row", In: Split, Out: Replicated, AllReduceOut: true}
	DimOutChannel = PartitionDim{Name: "out-chan", In: Replicated, Out: Split}
	DimInChannel  = PartitionDim{Name: "in-chan", In: Split, Out: Replicated, AllReduceOut: true}
	// DimHead splits attention heads: both input (QKV, already split by
	// the producing column matmul) and output stay split.
	DimHead = PartitionDim{Name: "head", In: Split, Out: Split}
	// DimNone marks operators that tensor parallelism cannot split;
	// they are computed redundantly on every tp rank (layer norms,
	// element-wise ops on replicated tensors).
	DimNone = PartitionDim{Name: "none", In: Replicated, Out: Replicated}
)

// Op is one operator of a sequential model. All per-sample quantities
// are for a single training sample (one sequence or one image).
type Op struct {
	ID    int
	Name  string
	Kind  OpKind
	Layer int // model layer this op belongs to (−1 for pre/post ops)

	// FwdFLOPs is the forward FLOP count per sample. Backward compute
	// is modelled as BwdFLOPsFactor × FwdFLOPs (2.0 for matmul-like
	// ops: grad wrt input + grad wrt weight).
	FwdFLOPs       float64
	BwdFLOPsFactor float64

	// Params is the number of scalar parameters (unsharded).
	Params float64

	// ActElems is the number of output-activation elements per sample;
	// this is what flows to the next operator and what 1F1B stashes
	// for the backward pass.
	ActElems float64
	// WorkElems is the number of additional intermediate elements the
	// op materializes during forward (e.g. attention probability
	// matrices); saved for backward unless the op is recomputed.
	WorkElems float64

	// Dims are the tensor-parallel sharding options for this op. The
	// first entry is the default (Megatron-LM's choice). Ops that
	// cannot be split carry only DimNone.
	Dims []PartitionDim
}

// Parallelizable reports whether tensor parallelism can shard the op.
func (o *Op) Parallelizable() bool {
	return len(o.Dims) > 0 && o.Dims[0].Name != DimNone.Name
}

// DimIndex returns the index of the dim named name, or -1.
func (o *Op) DimIndex(name string) int {
	for i, d := range o.Dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// Graph is a sequential DNN model: ops execute (and are partitioned
// into pipeline stages) in slice order.
type Graph struct {
	Name      string
	Ops       []Op
	Precision hardware.Precision

	// GlobalBatch is the training mini-batch size (samples/iteration).
	GlobalBatch int
	// SeqLen is informational (0 for vision models).
	SeqLen int
}

// Validate checks structural invariants of the graph.
func (g *Graph) Validate() error {
	if len(g.Ops) == 0 {
		return fmt.Errorf("model %q: no operators", g.Name)
	}
	if g.GlobalBatch <= 0 {
		return fmt.Errorf("model %q: GlobalBatch = %d, want > 0", g.Name, g.GlobalBatch)
	}
	for i := range g.Ops {
		o := &g.Ops[i]
		if o.ID != i {
			return fmt.Errorf("model %q: op %d has ID %d", g.Name, i, o.ID)
		}
		// The explicit non-finite checks matter: NaN compares false
		// against every bound, so a poisoned cost would sail through
		// `< 0` and corrupt every downstream score.
		nonFinite := math.IsNaN(o.FwdFLOPs) || math.IsInf(o.FwdFLOPs, 0) ||
			math.IsNaN(o.Params) || math.IsInf(o.Params, 0) ||
			math.IsNaN(o.ActElems) || math.IsInf(o.ActElems, 0) ||
			math.IsNaN(o.WorkElems) || math.IsInf(o.WorkElems, 0)
		if nonFinite || o.FwdFLOPs < 0 || o.Params < 0 || o.ActElems <= 0 || o.WorkElems < 0 {
			return fmt.Errorf("model %q: op %q has invalid costs", g.Name, o.Name)
		}
		if math.IsNaN(o.BwdFLOPsFactor) || math.IsInf(o.BwdFLOPsFactor, 0) || o.BwdFLOPsFactor < 0 {
			return fmt.Errorf("model %q: op %q has negative or non-finite BwdFLOPsFactor", g.Name, o.Name)
		}
		if len(o.Dims) == 0 {
			return fmt.Errorf("model %q: op %q has no partition dims", g.Name, o.Name)
		}
	}
	return nil
}

// TotalParams returns the total parameter count of the model.
func (g *Graph) TotalParams() float64 {
	var sum float64
	for i := range g.Ops {
		sum += g.Ops[i].Params
	}
	return sum
}

// TotalFwdFLOPs returns the per-sample forward FLOPs of the model.
func (g *Graph) TotalFwdFLOPs() float64 {
	var sum float64
	for i := range g.Ops {
		sum += g.Ops[i].FwdFLOPs
	}
	return sum
}

// Layers returns the number of distinct non-negative layer indices.
func (g *Graph) Layers() int {
	max := -1
	for i := range g.Ops {
		if g.Ops[i].Layer > max {
			max = g.Ops[i].Layer
		}
	}
	return max + 1
}

// addOp appends an op, assigning its ID, and returns its index.
func (g *Graph) addOp(o Op) int {
	o.ID = len(g.Ops)
	if o.BwdFLOPsFactor == 0 {
		o.BwdFLOPsFactor = 2
	}
	if len(o.Dims) == 0 {
		o.Dims = []PartitionDim{DimNone}
	}
	g.Ops = append(g.Ops, o)
	return o.ID
}
