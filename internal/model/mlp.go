package model

import "aceso/internal/hardware"

// MLP builds a numerically-executable model: a stack of `layers`
// dim×dim linear layers with ReLU between them (2·layers−1 operators).
// Unlike the benchmark builders, MLP graphs can be *run* — the numeric
// runtime (internal/runtime) executes any valid configuration of an
// MLP and verifies it against a serial reference, reproducing the
// paper's correctness methodology for semantic-preserving primitives.
func MLP(layers, dim, batch int) (*Graph, error) {
	if layers <= 0 || dim <= 0 || batch <= 0 {
		return nil, errInvalidArg("MLP", "layers/dim/batch", layers*dim*batch)
	}
	g := &Graph{
		Name:        "mlp-" + itoa(layers) + "x" + itoa(dim),
		Precision:   hardware.FP32,
		GlobalBatch: batch,
	}
	d := float64(dim)
	for l := 0; l < layers; l++ {
		g.addOp(Op{
			Name: "linear" + itoa(l), Kind: KindMatMul, Layer: l,
			FwdFLOPs: 2 * d * d, Params: d*d + d,
			ActElems: d,
			Dims:     []PartitionDim{DimColumn, DimRow},
		})
		if l < layers-1 {
			g.addOp(Op{
				Name: "relu" + itoa(l), Kind: KindElementwise, Layer: l,
				FwdFLOPs: d, ActElems: d, BwdFLOPsFactor: 1,
				Dims: []PartitionDim{DimPass},
			})
		}
	}
	return g, nil
}

// MLPWithNorm builds a numerically-executable stack of `layers` blocks
// of linear → layer-norm → ReLU (3·layers−1 operators; the final block
// omits the ReLU). It extends the runtime-validation surface to the
// replicated-computation semantics of layer norms (DimNone: computed
// redundantly on every tensor-parallel rank, with a gather when the
// incoming activation is column-split).
func MLPWithNorm(layers, dim, batch int) (*Graph, error) {
	if layers <= 0 || dim <= 0 || batch <= 0 {
		return nil, errInvalidArg("MLPWithNorm", "layers/dim/batch", layers*dim*batch)
	}
	g := &Graph{
		Name:        "mlpln-" + itoa(layers) + "x" + itoa(dim),
		Precision:   hardware.FP32,
		GlobalBatch: batch,
	}
	d := float64(dim)
	for l := 0; l < layers; l++ {
		g.addOp(Op{
			Name: "linear" + itoa(l), Kind: KindMatMul, Layer: l,
			FwdFLOPs: 2 * d * d, Params: d*d + d,
			ActElems: d,
			Dims:     []PartitionDim{DimColumn, DimRow},
		})
		g.addOp(Op{
			Name: "ln" + itoa(l), Kind: KindLayerNorm, Layer: l,
			FwdFLOPs: 5 * d, Params: 2 * d,
			ActElems: d, BwdFLOPsFactor: 1,
			Dims: []PartitionDim{DimNone},
		})
		if l < layers-1 {
			g.addOp(Op{
				Name: "relu" + itoa(l), Kind: KindElementwise, Layer: l,
				FwdFLOPs: d, ActElems: d, BwdFLOPsFactor: 1,
				Dims: []PartitionDim{DimPass},
			})
		}
	}
	return g, nil
}
