package model

import "aceso/internal/hardware"

// TinyGPT builds a numerically-executable transformer: `layers` blocks
// of LayerNorm → QKV projection → multi-head attention → output
// projection → LayerNorm → MLP (up, ReLU, down). It extends the
// runtime-validation surface (§4 methodology) from MLPs to the
// architecture family the paper actually evaluates: attention cores
// split by heads under tensor parallelism, layer norms computed
// replicated, row/column matmuls.
//
// Runtime convention (differs from the benchmark builders): ActElems
// is the per-token output width of the op, and the numeric runtime
// lays activations out as (samples·seq) rows × width columns. hidden
// must be divisible by heads.
func TinyGPT(layers, seq, hidden, heads, batch int) (*Graph, error) {
	if layers <= 0 || seq <= 0 || hidden <= 0 || heads <= 0 || batch <= 0 {
		return nil, errInvalidArg("TinyGPT", "shape", layers*seq*hidden*heads*batch)
	}
	if hidden%heads != 0 {
		return nil, errInvalidArg("TinyGPT", "hidden%heads", hidden%heads)
	}
	g := &Graph{
		Name:        "tinygpt-" + itoa(layers) + "x" + itoa(hidden),
		Precision:   hardware.FP32,
		GlobalBatch: batch,
		SeqLen:      seq,
	}
	h := float64(hidden)
	s := float64(seq)
	for l := 0; l < layers; l++ {
		g.addOp(Op{
			Name: "ln1-" + itoa(l), Kind: KindLayerNorm, Layer: l,
			FwdFLOPs: 5 * s * h, Params: 2 * h,
			ActElems: h, BwdFLOPsFactor: 1,
			Dims: []PartitionDim{DimNone},
		})
		g.addOp(Op{
			Name: "qkv-" + itoa(l), Kind: KindMatMul, Layer: l,
			FwdFLOPs: 6 * s * h * h, Params: 3*h*h + 3*h,
			ActElems: 3 * h,
			Dims:     []PartitionDim{DimColumn},
		})
		g.addOp(Op{
			Name: "attn-" + itoa(l), Kind: KindAttentionCore, Layer: l,
			FwdFLOPs: 4 * s * s * h,
			ActElems: h, WorkElems: float64(heads) * s * s, BwdFLOPsFactor: 1,
			Dims: []PartitionDim{DimHead},
		})
		g.addOp(Op{
			Name: "proj-" + itoa(l), Kind: KindMatMul, Layer: l,
			FwdFLOPs: 2 * s * h * h, Params: h*h + h,
			ActElems: h,
			Dims:     []PartitionDim{DimRow, DimColumn},
		})
		g.addOp(Op{
			Name: "ln2-" + itoa(l), Kind: KindLayerNorm, Layer: l,
			FwdFLOPs: 5 * s * h, Params: 2 * h,
			ActElems: h, BwdFLOPsFactor: 1,
			Dims: []PartitionDim{DimNone},
		})
		g.addOp(Op{
			Name: "mlp1-" + itoa(l), Kind: KindMatMul, Layer: l,
			FwdFLOPs: 8 * s * h * h, Params: 4*h*h + 4*h,
			ActElems: 4 * h,
			Dims:     []PartitionDim{DimColumn, DimRow},
		})
		g.addOp(Op{
			Name: "relu-" + itoa(l), Kind: KindElementwise, Layer: l,
			FwdFLOPs: 4 * s * h, ActElems: 4 * h, BwdFLOPsFactor: 1,
			Dims: []PartitionDim{DimPass},
		})
		g.addOp(Op{
			Name: "mlp2-" + itoa(l), Kind: KindMatMul, Layer: l,
			FwdFLOPs: 8 * s * h * h, Params: 4*h*h + h,
			ActElems: h,
			Dims:     []PartitionDim{DimRow, DimColumn},
		})
	}
	return g, nil
}
