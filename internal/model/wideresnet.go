package model

import (
	"math"

	"aceso/internal/hardware"
)

// WideResNetSizes lists the parameter-size labels from Table 2.
var WideResNetSizes = []string{"0.5B", "2B", "4B", "6.8B", "13B"}

var wrnTargets = map[string]float64{
	"0.5B": 0.5e9,
	"2B":   2e9,
	"4B":   4e9,
	"6.8B": 6.8e9,
	"13B":  13e9,
}

// ResNet-50 bottleneck layout: blocks per stage, base inner widths,
// and the spatial resolution of each stage for 224×224 inputs.
var (
	wrnBlocks  = [4]int{3, 4, 6, 3}
	wrnInner   = [4]int{64, 128, 256, 512}
	wrnSpatial = [4]int{56, 28, 14, 7}
)

// WideResNet builds a Wide-ResNet (ResNet-50 layout with widened
// convolutions, Zagoruyko & Komodakis 2016) whose width factor is
// solved so the total parameter count matches the size label (Table 2:
// FP32, batch 1536, 224×224×3 inputs).
func WideResNet(size string) (*Graph, error) {
	target, ok := wrnTargets[size]
	if !ok {
		return nil, errUnknownSize("Wide-ResNet", size, WideResNetSizes)
	}
	// Binary-search the width factor; params grow monotonically in k.
	lo, hi := 1.0, 64.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if wrnParams(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	k := (lo + hi) / 2

	g := &Graph{
		Name:        "wresnet-" + size,
		Precision:   hardware.FP32,
		GlobalBatch: 1536,
	}
	buildWRN(g, k)
	return g, nil
}

// wrnChannels returns the rounded channel widths for width factor k.
func wrnChannels(k float64) (stem int, inner, outer [4]int) {
	round8 := func(v float64) int {
		n := int(math.Round(v/8) * 8)
		if n < 8 {
			n = 8
		}
		return n
	}
	stem = round8(64 * k)
	for s := 0; s < 4; s++ {
		inner[s] = round8(float64(wrnInner[s]) * k)
		outer[s] = 4 * inner[s]
	}
	return stem, inner, outer
}

// wrnParams counts total parameters at width factor k (convs + BN +
// classifier), mirroring buildWRN.
func wrnParams(k float64) float64 {
	stem, inner, outer := wrnChannels(k)
	total := 7*7*3*float64(stem) + 2*float64(stem) // stem conv + BN
	in := stem
	for s := 0; s < 4; s++ {
		for b := 0; b < wrnBlocks[s]; b++ {
			ci, co := float64(inner[s]), float64(outer[s])
			total += float64(in)*ci + 2*ci // 1x1 reduce + BN
			total += 9*ci*ci + 2*ci        // 3x3 + BN
			total += ci*co + 2*co          // 1x1 expand + BN
			if b == 0 {
				total += float64(in)*co + 2*co // downsample projection
			}
			in = outer[s]
		}
	}
	total += float64(in)*1000 + 1000 // classifier
	return total
}

// addConvBN appends a conv followed by its BatchNorm+ReLU op.
func (g *Graph) addConvBN(layer int, name string, kern, cin, cout, hout int, stride int) {
	h := float64(hout)
	fl := 2 * float64(kern*kern) * float64(cin) * float64(cout) * h * h
	g.addOp(Op{
		Name: name, Kind: KindConv, Layer: layer,
		FwdFLOPs: fl,
		Params:   float64(kern * kern * cin * cout),
		ActElems: float64(cout) * h * h,
		Dims:     []PartitionDim{DimOutChannel, DimInChannel},
	})
	g.addOp(Op{
		Name: name + "-bn", Kind: KindLayerNorm, Layer: layer,
		FwdFLOPs: 5 * float64(cout) * h * h,
		Params:   2 * float64(cout),
		ActElems: float64(cout) * h * h, BwdFLOPsFactor: 1,
		// BatchNorm is per-channel: it follows a channel-split layout.
		Dims: []PartitionDim{DimPass},
	})
}

func buildWRN(g *Graph, k float64) {
	stem, inner, outer := wrnChannels(k)
	g.addConvBN(-1, "stem", 7, 3, stem, 112, 2)
	g.addOp(Op{
		Name: "maxpool", Kind: KindPool, Layer: -1,
		FwdFLOPs: 9 * float64(stem) * 56 * 56,
		ActElems: float64(stem) * 56 * 56, BwdFLOPsFactor: 1,
		Dims: []PartitionDim{DimPass},
	})
	in := stem
	layer := 0
	for s := 0; s < 4; s++ {
		hw := wrnSpatial[s]
		for b := 0; b < wrnBlocks[s]; b++ {
			pfx := "s" + itoa(s) + "b" + itoa(b) + "-"
			g.addConvBN(layer, pfx+"conv1", 1, in, inner[s], hw, 1)
			g.addConvBN(layer, pfx+"conv2", 3, inner[s], inner[s], hw, 1)
			g.addConvBN(layer, pfx+"conv3", 1, inner[s], outer[s], hw, 1)
			if b == 0 {
				g.addConvBN(layer, pfx+"down", 1, in, outer[s], hw, 1)
			}
			in = outer[s]
			layer++
		}
	}
	g.addOp(Op{
		Name: "avgpool", Kind: KindPool, Layer: -1,
		FwdFLOPs: float64(in) * 7 * 7,
		ActElems: float64(in), BwdFLOPsFactor: 1,
		Dims: []PartitionDim{DimPass},
	})
	g.addOp(Op{
		Name: "fc", Kind: KindMatMul, Layer: -1,
		FwdFLOPs: 2 * float64(in) * 1000,
		Params:   float64(in)*1000 + 1000,
		ActElems: 1000,
		Dims:     []PartitionDim{DimColumn, DimRow},
	})
	g.addOp(Op{
		Name: "loss", Kind: KindLoss, Layer: -1,
		FwdFLOPs: 5 * 1000,
		ActElems: 1, BwdFLOPsFactor: 1,
		Dims: []PartitionDim{DimPass},
	})
}
