package model

import "aceso/internal/hardware"

// LlamaSizes lists the supported Llama-3-style size labels. Llama is
// not part of the paper's evaluation; it demonstrates that the
// operator IR and the search generalize to post-2022 architectures
// (grouped-query attention, SwiGLU feed-forward, RMSNorm).
var LlamaSizes = []string{"8B", "70B"}

type llamaConfig struct {
	layers, hidden, heads, kvHeads, ffn, vocab int
}

var llamaConfigs = map[string]llamaConfig{
	"8B":  {32, 4096, 32, 8, 14336, 128256},
	"70B": {80, 8192, 64, 8, 28672, 128256},
}

// Llama builds a Llama-3-style decoder stack ("8B" or "70B"):
// sequence length 4096, batch 512, mixed precision.
func Llama(size string) (*Graph, error) {
	cfg, ok := llamaConfigs[size]
	if !ok {
		return nil, errUnknownSize("Llama", size, LlamaSizes)
	}
	const seq = 4096
	g := &Graph{
		Name:        "llama-" + size,
		Precision:   hardware.FP16,
		GlobalBatch: 512,
		SeqLen:      seq,
	}
	h := float64(cfg.hidden)
	f := float64(cfg.ffn)
	s := float64(seq)
	v := float64(cfg.vocab)
	// Grouped-query attention: K/V projections produce only
	// kvHeads/heads of the hidden width.
	kvFrac := float64(cfg.kvHeads) / float64(cfg.heads)

	g.addOp(Op{
		Name: "embedding", Kind: KindEmbedding, Layer: -1,
		FwdFLOPs: 2 * s * h, Params: v * h,
		ActElems: s * h, BwdFLOPsFactor: 1,
		Dims: []PartitionDim{{Name: "vocab", In: Replicated, Out: Replicated, AllReduceOut: true}},
	})
	for l := 0; l < cfg.layers; l++ {
		g.addOp(Op{
			Name: "rms1", Kind: KindLayerNorm, Layer: l,
			FwdFLOPs: 4 * s * h, Params: h,
			ActElems: s * h, BwdFLOPsFactor: 1,
			Dims: []PartitionDim{DimNone},
		})
		qkvWidth := h * (1 + 2*kvFrac)
		g.addOp(Op{
			Name: "qkv", Kind: KindMatMul, Layer: l,
			FwdFLOPs: 2 * s * h * qkvWidth, Params: h * qkvWidth,
			ActElems: s * qkvWidth,
			Dims:     []PartitionDim{DimColumn, DimRow},
		})
		g.addOp(Op{
			Name: "attn", Kind: KindAttentionCore, Layer: l,
			FwdFLOPs: 4 * s * s * h,
			ActElems: s * h, WorkElems: float64(cfg.heads) * s * s,
			Dims: []PartitionDim{DimHead},
		})
		g.addOp(Op{
			Name: "attn-out", Kind: KindMatMul, Layer: l,
			FwdFLOPs: 2 * s * h * h, Params: h * h,
			ActElems: s * h,
			Dims:     []PartitionDim{DimRow, DimColumn},
		})
		g.addOp(Op{
			Name: "rms2", Kind: KindLayerNorm, Layer: l,
			FwdFLOPs: 4 * s * h, Params: h,
			ActElems: s * h, BwdFLOPsFactor: 1,
			Dims: []PartitionDim{DimNone},
		})
		// SwiGLU: gate and up projections (column-parallel), an
		// element-wise SiLU·mul, and the down projection (row-parallel).
		g.addOp(Op{
			Name: "gate-up", Kind: KindMatMul, Layer: l,
			FwdFLOPs: 4 * s * h * f, Params: 2 * h * f,
			ActElems: 2 * s * f,
			Dims:     []PartitionDim{DimColumn, DimRow},
		})
		g.addOp(Op{
			Name: "silu-mul", Kind: KindElementwise, Layer: l,
			FwdFLOPs: 10 * s * f,
			ActElems: s * f, BwdFLOPsFactor: 1,
			Dims: []PartitionDim{DimPass},
		})
		g.addOp(Op{
			Name: "down", Kind: KindMatMul, Layer: l,
			FwdFLOPs: 2 * s * f * h, Params: f * h,
			ActElems: s * h,
			Dims:     []PartitionDim{DimRow, DimColumn},
		})
	}
	g.addLMHead(seq, transformerSpec{Hidden: cfg.hidden, Heads: cfg.heads, FFN: cfg.ffn, Vocab: cfg.vocab})
	return g, nil
}
