package model

import "aceso/internal/hardware"

// Uniform builds a synthetic sequential model of n identical
// matmul-like operators. It is the workhorse of unit and property
// tests: costs are simple, so expected times and memories can be
// computed by hand.
func Uniform(n int, flops, params, act float64, batch int) *Graph {
	g := &Graph{
		Name:        "uniform-" + itoa(n),
		Precision:   hardware.FP16,
		GlobalBatch: batch,
	}
	for i := 0; i < n; i++ {
		g.addOp(Op{
			Name: "op" + itoa(i), Kind: KindMatMul, Layer: i,
			FwdFLOPs: flops, Params: params, ActElems: act,
			Dims: []PartitionDim{DimColumn, DimRow},
		})
	}
	return g
}

// Skewed builds a synthetic model whose i-th operator is (1+i·slope)×
// as expensive as the first; useful for bottleneck-identification
// tests where the heavy end is known in advance.
func Skewed(n int, baseFLOPs, params, act float64, slope float64, batch int) *Graph {
	g := &Graph{
		Name:        "skewed-" + itoa(n),
		Precision:   hardware.FP16,
		GlobalBatch: batch,
	}
	for i := 0; i < n; i++ {
		scale := 1 + slope*float64(i)
		g.addOp(Op{
			Name: "op" + itoa(i), Kind: KindMatMul, Layer: i,
			FwdFLOPs: baseFLOPs * scale, Params: params * scale, ActElems: act * scale,
			Dims: []PartitionDim{DimColumn, DimRow},
		})
	}
	return g
}
