package model

import (
	"strings"
	"testing"
)

func TestGPT3Sizes(t *testing.T) {
	// Total params should land near the size label (within 15%:
	// labels are nominal, e.g. "350M" is 355M in the real model).
	wants := map[string]float64{
		"350M": 0.35e9, "1.3B": 1.3e9, "2.6B": 2.6e9, "6.7B": 6.7e9, "13B": 13e9,
	}
	for size, want := range wants {
		g, err := GPT3(size)
		if err != nil {
			t.Fatalf("GPT3(%q): %v", size, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("GPT3(%q).Validate(): %v", size, err)
		}
		got := g.TotalParams()
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("GPT3(%q) params = %.3g, want ≈ %.3g", size, got, want)
		}
		if g.GlobalBatch != 1024 || g.SeqLen != 2048 {
			t.Errorf("GPT3(%q): batch=%d seq=%d, want 1024/2048", size, g.GlobalBatch, g.SeqLen)
		}
	}
}

func TestGPT3UnknownSize(t *testing.T) {
	if _, err := GPT3("9000B"); err == nil {
		t.Fatal("GPT3(unknown) should fail")
	}
}

func TestGPT3Structure(t *testing.T) {
	g, err := GPT3("1.3B")
	if err != nil {
		t.Fatal(err)
	}
	// embedding + 24 layers × 8 ops + final-ln + lm-head + loss.
	if want := 1 + 24*8 + 3; len(g.Ops) != want {
		t.Errorf("op count = %d, want %d", len(g.Ops), want)
	}
	if g.Layers() != 24 {
		t.Errorf("Layers() = %d, want 24", g.Layers())
	}
	if g.Ops[0].Kind != KindEmbedding {
		t.Errorf("first op kind = %v, want embedding", g.Ops[0].Kind)
	}
	if g.Ops[len(g.Ops)-1].Kind != KindLoss {
		t.Errorf("last op kind = %v, want loss", g.Ops[len(g.Ops)-1].Kind)
	}
}

func TestTransformerLayerAllReduceCount(t *testing.T) {
	// Megatron-LM shards a transformer layer so that exactly two ops
	// per layer all-reduce their output in the default dims: attn-out
	// and mlp2 (both row-parallel).
	g, err := GPT3("350M")
	if err != nil {
		t.Fatal(err)
	}
	perLayer := map[int]int{}
	for i := range g.Ops {
		o := &g.Ops[i]
		if o.Layer >= 0 && o.Dims[0].AllReduceOut {
			perLayer[o.Layer]++
		}
	}
	for l, n := range perLayer {
		if n != 2 {
			t.Errorf("layer %d has %d all-reducing ops, want 2", l, n)
		}
	}
	if len(perLayer) != 24 {
		t.Errorf("layers with all-reduce = %d, want 24", len(perLayer))
	}
}

func TestT5Sizes(t *testing.T) {
	wants := map[string]float64{
		"770M": 0.77e9, "3B": 3e9, "6B": 6e9, "11B": 11e9, "22B": 22e9,
	}
	for size, want := range wants {
		g, err := T5(size)
		if err != nil {
			t.Fatalf("T5(%q): %v", size, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("T5(%q).Validate(): %v", size, err)
		}
		got := g.TotalParams()
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("T5(%q) params = %.3g, want ≈ %.3g", size, got, want)
		}
	}
	if _, err := T5("nope"); err == nil {
		t.Fatal("T5(unknown) should fail")
	}
}

func TestT5Heterogeneity(t *testing.T) {
	// The decoder processes 512-token sequences vs the encoder's 2048,
	// so per-layer forward FLOPs must differ between halves — that
	// imbalance is what the paper's T5 experiments stress.
	g, err := T5("770M")
	if err != nil {
		t.Fatal(err)
	}
	var encFLOPs, decFLOPs float64
	for i := range g.Ops {
		o := &g.Ops[i]
		switch {
		case strings.HasPrefix(o.Name, "enc-"):
			encFLOPs += o.FwdFLOPs
		case strings.HasPrefix(o.Name, "dec-"):
			decFLOPs += o.FwdFLOPs
		}
	}
	if encFLOPs <= decFLOPs {
		t.Errorf("encoder FLOPs (%.3g) should exceed decoder FLOPs (%.3g)", encFLOPs, decFLOPs)
	}
	// Decoder layers must contain cross-attention ops.
	found := false
	for i := range g.Ops {
		if strings.Contains(g.Ops[i].Name, "xattn") {
			found = true
			break
		}
	}
	if !found {
		t.Error("decoder lacks cross-attention ops")
	}
}

func TestWideResNetSizes(t *testing.T) {
	for size, want := range wrnTargets {
		g, err := WideResNet(size)
		if err != nil {
			t.Fatalf("WideResNet(%q): %v", size, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("WideResNet(%q).Validate(): %v", size, err)
		}
		got := g.TotalParams()
		// Channel rounding makes the match looser than transformers.
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("WideResNet(%q) params = %.3g, want ≈ %.3g", size, got, want)
		}
		if g.GlobalBatch != 1536 {
			t.Errorf("WideResNet(%q) batch = %d, want 1536", size, g.GlobalBatch)
		}
	}
	if _, err := WideResNet("huge"); err == nil {
		t.Fatal("WideResNet(unknown) should fail")
	}
}

func TestWideResNetConvDims(t *testing.T) {
	g, err := WideResNet("0.5B")
	if err != nil {
		t.Fatal(err)
	}
	convs := 0
	for i := range g.Ops {
		o := &g.Ops[i]
		if o.Kind != KindConv {
			continue
		}
		convs++
		if o.DimIndex("out-chan") != 0 {
			t.Fatalf("conv %q: default dim = %q, want out-chan", o.Name, o.Dims[0].Name)
		}
		if o.DimIndex("in-chan") < 0 {
			t.Fatalf("conv %q lacks in-chan option", o.Name)
		}
	}
	// stem + 16 blocks × 3 convs + 4 downsamples = 53.
	if convs != 53 {
		t.Errorf("conv count = %d, want 53", convs)
	}
}

func TestDeepTransformer(t *testing.T) {
	for _, layers := range []int{8, 64, 1024} {
		g, err := DeepTransformer(layers)
		if err != nil {
			t.Fatalf("DeepTransformer(%d): %v", layers, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("DeepTransformer(%d).Validate(): %v", layers, err)
		}
		if g.Layers() != layers {
			t.Errorf("Layers() = %d, want %d", g.Layers(), layers)
		}
	}
	if _, err := DeepTransformer(0); err == nil {
		t.Fatal("DeepTransformer(0) should fail")
	}
}

func TestUniformAndSkewed(t *testing.T) {
	u := Uniform(10, 1e9, 1e6, 1e5, 64)
	if err := u.Validate(); err != nil {
		t.Fatalf("Uniform.Validate(): %v", err)
	}
	if got, want := u.TotalFwdFLOPs(), 1e10; got != want {
		t.Errorf("Uniform FLOPs = %v, want %v", got, want)
	}
	s := Skewed(10, 1e9, 1e6, 1e5, 0.5, 64)
	if err := s.Validate(); err != nil {
		t.Fatalf("Skewed.Validate(): %v", err)
	}
	if s.Ops[9].FwdFLOPs <= s.Ops[0].FwdFLOPs {
		t.Error("Skewed: last op should be heavier than first")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Graph { return Uniform(4, 1e9, 1e6, 1e5, 64) }

	g := fresh()
	g.Ops[2].ID = 7
	if err := g.Validate(); err == nil {
		t.Error("bad ID not caught")
	}

	g = fresh()
	g.Ops[1].ActElems = 0
	if err := g.Validate(); err == nil {
		t.Error("zero ActElems not caught")
	}

	g = fresh()
	g.Ops[0].Dims = nil
	if err := g.Validate(); err == nil {
		t.Error("missing dims not caught")
	}

	g = fresh()
	g.GlobalBatch = 0
	if err := g.Validate(); err == nil {
		t.Error("zero batch not caught")
	}

	g = &Graph{Name: "empty", GlobalBatch: 1}
	if err := g.Validate(); err == nil {
		t.Error("empty graph not caught")
	}
}

func TestOpHelpers(t *testing.T) {
	g, err := GPT3("350M")
	if err != nil {
		t.Fatal(err)
	}
	var ln, mm *Op
	for i := range g.Ops {
		switch g.Ops[i].Kind {
		case KindLayerNorm:
			if ln == nil {
				ln = &g.Ops[i]
			}
		case KindMatMul:
			if mm == nil {
				mm = &g.Ops[i]
			}
		}
	}
	if ln == nil || mm == nil {
		t.Fatal("missing layernorm or matmul op")
	}
	if ln.Parallelizable() {
		t.Error("layernorm should not be parallelizable")
	}
	if !mm.Parallelizable() {
		t.Error("matmul should be parallelizable")
	}
	if mm.DimIndex("row") < 0 || mm.DimIndex("col") < 0 {
		t.Error("matmul should offer row and col dims")
	}
	if mm.DimIndex("bogus") != -1 {
		t.Error("DimIndex(bogus) should be -1")
	}
}

func TestKindAndLayoutStrings(t *testing.T) {
	if KindMatMul.String() != "matmul" || KindConv.String() != "conv" {
		t.Error("OpKind.String mismatch")
	}
	if OpKind(99).String() == "" {
		t.Error("unknown kind should still stringify")
	}
	if Split.String() != "split" || Replicated.String() != "replicated" {
		t.Error("Layout.String mismatch")
	}
}

func TestLlamaSizes(t *testing.T) {
	wants := map[string]float64{"8B": 8e9, "70B": 70e9}
	for size, want := range wants {
		g, err := Llama(size)
		if err != nil {
			t.Fatalf("Llama(%q): %v", size, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Llama(%q).Validate(): %v", size, err)
		}
		got := g.TotalParams()
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("Llama(%q) params = %.3g, want ≈ %.3g", size, got, want)
		}
	}
	if _, err := Llama("1T"); err == nil {
		t.Fatal("Llama(unknown) should fail")
	}
}

func TestLlamaGQAShrinksKV(t *testing.T) {
	// The GQA qkv projection must be smaller than a full 3h² one.
	g, err := Llama("8B")
	if err != nil {
		t.Fatal(err)
	}
	var qkv *Op
	for i := range g.Ops {
		if g.Ops[i].Name == "qkv" {
			qkv = &g.Ops[i]
			break
		}
	}
	if qkv == nil {
		t.Fatal("no qkv op")
	}
	h := 4096.0
	if qkv.Params >= 3*h*h {
		t.Errorf("GQA qkv params %.3g should be below full 3h² %.3g", qkv.Params, 3*h*h)
	}
}
