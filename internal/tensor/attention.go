package tensor

import "math"

// SoftmaxRows applies a numerically-stable softmax to each row.
func SoftmaxRows(x *Mat) *Mat {
	y := New(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Data[i*x.Cols : (i+1)*x.Cols]
		out := y.Data[i*x.Cols : (i+1)*x.Cols]
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - max)
			out[j] = e
			sum += e
		}
		for j := range out {
			out[j] /= sum
		}
	}
	return y
}

// SoftmaxRowsBackward returns dx given dy and the softmax output y:
// dx_i = y_i · (dy_i − Σ_j dy_j·y_j), row-wise.
func SoftmaxRowsBackward(dy, y *Mat) *Mat {
	shapeCheck(dy.Rows == y.Rows && dy.Cols == y.Cols, "softmax-bwd", dy, y)
	dx := New(y.Rows, y.Cols)
	for i := 0; i < y.Rows; i++ {
		base := i * y.Cols
		var dot float64
		for j := 0; j < y.Cols; j++ {
			dot += dy.Data[base+j] * y.Data[base+j]
		}
		for j := 0; j < y.Cols; j++ {
			dx.Data[base+j] = y.Data[base+j] * (dy.Data[base+j] - dot)
		}
	}
	return dx
}

// AttentionHead computes single-head scaled dot-product attention for
// one sequence: q, k, v are s×dh; the context is s×dh. With causal
// set, position i attends only to positions ≤ i (decoder masking).
// The attention probabilities are returned for the backward pass.
func AttentionHead(q, k, v *Mat, causal bool) (ctx, probs *Mat) {
	shapeCheck(q.Cols == k.Cols && k.Rows == v.Rows && q.Rows == v.Rows, "attention", q, k)
	scale := 1 / math.Sqrt(float64(q.Cols))
	scores := MatMul(q, Transpose(k))
	Scale(scores, scale)
	if causal {
		for i := 0; i < scores.Rows; i++ {
			for j := i + 1; j < scores.Cols; j++ {
				scores.Set(i, j, math.Inf(-1))
			}
		}
	}
	probs = SoftmaxRows(scores)
	ctx = MatMul(probs, v)
	return ctx, probs
}

// AttentionHeadBackward propagates gradients through AttentionHead.
// It is mask-agnostic: masked positions have zero probability, so
// their score gradients vanish through the softmax backward.
func AttentionHeadBackward(dctx, q, k, v, probs *Mat) (dq, dk, dv *Mat) {
	scale := 1 / math.Sqrt(float64(q.Cols))
	dv = MatMul(Transpose(probs), dctx)
	dprobs := MatMul(dctx, Transpose(v))
	dscores := SoftmaxRowsBackward(dprobs, probs)
	Scale(dscores, scale)
	dq = MatMul(dscores, k)
	dk = MatMul(Transpose(dscores), q)
	return dq, dk, dv
}
