package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestSoftmaxRows(t *testing.T) {
	x := &Mat{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 1000, 1000, 1000}}
	y := SoftmaxRows(x)
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			v := y.At(i, j)
			if v <= 0 || v >= 1 {
				t.Errorf("softmax(%d,%d) = %v out of (0,1)", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	// Large inputs (row 1) must not overflow: uniform 1/3 each.
	if math.Abs(y.At(1, 0)-1.0/3) > 1e-12 {
		t.Errorf("stability: got %v, want 1/3", y.At(1, 0))
	}
	if y.At(0, 2) <= y.At(0, 0) {
		t.Error("monotonicity lost")
	}
}

func TestSoftmaxBackwardFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randMat(rng, 2, 5)
	target := randMat(rng, 2, 5)
	loss := func(x *Mat) float64 {
		l, _ := MSE(SoftmaxRows(x), target)
		return l
	}
	y := SoftmaxRows(x)
	_, dy := MSE(y, target)
	dx := SoftmaxRowsBackward(dy, y)
	const eps = 1e-6
	for i := 0; i < len(x.Data); i += 3 {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := loss(x)
		x.Data[i] = orig - eps
		lm := loss(x)
		x.Data[i] = orig
		fd := (lp - lm) / (2 * eps)
		if math.Abs(fd-dx.Data[i]) > 1e-6 {
			t.Errorf("dx[%d] = %g, finite diff %g", i, dx.Data[i], fd)
		}
	}
}

func TestAttentionHeadShapesAndRowStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	q, k, v := randMat(rng, 6, 4), randMat(rng, 6, 4), randMat(rng, 6, 4)
	ctx, probs := AttentionHead(q, k, v, false)
	if ctx.Rows != 6 || ctx.Cols != 4 {
		t.Fatalf("ctx shape %d×%d", ctx.Rows, ctx.Cols)
	}
	if probs.Rows != 6 || probs.Cols != 6 {
		t.Fatalf("probs shape %d×%d", probs.Rows, probs.Cols)
	}
	for i := 0; i < probs.Rows; i++ {
		var sum float64
		for j := 0; j < probs.Cols; j++ {
			sum += probs.At(i, j)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("probs row %d sums to %v", i, sum)
		}
	}
}

func TestAttentionHeadBackwardFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q, k, v := randMat(rng, 4, 3), randMat(rng, 4, 3), randMat(rng, 4, 3)
	target := randMat(rng, 4, 3)
	loss := func() float64 {
		ctx, _ := AttentionHead(q, k, v, false)
		l, _ := MSE(ctx, target)
		return l
	}
	ctx, probs := AttentionHead(q, k, v, false)
	_, dctx := MSE(ctx, target)
	dq, dk, dv := AttentionHeadBackward(dctx, q, k, v, probs)

	const eps = 1e-6
	check := func(name string, m, grad *Mat) {
		for i := 0; i < len(m.Data); i += 2 {
			orig := m.Data[i]
			m.Data[i] = orig + eps
			lp := loss()
			m.Data[i] = orig - eps
			lm := loss()
			m.Data[i] = orig
			fd := (lp - lm) / (2 * eps)
			if math.Abs(fd-grad.Data[i]) > 1e-6 {
				t.Errorf("%s grad[%d] = %g, finite diff %g", name, i, grad.Data[i], fd)
			}
		}
	}
	check("q", q, dq)
	check("k", k, dk)
	check("v", v, dv)
}

func TestCausalAttentionMasking(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	q, k, v := randMat(rng, 5, 3), randMat(rng, 5, 3), randMat(rng, 5, 3)
	ctx, probs := AttentionHead(q, k, v, true)
	for i := 0; i < probs.Rows; i++ {
		var sum float64
		for j := 0; j < probs.Cols; j++ {
			p := probs.At(i, j)
			if j > i && p != 0 {
				t.Errorf("probs[%d][%d] = %v, want 0 (future masked)", i, j, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	// Token 0 attends only to itself: its context is exactly v[0].
	for c := 0; c < 3; c++ {
		if math.Abs(ctx.At(0, c)-v.At(0, c)) > 1e-12 {
			t.Errorf("ctx[0][%d] = %v, want v[0][%d] = %v", c, ctx.At(0, c), c, v.At(0, c))
		}
	}
}

func TestCausalAttentionBackwardFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	q, k, v := randMat(rng, 4, 3), randMat(rng, 4, 3), randMat(rng, 4, 3)
	target := randMat(rng, 4, 3)
	loss := func() float64 {
		ctx, _ := AttentionHead(q, k, v, true)
		l, _ := MSE(ctx, target)
		return l
	}
	ctx, probs := AttentionHead(q, k, v, true)
	_, dctx := MSE(ctx, target)
	dq, dk, dv := AttentionHeadBackward(dctx, q, k, v, probs)
	const eps = 1e-6
	check := func(name string, m, grad *Mat) {
		for i := 0; i < len(m.Data); i += 2 {
			orig := m.Data[i]
			m.Data[i] = orig + eps
			lp := loss()
			m.Data[i] = orig - eps
			lm := loss()
			m.Data[i] = orig
			fd := (lp - lm) / (2 * eps)
			if math.Abs(fd-grad.Data[i]) > 1e-6 {
				t.Errorf("%s grad[%d] = %g, finite diff %g", name, i, grad.Data[i], fd)
			}
		}
	}
	check("q", q, dq)
	check("k", k, dk)
	check("v", v, dv)
}
