package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, rows, cols int) *Mat {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMatMulKnown(t *testing.T) {
	a := &Mat{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := &Mat{Rows: 3, Cols: 2, Data: []float64{7, 8, 9, 10, 11, 12}}
	got := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if got.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", got.Data, want)
		}
	}
}

func TestMatMulPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMat(rng, 5, 7)
	back := Transpose(Transpose(m))
	if MaxAbsDiff(m, back) != 0 {
		t.Fatal("transpose twice is not identity")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestMatMulTransposeLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		a := randMat(r, 1+int(seed%4), 2+int(seed%3))
		b := randMat(r, a.Cols, 1+int(seed%5))
		left := Transpose(MatMul(a, b))
		right := MatMul(Transpose(b), Transpose(a))
		return MaxAbsDiff(left, right) < 1e-12
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: column-sharded matmul equals full matmul (the identity
// behind tensor parallelism).
func TestShardedMatMulEqualsFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randMat(rng, 6, 8)
	w := randMat(rng, 8, 10)
	full := MatMul(x, w)

	// Column-parallel: split W's columns, concatenate outputs.
	w1, w2 := ColSlice(w, 0, 5), ColSlice(w, 5, 10)
	col := ConcatCols(MatMul(x, w1), MatMul(x, w2))
	if d := MaxAbsDiff(full, col); d > 1e-12 {
		t.Errorf("column-parallel diff %g", d)
	}

	// Row-parallel: split X's columns and W's rows, sum partials.
	x1, x2 := ColSlice(x, 0, 3), ColSlice(x, 3, 8)
	wr1 := RowSlice(w, 0, 3)
	wr2 := RowSlice(w, 3, 8)
	row := Add(MatMul(x1, wr1), MatMul(x2, wr2))
	if d := MaxAbsDiff(full, row); d > 1e-12 {
		t.Errorf("row-parallel diff %g", d)
	}
}

func TestAddBiasAndColSum(t *testing.T) {
	m := &Mat{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	b := &Mat{Rows: 1, Cols: 2, Data: []float64{10, 20}}
	got := AddBias(m, b)
	want := []float64{11, 22, 13, 24}
	for i := range want {
		if got.Data[i] != want[i] {
			t.Fatalf("AddBias = %v", got.Data)
		}
	}
	sum := New(1, 2)
	ColSumTo(sum, m)
	if sum.Data[0] != 4 || sum.Data[1] != 6 {
		t.Fatalf("ColSumTo = %v", sum.Data)
	}
}

func TestReLUAndBackward(t *testing.T) {
	x := &Mat{Rows: 1, Cols: 4, Data: []float64{-1, 0, 2, -3}}
	y := ReLU(x)
	if y.Data[0] != 0 || y.Data[2] != 2 {
		t.Fatalf("ReLU = %v", y.Data)
	}
	dy := &Mat{Rows: 1, Cols: 4, Data: []float64{1, 1, 1, 1}}
	dx := ReLUBackward(dy, x)
	want := []float64{0, 0, 1, 0}
	for i := range want {
		if dx.Data[i] != want[i] {
			t.Fatalf("ReLUBackward = %v", dx.Data)
		}
	}
}

func TestSlicesAndConcatsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randMat(rng, 6, 9)
	rows := ConcatRows(RowSlice(m, 0, 2), RowSlice(m, 2, 6))
	if MaxAbsDiff(m, rows) != 0 {
		t.Error("row slice/concat round trip failed")
	}
	cols := ConcatCols(ColSlice(m, 0, 4), ColSlice(m, 4, 9))
	if MaxAbsDiff(m, cols) != 0 {
		t.Error("col slice/concat round trip failed")
	}
}

func TestMSEGradient(t *testing.T) {
	// Finite-difference check of the MSE gradient.
	rng := rand.New(rand.NewSource(5))
	pred := randMat(rng, 3, 4)
	target := randMat(rng, 3, 4)
	_, grad := MSE(pred, target)
	const eps = 1e-6
	for i := 0; i < len(pred.Data); i += 5 {
		p := pred.Clone()
		p.Data[i] += eps
		lp, _ := MSE(p, target)
		p.Data[i] -= 2 * eps
		lm, _ := MSE(p, target)
		fd := (lp - lm) / (2 * eps)
		if math.Abs(fd-grad.Data[i]) > 1e-6 {
			t.Errorf("grad[%d] = %g, finite diff %g", i, grad.Data[i], fd)
		}
	}
}

func TestScaleAndCloneIndependence(t *testing.T) {
	m := &Mat{Rows: 1, Cols: 2, Data: []float64{1, 2}}
	c := m.Clone()
	Scale(c, 3)
	if m.Data[0] != 1 || c.Data[0] != 3 {
		t.Error("Clone shares storage")
	}
}

func TestLayerNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randMat(rng, 4, 16)
	gain := New(1, 16)
	bias := New(1, 16)
	for j := 0; j < 16; j++ {
		gain.Data[j] = 1
	}
	y, _ := LayerNorm(x, gain, bias)
	for i := 0; i < y.Rows; i++ {
		var mean, varSum float64
		row := y.Data[i*y.Cols : (i+1)*y.Cols]
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		for _, v := range row {
			varSum += (v - mean) * (v - mean)
		}
		varSum /= float64(len(row))
		if math.Abs(mean) > 1e-12 {
			t.Errorf("row %d mean = %g, want 0", i, mean)
		}
		if math.Abs(varSum-1) > 1e-3 {
			t.Errorf("row %d var = %g, want ≈1", i, varSum)
		}
	}
}

func TestLayerNormBackwardFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randMat(rng, 3, 8)
	gain := randMat(rng, 1, 8)
	bias := randMat(rng, 1, 8)
	target := randMat(rng, 3, 8)

	loss := func(x, gain, bias *Mat) float64 {
		y, _ := LayerNorm(x, gain, bias)
		l, _ := MSE(y, target)
		return l
	}
	y, cache := LayerNorm(x, gain, bias)
	_, dy := MSE(y, target)
	dgain := New(1, 8)
	dbias := New(1, 8)
	dx := LayerNormBackward(dy, cache, gain, dgain, dbias)

	const eps = 1e-6
	check := func(name string, m, grad *Mat, idxs []int) {
		for _, i := range idxs {
			orig := m.Data[i]
			m.Data[i] = orig + eps
			lp := loss(x, gain, bias)
			m.Data[i] = orig - eps
			lm := loss(x, gain, bias)
			m.Data[i] = orig
			fd := (lp - lm) / (2 * eps)
			if math.Abs(fd-grad.Data[i]) > 1e-6 {
				t.Errorf("%s grad[%d] = %g, finite diff %g", name, i, grad.Data[i], fd)
			}
		}
	}
	check("x", x, dx, []int{0, 5, 13, 23})
	check("gain", gain, dgain, []int{0, 3, 7})
	check("bias", bias, dbias, []int{1, 4})
}
