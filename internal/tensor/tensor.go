// Package tensor is a minimal dense-matrix library backing the numeric
// runtime (internal/runtime), which validates that Aceso's
// reconfiguration primitives are semantic-preserving the same way the
// paper did — by executing parallel configurations and comparing their
// outputs with a serial reference (§4: "we ensured the correctness of
// our implementation by comparing the output with that of the original
// Megatron-LM").
//
// float64 storage keeps parallel/serial comparisons tight: the only
// divergence between executions is floating-point summation order.
//
// Shape mismatches panic rather than return errors. That is a
// deliberate contract: every caller in this repo derives shapes from a
// validated configuration, so a mismatched MatMul or slice is a
// programmer error (a bug in the runtime's sharding arithmetic), not a
// recoverable input condition. Panicking at the exact faulty call site
// is worth more than an error value that every hot loop would have to
// thread upward. User-facing entry points (Search, the runtime
// executors) validate their inputs before any tensor math runs, so
// these panics are unreachable from untrusted input.
package tensor

import (
	"fmt"
	"math"
)

// Mat is a dense row-major rows×cols matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero matrix.
func New(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %d×%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Mat) Clone() *Mat {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// shapeCheck panics on mismatched dimensions — shape errors in the
// runtime are programming bugs, not recoverable conditions.
func shapeCheck(ok bool, op string, a, b *Mat) {
	if !ok {
		panic(fmt.Sprintf("tensor: %s shape mismatch: %d×%d vs %d×%d",
			op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MatMul returns a·b.
func MatMul(a, b *Mat) *Mat {
	shapeCheck(a.Cols == b.Rows, "matmul", a, b)
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func Transpose(m *Mat) *Mat {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Add returns a+b.
func Add(a, b *Mat) *Mat {
	shapeCheck(a.Rows == b.Rows && a.Cols == b.Cols, "add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Mat) {
	shapeCheck(a.Rows == b.Rows && a.Cols == b.Cols, "add", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Scale multiplies every element by s, in place, and returns m.
func Scale(m *Mat, s float64) *Mat {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddBias adds a 1×cols bias row to every row of m, returning a copy.
func AddBias(m, bias *Mat) *Mat {
	shapeCheck(bias.Rows == 1 && bias.Cols == m.Cols, "addbias", m, bias)
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		row := out.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] += bias.Data[j]
		}
	}
	return out
}

// ColSumTo accumulates the column sums of m into a 1×cols bias grad.
func ColSumTo(dst, m *Mat) {
	shapeCheck(dst.Rows == 1 && dst.Cols == m.Cols, "colsum", dst, m)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			dst.Data[j] += row[j]
		}
	}
}

// ReLU returns max(x, 0) element-wise.
func ReLU(m *Mat) *Mat {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// ReLUBackward returns dx = dy ⊙ (x > 0).
func ReLUBackward(dy, x *Mat) *Mat {
	shapeCheck(dy.Rows == x.Rows && dy.Cols == x.Cols, "relu-bwd", dy, x)
	out := New(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = dy.Data[i]
		}
	}
	return out
}

// RowSlice returns rows [from, to) of m as a copy.
func RowSlice(m *Mat, from, to int) *Mat {
	if from < 0 || to > m.Rows || from > to {
		panic(fmt.Sprintf("tensor: row slice [%d, %d) of %d rows", from, to, m.Rows))
	}
	out := New(to-from, m.Cols)
	copy(out.Data, m.Data[from*m.Cols:to*m.Cols])
	return out
}

// ColSlice returns columns [from, to) of m as a copy.
func ColSlice(m *Mat, from, to int) *Mat {
	if from < 0 || to > m.Cols || from > to {
		panic(fmt.Sprintf("tensor: col slice [%d, %d) of %d cols", from, to, m.Cols))
	}
	out := New(m.Rows, to-from)
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*out.Cols:(i+1)*out.Cols], m.Data[i*m.Cols+from:i*m.Cols+to])
	}
	return out
}

// ConcatRows stacks matrices vertically.
func ConcatRows(ms ...*Mat) *Mat {
	if len(ms) == 0 {
		panic("tensor: concat of nothing")
	}
	rows := 0
	for _, m := range ms {
		shapeCheck(m.Cols == ms[0].Cols, "concat-rows", m, ms[0])
		rows += m.Rows
	}
	out := New(rows, ms[0].Cols)
	off := 0
	for _, m := range ms {
		copy(out.Data[off:], m.Data)
		off += len(m.Data)
	}
	return out
}

// ConcatCols stacks matrices horizontally.
func ConcatCols(ms ...*Mat) *Mat {
	if len(ms) == 0 {
		panic("tensor: concat of nothing")
	}
	cols := 0
	for _, m := range ms {
		shapeCheck(m.Rows == ms[0].Rows, "concat-cols", m, ms[0])
		cols += m.Cols
	}
	out := New(ms[0].Rows, cols)
	for i := 0; i < out.Rows; i++ {
		off := 0
		for _, m := range ms {
			copy(out.Data[i*cols+off:i*cols+off+m.Cols], m.Data[i*m.Cols:(i+1)*m.Cols])
			off += m.Cols
		}
	}
	return out
}

// MSE returns the mean-squared-error loss ½·mean((pred−target)²) and
// its gradient with respect to pred.
func MSE(pred, target *Mat) (float64, *Mat) {
	shapeCheck(pred.Rows == target.Rows && pred.Cols == target.Cols, "mse", pred, target)
	n := float64(len(pred.Data))
	grad := New(pred.Rows, pred.Cols)
	var loss float64
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d / 2
		grad.Data[i] = d / n
	}
	return loss / n, grad
}

// MaxAbsDiff returns the largest element-wise |a−b|.
func MaxAbsDiff(a, b *Mat) float64 {
	shapeCheck(a.Rows == b.Rows && a.Cols == b.Cols, "diff", a, b)
	var max float64
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// LNCache carries the forward intermediates LayerNormBackward needs.
type LNCache struct {
	XHat   *Mat // normalized input
	InvStd []float64
}

const lnEps = 1e-5

// LayerNorm normalizes each row of x to zero mean and unit variance,
// then applies the per-feature gain and bias (1×cols each).
func LayerNorm(x, gain, bias *Mat) (*Mat, *LNCache) {
	shapeCheck(gain.Rows == 1 && gain.Cols == x.Cols, "layernorm", x, gain)
	shapeCheck(bias.Rows == 1 && bias.Cols == x.Cols, "layernorm", x, bias)
	y := New(x.Rows, x.Cols)
	cache := &LNCache{XHat: New(x.Rows, x.Cols), InvStd: make([]float64, x.Rows)}
	n := float64(x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Data[i*x.Cols : (i+1)*x.Cols]
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= n
		var varSum float64
		for _, v := range row {
			d := v - mean
			varSum += d * d
		}
		invStd := 1 / math.Sqrt(varSum/n+lnEps)
		cache.InvStd[i] = invStd
		for j, v := range row {
			xh := (v - mean) * invStd
			cache.XHat.Data[i*x.Cols+j] = xh
			y.Data[i*x.Cols+j] = xh*gain.Data[j] + bias.Data[j]
		}
	}
	return y, cache
}

// LayerNormBackward propagates gradients through LayerNorm, returning
// dx and accumulating dgain/dbias into the provided 1×cols buffers.
func LayerNormBackward(dy *Mat, cache *LNCache, gain, dgain, dbias *Mat) *Mat {
	dx := New(dy.Rows, dy.Cols)
	n := float64(dy.Cols)
	for i := 0; i < dy.Rows; i++ {
		// dxhat = dy ⊙ gain; dx = invStd·(dxhat − mean(dxhat) − xhat·mean(dxhat⊙xhat)).
		var sumDxh, sumDxhXh float64
		base := i * dy.Cols
		for j := 0; j < dy.Cols; j++ {
			dyv := dy.Data[base+j]
			xh := cache.XHat.Data[base+j]
			dxh := dyv * gain.Data[j]
			sumDxh += dxh
			sumDxhXh += dxh * xh
			dgain.Data[j] += dyv * xh
			dbias.Data[j] += dyv
		}
		invStd := cache.InvStd[i]
		for j := 0; j < dy.Cols; j++ {
			dxh := dy.Data[base+j] * gain.Data[j]
			xh := cache.XHat.Data[base+j]
			dx.Data[base+j] = invStd * (dxh - sumDxh/n - xh*sumDxhXh/n)
		}
	}
	return dx
}
