package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metric names used by the search plumbing (core.SearchContext). The
// `{...}` suffix convention carries Prometheus labels through the
// registry: the writer emits names verbatim, so a name like
// PrimitiveAppliedTotal + `{primitive="inc-dp"}` renders as a labeled
// series.
const (
	CandidatesEstimatedTotal = "aceso_search_candidates_estimated_total"
	DedupHitsTotal           = "aceso_search_dedup_hits_total"
	IterationsTotal          = "aceso_search_iterations_total"
	PoolRestartsTotal        = "aceso_search_pool_restarts_total"
	PoolPrunesTotal          = "aceso_search_pool_prunes_total"
	PrimitiveAppliedTotal    = "aceso_search_primitive_applied_total"
	StageCacheHitsTotal      = "aceso_perfmodel_stage_cache_hits_total"
	StageCacheMissesTotal    = "aceso_perfmodel_stage_cache_misses_total"
	MultiHopDepth            = "aceso_search_multihop_depth"
	// IterationSeconds is a Timer; the snapshot suffixes it with
	// _seconds_total and _count.
	IterationSeconds = "aceso_search_iteration"

	// Differential-validation harness (internal/diffcheck). Violations
	// carry a `{kind="..."}` label per invariant.
	DiffTrialsTotal      = "aceso_diff_trials_total"
	DiffViolationsTotal  = "aceso_diff_violations_total"
	DiffShrinkStepsTotal = "aceso_diff_shrink_steps_total"

	// Elastic-training runtime (internal/elastic): fault recovery,
	// checkpointing and state resharding.
	ElasticFaultsInjectedTotal    = "aceso_elastic_faults_injected_total"
	ElasticCheckpointsTotal       = "aceso_elastic_checkpoints_total"
	ElasticRestoresTotal          = "aceso_elastic_restores_total"
	ElasticReshardsTotal          = "aceso_elastic_reshards_total"
	ElasticReshardBytesMovedTotal = "aceso_elastic_reshard_bytes_moved_total"
	// ElasticRecovery is a Timer; the snapshot suffixes it with
	// _seconds_total and _count.
	ElasticRecovery = "aceso_elastic_recovery"

	// Continuous-churn supervisor (elastic.Supervise). Events carry a
	// `{kind="..."}` label per ChurnKind, ladder commits a
	// `{rung="..."}` label per degradation rung, and transitions a
	// `{kind="..."}` label per TransitionKind.
	ChurnEventsTotal         = "aceso_churn_events_total"
	ChurnFaultsTotal         = "aceso_churn_faults_total"
	ChurnReplansTotal        = "aceso_churn_replans_total"
	ChurnReplansAvoidedTotal = "aceso_churn_replans_avoided_total"
	ChurnLadderTotal         = "aceso_churn_ladder_total"
	ChurnBackoffRetriesTotal = "aceso_churn_backoff_retries_total"
	ChurnPausesTotal         = "aceso_churn_pauses_total"
	ChurnTransitionsTotal    = "aceso_churn_transitions_total"
	ChurnStepsLostTotal      = "aceso_churn_steps_lost_total"
	// ChurnRecovery is a Timer; the snapshot suffixes it with
	// _seconds_total and _count.
	ChurnRecovery = "aceso_churn_recovery"

	// Spot-capacity supervision (elastic.PreemptNotice drains): notices
	// received, drains completed with zero lost steps, notices whose
	// window could not absorb a checkpoint, and replans pre-warmed
	// while the doomed device was still serving.
	SpotNoticesTotal        = "aceso_spot_notices_total"
	SpotCleanDrainsTotal    = "aceso_spot_clean_drains_total"
	SpotNoticesMissedTotal  = "aceso_spot_notices_missed_total"
	SpotPrewarmReplansTotal = "aceso_spot_prewarm_replans_total"

	// Planner-as-a-service daemon (internal/planserver / cmd/acesod).
	// Requests carry a `{code="..."}` label per HTTP status, cache hits
	// a `{kind="exact"|"warm"}` label per hit class.
	ServeRequestsTotal     = "aceso_serve_requests_total"
	ServeCacheHitsTotal    = "aceso_serve_cache_hits_total"
	ServeCacheMissesTotal  = "aceso_serve_cache_misses_total"
	ServeShedTotal         = "aceso_serve_shed_total"
	ServeDrainRejectsTotal = "aceso_serve_drain_rejects_total"
	ServeStreamsTotal      = "aceso_serve_streams_total"
	// ServeInflight / ServeQueueDepth / ServeCacheEntries are Gauges.
	ServeInflight     = "aceso_serve_inflight"
	ServeQueueDepth   = "aceso_serve_queue_depth"
	ServeCacheEntries = "aceso_serve_cache_entries"
	// ServeRequestSeconds is a Timer; the snapshot suffixes it with
	// _seconds_total and _count.
	ServeRequestSeconds = "aceso_serve_request"
)

// Counter is a monotonic (or Set-overwritten snapshot) integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Set overwrites the value — for snapshot-style gauges mirrored from
// another subsystem's own counters (the perfmodel stage cache).
func (c *Counter) Set(n int64) { c.v.Store(n) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can move both ways (queue depths,
// in-flight request counts). Stored as float64 bits in an atomic
// word, so Set/Value are lock-free like the other metric updates.
type Gauge struct {
	v atomic.Uint64
}

// Set overwrites the value.
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Add adjusts the value by d (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.v.Load()
		if g.v.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// Timer accumulates durations: total time and observation count.
type Timer struct {
	totalNS atomic.Int64
	count   atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.totalNS.Add(int64(d))
	t.count.Add(1)
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.totalNS.Load()) }

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Histogram counts observations into cumulative ≤-bound buckets
// (Prometheus semantics), plus a +Inf overflow, a sum and a count.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	buckets []atomic.Int64
	sum     atomic.Int64 // sum scaled by histScale for atomic storage
	count   atomic.Int64
}

// histScale stores float sums in an atomic int64 with micro precision
// — plenty for hop depths and second-scale timings.
const histScale = 1e6

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sum.Add(int64(v * histScale))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Registry is a named collection of counters, timers and histograms.
// Metric creation takes a lock; updates are lock-free atomics, so a
// hot path that pre-resolves its metric pointers once pays only an
// atomic add per event.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it on first use with
// the given ascending upper bounds (an implicit +Inf bucket is the
// count minus the explicit buckets). Bounds are fixed at creation;
// later calls ignore the argument.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...)}
		h.buckets = make([]atomic.Int64, len(h.bounds))
		r.hists[name] = h
	}
	return h
}

// promSample is one rendered series: its full name (including any
// label block) and its value.
type promSample struct {
	name string
	val  float64
}

// promFamily groups every series of one metric family under the
// family's exposition-format type. The Prometheus text format requires
// a family's series to be contiguous (one TYPE line, no interleaving
// with other families) and a histogram's buckets to come in ascending
// `le` order — the snapshot was historically a flat lexical sort,
// which violated both (`'+'` sorts before digits, so the +Inf bucket
// led; a labeled family whose base name prefixes another metric
// straddled it).
type promFamily struct {
	name    string
	typ     string // "counter", "gauge" or "histogram"
	samples []promSample
}

// families renders every metric into an ordered family list: families
// sorted by name, counter/gauge series sorted by full series name
// within their family, histogram series in canonical order (buckets by
// ascending bound, +Inf, then _sum and _count). The order is total and
// input-independent, so snapshots stay deterministic.
func (r *Registry) families() []promFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	byName := make(map[string]*promFamily)
	add := func(family, typ, series string, v float64) {
		f, ok := byName[family]
		if !ok {
			f = &promFamily{name: family, typ: typ}
			byName[family] = f
		}
		f.samples = append(f.samples, promSample{series, v})
	}
	for n, c := range r.counters {
		add(baseName(n), "counter", n, float64(c.Value()))
	}
	for n, g := range r.gauges {
		add(baseName(n), "gauge", n, g.Value())
	}
	for n, t := range r.timers {
		add(n+"_seconds_total", "counter", n+"_seconds_total", t.Total().Seconds())
		add(n+"_count", "counter", n+"_count", float64(t.Count()))
	}
	for n, h := range r.hists {
		cum := int64(0)
		for i := range h.bounds {
			cum += h.buckets[i].Load()
			add(n, "histogram", fmt.Sprintf("%s_bucket{le=%q}", n, formatFloat(h.bounds[i])), float64(cum))
		}
		add(n, "histogram", n+`_bucket{le="+Inf"}`, float64(h.count.Load()))
		add(n, "histogram", n+"_sum", float64(h.sum.Load())/histScale)
		add(n, "histogram", n+"_count", float64(h.count.Load()))
	}
	out := make([]promFamily, 0, len(byName))
	for _, f := range byName {
		if f.typ != "histogram" {
			sort.Slice(f.samples, func(a, b int) bool { return f.samples[a].name < f.samples[b].name })
		}
		out = append(out, *f)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].name < out[b].name })
	return out
}

// baseName truncates a series name at its label block.
func baseName(n string) string {
	if i := strings.IndexByte(n, '{'); i >= 0 {
		return n[:i]
	}
	return n
}

// formatFloat renders a float the way the registry always has (%g).
func formatFloat(v float64) string { return fmt.Sprintf("%g", v) }

// snapshot renders every metric into an ordered name list plus a
// name→value map (family-grouped, buckets in bound order).
func (r *Registry) snapshot() (names []string, vals map[string]float64) {
	fams := r.families()
	vals = make(map[string]float64)
	for _, f := range fams {
		for _, s := range f.samples {
			names = append(names, s.name)
			vals[s.name] = s.val
		}
	}
	return names, vals
}

// MarshalJSON renders the registry as a flat JSON object with sorted
// keys, so snapshots embed directly into larger reports
// (BENCH_trace.json) and diff cleanly.
func (r *Registry) MarshalJSON() ([]byte, error) {
	names, vals := r.snapshot()
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		key, _ := json.Marshal(n)
		b.Write(key)
		b.WriteByte(':')
		fmt.Fprintf(&b, "%g", vals[n])
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	raw, err := r.MarshalJSON()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	_, err = w.Write(buf.Bytes())
	return err
}

// WritePrometheus writes the snapshot in the Prometheus text
// exposition format: one TYPE line per family, families contiguous and
// sorted by name, histograms typed as such with their buckets in
// ascending `le` order, and label values re-escaped per the format
// (`\\`, `\"`, `\n`). Timers flatten to two counter families
// (_seconds_total and _count — both cumulative).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.families() {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.samples {
			if _, err := fmt.Fprintf(w, "%s %g\n", normalizeSeries(s.name), s.val); err != nil {
				return err
			}
		}
	}
	return nil
}

// normalizeSeries re-escapes the label values of a series name for the
// exposition format. Series names are built by callers with %q (Go
// string quoting), which agrees with Prometheus escaping for `\\`,
// `\"` and `\n` but diverges on other control and non-ASCII bytes
// (Go writes \xNN / \uNNNN escapes the exposition format does not
// interpret). Unparsable label blocks pass through verbatim — a
// malformed name should surface in the scrape, not be silently
// dropped.
func normalizeSeries(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name
	}
	if !strings.HasSuffix(name, "}") {
		return name
	}
	block := name[i+1 : len(name)-1]
	var b strings.Builder
	b.WriteString(name[:i])
	b.WriteByte('{')
	first := true
	for block != "" {
		eq := strings.IndexByte(block, '=')
		if eq <= 0 {
			return name
		}
		key := block[:eq]
		rest := block[eq+1:]
		val, tail, err := unquoteLabelValue(rest)
		if err != nil {
			return name
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(val))
		b.WriteByte('"')
		block = tail
		if strings.HasPrefix(block, ",") {
			block = block[1:]
		} else if block != "" {
			return name
		}
	}
	b.WriteByte('}')
	return b.String()
}

// unquoteLabelValue consumes one double-quoted (Go-quoted) value from
// the front of s and returns the decoded value and the remainder.
func unquoteLabelValue(s string) (val, tail string, err error) {
	prefix, err := strconv.QuotedPrefix(s)
	if err != nil {
		return "", "", err
	}
	val, err = strconv.Unquote(prefix)
	if err != nil {
		return "", "", err
	}
	return val, s[len(prefix):], nil
}

// escapeLabelValue applies the exposition format's label escaping.
func escapeLabelValue(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
