package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metric names used by the search plumbing (core.SearchContext). The
// `{...}` suffix convention carries Prometheus labels through the
// registry: the writer emits names verbatim, so a name like
// PrimitiveAppliedTotal + `{primitive="inc-dp"}` renders as a labeled
// series.
const (
	CandidatesEstimatedTotal = "aceso_search_candidates_estimated_total"
	DedupHitsTotal           = "aceso_search_dedup_hits_total"
	IterationsTotal          = "aceso_search_iterations_total"
	PoolRestartsTotal        = "aceso_search_pool_restarts_total"
	PoolPrunesTotal          = "aceso_search_pool_prunes_total"
	PrimitiveAppliedTotal    = "aceso_search_primitive_applied_total"
	StageCacheHitsTotal      = "aceso_perfmodel_stage_cache_hits_total"
	StageCacheMissesTotal    = "aceso_perfmodel_stage_cache_misses_total"
	MultiHopDepth            = "aceso_search_multihop_depth"
	// IterationSeconds is a Timer; the snapshot suffixes it with
	// _seconds_total and _count.
	IterationSeconds = "aceso_search_iteration"

	// Differential-validation harness (internal/diffcheck). Violations
	// carry a `{kind="..."}` label per invariant.
	DiffTrialsTotal      = "aceso_diff_trials_total"
	DiffViolationsTotal  = "aceso_diff_violations_total"
	DiffShrinkStepsTotal = "aceso_diff_shrink_steps_total"

	// Elastic-training runtime (internal/elastic): fault recovery,
	// checkpointing and state resharding.
	ElasticFaultsInjectedTotal    = "aceso_elastic_faults_injected_total"
	ElasticCheckpointsTotal       = "aceso_elastic_checkpoints_total"
	ElasticRestoresTotal          = "aceso_elastic_restores_total"
	ElasticReshardsTotal          = "aceso_elastic_reshards_total"
	ElasticReshardBytesMovedTotal = "aceso_elastic_reshard_bytes_moved_total"
	// ElasticRecovery is a Timer; the snapshot suffixes it with
	// _seconds_total and _count.
	ElasticRecovery = "aceso_elastic_recovery"

	// Continuous-churn supervisor (elastic.Supervise). Events carry a
	// `{kind="..."}` label per ChurnKind, ladder commits a
	// `{rung="..."}` label per degradation rung, and transitions a
	// `{kind="..."}` label per TransitionKind.
	ChurnEventsTotal         = "aceso_churn_events_total"
	ChurnFaultsTotal         = "aceso_churn_faults_total"
	ChurnReplansTotal        = "aceso_churn_replans_total"
	ChurnReplansAvoidedTotal = "aceso_churn_replans_avoided_total"
	ChurnLadderTotal         = "aceso_churn_ladder_total"
	ChurnBackoffRetriesTotal = "aceso_churn_backoff_retries_total"
	ChurnPausesTotal         = "aceso_churn_pauses_total"
	ChurnTransitionsTotal    = "aceso_churn_transitions_total"
	ChurnStepsLostTotal      = "aceso_churn_steps_lost_total"
	// ChurnRecovery is a Timer; the snapshot suffixes it with
	// _seconds_total and _count.
	ChurnRecovery = "aceso_churn_recovery"
)

// Counter is a monotonic (or Set-overwritten snapshot) integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Set overwrites the value — for snapshot-style gauges mirrored from
// another subsystem's own counters (the perfmodel stage cache).
func (c *Counter) Set(n int64) { c.v.Store(n) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// Timer accumulates durations: total time and observation count.
type Timer struct {
	totalNS atomic.Int64
	count   atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	t.totalNS.Add(int64(d))
	t.count.Add(1)
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.totalNS.Load()) }

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Histogram counts observations into cumulative ≤-bound buckets
// (Prometheus semantics), plus a +Inf overflow, a sum and a count.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	buckets []atomic.Int64
	sum     atomic.Int64 // sum scaled by histScale for atomic storage
	count   atomic.Int64
}

// histScale stores float sums in an atomic int64 with micro precision
// — plenty for hop depths and second-scale timings.
const histScale = 1e6

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sum.Add(int64(v * histScale))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Registry is a named collection of counters, timers and histograms.
// Metric creation takes a lock; updates are lock-free atomics, so a
// hot path that pre-resolves its metric pointers once pays only an
// atomic add per event.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	timers   map[string]*Timer
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		timers:   make(map[string]*Timer),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it on first use with
// the given ascending upper bounds (an implicit +Inf bucket is the
// count minus the explicit buckets). Bounds are fixed at creation;
// later calls ignore the argument.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...)}
		h.buckets = make([]atomic.Int64, len(h.bounds))
		r.hists[name] = h
	}
	return h
}

// snapshot renders every metric into a flat, sorted name→value map.
func (r *Registry) snapshot() (names []string, vals map[string]float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	vals = make(map[string]float64)
	for n, c := range r.counters {
		vals[n] = float64(c.Value())
	}
	for n, t := range r.timers {
		vals[n+"_seconds_total"] = t.Total().Seconds()
		vals[n+"_count"] = float64(t.Count())
	}
	for n, h := range r.hists {
		cum := int64(0)
		for i := range h.bounds {
			cum += h.buckets[i].Load()
			vals[fmt.Sprintf("%s_bucket{le=\"%g\"}", n, h.bounds[i])] = float64(cum)
		}
		vals[n+`_bucket{le="+Inf"}`] = float64(h.count.Load())
		vals[n+"_sum"] = float64(h.sum.Load()) / histScale
		vals[n+"_count"] = float64(h.count.Load())
	}
	names = make([]string, 0, len(vals))
	for n := range vals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, vals
}

// MarshalJSON renders the registry as a flat JSON object with sorted
// keys, so snapshots embed directly into larger reports
// (BENCH_trace.json) and diff cleanly.
func (r *Registry) MarshalJSON() ([]byte, error) {
	names, vals := r.snapshot()
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		key, _ := json.Marshal(n)
		b.Write(key)
		b.WriteByte(':')
		fmt.Fprintf(&b, "%g", vals[n])
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	raw, err := r.MarshalJSON()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	_, err = w.Write(buf.Bytes())
	return err
}

// WritePrometheus writes the snapshot in the Prometheus text
// exposition format (counters and the flattened timer/histogram series
// all typed as counters — they are cumulative).
func (r *Registry) WritePrometheus(w io.Writer) error {
	names, vals := r.snapshot()
	seen := make(map[string]bool)
	for _, n := range names {
		base := n
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if !seen[base] {
			seen[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", base); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", n, vals[n]); err != nil {
			return err
		}
	}
	return nil
}
