package obs

import (
	"fmt"
	"math"
	"sync"

	"aceso/internal/config"
	"aceso/internal/perfmodel"
)

// auditRelTol is the relative tolerance for the accounting identities:
// the buckets are sums of the same profiler terms added in the same
// order, so honest breakdowns agree to within a few ulps — 1e-9
// relative leaves three orders of magnitude of headroom while still
// catching any genuinely double- or mis-booked term.
const auditRelTol = 1e-9

// AuditEstimate asserts the performance model's resource-accounting
// invariants on one estimate and returns a description of every
// violated one (nil when the breakdown is sound). cfg may be nil;
// configuration-dependent invariants (TPComm must vanish without
// tensor parallelism, ReshardComm without a mid-stage dp change) are
// then skipped.
//
// The invariants (DESIGN.md §5d):
//
//  1. Every time and memory bucket is finite and non-negative.
//  2. Per stage, CompTime + TPComm + P2P + Recomp + ReshardComm equals
//     FwdTime + BwdTime: the communication shares never exceed the
//     total they are shares of (CompTime ≥ 0), so per-resource
//     proportions sum to ≤ 1.
//  3. Recomp never exceeds BwdTime (recomputation runs in backward).
//  4. PeakMem composes from its parts: ParamMem + OptMem + ExtraMem
//     never exceeds PeakMem.
//  5. Estimate.PeakMem is the max over stages; IterTime the max stage
//     time; Devices the sum of stage device counts.
//  6. With cfg: TPComm == 0 when no op in the stage has tp > 1, and
//     ReshardComm == 0 when the stage never changes dp mid-stage —
//     the regression tripwires for the historical mis-booking of
//     dp-resample traffic into the tensor-parallel bucket.
func AuditEstimate(cfg *config.Config, est *perfmodel.Estimate) []string {
	if est == nil {
		return []string{"nil estimate"}
	}
	var out []string
	violate := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	if cfg != nil && len(cfg.Stages) != len(est.Stages) {
		violate("estimate has %d stages for a %d-stage config", len(est.Stages), len(cfg.Stages))
		cfg = nil // stage-wise config checks would misindex
	}

	var maxPeak, maxStageTime float64
	devices := 0
	for i := range est.Stages {
		s := &est.Stages[i]
		for _, f := range [...]struct {
			name string
			v    float64
		}{
			{"FwdTime", s.FwdTime}, {"BwdTime", s.BwdTime},
			{"TPComm", s.TPComm}, {"P2P", s.P2P}, {"Recomp", s.Recomp},
			{"ReshardComm", s.ReshardComm}, {"DPSync", s.DPSync},
			{"StageTime", s.StageTime}, {"ParamMem", s.ParamMem},
			{"OptMem", s.OptMem}, {"ActPerMB", s.ActPerMB},
			{"ExtraMem", s.ExtraMem}, {"PeakMem", s.PeakMem},
		} {
			if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
				violate("stage %d: %s = %v, want finite and ≥ 0", i, f.name, f.v)
			}
		}

		fb := s.FwdTime + s.BwdTime
		tol := auditRelTol * fb
		if shares := s.TPComm + s.P2P + s.Recomp + s.ReshardComm; shares > fb+tol {
			violate("stage %d: comm+recomp shares %v exceed FwdTime+BwdTime %v (proportions sum > 1)",
				i, shares, fb)
		}
		if got := s.CompTime() + s.TPComm + s.P2P + s.Recomp + s.ReshardComm; math.Abs(got-fb) > tol {
			violate("stage %d: breakdown sums to %v, want FwdTime+BwdTime = %v", i, got, fb)
		}
		if s.Recomp > s.BwdTime+auditRelTol*s.BwdTime {
			violate("stage %d: Recomp %v exceeds BwdTime %v", i, s.Recomp, s.BwdTime)
		}
		if base := s.ParamMem + s.OptMem + s.ExtraMem; base > s.PeakMem+auditRelTol*s.PeakMem {
			violate("stage %d: PeakMem %v below its components %v", i, s.PeakMem, base)
		}

		if s.PeakMem > maxPeak {
			maxPeak = s.PeakMem
		}
		if s.StageTime > maxStageTime {
			maxStageTime = s.StageTime
		}
		devices += s.Devices

		if cfg != nil {
			st := &cfg.Stages[i]
			maxTP, dpChanges := 1, false
			prevDP := 0
			for j := range st.Ops {
				if st.Ops[j].TP > maxTP {
					maxTP = st.Ops[j].TP
				}
				if prevDP != 0 && st.Ops[j].DP != prevDP {
					dpChanges = true
				}
				prevDP = st.Ops[j].DP
			}
			if maxTP == 1 && s.TPComm != 0 {
				violate("stage %d: TPComm = %v with tp=1 throughout — foreign traffic booked as tensor-parallel",
					i, s.TPComm)
			}
			if !dpChanges && s.ReshardComm != 0 {
				violate("stage %d: ReshardComm = %v without a mid-stage dp change", i, s.ReshardComm)
			}
		}
	}

	if math.Abs(est.PeakMem-maxPeak) > auditRelTol*maxPeak {
		violate("PeakMem %v is not the stage max %v", est.PeakMem, maxPeak)
	}
	if math.Abs(est.IterTime-maxStageTime) > auditRelTol*maxStageTime {
		violate("IterTime %v is not the slowest stage's time %v", est.IterTime, maxStageTime)
	}
	if est.Devices != 0 && est.Devices != devices {
		violate("Devices = %d, stages sum to %d", est.Devices, devices)
	}
	if len(est.Stages) > 0 && est.Microbatches < 0 {
		violate("Microbatches = %d, want ≥ 0", est.Microbatches)
	}
	return out
}

// maxAuditViolations caps the violations an Auditor retains; a broken
// model would otherwise flood memory with one message per estimate.
const maxAuditViolations = 64

// Auditor is a Tracer that runs AuditEstimate on every estimate the
// search produces, accumulating violations. Attach it (alone or via
// MultiTracer) to core.Options.Tracer; a clean search leaves Err() nil.
type Auditor struct {
	mu        sync.Mutex
	checked   int64
	total     int64 // violations found, including dropped ones
	violation []string
}

// NewAuditor returns an empty breakdown auditor.
func NewAuditor() *Auditor { return &Auditor{} }

// OnIteration implements Tracer (iteration events carry no estimate).
func (a *Auditor) OnIteration(IterationEvent) {}

// OnEstimate implements Tracer.
func (a *Auditor) OnEstimate(cfg *config.Config, est *perfmodel.Estimate) {
	vs := AuditEstimate(cfg, est)
	a.mu.Lock()
	a.checked++
	a.total += int64(len(vs))
	for _, v := range vs {
		if len(a.violation) < maxAuditViolations {
			a.violation = append(a.violation, v)
		}
	}
	a.mu.Unlock()
}

// Checked returns the number of estimates audited.
func (a *Auditor) Checked() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.checked
}

// Violations returns the retained violation messages.
func (a *Auditor) Violations() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.violation...)
}

// Err returns nil when every audited estimate was sound, else an error
// summarizing the violations.
func (a *Auditor) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.total == 0 {
		return nil
	}
	return fmt.Errorf("obs: %d breakdown-invariant violations in %d estimates (first: %s)",
		a.total, a.checked, a.violation[0])
}
