package obs

import (
	"bytes"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// A strict Prometheus text exposition-format parser, used to round-trip
// WritePrometheus output. It enforces the rules a real scraper relies
// on:
//
//   - every sample belongs to the most recently declared TYPE family
//     (base name equal to the family, or family_{bucket,sum,count} for
//     histograms);
//   - a family is declared exactly once (no interleaving);
//   - metric and label names match the format's character set;
//   - label values use only the format's escapes (\\, \", \n);
//   - histogram buckets come in strictly ascending `le` order, are
//     cumulative, end with +Inf, and +Inf equals the _count series;
//   - every value parses as a finite float (or +Inf for the bucket
//     bound only).
// ---------------------------------------------------------------------------

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type promSeries struct {
	name   string
	labels map[string]string
	value  float64
}

type parsedFamily struct {
	name    string
	typ     string
	samples []promSeries
}

// parseLabels parses `k="v",...}` (the text after '{') and returns the
// labels plus the remainder after the closing brace.
func parseLabels(s string) (map[string]string, string, error) {
	labels := map[string]string{}
	for {
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("missing '=' in label block near %q", s)
		}
		key := s[:eq]
		if !promLabelRe.MatchString(key) {
			return nil, "", fmt.Errorf("bad label name %q", key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s: value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return nil, "", fmt.Errorf("label %s: unterminated value", key)
			}
			c := s[0]
			if c == '"' {
				s = s[1:]
				break
			}
			if c == '\\' {
				if len(s) < 2 {
					return nil, "", fmt.Errorf("label %s: dangling escape", key)
				}
				switch s[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: invalid escape \\%c", key, s[1])
				}
				s = s[2:]
				continue
			}
			if c == '\n' {
				return nil, "", fmt.Errorf("label %s: raw newline in value", key)
			}
			val.WriteByte(c)
			s = s[1:]
		}
		if _, dup := labels[key]; dup {
			return nil, "", fmt.Errorf("duplicate label %s", key)
		}
		labels[key] = val.String()
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		return nil, "", fmt.Errorf("expected ',' or '}' near %q", s)
	}
}

// memberOf reports whether series name n belongs to family f of type t.
func memberOf(n, f, t string) bool {
	if t == "histogram" {
		return n == f+"_bucket" || n == f+"_sum" || n == f+"_count"
	}
	return n == f
}

// parseExposition parses and validates a full exposition payload.
func parseExposition(text string) ([]parsedFamily, error) {
	var fams []parsedFamily
	declared := map[string]bool{}
	cur := -1 // index into fams of the open family
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "HELP" {
				continue
			}
			if len(fields) != 4 || fields[1] != "TYPE" {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name, typ := fields[2], fields[3]
			if !promNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: bad family name %q", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: bad family type %q", lineNo, typ)
			}
			if declared[name] {
				return nil, fmt.Errorf("line %d: family %s declared twice (interleaved families?)", lineNo, name)
			}
			declared[name] = true
			fams = append(fams, parsedFamily{name: name, typ: typ})
			cur = len(fams) - 1
			continue
		}
		// Sample line: name[{labels}] value
		i := strings.IndexAny(line, "{ ")
		if i < 0 {
			return nil, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		name := line[:i]
		if !promNameRe.MatchString(name) {
			return nil, fmt.Errorf("line %d: bad metric name %q", lineNo, name)
		}
		rest := line[i:]
		labels := map[string]string{}
		if strings.HasPrefix(rest, "{") {
			var err error
			labels, rest, err = parseLabels(rest[1:])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
		}
		rest = strings.TrimSpace(rest)
		// The value is the first field; an optional timestamp may follow.
		valStr := rest
		if j := strings.IndexByte(rest, ' '); j >= 0 {
			valStr = rest[:j]
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, valStr, err)
		}
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return nil, fmt.Errorf("line %d: non-finite sample value %q", lineNo, valStr)
		}
		if cur < 0 || !memberOf(name, fams[cur].name, fams[cur].typ) {
			return nil, fmt.Errorf("line %d: sample %s outside its family's TYPE block", lineNo, name)
		}
		fams[cur].samples = append(fams[cur].samples, promSeries{name: name, labels: labels, value: val})
	}
	for _, f := range fams {
		if f.typ != "histogram" {
			continue
		}
		if err := checkHistogram(f); err != nil {
			return nil, fmt.Errorf("family %s: %v", f.name, err)
		}
	}
	return fams, nil
}

// checkHistogram enforces the histogram-specific rules.
func checkHistogram(f parsedFamily) error {
	prevLe := math.Inf(-1)
	prevCum := -1.0
	var lastLe float64
	var lastCum float64
	buckets := 0
	var sum, count *float64
	for _, s := range f.samples {
		switch s.name {
		case f.name + "_bucket":
			leStr, ok := s.labels["le"]
			if !ok {
				return fmt.Errorf("bucket without le label")
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("bad le %q: %v", leStr, err)
			}
			if le <= prevLe {
				return fmt.Errorf("bucket le %q not in ascending order (previous %g)", leStr, prevLe)
			}
			if s.value < prevCum {
				return fmt.Errorf("bucket le %q not cumulative (%g after %g)", leStr, s.value, prevCum)
			}
			prevLe, prevCum = le, s.value
			lastLe, lastCum = le, s.value
			buckets++
		case f.name + "_sum":
			v := s.value
			sum = &v
		case f.name + "_count":
			v := s.value
			count = &v
		}
	}
	if buckets == 0 {
		return fmt.Errorf("no buckets")
	}
	if !math.IsInf(lastLe, 1) {
		return fmt.Errorf("last bucket le is %g, want +Inf", lastLe)
	}
	if sum == nil || count == nil {
		return fmt.Errorf("missing _sum or _count")
	}
	if lastCum != *count {
		return fmt.Errorf("+Inf bucket %g != count %g", lastCum, *count)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Regression tests
// ---------------------------------------------------------------------------

// TestPrometheusBucketOrder pins the histogram bucket ordering bug:
// the flat lexical sort put `le="+Inf"` first ('+' < digits) and
// `le="10"` before `le="9"`. Buckets must come in ascending bound
// order with +Inf last.
func TestPrometheusBucketOrder(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("aceso_test_depth", 0.5, 2, 9, 10)
	for _, v := range []float64{0.1, 1, 5, 9.5, 100} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	var les []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "aceso_test_depth_bucket{") {
			start := strings.Index(line, `le="`) + len(`le="`)
			end := strings.Index(line[start:], `"`) + start
			les = append(les, line[start:end])
		}
	}
	want := []string{"0.5", "2", "9", "10", "+Inf"}
	if len(les) != len(want) {
		t.Fatalf("got %d buckets %v, want %v", len(les), les, want)
	}
	for i := range want {
		if les[i] != want[i] {
			t.Fatalf("bucket order %v, want %v (le=%q at %d)", les, want, les[i], i)
		}
	}
	if _, err := parseExposition(text); err != nil {
		t.Fatalf("strict parse: %v\n%s", err, text)
	}
}

// TestPrometheusStrictRoundTrip builds a registry that exercises every
// historical exposition bug at once — a labeled family whose base name
// is a strict prefix of another metric (interleaving under lexical
// sort), histograms and timers (mis-typed as counters), label values
// needing escaping — and round-trips the output through the strict
// parser.
func TestPrometheusStrictRoundTrip(t *testing.T) {
	r := NewRegistry()
	// `aceso_x` (labeled) vs `aceso_x_extra`: '{' (0x7b) sorts after
	// '_' (0x5f), so the lexical order was aceso_x, aceso_x_extra,
	// aceso_x{...} — family aceso_x interleaved around aceso_x_extra.
	r.Counter(`aceso_x{primitive="inc-dp"}`).Add(3)
	r.Counter(`aceso_x{primitive="dec-pp"}`).Add(4)
	r.Counter("aceso_x_extra").Add(7)
	r.Counter(CandidatesEstimatedTotal).Add(41)
	r.Gauge(ServeInflight).Set(2)
	r.Timer(IterationSeconds).Observe(250 * time.Millisecond)
	h := r.Histogram(MultiHopDepth, 1, 2, 4, 8)
	h.Observe(1)
	h.Observe(3)
	h.Observe(99)
	// Label values with every escape-worthy byte.
	r.Counter(`aceso_escape_total{kind="quote\"backslash\\newline\n"}`).Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := parseExposition(buf.String())
	if err != nil {
		t.Fatalf("strict parse: %v\n%s", err, buf.String())
	}

	byName := map[string]parsedFamily{}
	for _, f := range fams {
		byName[f.name] = f
	}
	if f := byName["aceso_x"]; f.typ != "counter" || len(f.samples) != 2 {
		t.Errorf("aceso_x family = %+v, want 2 counter samples", f)
	}
	if f := byName["aceso_x_extra"]; len(f.samples) != 1 || f.samples[0].value != 7 {
		t.Errorf("aceso_x_extra family = %+v", f)
	}
	if f := byName[MultiHopDepth]; f.typ != "histogram" {
		t.Errorf("%s typed %q, want histogram", MultiHopDepth, f.typ)
	}
	if f := byName[ServeInflight]; f.typ != "gauge" || f.samples[0].value != 2 {
		t.Errorf("%s = %+v, want gauge 2", ServeInflight, f)
	}
	if f := byName[IterationSeconds+"_seconds_total"]; f.typ != "counter" || f.samples[0].value != 0.25 {
		t.Errorf("timer total family = %+v", f)
	}
	esc := byName["aceso_escape_total"]
	if len(esc.samples) != 1 {
		t.Fatalf("escape family = %+v", esc)
	}
	if got := esc.samples[0].labels["kind"]; got != "quote\"backslash\\newline\n" {
		t.Errorf("escaped label round-tripped to %q", got)
	}
}

// TestPrometheusParserCatchesViolations makes sure the strict parser
// would actually have caught the historical output.
func TestPrometheusParserCatchesViolations(t *testing.T) {
	bad := []struct{ name, text string }{
		{"inf bucket first", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_bucket{le=\"1\"} 1\nh_sum 4\nh_count 3\n"},
		{"lexical le order", "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"9\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 4\nh_count 3\n"},
		{"interleaved families", "# TYPE a counter\na 1\n# TYPE b counter\nb 1\n# TYPE a counter\na{k=\"v\"} 1\n"},
		{"sample outside family", "# TYPE a counter\nb 1\n"},
		{"histogram typed counter", "# TYPE h counter\nh_bucket{le=\"+Inf\"} 1\n"},
		{"raw backslash escape", "# TYPE a counter\na{k=\"x\\q\"} 1\n"},
		{"missing count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n"},
	}
	for _, c := range bad {
		if _, err := parseExposition(c.text); err == nil {
			t.Errorf("%s: strict parser accepted invalid payload", c.name)
		}
	}
}

// TestBoundedJSONLTracerCap pins the daemon-mode memory cap: a bounded
// tracer retains at most its capacity of the most recent events and
// counts what it dropped; the batch tracer stays unbounded.
func TestBoundedJSONLTracerCap(t *testing.T) {
	const capacity = 4
	tr := NewBoundedJSONLTracer(capacity)
	for i := 1; i <= 10; i++ {
		tr.OnIteration(IterationEvent{StageCount: 1, Iter: i})
	}
	evs := tr.Events()
	if len(evs) != capacity {
		t.Fatalf("retained %d events, want %d", len(evs), capacity)
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	for i, ev := range evs {
		if want := 7 + i; ev.Iter != want {
			t.Errorf("event %d has Iter %d, want %d (most recent window)", i, ev.Iter, want)
		}
	}
	// Batch mode unaffected.
	b := NewJSONLTracer()
	for i := 1; i <= 10; i++ {
		b.OnIteration(IterationEvent{StageCount: 1, Iter: i})
	}
	if len(b.Events()) != 10 || b.Dropped() != 0 {
		t.Errorf("batch tracer dropped events: len %d dropped %d", len(b.Events()), b.Dropped())
	}
}
