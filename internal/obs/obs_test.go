package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"aceso/internal/config"
	"aceso/internal/perfmodel"
)

func TestJSONLTracerDeterministicOrder(t *testing.T) {
	// Events arrive interleaved across workers; the emitted bytes must
	// not depend on arrival order.
	evs := []IterationEvent{
		{StageCount: 2, Iter: 1, Improved: true, Primitive: "inc-dp", Hops: 2},
		{StageCount: 1, Iter: 2, PoolRestart: true},
		{StageCount: 1, Iter: 1, Improved: true, Primitive: "inc-tp", Hops: 1},
	}
	a, b := NewJSONLTracer(), NewJSONLTracer()
	for _, ev := range evs {
		a.OnIteration(ev)
	}
	for i := len(evs) - 1; i >= 0; i-- {
		b.OnIteration(evs[i])
	}
	var ba, bb bytes.Buffer
	if _, err := a.WriteTo(&ba); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Errorf("traces differ by arrival order:\n%s\nvs\n%s", ba.String(), bb.String())
	}
	lines := strings.Split(strings.TrimSpace(ba.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var first IterationEvent
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v", err)
	}
	if first.StageCount != 1 || first.Iter != 1 || first.Primitive != "inc-tp" {
		t.Errorf("first line = %+v, want stage-count 1 iter 1", first)
	}
}

func TestRegistryExports(t *testing.T) {
	r := NewRegistry()
	r.Counter(CandidatesEstimatedTotal).Add(42)
	r.Counter(PrimitiveAppliedTotal + `{primitive="inc-dp"}`).Inc()
	r.Timer(IterationSeconds).Observe(1500 * time.Millisecond)
	h := r.Histogram(MultiHopDepth, 1, 2, 4, 8)
	h.Observe(1)
	h.Observe(3)
	h.Observe(100) // overflow → +Inf only

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var got map[string]float64
	if err := json.Unmarshal(js.Bytes(), &got); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v\n%s", err, js.String())
	}
	for name, want := range map[string]float64{
		CandidatesEstimatedTotal:                       42,
		PrimitiveAppliedTotal + `{primitive="inc-dp"}`: 1,
		IterationSeconds + "_seconds_total":            1.5,
		IterationSeconds + "_count":                    1,
		MultiHopDepth + `_bucket{le="1"}`:              1,
		MultiHopDepth + `_bucket{le="4"}`:              2,
		MultiHopDepth + `_bucket{le="+Inf"}`:           3,
		MultiHopDepth + "_count":                       3,
	} {
		if got[name] != want {
			t.Errorf("%s = %v, want %v", name, got[name], want)
		}
	}

	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		"# TYPE " + CandidatesEstimatedTotal + " counter\n",
		CandidatesEstimatedTotal + " 42\n",
		PrimitiveAppliedTotal + `{primitive="inc-dp"} 1` + "\n",
		MultiHopDepth + `_bucket{le="+Inf"} 3` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, text)
		}
	}
}

// soundEstimate builds a hand-assembled estimate that satisfies every
// accounting invariant.
func soundEstimate() *perfmodel.Estimate {
	s := perfmodel.StageMetrics{
		FwdTime: 10e-3, BwdTime: 20e-3,
		TPComm: 2e-3, P2P: 1e-3, Recomp: 3e-3, ReshardComm: 1e-3,
		DPSync: 5e-3, StageTime: 100e-3,
		ParamMem: 1e9, OptMem: 2e9, ActPerMB: 1e8, ExtraMem: 1e8,
		PeakMem: 3.3e9, CapMem: 32e9, Devices: 4,
	}
	return &perfmodel.Estimate{
		Stages:   []perfmodel.StageMetrics{s},
		IterTime: 100e-3, PeakMem: 3.3e9, Feasible: true, OOMStage: -1,
		Microbatches: 8, Devices: 4,
	}
}

func TestAuditEstimateSound(t *testing.T) {
	if vs := AuditEstimate(nil, soundEstimate()); len(vs) != 0 {
		t.Errorf("sound estimate flagged: %v", vs)
	}
}

func TestAuditEstimateCatchesBrokenBuckets(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(e *perfmodel.Estimate)
	}{
		{"negative TPComm", func(e *perfmodel.Estimate) { e.Stages[0].TPComm = -1e-3 }},
		{"shares exceed fwd+bwd", func(e *perfmodel.Estimate) { e.Stages[0].TPComm = 1 }},
		{"recomp exceeds bwd", func(e *perfmodel.Estimate) { e.Stages[0].Recomp = 25e-3 }},
		{"peak below components", func(e *perfmodel.Estimate) { e.Stages[0].PeakMem = 1e9 }},
		{"iter time not stage max", func(e *perfmodel.Estimate) { e.IterTime = 1e-3 }},
		{"devices mismatch", func(e *perfmodel.Estimate) { e.Devices = 16 }},
	}
	for _, c := range cases {
		e := soundEstimate()
		c.break_(e)
		// "peak below components" breaks the estimate-level max too —
		// any violation at all is what matters.
		if vs := AuditEstimate(nil, e); len(vs) == 0 {
			t.Errorf("%s: no violation reported", c.name)
		}
	}
}

func TestAuditEstimateConfigInvariants(t *testing.T) {
	// A tp=1-throughout stage must have zero TPComm — the historical
	// reshard-into-TPComm bug made exactly this fail.
	cfg := &config.Config{
		Stages:     []config.Stage{{Start: 0, End: 2, Devices: 4}},
		MicroBatch: 4,
	}
	cfg.Stages[0].Ops = []config.OpSetting{{TP: 1, DP: 4}, {TP: 1, DP: 4}}
	e := soundEstimate()
	if vs := AuditEstimate(cfg, e); len(vs) == 0 {
		t.Error("TPComm > 0 with tp=1 throughout not flagged")
	}
	// And ReshardComm without a mid-stage dp change.
	e2 := soundEstimate()
	e2.Stages[0].TPComm = 0
	if vs := AuditEstimate(cfg, e2); len(vs) == 0 {
		t.Error("ReshardComm > 0 without a dp change not flagged")
	}
}

func TestAuditorTracksViolations(t *testing.T) {
	a := NewAuditor()
	a.OnEstimate(nil, soundEstimate())
	if err := a.Err(); err != nil {
		t.Fatalf("clean estimate produced error: %v", err)
	}
	bad := soundEstimate()
	bad.Stages[0].TPComm = -1
	a.OnEstimate(nil, bad)
	if a.Checked() != 2 {
		t.Errorf("Checked = %d, want 2", a.Checked())
	}
	if err := a.Err(); err == nil {
		t.Error("violation not surfaced by Err")
	}
	if len(a.Violations()) == 0 {
		t.Error("violation not retained")
	}
}

func TestMultiTracerNilCollapse(t *testing.T) {
	if MultiTracer(nil, nil) != nil {
		t.Error("MultiTracer of nils should be nil (zero-overhead guard)")
	}
	a := NewAuditor()
	mt := MultiTracer(nil, a)
	mt.OnEstimate(nil, soundEstimate())
	if a.Checked() != 1 {
		t.Error("MultiTracer did not forward to the non-nil tracer")
	}
}
