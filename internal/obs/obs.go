// Package obs is the observability layer of the search stack: a
// structured search trace (JSONL events for every top-level iteration
// of Algorithm 1), an atomic metrics registry (exportable as JSON and
// Prometheus text format), and a breakdown auditor that asserts the
// performance model's resource-accounting invariants on every traced
// estimate.
//
// The zero-overhead-when-disabled contract: nothing in this package
// runs unless a Tracer or *Registry is handed to core.Options. The
// search hot path guards every call with a nil check, so a search
// without observers pays one pointer comparison per event site and
// allocates nothing (DESIGN.md §5d).
//
// Profiling-grounded systems (CFP, PipeDream) treat measured
// breakdowns as first-class artifacts; this package gives the search
// the same: the trace shows *why* each reconfiguration was chosen
// (bottleneck stage, resource proportions, primitive, hops), the
// metrics show where the machinery spends its work, and the auditor
// keeps the time/memory buckets honest — a mis-attributed bucket
// silently steers Heuristic-2, and nothing else in the repo can see
// it.
package obs

import (
	"aceso/internal/config"
	"aceso/internal/perfmodel"
)

// IterationEvent is one record of the JSONL search trace: one
// top-level iteration of Algorithm 1 inside one per-pipeline-depth
// search worker. Field order is the wire order (encoding/json emits
// struct fields in declaration order), so the schema below is also the
// byte layout the determinism golden test pins.
type IterationEvent struct {
	// StageCount identifies the worker (its pipeline depth).
	StageCount int `json:"stage_count"`
	// Iter is the 1-based iteration index within the worker.
	Iter int `json:"iter"`
	// Improved is true when the iteration found a better configuration.
	Improved bool `json:"improved"`

	// BottleneckStage is the stage whose bottleneck the accepted
	// reconfiguration alleviated — the last bottleneck attempted on
	// non-improving iterations, -1 when the estimate had no stages.
	BottleneckStage int `json:"bottleneck_stage"`
	// Comp/Comm/MemProportion are the bottleneck stage's shares of the
	// cluster-wide consumption of each resource — the inputs to
	// Heuristic-2's primitive ordering (§3.2, Table 1).
	CompProportion float64 `json:"comp_proportion"`
	CommProportion float64 `json:"comm_proportion"`
	MemProportion  float64 `json:"mem_proportion"`

	// Primitive is the Table-1 name of the accepted reconfiguration
	// ("" on non-improving iterations).
	Primitive string `json:"primitive,omitempty"`
	// Hops is the multi-hop depth of the accepted reconfiguration.
	Hops int `json:"hops"`
	// BottleneckTries counts the ranked bottlenecks attempted before
	// one yielded an improvement.
	BottleneckTries int `json:"bottleneck_tries"`
	// Backtracks counts abandoned multi-hop branches: ranked
	// candidates the iteration recursed into without finding an
	// improvement.
	Backtracks int `json:"backtracks"`
	// DedupHits counts candidates discarded because their semantic
	// hash was already visited (§4.3 dedup).
	DedupHits int `json:"dedup_hits"`
	// Estimated counts configurations newly estimated this iteration.
	Estimated int `json:"estimated"`

	// PoolRestart is true when the iteration found no improvement and
	// restarted from the best unexplored pool entry (Algorithm 1
	// line 13).
	PoolRestart bool `json:"pool_restart"`
	// PoolSize is the unexplored-pool size after the iteration.
	PoolSize int `json:"pool_size"`
	// BestScore is the worker's best score after the iteration
	// (estimated iteration time in seconds once feasible).
	BestScore float64 `json:"best_score"`
}

// Tracer receives structured search events. Implementations must be
// safe for concurrent use: the per-pipeline-depth workers call them in
// parallel. The search guards every call site with a nil check, so a
// nil Tracer costs nothing.
type Tracer interface {
	// OnIteration is called once per top-level search iteration.
	OnIteration(ev IterationEvent)
	// OnEstimate is called for every configuration newly estimated in
	// the search hot path. est must be treated as read-only; cfg may be
	// nil for callers that audit bare estimates.
	OnEstimate(cfg *config.Config, est *perfmodel.Estimate)
}

// multiTracer fans events out to several tracers.
type multiTracer []Tracer

func (m multiTracer) OnIteration(ev IterationEvent) {
	for _, t := range m {
		t.OnIteration(ev)
	}
}

func (m multiTracer) OnEstimate(cfg *config.Config, est *perfmodel.Estimate) {
	for _, t := range m {
		t.OnEstimate(cfg, est)
	}
}

// MultiTracer combines tracers into one; nil entries are dropped.
// Returns nil when every entry is nil, preserving the zero-overhead
// nil guard downstream.
func MultiTracer(ts ...Tracer) Tracer {
	var out multiTracer
	for _, t := range ts {
		if t != nil {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
