package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"aceso/internal/config"
	"aceso/internal/perfmodel"
)

// JSONLTracer collects iteration events and renders them as JSON Lines
// in a deterministic order. Events arrive from the per-pipeline-depth
// workers in nondeterministic interleavings, so the tracer buffers
// them and WriteTo sorts by (stage count, iteration index) — for a
// fixed seed and iteration budget the emitted bytes are identical
// across runs (the golden determinism test pins this).
//
// The batch constructor (NewJSONLTracer) buffers without bound — right
// for a single search whose whole trace is the artifact, wrong for a
// long-running daemon, where an unbounded buffer is a slow memory
// leak. NewBoundedJSONLTracer caps the buffer as a ring of the most
// recent events; acesod uses it for its rolling /v1/trace window.
type JSONLTracer struct {
	mu     sync.Mutex
	events []IterationEvent
	// cap bounds the buffer (0 = unbounded batch mode). When full the
	// buffer becomes a ring: next is the overwrite cursor and arrival
	// order is events[next:] ++ events[:next].
	cap     int
	next    int
	dropped int64
}

// NewJSONLTracer returns an empty, unbounded JSONL trace collector
// (the batch path: one search, whole trace retained, deterministic
// output bytes).
func NewJSONLTracer() *JSONLTracer { return &JSONLTracer{} }

// NewBoundedJSONLTracer returns a collector that retains only the most
// recent capacity events, overwriting the oldest once full (and
// counting what it dropped). The deterministic-sort contract still
// applies to whatever is retained, but which events are retained
// depends on arrival order — bounded mode trades the batch path's
// byte-determinism for a hard memory cap.
func NewBoundedJSONLTracer(capacity int) *JSONLTracer {
	if capacity < 1 {
		capacity = 1
	}
	return &JSONLTracer{cap: capacity}
}

// OnIteration implements Tracer.
func (t *JSONLTracer) OnIteration(ev IterationEvent) {
	t.mu.Lock()
	if t.cap > 0 && len(t.events) == t.cap {
		t.events[t.next] = ev
		t.next = (t.next + 1) % t.cap
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Dropped returns how many events a bounded tracer has overwritten
// (always 0 in batch mode).
func (t *JSONLTracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// OnEstimate implements Tracer. Per-estimate events are not logged —
// a search estimates tens of thousands of configurations and the
// trace is an iteration-level artifact; the Auditor is the
// per-estimate consumer.
func (t *JSONLTracer) OnEstimate(*config.Config, *perfmodel.Estimate) {}

// Events returns the collected events in the deterministic emission
// order (stage count, then iteration index). In bounded mode only the
// retained ring window is returned.
func (t *JSONLTracer) Events() []IterationEvent {
	t.mu.Lock()
	out := make([]IterationEvent, 0, len(t.events))
	// Reconstruct arrival order first so the stable sort's equal-key
	// order is arrival order in both modes.
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	t.mu.Unlock()
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].StageCount != out[b].StageCount {
			return out[a].StageCount < out[b].StageCount
		}
		return out[a].Iter < out[b].Iter
	})
	return out
}

// WriteTo emits the trace as JSON Lines: one IterationEvent object per
// line, deterministically ordered.
func (t *JSONLTracer) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	enc := json.NewEncoder(cw) // Encode appends the newline JSONL wants
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// countWriter counts bytes for the io.WriterTo contract.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
