package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"aceso/internal/config"
	"aceso/internal/perfmodel"
)

// JSONLTracer collects iteration events and renders them as JSON Lines
// in a deterministic order. Events arrive from the per-pipeline-depth
// workers in nondeterministic interleavings, so the tracer buffers
// them and WriteTo sorts by (stage count, iteration index) — for a
// fixed seed and iteration budget the emitted bytes are identical
// across runs (the golden determinism test pins this).
type JSONLTracer struct {
	mu     sync.Mutex
	events []IterationEvent
}

// NewJSONLTracer returns an empty JSONL trace collector.
func NewJSONLTracer() *JSONLTracer { return &JSONLTracer{} }

// OnIteration implements Tracer.
func (t *JSONLTracer) OnIteration(ev IterationEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// OnEstimate implements Tracer. Per-estimate events are not logged —
// a search estimates tens of thousands of configurations and the
// trace is an iteration-level artifact; the Auditor is the
// per-estimate consumer.
func (t *JSONLTracer) OnEstimate(*config.Config, *perfmodel.Estimate) {}

// Events returns the collected events in the deterministic emission
// order (stage count, then iteration index).
func (t *JSONLTracer) Events() []IterationEvent {
	t.mu.Lock()
	out := make([]IterationEvent, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].StageCount != out[b].StageCount {
			return out[a].StageCount < out[b].StageCount
		}
		return out[a].Iter < out[b].Iter
	})
	return out
}

// WriteTo emits the trace as JSON Lines: one IterationEvent object per
// line, deterministically ordered.
func (t *JSONLTracer) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	enc := json.NewEncoder(cw) // Encode appends the newline JSONL wants
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// countWriter counts bytes for the io.WriterTo contract.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
