package chaos

import (
	"testing"
	"time"
)

// TestRunElasticClean is the elastic-smoke gate: a batch of randomized
// train → kill → replan → reshard → resume trials must complete with
// zero invariant violations.
func TestRunElasticClean(t *testing.T) {
	if testing.Short() {
		t.Skip("elastic chaos trials are not short")
	}
	rep := RunElastic(Options{Trials: 12, Seed: 20260806})
	t.Log(rep.Summary())
	if rep.Failed() {
		t.Fatalf("elastic chaos violations:\n%s", rep.Summary())
	}
	if rep.Trials != 12 {
		t.Fatalf("ran %d trials, want 12", rep.Trials)
	}
	// The harness must actually exercise recovered runs, not reject
	// every trial on a technicality.
	if rep.Plans == 0 {
		t.Fatal("no trial completed a full elastic run")
	}
}

// TestRunElasticDurationBound: a duration-bounded run stops on time.
func TestRunElasticDurationBound(t *testing.T) {
	start := time.Now()
	rep := RunElastic(Options{Trials: 0, Duration: 2 * time.Second, Seed: 1})
	if rep.Trials == 0 {
		t.Fatal("no trials ran inside the duration bound")
	}
	if time.Since(start) > 90*time.Second {
		t.Fatalf("duration-bounded run overran: %v", time.Since(start))
	}
}

// TestReplayElasticTrialDeterministic: the same (trial, seed) replays
// to the same verdict — the property that makes violations debuggable.
func TestReplayElasticTrialDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 77, 9001} {
		a := ReplayElasticTrial(0, seed, &Report{})
		b := ReplayElasticTrial(0, seed, &Report{})
		if (a == nil) != (b == nil) {
			t.Fatalf("seed %d: verdicts differ between replays (%v vs %v)", seed, a, b)
		}
	}
}
