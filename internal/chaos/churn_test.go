package chaos

import (
	"math/rand"
	"testing"

	"aceso/internal/elastic"
)

// TestRunChurnClean is the churn-smoke gate: a batch of randomized
// continuous-churn trials — streams of preemptions, re-additions and
// derates through elastic.Supervise — must complete with zero
// invariant violations.
func TestRunChurnClean(t *testing.T) {
	if testing.Short() {
		t.Skip("churn chaos trials are not short")
	}
	rep := RunChurn(Options{Trials: 12, Seed: 20260808})
	t.Log(rep.Summary())
	if rep.Failed() {
		t.Fatalf("churn chaos violations:\n%s", rep.Summary())
	}
	if rep.Trials != 12 {
		t.Fatalf("ran %d trials, want 12", rep.Trials)
	}
	if rep.Plans == 0 {
		t.Fatal("no trial survived a full churn schedule")
	}
}

// TestRandomChurnSpecAlwaysValid: every generated schedule passes the
// supervisor's validator — the generator may be adversarial in content
// but never in form.
func TestRandomChurnSpecAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		devices := 1 + rng.Intn(8)
		spec := RandomChurnSpec(rng, devices, 2+rng.Intn(8), rng.Intn(12))
		if err := spec.Validate(devices); err != nil {
			t.Fatalf("generated spec invalid (iteration %d, devices %d): %v", i, devices, err)
		}
	}
}

// TestRandomChurnSpecMixesKinds: over many draws the generator covers
// all four event kinds.
func TestRandomChurnSpecMixesKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seen := map[elastic.ChurnKind]bool{}
	for i := 0; i < 200; i++ {
		spec := RandomChurnSpec(rng, 8, 8, 8)
		for _, ev := range spec.Events {
			seen[ev.Kind] = true
		}
	}
	for _, k := range []elastic.ChurnKind{elastic.Preempt, elastic.Readd, elastic.SlowNode, elastic.LinkDerate} {
		if !seen[k] {
			t.Errorf("kind %v never generated", k)
		}
	}
}

// TestReplayChurnTrialDeterministic: the same (trial, seed) replays to
// the same verdict — the property that makes violations debuggable.
func TestReplayChurnTrialDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 77, 9001} {
		a := ReplayChurnTrial(0, seed, &Report{})
		b := ReplayChurnTrial(0, seed, &Report{})
		if (a == nil) != (b == nil) {
			t.Fatalf("seed %d: verdicts differ between replays (%v vs %v)", seed, a, b)
		}
	}
}
