// Package chaos is the fault-injection harness for the search stack:
// it hammers SearchContext with randomly degraded clusters, hostile
// option sets, poisoned profiler databases and malformed graphs, and
// checks one invariant on every trial — the search returns either a
// Validate-clean plan with finite scores or a typed error. Never a
// panic, never a NaN.
//
// The harness is deliberately adversarial where the unit tests are
// cooperative: unit tests pin the behavior of specific fault paths,
// chaos searches for the paths nobody thought to pin. Every trial is
// reproducible from (Options.Seed, trial index), so a violation in a
// long run can be replayed in isolation with ReplayTrial.
package chaos

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"strings"
	"time"

	"aceso/internal/core"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/obs"
	"aceso/internal/perfmodel"
)

// Options tunes a chaos run. The zero value runs DefaultTrials trials.
type Options struct {
	// Trials is the number of randomized trials; 0 means run until
	// Duration expires (or DefaultTrials when Duration is also zero).
	Trials int
	// Duration bounds the wall time of the whole run; 0 means no bound.
	Duration time.Duration
	// Seed makes the trial sequence deterministic.
	Seed int64
	// Log, when non-nil, receives one line per trial batch.
	Log func(format string, args ...any)
}

// DefaultTrials is the trial count when neither Trials nor Duration is
// set.
const DefaultTrials = 64

// Violation is one broken invariant: the search panicked, returned an
// unvalidated plan, let a non-finite value escape, or produced an
// estimate whose resource-accounting breakdown is inconsistent.
type Violation struct {
	Trial  int
	Seed   int64  // per-trial seed: replays the exact trial
	Kind   string // "panic" | "invalid-plan" | "non-finite" | "poison-accepted" | "breakdown"
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("trial %d (seed %d) %s: %s", v.Trial, v.Seed, v.Kind, v.Detail)
}

// Report summarizes a chaos run.
type Report struct {
	Trials     int
	Plans      int // trials that produced a validated plan
	TypedErrs  int // trials rejected with a typed error (acceptable)
	Violations []Violation
	Elapsed    time.Duration
}

// Failed reports whether any invariant broke.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Summary renders a one-paragraph human-readable outcome.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: %d trials in %v: %d valid plans, %d typed rejections, %d violations\n",
		r.Trials, r.Elapsed.Round(time.Millisecond), r.Plans, r.TypedErrs, len(r.Violations))
	for i, v := range r.Violations {
		if i == 10 {
			fmt.Fprintf(&b, "  ... and %d more\n", len(r.Violations)-10)
			break
		}
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}

// Run executes the chaos trials and returns the report.
func Run(o Options) *Report {
	start := time.Now()
	rep := &Report{}
	deadline := time.Time{}
	if o.Duration > 0 {
		deadline = start.Add(o.Duration)
	}
	trials := o.Trials
	if trials <= 0 && o.Duration <= 0 {
		trials = DefaultTrials
	}
	for i := 0; trials <= 0 || i < trials; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		seed := o.Seed + int64(i)*1000003
		v := ReplayTrial(i, seed, rep)
		rep.Trials++
		if v != nil {
			rep.Violations = append(rep.Violations, *v)
		}
		if o.Log != nil && (i+1)%1024 == 0 {
			o.Log("chaos: %d trials, %d plans, %d typed errors, %d violations",
				rep.Trials, rep.Plans, rep.TypedErrs, len(rep.Violations))
		}
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// ReplayTrial runs one trial with the given seed, updating the plan and
// typed-error counters on rep (which may be a throwaway), and returns
// the violation, if any. Exported so a violation found in a long run
// can be replayed under a debugger.
func ReplayTrial(trial int, seed int64, rep *Report) (viol *Violation) {
	defer func() {
		if r := recover(); r != nil {
			viol = &Violation{
				Trial: trial, Seed: seed, Kind: "panic",
				Detail: fmt.Sprintf("%v\n%s", r, debug.Stack()),
			}
		}
	}()
	rng := rand.New(rand.NewSource(seed))
	g := randomGraph(rng)
	cl, degraded := randomCluster(rng)
	opts := hostileOptions(rng)

	// Poison the profiler database on some trials: the Load guard must
	// reject every invalid entry, and the search must stay NaN-free
	// either way.
	if rng.Intn(3) == 0 {
		pm := perfmodel.New(g, cl, opts.Seed)
		payload, poisoned := poisonProfile(rng)
		err := pm.Prof.Load(strings.NewReader(payload))
		if poisoned && err == nil {
			return &Violation{Trial: trial, Seed: seed, Kind: "poison-accepted",
				Detail: fmt.Sprintf("profiler.Load accepted %q", payload)}
		}
		if err == nil {
			opts.Model = pm
		}
	}

	ctx := context.Background()
	if rng.Intn(4) == 0 {
		// A fraction of trials run pre-canceled: the partial-result
		// contract applies from the very first instruction.
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		cancel()
	}

	// The breakdown auditor rides along on every trial: hostile inputs
	// that survive validation still have to produce estimates whose
	// resource-accounting buckets are internally consistent — the
	// invariant the observability layer exists to enforce.
	auditor := obs.NewAuditor()
	opts.Tracer = auditor

	res, err := core.SearchContext(ctx, g, cl, opts)
	if err != nil {
		rep.TypedErrs++
		return nil
	}
	if aerr := auditor.Err(); aerr != nil {
		return &Violation{Trial: trial, Seed: seed, Kind: "breakdown",
			Detail: aerr.Error()}
	}
	if res == nil || res.Best.Config == nil {
		return &Violation{Trial: trial, Seed: seed, Kind: "invalid-plan",
			Detail: "nil result or nil best config with nil error"}
	}
	if verr := res.Best.Config.Validate(g, cl.TotalDevices()); verr != nil {
		return &Violation{Trial: trial, Seed: seed, Kind: "invalid-plan",
			Detail: fmt.Sprintf("best config fails Validate: %v (degraded=%v)", verr, degraded)}
	}
	for _, c := range append([]core.Candidate{res.Best}, res.TopK...) {
		if math.IsNaN(c.Score) || math.IsInf(c.Score, 0) {
			return &Violation{Trial: trial, Seed: seed, Kind: "non-finite",
				Detail: fmt.Sprintf("candidate score %v", c.Score)}
		}
		if c.Estimate != nil && (math.IsNaN(c.Estimate.IterTime) || math.IsNaN(c.Estimate.PeakMem)) {
			return &Violation{Trial: trial, Seed: seed, Kind: "non-finite",
				Detail: fmt.Sprintf("estimate IterTime=%v PeakMem=%v", c.Estimate.IterTime, c.Estimate.PeakMem)}
		}
	}
	rep.Plans++
	return nil
}

// randomGraph picks a workload: usually a sane synthetic model, with a
// hostile minority (zero-op graphs, non-finite op costs) that the
// search must reject with a typed error.
func randomGraph(rng *rand.Rand) *model.Graph {
	switch rng.Intn(8) {
	case 0: // real workload, small
		g, _ := model.GPT3("350M")
		return g
	case 1: // empty graph — must be rejected, not crash
		return model.Uniform(0, 1e9, 1e6, 1e5, 8)
	case 2: // poisoned FLOPs
		g := model.Uniform(4+rng.Intn(8), 1e9, 1e6, 1e5, 8)
		g.Ops[rng.Intn(len(g.Ops))].FwdFLOPs = pick(rng, math.NaN(), math.Inf(1), -1e9)
		return g
	case 3: // poisoned memory footprint
		g := model.Uniform(4+rng.Intn(8), 1e9, 1e6, 1e5, 8)
		g.Ops[rng.Intn(len(g.Ops))].Params = pick(rng, math.NaN(), math.Inf(-1), -1)
		return g
	default: // sane synthetic model of random shape
		ops := 1 + rng.Intn(24)
		return model.Uniform(ops,
			math.Pow(10, 6+3*rng.Float64()), // 1e6 .. 1e9 FLOPs
			math.Pow(10, 4+3*rng.Float64()), // params
			math.Pow(10, 3+2*rng.Float64()), // activations
			1<<rng.Intn(5))                  // batch 1..16
	}
}

// randomCluster builds a cluster, usually degraded by a random fault
// spec and occasionally corrupted outright (which Validate must catch).
func randomCluster(rng *rand.Rand) (cl hardware.Cluster, degraded bool) {
	devices := 1 << rng.Intn(5) // 1..16
	if rng.Intn(4) == 0 {
		// Mixed fleet: random per-node A100/V100 layout, hit with the
		// same corruption and fault machinery as the homogeneous shape.
		nodeClass := make([]int, (devices+7)/8)
		for i := range nodeClass {
			nodeClass[i] = rng.Intn(2)
		}
		cl = hardware.Mixed(8, nodeClass, hardware.A100Class(), hardware.V100Class()).Restrict(devices)
	} else {
		cl = hardware.DGX1V100((devices + 7) / 8).Restrict(devices)
	}
	switch rng.Intn(8) {
	case 0: // corrupted description — typed rejection expected
		cl.MemoryBytes = pick(rng, math.NaN(), math.Inf(1), -1, 0)
		return cl, false
	case 1:
		cl.InterBW = pick(rng, math.NaN(), -5)
		return cl, false
	}
	if rng.Intn(2) == 0 {
		return cl, false // healthy
	}
	spec := randomFaultSpec(rng, devices)
	deg, err := cl.Degrade(spec)
	if err != nil {
		// Invalid spec (possible: random scales out of range); the
		// rejection is the behavior under test, continue healthy.
		return cl, false
	}
	return deg, true
}

// RandomValidFaultSpec draws a fault spec that Cluster.Degrade is
// guaranteed to accept: every derating is in its documented range and
// at least one device always survives. The differential harness
// (internal/diffcheck) uses it so its degraded-cluster tuples exercise
// fault-derated capacity without tripping input validation — unlike
// randomFaultSpec below, which is deliberately hostile.
func RandomValidFaultSpec(rng *rand.Rand, devices int) hardware.FaultSpec {
	var spec hardware.FaultSpec
	dead := 0
	for d := 0; d < devices; d++ {
		if rng.Intn(3) != 0 {
			continue
		}
		f := hardware.DeviceFault{Device: d, FLOPSScale: 1, MemScale: 1}
		switch rng.Intn(4) {
		case 0:
			// Never kill the last survivor.
			if dead+1 < devices {
				f.Dead = true
				dead++
			}
		case 1:
			f.FLOPSScale = 0.25 + 0.75*rng.Float64()
		case 2:
			f.MemScale = 0.25 + 0.75*rng.Float64()
		case 3:
			f.FLOPSScale = 0.25 + 0.75*rng.Float64()
			f.MemScale = 0.25 + 0.75*rng.Float64()
		}
		spec.Devices = append(spec.Devices, f)
	}
	if rng.Intn(3) == 0 {
		spec.InterBWScale = pick(rng, 0.25, 0.5, 1)
		spec.InterLatScale = pick(rng, 1, 2, 8)
	}
	return spec
}

// randomFaultSpec fuzzes deratings; roughly a third of the generated
// entries are invalid on purpose.
func randomFaultSpec(rng *rand.Rand, devices int) hardware.FaultSpec {
	var spec hardware.FaultSpec
	for d := 0; d < devices; d++ {
		if rng.Intn(4) != 0 {
			continue
		}
		f := hardware.DeviceFault{Device: d, FLOPSScale: 1, MemScale: 1}
		switch rng.Intn(6) {
		case 0:
			f.Dead = true
		case 1:
			f.FLOPSScale = 0.05 + 0.95*rng.Float64()
		case 2:
			f.MemScale = 0.05 + 0.95*rng.Float64()
		case 3: // invalid scale
			f.FLOPSScale = pick(rng, math.NaN(), 0, -0.5, 2)
		case 4: // out-of-range rank
			f.Device = devices + rng.Intn(4)
		case 5:
			f.FLOPSScale = 0.1 + 0.9*rng.Float64()
			f.MemScale = 0.1 + 0.9*rng.Float64()
		}
		spec.Devices = append(spec.Devices, f)
	}
	if rng.Intn(3) == 0 {
		spec.InterBWScale = pick(rng, 0.25, 0.5, 1, -1, math.NaN())
		spec.InterLatScale = pick(rng, 0, 2, 8, 0.5)
	}
	return spec
}

// hostileOptions fuzzes the search knobs, including values outside
// their documented ranges (negatives, zeros, absurd sizes).
func hostileOptions(rng *rand.Rand) core.Options {
	opts := core.Options{
		TimeBudget:     time.Duration(rng.Intn(80)+20) * time.Millisecond,
		MaxIterations:  1 + rng.Intn(2),
		Seed:           rng.Int63(),
		MaxHops:        rng.Intn(12) - 2, // includes invalid ≤ 0
		BranchFactor:   rng.Intn(6) - 1,  // includes invalid ≤ 0
		TopK:           rng.Intn(8) - 1,  // includes invalid ≤ 0
		InitMicroBatch: pickInt(rng, -4, 0, 1, 2, 1024),
	}
	if rng.Intn(4) == 0 {
		// Hostile stage counts: zero, negative, and absurdly deep.
		opts.StageCounts = []int{0, -1, 1, 2, 1 << 20}[rng.Intn(3):]
	}
	opts.DisableHeuristic2 = rng.Intn(2) == 0
	opts.DisableFineTune = rng.Intn(2) == 0
	opts.ExtendedPrimitives = rng.Intn(2) == 0
	return opts
}

// poisonProfile builds a profiler-database JSON payload; the second
// return is true when the payload must be rejected.
func poisonProfile(rng *rand.Rand) (string, bool) {
	key := `op|mlp|1|0|1|1|false|fp16`
	switch rng.Intn(5) {
	case 0: // clean single entry
		return fmt.Sprintf(`{"%s": %g}`, key, rng.Float64()*1e-3), false
	case 1: // negative cost
		return fmt.Sprintf(`{"%s": %g}`, key, -rng.Float64()), true
	case 2: // float64 overflow → Inf
		return fmt.Sprintf(`{"%s": 1e999}`, key), true
	case 3: // truncated JSON
		return fmt.Sprintf(`{"%s": 0.0`, key), true
	default: // malformed key
		return `{"op|broken": 1}`, true
	}
}

// pick returns one of the values uniformly.
func pick(rng *rand.Rand, vals ...float64) float64 { return vals[rng.Intn(len(vals))] }

// pick3 is pick for ints.
func pickInt(rng *rand.Rand, vals ...int) int { return vals[rng.Intn(len(vals))] }
