package chaos

import (
	"testing"
	"time"
)

// TestShortChaosRunIsClean is the CI-sized chaos gate: a deterministic
// batch of trials must finish with zero violations. The acesobench
// `chaos` target runs the same harness for longer.
func TestShortChaosRunIsClean(t *testing.T) {
	trials := 48
	if testing.Short() {
		trials = 12
	}
	rep := Run(Options{Trials: trials, Seed: 20260806, Log: t.Logf})
	t.Log(rep.Summary())
	if rep.Failed() {
		t.Fatalf("chaos violations:\n%s", rep.Summary())
	}
	if rep.Trials != trials {
		t.Errorf("ran %d trials, want %d", rep.Trials, trials)
	}
	if rep.Plans == 0 {
		t.Error("no trial produced a plan — the harness is only generating garbage")
	}
	if rep.TypedErrs == 0 {
		t.Error("no trial was rejected — the harness is not generating hostile inputs")
	}
}

// TestDurationBound pins that a duration-bounded run stops on time.
func TestDurationBound(t *testing.T) {
	start := time.Now()
	rep := Run(Options{Duration: 300 * time.Millisecond, Seed: 7})
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("duration-bounded run took %v", el)
	}
	if rep.Trials == 0 {
		t.Error("duration-bounded run executed no trials")
	}
}

// TestReplayIsDeterministic: the same (trial, seed) pair must reproduce
// the same outcome counters.
func TestReplayIsDeterministic(t *testing.T) {
	var a, b Report
	va := ReplayTrial(3, 12345, &a)
	vb := ReplayTrial(3, 12345, &b)
	if (va == nil) != (vb == nil) || a.Plans != b.Plans || a.TypedErrs != b.TypedErrs {
		t.Errorf("replay diverged: %v/%+v vs %v/%+v", va, a, vb, b)
	}
}
