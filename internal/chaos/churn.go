package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"time"

	"aceso/internal/comm"
	"aceso/internal/config"
	"aceso/internal/elastic"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/runtime"
	"aceso/internal/tensor"
)

// DefaultChurnTrials is the churn trial count when Options leaves both
// Trials and Duration unset. Each trial trains a model through a full
// churn schedule with potentially several replans, so the default is
// the smallest of the harnesses.
const DefaultChurnTrials = 12

// churnMaxCadence pins the supervisor's checkpoint-cadence cap for
// chaos trials, so the work-loss bound below is a closed formula.
const churnMaxCadence = 4

// churnTol bounds the divergence between a supervised run and its
// uninterrupted reference: reconfigurations are semantics-preserving,
// so only float re-association noise is tolerated.
const churnTol = 1e-9

// RandomChurnSpec draws a random churn schedule for a cluster of the
// given size: preemptions, re-additions (biased toward dead devices so
// runs tend to regain capacity), stragglers with later restores, and
// link derates. Iterations may land past iters — a paused run consumes
// the remaining schedule while it waits for capacity.
func RandomChurnSpec(rng *rand.Rand, devices, iters, maxEvents int) elastic.ChurnSpec {
	var spec elastic.ChurnSpec
	dead := map[int]bool{}
	derated := map[int]bool{}
	n := rng.Intn(maxEvents + 1)
	for i := 0; i < n; i++ {
		ev := elastic.ChurnEvent{Iteration: rng.Intn(iters + 2)}
		switch k := rng.Intn(10); {
		case k < 3: // preempt
			ev.Kind = elastic.Preempt
			ev.Device = rng.Intn(devices)
			if len(dead) >= devices-1 && !dead[ev.Device] && rng.Intn(4) != 0 {
				// Killing the last device usually stalls the run; mostly
				// re-add someone instead to keep trials productive.
				ev.Kind = elastic.Readd
			}
			if ev.Kind == elastic.Preempt {
				dead[ev.Device] = true
			} else {
				delete(dead, ev.Device)
			}
		case k < 6: // readd, preferring a currently-dead or derated device
			ev.Kind = elastic.Readd
			ev.Device = rng.Intn(devices)
			for d := range dead {
				ev.Device = d
				break
			}
			delete(dead, ev.Device)
			delete(derated, ev.Device)
		case k < 8: // slow node: derate, or restore one already derated
			ev.Kind = elastic.SlowNode
			ev.Device = rng.Intn(devices)
			if derated[ev.Device] && rng.Intn(2) == 0 {
				ev.Scale = 1
				delete(derated, ev.Device)
			} else {
				ev.Scale = 0.3 + 0.7*rng.Float64()
				derated[ev.Device] = true
			}
		default: // link derate or restore
			ev.Kind = elastic.LinkDerate
			if rng.Intn(3) == 0 {
				ev.Scale = 1
			} else {
				ev.Scale = 0.4 + 0.6*rng.Float64()
			}
		}
		spec.Events = append(spec.Events, ev)
	}
	return spec
}

// RunChurn hammers the churn supervisor end to end: every trial draws
// a random model, a random valid plan, and a random churn schedule of
// mixed preemptions/re-additions/derates, runs it through
// elastic.Supervise, and checks the invariants — no panic, no deadlock
// (an escaped *comm.CollectiveTimeoutError means a rank hung until the
// deadline saved it), a strictly monotone step counter, finite losses,
// all requested iterations completed, an availability floor (work lost
// is bounded by faults × the checkpoint cadence cap), and a final
// state that matches an uninterrupted run of the same model to float
// tolerance.
func RunChurn(o Options) *Report {
	start := time.Now()
	rep := &Report{}
	deadline := time.Time{}
	if o.Duration > 0 {
		deadline = start.Add(o.Duration)
	}
	trials := o.Trials
	if trials <= 0 && o.Duration <= 0 {
		trials = DefaultChurnTrials
	}
	for i := 0; trials <= 0 || i < trials; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		seed := o.Seed + int64(i)*1000003
		v := ReplayChurnTrial(i, seed, rep)
		rep.Trials++
		if v != nil {
			rep.Violations = append(rep.Violations, *v)
		}
		if o.Log != nil && (i+1)%4 == 0 {
			o.Log("chaos-churn: %d trials, %d survived runs, %d typed errors, %d violations",
				rep.Trials, rep.Plans, rep.TypedErrs, len(rep.Violations))
		}
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// ReplayChurnTrial runs one churn chaos trial. Exported so a violation
// from a long run is replayable in isolation.
func ReplayChurnTrial(trial int, seed int64, rep *Report) (viol *Violation) {
	defer func() {
		if r := recover(); r != nil {
			viol = &Violation{
				Trial: trial, Seed: seed, Kind: "panic",
				Detail: fmt.Sprintf("%v\n%s", r, debug.Stack()),
			}
		}
	}()
	fail := func(kind, format string, args ...any) *Violation {
		return &Violation{Trial: trial, Seed: seed, Kind: kind,
			Detail: fmt.Sprintf(format, args...)}
	}
	rng := rand.New(rand.NewSource(seed))

	dim := 4 << rng.Intn(2)   // 4 or 8
	layers := 2 + rng.Intn(3) // 2..4
	batch := 8 << rng.Intn(2) // 8 or 16
	g, err := model.MLP(layers, dim, batch)
	if err != nil {
		rep.TypedErrs++
		return nil
	}
	shape := drawShape(rng, len(g.Ops), dim)
	total := shape.stages * shape.tp * shape.dp
	mb := batch / (1 << rng.Intn(2))
	cfg, err := config.Balanced(g, total, shape.stages, mb)
	if err != nil {
		rep.TypedErrs++
		return nil
	}
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j] = config.OpSetting{TP: shape.tp, DP: shape.dp, Dim: 0}
		}
	}
	if err := cfg.Validate(g, total); err != nil {
		rep.TypedErrs++
		return nil
	}
	cl := hardware.DGX1V100(1).Restrict(total)

	x := tensor.New(batch, dim)
	y := tensor.New(batch, dim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		y.Data[i] = rng.NormFloat64()
	}

	iters := 4 + rng.Intn(5) // 4..8
	spec := RandomChurnSpec(rng, total, iters, 2+rng.Intn(7))

	// The uninterrupted reference trajectory for the divergence check.
	ref := runtime.InitParams(g, seed)
	ref.Opt = runtime.Adam
	refLosses, err := runtime.Parallel(g, cfg, ref, x, y, 0.05, iters)
	if err != nil {
		rep.TypedErrs++
		return nil
	}

	p := runtime.InitParams(g, seed)
	p.Opt = runtime.Adam
	opt := elastic.SuperviseOptions{
		Options: elastic.Options{
			LR:              0.05,
			CheckpointEvery: 1 + rng.Intn(2),
			CommDeadline:    20 * time.Second,
			SearchBudget:    100 * time.Millisecond,
			Seed:            seed,
		},
		BackoffBase:      time.Microsecond,
		BackoffCap:       4 * time.Microsecond,
		MaxCadence:       churnMaxCadence,
		SimulateTimeouts: rng.Intn(2),
	}
	churnRep, err := elastic.Supervise(context.Background(), g, cl, cfg, p, x, y, iters, spec, opt)
	if err != nil {
		var te *comm.CollectiveTimeoutError
		if errors.As(err, &te) {
			// Simulated timeouts (at most 1) never exhaust the retry
			// budget, so an escaped timeout means a rank really hung.
			return fail("deadlock", "collective timeout escaped the supervisor: %v", err)
		}
		var stalled *elastic.StalledError
		if errors.As(err, &stalled) {
			rep.TypedErrs++ // schedule genuinely ran out of capacity
			return nil
		}
		rep.TypedErrs++
		return nil
	}

	if churnRep.FinalStep != iters {
		return fail("lost-steps", "final step %d, want %d (events=%d faults=%d)",
			churnRep.FinalStep, iters, churnRep.EventsApplied, churnRep.FaultsDetected)
	}
	if len(churnRep.Losses) != iters {
		return fail("lost-steps", "%d losses for %d iterations", len(churnRep.Losses), iters)
	}
	for i, l := range churnRep.Losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			return fail("non-finite", "loss[%d] = %v", i, l)
		}
	}
	for i := 1; i < len(churnRep.Steps); i++ {
		if churnRep.Steps[i] <= churnRep.Steps[i-1] {
			return fail("non-monotone-step", "steps %v", churnRep.Steps)
		}
	}
	// Availability floor: each detected fault (and each retried
	// timeout) can discard at most one partial segment, and segments
	// are capped at MaxCadence iterations.
	if bound := (churnRep.FaultsDetected + churnRep.Retries) * churnMaxCadence; churnRep.StepsLost > bound {
		return fail("availability-floor", "lost %d steps > bound %d (faults=%d retries=%d cap=%d)",
			churnRep.StepsLost, bound, churnRep.FaultsDetected, churnRep.Retries, churnMaxCadence)
	}
	// Divergence: churn must cost wall time only, never training
	// fidelity.
	for i := range refLosses {
		if math.Abs(churnRep.Losses[i]-refLosses[i]) > churnTol {
			return fail("diverged", "loss[%d] %.15g vs uninterrupted %.15g", i, churnRep.Losses[i], refLosses[i])
		}
	}
	if d := ref.MaxDiff(churnRep.Params); d > churnTol {
		return fail("diverged", "final params differ by %g from uninterrupted run", d)
	}
	rep.Plans++
	return nil
}
