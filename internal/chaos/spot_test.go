package chaos

import (
	"math/rand"
	"testing"

	"aceso/internal/elastic"
)

// TestRunSpotClean is the spot-smoke gate: a batch of randomized
// Poisson-hazard preemption streams — noticed and unnoticed reclaims
// through elastic.Supervise's drain machinery — must complete with zero
// invariant violations.
func TestRunSpotClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spot chaos trials are not short")
	}
	rep := RunSpot(Options{Trials: 12, Seed: 20260808})
	t.Log(rep.Summary())
	if rep.Failed() {
		t.Fatalf("spot chaos violations:\n%s", rep.Summary())
	}
	if rep.Trials != 12 {
		t.Fatalf("ran %d trials, want 12", rep.Trials)
	}
	if rep.Plans == 0 {
		t.Fatal("no trial survived a full spot stream")
	}
}

// TestRandomSpotSpecAlwaysValid: every generated stream passes the
// supervisor's validator — adversarial in content, never in form.
func TestRandomSpotSpecAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		devices := 1 + rng.Intn(8)
		spec := RandomSpotSpec(rng, devices, 2+rng.Intn(8), 0.3, 0.5, 3)
		if err := spec.Validate(devices); err != nil {
			t.Fatalf("generated spec invalid (iteration %d, devices %d): %v", i, devices, err)
		}
	}
}

// TestRandomSpotSpecMixesNotices: over many draws the generator covers
// both noticed and unnoticed reclaims, and notices carry windows.
func TestRandomSpotSpecMixesNotices(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seen := map[elastic.ChurnKind]bool{}
	windowed := false
	for i := 0; i < 200; i++ {
		spec := RandomSpotSpec(rng, 8, 8, 0.2, 0.5, 3)
		for _, ev := range spec.Events {
			seen[ev.Kind] = true
			if ev.Kind == elastic.PreemptNotice && ev.Notice > 0 {
				windowed = true
			}
		}
	}
	for _, k := range []elastic.ChurnKind{elastic.Preempt, elastic.PreemptNotice, elastic.Readd} {
		if !seen[k] {
			t.Errorf("kind %v never generated", k)
		}
	}
	if !windowed {
		t.Error("no notice ever carried a positive window")
	}
}

// TestReplaySpotTrialDeterministic: the same (trial, seed) replays to
// the same verdict — the property that makes violations debuggable.
func TestReplaySpotTrialDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 77, 9001} {
		a := ReplaySpotTrial(0, seed, &Report{})
		b := ReplaySpotTrial(0, seed, &Report{})
		if (a == nil) != (b == nil) {
			t.Fatalf("seed %d: verdicts differ between replays (%v vs %v)", seed, a, b)
		}
	}
}
