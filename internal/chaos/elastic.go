package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"time"

	"aceso/internal/comm"
	"aceso/internal/config"
	"aceso/internal/elastic"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/runtime"
	"aceso/internal/tensor"
)

// DefaultElasticTrials is the elastic trial count when Options leaves
// both Trials and Duration unset. Each trial actually trains a model
// and usually runs a replan search, so the default is smaller than the
// search harness's.
const DefaultElasticTrials = 16

// RunElastic hammers the elastic training loop end to end: every trial
// draws a random model, a random valid parallelization, a random fault
// (iteration × device rank) and a random checkpoint cadence, then runs
// train → kill → Replan → reshard → resume and checks the runtime
// invariants — no panic, no deadlock (a *comm.CollectiveTimeoutError
// surfacing from the driver means a rank hung until the deadline saved
// it), a strictly monotone optimizer step counter, finite losses, and
// a final step count equal to the requested iterations.
func RunElastic(o Options) *Report {
	start := time.Now()
	rep := &Report{}
	deadline := time.Time{}
	if o.Duration > 0 {
		deadline = start.Add(o.Duration)
	}
	trials := o.Trials
	if trials <= 0 && o.Duration <= 0 {
		trials = DefaultElasticTrials
	}
	for i := 0; trials <= 0 || i < trials; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		seed := o.Seed + int64(i)*1000003
		v := ReplayElasticTrial(i, seed, rep)
		rep.Trials++
		if v != nil {
			rep.Violations = append(rep.Violations, *v)
		}
		if o.Log != nil && (i+1)%8 == 0 {
			o.Log("chaos-elastic: %d trials, %d recovered runs, %d typed errors, %d violations",
				rep.Trials, rep.Plans, rep.TypedErrs, len(rep.Violations))
		}
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// elasticShape is one randomly drawn trial topology.
type elasticShape struct {
	stages, tp, dp int
}

// drawShape picks a valid (stages × tp × dp) decomposition for a graph
// with ops operators and hidden width dim.
func drawShape(rng *rand.Rand, ops, dim int) elasticShape {
	shapes := []elasticShape{
		{1, 1, 1}, {2, 1, 1}, {1, 2, 1}, {1, 1, 2},
		{2, 2, 1}, {2, 1, 2}, {1, 2, 2}, {2, 2, 2},
	}
	for {
		s := shapes[rng.Intn(len(shapes))]
		if s.stages <= ops && dim%s.tp == 0 {
			return s
		}
	}
}

// ReplayElasticTrial runs one elastic chaos trial. Exported so a
// violation from a long run is replayable in isolation.
func ReplayElasticTrial(trial int, seed int64, rep *Report) (viol *Violation) {
	defer func() {
		if r := recover(); r != nil {
			viol = &Violation{
				Trial: trial, Seed: seed, Kind: "panic",
				Detail: fmt.Sprintf("%v\n%s", r, debug.Stack()),
			}
		}
	}()
	fail := func(kind, format string, args ...any) *Violation {
		return &Violation{Trial: trial, Seed: seed, Kind: kind,
			Detail: fmt.Sprintf(format, args...)}
	}
	rng := rand.New(rand.NewSource(seed))

	dim := 4 << rng.Intn(2)    // 4 or 8
	layers := 2 + rng.Intn(3)  // 2..4
	batch := 8 << rng.Intn(2)  // 8 or 16
	g, err := model.MLP(layers, dim, batch)
	if err != nil {
		rep.TypedErrs++
		return nil
	}
	shape := drawShape(rng, len(g.Ops), dim)
	total := shape.stages * shape.tp * shape.dp
	mb := batch / (1 << rng.Intn(2)) // batch or batch/2 microbatch rows
	cfg, err := config.Balanced(g, total, shape.stages, mb)
	if err != nil {
		rep.TypedErrs++
		return nil
	}
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j] = config.OpSetting{
				TP: shape.tp, DP: shape.dp, Dim: rng.Intn(2),
				Recompute: rng.Intn(4) == 0,
			}
			if g.Ops[cfg.Stages[i].Start+j].Kind != model.KindMatMul {
				cfg.Stages[i].Ops[j].Dim = 0
			}
		}
	}
	if err := cfg.Validate(g, total); err != nil {
		rep.TypedErrs++
		return nil
	}
	cl := hardware.DGX1V100(1).Restrict(total)

	p := runtime.InitParams(g, seed)
	p.Opt = runtime.Adam
	x := tensor.New(batch, dim)
	y := tensor.New(batch, dim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		y.Data[i] = rng.NormFloat64()
	}

	iters := 2 + rng.Intn(3) // 2..4
	var fault *runtime.FaultPlan
	if total > 1 { // killing the only device leaves nothing to replan onto
		fault = &runtime.FaultPlan{
			Rank:      rng.Intn(total),
			Iteration: rng.Intn(iters),
		}
	}

	repElastic, err := elastic.Train(context.Background(), g, cl, cfg, p, x, y, iters, fault,
		elastic.Options{
			LR:              0.05,
			CheckpointEvery: 1 + rng.Intn(2),
			CommDeadline:    20 * time.Second,
			SearchBudget:    100 * time.Millisecond,
			Seed:            seed,
		})
	if err != nil {
		var te *comm.CollectiveTimeoutError
		if errors.As(err, &te) {
			// The deadline rescued a hung World: without it this trial
			// would have deadlocked. That is a runtime bug, not an
			// acceptable rejection.
			return fail("deadlock", "collective timeout escaped recovery: %v", err)
		}
		rep.TypedErrs++
		return nil
	}

	if repElastic.FinalStep != iters {
		return fail("lost-steps", "final step %d, want %d (faults=%d reshards=%d)",
			repElastic.FinalStep, iters, repElastic.FaultsInjected, repElastic.Reshards)
	}
	if len(repElastic.Losses) != iters {
		return fail("lost-steps", "%d losses for %d iterations", len(repElastic.Losses), iters)
	}
	for i, l := range repElastic.Losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			return fail("non-finite", "loss[%d] = %v", i, l)
		}
	}
	for i := 1; i < len(repElastic.Steps); i++ {
		if repElastic.Steps[i] <= repElastic.Steps[i-1] {
			return fail("non-monotone-step", "steps %v", repElastic.Steps)
		}
	}
	if fault != nil && repElastic.FaultsInjected != 1 {
		return fail("lost-steps", "planned fault did not fire (injected=%d)", repElastic.FaultsInjected)
	}
	rep.Plans++
	return nil
}
