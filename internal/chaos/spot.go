package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"time"

	"aceso/internal/comm"
	"aceso/internal/config"
	"aceso/internal/elastic"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/runtime"
	"aceso/internal/tensor"
)

// DefaultSpotTrials is the spot trial count when Options leaves both
// Trials and Duration unset. Spot trials run the full notice-drain
// machinery (immediate checkpoints, pre-warmed replans) per event, so
// the default matches the churn harness.
const DefaultSpotTrials = 12

// RandomSpotSpec draws a Poisson-style preemption stream for a spot
// fleet: each device independently survives each iteration with
// probability 1-hazardPerIter; a reclaim is noticed (PreemptNotice with
// a window of up to maxNotice iterations) with probability noticeFrac
// and unnoticed (plain Preempt) otherwise. Reclaimed devices are
// sometimes handed back later, the way a spot market refills capacity.
// The stream never schedules the reclaim of the last surviving device
// so trials stay productive.
func RandomSpotSpec(rng *rand.Rand, devices, iters int, hazardPerIter, noticeFrac float64, maxNotice int) elastic.ChurnSpec {
	var spec elastic.ChurnSpec
	dead := map[int]bool{}
	for it := 0; it < iters; it++ {
		for d := 0; d < devices; d++ {
			if dead[d] || rng.Float64() >= hazardPerIter {
				continue
			}
			if len(dead) >= devices-1 {
				continue // never doom the last survivor
			}
			ev := elastic.ChurnEvent{Iteration: it, Device: d, Kind: elastic.Preempt}
			if rng.Float64() < noticeFrac {
				ev.Kind = elastic.PreemptNotice
				if maxNotice > 0 {
					ev.Notice = rng.Intn(maxNotice + 1)
				}
			}
			dead[d] = true
			spec.Events = append(spec.Events, ev)
			// Capacity sometimes comes back a few iterations later.
			if rng.Intn(2) == 0 {
				spec.Events = append(spec.Events, elastic.ChurnEvent{
					Iteration: it + 1 + rng.Intn(iters),
					Device:    d,
					Kind:      elastic.Readd,
				})
				delete(dead, d)
			}
		}
	}
	return spec
}

// RunSpot hammers the spot-capacity path end to end: every trial draws
// a random model and plan, a Poisson-hazard preemption stream with a
// mix of noticed and unnoticed reclaims, and a random checkpoint cost,
// then runs it through elastic.Supervise and checks the invariants —
// no panic, no deadlock, all iterations completed, a monotone step
// counter, finite losses, coherent drain accounting, a steps-lost
// budget (covered notices must not lose work; only faults, missed
// notices, and retries may), and bitwise-tolerant agreement with the
// uninterrupted reference run.
func RunSpot(o Options) *Report {
	start := time.Now()
	rep := &Report{}
	deadline := time.Time{}
	if o.Duration > 0 {
		deadline = start.Add(o.Duration)
	}
	trials := o.Trials
	if trials <= 0 && o.Duration <= 0 {
		trials = DefaultSpotTrials
	}
	for i := 0; trials <= 0 || i < trials; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		seed := o.Seed + int64(i)*1000003
		v := ReplaySpotTrial(i, seed, rep)
		rep.Trials++
		if v != nil {
			rep.Violations = append(rep.Violations, *v)
		}
		if o.Log != nil && (i+1)%4 == 0 {
			o.Log("chaos-spot: %d trials, %d survived runs, %d typed errors, %d violations",
				rep.Trials, rep.Plans, rep.TypedErrs, len(rep.Violations))
		}
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// ReplaySpotTrial runs one spot chaos trial. Exported so a violation
// from a long run is replayable in isolation.
func ReplaySpotTrial(trial int, seed int64, rep *Report) (viol *Violation) {
	defer func() {
		if r := recover(); r != nil {
			viol = &Violation{
				Trial: trial, Seed: seed, Kind: "panic",
				Detail: fmt.Sprintf("%v\n%s", r, debug.Stack()),
			}
		}
	}()
	fail := func(kind, format string, args ...any) *Violation {
		return &Violation{Trial: trial, Seed: seed, Kind: kind,
			Detail: fmt.Sprintf(format, args...)}
	}
	rng := rand.New(rand.NewSource(seed))

	dim := 4 << rng.Intn(2)   // 4 or 8
	layers := 2 + rng.Intn(3) // 2..4
	batch := 8 << rng.Intn(2) // 8 or 16
	g, err := model.MLP(layers, dim, batch)
	if err != nil {
		rep.TypedErrs++
		return nil
	}
	shape := drawShape(rng, len(g.Ops), dim)
	total := shape.stages * shape.tp * shape.dp
	mb := batch / (1 << rng.Intn(2))
	cfg, err := config.Balanced(g, total, shape.stages, mb)
	if err != nil {
		rep.TypedErrs++
		return nil
	}
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j] = config.OpSetting{TP: shape.tp, DP: shape.dp, Dim: 0}
		}
	}
	if err := cfg.Validate(g, total); err != nil {
		rep.TypedErrs++
		return nil
	}
	cl := hardware.DGX1V100(1).Restrict(total)

	x := tensor.New(batch, dim)
	y := tensor.New(batch, dim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		y.Data[i] = rng.NormFloat64()
	}

	iters := 4 + rng.Intn(5) // 4..8
	spec := RandomSpotSpec(rng, total, iters,
		0.05+0.15*rng.Float64(), // per-device per-iteration hazard
		0.3+0.5*rng.Float64(),   // fraction of reclaims with advance notice
		3)                       // windows up to 3 iterations

	// The uninterrupted reference trajectory for the divergence check.
	ref := runtime.InitParams(g, seed)
	ref.Opt = runtime.Adam
	refLosses, err := runtime.Parallel(g, cfg, ref, x, y, 0.05, iters)
	if err != nil {
		rep.TypedErrs++
		return nil
	}

	p := runtime.InitParams(g, seed)
	p.Opt = runtime.Adam
	opt := elastic.SuperviseOptions{
		Options: elastic.Options{
			LR:              0.05,
			CheckpointEvery: 1 + rng.Intn(2),
			CommDeadline:    20 * time.Second,
			SearchBudget:    100 * time.Millisecond,
			Seed:            seed,
		},
		BackoffBase:    time.Microsecond,
		BackoffCap:     4 * time.Microsecond,
		MaxCadence:     churnMaxCadence,
		CheckpointCost: rng.Intn(3), // 0..2: some notices covered, some missed
	}
	spotRep, err := elastic.Supervise(context.Background(), g, cl, cfg, p, x, y, iters, spec, opt)
	if err != nil {
		var te *comm.CollectiveTimeoutError
		if errors.As(err, &te) {
			return fail("deadlock", "collective timeout escaped the supervisor: %v", err)
		}
		var stalled *elastic.StalledError
		if errors.As(err, &stalled) {
			rep.TypedErrs++ // stream genuinely ran out of capacity
			return nil
		}
		rep.TypedErrs++
		return nil
	}

	if spotRep.FinalStep != iters {
		return fail("lost-steps", "final step %d, want %d (notices=%d drains=%d missed=%d faults=%d)",
			spotRep.FinalStep, iters, spotRep.Notices, spotRep.CleanDrains, spotRep.NoticesMissed, spotRep.FaultsDetected)
	}
	if len(spotRep.Losses) != iters {
		return fail("lost-steps", "%d losses for %d iterations", len(spotRep.Losses), iters)
	}
	for i, l := range spotRep.Losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			return fail("non-finite", "loss[%d] = %v", i, l)
		}
	}
	for i := 1; i < len(spotRep.Steps); i++ {
		if spotRep.Steps[i] <= spotRep.Steps[i-1] {
			return fail("non-monotone-step", "steps %v", spotRep.Steps)
		}
	}
	// Drain accounting must be internally coherent.
	if spotRep.CleanDrains+spotRep.NoticesMissed > spotRep.Notices {
		return fail("drain-accounting", "drains %d + missed %d > notices %d",
			spotRep.CleanDrains, spotRep.NoticesMissed, spotRep.Notices)
	}
	if len(spotRep.NoticeMisses) != spotRep.NoticesMissed {
		return fail("drain-accounting", "%d typed misses for %d missed notices",
			len(spotRep.NoticeMisses), spotRep.NoticesMissed)
	}
	// Steps-lost budget: a covered notice drains losslessly, so only
	// unnoticed faults, missed notices (which fall back to the fault
	// path), and retried timeouts may discard work — one partial segment
	// each, capped at MaxCadence iterations.
	if bound := (spotRep.FaultsDetected + spotRep.NoticesMissed + spotRep.Retries) * churnMaxCadence; spotRep.StepsLost > bound {
		return fail("steps-lost-budget", "lost %d steps > bound %d (faults=%d missed=%d retries=%d cap=%d)",
			spotRep.StepsLost, bound, spotRep.FaultsDetected, spotRep.NoticesMissed, spotRep.Retries, churnMaxCadence)
	}
	// Divergence: reclaims must cost wall time only, never fidelity.
	for i := range refLosses {
		if math.Abs(spotRep.Losses[i]-refLosses[i]) > churnTol {
			return fail("diverged", "loss[%d] %.15g vs uninterrupted %.15g", i, spotRep.Losses[i], refLosses[i])
		}
	}
	if d := ref.MaxDiff(spotRep.Params); d > churnTol {
		return fail("diverged", "final params differ by %g from uninterrupted run", d)
	}
	rep.Plans++
	return nil
}
