// Package collective models the cost of the collective-communication
// operations that parallel DNN training relies on: all-reduce for
// tensor- and data-parallel synchronization, all-gather/reduce-scatter
// for layout changes, and point-to-point transfers between pipeline
// stages.
//
// The models follow the ring-algorithm cost shapes NCCL exhibits:
//
//	allreduce(n, g)      = 2 (g-1)/g · n / bw + (g-1) · lat · 2
//	allgather(n, g)      =   (g-1)/g · n / bw + (g-1) · lat
//	reducescatter(n, g)  =   (g-1)/g · n / bw + (g-1) · lat
//	p2p(n)               =   n / bw + lat
//
// where bw and lat are picked from the cluster's intra-node or
// inter-node link depending on the placement of the group. The paper's
// profiler measures these on hardware (§3.3); here they are analytic,
// which preserves the orderings the search depends on (DESIGN.md §2).
package collective

import "aceso/internal/hardware"

// Placement says whether a communication group is contained in one
// node or spans several.
type Placement int

const (
	// IntraNode groups use the fast in-node links (NVLink).
	IntraNode Placement = iota
	// InterNode groups are bottlenecked by the network (InfiniBand).
	InterNode
)

// PlacementFor derives the placement of a contiguous device range.
func PlacementFor(c *hardware.Cluster, firstDev, size int) Placement {
	if c.GroupSpansNodes(firstDev, size) {
		return InterNode
	}
	return IntraNode
}

// linkOf picks the effective link parameters for a placement,
// including any fault-spec derates (hardware.FaultSpec): a degraded
// fabric slows every collective that crosses it, which is exactly the
// signal the search needs to shift communication off the bad links.
func linkOf(c *hardware.Cluster, p Placement) (bw, lat float64) {
	if p == InterNode {
		return c.EffInterBW(), c.EffInterLat()
	}
	return c.EffIntraBW(), c.EffIntraLat()
}

// AllReduce returns the time (seconds) for a ring all-reduce of `bytes`
// over a group of `size` devices with the given placement.
func AllReduce(c *hardware.Cluster, bytes float64, size int, p Placement) float64 {
	if size <= 1 || bytes <= 0 {
		return 0
	}
	bw, lat := linkOf(c, p)
	g := float64(size)
	return 2*(g-1)/g*bytes/bw + 2*(g-1)*lat
}

// AllGather returns the time for a ring all-gather where every rank
// ends with `bytes` total (i.e. each contributes bytes/size).
func AllGather(c *hardware.Cluster, bytes float64, size int, p Placement) float64 {
	if size <= 1 || bytes <= 0 {
		return 0
	}
	bw, lat := linkOf(c, p)
	g := float64(size)
	return (g-1)/g*bytes/bw + (g-1)*lat
}

// ReduceScatter returns the time for a ring reduce-scatter of `bytes`.
func ReduceScatter(c *hardware.Cluster, bytes float64, size int, p Placement) float64 {
	// Same ring cost shape as all-gather.
	return AllGather(c, bytes, size, p)
}

// P2P returns the time to move `bytes` between two devices with the
// given placement (pipeline-stage boundary send/recv).
func P2P(c *hardware.Cluster, bytes float64, p Placement) float64 {
	if bytes <= 0 {
		return 0
	}
	bw, lat := linkOf(c, p)
	return bytes/bw + lat
}
