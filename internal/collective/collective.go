// Package collective models the cost of the collective-communication
// operations that parallel DNN training relies on: all-reduce for
// tensor- and data-parallel synchronization, all-gather/reduce-scatter
// for layout changes, and point-to-point transfers between pipeline
// stages.
//
// The models follow the ring-algorithm cost shapes NCCL exhibits:
//
//	allreduce(n, g)      = 2 (g-1)/g · n / bw + (g-1) · lat · 2
//	allgather(n, g)      =   (g-1)/g · n / bw + (g-1) · lat
//	reducescatter(n, g)  =   (g-1)/g · n / bw + (g-1) · lat
//	p2p(n)               =   n / bw + lat
//
// where bw and lat are picked from the cluster's intra-node or
// inter-node link depending on the placement of the group. The paper's
// profiler measures these on hardware (§3.3); here they are analytic,
// which preserves the orderings the search depends on (DESIGN.md §2).
package collective

import "aceso/internal/hardware"

// Placement says whether a communication group is contained in one
// node or spans several.
type Placement int

const (
	// IntraNode groups use the fast in-node links (NVLink).
	IntraNode Placement = iota
	// InterNode groups are bottlenecked by the network (InfiniBand).
	InterNode
)

// PlacementFor derives the placement of a contiguous device range.
func PlacementFor(c *hardware.Cluster, firstDev, size int) Placement {
	if c.GroupSpansNodes(firstDev, size) {
		return InterNode
	}
	return IntraNode
}

// linkOf picks the effective link parameters for a placement,
// including any fault-spec derates (hardware.FaultSpec): a degraded
// fabric slows every collective that crosses it, which is exactly the
// signal the search needs to shift communication off the bad links.
func linkOf(c *hardware.Cluster, p Placement) (bw, lat float64) {
	if p == InterNode {
		return c.EffInterBW(), c.EffInterLat()
	}
	return c.EffIntraBW(), c.EffIntraLat()
}

// GroupLink prices the link a contiguous device range communicates
// over: on a homogeneous cluster it is linkOf; on a heterogeneous one
// a ring is bottlenecked by its slowest member, so the bandwidth is
// the minimum and the latency the maximum over the group's classes,
// composed with the cluster-wide fault-spec link derates the same way
// EffIntraBW composes them with the scalars.
func GroupLink(c *hardware.Cluster, first, size int, p Placement) (bw, lat float64) {
	if len(c.Classes) == 0 {
		return linkOf(c, p)
	}
	if size < 1 {
		size = 1
	}
	ibwS, xbwS, ilatS, xlatS := c.LinkFaultScales()
	if p == InterNode {
		bw, lat = c.DeviceInterBW(first), c.DeviceInterLat(first)
		for d := first + 1; d < first+size; d++ {
			if v := c.DeviceInterBW(d); v < bw {
				bw = v
			}
			if v := c.DeviceInterLat(d); v > lat {
				lat = v
			}
		}
		return bw * xbwS, lat * xlatS
	}
	bw, lat = c.DeviceIntraBW(first), c.DeviceIntraLat(first)
	for d := first + 1; d < first+size; d++ {
		if v := c.DeviceIntraBW(d); v < bw {
			bw = v
		}
		if v := c.DeviceIntraLat(d); v > lat {
			lat = v
		}
	}
	return bw * ibwS, lat * ilatS
}

// AllReduce returns the time (seconds) for a ring all-reduce of `bytes`
// over a group of `size` devices with the given placement, priced at
// the cluster-wide link.
func AllReduce(c *hardware.Cluster, bytes float64, size int, p Placement) float64 {
	bw, lat := linkOf(c, p)
	return allReduceOn(bw, lat, bytes, size)
}

// AllReduceAt is AllReduce priced at the link of the device range
// starting at first — the slowest class in the group on a mixed fleet.
func AllReduceAt(c *hardware.Cluster, bytes float64, first, size int, p Placement) float64 {
	bw, lat := GroupLink(c, first, size, p)
	return allReduceOn(bw, lat, bytes, size)
}

func allReduceOn(bw, lat, bytes float64, size int) float64 {
	if size <= 1 || bytes <= 0 {
		return 0
	}
	g := float64(size)
	return 2*(g-1)/g*bytes/bw + 2*(g-1)*lat
}

// AllGather returns the time for a ring all-gather where every rank
// ends with `bytes` total (i.e. each contributes bytes/size).
func AllGather(c *hardware.Cluster, bytes float64, size int, p Placement) float64 {
	bw, lat := linkOf(c, p)
	return allGatherOn(bw, lat, bytes, size)
}

// AllGatherAt is AllGather priced at the link of the device range
// starting at first.
func AllGatherAt(c *hardware.Cluster, bytes float64, first, size int, p Placement) float64 {
	bw, lat := GroupLink(c, first, size, p)
	return allGatherOn(bw, lat, bytes, size)
}

func allGatherOn(bw, lat, bytes float64, size int) float64 {
	if size <= 1 || bytes <= 0 {
		return 0
	}
	g := float64(size)
	return (g-1)/g*bytes/bw + (g-1)*lat
}

// ReduceScatter returns the time for a ring reduce-scatter of `bytes`.
func ReduceScatter(c *hardware.Cluster, bytes float64, size int, p Placement) float64 {
	// Same ring cost shape as all-gather.
	return AllGather(c, bytes, size, p)
}

// ReduceScatterAt is ReduceScatter priced at the link of the device
// range starting at first.
func ReduceScatterAt(c *hardware.Cluster, bytes float64, first, size int, p Placement) float64 {
	return AllGatherAt(c, bytes, first, size, p)
}

// P2P returns the time to move `bytes` between two devices with the
// given placement (pipeline-stage boundary send/recv).
func P2P(c *hardware.Cluster, bytes float64, p Placement) float64 {
	if bytes <= 0 {
		return 0
	}
	bw, lat := linkOf(c, p)
	return bytes/bw + lat
}

// P2PAt is P2P priced at the link of the two-device range starting at
// first (the sender/receiver pair spanning a stage boundary).
func P2PAt(c *hardware.Cluster, bytes float64, first int, p Placement) float64 {
	if bytes <= 0 {
		return 0
	}
	bw, lat := GroupLink(c, first, 2, p)
	return bytes/bw + lat
}
