package collective

import (
	"testing"
	"testing/quick"

	"aceso/internal/hardware"
)

var cl = hardware.DGX1V100(4)

func TestAllReduceZeroForTrivialGroups(t *testing.T) {
	if got := AllReduce(&cl, 1e6, 1, IntraNode); got != 0 {
		t.Errorf("AllReduce(group=1) = %v, want 0", got)
	}
	if got := AllReduce(&cl, 0, 8, IntraNode); got != 0 {
		t.Errorf("AllReduce(bytes=0) = %v, want 0", got)
	}
}

func TestInterNodeSlowerThanIntraNode(t *testing.T) {
	const bytes = 256 << 20
	for _, g := range []int{2, 4, 8, 16} {
		intra := AllReduce(&cl, bytes, g, IntraNode)
		inter := AllReduce(&cl, bytes, g, InterNode)
		if inter <= intra {
			t.Errorf("group %d: inter (%v) should exceed intra (%v)", g, inter, intra)
		}
	}
}

func TestAllReduceRingFormula(t *testing.T) {
	// For 2 ranks intra-node: 2·(1/2)·bytes/bw + 2·lat.
	const bytes = 1e9
	want := bytes/cl.IntraBW + 2*cl.IntraLat
	got := AllReduce(&cl, bytes, 2, IntraNode)
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("AllReduce = %v, want %v", got, want)
	}
}

func TestAllReduceCostsTwiceAllGather(t *testing.T) {
	// Ring all-reduce = reduce-scatter + all-gather.
	const bytes = 64 << 20
	for _, g := range []int{2, 4, 8} {
		ar := AllReduce(&cl, bytes, g, IntraNode)
		ag := AllGather(&cl, bytes, g, IntraNode)
		rs := ReduceScatter(&cl, bytes, g, IntraNode)
		if diff := ar - (ag + rs); diff > 1e-12 || diff < -1e-12 {
			t.Errorf("group %d: allreduce (%v) != allgather+reducescatter (%v)", g, ar, ag+rs)
		}
	}
}

func TestP2P(t *testing.T) {
	const bytes = 1 << 20
	wantIntra := bytes/cl.IntraBW + cl.IntraLat
	if got := P2P(&cl, bytes, IntraNode); got != wantIntra {
		t.Errorf("P2P intra = %v, want %v", got, wantIntra)
	}
	if P2P(&cl, bytes, InterNode) <= P2P(&cl, bytes, IntraNode) {
		t.Error("inter-node P2P should be slower than intra-node")
	}
	if P2P(&cl, 0, IntraNode) != 0 {
		t.Error("P2P of zero bytes should be free")
	}
}

func TestPlacementFor(t *testing.T) {
	if p := PlacementFor(&cl, 0, 8); p != IntraNode {
		t.Errorf("PlacementFor(0,8) = %v, want IntraNode", p)
	}
	if p := PlacementFor(&cl, 4, 8); p != InterNode {
		t.Errorf("PlacementFor(4,8) = %v, want InterNode", p)
	}
}

// Property: collective times are non-negative and monotone in bytes.
func TestMonotoneInBytes(t *testing.T) {
	f := func(kb uint16, extra uint16, g uint8) bool {
		group := int(g%31) + 2
		b1 := float64(kb) * 1024
		b2 := b1 + float64(extra)*1024
		for _, p := range []Placement{IntraNode, InterNode} {
			if AllReduce(&cl, b1, group, p) > AllReduce(&cl, b2, group, p) {
				return false
			}
			if AllGather(&cl, b1, group, p) > AllGather(&cl, b2, group, p) {
				return false
			}
			if P2P(&cl, b1, p) > P2P(&cl, b2, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: per-rank all-reduce cost grows with group size (ring has
// more hops and a worse (g-1)/g factor plus latency terms).
func TestAllReduceMonotoneInGroup(t *testing.T) {
	const bytes = 128 << 20
	prev := 0.0
	for _, g := range []int{2, 4, 8, 16, 32} {
		cur := AllReduce(&cl, bytes, g, InterNode)
		if cur <= prev {
			t.Errorf("AllReduce group %d (%v) should exceed smaller group (%v)", g, cur, prev)
		}
		prev = cur
	}
}
