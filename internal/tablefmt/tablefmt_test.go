package tablefmt

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.Add("short", 1)
	tb.Add("a-much-longer-name", 2.5)
	var buf bytes.Buffer
	tb.Render(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4 (header, separator, 2 rows)", len(lines))
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
	// Columns align: "value" cells start at the same offset.
	off := strings.Index(lines[2], "1")
	if off < 0 || !strings.HasPrefix(lines[3][off-len("a-much-longer-name")+len("short"):], "") {
		t.Logf("rows: %q / %q", lines[2], lines[3])
	}
	if !strings.Contains(lines[3], "2.50") {
		t.Errorf("float not formatted: %q", lines[3])
	}
}

func TestBars(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, "demo", []string{"a", "bb"}, []float64{1, 2}, "s")
	out := buf.String()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	// The larger value gets the longer bar.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[2], "█") <= strings.Count(lines[1], "█") {
		t.Error("bars not proportional")
	}
	// Zero-max edge case must not divide by zero.
	buf.Reset()
	Bars(&buf, "zeros", []string{"a"}, []float64{0}, "")
	if !strings.Contains(buf.String(), "0") {
		t.Error("zero bars broken")
	}
}

func TestSeries(t *testing.T) {
	var buf bytes.Buffer
	Series(&buf, "curve", "t", "y", []string{"1", "2"}, []float64{3.5, 2.25})
	out := buf.String()
	for _, want := range []string{"curve", "t", "y", "3.50", "2.25"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
