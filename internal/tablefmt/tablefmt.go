// Package tablefmt renders the experiment results as plain-text tables
// and bar charts, so every figure and table of the paper regenerates
// on a terminal without plotting dependencies.
package tablefmt

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, sb.String())
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// Bars renders a labeled horizontal bar chart scaled to maxWidth
// characters; values must be non-negative.
func Bars(w io.Writer, title string, labels []string, values []float64, unit string) {
	fmt.Fprintln(w, title)
	max := 0.0
	width := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > width {
			width = len(labels[i])
		}
	}
	const maxWidth = 46
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * maxWidth)
		}
		fmt.Fprintf(w, "  %-*s %s %.3g%s\n", width, labels[i], strings.Repeat("█", n), v, unit)
	}
}

// Series renders an (x, y) series as aligned columns — the text stand-
// in for the paper's line plots (convergence curves, accuracy plots).
func Series(w io.Writer, title, xName, yName string, xs []string, ys []float64) {
	fmt.Fprintln(w, title)
	t := &Table{Header: []string{xName, yName}}
	for i := range xs {
		t.Add(xs[i], ys[i])
	}
	t.Render(w)
}
