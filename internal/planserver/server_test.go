package planserver

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// tinyRequest is a deterministic, fast plan request: iteration-bounded
// search over a small model and a handful of devices.
func tinyRequest() PlanRequest {
	return PlanRequest{
		Model:   ModelSpec{Family: "tinygpt", Layers: 2, Seq: 64, Hidden: 128, Heads: 4, Batch: 8},
		Cluster: ClusterSpec{Nodes: 1, Restrict: 4},
		Options: SearchOptions{
			BudgetMS:      10_000,
			MaxIterations: 2,
			StageCounts:   []int{1, 2},
			Seed:          7,
		},
	}
}

func postPlan(t *testing.T, url string, pr PlanRequest) (*http.Response, PlanResponse) {
	t.Helper()
	body, err := json.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out PlanResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp, out
}

func TestPlanMissThenHitBitIdentical(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp1, out1 := postPlan(t, ts.URL, tinyRequest())
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", resp1.StatusCode)
	}
	if out1.Cache != "miss" {
		t.Fatalf("first request cache = %q, want miss", out1.Cache)
	}
	var plan Plan
	if err := json.Unmarshal(out1.Plan, &plan); err != nil {
		t.Fatalf("plan decode: %v", err)
	}
	if plan.Config == nil || len(plan.Config.Stages) == 0 || plan.IterTimeSeconds <= 0 {
		t.Fatalf("implausible plan: %+v", plan)
	}
	if len(plan.Stages) != len(plan.Config.Stages) {
		t.Fatalf("breakdown has %d stages, config %d", len(plan.Stages), len(plan.Config.Stages))
	}

	resp2, out2 := postPlan(t, ts.URL, tinyRequest())
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: status %d", resp2.StatusCode)
	}
	if out2.Cache != "hit" {
		t.Fatalf("second request cache = %q, want hit", out2.Cache)
	}
	if !bytes.Equal(out1.Plan, out2.Plan) {
		t.Fatal("cached plan bytes differ from the fresh search")
	}
	if out1.Key != out2.Key {
		t.Fatalf("keys differ: %s vs %s", out1.Key, out2.Key)
	}

	// NoCache forces a fresh search for the same key; the deterministic
	// search must reproduce the plan bit-identically.
	fresh := tinyRequest()
	fresh.NoCache = true
	resp3, out3 := postPlan(t, ts.URL, fresh)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("nocache request: status %d", resp3.StatusCode)
	}
	if out3.Cache != "miss" {
		t.Fatalf("nocache request cache = %q, want miss", out3.Cache)
	}
	if !bytes.Equal(out1.Plan, out3.Plan) {
		t.Fatal("fresh search not bit-identical to cached plan for the same key")
	}
}

func TestWarmNearMissOnDegradedCluster(t *testing.T) {
	s, ts := testServer(t, Config{})
	resp, out := postPlan(t, ts.URL, tinyRequest())
	if resp.StatusCode != http.StatusOK || out.Cache != "miss" {
		t.Fatalf("seed request: status %d cache %q", resp.StatusCode, out.Cache)
	}

	// Same model and options, one dead device: exact key differs, warm
	// donor applies.
	degraded := tinyRequest()
	degraded.Cluster.Faults = &FaultsSpec{Dead: []int{3}}
	resp2, out2 := postPlan(t, ts.URL, degraded)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("degraded request: status %d", resp2.StatusCode)
	}
	if out2.Cache != "warm" {
		t.Fatalf("degraded request cache = %q, want warm", out2.Cache)
	}
	if out2.Key == out.Key {
		t.Fatal("degraded cluster produced the same cache key")
	}
	var plan Plan
	if err := json.Unmarshal(out2.Plan, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.Devices >= 4 {
		t.Fatalf("degraded plan spans %d devices, want < 4", plan.Devices)
	}
	if st := s.Cache().Stats(); st.WarmHits == 0 {
		t.Fatalf("cache stats show no warm hit: %+v", st)
	}

	// Repeat of the degraded request is now an exact hit.
	resp3, out3 := postPlan(t, ts.URL, degraded)
	if resp3.StatusCode != http.StatusOK || out3.Cache != "hit" {
		t.Fatalf("degraded repeat: status %d cache %q", resp3.StatusCode, out3.Cache)
	}
	if !bytes.Equal(out2.Plan, out3.Plan) {
		t.Fatal("degraded cached plan differs")
	}
}

func TestBackpressureSheds429(t *testing.T) {
	_, ts := testServer(t, Config{Concurrency: 1, Queue: 1})

	slow := tinyRequest()
	slow.Model = ModelSpec{Family: "gpt3", Size: "350M"}
	slow.Options = SearchOptions{BudgetMS: 2000, Seed: 1}
	slow.NoCache = true

	const n = 6
	type shedResult struct {
		code       int
		retryAfter string
	}
	codes := make(chan shedResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(slow)
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
			if err != nil {
				codes <- shedResult{code: -1}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- shedResult{code: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
		}()
		time.Sleep(30 * time.Millisecond) // let earlier requests claim slot+queue
	}
	wg.Wait()
	close(codes)
	var ok, shed, other int
	for c := range codes {
		switch c.code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if c.retryAfter == "" {
				t.Error("429 response missing Retry-After header")
			}
		default:
			other++
		}
	}
	if other != 0 {
		t.Fatalf("unexpected status codes: ok=%d shed=%d other=%d", ok, shed, other)
	}
	if shed == 0 {
		t.Fatalf("no request shed under overload (ok=%d)", ok)
	}
	if ok == 0 {
		t.Fatal("every request shed; admission never succeeded")
	}
}

func TestGracefulDrainDropsNothing(t *testing.T) {
	s, ts := testServer(t, Config{Concurrency: 2, Queue: 32})

	const n = 8
	type outcome struct {
		code int
		err  error
	}
	results := make(chan outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		pr := tinyRequest()
		pr.Options.Seed = int64(100 + i) // distinct keys: all real searches
		pr.NoCache = true
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(pr)
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- outcome{err: err}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- outcome{code: resp.StatusCode}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let some requests get in flight
	s.Drain()
	wg.Wait()
	close(results)

	var served, rejected int
	for r := range results {
		if r.err != nil {
			t.Fatalf("dropped request (transport error): %v", r.err)
		}
		switch r.code {
		case http.StatusOK:
			served++
		case http.StatusServiceUnavailable:
			rejected++
		default:
			t.Fatalf("unexpected status %d during drain", r.code)
		}
	}
	if served+rejected != n {
		t.Fatalf("served %d + rejected %d != %d", served, rejected, n)
	}

	// Post-drain: new requests are rejected with a retry hint, health
	// reports draining with the same hint.
	resp, _ := postPlan(t, ts.URL, tinyRequest())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain plan request: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("post-drain 503 missing Retry-After header")
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz: status %d, want 503", hresp.StatusCode)
	}
	if hresp.Header.Get("Retry-After") == "" {
		t.Error("post-drain healthz 503 missing Retry-After header")
	}
}

func TestSSEStreamsIterationsAndResult(t *testing.T) {
	_, ts := testServer(t, Config{})
	pr := tinyRequest()
	pr.Stream = true
	body, _ := json.Marshal(pr)
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if !strings.Contains(text, "event: iteration\n") {
		t.Fatalf("no iteration frames in stream:\n%s", text)
	}
	i := strings.LastIndex(text, "event: result\ndata: ")
	if i < 0 {
		t.Fatalf("no result frame in stream:\n%s", text)
	}
	line := text[i+len("event: result\ndata: "):]
	line = strings.TrimSpace(line)
	var out PlanResponse
	if err := json.Unmarshal([]byte(line), &out); err != nil {
		t.Fatalf("result frame decode: %v", err)
	}
	var plan Plan
	if err := json.Unmarshal(out.Plan, &plan); err != nil || plan.Config == nil {
		t.Fatalf("streamed plan invalid: %v", err)
	}
}

func TestMetricsAndStatsEndpoints(t *testing.T) {
	_, ts := testServer(t, Config{})
	postPlan(t, ts.URL, tinyRequest())
	postPlan(t, ts.URL, tinyRequest())

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE aceso_serve_requests_total counter",
		`aceso_serve_requests_total{code="200"} 2`,
		`aceso_serve_cache_hits_total{kind="exact"} 1`,
		"# TYPE aceso_serve_cache_entries gauge",
		"# TYPE aceso_serve_request_seconds_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
		Entries int `json:"entries"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits != 1 || stats.Entries != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []PlanRequest{
		{Model: ModelSpec{Family: "nope"}, Cluster: ClusterSpec{Nodes: 1}},
		{Model: ModelSpec{Family: "mlp", Layers: 2, Dim: 64, Batch: 8}, Cluster: ClusterSpec{Nodes: 0}},
		{Model: ModelSpec{Family: "mlp", Layers: 2, Dim: 64, Batch: 8}, Cluster: ClusterSpec{Nodes: 1, Faults: &FaultsSpec{Dead: []int{99}}}},
	}
	for i, pr := range cases {
		resp, _ := postPlan(t, ts.URL, pr)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan: status %d, want 405", resp.StatusCode)
	}
}

func TestOptionsNormalizationSharesCacheKey(t *testing.T) {
	s, ts := testServer(t, Config{DefaultBudget: 10 * time.Second})
	a := tinyRequest()
	a.Options.BudgetMS = 10_000
	b := tinyRequest()
	b.Options.BudgetMS = 0 // server default, same normalized budget
	_, outA := postPlan(t, ts.URL, a)
	_, outB := postPlan(t, ts.URL, b)
	if outA.Key != outB.Key {
		t.Fatalf("normalized options hash differs: %s vs %s", outA.Key, outB.Key)
	}
	if outB.Cache != "hit" {
		t.Fatalf("default-budget request cache = %q, want hit", outB.Cache)
	}
	if s.Cache().Len() != 1 {
		t.Fatalf("cache has %d entries, want 1", s.Cache().Len())
	}
}
