// Package planserver implements the HTTP+JSON planning service behind
// cmd/acesod: wire types for plan requests, content-addressed caching
// via internal/plancache, admission control with bounded queuing and
// backpressure, SSE progress streaming, and graceful drain. The
// daemon turns the batch search into the on-demand planner ROADMAP
// item 1 calls for — cheap re-planning only pays off operationally if
// supervisors can query it in seconds (see DESIGN.md §5i).
package planserver

import (
	"encoding/json"
	"fmt"
	"time"

	"aceso/internal/config"
	"aceso/internal/core"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/plancache"
)

// ModelSpec names a model-zoo builder plus its parameters. Exactly the
// fields the named family reads are consulted; the rest are ignored.
type ModelSpec struct {
	// Family selects the builder: gpt3 | t5 | wideresnet | llama |
	// deep | tinygpt | mlp | mlpnorm | uniform.
	Family string `json:"family"`
	// Size is the named scale for gpt3/t5/wideresnet/llama
	// (e.g. "1.3B", "large").
	Size string `json:"size,omitempty"`

	// Builder parameters for tinygpt/mlp/mlpnorm/deep/uniform.
	Layers int `json:"layers,omitempty"`
	Dim    int `json:"dim,omitempty"`
	Hidden int `json:"hidden,omitempty"`
	Heads  int `json:"heads,omitempty"`
	Seq    int `json:"seq,omitempty"`
	Batch  int `json:"batch,omitempty"`

	// Uniform synthetic-graph parameters (per-op costs).
	Ops    int     `json:"ops,omitempty"`
	FLOPs  float64 `json:"flops,omitempty"`
	Params float64 `json:"params,omitempty"`
	Act    float64 `json:"act,omitempty"`
}

// Build constructs the model graph the spec describes.
func (m *ModelSpec) Build() (*model.Graph, error) {
	switch m.Family {
	case "gpt3":
		return model.GPT3(m.Size)
	case "t5":
		return model.T5(m.Size)
	case "wideresnet":
		return model.WideResNet(m.Size)
	case "llama":
		return model.Llama(m.Size)
	case "deep":
		return model.DeepTransformer(m.Layers)
	case "tinygpt":
		return model.TinyGPT(m.Layers, m.Seq, m.Hidden, m.Heads, m.Batch)
	case "mlp":
		return model.MLP(m.Layers, m.Dim, m.Batch)
	case "mlpnorm":
		return model.MLPWithNorm(m.Layers, m.Dim, m.Batch)
	case "uniform":
		if m.Ops <= 0 || m.Batch <= 0 {
			return nil, fmt.Errorf("planserver: uniform model needs ops > 0 and batch > 0")
		}
		g := model.Uniform(m.Ops, m.FLOPs, m.Params, m.Act, m.Batch)
		if err := g.Validate(); err != nil {
			return nil, err
		}
		return g, nil
	case "":
		return nil, fmt.Errorf("planserver: model.family is required")
	default:
		return nil, fmt.Errorf("planserver: unknown model family %q", m.Family)
	}
}

// DerateSpec derates one device (rank in the healthy numbering).
// Scales of 0 mean "unchanged" on the wire and normalize to 1.
type DerateSpec struct {
	Device     int     `json:"device"`
	FLOPSScale float64 `json:"flops_scale,omitempty"`
	MemScale   float64 `json:"mem_scale,omitempty"`
}

// FaultsSpec is the wire form of hardware.FaultSpec.
type FaultsSpec struct {
	Dead    []int        `json:"dead,omitempty"`
	Derates []DerateSpec `json:"derates,omitempty"`

	IntraBWScale  float64 `json:"intra_bw_scale,omitempty"`
	InterBWScale  float64 `json:"inter_bw_scale,omitempty"`
	IntraLatScale float64 `json:"intra_lat_scale,omitempty"`
	InterLatScale float64 `json:"inter_lat_scale,omitempty"`
}

// DeviceClassSpec is the wire form of hardware.DeviceClass. Link
// fields of 0 inherit the cluster scalar.
type DeviceClassSpec struct {
	Name        string  `json:"name"`
	FP16FLOPS   float64 `json:"fp16_flops"`
	FP32FLOPS   float64 `json:"fp32_flops"`
	MaxUtil     float64 `json:"max_util"`
	MemoryBytes float64 `json:"memory_bytes"`
	IntraBW     float64 `json:"intra_bw,omitempty"`
	InterBW     float64 `json:"inter_bw,omitempty"`
	IntraLat    float64 `json:"intra_lat,omitempty"`
	InterLat    float64 `json:"inter_lat,omitempty"`
	// Capacity is "reserved" (the default) or "spot". Spot classes may
	// carry a preemption hazard (reclaims/hour/device) and an advance
	// notice window; a cluster with any hazardous spot class is planned
	// risk-aware (expected iteration time under the rework model) and
	// the plan carries a recommended checkpoint cadence.
	Capacity      string  `json:"capacity,omitempty"`
	HazardPerHour float64 `json:"hazard_per_hour,omitempty"`
	NoticeSeconds float64 `json:"notice_seconds,omitempty"`
}

// ClusterSpec describes the target cluster. Faults, when present,
// route the request through core.Replan against the degraded cluster.
type ClusterSpec struct {
	// Preset names the parametric cluster: "dgx1v100" (the default) or
	// "a100v100" (a mixed fleet — A100 nodes first; node_classes may
	// refine the per-node split, otherwise the first half is A100).
	Preset string `json:"preset,omitempty"`
	Nodes  int    `json:"nodes"`
	// Restrict keeps only the first N devices (0 = all).
	Restrict int         `json:"restrict,omitempty"`
	Faults   *FaultsSpec `json:"faults,omitempty"`

	// Classes/NodeClasses describe a custom heterogeneous fleet on top
	// of the preset's scalar envelope: node_classes[i] indexes into
	// classes and must cover every node.
	Classes     []DeviceClassSpec `json:"classes,omitempty"`
	NodeClasses []int             `json:"node_classes,omitempty"`
}

// Build returns the healthy cluster plus the fault spec to apply (nil
// when the request targets healthy hardware). The faults are returned
// unapplied because the Replan path wants (healthy cluster, spec).
func (c *ClusterSpec) Build() (hardware.Cluster, *hardware.FaultSpec, error) {
	if c.Nodes <= 0 {
		return hardware.Cluster{}, nil, fmt.Errorf("planserver: cluster.nodes must be > 0")
	}
	var cl hardware.Cluster
	switch c.Preset {
	case "", "dgx1v100":
		cl = hardware.DGX1V100(c.Nodes)
	case "a100v100":
		nodeClass := c.NodeClasses
		if len(nodeClass) == 0 {
			nodeClass = make([]int, c.Nodes)
			for i := (c.Nodes + 1) / 2; i < c.Nodes; i++ {
				nodeClass[i] = 1
			}
		} else if len(nodeClass) != c.Nodes {
			return hardware.Cluster{}, nil, fmt.Errorf(
				"planserver: cluster.node_classes has %d entries for %d nodes", len(nodeClass), c.Nodes)
		}
		cl = hardware.Mixed(8, nodeClass, hardware.A100Class(), hardware.V100Class())
	default:
		return hardware.Cluster{}, nil, fmt.Errorf("planserver: unknown cluster preset %q", c.Preset)
	}
	if len(c.Classes) > 0 {
		if c.Preset == "a100v100" {
			return hardware.Cluster{}, nil, fmt.Errorf(
				"planserver: cluster.classes conflicts with the a100v100 preset's built-in classes")
		}
		if len(c.NodeClasses) != c.Nodes {
			return hardware.Cluster{}, nil, fmt.Errorf(
				"planserver: cluster.node_classes has %d entries for %d nodes", len(c.NodeClasses), c.Nodes)
		}
		classes := make([]hardware.DeviceClass, len(c.Classes))
		for i, d := range c.Classes {
			classes[i] = hardware.DeviceClass{
				Name:        d.Name,
				FP16FLOPS:   d.FP16FLOPS,
				FP32FLOPS:   d.FP32FLOPS,
				MaxUtil:     d.MaxUtil,
				MemoryBytes: d.MemoryBytes,
				IntraBW:     d.IntraBW,
				InterBW:     d.InterBW,
				IntraLat:    d.IntraLat,
				InterLat:    d.InterLat,
			}
			switch d.Capacity {
			case "", "reserved":
				classes[i].Capacity = hardware.Reserved
			case "spot":
				classes[i].Capacity = hardware.Spot
				classes[i].HazardRate = d.HazardPerHour
				classes[i].NoticeSeconds = d.NoticeSeconds
			default:
				return hardware.Cluster{}, nil, fmt.Errorf(
					"planserver: cluster.classes[%d].capacity %q (want \"reserved\" or \"spot\")", i, d.Capacity)
			}
		}
		// Mixed recomputes the scalar envelope from the classes, which
		// keeps the envelope invariant Validate enforces.
		cl = hardware.Mixed(cl.DevicesPerNode, c.NodeClasses, classes...)
	}
	if c.Restrict > 0 {
		cl = cl.Restrict(c.Restrict)
	}
	if err := cl.Validate(); err != nil {
		return hardware.Cluster{}, nil, err
	}
	if c.Faults == nil {
		return cl, nil, nil
	}
	spec := hardware.FaultSpec{
		IntraBWScale:  c.Faults.IntraBWScale,
		InterBWScale:  c.Faults.InterBWScale,
		IntraLatScale: c.Faults.IntraLatScale,
		InterLatScale: c.Faults.InterLatScale,
	}
	for _, d := range c.Faults.Dead {
		spec.Devices = append(spec.Devices, hardware.DeviceFault{Device: d, Dead: true})
	}
	for _, d := range c.Faults.Derates {
		f := hardware.DeviceFault{Device: d.Device, FLOPSScale: d.FLOPSScale, MemScale: d.MemScale}
		if f.FLOPSScale == 0 {
			f.FLOPSScale = 1
		}
		if f.MemScale == 0 {
			f.MemScale = 1
		}
		spec.Devices = append(spec.Devices, f)
	}
	if err := spec.Validate(cl); err != nil {
		return hardware.Cluster{}, nil, err
	}
	return cl, &spec, nil
}

// SearchOptions is the wire form of core.Options. Zero values take the
// server's defaults; the normalized (defaults-applied) form is what
// the options hash covers, so spelling a default explicitly hits the
// same cache entry as omitting it.
type SearchOptions struct {
	BudgetMS           int   `json:"budget_ms,omitempty"`
	MaxIterations      int   `json:"max_iterations,omitempty"`
	MaxHops            int   `json:"max_hops,omitempty"`
	BranchFactor       int   `json:"branch_factor,omitempty"`
	TopK               int   `json:"top_k,omitempty"`
	StageCounts        []int `json:"stage_counts,omitempty"`
	InitMicroBatch     int   `json:"init_micro_batch,omitempty"`
	Seed               int64 `json:"seed,omitempty"`
	DisableHeuristic2  bool  `json:"disable_heuristic2,omitempty"`
	DisableFineTune    bool  `json:"disable_finetune,omitempty"`
	ExtendedPrimitives bool  `json:"extended_primitives,omitempty"`
}

// normalize applies the server's budget policy: default when unset,
// clamped to the server maximum.
func (o SearchOptions) normalize(defaultBudget, maxBudget time.Duration) SearchOptions {
	b := time.Duration(o.BudgetMS) * time.Millisecond
	if b <= 0 {
		b = defaultBudget
	}
	if maxBudget > 0 && b > maxBudget {
		b = maxBudget
	}
	o.BudgetMS = int(b / time.Millisecond)
	return o
}

// core converts the normalized options into core.Options.
func (o SearchOptions) core() core.Options {
	return core.Options{
		TimeBudget:         time.Duration(o.BudgetMS) * time.Millisecond,
		MaxIterations:      o.MaxIterations,
		MaxHops:            o.MaxHops,
		BranchFactor:       o.BranchFactor,
		TopK:               o.TopK,
		StageCounts:        o.StageCounts,
		InitMicroBatch:     o.InitMicroBatch,
		Seed:               o.Seed,
		DisableHeuristic2:  o.DisableHeuristic2,
		DisableFineTune:    o.DisableFineTune,
		ExtendedPrimitives: o.ExtendedPrimitives,
	}
}

// hash folds the normalized options into the cache key's options
// component. Field order is the schema.
func (o SearchOptions) hash() uint64 {
	h := plancache.NewHasher()
	h.Int(int64(o.BudgetMS))
	h.Int(int64(o.MaxIterations))
	h.Int(int64(o.MaxHops))
	h.Int(int64(o.BranchFactor))
	h.Int(int64(o.TopK))
	h.Int(int64(len(o.StageCounts)))
	for _, p := range o.StageCounts {
		h.Int(int64(p))
	}
	h.Int(int64(o.InitMicroBatch))
	h.Int(o.Seed)
	h.Bool(o.DisableHeuristic2)
	h.Bool(o.DisableFineTune)
	h.Bool(o.ExtendedPrimitives)
	return h.Sum()
}

// PlanRequest is the body of POST /v1/plan.
type PlanRequest struct {
	Model   ModelSpec     `json:"model"`
	Cluster ClusterSpec   `json:"cluster"`
	Options SearchOptions `json:"options"`
	// DeadlineMS bounds the whole request wall time (0 = budget + slack).
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// Stream switches the response to SSE progress events.
	Stream bool `json:"stream,omitempty"`
	// NoCache skips the cache lookup (the store still happens), for
	// callers that want a fresh search — and for cache-correctness
	// audits comparing fresh bytes against a hit.
	NoCache bool `json:"no_cache,omitempty"`
}

// StagePlan is the per-stage slice of the estimate breakdown.
type StagePlan struct {
	Start   int `json:"start"`
	End     int `json:"end"`
	Devices int `json:"devices"`

	StageTimeSeconds float64 `json:"stage_time_seconds"`
	FwdSeconds       float64 `json:"fwd_seconds"`
	BwdSeconds       float64 `json:"bwd_seconds"`
	TPCommSeconds    float64 `json:"tp_comm_seconds"`
	P2PSeconds       float64 `json:"p2p_seconds"`
	RecompSeconds    float64 `json:"recomp_seconds"`
	ReshardSeconds   float64 `json:"reshard_seconds"`
	DPSyncSeconds    float64 `json:"dp_sync_seconds"`
	PeakMemBytes     float64 `json:"peak_mem_bytes"`
	CapMemBytes      float64 `json:"cap_mem_bytes"`
}

// Plan is the deterministic payload of a planning result — everything
// in it is a pure function of (graph, cluster, options) for a
// deterministic search, so it can be cached and replayed
// bit-identically. Wall-clock timings live in the PlanResponse
// envelope instead.
type Plan struct {
	Config          *config.Config `json:"config"`
	Score           float64        `json:"score"`
	IterTimeSeconds float64        `json:"iter_time_seconds"`
	PeakMemBytes    float64        `json:"peak_mem_bytes"`
	Feasible        bool           `json:"feasible"`
	Microbatches    int            `json:"microbatches"`
	Devices         int            `json:"devices"`
	Stages          []StagePlan    `json:"stages"`
	Explored        int            `json:"explored"`
	Iterations      int            `json:"iterations"`
	Partial         bool           `json:"partial"`
	// RecommendedCadence is the Young–Daly checkpoint interval (in
	// iterations) for the plan's expected iteration time under the
	// cluster's preemption hazard; 0 on hazard-free clusters.
	RecommendedCadence int `json:"recommended_cadence,omitempty"`
}

// buildPlan projects a search result onto the wire Plan.
func buildPlan(res *core.Result) *Plan {
	best := res.Best
	p := &Plan{
		Config:             best.Config,
		Score:              best.Score,
		Explored:           res.Explored,
		Iterations:         res.Iterations,
		Partial:            res.Partial,
		RecommendedCadence: res.RecommendedCadence,
	}
	if est := best.Estimate; est != nil {
		p.IterTimeSeconds = est.IterTime
		p.PeakMemBytes = est.PeakMem
		p.Feasible = est.Feasible
		p.Microbatches = est.Microbatches
		p.Devices = est.Devices
		for i, sm := range est.Stages {
			sp := StagePlan{
				StageTimeSeconds: sm.StageTime,
				FwdSeconds:       sm.FwdTime,
				BwdSeconds:       sm.BwdTime,
				TPCommSeconds:    sm.TPComm,
				P2PSeconds:       sm.P2P,
				RecompSeconds:    sm.Recomp,
				ReshardSeconds:   sm.ReshardComm,
				DPSyncSeconds:    sm.DPSync,
				PeakMemBytes:     sm.PeakMem,
				CapMemBytes:      sm.CapMem,
			}
			if best.Config != nil && i < len(best.Config.Stages) {
				st := &best.Config.Stages[i]
				sp.Start, sp.End, sp.Devices = st.Start, st.End, st.Devices
			}
			p.Stages = append(p.Stages, sp)
		}
	}
	return p
}

// PlanResponse is the envelope around a Plan: cache disposition, the
// content key, and this request's wall time.
type PlanResponse struct {
	// Cache is "hit" (exact cached plan), "warm" (miss warm-started
	// from a near-miss donor), or "miss" (cold search).
	Cache string `json:"cache"`
	// Key is the content hash triple, hex-encoded as graph-cluster-options.
	Key       string          `json:"key"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Plan      json.RawMessage `json:"plan"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterMS accompanies 429 backpressure responses.
	RetryAfterMS int `json:"retry_after_ms,omitempty"`
}
