package planserver

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aceso/internal/config"
	"aceso/internal/core"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/obs"
	"aceso/internal/perfmodel"
	"aceso/internal/plancache"
)

// Config parameterizes a Server. Zero values take defaults.
type Config struct {
	// Concurrency caps searches running simultaneously (arenas and
	// estimation pools are per-request, so this bounds peak memory).
	// Default: GOMAXPROCS.
	Concurrency int
	// Queue bounds requests waiting for a search slot; the queue full
	// → 429 + Retry-After. Default 64.
	Queue int
	// CacheSize bounds the plan cache entries. Default 256.
	CacheSize int
	// DefaultBudget applies when a request omits budget_ms. Default 2s.
	DefaultBudget time.Duration
	// MaxBudget clamps requested budgets (0 = no clamp). Default 30s.
	MaxBudget time.Duration
	// TraceCap bounds the rolling iteration-trace window served at
	// /v1/trace. Default 4096 events.
	TraceCap int
	// Registry receives service + search metrics; one is created when
	// nil.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 2 * time.Second
	}
	if c.MaxBudget == 0 {
		c.MaxBudget = 30 * time.Second
	}
	if c.TraceCap <= 0 {
		c.TraceCap = 4096
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return c
}

// Server is the planning service. Create with New, mount Handler on an
// http.Server, call Drain before shutdown.
type Server struct {
	cfg   Config
	cache *plancache.Cache
	reg   *obs.Registry
	trace *obs.JSONLTracer // rolling bounded window for /v1/trace

	sem    chan struct{} // search slots
	queued atomic.Int64  // requests waiting for a slot

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	mux *http.ServeMux
}

// New constructs a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: plancache.New(cfg.CacheSize),
		reg:   cfg.Registry,
		trace: obs.NewBoundedJSONLTracer(cfg.TraceCap),
		sem:   make(chan struct{}, cfg.Concurrency),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/trace", s.handleTrace)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the metrics registry the server writes to.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Cache exposes the plan cache (stats endpoints, tests).
func (s *Server) Cache() *plancache.Cache { return s.cache }

// Drain stops admitting new requests and blocks until every in-flight
// request (including queued-but-admitted ones) has completed. Safe to
// call more than once.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.inflight.Wait()
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// beginRequest admits a request into the in-flight set, or reports
// false when the server is draining. The WaitGroup Add happens under
// the same lock that Drain sets the flag under, so Add can never race
// a Wait that already observed an empty set.
func (s *Server) beginRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

func (s *Server) endRequest() { s.inflight.Done() }

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	s.reg.Counter(fmt.Sprintf("%s{code=%q}", obs.ServeRequestsTotal, strconv.Itoa(code))).Inc()
	resp := ErrorResponse{Error: fmt.Sprintf(format, args...)}
	// Both shed paths are retryable: 429 (backpressure) after roughly
	// one search budget, 503 (draining) once a replacement is up.
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		resp.RetryAfterMS = int(s.cfg.DefaultBudget / time.Millisecond)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.DefaultBudget + time.Second - 1) / time.Second)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.DefaultBudget+time.Second-1)/time.Second)))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Refresh the sampled gauges at scrape time.
	s.reg.Gauge(obs.ServeQueueDepth).Set(float64(s.queued.Load()))
	s.reg.Gauge(obs.ServeCacheEntries).Set(float64(s.cache.Len()))
	s.reg.Gauge(obs.ServeInflight).Set(float64(len(s.sem)))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Cache    plancache.Stats `json:"cache"`
		Entries  int             `json:"entries"`
		Queued   int64           `json:"queued"`
		Draining bool            `json:"draining"`
	}{s.cache.Stats(), s.cache.Len(), s.queued.Load(), s.Draining()})
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/jsonl")
	_, _ = s.trace.WriteTo(w)
}

// request carries one plan request through admission and search.
type request struct {
	req     PlanRequest
	graph   *model.Graph
	healthy hardware.Cluster // pre-fault cluster
	target  hardware.Cluster // degraded when faults present, else healthy
	faults  *hardware.FaultSpec
	opts    SearchOptions // normalized
	key     plancache.Key
}

// prepare validates and hashes the request.
func (s *Server) prepare(pr PlanRequest) (*request, error) {
	g, err := pr.Model.Build()
	if err != nil {
		return nil, err
	}
	healthy, faults, err := pr.Cluster.Build()
	if err != nil {
		return nil, err
	}
	target := healthy
	if faults != nil {
		target, err = healthy.Degrade(*faults)
		if err != nil {
			return nil, err
		}
	}
	opts := pr.Options.normalize(s.cfg.DefaultBudget, s.cfg.MaxBudget)
	return &request{
		req:     pr,
		graph:   g,
		healthy: healthy,
		target:  target,
		faults:  faults,
		opts:    opts,
		key: plancache.Key{
			Graph:   plancache.GraphHash(g),
			Cluster: plancache.ClusterHash(&target),
			Options: opts.hash(),
		},
	}, nil
}

func keyString(k plancache.Key) string {
	return fmt.Sprintf("%016x-%016x-%016x", k.Graph, k.Cluster, k.Options)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.beginRequest() {
		s.reg.Counter(obs.ServeDrainRejectsTotal).Inc()
		s.writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.endRequest()

	start := time.Now()
	defer func() { s.reg.Timer(obs.ServeRequestSeconds).Observe(time.Since(start)) }()

	var pr PlanRequest
	if err := json.NewDecoder(r.Body).Decode(&pr); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	rq, err := s.prepare(pr)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Exact cache hit: serve the stored bytes without a search slot.
	if !pr.NoCache && !pr.Stream {
		if e, ok := s.cache.Get(rq.key); ok {
			s.reg.Counter(fmt.Sprintf("%s{kind=%q}", obs.ServeCacheHitsTotal, "exact")).Inc()
			s.respond(w, http.StatusOK, PlanResponse{
				Cache:     "hit",
				Key:       keyString(rq.key),
				ElapsedMS: msSince(start),
				Plan:      e.Plan,
			})
			return
		}
		s.reg.Counter(obs.ServeCacheMissesTotal).Inc()
	}

	// Admission: take a search slot or shed.
	select {
	case s.sem <- struct{}{}:
	default:
		if s.queued.Add(1) > int64(s.cfg.Queue) {
			s.queued.Add(-1)
			s.reg.Counter(obs.ServeShedTotal).Inc()
			s.writeError(w, http.StatusTooManyRequests, "server at capacity (%d running, %d queued)", s.cfg.Concurrency, s.cfg.Queue)
			return
		}
		select {
		case s.sem <- struct{}{}:
			s.queued.Add(-1)
		case <-r.Context().Done():
			s.queued.Add(-1)
			s.writeError(w, http.StatusRequestTimeout, "client gone while queued")
			return
		}
	}
	defer func() { <-s.sem }()

	// Per-request deadline: explicit, or the search budget plus slack.
	deadline := time.Duration(pr.DeadlineMS) * time.Millisecond
	if deadline <= 0 {
		deadline = time.Duration(rq.opts.BudgetMS)*time.Millisecond + 5*time.Second
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	if pr.Stream {
		s.servePlanSSE(ctx, w, rq, start)
		return
	}

	resp, code, err := s.runSearch(ctx, rq, nil)
	if err != nil {
		s.writeError(w, code, "%v", err)
		return
	}
	resp.ElapsedMS = msSince(start)
	s.respond(w, http.StatusOK, *resp)
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Microseconds()) / 1e3 }

func (s *Server) respond(w http.ResponseWriter, code int, resp PlanResponse) {
	s.reg.Counter(fmt.Sprintf("%s{code=%q}", obs.ServeRequestsTotal, strconv.Itoa(code))).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
}

// runSearch executes the search for rq (the caller holds a slot) and
// returns the response envelope. extraTracer, when non-nil, receives
// iteration events alongside the server's rolling trace (the SSE
// path). On error the int is the HTTP status to report.
func (s *Server) runSearch(ctx context.Context, rq *request, extraTracer obs.Tracer) (*PlanResponse, int, error) {
	opts := rq.opts.core()
	opts.Metrics = s.reg
	opts.Tracer = obs.MultiTracer(s.trace, extraTracer)

	// Near-miss warm start: same graph and options planned before
	// under a different cluster — seed from that plan.
	kind := "miss"
	var donor *plancache.Entry
	if !rq.req.NoCache {
		if e, ok := s.cache.Warm(rq.key.Graph, rq.key.Options); ok && e.Key.Cluster != rq.key.Cluster && e.Config != nil {
			donor = e
			kind = "warm"
		}
	}

	var res *core.Result
	var err error
	if rq.faults != nil {
		var prev *config.Config
		if donor != nil {
			prev = donor.Config
		}
		res, err = core.Replan(ctx, rq.graph, rq.healthy, *rq.faults, prev, opts)
	} else {
		if donor != nil {
			opts = core.WarmOptions(rq.graph, donor.Config, rq.target.TotalDevices(), opts)
		}
		res, err = core.SearchContext(ctx, rq.graph, rq.target, opts)
	}
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	if res == nil || res.Best.Config == nil {
		return nil, http.StatusUnprocessableEntity, fmt.Errorf("search produced no feasible configuration")
	}
	if donor != nil {
		s.reg.Counter(fmt.Sprintf("%s{kind=%q}", obs.ServeCacheHitsTotal, "warm")).Inc()
	}

	plan := buildPlan(res)
	raw, err := json.Marshal(plan)
	if err != nil {
		return nil, http.StatusInternalServerError, fmt.Errorf("marshal plan: %w", err)
	}
	// Freeze the config's hash memos before publishing it to the
	// cache: cached configs are read concurrently by warm starts.
	plan.Config.Hash()
	s.cache.Put(&plancache.Entry{
		Key:      rq.key,
		Plan:     raw,
		Config:   plan.Config,
		Score:    plan.Score,
		Explored: plan.Explored,
	})
	return &PlanResponse{Cache: kind, Key: keyString(rq.key), Plan: raw}, 0, nil
}

// ---------------------------------------------------------------------------
// SSE streaming
// ---------------------------------------------------------------------------

// sseTracer serializes iteration events onto an SSE stream. Search
// workers call OnIteration concurrently; the mutex makes each frame
// atomic.
type sseTracer struct {
	mu sync.Mutex
	w  http.ResponseWriter
	fl http.Flusher
}

func (t *sseTracer) OnIteration(ev obs.IterationEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(t.w, "event: iteration\ndata: %s\n\n", data)
	if t.fl != nil {
		t.fl.Flush()
	}
}

func (t *sseTracer) OnEstimate(*config.Config, *perfmodel.Estimate) {}

// servePlanSSE streams progress frames followed by a final result
// frame. SSE responses are never cache hits (the point is watching the
// search run) but their results do land in the cache.
func (s *Server) servePlanSSE(ctx context.Context, w http.ResponseWriter, rq *request, start time.Time) {
	fl, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	s.reg.Counter(obs.ServeStreamsTotal).Inc()
	s.reg.Counter(fmt.Sprintf("%s{code=%q}", obs.ServeRequestsTotal, "200")).Inc()

	tr := &sseTracer{w: w, fl: fl}
	resp, _, err := s.runSearch(ctx, rq, tr)

	tr.mu.Lock()
	defer tr.mu.Unlock()
	if err != nil {
		data, _ := json.Marshal(ErrorResponse{Error: err.Error()})
		fmt.Fprintf(w, "event: error\ndata: %s\n\n", data)
	} else {
		resp.ElapsedMS = msSince(start)
		data, _ := json.Marshal(resp)
		fmt.Fprintf(w, "event: result\ndata: %s\n\n", data)
	}
	if fl != nil {
		fl.Flush()
	}
}
