package planserver

import (
	"encoding/json"
	"net/http"
	"testing"

	"aceso/internal/hardware"
)

// classSpecOf projects a hardware class onto the wire form.
func classSpecOf(d hardware.DeviceClass) DeviceClassSpec {
	return DeviceClassSpec{
		Name:        d.Name,
		FP16FLOPS:   d.FP16FLOPS,
		FP32FLOPS:   d.FP32FLOPS,
		MaxUtil:     d.MaxUtil,
		MemoryBytes: d.MemoryBytes,
		IntraBW:     d.IntraBW,
		InterBW:     d.InterBW,
		IntraLat:    d.IntraLat,
		InterLat:    d.InterLat,
	}
}

func TestClusterSpecBuildSpotCapacity(t *testing.T) {
	reserved := classSpecOf(hardware.V100Class())
	spot := classSpecOf(hardware.V100Class())
	spot.Name = "v100-spot"
	spot.Capacity = "spot"
	spot.HazardPerHour = 0.5
	spot.NoticeSeconds = 30

	spec := ClusterSpec{
		Nodes:       2,
		Classes:     []DeviceClassSpec{reserved, spot},
		NodeClasses: []int{0, 1},
	}
	cl, faults, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if faults != nil {
		t.Fatalf("unexpected fault spec: %+v", faults)
	}
	if !cl.HasSpot() {
		t.Fatal("built cluster does not report spot capacity")
	}
	// Node 0 is reserved, node 1 spot: per-device hazards must follow.
	if h := cl.DeviceHazard(0); h != 0 {
		t.Fatalf("reserved device hazard %v, want 0", h)
	}
	if h := cl.DeviceHazard(cl.DevicesPerNode); h != 0.5 {
		t.Fatalf("spot device hazard %v, want 0.5", h)
	}
	sc := cl.SpotOf(cl.DevicesPerNode)
	if sc == nil || sc.NoticeSeconds != 30 {
		t.Fatalf("SpotOf(spot device) = %+v, want notice 30s", sc)
	}
	if cl.SpotOf(0) != nil {
		t.Fatal("SpotOf(reserved device) is non-nil")
	}

	// Unknown capacity strings are a 4xx-shaped typed error, not a
	// silent default.
	bad := spec
	bad.Classes = append([]DeviceClassSpec(nil), spec.Classes...)
	bad.Classes[1].Capacity = "preemptible"
	if _, _, err := bad.Build(); err == nil {
		t.Fatal("capacity \"preemptible\" accepted, want error")
	}

	// A reserved class with a hazard rate is rejected by validation.
	conflicted := spec
	conflicted.Classes = append([]DeviceClassSpec(nil), spec.Classes...)
	conflicted.Classes[0].HazardPerHour = 1 // ignored: capacity is reserved
	if cl2, _, err := conflicted.Build(); err != nil {
		t.Fatalf("hazard on a reserved wire class must be ignored, got %v", err)
	} else if cl2.DeviceHazard(0) != 0 {
		t.Fatal("reserved class silently picked up a hazard rate")
	}
}

// TestPlanSpotClusterRecommendsCadence: planning against a spot fleet
// returns a risk-aware plan carrying a checkpoint cadence, and the
// hazard is part of the cache identity — stripping it is a different
// key.
func TestPlanSpotClusterRecommendsCadence(t *testing.T) {
	_, ts := testServer(t, Config{})

	spot := classSpecOf(hardware.V100Class())
	spot.Capacity = "spot"
	spot.HazardPerHour = 2
	spot.NoticeSeconds = 120

	pr := tinyRequest()
	pr.Cluster.Classes = []DeviceClassSpec{spot}
	pr.Cluster.NodeClasses = []int{0}

	resp, out := postPlan(t, ts.URL, pr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spot plan request: status %d", resp.StatusCode)
	}
	var plan Plan
	if err := json.Unmarshal(out.Plan, &plan); err != nil {
		t.Fatalf("plan decode: %v", err)
	}
	if !plan.Feasible || plan.Config == nil {
		t.Fatalf("implausible spot plan: %+v", plan)
	}
	if plan.RecommendedCadence <= 0 {
		t.Fatalf("recommended cadence %d on a hazardous cluster, want > 0", plan.RecommendedCadence)
	}

	// Same fleet, hazard-free: different cache key, no cadence.
	flat := tinyRequest()
	flatClass := classSpecOf(hardware.V100Class())
	flat.Cluster.Classes = []DeviceClassSpec{flatClass}
	flat.Cluster.NodeClasses = []int{0}
	fresp, fout := postPlan(t, ts.URL, flat)
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("hazard-free plan request: status %d", fresp.StatusCode)
	}
	if fout.Key == out.Key {
		t.Fatal("hazard-free and spot requests share a cache key")
	}
	var flatPlan Plan
	if err := json.Unmarshal(fout.Plan, &flatPlan); err != nil {
		t.Fatalf("plan decode: %v", err)
	}
	if flatPlan.RecommendedCadence != 0 {
		t.Fatalf("recommended cadence %d on a hazard-free cluster, want 0", flatPlan.RecommendedCadence)
	}
}
