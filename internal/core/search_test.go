package core

import (
	"testing"
	"time"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/obs"
	"aceso/internal/perfmodel"
	"aceso/internal/pipesim"
)

// quickOpts returns search options small enough for unit tests but
// large enough to exercise the full machinery.
func quickOpts() Options {
	return Options{
		TimeBudget:  800 * time.Millisecond,
		StageCounts: []int{1, 2, 4},
		Seed:        1,
	}
}

func TestSearchImprovesOverInitial(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	res, err := Search(g, cl, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Estimate.Feasible {
		t.Fatal("best config infeasible")
	}
	// Compare against each searched depth's initial configuration.
	pm := perfmodel.New(g, cl, 1)
	bestInit := 0.0
	for _, p := range []int{1, 2, 4} {
		init, err := config.Balanced(g, 4, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		est := pm.Estimate(init)
		if est.Feasible && (bestInit == 0 || est.IterTime < bestInit) {
			bestInit = est.IterTime
		}
	}
	if bestInit > 0 && res.Best.Score > bestInit {
		t.Errorf("search result %.3f is worse than the best initial config %.3f",
			res.Best.Score, bestInit)
	}
	if res.Explored < 10 {
		t.Errorf("Explored = %d, suspiciously few", res.Explored)
	}
	if res.Iterations < 1 {
		t.Errorf("Iterations = %d", res.Iterations)
	}
}

func TestSearchFindsFeasibleUnderMemoryPressure(t *testing.T) {
	// GPT-3 2.6B on 8 GPUs does not fit without recomputation or deep
	// pipelining; the search must reach feasibility ("safety first").
	g, _ := model.GPT3("2.6B")
	cl := hardware.DGX1V100(1)
	opts := quickOpts()
	opts.TimeBudget = 2 * time.Second
	opts.StageCounts = []int{2, 4, 8}
	res, err := Search(g, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Estimate.Feasible {
		t.Fatalf("no feasible config found (score %v)", res.Best.Score)
	}
	if res.Best.Estimate.PeakMem > cl.MemoryBytes {
		t.Error("best config exceeds device memory")
	}
}

func TestSearchTopKRankedAndDistinct(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	res, err := Search(g, cl, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) < 2 {
		t.Fatalf("TopK has %d entries", len(res.TopK))
	}
	seen := map[uint64]bool{}
	for i, c := range res.TopK {
		h := c.Config.Hash()
		if seen[h] {
			t.Error("TopK contains duplicates")
		}
		seen[h] = true
		if i > 0 && res.TopK[i-1].Score > c.Score {
			t.Error("TopK not sorted")
		}
	}
	if res.Best.Config.Hash() != res.TopK[0].Config.Hash() {
		t.Error("Best != TopK[0]")
	}
}

func TestSearchBestConfigValid(t *testing.T) {
	g, _ := model.T5("770M")
	cl := hardware.DGX1V100(1).Restrict(4)
	res, err := Search(g, cl, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Config.Validate(g, 4); err != nil {
		t.Fatalf("best config invalid: %v", err)
	}
	// And executable by the simulator.
	if _, err := pipesim.Simulate(newSearcher(t, g, 4).pm, res.Best.Config, 1); err != nil {
		t.Fatalf("best config not simulatable: %v", err)
	}
}

func TestSearchWithoutHeuristic2StillWorks(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	opts := quickOpts()
	opts.DisableHeuristic2 = true
	res, err := Search(g, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Estimate.Feasible {
		t.Error("random-order search found no feasible config")
	}
}

func TestSearchRespectsMaxIterations(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	opts := quickOpts()
	opts.TimeBudget = 30 * time.Second // budget not the binding limit
	opts.MaxIterations = 2
	opts.StageCounts = []int{2}
	start := time.Now()
	res, err := Search(g, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Errorf("Iterations = %d, want ≤ 2", res.Iterations)
	}
	if time.Since(start) > 20*time.Second {
		t.Error("MaxIterations did not bound the search")
	}
}

func TestSearchDeterministicAcrossCachingLayers(t *testing.T) {
	// The caching layers (config hash memos, perfmodel stage cache) are
	// pure accelerations: a seeded, iteration-bounded search must return
	// the exact same result with them disabled.
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1)
	run := func(disable bool) *Result {
		pm := perfmodel.New(g, cl, 3)
		pm.DisableStageCache = disable
		opts := Options{
			TimeBudget:    time.Hour, // iterations are the binding limit
			MaxIterations: 3,
			StageCounts:   []int{1, 2, 4},
			Seed:          3,
			Model:         pm,
		}
		res, err := Search(g, cl, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cached, full := run(false), run(true)
	if got, want := cached.Best.Config.Canonical(), full.Best.Config.Canonical(); got != want {
		t.Errorf("Best.Config differs with stage cache:\ncached: %s\nfull:   %s", got, want)
	}
	if cached.Best.Score != full.Best.Score {
		t.Errorf("Best.Score differs: %v vs %v", cached.Best.Score, full.Best.Score)
	}
	if cached.Explored != full.Explored {
		t.Errorf("Explored differs: %d vs %d", cached.Explored, full.Explored)
	}
	if len(cached.TopK) != len(full.TopK) {
		t.Fatalf("TopK length differs: %d vs %d", len(cached.TopK), len(full.TopK))
	}
	for i := range cached.TopK {
		if cached.TopK[i].Config.Hash() != full.TopK[i].Config.Hash() {
			t.Errorf("TopK[%d] differs with stage cache", i)
		}
	}
}

func TestSearchTraceCollection(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	opts := quickOpts()
	opts.CollectTrace = true
	res, err := Search(g, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("trace not collected")
	}
	if len(tr.Iterations()) == 0 {
		t.Error("no iteration records")
	}
	conv := tr.Convergence()
	if len(conv) == 0 {
		t.Fatal("no convergence points")
	}
	for i := 1; i < len(conv); i++ {
		if conv[i].Score >= conv[i-1].Score {
			t.Error("convergence curve must be strictly decreasing")
		}
		if conv[i].Elapsed < conv[i-1].Elapsed {
			t.Error("convergence timestamps must be monotone")
		}
	}
	hist := tr.TriesHistogram()
	total := 0
	for _, v := range hist {
		total += v
	}
	improving := 0
	for _, it := range tr.Iterations() {
		if it.Improved {
			improving++
		}
	}
	if total != improving {
		t.Errorf("TriesHistogram sums to %d, want %d improving iterations", total, improving)
	}
}

func TestSearchInitializers(t *testing.T) {
	// Exp#7: imbalanced initial configurations must still converge to
	// a feasible result in the same ballpark as the balanced start.
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	scores := map[string]float64{}
	for name, init := range map[string]Initializer{
		"balanced":      config.Balanced,
		"imbalance-op":  config.ImbalancedOps,
		"imbalance-gpu": config.ImbalancedGPUs,
	} {
		opts := quickOpts()
		opts.TimeBudget = 1500 * time.Millisecond
		opts.Initializer = init
		res, err := Search(g, cl, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Best.Estimate.Feasible {
			t.Fatalf("%s: infeasible result", name)
		}
		scores[name] = res.Best.Score
	}
	base := scores["balanced"]
	for name, sc := range scores {
		if sc > base*1.5 {
			t.Errorf("%s converged to %.3f, >1.5× balanced %.3f", name, sc, base)
		}
	}
}

func TestSearchErrorPaths(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	// Invalid cluster.
	bad := cl
	bad.MemoryBytes = 0
	if _, err := Search(g, bad, quickOpts()); err == nil {
		t.Error("invalid cluster accepted")
	}
	// Unsatisfiable stage counts.
	opts := quickOpts()
	opts.StageCounts = []int{64}
	if _, err := Search(g, cl, opts); err == nil {
		t.Error("stage count beyond devices accepted")
	}
	// Invalid graph.
	bg := model.Uniform(4, 1e9, 1e6, 1e5, 64)
	bg.GlobalBatch = 0
	if _, err := Search(bg, cl, quickOpts()); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestDefaultStageCounts(t *testing.T) {
	got := defaultStageCounts(32, 1000)
	if got[0] != 1 {
		t.Error("stage counts must include 1")
	}
	max := 0
	for _, p := range got {
		if p > max {
			max = p
		}
	}
	if max != 32 {
		t.Errorf("max stage count = %d, want 32", max)
	}
	// Bounded by ops.
	got = defaultStageCounts(32, 3)
	for _, p := range got {
		if p > 3 {
			t.Errorf("stage count %d exceeds op count 3", p)
		}
	}
}

func TestInsertTopK(t *testing.T) {
	g := model.Uniform(8, 1e9, 1e6, 1e5, 64)
	mk := func(mbs int, score float64) Candidate {
		c, _ := config.Balanced(g, 4, 2, mbs)
		return Candidate{Config: c, Score: score, hash: c.Hash()}
	}
	var list []Candidate
	list = insertTopK(list, mk(1, 3), 2)
	list = insertTopK(list, mk(2, 1), 2)
	list = insertTopK(list, mk(4, 2), 2)
	if len(list) != 2 || list[0].Score != 1 || list[1].Score != 2 {
		t.Errorf("insertTopK = %+v", list)
	}
	// Duplicate hash ignored.
	list = insertTopK(list, mk(2, 0.5), 2)
	if list[0].Score != 1 {
		t.Error("duplicate config replaced existing entry")
	}
}

func TestFineTuneFindsDimOrTilingImprovements(t *testing.T) {
	// Start from a deliberately bad tiling (everything tp) on a model
	// where small ops shard poorly; fine-tuning should find a better
	// mixed tiling or dim assignment.
	g, _ := model.WideResNet("0.5B")
	s := newSearcher(t, g, 8)
	cfg := mustBalanced(t, g, 8, 1, 8) // tp=8 everywhere
	before := s.score(cfg, s.estimate(cfg))
	ft := s.fineTune(cfg)
	if ft == nil {
		t.Fatal("fine-tune found nothing on an all-tp Wide-ResNet")
	}
	after := s.score(ft, s.estimate(ft))
	if after >= before {
		t.Errorf("fine-tune did not improve: %.3f → %.3f", before, after)
	}
	if err := ft.Validate(g, 8); err != nil {
		t.Fatalf("fine-tuned config invalid: %v", err)
	}
}

func TestPoolPruneKeepsBest(t *testing.T) {
	g := model.Uniform(32, 1e9, 1e6, 1e5, 1<<20)
	s := newSearcher(t, g, 4)
	base, err := config.Balanced(g, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the pool well past 2×cap with distinct configs: encode a
	// counter into the recompute bit pattern (16 ops in stage 0 give
	// 65536 distinct hashes).
	for n := 1; n <= 2*poolCap+10; n++ {
		c := base.Clone()
		for j := 0; j < len(c.Stages[0].Ops); j++ {
			c.Stages[0].Ops[j].Recompute = (n>>j)&1 == 1
		}
		s.pool[c.Hash()] = Candidate{Config: c, Score: float64(n)}
	}
	if len(s.pool) != 2*poolCap+10 {
		t.Fatalf("setup produced %d distinct configs", len(s.pool))
	}
	s.prunePool()
	if len(s.pool) != poolCap/2 {
		t.Fatalf("pool size after prune = %d, want %d", len(s.pool), poolCap/2)
	}
	// The best-scoring entry must survive.
	found := false
	for _, c := range s.pool {
		if c.Score == 1 {
			found = true
		}
	}
	if !found {
		t.Error("prune dropped the best entry")
	}
}

func TestPrunePoolKeepsBestHalf(t *testing.T) {
	// Regression (PR 4): prunePool documented "drop the worst-scoring
	// half" but truncated only to poolCap, so a pool at its trigger size
	// re-pruned after nearly every subsequent insert. It must prune to
	// poolCap/2 (deterministic, hash-tiebroken).
	s := &searcher{pool: make(map[uint64]Candidate)}
	n := poolCap + 1
	for i := 0; i < n; i++ {
		h := uint64(i)
		// Two-valued scores exercise the hash tiebreak across the cut.
		score := float64(i % 2)
		s.pool[h] = Candidate{Score: score, hash: h}
	}
	s.prunePool()
	if len(s.pool) != poolCap/2 {
		t.Fatalf("pool size after prune = %d, want poolCap/2 = %d", len(s.pool), poolCap/2)
	}
	// Survivors must be exactly the best (score, hash)-ordered entries:
	// all score-0 candidates sort before score-1, and within score 0 the
	// lowest hashes win.
	for h, c := range s.pool {
		if c.Score != 0 {
			t.Fatalf("hash %d with score %v survived ahead of score-0 entries", h, c.Score)
		}
		if h >= uint64(poolCap) {
			t.Errorf("hash %d survived the hash tiebreak over lower hashes", h)
		}
	}
	// Pruning an at-or-under-target pool is a no-op.
	before := len(s.pool)
	s.prunePool()
	if len(s.pool) != before {
		t.Errorf("prune of small pool changed size %d → %d", before, len(s.pool))
	}
}

func TestSearchDeterministicWithPruning(t *testing.T) {
	// Pool restarts and explored counts must be identical across runs of
	// the same seed — pruning is part of the deterministic state.
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	run := func() (Result, *obs.Registry) {
		reg := obs.NewRegistry()
		opts := Options{
			TimeBudget:    time.Hour, // MaxIterations terminates first
			StageCounts:   []int{2, 4},
			MaxIterations: 12,
			Seed:          7,
			Metrics:       reg,
		}
		res, err := Search(g, cl, opts)
		if err != nil {
			t.Fatal(err)
		}
		return *res, reg
	}
	a, ra := run()
	b, rb := run()
	if a.Explored != b.Explored || a.Iterations != b.Iterations {
		t.Errorf("explored/iterations differ across identical runs: %d/%d vs %d/%d",
			a.Explored, a.Iterations, b.Explored, b.Iterations)
	}
	for _, name := range []string{obs.PoolRestartsTotal, obs.PoolPrunesTotal, obs.CandidatesEstimatedTotal} {
		if va, vb := ra.Counter(name).Value(), rb.Counter(name).Value(); va != vb {
			t.Errorf("%s differs across identical runs: %d vs %d", name, va, vb)
		}
	}
}
