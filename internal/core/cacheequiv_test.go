package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
)

// strippedClone rebuilds a configuration from its exported fields only,
// discarding every memoized hash — the from-scratch reference for the
// invalidation contract.
func strippedClone(c *config.Config) *config.Config {
	out := &config.Config{
		MicroBatch: c.MicroBatch,
		Stages:     make([]config.Stage, len(c.Stages)),
	}
	for i := range c.Stages {
		s := &c.Stages[i]
		out.Stages[i] = config.Stage{
			Start:   s.Start,
			End:     s.End,
			Devices: s.Devices,
			Ops:     append([]config.OpSetting(nil), s.Ops...),
		}
	}
	return out
}

// TestIncrementalEstimateEquivalence is the correctness gate for the
// hot-path caching layers: walking random primitive sequences from
// testing/quick-generated starting points, every intermediate
// configuration must satisfy, bit-for-bit,
//
//  1. memoized Config.Hash() == from-scratch rebuild's Hash(), and
//  2. cached/incremental Estimate == full recomputation with the
//     stage cache disabled (same profiler database, so the only
//     difference is the memo).
func TestIncrementalEstimateEquivalence(t *testing.T) {
	g, err := model.GPT3("350M")
	if err != nil {
		t.Fatal(err)
	}
	cl := hardware.DGX1V100(1) // 8 devices
	pmCached := perfmodel.New(g, cl, 1)
	pmFull := &perfmodel.Model{
		Graph:             g,
		Cluster:           cl,
		Prof:              pmCached.Prof, // shared database: identical op times
		DisableStageCache: true,
	}
	s := &searcher{
		graph:    g,
		cluster:  cl,
		pm:       pmCached,
		opts:     Options{ExtendedPrimitives: true}.withDefaults(),
		deadline: time.Now().Add(time.Hour),
		visited:  make(map[uint64]bool),
		pool:     make(map[uint64]Candidate),
		cache:    make(map[uint64]*perfmodel.Estimate),
	}

	check := func(cfg *config.Config, step int) bool {
		if got, want := cfg.Hash(), strippedClone(cfg).Hash(); got != want {
			t.Errorf("step %d: memoized hash %x != rebuilt %x (%s)", step, got, want, cfg)
			return false
		}
		cached := pmCached.Estimate(cfg)
		full := pmFull.Estimate(strippedClone(cfg))
		if !reflect.DeepEqual(cached, full) {
			t.Errorf("step %d: cached estimate diverges from full recomputation\ncached: %+v\nfull:   %+v\nconfig: %s",
				step, cached, full, cfg)
			return false
		}
		return true
	}

	prims := append(append([]Primitive(nil), Table...), ExtensionTable...)
	walk := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stages := 1 << rng.Intn(3)             // 1, 2 or 4 pipeline stages
		mbs := 1 << rng.Intn(3)                // 1, 2 or 4
		cfg, err := config.Balanced(g, 8, stages, mbs)
		if err != nil {
			return true // not every (stages, mbs) combination is buildable
		}
		if !check(cfg, -1) {
			return false
		}
		for step := 0; step < 6; step++ {
			prim := &prims[rng.Intn(len(prims))]
			stage := rng.Intn(cfg.NumStages())
			cands := prim.apply(s, cfg, stage)
			// Keep only valid candidates; primitives may return nil or
			// configs the cluster cannot host.
			var valid []*config.Config
			for _, c := range cands {
				if c != nil && c.Validate(g, cl.TotalDevices()) == nil {
					valid = append(valid, c)
				}
			}
			if len(valid) == 0 {
				continue
			}
			cfg = valid[rng.Intn(len(valid))]
			if !check(cfg, step) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(walk, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestEvalStageComposedEquivalence cross-checks the cached Estimate
// against the EvalStage/ComposePipeline decomposition on uniform
// configurations — the two public paths into the performance model
// must agree bit-for-bit.
func TestEvalStageComposedEquivalence(t *testing.T) {
	g, err := model.GPT3("350M")
	if err != nil {
		t.Fatal(err)
	}
	cl := hardware.DGX1V100(1)
	pm := perfmodel.New(g, cl, 1)
	for _, tc := range []struct{ stages, tp, dp, mbs int }{
		{2, 2, 2, 4}, {4, 2, 1, 2}, {1, 4, 2, 2}, {2, 1, 4, 4},
	} {
		cfg, err := config.Balanced(g, cl.TotalDevices(), tc.stages, tc.mbs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cfg.Stages {
			i := i
			cfg.MutStage(i, func(st *config.Stage) {
				for j := range st.Ops {
					st.Ops[j] = config.OpSetting{TP: tc.tp, DP: tc.dp}
				}
				st.Devices = tc.tp * tc.dp
			})
		}
		if cfg.Validate(g, cfg.TotalDevices()) != nil {
			continue // uniform override does not fit this cluster split
		}
		est := pm.Estimate(cfg)

		n := cfg.NumMicrobatches(g.GlobalBatch)
		p := cfg.NumStages()
		sms := make([]perfmodel.StageMetrics, p)
		firstDev := 0
		for i := range cfg.Stages {
			st := &cfg.Stages[i]
			inflight := p - i
			if inflight > n {
				inflight = n
			}
			prev := 0
			if i > 0 {
				prev = cfg.Stages[i-1].Devices
			}
			sm, err := pm.EvalStage(st.Start, st.End, st.Devices, tc.tp, tc.dp, false,
				cfg.MicroBatch, firstDev, inflight, prev)
			if err != nil {
				t.Fatalf("EvalStage: %v", err)
			}
			sms[i] = sm
			firstDev += st.Devices
		}
		composed := pm.ComposePipeline(sms, n)
		if !reflect.DeepEqual(est, composed) {
			t.Errorf("stages=%d tp=%d dp=%d: Estimate and EvalStage-composed disagree\nest:      %+v\ncomposed: %+v",
				tc.stages, tc.tp, tc.dp, est, composed)
		}
	}
}
