package core

import (
	"context"
	"math"
	"testing"
	"time"

	"aceso/internal/hardware"
	"aceso/internal/model"
)

// FuzzSearchNeverPanics drives SearchContext with fuzzer-chosen model
// shapes, cluster restrictions, fault deratings and option knobs, and
// asserts the robustness contract: a valid result or a typed error,
// never a panic, never a non-finite score. The search itself bounds
// each case via MaxIterations, so even hostile inputs finish quickly.
func FuzzSearchNeverPanics(f *testing.F) {
	f.Add(4, 1e9, 1e6, 8, int64(1), 0.5, false)
	f.Add(8, 5e9, 2e6, 16, int64(7), 1.0, true)
	f.Add(1, 1e6, 1e3, 1, int64(0), 0.01, false)
	f.Add(13, -1.0, 1e6, 3, int64(3), 0.25, true)
	f.Add(2, math.Inf(1), 1e6, 4, int64(2), 0.75, false)
	f.Fuzz(func(t *testing.T, ops int, flops, params float64, devices int, seed int64, derate float64, dead bool) {
		if ops < 0 || ops > 64 {
			ops %= 64
			if ops < 0 {
				ops = -ops
			}
		}
		if devices < 0 {
			devices = -devices
		}
		devices = devices%32 + 1
		g := model.Uniform(ops, flops, params, math.Abs(flops)/1e3, 8)
		cl := hardware.DGX1V100((devices + 7) / 8).Restrict(devices)
		if devices > 1 {
			spec := hardware.FaultSpec{Devices: []hardware.DeviceFault{
				{Device: int(seed%int64(devices)+int64(devices)) % devices, Dead: dead, FLOPSScale: derate, MemScale: derate},
			}}
			if deg, err := cl.Degrade(spec); err == nil {
				cl = deg
			}
		}
		opts := Options{
			TimeBudget:    200 * time.Millisecond,
			MaxIterations: 2,
			Seed:          seed,
		}
		res, err := SearchContext(context.Background(), g, cl, opts)
		if err != nil {
			return // typed rejection is fine; panics are what fuzzing hunts
		}
		if res == nil || res.Best.Config == nil {
			t.Fatal("nil-error search returned no best config")
		}
		if math.IsNaN(res.Best.Score) || math.IsInf(res.Best.Score, 0) {
			t.Fatalf("non-finite score %v escaped the search", res.Best.Score)
		}
		if verr := res.Best.Config.Validate(g, cl.TotalDevices()); verr != nil {
			t.Fatalf("best config fails Validate: %v", verr)
		}
	})
}
