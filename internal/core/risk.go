package core

import (
	"math"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
)

// Risk-aware objective for spot-capacity clusters. When any device
// class carries a preemption hazard the search stops ranking plans by
// nominal iteration time and ranks them by *expected* iteration time:
// nominal time inflated by the rework each preemption forces
// (perfmodel.Rework) plus the amortized checkpoint overhead at the
// plan's own optimal cadence. The model is placement-sensitive — each
// pipeline stage is priced at the hazard of the contiguous device
// range it lands on, and a stage whose every operator is dp-replicated
// (DP ≥ 2) loses no steps to a preemption (a surviving replica holds
// the state), it only pays the fixed recovery. High-hazard devices
// therefore attract replicated work and repel hard-to-move stages,
// the PipeDream-style partitioning discipline extended to risk.
//
// Everything here is strictly gated on hardware.Cluster.HasSpot:
// hazard-free searches never construct a riskModel and keep their
// scores — and explored counts — bit-identical.

// maxRecommendedCadence caps the checkpoint cadence the planner
// recommends; even a hazard-free plan should checkpoint occasionally.
const maxRecommendedCadence = 64

// riskModel prices configurations under the cluster's preemption
// hazard. Read-only after construction, so the per-stage-count workers
// share one instance.
type riskModel struct {
	cl       *hardware.Cluster
	recovery float64 // seconds per preemption; 0 = 10× iteration time
	ckpt     float64 // seconds per checkpoint; 0 = 1× iteration time
}

// newRiskModel returns nil on hazard-free clusters — the gate that
// keeps risk-blind searches bit-identical.
func newRiskModel(cl *hardware.Cluster, opts Options) *riskModel {
	if !cl.HasSpot() {
		return nil
	}
	return &riskModel{
		cl:       cl,
		recovery: opts.RiskRecoverySeconds,
		ckpt:     opts.RiskCheckpointSeconds,
	}
}

// hazards returns the plan's total preemption rate and its
// rollback-exposed share (the hazard of stages that would lose steps,
// i.e. stages with any non-replicated operator), both per second.
func (r *riskModel) hazards(cfg *config.Config) (lam, lamRB float64) {
	first := 0
	for s := range cfg.Stages {
		st := &cfg.Stages[s]
		h := r.cl.RangeHazard(first, st.Devices) / 3600
		lam += h
		if !stageReplicated(st) {
			lamRB += h
		}
		first += st.Devices
	}
	return lam, lamRB
}

// stageReplicated reports whether every operator of the stage is
// dp-replicated, so a preempted member loses no optimizer state.
func stageReplicated(st *config.Stage) bool {
	if len(st.Ops) == 0 {
		return false
	}
	for j := range st.Ops {
		if st.Ops[j].DP < 2 {
			return false
		}
	}
	return true
}

// costs resolves the recovery and checkpoint costs for a candidate
// with nominal iteration time t: explicit option values, or defaults
// proportional to t (10× and 1×) that keep the objective scale-free.
func (r *riskModel) costs(t float64) (rec, ck float64) {
	rec, ck = r.recovery, r.ckpt
	if rec <= 0 {
		rec = 10 * t
	}
	if ck <= 0 {
		ck = t
	}
	return rec, ck
}

// cadence returns the Young–Daly checkpoint cadence for a feasible
// configuration with nominal iteration time t, driven by the
// rollback-exposed hazard (replicated stages need no rollback
// protection).
func (r *riskModel) cadence(cfg *config.Config, t float64) int {
	_, lamRB := r.hazards(cfg)
	_, ck := r.costs(t)
	return perfmodel.RecommendedCadence(lamRB, t, ck, maxRecommendedCadence)
}

// expected returns the risk-adjusted score of a feasible configuration:
// the perfmodel expected iteration time at the plan's own optimal
// cadence, plus the recovery-only cost of preemptions hitting
// replicated stages.
func (r *riskModel) expected(cfg *config.Config, t float64) float64 {
	lam, lamRB := r.hazards(cfg)
	if lam <= 0 {
		return t
	}
	rec, ck := r.costs(t)
	k := perfmodel.RecommendedCadence(lamRB, t, ck, maxRecommendedCadence)
	return perfmodel.ExpectedIterTime(t, lamRB, k, rec, ck) + t*(lam-lamRB)*rec
}

// riskSeedInitializer picks the starting candidate for one pipeline on
// a spot cluster: it builds both the hazard-biased and the plain
// capacity-proportional configurations and returns whichever the risk
// objective prices cheaper. An infeasible candidate never wins over a
// feasible one; on a tie the biased candidate wins (it is the one the
// hazard evidence argues for). Both builds and both estimates are pure
// functions of the inputs, so the choice is deterministic.
func riskSeedInitializer(pm *perfmodel.Model, risk *riskModel, biased, plain Initializer) Initializer {
	price := func(cfg *config.Config) float64 {
		est := pm.Estimate(cfg)
		if est == nil || !est.Feasible || est.IterTime <= 0 {
			return math.Inf(1)
		}
		return risk.expected(cfg, est.IterTime)
	}
	return func(g *model.Graph, devices, stages, mbs int) (*config.Config, error) {
		b, berr := biased(g, devices, stages, mbs)
		p, perr := plain(g, devices, stages, mbs)
		if berr != nil {
			return p, perr
		}
		if perr != nil {
			return b, nil
		}
		if price(p) < price(b) {
			return p, nil
		}
		return b, nil
	}
}

// RiskAssess prices an existing configuration on a cluster: the
// expected iteration time under the cluster's preemption hazard and
// the recommended checkpoint cadence, using the same model the search
// optimizes. Hazard-free clusters return iterTime unchanged and
// cadence 0 — the figure is then just the nominal time.
func RiskAssess(cl *hardware.Cluster, cfg *config.Config, iterTime float64, opts Options) (expected float64, cadence int) {
	r := newRiskModel(cl, opts)
	if r == nil {
		return iterTime, 0
	}
	return r.expected(cfg, iterTime), r.cadence(cfg, iterTime)
}
