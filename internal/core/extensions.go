package core

import "aceso/internal/config"

// ExtensionTable holds reconfiguration primitives beyond the paper's
// Table 1, following §3.2.1's note that "Aceso can be extended with
// new primitives for future research". inc-zr/dec-zr toggle ZeRO-1
// optimizer-state sharding across a stage's data-parallel groups:
// memory drops by (dp−1)/dp of the optimizer states at the cost of a
// parameter all-gather per iteration. They join the eligible set only
// when Options.ExtendedPrimitives is on, so the paper-faithful search
// space stays the default.
var ExtensionTable = []Primitive{
	{Name: "inc-zr", Mechanism: "zero", Comp: Flat, Comm: Up, Mem: Down,
		apply: applyIncZR},
	{Name: "dec-zr", Mechanism: "zero", Comp: Flat, Comm: Down, Mem: Up,
		apply: applyDecZR},
	// Sequence parallelism is close to a free lunch on the tp-heavy
	// stages it applies to (Korthikanti et al. 2022): replicated-region
	// activations and compute shrink by tp at equal communication
	// volume — which is why inc-sp is eligible for both compute and
	// memory bottlenecks and dec-sp for neither (it exists as the
	// inverse for completeness).
	{Name: "inc-sp", Mechanism: "sequence", Comp: Down, Comm: Flat, Mem: Down,
		apply: applyIncSP},
	{Name: "dec-sp", Mechanism: "sequence", Comp: Up, Comm: Flat, Mem: Up,
		apply: applyDecSP},
}

// extendedByResource memoizes EligibleExtended per resource. Built as
// fresh slices (not appended onto Eligible's memo, whose backing array
// must never be extended in place) so lookups are allocation-free and
// safe under the concurrent stage-count searches.
var extendedByResource = func() (m [3][]*Primitive) {
	for _, r := range []Resource{Comp, Comm, Mem} {
		m[r] = append([]*Primitive(nil), Eligible(r)...)
		for i := range ExtensionTable {
			if ExtensionTable[i].effect(r) == Down {
				m[r] = append(m[r], &ExtensionTable[i])
			}
		}
	}
	return m
}()

// EligibleExtended returns the primitives (base plus extension table)
// that decrease consumption of r.
func EligibleExtended(r Resource) []*Primitive {
	return extendedByResource[r]
}

func applyIncZR(s *searcher, cfg *config.Config, stage int) []*config.Config {
	return toggleZeRO(s, cfg, stage, true)
}

func applyIncSP(s *searcher, cfg *config.Config, stage int) []*config.Config {
	return toggleSeqPar(s, cfg, stage, true)
}

func applyDecSP(s *searcher, cfg *config.Config, stage int) []*config.Config {
	return toggleSeqPar(s, cfg, stage, false)
}

// toggleSeqPar flips sequence parallelism for every eligible op
// (tp > 1) in the stage. Returns nil when nothing would change.
func toggleSeqPar(s *searcher, cfg *config.Config, stage int, on bool) []*config.Config {
	st := &cfg.Stages[stage]
	changed := false
	for j := range st.Ops {
		if st.Ops[j].TP > 1 && st.Ops[j].SeqPar != on {
			changed = true
		}
	}
	if !changed {
		return nil
	}
	c := s.clone(cfg)
	c.MutStage(stage, func(st *config.Stage) {
		for j := range st.Ops {
			if st.Ops[j].TP > 1 {
				st.Ops[j].SeqPar = on
			}
		}
	})
	return s.keepOut(append(s.applyOut(), c))
}

func applyDecZR(s *searcher, cfg *config.Config, stage int) []*config.Config {
	return toggleZeRO(s, cfg, stage, false)
}

// toggleZeRO flips optimizer-state sharding for every eligible op
// (dp > 1) in the stage. Returns nil when nothing would change.
func toggleZeRO(s *searcher, cfg *config.Config, stage int, on bool) []*config.Config {
	st := &cfg.Stages[stage]
	changed := false
	for j := range st.Ops {
		if st.Ops[j].DP > 1 && st.Ops[j].ZeRO != on {
			changed = true
		}
	}
	if !changed {
		return nil
	}
	c := s.clone(cfg)
	c.MutStage(stage, func(st *config.Stage) {
		for j := range st.Ops {
			if st.Ops[j].DP > 1 {
				st.Ops[j].ZeRO = on
			}
		}
	})
	return s.keepOut(append(s.applyOut(), c))
}
