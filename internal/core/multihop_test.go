package core

import (
	"testing"
	"time"

	"aceso/internal/config"
	"aceso/internal/model"
)

func TestAttachRecomputeFixesOOM(t *testing.T) {
	g, _ := model.GPT3("2.6B")
	s := newSearcher(t, g, 8)
	// A 1-stage full-dp config on 8 GPUs is far over memory.
	cfg := mustBalanced(t, g, 8, 1, 8)
	for j := range cfg.Stages[0].Ops {
		cfg.Stages[0].Ops[j] = config.OpSetting{TP: 1, DP: 8, Dim: 0}
	}
	if s.estimate(cfg).Feasible {
		t.Skip("config unexpectedly feasible; OOM setup needed")
	}
	fixed := s.attachRecompute(cfg)
	if fixed.Hash() == cfg.Hash() {
		t.Fatal("attachRecompute changed nothing on an OOM config")
	}
	if fixed.RecomputedOps(0) == 0 {
		t.Error("no ops recomputed")
	}
	// It may not fully fix very large models, but memory must drop.
	if s.estimate(fixed).PeakMem >= s.estimate(cfg).PeakMem {
		t.Error("attachRecompute did not reduce memory")
	}
}

func TestAttachRecomputeNoopWhenFeasible(t *testing.T) {
	g, _ := model.GPT3("350M")
	s := newSearcher(t, g, 4)
	cfg := mustBalanced(t, g, 4, 2, 1)
	if !s.estimate(cfg).Feasible {
		t.Fatal("setup should be feasible")
	}
	if got := s.attachRecompute(cfg); got.Hash() != cfg.Hash() {
		t.Error("attachRecompute modified a feasible config")
	}
}

func TestPopBestUnexploredDeterministic(t *testing.T) {
	g := model.Uniform(8, 1e10, 1e6, 1e5, 64)
	s := newSearcher(t, g, 4)
	mk := func(mbs int, score float64) {
		c, err := config.Balanced(g, 4, 2, mbs)
		if err != nil {
			t.Fatal(err)
		}
		s.pool[c.Hash()] = Candidate{Config: c, Score: score}
	}
	mk(1, 3)
	mk(2, 1)
	mk(4, 2)
	first := s.popBestUnexplored()
	if first.MicroBatch != 2 {
		t.Errorf("popped mbs=%d, want 2 (lowest score)", first.MicroBatch)
	}
	second := s.popBestUnexplored()
	if second.MicroBatch != 4 {
		t.Errorf("popped mbs=%d, want 4", second.MicroBatch)
	}
	if s.popBestUnexplored() == nil || s.popBestUnexplored() != nil {
		t.Error("pool should drain to empty")
	}
}

func TestMultiHopFindsImprovement(t *testing.T) {
	// Start from a deliberately imbalanced 2-stage split; the
	// bottleneck stage should be improvable within a hop or two.
	g := model.Uniform(32, 5e11, 1e7, 1e6, 64)
	s := newSearcher(t, g, 4)
	cfg := mustBalanced(t, g, 4, 2, 4)
	// Skew: stage 0 gets 26 ops, stage 1 only 6.
	cfg.Stages[0].End = 26
	cfg.Stages[1].Start = 26
	cfg.Stages[0].Ops = make([]config.OpSetting, 26)
	cfg.Stages[1].Ops = make([]config.OpSetting, 6)
	for j := range cfg.Stages[0].Ops {
		cfg.Stages[0].Ops[j] = config.OpSetting{TP: 2, DP: 1, Dim: 0}
	}
	for j := range cfg.Stages[1].Ops {
		cfg.Stages[1].Ops[j] = config.OpSetting{TP: 2, DP: 1, Dim: 0}
	}
	if err := cfg.Validate(g, 4); err != nil {
		t.Fatal(err)
	}
	initScore := s.score(cfg, s.estimate(cfg))
	bns := Bottlenecks(s.estimate(cfg), s.cluster.MemoryBytes)
	if bns[0].Stage != 0 {
		t.Fatalf("expected stage 0 to be the bottleneck, got %d", bns[0].Stage)
	}
	found, hops, prim := s.multiHop(cfg, s.estimate(cfg), bns[0], 0, initScore)
	if found == nil {
		t.Fatal("multiHop found no improvement on a grossly imbalanced pipeline")
	}
	if prim == "" {
		t.Error("improvement reported with no primitive name")
	}
	if hops < 1 || hops > s.opts.MaxHops {
		t.Errorf("hops = %d, want within [1, %d]", hops, s.opts.MaxHops)
	}
	if got := s.score(found, s.estimate(found)); got >= initScore {
		t.Errorf("claimed improvement scores %v ≥ initial %v", got, initScore)
	}
}

func TestMultiHopRespectsMaxHops(t *testing.T) {
	g := model.Uniform(16, 1e10, 1e6, 1e5, 64)
	s := newSearcher(t, g, 4)
	s.opts.MaxHops = 0 // no hops allowed at all
	cfg := mustBalanced(t, g, 4, 2, 4)
	bns := Bottlenecks(s.estimate(cfg), s.cluster.MemoryBytes)
	if found, _, _ := s.multiHop(cfg, s.estimate(cfg), bns[0], 0, 1e30); found != nil {
		t.Error("multiHop produced a result with MaxHops=0")
	}
}

func TestMultiHopDeadlineCutoff(t *testing.T) {
	g, _ := model.GPT3("350M")
	s := newSearcher(t, g, 4)
	s.deadline = time.Now().Add(-time.Second) // already expired
	cfg := mustBalanced(t, g, 4, 2, 1)
	bns := Bottlenecks(s.estimate(cfg), s.cluster.MemoryBytes)
	if found, _, _ := s.multiHop(cfg, s.estimate(cfg), bns[0], 0, 1e30); found != nil {
		t.Error("expired search still explored")
	}
}

func TestVisitedDedupAcrossHops(t *testing.T) {
	// Every estimated config during a short search must have a unique
	// hash (invariant 7: the search never revisits).
	g, _ := model.GPT3("350M")
	s := newSearcher(t, g, 4)
	s.opts.MaxIterations = 3
	init := mustBalanced(t, g, 4, 2, 1)
	s.run(init)
	if len(s.cache) != s.explored {
		t.Errorf("estimate cache has %d entries but explored counted %d", len(s.cache), s.explored)
	}
}

func TestTraceNilSafe(t *testing.T) {
	// A nil *Trace must absorb all calls (search without CollectTrace).
	var tr *Trace
	tr.addIteration(IterationTrace{})
	tr.observe(1)
	if tr.Iterations() != nil || tr.Convergence() != nil {
		t.Error("nil trace returned data")
	}
	if tr.TriesHistogram() != nil || tr.HopsHistogram() != nil {
		t.Error("nil trace histograms non-nil")
	}
}
