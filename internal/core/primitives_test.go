package core

import (
	"testing"
	"testing/quick"
	"time"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
)

// newSearcher builds a searcher suitable for exercising primitive
// applications directly.
func newSearcher(t *testing.T, g *model.Graph, devices int) *searcher {
	t.Helper()
	cl := hardware.DGX1V100(4).Restrict(devices)
	return &searcher{
		graph:    g,
		cluster:  cl,
		pm:       perfmodel.New(g, cl, 1),
		opts:     Options{}.withDefaults(),
		deadline: time.Now().Add(time.Minute),
		visited:  make(map[uint64]bool),
		pool:     make(map[uint64]Candidate),
		cache:    make(map[uint64]*perfmodel.Estimate),
		trace:    nil,
	}
}

func mustBalanced(t *testing.T, g *model.Graph, devices, stages, mbs int) *config.Config {
	t.Helper()
	c, err := config.Balanced(g, devices, stages, mbs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTableShape(t *testing.T) {
	if len(Table) != 10 {
		t.Fatalf("Table has %d primitives, want 10 (Table 1)", len(Table))
	}
	// Each inc/dec pair must have opposite non-flat trends.
	pairs := [][2]string{
		{"inc-op#", "dec-op#"}, {"inc-mbs", "dec-mbs"},
		{"inc-dp", "dec-dp"}, {"inc-tp", "dec-tp"}, {"inc-rc", "dec-rc"},
	}
	for _, pr := range pairs {
		a, b := PrimitiveByName(pr[0]), PrimitiveByName(pr[1])
		if a == nil || b == nil {
			t.Fatalf("missing primitive pair %v", pr)
		}
		for _, r := range []Resource{Comp, Comm, Mem} {
			ea, eb := a.effect(r), b.effect(r)
			if ea == Flat && eb == Flat {
				continue
			}
			if ea != -eb {
				t.Errorf("%s/%s: %v trends %d/%d not opposite", a.Name, b.Name, r, ea, eb)
			}
		}
	}
	if PrimitiveByName("nonsense") != nil {
		t.Error("PrimitiveByName(nonsense) should be nil")
	}
}

func TestEligibleMatchesPaperExample(t *testing.T) {
	// §1's example: a compute- and memory-intensive bottleneck with
	// spare communication should surface inc-tp as eligible.
	memDown := names(Eligible(Mem))
	if !contains(memDown, "inc-tp") || !contains(memDown, "inc-dp") ||
		!contains(memDown, "inc-rc") || !contains(memDown, "dec-op#") ||
		!contains(memDown, "dec-mbs") {
		t.Errorf("Eligible(Mem) = %v, missing expected primitives", memDown)
	}
	compDown := names(Eligible(Comp))
	if !contains(compDown, "inc-tp") || !contains(compDown, "dec-rc") ||
		!contains(compDown, "inc-mbs") {
		t.Errorf("Eligible(Comp) = %v, missing expected primitives", compDown)
	}
	commDown := names(Eligible(Comm))
	if !contains(commDown, "dec-tp") || !contains(commDown, "dec-dp") {
		t.Errorf("Eligible(Comm) = %v, missing expected primitives", commDown)
	}
	if contains(commDown, "inc-tp") {
		t.Error("inc-tp must not be eligible for communication bottlenecks")
	}
}

func names(ps []*Primitive) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// checkPreserved asserts the semantic-preservation invariant: a
// primitive never changes the op coverage, total devices, or batch.
func checkPreserved(t *testing.T, s *searcher, before *config.Config, after []*config.Config, prim string) {
	t.Helper()
	for _, c := range after {
		if c == nil {
			continue
		}
		if err := c.Validate(s.graph, s.cluster.TotalDevices()); err != nil {
			t.Errorf("%s produced invalid config: %v", prim, err)
			continue
		}
		if c.TotalDevices() != before.TotalDevices() {
			t.Errorf("%s changed total devices %d → %d", prim, before.TotalDevices(), c.TotalDevices())
		}
	}
}

func TestAllPrimitivesPreserveSemantics(t *testing.T) {
	g, _ := model.GPT3("350M")
	s := newSearcher(t, g, 8)
	cfg := mustBalanced(t, g, 8, 4, 4)
	// Give the config some dp so dec-dp/retile paths activate.
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j] = config.OpSetting{TP: 1, DP: cfg.Stages[i].Devices, Dim: 0}
		}
	}
	if err := cfg.Validate(g, 8); err != nil {
		t.Fatal(err)
	}
	for i := range Table {
		prim := &Table[i]
		got := prim.apply(s, cfg, 1)
		checkPreserved(t, s, cfg, got, prim.Name)
	}
}

func TestMoveOps(t *testing.T) {
	g := model.Uniform(20, 1e10, 1e6, 1e5, 64)
	s := newSearcher(t, g, 4)
	cfg := mustBalanced(t, g, 4, 2, 2)

	// Move 3 ops from stage 1 back to stage 0.
	c := moveOps(s, cfg, 1, -1, 3)
	if c == nil {
		t.Fatal("moveOps returned nil")
	}
	if err := c.Validate(g, 4); err != nil {
		t.Fatal(err)
	}
	if got := c.Stages[0].NumOps(); got != cfg.Stages[0].NumOps()+3 {
		t.Errorf("stage 0 has %d ops, want %d", got, cfg.Stages[0].NumOps()+3)
	}
	// Move forward.
	c2 := moveOps(s, cfg, 0, +1, 2)
	if c2 == nil {
		t.Fatal("forward moveOps returned nil")
	}
	if err := c2.Validate(g, 4); err != nil {
		t.Fatal(err)
	}
	// Donor must keep one op.
	if c := moveOps(s, cfg, 0, +1, cfg.Stages[0].NumOps()); c != nil {
		t.Error("moveOps emptied the donor stage")
	}
	// Out-of-range target.
	if c := moveOps(s, cfg, 0, -1, 1); c != nil {
		t.Error("moveOps past stage 0 should fail")
	}
	if c := moveOps(s, cfg, 1, +1, 1); c != nil {
		t.Error("moveOps past the last stage should fail")
	}
}

func TestMoveOpsPreservesDims(t *testing.T) {
	// A layernorm op (single dim) moving into a stage whose template
	// op is a matmul must keep Dim 0 — the bug class where templates
	// carried out-of-range dims.
	g, _ := model.GPT3("350M")
	s := newSearcher(t, g, 4)
	cfg := mustBalanced(t, g, 4, 2, 1)
	for k := 1; k < 16; k++ {
		for _, dir := range []int{-1, +1} {
			for _, from := range []int{0, 1} {
				c := moveOps(s, cfg, from, dir, k)
				if c == nil {
					continue
				}
				if err := c.Validate(g, 4); err != nil {
					t.Fatalf("moveOps(from=%d dir=%d k=%d): %v", from, dir, k, err)
				}
			}
		}
	}
}

func TestIncDecMBS(t *testing.T) {
	g := model.Uniform(8, 1e10, 1e6, 1e5, 64)
	s := newSearcher(t, g, 4)
	cfg := mustBalanced(t, g, 4, 2, 4)

	up := applyIncMBS(s, cfg, 0)
	if len(up) != 1 || up[0].MicroBatch != 8 {
		t.Fatalf("inc-mbs: got %v", up)
	}
	down := applyDecMBS(s, cfg, 0)
	if len(down) != 1 || down[0].MicroBatch != 2 {
		t.Fatalf("dec-mbs: got %v", down)
	}
	// dec-mbs must respect dp | mbs.
	c := cfg.Clone()
	for j := range c.Stages[0].Ops {
		c.Stages[0].Ops[j] = config.OpSetting{TP: 1, DP: 4, Dim: 0} // dp=4 == mbs
	}
	if got := applyDecMBS(s, c, 0); got != nil {
		t.Error("dec-mbs below max dp should be rejected")
	}
	// inc-mbs cannot exceed global batch divisibility.
	c2 := cfg.Clone()
	c2.MicroBatch = g.GlobalBatch
	if got := applyIncMBS(s, c2, 0); got != nil {
		t.Error("inc-mbs beyond global batch should be rejected")
	}
}

func TestGrowShrinkMoveDevices(t *testing.T) {
	g := model.Uniform(16, 1e10, 1e6, 1e5, 64)
	s := newSearcher(t, g, 16)
	cfg := mustBalanced(t, g, 16, 3, 4) // devices 4,4,8

	grown := applyGrow(s, cfg, 0, false) // inc-tp on stage 0: partner must hold 8
	if len(grown) == 0 {
		t.Fatal("applyGrow produced nothing")
	}
	for _, c := range grown {
		if c.Stages[0].Devices != 8 || c.Stages[2].Devices != 4 {
			t.Errorf("grow: devices = %d,%d,%d, want 8,4,4",
				c.Stages[0].Devices, c.Stages[1].Devices, c.Stages[2].Devices)
		}
		if err := c.Validate(g, 16); err != nil {
			t.Error(err)
		}
	}
	shrunk := applyShrink(s, cfg, 2, false) // dec-tp on stage 2: partner must hold 4
	if len(shrunk) == 0 {
		t.Fatal("applyShrink produced nothing")
	}
	for _, c := range shrunk {
		if c.Stages[2].Devices != 4 {
			t.Errorf("shrink: stage 2 has %d devices, want 4", c.Stages[2].Devices)
		}
		if c.Stages[0].Devices+c.Stages[1].Devices != 12 {
			t.Errorf("shrink: freed devices not granted to a partner: %d,%d",
				c.Stages[0].Devices, c.Stages[1].Devices)
		}
		if err := c.Validate(g, 16); err != nil {
			t.Error(err)
		}
	}
	// No eligible partner: even 4,4 split has no stage with 8 devices.
	even := mustBalanced(t, g, 8, 2, 4)
	if got := applyGrow(s, even, 0, false); got != nil {
		t.Error("grow without an exactly-double partner should fail")
	}
	// Single-stage configs cannot trade devices.
	solo := mustBalanced(t, g, 8, 1, 4)
	if got := applyGrow(s, solo, 0, false); got != nil {
		t.Error("grow on a 1-stage pipeline should fail")
	}
}

func TestRetile(t *testing.T) {
	g := model.Uniform(8, 1e10, 1e6, 1e5, 64)
	s := newSearcher(t, g, 8)
	cfg := mustBalanced(t, g, 8, 1, 8) // tp=8, dp=1

	c := retile(s, cfg, 0, true) // toward dp
	if c == nil {
		t.Fatal("retile toDP failed")
	}
	op := c.Stages[0].Ops[0]
	if op.TP != 4 || op.DP != 2 {
		t.Errorf("retile: tp=%d dp=%d, want 4,2", op.TP, op.DP)
	}
	if c.Stages[0].Devices != 8 {
		t.Error("retile changed device count")
	}
	// Reverse restores the original (inc∘dec identity, invariant 3).
	back := retile(s, c, 0, false)
	if back == nil {
		t.Fatal("reverse retile failed")
	}
	if back.Hash() != cfg.Hash() {
		t.Error("retile toDP then toTP should restore the original hash")
	}
	// tp=1 cannot retile further toward dp... (needs tp ≥ 2)
	flat := cfg.Clone()
	for j := range flat.Stages[0].Ops {
		flat.Stages[0].Ops[j] = config.OpSetting{TP: 1, DP: 8, Dim: 0}
	}
	if got := retile(s, flat, 0, true); got != nil {
		t.Error("retile toDP with tp=1 should fail")
	}
}

func TestIncDecRC(t *testing.T) {
	g, _ := model.GPT3("350M")
	s := newSearcher(t, g, 4)
	cfg := mustBalanced(t, g, 4, 2, 1)

	inc := applyIncRC(s, cfg, 0)
	if len(inc) == 0 {
		t.Fatal("inc-rc produced nothing")
	}
	found := false
	for _, c := range inc {
		n := c.RecomputedOps(0)
		if n == 0 {
			t.Error("inc-rc candidate with no recomputed ops")
		}
		if n > 0 {
			found = true
		}
		if c.RecomputedOps(1) != 0 {
			t.Error("inc-rc leaked into another stage")
		}
	}
	if !found {
		t.Fatal("no candidate recomputes anything")
	}
	// dec-rc on a fully-recomputed stage.
	full := cfg.Clone()
	for j := range full.Stages[0].Ops {
		full.Stages[0].Ops[j].Recompute = true
	}
	dec := applyDecRC(s, full, 0)
	if len(dec) == 0 {
		t.Fatal("dec-rc produced nothing")
	}
	for _, c := range dec {
		if c.RecomputedOps(0) >= full.RecomputedOps(0) {
			t.Error("dec-rc did not reduce recomputed ops")
		}
	}
	// dec-rc with nothing to clear.
	if got := applyDecRC(s, cfg, 0); got != nil {
		t.Error("dec-rc on rc-free stage should be nil")
	}
}

func TestIncRCPicksLargestActivations(t *testing.T) {
	// With skewed activations, the first recompute target must be the
	// op with the largest stash (§4.1 greedy).
	g := model.Skewed(8, 1e10, 1e6, 1e6, 1.0, 64)
	s := newSearcher(t, g, 4)
	cfg := mustBalanced(t, g, 4, 1, 4)
	cands := applyIncRC(s, cfg, 0)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	c := cands[0] // k=1 candidate
	if !c.Stages[0].Ops[7].Recompute {
		t.Errorf("expected heaviest op (7) recomputed first; got %+v", c.Stages[0].Ops)
	}
}

func TestOpKs(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{1, nil},
		{2, []int{1}},
		{3, []int{1}},
		{8, []int{1, 2, 4}},
		{100, []int{1, 2, 4, 8, 16, 32}},
	}
	for _, tc := range cases {
		got := opKs(nil, tc.n)
		if len(got) != len(tc.want) {
			t.Errorf("opKs(%d) = %v, want %v", tc.n, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("opKs(%d) = %v, want %v", tc.n, got, tc.want)
				break
			}
		}
	}
}

// Property: every candidate every primitive generates from a valid
// config is itself valid (invariant 1), for varied stage counts.
func TestPrimitiveValidityProperty(t *testing.T) {
	g, _ := model.GPT3("350M")
	s := newSearcher(t, g, 8)
	f := func(stRaw, mbsRaw, primRaw, stageRaw uint8) bool {
		stages := int(stRaw%4) + 1
		mbs := 1 << (mbsRaw % 3)
		cfg, err := config.Balanced(g, 8, stages, mbs)
		if err != nil {
			return true
		}
		prim := &Table[int(primRaw)%len(Table)]
		stage := int(stageRaw) % stages
		for _, c := range prim.apply(s, cfg, stage) {
			if c == nil {
				continue
			}
			if err := c.Validate(g, 8); err != nil {
				t.Logf("%s on stage %d/%d: %v", prim.Name, stage, stages, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
