package core

import (
	"testing"

	"aceso/internal/model"
)

func TestBottleneckRankingByTime(t *testing.T) {
	// A skewed model split into equal op-count stages leaves the
	// heaviest ops (the end) in the last stage; Heuristic-1 must rank
	// it first when everything fits in memory.
	g := model.Skewed(16, 5e10, 1e6, 1e5, 2.0, 64)
	s := newSearcher(t, g, 4)
	cfg := mustBalanced(t, g, 4, 2, 4)
	// Force an op-count-balanced (not FLOPs-balanced) split.
	cfg.Stages[0].End = 8
	cfg.Stages[1].Start = 8
	cfg.Stages[0].Ops = cfg.Stages[0].Ops[:8]
	for len(cfg.Stages[1].Ops) < 8 {
		cfg.Stages[1].Ops = append(cfg.Stages[1].Ops, cfg.Stages[1].Ops[0])
	}
	if err := cfg.Validate(g, 4); err != nil {
		t.Fatal(err)
	}
	est := s.estimate(cfg)
	if !est.Feasible {
		t.Fatal("test setup should be feasible")
	}
	bns := Bottlenecks(est, s.cluster.MemoryBytes)
	if len(bns) != 2 {
		t.Fatalf("got %d bottlenecks, want 2", len(bns))
	}
	if bns[0].Stage != 1 {
		t.Errorf("top bottleneck = stage %d, want 1 (heavier)", bns[0].Stage)
	}
	for _, r := range bns[0].Resources {
		if r == Mem {
			t.Error("feasible, low-pressure config should not list Mem")
		}
	}
}

func TestBottleneckOOMPrioritizesMemory(t *testing.T) {
	g, _ := model.GPT3("13B")
	s := newSearcher(t, g, 4)
	cfg := mustBalanced(t, g, 4, 2, 1)
	est := s.estimate(cfg)
	if est.Feasible {
		t.Skip("13B unexpectedly fits; test requires OOM")
	}
	bns := Bottlenecks(est, s.cluster.MemoryBytes)
	if bns[0].Resources[0] != Mem {
		t.Errorf("OOM bottleneck resources = %v, want Mem first", bns[0].Resources)
	}
	// Ranked by memory: first stage listed must have the largest peak.
	worst := bns[0].Stage
	for i := range est.Stages {
		if est.Stages[i].PeakMem > est.Stages[worst].PeakMem {
			t.Errorf("stage %d has more memory than ranked-first stage %d", i, worst)
		}
	}
}

func TestBottleneckResourceOrderByProportion(t *testing.T) {
	g, _ := model.GPT3("350M")
	s := newSearcher(t, g, 4)
	cfg := mustBalanced(t, g, 4, 2, 1)
	est := s.estimate(cfg)
	bns := Bottlenecks(est, s.cluster.MemoryBytes)
	for _, bn := range bns {
		// Comp and Comm must both always be present, in some order.
		hasComp, hasComm := false, false
		for _, r := range bn.Resources {
			switch r {
			case Comp:
				hasComp = true
			case Comm:
				hasComm = true
			}
		}
		if !hasComp || !hasComm {
			t.Errorf("stage %d resources = %v, want both comp and comm", bn.Stage, bn.Resources)
		}
	}
}

func TestProportion(t *testing.T) {
	if got := proportion(2, 8); got != 0.25 {
		t.Errorf("proportion(2,8) = %v", got)
	}
	if got := proportion(1, 0); got != 0 {
		t.Errorf("proportion(1,0) = %v, want 0", got)
	}
}

func TestResourceString(t *testing.T) {
	if Comp.String() != "comp" || Comm.String() != "comm" || Mem.String() != "mem" {
		t.Error("Resource.String mismatch")
	}
	if Resource(42).String() == "" {
		t.Error("unknown resource should stringify")
	}
}
