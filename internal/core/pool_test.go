package core

import (
	"sync"
	"testing"
)

// TestRunWorkStealing checks the scheduler's contract: every task runs
// exactly once, worker indices stay in range, and tasks on the same
// worker never overlap (per-worker state such as a config arena needs
// no locking).
func TestRunWorkStealing(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 32} {
			tasks := make([]int, n)
			for i := range tasks {
				tasks[i] = i * 3 // distinct values, priority order
			}
			var mu sync.Mutex
			seen := make(map[int]int, n)
			active := make(map[int]bool) // worker → currently in run()
			runWorkStealing(workers, tasks, func(w, task int) {
				mu.Lock()
				if w < 0 || w >= workers {
					t.Errorf("workers=%d n=%d: worker index %d out of range", workers, n, w)
				}
				if active[w] {
					t.Errorf("workers=%d n=%d: worker %d re-entered while running", workers, n, w)
				}
				active[w] = true
				seen[task]++
				mu.Unlock()

				mu.Lock()
				active[w] = false
				mu.Unlock()
			})
			if len(seen) != n {
				t.Errorf("workers=%d n=%d: %d distinct tasks ran, want %d", workers, n, len(seen), n)
			}
			for task, c := range seen {
				if c != 1 {
					t.Errorf("workers=%d n=%d: task %d ran %d times, want once", workers, n, task, c)
				}
			}
		}
	}
}

// TestRunWorkStealingSequentialOrder pins the single-worker fallback:
// with one worker (or one task) the tasks run in the given priority
// order on worker 0, which is what makes GOMAXPROCS=1 searches
// deterministic.
func TestRunWorkStealingSequentialOrder(t *testing.T) {
	tasks := []int{9, 4, 7, 1}
	var order []int
	runWorkStealing(1, tasks, func(w, task int) {
		if w != 0 {
			t.Errorf("worker %d used in sequential fallback, want 0", w)
		}
		order = append(order, task)
	})
	for i, task := range tasks {
		if order[i] != task {
			t.Fatalf("sequential fallback ran %v, want %v", order, tasks)
		}
	}
}

// TestStealQueueEnds pins the deque policy: the owner pops the front
// (its most expensive remaining task), a thief steals the back (the
// victim's cheapest).
func TestStealQueueEnds(t *testing.T) {
	q := &stealQueue{tasks: []int{10, 20, 30}}
	if v, ok := q.popFront(); !ok || v != 10 {
		t.Fatalf("popFront = %d, %v; want 10, true", v, ok)
	}
	if v, ok := q.stealBack(); !ok || v != 30 {
		t.Fatalf("stealBack = %d, %v; want 30, true", v, ok)
	}
	if v, ok := q.popFront(); !ok || v != 20 {
		t.Fatalf("popFront = %d, %v; want 20, true", v, ok)
	}
	if _, ok := q.popFront(); ok {
		t.Fatal("popFront on empty queue reported a task")
	}
	if _, ok := q.stealBack(); ok {
		t.Fatal("stealBack on empty queue reported a task")
	}
}
