package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/obs"
	"aceso/internal/perfmodel"
)

// infeasibleScore is the base score of out-of-memory configurations;
// among infeasible configs, less memory excess scores better, so the
// search makes progress toward feasibility ("safety first").
const infeasibleScore = 1e9

// poolCap bounds the unexplored-configuration pool: long searches
// (the paper runs 200 s) would otherwise retain every candidate ever
// estimated. When the pool exceeds the cap it is pruned back to the
// best poolCap/2 entries — half the cap of insert headroom before the
// next prune, and the restart heuristic only ever wants the best few
// anyway. (Historically the prune truncated to poolCap with a 2×cap
// trigger, so a hot pool re-pruned after every poolCap inserts while
// holding twice the memory the cap promised.)
const poolCap = 4096

// Initializer builds the starting configuration for one pipeline
// depth. Exp#7 swaps in imbalanced variants.
type Initializer func(g *model.Graph, devices, stages, mbs int) (*config.Config, error)

// Options tunes the Aceso search.
type Options struct {
	// TimeBudget bounds the search wall time (§3; default 2s).
	TimeBudget time.Duration
	// MaxHops bounds the multi-hop search depth (default 7, §5.1).
	MaxHops int
	// BranchFactor bounds how many ranked candidates each hop recurses
	// into (default 3).
	BranchFactor int
	// TopK is how many final candidates to return (default 5; §5.1
	// evaluates the top five in the runtime and keeps the fastest).
	TopK int
	// StageCounts lists the pipeline depths to search in parallel;
	// empty selects an automatic set (§4.3).
	StageCounts []int
	// InitMicroBatch is the starting microbatch size (default 1).
	InitMicroBatch int
	// MaxIterations bounds top-level iterations per stage count
	// (0 = unlimited; used to make tests deterministic).
	MaxIterations int
	// Seed drives every random choice (only used when Heuristic-2 is
	// disabled) and the profiler database.
	Seed int64
	// DisableHeuristic2 explores primitives in random order (the
	// ablation of Exp#5 / Figure 12).
	DisableHeuristic2 bool
	// DisableFineTune skips the op-level fine-tuning pass (§4.2).
	DisableFineTune bool
	// ExtendedPrimitives adds the extension primitives (ZeRO-1
	// optimizer-state sharding) to the searched space — beyond the
	// paper's Table 1, per §3.2.1's extensibility note.
	ExtendedPrimitives bool
	// Initializer overrides the default balanced initial configuration.
	Initializer Initializer
	// CollectTrace records per-iteration statistics and the
	// convergence curve (Exp#5–7).
	CollectTrace bool
	// Tracer receives structured observability events: one
	// obs.IterationEvent per top-level iteration (bottleneck stage and
	// resource proportions, accepted primitive, hops, backtracks,
	// dedup hits, pool restarts) and one OnEstimate call per newly
	// estimated configuration (the breakdown auditor's hook). nil —
	// the default — disables tracing; the hot path then pays one
	// pointer check per event site (DESIGN.md §5d).
	Tracer obs.Tracer
	// Metrics, when non-nil, accumulates search counters in the given
	// registry: candidates estimated, dedup hits, primitives applied
	// per kind, the multi-hop depth histogram, per-iteration timings,
	// and the perfmodel stage-cache hit/miss snapshot. nil disables
	// metric collection entirely.
	Metrics *obs.Registry
	// Model optionally supplies a pre-built performance model (shared
	// profiling database); one is created when nil.
	Model *perfmodel.Model
	// RiskRecoverySeconds and RiskCheckpointSeconds parameterize the
	// risk-aware objective selected automatically on clusters with spot
	// capacity (see risk.go): the modeled cost of recovering from one
	// preemption (replan + reshard + restore) and of writing one
	// checkpoint. 0 selects defaults proportional to each candidate's
	// own iteration time (10× and 1×), keeping the objective
	// scale-free. Ignored on hazard-free clusters.
	RiskRecoverySeconds   float64
	RiskCheckpointSeconds float64
}

func (o Options) withDefaults() Options {
	if o.TimeBudget <= 0 {
		o.TimeBudget = 2 * time.Second
	}
	if o.MaxHops <= 0 {
		o.MaxHops = 7
	}
	if o.BranchFactor <= 0 {
		o.BranchFactor = 3
	}
	if o.TopK <= 0 {
		o.TopK = 5
	}
	if o.InitMicroBatch <= 0 {
		o.InitMicroBatch = 1
	}
	if o.Initializer == nil {
		o.Initializer = config.Balanced
	}
	return o
}

// Candidate pairs a configuration with its estimate and score.
type Candidate struct {
	Config   *config.Config
	Estimate *perfmodel.Estimate
	Score    float64

	// hash is Config.Hash(), captured at construction so comparators
	// and dedup loops never re-hash inside sorts.
	hash uint64
}

// less is the canonical candidate order: score, then hash tie-break.
func (c *Candidate) less(o *Candidate) bool {
	if c.Score != o.Score {
		return c.Score < o.Score
	}
	return c.hash < o.hash
}

// SearchError describes the failure of one per-stage-count search
// worker. A panicking worker is isolated — its goroutine recovers,
// records the panic here, and the remaining workers finish — so a bug
// in one searcher degrades the result instead of killing the process.
type SearchError struct {
	StageCount int    // pipeline depth the worker searched
	Err        error  // non-panic failure (initializer, validation)
	PanicValue any    // non-nil when the worker panicked
	Stack      string // goroutine stack at the panic site
}

// Error implements the error interface.
func (e *SearchError) Error() string {
	if e.PanicValue != nil {
		return fmt.Sprintf("core: stage-count %d worker panicked: %v", e.StageCount, e.PanicValue)
	}
	return fmt.Sprintf("core: stage-count %d worker failed: %v", e.StageCount, e.Err)
}

// Unwrap exposes the wrapped non-panic cause for errors.Is/As.
func (e *SearchError) Unwrap() error { return e.Err }

// Result is the outcome of a search.
type Result struct {
	Best       Candidate
	TopK       []Candidate // ranked, deduplicated, ≤ Options.TopK
	Explored   int         // configurations estimated (Exp#4's metric)
	Iterations int         // top-level iterations across all workers
	Elapsed    time.Duration
	Trace      *Trace // nil unless Options.CollectTrace

	// Partial is true when the search was interrupted before every
	// worker converged — the context was canceled, a deadline or the
	// TimeBudget fired mid-search, or a worker died. Best/TopK then
	// hold the best-so-far rather than the converged outcome; they are
	// still valid, fully-estimated configurations.
	Partial bool
	// Diagnostics records per-worker failures (panics, initializer
	// errors) that did not prevent the remaining workers from
	// producing a result. Empty on a clean search.
	Diagnostics []*SearchError

	// RecommendedCadence is the checkpoint cadence (iterations per
	// checkpoint) minimizing the risk-aware objective for Best on a
	// cluster with spot capacity — the elastic supervisor's
	// CheckpointEvery should track it. 0 on hazard-free clusters,
	// where the objective is plain iteration time.
	RecommendedCadence int
}

// defaultStageCounts picks the pipeline depths searched in parallel.
func defaultStageCounts(devices, ops int) []int {
	limit := devices // don't shadow the max builtin
	if ops < limit {
		limit = ops
	}
	var out []int
	for p := 1; p <= limit && p <= 8; p++ {
		out = append(out, p)
	}
	for _, p := range []int{12, 16, 24, 32} {
		if p <= limit {
			out = append(out, p)
		}
	}
	return out
}

// Search runs Aceso's iterative bottleneck-alleviation search for
// graph g over cluster cl (Algorithm 1), with one goroutine per
// candidate pipeline depth (§4.3), and returns the merged result.
func Search(g *model.Graph, cl hardware.Cluster, opts Options) (*Result, error) {
	return SearchContext(context.Background(), g, cl, opts)
}

// SearchContext is Search under a caller-supplied context: cancellation
// and the context deadline share one abort path with the TimeBudget
// (whichever fires first wins). The partial-result contract:
//
//   - Cancellation, deadline expiry and per-worker panics never lose
//     the best configuration found so far. Whenever at least one
//     worker produced a candidate, SearchContext returns a non-nil
//     Result (with Partial set) and a nil error — even if ctx was
//     already canceled on entry.
//   - A non-nil error is returned only when *no* candidate exists:
//     invalid inputs, or every worker failed before recording one.
//   - A panic inside one per-stage-count worker is recovered, reported
//     as a *SearchError in Result.Diagnostics, and the other workers
//     finish normally.
func SearchContext(ctx context.Context, g *model.Graph, cl hardware.Cluster, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	userInit := opts.Initializer
	opts = opts.withDefaults()
	// Risk-aware objective: on a cluster with live spot hazard, rank
	// candidates by expected (hazard-adjusted) iteration time instead
	// of nominal time. nil on hazard-free clusters — the gate that
	// keeps risk-blind searches bit-identical (explored=24701).
	risk := newRiskModel(&cl, opts)
	pm := opts.Model
	if pm == nil {
		pm = perfmodel.New(g, cl, opts.Seed)
	}
	if userInit == nil && len(cl.Classes) > 0 {
		// Heterogeneity-aware default start: on a mixed fleet the
		// FLOPs-uniform Balanced split parks half the model on the slow
		// class; seed each pipeline with operator shares proportional
		// to per-device capacity instead (class × fault derates at the
		// graph's precision). Gated strictly on device classes so
		// homogeneous searches — faulted or not — stay bit-identical.
		scales := make([]float64, cl.TotalDevices())
		for d := range scales {
			scales[d] = cl.DeviceFLOPSScale(d, g.Precision)
		}
		capInit := config.CapacityBalanced(scales)
		if risk != nil {
			// Spot capacity: bias the start so high-hazard devices
			// carry dp-replicated, cheap-to-reshard work. The bias is a
			// hint, not a commitment: each pipeline starts from whichever
			// of the hazard-biased and the plain capacity candidates the
			// risk objective prices cheaper, so a discount that lands the
			// biased split in a bad basin never strands the search.
			hazards := make([]float64, cl.TotalDevices())
			for d := range hazards {
				hazards[d] = cl.DeviceHazard(d)
			}
			opts.Initializer = riskSeedInitializer(pm, risk,
				config.RiskBalanced(scales, hazards), capInit)
		} else {
			opts.Initializer = capInit
		}
	}
	start := time.Now()
	deadline := start.Add(opts.TimeBudget)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	ctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	stageCounts := opts.StageCounts
	if len(stageCounts) == 0 {
		stageCounts = defaultStageCounts(cl.TotalDevices(), len(g.Ops))
	}

	var trace *Trace
	if opts.CollectTrace {
		trace = newTrace(start)
	}

	type workerOut struct {
		topK       []Candidate
		explored   int
		iterations int
		converged  bool
		err        *SearchError
	}
	outs := make([]workerOut, len(stageCounts))
	memNorm := cl.MinDeviceMemory()
	met := newSearchMeters(opts.Metrics)
	// Each task is one independent, deterministic per-stage-count
	// search; the work-stealing pool schedules the deepest pipelines
	// first so a straggling deep search starts early instead of
	// serializing behind its cheap siblings. Scheduling order cannot
	// change any task's result (tasks share only thread-safe caches
	// whose values are pure functions of their keys), so the merged
	// outcome is identical under any schedule.
	order := make([]int, len(stageCounts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return stageCounts[order[a]] > stageCounts[order[b]]
	})
	workers := runtime.GOMAXPROCS(0)
	if workers > len(order) {
		workers = len(order)
	}
	if workers < 1 {
		workers = 1
	}
	// One arena per worker, not per searcher: a worker runs its tasks
	// serially, so consecutive stage-count searches on the same worker
	// recycle each other's candidate memory instead of re-allocating
	// their whole working set from a cold free list.
	arenas := make([]config.Arena, workers)
	runWorkStealing(workers, order, func(w, wi int) {
		p := stageCounts[wi]
		// Panic isolation: one buggy searcher (a bad primitive, a
		// poisoned estimate) must not take down its siblings.
		defer func() {
			if r := recover(); r != nil {
				outs[wi] = workerOut{err: &SearchError{
					StageCount: p,
					PanicValue: r,
					Stack:      string(debug.Stack()),
				}}
			}
		}()
		init, err := opts.Initializer(g, cl.TotalDevices(), p, opts.InitMicroBatch)
		if err != nil {
			outs[wi] = workerOut{err: &SearchError{StageCount: p, Err: err}}
			return
		}
		s := &searcher{
			graph:    g,
			cluster:  cl,
			memNorm:  memNorm,
			pm:       pm,
			opts:     opts,
			deadline: deadline,
			done:     ctx.Done(),
			visited:  make(map[uint64]bool, 1024),
			pool:     make(map[uint64]Candidate, 1024),
			cache:    make(map[uint64]*perfmodel.Estimate, 1024),
			arena:    &arenas[w],
			rng:      rand.New(rand.NewSource(opts.Seed + int64(p)*7919)),
			trace:    trace,
			tracer:   opts.Tracer,
			met:      met,
			risk:     risk,
		}
		topK, iters, converged := s.run(init)
		outs[wi] = workerOut{topK: topK, explored: s.explored, iterations: iters, converged: converged}
	})

	if opts.Metrics != nil {
		// Mirror the performance model's own stage-cache counters into
		// the registry. Set (not Add): a shared Model accumulates across
		// searches and this snapshot reflects its lifetime totals.
		hits, misses := pm.StageCacheStats()
		opts.Metrics.Counter(obs.StageCacheHitsTotal).Set(int64(hits))
		opts.Metrics.Counter(obs.StageCacheMissesTotal).Set(int64(misses))
	}

	res := &Result{Trace: trace}
	var all []Candidate
	ok := false
	allConverged := true
	for _, o := range outs {
		if o.err != nil {
			res.Diagnostics = append(res.Diagnostics, o.err)
			continue
		}
		ok = true
		allConverged = allConverged && o.converged
		all = append(all, o.topK...)
		res.Explored += o.explored
		res.Iterations += o.iterations
	}
	res.Partial = len(res.Diagnostics) > 0 || !allConverged || ctx.Err() != nil
	if !ok {
		if len(res.Diagnostics) > 0 {
			return nil, fmt.Errorf("core: no pipeline depth is searchable: %w", res.Diagnostics[0])
		}
		return nil, fmt.Errorf("core: no pipeline depth is searchable")
	}
	sort.SliceStable(all, func(a, b int) bool {
		return all[a].less(&all[b])
	})
	seen := make(map[uint64]bool)
	for _, c := range all {
		if seen[c.hash] {
			continue
		}
		seen[c.hash] = true
		res.TopK = append(res.TopK, c)
		if len(res.TopK) == opts.TopK {
			break
		}
	}
	if len(res.TopK) == 0 {
		return nil, fmt.Errorf("core: search produced no candidates")
	}
	res.Best = res.TopK[0]
	if risk != nil && res.Best.Estimate != nil && res.Best.Estimate.Feasible {
		res.RecommendedCadence = risk.cadence(res.Best.Config, res.Best.Estimate.IterTime)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// searchMeters holds pre-resolved metric handles so the hot path pays
// one atomic add per event instead of a registry lookup. Built once
// per search when Options.Metrics is set; a nil *searchMeters disables
// metering.
type searchMeters struct {
	reg        *obs.Registry
	estimated  *obs.Counter
	dedup      *obs.Counter
	iterations *obs.Counter
	restarts   *obs.Counter
	prunes     *obs.Counter
	prims      map[string]*obs.Counter
	hopDepth   *obs.Histogram
	iterTime   *obs.Timer
}

// newSearchMeters resolves the search's metrics in reg.
func newSearchMeters(reg *obs.Registry) *searchMeters {
	if reg == nil {
		return nil
	}
	m := &searchMeters{
		reg:        reg,
		estimated:  reg.Counter(obs.CandidatesEstimatedTotal),
		dedup:      reg.Counter(obs.DedupHitsTotal),
		iterations: reg.Counter(obs.IterationsTotal),
		restarts:   reg.Counter(obs.PoolRestartsTotal),
		prunes:     reg.Counter(obs.PoolPrunesTotal),
		prims:      make(map[string]*obs.Counter),
		hopDepth:   reg.Histogram(obs.MultiHopDepth, 1, 2, 3, 4, 5, 6, 7, 8),
		iterTime:   reg.Timer(obs.IterationSeconds),
	}
	for _, tbl := range [][]Primitive{Table, ExtensionTable} {
		for i := range tbl {
			name := tbl[i].Name
			m.prims[name] = reg.Counter(fmt.Sprintf("%s{primitive=%q}", obs.PrimitiveAppliedTotal, name))
		}
	}
	return m
}

// prim returns the applied-candidates counter for a primitive name.
// The map is read-only after newSearchMeters, so concurrent workers
// share it without locking; a name outside the tables (impossible
// today) still resolves through the registry's own lock.
func (m *searchMeters) prim(name string) *obs.Counter {
	if c, ok := m.prims[name]; ok {
		return c
	}
	return m.reg.Counter(fmt.Sprintf("%s{primitive=%q}", obs.PrimitiveAppliedTotal, name))
}

// searcher is the per-stage-count search state.
type searcher struct {
	graph    *model.Graph
	cluster  hardware.Cluster
	memNorm  float64 // min per-device memory (infeasibility normalizer)
	pm       *perfmodel.Model
	opts     Options
	deadline time.Time
	done     <-chan struct{} // context cancellation, shared with the deadline

	visited  map[uint64]bool                // every config ever estimated (dedup, §4.3)
	pool     map[uint64]Candidate           // unexplored configs (Algorithm 1)
	cache    map[uint64]*perfmodel.Estimate // estimate memo
	explored int
	rng      *rand.Rand
	trace    *Trace

	// arena recycles rejected candidate clones (DESIGN.md §5g). Shared
	// by every searcher run serially on one worker. The discipline: a
	// config goes back via discard() only when nothing retains its
	// pointer — never the current/found config, never a pool or top-K
	// entry. Pool-pruned configs park in limbo until the top-level
	// iteration boundary, because candidate slices of active multiHop
	// frames may still alias them; the whole pool is recycled when
	// run() finishes (pool and top-K never share configs: multiHop
	// returns an improving candidate before pooling it).
	arena *config.Arena
	limbo []*config.Config

	// batches is the stack of batched estimators, one per active
	// multiHop/fineTune base; batch is its top (nil = full path). The
	// slots — and their key slices — are reused across pushes at the
	// same depth, so a push is allocation-free in steady state.
	batches []perfmodel.Batch
	batch   *perfmodel.Batch

	// estArena bump-allocates the estimates memoized in cache: they
	// live exactly as long as this searcher, so they are carved from
	// chunks instead of allocated one by one (see perfmodel.EstArena).
	estArena perfmodel.EstArena

	// Reusable scratch, hoisted out of the hot path: candsAt[hop] backs
	// multiHop's per-resource candidate list at recursion depth hop,
	// bnBufAt[hop] the Bottleneck resource list built for depth hop+1,
	// pruneBuf prunePool's sort buffer, rcBuf the saved-activation
	// ranking of applyIncRC/applyDecRC (never live across nested apply
	// calls: estimates do not re-enter the apply functions).
	candsAt  [][]Candidate
	bnBufAt  [][]Resource
	pruneBuf poolEntries
	rcBuf    []rcCand
	opksBuf  []int

	// applyBufs backs the candidate slices returned by the primitive
	// apply functions; each result is fully consumed before the next
	// apply call at the same level, so the buffer is recycled instead
	// of allocated per call. Two levels exist because attachRecompute
	// runs applyIncRC while multiHop is still iterating another apply
	// result: attachRecompute bumps applyDepth so the nested call uses
	// the second buffer, and it never nests inside itself.
	applyBufs  [2][]*config.Config
	applyDepth int

	// risk is the spot-capacity scoring model; nil on hazard-free
	// clusters, where score() returns nominal iteration time.
	risk *riskModel

	// Observability (nil when disabled — every use is pointer-guarded
	// so the tracing-off hot path pays only the nil checks).
	tracer obs.Tracer
	met    *searchMeters
	// Per-top-level-iteration tallies, reset in run()'s loop and
	// flushed into the IterationEvent. Plain ints: each searcher is
	// single-goroutine.
	itEstimated  int
	itDedup      int
	itBacktracks int
}

// applyOut returns the recycled, emptied candidate buffer for the
// current apply nesting level. Apply functions build their result in
// it and hand it back through keepOut.
func (s *searcher) applyOut() []*config.Config {
	return s.applyBufs[s.applyDepth][:0]
}

// keepOut retains the (possibly regrown) buffer for reuse by the next
// apply call at this level and returns it to the caller. An empty
// result comes back as nil so callers keep the historical "nil means
// no candidates" contract.
func (s *searcher) keepOut(out []*config.Config) []*config.Config {
	s.applyBufs[s.applyDepth] = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// expired reports whether the search must stop: the context was
// canceled (or its deadline — which already folds in the TimeBudget —
// fired), or the wall clock passed the budget. Both checks are cheap
// enough for the per-candidate hot path.
func (s *searcher) expired() bool {
	if s.done != nil {
		select {
		case <-s.done:
			return true
		default:
		}
	}
	return time.Now().After(s.deadline)
}

// clone copies cfg through the searcher's arena, reusing the slices of
// previously discarded candidates.
func (s *searcher) clone(cfg *config.Config) *config.Config {
	return cfg.CloneIn(s.arena)
}

// discard recycles a candidate clone that nothing references anymore.
func (s *searcher) discard(c *config.Config) {
	s.arena.Put(c)
}

// pushBatch makes (cfg, est) the base for batched estimation until the
// matching popBatch. Stack slots are reused, so steady-state pushes
// allocate nothing.
func (s *searcher) pushBatch(cfg *config.Config, est *perfmodel.Estimate) {
	if n := len(s.batches); n < cap(s.batches) {
		s.batches = s.batches[:n+1]
	} else {
		s.batches = append(s.batches, perfmodel.Batch{})
	}
	b := &s.batches[len(s.batches)-1]
	s.pm.BeginBatch(b, cfg, est, &s.estArena)
	s.batch = b
}

// popBatch restores the enclosing base (nil at the outermost level).
func (s *searcher) popBatch() {
	s.batches = s.batches[:len(s.batches)-1]
	if n := len(s.batches); n > 0 {
		s.batch = &s.batches[n-1]
	} else {
		s.batch = nil
	}
}

// estimate memoizes performance-model evaluations by semantic hash and
// counts unique explored configurations. Inside a multiHop/fineTune
// node the active batch estimator serves the call, sharing the base
// configuration's per-stage metrics; the resulting estimate is
// bitwise identical to the full path (see perfmodel.Batch).
func (s *searcher) estimate(cfg *config.Config) *perfmodel.Estimate {
	h := cfg.Hash()
	if e, ok := s.cache[h]; ok {
		return e
	}
	var e *perfmodel.Estimate
	if s.batch != nil {
		e = s.batch.Estimate(cfg)
	} else {
		e = s.pm.EstimateIn(cfg, &s.estArena)
	}
	s.cache[h] = e
	s.explored++
	s.itEstimated++
	if s.met != nil {
		s.met.estimated.Inc()
	}
	if s.tracer != nil {
		s.tracer.OnEstimate(cfg, e)
	}
	return e
}

// score maps an estimate to a single comparable figure: iteration time
// when feasible (hazard-adjusted expected time on spot-capacity
// clusters — the placement matters, hence the config argument); a
// large penalty plus the memory excess otherwise so that approaching
// feasibility still registers as progress. Non-finite estimates
// (poisoned profiles that slipped past input validation) collapse to a
// worst-possible finite score — NaN must never reach the comparators,
// where every ordering test against it is false.
func (s *searcher) score(cfg *config.Config, e *perfmodel.Estimate) float64 {
	if e.Feasible {
		t := e.IterTime
		if s.risk != nil && t >= 0 && !math.IsInf(t, 0) && !math.IsNaN(t) {
			t = s.risk.expected(cfg, t)
		}
		if t >= 0 && !math.IsInf(t, 0) && !math.IsNaN(t) {
			return t
		}
		return infeasibleScore * poisonedPenalty
	}
	pen := infeasibleScore * (1 + e.PeakMem/s.memNorm)
	if pen >= infeasibleScore && !math.IsInf(pen, 0) && !math.IsNaN(pen) {
		return pen
	}
	return infeasibleScore * poisonedPenalty
}

// poisonedPenalty ranks non-finite-scored configs below every honest
// infeasible one while keeping the score itself finite.
const poisonedPenalty = 1e6

// run executes Algorithm 1 for one pipeline depth and returns its
// local top-K candidates, iteration count, and whether it converged
// (exhausted its pool or iteration budget) rather than being cut off
// by the deadline. The initial configuration is recorded before the
// first expiry check, so run always returns at least one candidate —
// the best-so-far guarantee that SearchContext's partial-result
// contract rests on.
func (s *searcher) run(init *config.Config) ([]Candidate, int, bool) {
	cur := init
	s.visited[init.Hash()] = true
	var topK []Candidate
	record := func(cfg *config.Config) {
		e := s.estimate(cfg)
		sc := s.score(cfg, e)
		if e.Feasible {
			s.trace.observe(sc)
		}
		cand := Candidate{Config: cfg, Estimate: e, Score: sc, hash: cfg.Hash()}
		topK = insertTopK(topK, cand, s.opts.TopK)
	}
	record(cur)

	iters := 0
	converged := false
	observing := s.tracer != nil || s.met != nil
	for !s.expired() {
		if s.opts.MaxIterations > 0 && iters >= s.opts.MaxIterations {
			converged = true
			break
		}
		iters++
		s.itEstimated, s.itDedup, s.itBacktracks = 0, 0, 0
		// Iteration boundary: every multiHop frame of the previous
		// iteration is gone, so configs evicted from the pool during it
		// can no longer be aliased by candidate slices — recycle them.
		s.flushLimbo()
		var t0 time.Time
		if s.met != nil {
			t0 = time.Now()
		}
		curEst := s.estimate(cur)
		initScore := s.score(cur, curEst)

		var found *config.Config
		var prim string
		hops := 0
		tries := 0
		lastBN := -1
		bns := Bottlenecks(curEst, s.cluster.MemoryBytes)
		for _, bn := range bns {
			tries++
			lastBN = bn.Stage
			found, hops, prim = s.multiHop(cur, curEst, bn, 0, initScore)
			// Top-level multiHop frames are gone and an improving
			// candidate is returned before it is ever pooled, so
			// nothing in limbo can be aliased here — recycle eagerly
			// instead of waiting for the iteration boundary.
			s.flushLimbo()
			if found != nil || s.expired() {
				break
			}
		}

		improved := found != nil
		if improved {
			if !s.opts.DisableFineTune {
				if ft := s.fineTune(found); ft != nil {
					// The pre-fine-tune config is dead: multiHop returned
					// it before pooling it, and it is not yet in topK.
					s.discard(found)
					found = ft
				}
			}
			cur = found
			record(cur)
			s.trace.addIteration(IterationTrace{
				StageCount:      init.NumStages(),
				BottleneckTries: tries,
				Hops:            hops,
				Improved:        true,
			})
		} else {
			s.trace.addIteration(IterationTrace{
				StageCount: init.NumStages(),
				Improved:   false,
			})
		}
		// No improvement reachable from cur: restart from the most
		// promising unexplored configuration (Algorithm 1 line 13).
		var next *config.Config
		if !improved {
			next = s.popBestUnexplored()
		}

		if observing {
			s.observeIteration(init.NumStages(), iters, improved, lastBN,
				curEst, prim, hops, tries, next != nil, topK, t0)
		}

		if improved {
			continue
		}
		if next == nil {
			converged = true // exhausted for this stage count
			break
		}
		cur = next
	}
	// The searcher is done: everything still in the pool or limbo is
	// garbage (pool and top-K are disjoint — see the arena field doc),
	// so recycle it for the next stage-count search on this worker.
	for _, cand := range s.pool {
		s.discard(cand.Config)
	}
	s.flushLimbo()
	return topK, iters, converged
}

// flushLimbo recycles every pool-evicted config parked in limbo. Only
// call at points where no multiHop frame is active and the current/
// found configs are known not to be limbo residents (popBestUnexplored
// deletes from the pool, so the current config can never be pruned
// into limbo).
func (s *searcher) flushLimbo() {
	for i, c := range s.limbo {
		s.arena.Put(c)
		s.limbo[i] = nil
	}
	s.limbo = s.limbo[:0]
}

// observeIteration flushes one top-level iteration into the Tracer and
// metrics registry. Kept out of run()'s loop body so the disabled path
// stays a single branch.
func (s *searcher) observeIteration(stageCount, iter int, improved bool, bnStage int,
	curEst *perfmodel.Estimate, prim string, hops, tries int, restarted bool,
	topK []Candidate, t0 time.Time) {
	if s.met != nil {
		s.met.iterations.Inc()
		s.met.iterTime.Observe(time.Since(t0))
		if restarted {
			s.met.restarts.Inc()
		}
		if improved {
			s.met.hopDepth.Observe(float64(hops))
		}
	}
	if s.tracer == nil {
		return
	}
	ev := obs.IterationEvent{
		StageCount:      stageCount,
		Iter:            iter,
		Improved:        improved,
		BottleneckStage: bnStage,
		Primitive:       prim,
		Hops:            hops,
		BottleneckTries: tries,
		Backtracks:      s.itBacktracks,
		DedupHits:       s.itDedup,
		Estimated:       s.itEstimated,
		PoolRestart:     restarted,
		PoolSize:        len(s.pool),
	}
	ev.CompProportion, ev.CommProportion, ev.MemProportion = StageProportions(curEst, bnStage)
	if len(topK) > 0 {
		ev.BestScore = topK[0].Score
	}
	s.tracer.OnIteration(ev)
}

// multiHop is Algorithm 2: explore primitive groups for the bottleneck
// in Heuristic-2 order; return the first configuration scoring better
// than initScore, recursing up to MaxHops, along with the name of the
// primitive that produced it (the final hop's primitive).
//
// est must be cfg's estimate; it anchors the node's batched estimator,
// which every candidate of this node (including attachRecompute's
// inner trials) is evaluated against.
func (s *searcher) multiHop(cfg *config.Config, est *perfmodel.Estimate, bn Bottleneck, hop int, initScore float64) (*config.Config, int, string) {
	if hop >= s.opts.MaxHops || s.expired() {
		return nil, 0, ""
	}
	s.pushBatch(cfg, est)
	defer s.popBatch()
	resources := bn.Resources
	if s.opts.DisableHeuristic2 {
		resources = append([]Resource(nil), resources...)
		s.rng.Shuffle(len(resources), func(i, j int) {
			resources[i], resources[j] = resources[j], resources[i]
		})
	}
	for len(s.candsAt) <= hop {
		s.candsAt = append(s.candsAt, nil)
	}
	for _, res := range resources {
		prims := Eligible(res)
		if s.opts.ExtendedPrimitives {
			prims = EligibleExtended(res)
		}
		if s.opts.DisableHeuristic2 {
			prims = append([]*Primitive(nil), prims...)
			s.rng.Shuffle(len(prims), func(i, j int) {
				prims[i], prims[j] = prims[j], prims[i]
			})
		}
		// Per-depth scratch: frames at other depths use their own slot,
		// and the recursion below finishes before this slot is reused.
		cands := s.candsAt[hop][:0]
		for _, prim := range prims {
			var pc *obs.Counter
			if s.met != nil {
				pc = s.met.prim(prim.Name)
			}
			batch := prim.apply(s, cfg, bn.Stage)
			for ci, c := range batch {
				// A deadline or cancellation that fires mid-hop must
				// abort promptly, not after this primitive's whole
				// candidate batch has been estimated.
				if s.expired() {
					return nil, 0, ""
				}
				if c == nil {
					continue
				}
				if err := c.Validate(s.graph, s.cluster.TotalDevices()); err != nil {
					s.discard(c)
					continue
				}
				c = s.attachRecompute(c)
				h := c.Hash()
				if s.visited[h] {
					s.itDedup++
					if s.met != nil {
						s.met.dedup.Inc()
					}
					s.discard(c)
					continue
				}
				s.visited[h] = true
				if pc != nil {
					pc.Inc()
				}
				e := s.estimate(c)
				sc := s.score(c, e)
				if e.Feasible {
					s.trace.observe(sc)
				}
				if sc < initScore {
					// The rest of the batch was never pooled or
					// estimated — recycle it on the way out.
					for _, rest := range batch[ci+1:] {
						if rest != nil {
							s.discard(rest)
						}
					}
					return c, hop + 1, prim.Name
				}
				cand := Candidate{Config: c, Estimate: e, Score: sc, hash: h}
				s.pool[h] = cand
				if len(s.pool) > poolCap {
					s.prunePool()
				}
				cands = append(cands, cand)
			}
			if s.expired() {
				s.candsAt[hop] = cands
				return nil, 0, ""
			}
		}
		s.candsAt[hop] = cands // retain grown capacity across nodes
		// Heuristic-2: best estimated performance first.
		if s.opts.DisableHeuristic2 {
			s.rng.Shuffle(len(cands), func(i, j int) {
				cands[i], cands[j] = cands[j], cands[i]
			})
		} else {
			// Insertion sort: stable like sort.SliceStable (equal-key
			// order preserved) without the reflection-based swapper's
			// per-call allocations; candidate lists are small.
			for i := 1; i < len(cands); i++ {
				for j := i; j > 0 && cands[j].less(&cands[j-1]); j-- {
					cands[j], cands[j-1] = cands[j-1], cands[j]
				}
			}
		}
		limit := s.opts.BranchFactor
		if limit > len(cands) {
			limit = len(cands)
		}
		for i := 0; i < limit; i++ {
			nb, ok := s.topBottleneck(hop, cands[i].Estimate)
			if !ok {
				continue
			}
			if r, h, pn := s.multiHop(cands[i].Config, cands[i].Estimate, nb, hop+1, initScore); r != nil {
				return r, h, pn
			}
			if s.expired() {
				return nil, 0, ""
			}
			// The branch was explored to exhaustion without beating
			// initScore — the search backtracks to the next candidate.
			s.itBacktracks++
		}
	}
	return nil, 0, ""
}

// topBottleneck returns Bottlenecks(est, mem)[0] without building and
// sorting the full per-stage ranking: the multi-hop branch step only
// ever consumes the top entry. The top stage is the first index
// attaining the extreme key (matching the stable sort's tie-break),
// and the resource list is built into the per-depth scratch buffer —
// owned by this frame until the recursion consuming it returns.
func (s *searcher) topBottleneck(hop int, est *perfmodel.Estimate) (Bottleneck, bool) {
	n := len(est.Stages)
	if n == 0 {
		return Bottleneck{}, false
	}
	top := 0
	if !est.Feasible {
		for i := 1; i < n; i++ {
			if est.Stages[i].PeakMem > est.Stages[top].PeakMem {
				top = i
			}
		}
	} else {
		for i := 1; i < n; i++ {
			if est.Stages[i].StageTime > est.Stages[top].StageTime {
				top = i
			}
		}
	}
	var totalComp, totalComm float64
	for i := range est.Stages {
		sm := &est.Stages[i]
		totalComp += sm.CompTime()
		totalComm += sm.CommTime(est.Microbatches)
	}
	for len(s.bnBufAt) <= hop {
		s.bnBufAt = append(s.bnBufAt, make([]Resource, 0, 4))
	}
	rs := s.bnBufAt[hop][:0]
	sm := &est.Stages[top]
	memCap := s.cluster.MemoryBytes
	if sm.CapMem > 0 && sm.CapMem < memCap {
		memCap = sm.CapMem
	}
	if !est.Feasible && sm.PeakMem > memCap {
		rs = append(rs, Mem)
	}
	comp := proportion(sm.CompTime(), totalComp)
	comm := proportion(sm.CommTime(est.Microbatches), totalComm)
	if comp >= comm {
		rs = append(rs, Comp, Comm)
	} else {
		rs = append(rs, Comm, Comp)
	}
	if est.Feasible && sm.PeakMem > 0.9*memCap {
		rs = append(rs, Mem)
	}
	s.bnBufAt[hop] = rs
	return Bottleneck{Stage: top, Resources: rs}, true
}

// attachRecompute implements the §4.3 combination "attach inc/dec-rc
// to all other primitives": after any reconfiguration, greedily add
// recomputation in over-memory stages (largest activations first)
// until they fit. Under-used recomputation removal is left to explicit
// dec-rc hops.
func (s *searcher) attachRecompute(cfg *config.Config) *config.Config {
	e := s.estimate(cfg)
	if e.Feasible {
		return cfg
	}
	// The applyIncRC calls below run while the caller may still be
	// iterating another apply function's result — switch to the nested
	// apply buffer so they don't clobber it (see applyBufs).
	s.applyDepth++
	defer func() { s.applyDepth-- }()
	out := cfg
	for si := range out.Stages {
		if e.Stages[si].PeakMem <= e.Stages[si].CapMem {
			continue
		}
		cands := applyIncRC(s, out, si)
		if len(cands) == 0 {
			continue
		}
		// applyIncRC's candidates grow greedily; take the first that
		// fixes this stage, else the most aggressive.
		pick := cands[len(cands)-1]
		for _, c := range cands {
			ce := s.estimate(c)
			if ce.Stages[si].PeakMem <= ce.Stages[si].CapMem {
				pick = c
				break
			}
		}
		// Unpicked trials and the superseded intermediate are dead —
		// never pooled, never returned.
		for _, c := range cands {
			if c != pick {
				s.discard(c)
			}
		}
		if out != cfg && out != pick {
			s.discard(out)
		}
		out = pick
		e = s.estimate(out)
		if e.Feasible {
			break
		}
	}
	return out
}

// poolEntry is prunePool's sort record; poolEntries implements
// sort.Interface on the pointer so sort.Sort neither boxes a slice
// header nor goes through reflection — with the buffer hoisted into
// the searcher, a prune allocates nothing in steady state (pinned by
// TestPruneInsertAllocs).
type poolEntry struct {
	h     uint64
	score float64
	cfg   *config.Config
}

type poolEntries []poolEntry

func (p *poolEntries) Len() int { return len(*p) }
func (p *poolEntries) Less(a, b int) bool {
	s := *p
	if s[a].score != s[b].score {
		return s[a].score < s[b].score
	}
	return s[a].h < s[b].h
}
func (p *poolEntries) Swap(a, b int) {
	s := *p
	s[a], s[b] = s[b], s[a]
}

// prunePool drops the worst-scoring entries of an oversized pool,
// keeping the best poolCap/2 (deterministic: ties broken by hash). The
// half-cap target leaves insert headroom so the pool is not re-pruned
// on nearly every insert once it first fills. Evicted configs go to
// limbo, not straight back to the arena: candidate slices of multiHop
// frames still on the stack may alias them until the iteration ends.
func (s *searcher) prunePool() {
	keep := poolCap / 2
	if len(s.pool) <= keep {
		return
	}
	all := s.pruneBuf[:0]
	for h, c := range s.pool {
		all = append(all, poolEntry{h, c.Score, c.Config})
	}
	s.pruneBuf = all
	sort.Sort(&s.pruneBuf)
	all = s.pruneBuf
	for _, e := range all[keep:] {
		delete(s.pool, e.h)
		s.limbo = append(s.limbo, e.cfg)
	}
	if s.met != nil {
		s.met.prunes.Inc()
	}
}

// popBestUnexplored removes and returns the best-scoring unexplored
// configuration (deterministic: ties broken by hash).
func (s *searcher) popBestUnexplored() *config.Config {
	var bestH uint64
	var bestCfg *config.Config
	bestScore := math.Inf(1)
	for h, c := range s.pool {
		if bestCfg == nil || c.Score < bestScore || c.Score == bestScore && h < bestH {
			bestCfg, bestScore, bestH = c.Config, c.Score, h
		}
	}
	if bestCfg == nil {
		return nil
	}
	delete(s.pool, bestH)
	return bestCfg
}

// insertTopK keeps a ranked, hash-deduplicated list of the k best
// candidates. The list is always sorted (score, then hash), so the
// new candidate is spliced in at its position rather than re-sorting
// the whole slice per insertion.
func insertTopK(list []Candidate, c Candidate, k int) []Candidate {
	pos := len(list)
	for i := range list {
		if list[i].hash == c.hash {
			return list
		}
		if pos == len(list) && c.less(&list[i]) {
			pos = i
		}
	}
	if pos >= k {
		return list // ranks below the kept k
	}
	list = append(list, Candidate{})
	copy(list[pos+1:], list[pos:])
	list[pos] = c
	if len(list) > k {
		list = list[:k]
	}
	return list
}
