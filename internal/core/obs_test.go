package core

import (
	"bytes"
	"testing"
	"time"

	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/obs"
)

// obsOpts returns deterministic search options: a fixed iteration
// budget instead of a wall-clock one, so two runs do identical work.
func obsOpts() Options {
	return Options{
		TimeBudget:    time.Hour, // effectively off; MaxIterations bounds the run
		StageCounts:   []int{1, 2, 4},
		MaxIterations: 6,
		Seed:          7,
	}
}

func TestSearchTraceDeterministic(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)

	runOnce := func() []byte {
		tr := obs.NewJSONLTracer()
		opts := obsOpts()
		opts.Tracer = tr
		if _, err := Search(g, cl, opts); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := runOnce(), runOnce()
	if len(a) == 0 {
		t.Fatal("trace is empty")
	}
	if !bytes.Equal(a, b) {
		t.Errorf("same seed produced different traces:\n%s\nvs\n%s", a, b)
	}
}

func TestSearchTraceEventFields(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	tr := obs.NewJSONLTracer()
	opts := obsOpts()
	opts.Tracer = tr
	res, err := Search(g, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) != res.Iterations {
		t.Errorf("trace has %d events for %d iterations", len(evs), res.Iterations)
	}
	improvements := 0
	for _, ev := range evs {
		if ev.StageCount != 1 && ev.StageCount != 2 && ev.StageCount != 4 {
			t.Errorf("event for unsearched stage count %d", ev.StageCount)
		}
		if ev.Iter < 1 || ev.Iter > opts.MaxIterations {
			t.Errorf("iter %d outside [1, %d]", ev.Iter, opts.MaxIterations)
		}
		if ev.Improved {
			improvements++
			if ev.Primitive == "" {
				t.Error("improving iteration has no primitive")
			}
			if ev.Hops < 1 || ev.Hops > 7 {
				t.Errorf("hops = %d outside [1, 7]", ev.Hops)
			}
		}
		if ev.CompProportion < 0 || ev.CompProportion > 1 ||
			ev.CommProportion < 0 || ev.CommProportion > 1 ||
			ev.MemProportion < 0 || ev.MemProportion > 1 {
			t.Errorf("proportions outside [0,1]: %+v", ev)
		}
		if ev.Estimated < 0 || ev.DedupHits < 0 || ev.Backtracks < 0 {
			t.Errorf("negative tallies: %+v", ev)
		}
		if ev.BestScore <= 0 {
			t.Errorf("BestScore = %v, want > 0", ev.BestScore)
		}
	}
	if improvements == 0 {
		t.Error("no improving iterations traced in a fresh search")
	}
}

func TestSearchMetricsRegistry(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	reg := obs.NewRegistry()
	opts := obsOpts()
	opts.Metrics = reg
	res, err := Search(g, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	est := reg.Counter(obs.CandidatesEstimatedTotal).Value()
	if est != int64(res.Explored) {
		t.Errorf("candidates counter %d != Explored %d", est, res.Explored)
	}
	if got := reg.Counter(obs.IterationsTotal).Value(); got != int64(res.Iterations) {
		t.Errorf("iterations counter %d != Iterations %d", got, res.Iterations)
	}
	hits := reg.Counter(obs.StageCacheHitsTotal).Value()
	misses := reg.Counter(obs.StageCacheMissesTotal).Value()
	if misses <= 0 {
		t.Error("stage cache miss snapshot not mirrored")
	}
	if hits <= 0 {
		t.Error("stage cache hit snapshot not mirrored (uniform layers should hit)")
	}
}

func TestSearchAuditorClean(t *testing.T) {
	// Every estimate produced by a real search must satisfy the
	// resource-accounting invariants — this is the tripwire that makes
	// bucket mis-attribution a test failure instead of a silent
	// Heuristic-2 skew.
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	a := obs.NewAuditor()
	opts := obsOpts()
	opts.Tracer = a
	if _, err := Search(g, cl, opts); err != nil {
		t.Fatal(err)
	}
	if a.Checked() == 0 {
		t.Fatal("auditor saw no estimates")
	}
	if err := a.Err(); err != nil {
		t.Errorf("breakdown violations in a real search: %v\nfirst few: %v",
			err, a.Violations()[:min(3, len(a.Violations()))])
	}
}

func TestSearchNilObserversUnchanged(t *testing.T) {
	// The zero-overhead contract's behavioral half: observers must not
	// change the search outcome.
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	plain, err := Search(g, cl, obsOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := obsOpts()
	opts.Tracer = obs.MultiTracer(obs.NewJSONLTracer(), obs.NewAuditor())
	opts.Metrics = obs.NewRegistry()
	traced, err := Search(g, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Best.Score != traced.Best.Score || plain.Explored != traced.Explored {
		t.Errorf("observers changed the search: score %v vs %v, explored %d vs %d",
			plain.Best.Score, traced.Best.Score, plain.Explored, traced.Explored)
	}
}
