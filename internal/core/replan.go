package core

import (
	"context"
	"fmt"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
)

// Replan re-runs the search for a cluster that has degraded since prev
// was found: faults is applied to the healthy cluster (dead devices
// removed, stragglers and bad links derated), and the search is seeded
// from the surviving configuration — prev projected onto the remaining
// devices — so it converges on a repaired plan far faster than a cold
// start. prev may be nil, in which case Replan is just SearchContext
// over the degraded cluster.
//
// This is the fault-recovery twin of the elastic WarmStart path: where
// WarmStart handles a resized cluster, Replan handles a *wounded* one —
// the performance model sees the deratings, so the seeded search
// naturally shifts work off the straggler instead of rebalancing onto
// it.
func Replan(ctx context.Context, g *model.Graph, cl hardware.Cluster, faults hardware.FaultSpec, prev *config.Config, opts Options) (*Result, error) {
	degraded, err := cl.Degrade(faults)
	if err != nil {
		return nil, fmt.Errorf("core: replan: %w", err)
	}
	opts = WarmOptions(g, prev, degraded.TotalDevices(), opts)
	return SearchContext(ctx, g, degraded, opts)
}

// WarmOptions returns opts seeded to warm-start the search from prev
// on a cluster with the given device count: the initializer replays
// prev (projected onto the available devices) and the searched stage
// counts are extended with the projection's depth so the warm start
// engages. prev == nil returns opts unchanged. This is the shared
// seeding step behind Replan and the plan-cache near-miss path in the
// acesod daemon.
func WarmOptions(g *model.Graph, prev *config.Config, devices int, opts Options) Options {
	if prev == nil {
		return opts
	}
	opts.Initializer = WarmStart(prev)
	// Make sure the surviving configuration's depth is among the
	// searched stage counts, or the warm start would never engage.
	if proj, err := ProjectConfig(g, prev, devices); err == nil {
		depth := proj.NumStages()
		counts := opts.StageCounts
		if len(counts) == 0 {
			counts = defaultStageCounts(devices, len(g.Ops))
		}
		found := false
		for _, p := range counts {
			if p == depth {
				found = true
				break
			}
		}
		if !found {
			counts = append(append([]int(nil), counts...), depth)
		}
		opts.StageCounts = counts
	}
	return opts
}
