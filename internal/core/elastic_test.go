package core

import (
	"testing"
	"time"

	"aceso/internal/hardware"
	"aceso/internal/model"
)

func TestProjectConfigShrink(t *testing.T) {
	g, _ := model.GPT3("1.3B")
	old := mustBalanced(t, g, 16, 4, 4)
	// Mark some recomputation and a tp-heavy last stage to carry over.
	old.Stages[0].Ops[0].Recompute = true
	old.Stages[0].Ops[1].Recompute = true

	proj, err := ProjectConfig(g, old, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := proj.Validate(g, 8); err != nil {
		t.Fatal(err)
	}
	if proj.NumStages() != 4 {
		t.Errorf("stages = %d, want 4 preserved", proj.NumStages())
	}
	if proj.MicroBatch != 4 {
		t.Errorf("microbatch = %d, want 4 preserved", proj.MicroBatch)
	}
	if !proj.Stages[0].Ops[0].Recompute || !proj.Stages[0].Ops[1].Recompute {
		t.Error("recompute flags lost in projection")
	}
	// Operator ranges preserved.
	for i := range old.Stages {
		if proj.Stages[i].Start != old.Stages[i].Start || proj.Stages[i].End != old.Stages[i].End {
			t.Errorf("stage %d range changed: [%d,%d) vs [%d,%d)", i,
				proj.Stages[i].Start, proj.Stages[i].End, old.Stages[i].Start, old.Stages[i].End)
		}
	}
}

func TestProjectConfigGrow(t *testing.T) {
	g, _ := model.GPT3("350M")
	old := mustBalanced(t, g, 4, 2, 2)
	proj, err := ProjectConfig(g, old, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := proj.Validate(g, 16); err != nil {
		t.Fatal(err)
	}
	if proj.TotalDevices() != 16 {
		t.Errorf("devices = %d", proj.TotalDevices())
	}
}

func TestProjectConfigMergesStages(t *testing.T) {
	// 8 stages onto 4 devices: stages must fold to ≤ 4.
	g, _ := model.GPT3("350M")
	old := mustBalanced(t, g, 8, 8, 1)
	proj, err := ProjectConfig(g, old, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := proj.Validate(g, 4); err != nil {
		t.Fatal(err)
	}
	if proj.NumStages() > 4 {
		t.Errorf("stages = %d, want ≤ 4", proj.NumStages())
	}
	// Coverage preserved.
	if proj.Stages[0].Start != 0 || proj.Stages[proj.NumStages()-1].End != len(g.Ops) {
		t.Error("projection lost op coverage")
	}
}

func TestProjectConfigErrors(t *testing.T) {
	g, _ := model.GPT3("350M")
	old := mustBalanced(t, g, 4, 2, 2)
	if _, err := ProjectConfig(g, old, 0); err == nil {
		t.Error("projection onto 0 devices accepted")
	}
}

func TestWarmStartSpeedsReconfiguration(t *testing.T) {
	// Search at 16 GPUs, lose a node, re-search at 8 with and without
	// the warm start under the same tiny budget; warm must not be
	// worse, and its initializer must validate.
	g, _ := model.GPT3("1.3B")
	big := hardware.DGX1V100(2)
	first, err := Search(g, big, Options{TimeBudget: 800 * time.Millisecond, Seed: 1, StageCounts: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	small := hardware.DGX1V100(1)
	budget := 300 * time.Millisecond

	cold, err := Search(g, small, Options{TimeBudget: budget, Seed: 1, StageCounts: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Search(g, small, Options{
		TimeBudget: budget, Seed: 1, StageCounts: []int{2, 4},
		Initializer: WarmStart(first.Best.Config),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Best.Estimate.Feasible {
		t.Fatal("warm-started search found nothing feasible")
	}
	if warm.Best.Score > cold.Best.Score*1.10 {
		t.Errorf("warm start (%.3f) much worse than cold (%.3f)", warm.Best.Score, cold.Best.Score)
	}
}
