package core

import (
	"sort"

	"aceso/internal/perfmodel"
)

// Bottleneck identifies one stage and the ordered list of resources to
// alleviate there.
type Bottleneck struct {
	Stage     int
	Resources []Resource // Heuristic-2 exploration order
}

// Bottlenecks ranks the stages of an estimate by Heuristic-1:
//
//   - When the configuration is out of memory, stages are ranked by
//     memory consumption (largest first) and memory is the first
//     resource to alleviate.
//   - Otherwise stages are ranked by execution time (longest first)
//     and resources are ordered by their consumption proportion —
//     the stage's share of the cluster-wide consumption of that
//     resource (Heuristic-2, highest-consumption first).
//
// The full ranking (not just the top stage) is returned so that the
// search can fall back to secondary bottlenecks when the primary one
// cannot be improved (§3.2.3).
func Bottlenecks(est *perfmodel.Estimate, memCapacity float64) []Bottleneck {
	n := len(est.Stages)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}

	var totalComp, totalComm, totalMem float64
	for i := range est.Stages {
		s := &est.Stages[i]
		totalComp += s.CompTime()
		totalComm += s.CommTime(est.Microbatches)
		totalMem += s.PeakMem
	}

	if !est.Feasible {
		sort.SliceStable(idx, func(a, b int) bool {
			return est.Stages[idx[a]].PeakMem > est.Stages[idx[b]].PeakMem
		})
	} else {
		sort.SliceStable(idx, func(a, b int) bool {
			return est.Stages[idx[a]].StageTime > est.Stages[idx[b]].StageTime
		})
	}

	out := make([]Bottleneck, 0, n)
	for _, si := range idx {
		s := &est.Stages[si]
		// Per-stage capacity: a fault-derated device shrinks its
		// stage's budget below the cluster-wide figure.
		cap := memCapacity
		if s.CapMem > 0 && s.CapMem < cap {
			cap = s.CapMem
		}
		b := Bottleneck{Stage: si}
		if !est.Feasible && s.PeakMem > cap {
			// Safety first: resolve memory, then whatever time
			// resource dominates.
			b.Resources = append(b.Resources, Mem)
		}
		comp := proportion(s.CompTime(), totalComp)
		comm := proportion(s.CommTime(est.Microbatches), totalComm)
		if comp >= comm {
			b.Resources = append(b.Resources, Comp, Comm)
		} else {
			b.Resources = append(b.Resources, Comm, Comp)
		}
		// High memory pressure makes memory-relieving primitives worth
		// exploring even before an OOM materializes.
		if est.Feasible && s.PeakMem > 0.9*cap {
			b.Resources = append(b.Resources, Mem)
		}
		out = append(out, b)
	}
	return out
}

// StageProportions returns stage si's share of the cluster-wide
// consumption of each resource — the proportions Heuristic-2 orders
// primitives by (§3.2, Table 1). These are the figures the search
// trace records per iteration, so a mis-booked bucket (the historical
// reshard-into-TPComm bug) is visible as a skewed comm proportion.
func StageProportions(est *perfmodel.Estimate, si int) (comp, comm, mem float64) {
	if est == nil || si < 0 || si >= len(est.Stages) {
		return 0, 0, 0
	}
	var totalComp, totalComm, totalMem float64
	for i := range est.Stages {
		s := &est.Stages[i]
		totalComp += s.CompTime()
		totalComm += s.CommTime(est.Microbatches)
		totalMem += s.PeakMem
	}
	s := &est.Stages[si]
	return proportion(s.CompTime(), totalComp),
		proportion(s.CommTime(est.Microbatches), totalComm),
		proportion(s.PeakMem, totalMem)
}

func proportion(part, total float64) float64 {
	if total <= 0 {
		return 0
	}
	return part / total
}
