package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
)

// checkValidResult asserts the partial-result contract: a non-nil
// result always carries a validated, finite-score best configuration.
func checkValidResult(t *testing.T, res *Result, g *model.Graph, devices int) {
	t.Helper()
	if res == nil {
		t.Fatal("nil result")
	}
	if res.Best.Config == nil {
		t.Fatal("result without a best config")
	}
	if err := res.Best.Config.Validate(g, devices); err != nil {
		t.Fatalf("best config fails Validate: %v", err)
	}
	if math.IsNaN(res.Best.Score) || math.IsInf(res.Best.Score, 0) {
		t.Fatalf("best score is not finite: %v", res.Best.Score)
	}
	for _, c := range res.TopK {
		if math.IsNaN(c.Score) || math.IsInf(c.Score, 0) {
			t.Fatalf("top-K score is not finite: %v", c.Score)
		}
	}
}

func TestSearchContextPreCanceledStillReturnsBestSoFar(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the search even starts
	res, err := SearchContext(ctx, g, cl, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkValidResult(t, res, g, 4)
	if !res.Partial {
		t.Error("pre-canceled search must report Partial")
	}
}

func TestSearchContextCancellationMidSearch(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	opts := quickOpts()
	opts.TimeBudget = 30 * time.Second // cancellation, not budget, must stop it
	start := time.Now()
	res, err := SearchContext(ctx, g, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
	checkValidResult(t, res, g, 4)
	if !res.Partial {
		t.Error("canceled search must report Partial")
	}
}

// TestTinyTimeBudgetReturnsBestSoFar pins the regression where a
// deadline firing mid-multiHop lost the partial result: even a budget
// too small to finish one iteration must yield a validated config.
func TestTinyTimeBudgetReturnsBestSoFar(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	for _, budget := range []time.Duration{time.Nanosecond, time.Microsecond, time.Millisecond} {
		opts := quickOpts()
		opts.TimeBudget = budget
		res, err := SearchContext(context.Background(), g, cl, opts)
		if err != nil {
			t.Fatalf("budget %v: %v", budget, err)
		}
		checkValidResult(t, res, g, 4)
		if !res.Partial {
			t.Errorf("budget %v: result not marked Partial", budget)
		}
	}
}

func TestWorkerPanicIsIsolated(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	opts := quickOpts()
	opts.MaxIterations = 3
	opts.Initializer = func(g *model.Graph, devices, stages, mbs int) (*config.Config, error) {
		if stages == 2 {
			panic("injected failure in depth-2 worker")
		}
		return config.Balanced(g, devices, stages, mbs)
	}
	res, err := SearchContext(context.Background(), g, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkValidResult(t, res, g, 4)
	if len(res.Diagnostics) != 1 {
		t.Fatalf("Diagnostics = %v, want exactly one entry", res.Diagnostics)
	}
	d := res.Diagnostics[0]
	if d.StageCount != 2 || d.PanicValue == nil || d.Stack == "" {
		t.Errorf("diagnostic %+v does not describe the injected panic", d)
	}
	if !res.Partial {
		t.Error("search with a dead worker must report Partial")
	}
	// Other depths still produced candidates.
	if res.Best.Config.NumStages() == 2 {
		t.Error("best came from the panicked depth")
	}
}

func TestAllWorkersFailingReturnsTypedError(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	opts := quickOpts()
	opts.Initializer = func(*model.Graph, int, int, int) (*config.Config, error) {
		return nil, errors.New("no initial config for you")
	}
	res, err := SearchContext(context.Background(), g, cl, opts)
	if err == nil {
		t.Fatalf("SearchContext = %v, want error", res)
	}
	var se *SearchError
	if !errors.As(err, &se) {
		t.Fatalf("error %v does not wrap a *SearchError", err)
	}
}

func TestReplanIsDeterministic(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1)
	opts := quickOpts()
	opts.MaxIterations = 4
	opts.TimeBudget = 30 * time.Second // iteration-bounded, not time-bounded
	base, err := Search(g, cl.Restrict(8), opts)
	if err != nil {
		t.Fatal(err)
	}
	faults := hardware.FaultSpec{Devices: []hardware.DeviceFault{
		{Device: 7, Dead: true},
	}}
	var hashes []uint64
	for i := 0; i < 2; i++ {
		res, err := Replan(context.Background(), g, cl.Restrict(8), faults, base.Best.Config, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkValidResult(t, res, g, 7)
		hashes = append(hashes, res.Best.Config.Hash())
	}
	if hashes[0] != hashes[1] {
		t.Errorf("two identical replans diverged: %x vs %x", hashes[0], hashes[1])
	}
}

// TestReplanAvoidsStraggler is the degraded-cluster case study: one
// device of an 8-GPU node runs at quarter speed, and the replanned
// configuration must beat the healthy plan re-costed on the degraded
// cluster — i.e. the search must actually shift work off the
// straggler rather than keep the now-lopsided balance.
func TestReplanAvoidsStraggler(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1)
	opts := quickOpts()
	opts.MaxIterations = 6
	opts.TimeBudget = 30 * time.Second
	base, err := Search(g, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	faults := hardware.FaultSpec{Devices: []hardware.DeviceFault{
		{Device: 5, FLOPSScale: 0.25, MemScale: 1},
	}}
	degraded, err := cl.Degrade(faults)
	if err != nil {
		t.Fatal(err)
	}
	pm := perfmodel.New(g, degraded, opts.Seed)
	healthyOnDegraded := pm.Estimate(base.Best.Config)

	res, err := Replan(context.Background(), g, cl, faults, base.Best.Config, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkValidResult(t, res, g, 8)
	if !res.Best.Estimate.Feasible {
		t.Fatal("replanned config infeasible")
	}
	if healthyOnDegraded.Feasible && res.Best.Estimate.IterTime > healthyOnDegraded.IterTime {
		t.Errorf("replanned %.4fs is no better than the stale healthy plan %.4fs on the degraded cluster",
			res.Best.Estimate.IterTime, healthyOnDegraded.IterTime)
	}
}

func TestReplanNilPrevIsColdStart(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	opts := quickOpts()
	opts.MaxIterations = 2
	res, err := Replan(context.Background(), g, cl, hardware.FaultSpec{
		Devices: []hardware.DeviceFault{{Device: 0, FLOPSScale: 0.5, MemScale: 1}},
	}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkValidResult(t, res, g, 4)
}
