package core

import (
	"testing"
	"time"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
)

// TestHeteroSearchBeatsClassBlind pins the tentpole property: on a
// mixed A100+V100 fleet, the heterogeneity-aware search must find a
// plan whose estimated iteration time under the true mixed-class model
// is strictly lower than the best plan a class-blind planner produces.
//
// The class-blind planner sees the same scalar envelope with the class
// table stripped — every device looks like the best class — and its
// plans are then re-priced under the true mixed model, exactly the
// penalty a homogeneous planner pays when deployed on a real mixed
// fleet.
func TestHeteroSearchBeatsClassBlind(t *testing.T) {
	g, err := model.GPT3("1.3B")
	if err != nil {
		t.Fatal(err)
	}
	mixed := hardware.A100V100(1, 1) // 8×A100-80GB + 8×V100-32GB
	if err := mixed.Validate(); err != nil {
		t.Fatal(err)
	}
	opts := Options{
		TimeBudget:    time.Hour, // iterations are the binding limit
		MaxIterations: 4,
		StageCounts:   []int{2, 4},
		Seed:          1,
	}

	hetero, err := Search(g, mixed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hetero.Best.Estimate.Feasible {
		t.Fatal("hetero-aware search found no feasible plan")
	}

	// Class-blind: identical envelope, no class table. The blind search
	// runs against a fiction where every rank is full-speed with 80 GiB.
	blind := mixed
	blind.Classes = nil
	blind.NodeClass = nil
	blindRes, err := Search(g, blind, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Re-price every blind candidate under the true mixed model and
	// keep the best feasible one — the strongest plan a class-blind
	// planner could actually deploy.
	truth := perfmodel.New(g, mixed, opts.Seed)
	bestBlind := 0.0
	for _, cand := range append([]Candidate{blindRes.Best}, blindRes.TopK...) {
		if cand.Config == nil {
			continue
		}
		est := truth.Estimate(cand.Config)
		if est.Feasible && (bestBlind == 0 || est.IterTime < bestBlind) {
			bestBlind = est.IterTime
		}
	}
	if bestBlind == 0 {
		// Every blind plan OOMs on the V100 half: the hetero planner
		// wins outright, but that makes the strict-time comparison
		// vacuous — flag it so the shapes can be retuned.
		t.Fatal("no class-blind plan is feasible on the mixed cluster; pick a smaller model for a strict comparison")
	}
	heteroTime := hetero.Best.Estimate.IterTime
	if heteroTime >= bestBlind {
		t.Errorf("hetero-aware plan (%.6fs) is not strictly better than the best class-blind plan (%.6fs)",
			heteroTime, bestBlind)
	}
}

// TestHeteroInitializerShiftsOps pins the placement mechanism: with
// A100 nodes first, the capacity-balanced initializer must assign the
// fast first stage at least as many FLOPs as Balanced would, so
// compute-heavy work gravitates to the fast class from iteration zero.
func TestHeteroInitializerShiftsOps(t *testing.T) {
	g, err := model.GPT3("350M")
	if err != nil {
		t.Fatal(err)
	}
	mixed := hardware.A100V100(1, 1)
	scales := make([]float64, mixed.TotalDevices())
	for d := range scales {
		scales[d] = mixed.DeviceFLOPSScale(d, g.Precision)
	}
	// Two stages over 16 devices: stage 0 on the A100 node, stage 1 on
	// the V100 node.
	heteroInit, err := config.CapacityBalanced(scales)(g, 16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := heteroInit.Stages[0].End; got <= len(g.Ops)/2 {
		t.Errorf("capacity-balanced stage 0 ends at op %d of %d; want more than the uniform half on the A100 stage",
			got, len(g.Ops))
	}
}
