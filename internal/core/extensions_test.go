package core

import (
	"testing"
	"time"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
)

func TestExtensionTableShape(t *testing.T) {
	if len(ExtensionTable) != 4 {
		t.Fatalf("ExtensionTable has %d primitives, want 4", len(ExtensionTable))
	}
	pairs := [][2]string{{"inc-zr", "dec-zr"}, {"inc-sp", "dec-sp"}}
	for pi, pr := range pairs {
		inc, dec := &ExtensionTable[2*pi], &ExtensionTable[2*pi+1]
		if inc.Name != pr[0] || dec.Name != pr[1] {
			t.Fatalf("extension primitive names wrong: %s/%s", inc.Name, dec.Name)
		}
		for _, r := range []Resource{Comp, Comm, Mem} {
			if inc.effect(r) != -dec.effect(r) && inc.effect(r) != Flat {
				t.Errorf("%s %v: trends not opposite", inc.Name, r)
			}
		}
	}
	// inc-zr must be eligible for memory bottlenecks (and only there).
	found := false
	for _, p := range EligibleExtended(Mem) {
		if p.Name == "inc-zr" {
			found = true
		}
	}
	if !found {
		t.Error("inc-zr not eligible for Mem")
	}
	for _, p := range Eligible(Mem) {
		if p.Name == "inc-zr" {
			t.Error("inc-zr leaked into the paper-faithful table")
		}
	}
	// dec-zr relieves communication.
	found = false
	for _, p := range EligibleExtended(Comm) {
		if p.Name == "dec-zr" {
			found = true
		}
	}
	if !found {
		t.Error("dec-zr not eligible for Comm")
	}
}

func TestToggleZeRO(t *testing.T) {
	g := model.Uniform(8, 1e10, 1e8, 1e5, 64)
	s := newSearcher(t, g, 4)
	cfg := mustBalanced(t, g, 4, 1, 8)
	for j := range cfg.Stages[0].Ops {
		cfg.Stages[0].Ops[j] = config.OpSetting{TP: 1, DP: 4, Dim: 0}
	}
	on := applyIncZR(s, cfg, 0)
	if len(on) != 1 {
		t.Fatal("inc-zr produced nothing")
	}
	if err := on[0].Validate(g, 4); err != nil {
		t.Fatal(err)
	}
	for j := range on[0].Stages[0].Ops {
		if !on[0].Stages[0].Ops[j].ZeRO {
			t.Fatal("op not ZeRO-sharded")
		}
	}
	// Idempotent: inc-zr on an all-ZeRO stage yields nothing.
	if got := applyIncZR(s, on[0], 0); got != nil {
		t.Error("inc-zr on sharded stage should be nil")
	}
	// dec restores the original hash (invariant 3).
	off := applyDecZR(s, on[0], 0)
	if len(off) != 1 || off[0].Hash() != cfg.Hash() {
		t.Error("dec-zr does not invert inc-zr")
	}
	// tp-only stage: nothing to shard.
	tpOnly := mustBalanced(t, g, 4, 1, 8)
	if got := applyIncZR(s, tpOnly, 0); got != nil {
		t.Error("inc-zr with dp=1 should be nil")
	}
}

func TestZeROCutsOptimizerMemory(t *testing.T) {
	g := model.Uniform(8, 1e10, 1e8, 1e5, 64) // parameter-heavy ops
	s := newSearcher(t, g, 4)
	cfg := mustBalanced(t, g, 4, 1, 8)
	for j := range cfg.Stages[0].Ops {
		cfg.Stages[0].Ops[j] = config.OpSetting{TP: 1, DP: 4, Dim: 0}
	}
	zr := applyIncZR(s, cfg, 0)[0]
	base := s.estimate(cfg)
	sharded := s.estimate(zr)
	if sharded.Stages[0].OptMem >= base.Stages[0].OptMem/2 {
		t.Errorf("ZeRO OptMem %v, want well below %v", sharded.Stages[0].OptMem, base.Stages[0].OptMem)
	}
	if sharded.Stages[0].DPSync <= base.Stages[0].DPSync {
		t.Error("ZeRO should add parameter all-gather cost")
	}
	if sharded.Stages[0].ParamMem != base.Stages[0].ParamMem {
		t.Error("ZeRO-1 must not change parameter memory")
	}
}

func TestZeROValidation(t *testing.T) {
	g := model.Uniform(8, 1e10, 1e8, 1e5, 64)
	cfg, err := config.Balanced(g, 4, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Stages[0].Ops[0].ZeRO = true // dp == 1
	if err := cfg.Validate(g, 4); err == nil {
		t.Error("ZeRO with dp=1 accepted")
	}
}

func TestDeviceMovesClearDanglingZeRO(t *testing.T) {
	// Halving dp to 1 must drop the ZeRO flag, or the result is invalid.
	g := model.Uniform(16, 1e10, 1e8, 1e5, 64)
	s := newSearcher(t, g, 16)
	cfg := mustBalanced(t, g, 16, 3, 8) // devices 4,4,8
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j] = config.OpSetting{TP: cfg.Stages[i].Devices / 2, DP: 2, Dim: 0, ZeRO: true}
		}
	}
	if err := cfg.Validate(g, 16); err != nil {
		t.Fatal(err)
	}
	for _, prim := range []string{"inc-tp", "dec-tp", "inc-dp", "dec-dp"} {
		p := PrimitiveByName(prim)
		for _, c := range p.apply(s, cfg, 1) {
			if c == nil {
				continue
			}
			if err := c.Validate(g, 16); err != nil {
				t.Errorf("%s left an invalid config: %v", prim, err)
			}
		}
	}
}

func TestExtendedSearchFindsZeROUnderMemoryPressure(t *testing.T) {
	// A parameter-dominated workload on memory-tight devices: with the
	// extension on, the search should be able to use ZeRO, and its best
	// config must be at least as good as the paper-faithful space's.
	g := model.Uniform(16, 5e11, 3e8, 1e6, 64)
	cl := hardware.DGX1V100(1).Restrict(4)
	base, err := Search(g, cl, Options{
		TimeBudget: time.Second, Seed: 1, StageCounts: []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := Search(g, cl, Options{
		TimeBudget: time.Second, Seed: 1, StageCounts: []int{1, 2},
		ExtendedPrimitives: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Best.Score > base.Best.Score*1.02 {
		t.Errorf("extended space best %.3f worse than base %.3f", ext.Best.Score, base.Best.Score)
	}
}

func TestSeqParCutsActivationMemory(t *testing.T) {
	// GPT-3 has layer norms whose activations are replicated across the
	// tp group; sequence parallelism shards them.
	g, _ := model.GPT3("1.3B")
	s := newSearcher(t, g, 4)
	cfg := mustBalanced(t, g, 4, 1, 4) // tp=4
	sp := applyIncSP(s, cfg, 0)
	if len(sp) != 1 {
		t.Fatal("inc-sp produced nothing")
	}
	if err := sp[0].Validate(g, 4); err != nil {
		t.Fatal(err)
	}
	base := s.estimate(cfg)
	seq := s.estimate(sp[0])
	if seq.Stages[0].ActPerMB >= base.Stages[0].ActPerMB {
		t.Errorf("seq-parallel ActPerMB %v should be below base %v",
			seq.Stages[0].ActPerMB, base.Stages[0].ActPerMB)
	}
	if seq.Stages[0].FwdTime > base.Stages[0].FwdTime {
		t.Error("sequence parallelism must not slow the forward pass")
	}
	// dec inverts (invariant 3).
	back := applyDecSP(s, sp[0], 0)
	if len(back) != 1 || back[0].Hash() != cfg.Hash() {
		t.Error("dec-sp does not invert inc-sp")
	}
	// tp=1 stage: nothing to shard.
	dpOnly := cfg.Clone()
	for j := range dpOnly.Stages[0].Ops {
		dpOnly.Stages[0].Ops[j] = config.OpSetting{TP: 1, DP: 4, Dim: 0}
	}
	if got := applyIncSP(s, dpOnly, 0); got != nil {
		t.Error("inc-sp with tp=1 should be nil")
	}
}

func TestSeqParValidation(t *testing.T) {
	g, _ := model.GPT3("350M")
	cfg, err := config.Balanced(g, 4, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for j := range cfg.Stages[0].Ops {
		cfg.Stages[0].Ops[j] = config.OpSetting{TP: 1, DP: 4, Dim: 0}
	}
	cfg.Stages[0].Ops[0].SeqPar = true // tp == 1
	if err := cfg.Validate(g, 4); err == nil {
		t.Error("SeqPar with tp=1 accepted")
	}
}
