package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/obs"
	"aceso/internal/perfmodel"
)

// TestConcurrentSearchesSharedRegistryAndModel is the daemon's core
// safety assumption, run under -race in CI: multiple SearchContext
// calls in flight at once, sharing one obs.Registry, one bounded
// tracer, and one perfmodel.Model (whose profiler memo and stage
// cache are the shared hot state), each with its own arenas. Results
// must match a serial baseline exactly — concurrency may interleave
// metric updates but must not change what any search explores.
func TestConcurrentSearchesSharedRegistryAndModel(t *testing.T) {
	g, err := model.GPT3("350M")
	if err != nil {
		t.Fatal(err)
	}
	cl := hardware.DGX1V100(1).Restrict(4)
	pm := perfmodel.New(g, cl, 7)

	opts := func(seed int64) Options {
		return Options{
			TimeBudget:    time.Hour, // MaxIterations bounds the run
			StageCounts:   []int{1, 2},
			MaxIterations: 3,
			Seed:          seed,
			Model:         pm,
		}
	}

	// Serial baselines, one per seed, on a private model so the shared
	// instance's caches start cold for the concurrent phase.
	type outcome struct {
		score    float64
		explored int
		hash     uint64
	}
	seeds := []int64{7, 8}
	baseline := make(map[int64]outcome)
	for _, seed := range seeds {
		o := opts(seed)
		o.Model = perfmodel.New(g, cl, 7)
		res, err := SearchContext(context.Background(), g, cl, o)
		if err != nil {
			t.Fatal(err)
		}
		baseline[seed] = outcome{res.Best.Score, res.Explored, res.Best.Config.Hash()}
	}

	reg := obs.NewRegistry()
	tracer := obs.NewBoundedJSONLTracer(256)
	const workers = 4
	results := make([]outcome, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := opts(seeds[i%len(seeds)])
			o.Metrics = reg
			o.Tracer = tracer
			res, err := SearchContext(context.Background(), g, cl, o)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = outcome{res.Best.Score, res.Explored, res.Best.Config.Hash()}
		}(i)
	}
	wg.Wait()

	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		want := baseline[seeds[i%len(seeds)]]
		if results[i] != want {
			t.Errorf("worker %d: got %+v, want serial baseline %+v", i, results[i], want)
		}
	}
	if n := reg.Counter(obs.CandidatesEstimatedTotal).Value(); n <= 0 {
		t.Errorf("shared registry saw no estimates (counter = %d)", n)
	}
}
