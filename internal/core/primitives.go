// Package core implements Aceso's contribution: the iterative
// bottleneck-alleviation configuration search (§3), comprising the
// reconfiguration-primitive table (Table 1), the bottleneck heuristics
// (Heuristic-1/2), the multi-hop search (Algorithm 2), the op-level
// fine-tuning pass (§4.2), and the parallel per-stage-count top-level
// search (Algorithm 1, §4.3).
package core

import (
	"fmt"

	"aceso/internal/config"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
)

// Resource is one of the three hardware resources Aceso trades
// between: computation, communication, and memory.
type Resource int

const (
	Comp Resource = iota
	Comm
	Mem
)

// String implements fmt.Stringer.
func (r Resource) String() string {
	switch r {
	case Comp:
		return "comp"
	case Comm:
		return "comm"
	case Mem:
		return "mem"
	}
	return fmt.Sprintf("Resource(%d)", int(r))
}

// Trend is a primitive's effect on the consumption of one resource at
// the stage it is applied to (Table 1's ↗ / ⇒ / ↘).
type Trend int

const (
	Down Trend = iota - 1
	Flat
	Up
)

// Primitive is one row of the reconfiguration-primitive table. Each
// primitive adjusts exactly one mechanism, which keeps its resource
// impact analyzable; Apply realizes it as a set of candidate
// configurations (a primitive's argument — how many ops, which
// partner, which halving — yields several concrete candidates that the
// multi-hop search ranks by estimated performance).
type Primitive struct {
	Name      string
	Mechanism string
	Comp      Trend
	Comm      Trend
	Mem       Trend
	// Partner is true for primitives that necessarily modify a second
	// stage (inc/dec-op#, inc/dec-dp, inc/dec-tp; §3.2.1).
	Partner bool

	apply func(s *searcher, cfg *config.Config, stage int) []*config.Config
}

// effect returns the primitive's trend on a resource.
func (p *Primitive) effect(r Resource) Trend {
	switch r {
	case Comp:
		return p.Comp
	case Comm:
		return p.Comm
	default:
		return p.Mem
	}
}

// Table is the reconfiguration-primitive table (Table 1). Trends
// describe the bottleneck stage's consumption: e.g. inc-dp halves the
// stage's per-device compute and activation memory at the price of
// data-parallel synchronization traffic.
var Table = []Primitive{
	{Name: "inc-op#", Mechanism: "pipeline", Comp: Up, Comm: Flat, Mem: Up, Partner: true,
		apply: applyIncOps},
	{Name: "dec-op#", Mechanism: "pipeline", Comp: Down, Comm: Flat, Mem: Down, Partner: true,
		apply: applyDecOps},
	{Name: "inc-mbs", Mechanism: "pipeline", Comp: Down, Comm: Flat, Mem: Up,
		apply: applyIncMBS},
	{Name: "dec-mbs", Mechanism: "pipeline", Comp: Up, Comm: Flat, Mem: Down,
		apply: applyDecMBS},
	{Name: "inc-dp", Mechanism: "data", Comp: Down, Comm: Up, Mem: Down, Partner: true,
		apply: applyIncDP},
	{Name: "dec-dp", Mechanism: "data", Comp: Up, Comm: Down, Mem: Up, Partner: true,
		apply: applyDecDP},
	{Name: "inc-tp", Mechanism: "tensor", Comp: Down, Comm: Up, Mem: Down, Partner: true,
		apply: applyIncTP},
	{Name: "dec-tp", Mechanism: "tensor", Comp: Up, Comm: Down, Mem: Up, Partner: true,
		apply: applyDecTP},
	{Name: "inc-rc", Mechanism: "recompute", Comp: Up, Comm: Flat, Mem: Down,
		apply: applyIncRC},
	{Name: "dec-rc", Mechanism: "recompute", Comp: Down, Comm: Flat, Mem: Up,
		apply: applyDecRC},
}

// eligibleByResource memoizes Eligible per resource: the table is
// immutable after init and the multi-hop search queries it at every
// node, so the query must not allocate.
var eligibleByResource = func() (m [3][]*Primitive) {
	for _, r := range []Resource{Comp, Comm, Mem} {
		for i := range Table {
			if Table[i].effect(r) == Down {
				m[r] = append(m[r], &Table[i])
			}
		}
	}
	return m
}()

// Eligible returns the primitives that decrease consumption of r —
// the table query of §3.2.2. The returned slice is shared and must
// not be mutated.
func Eligible(r Resource) []*Primitive {
	return eligibleByResource[r]
}

// PrimitiveByName returns the table row with the given name, or nil.
func PrimitiveByName(name string) *Primitive {
	for i := range Table {
		if Table[i].Name == name {
			return &Table[i]
		}
	}
	return nil
}

// ---------- helpers shared by the apply functions ----------

// idlestStage returns the stage (≠ exclude) with the shortest stage
// time — the partner with the most spare capacity (§3.2.1).
func idlestStage(est *perfmodel.Estimate, exclude int) int {
	best := -1
	for i := range est.Stages {
		if i == exclude {
			continue
		}
		if best < 0 || est.Stages[i].StageTime < est.Stages[best].StageTime {
			best = i
		}
	}
	return best
}

// halveStageDevices halves a stage's device count by halving either
// every op's DP (preferDP) or every op's TP. Returns false when the
// halving is not possible.
func halveStageDevices(st *config.Stage, preferDP bool) bool {
	// All ops must be able to halve the chosen mechanism.
	canDP, canTP := true, true
	for j := range st.Ops {
		if st.Ops[j].DP < 2 {
			canDP = false
		}
		if st.Ops[j].TP < 2 {
			canTP = false
		}
	}
	useDP := preferDP && canDP || !preferDP && !canTP && canDP
	useTP := !preferDP && canTP || preferDP && !canDP && canTP
	switch {
	case useDP:
		for j := range st.Ops {
			st.Ops[j].DP /= 2
			if st.Ops[j].DP < 2 {
				st.Ops[j].ZeRO = false
			}
		}
	case useTP:
		for j := range st.Ops {
			st.Ops[j].TP /= 2
			if st.Ops[j].TP < 2 {
				st.Ops[j].SeqPar = false
			}
		}
	default:
		return false
	}
	st.Devices /= 2
	return true
}

// doubleStageDevices doubles a stage's device count by doubling either
// every op's DP or TP. mbs constrains DP (dp must divide mbs).
func doubleStageDevices(st *config.Stage, useDP bool, mbs int) bool {
	if useDP {
		for j := range st.Ops {
			if mbs%(st.Ops[j].DP*2) != 0 {
				return false
			}
		}
		for j := range st.Ops {
			st.Ops[j].DP *= 2
		}
	} else {
		for j := range st.Ops {
			st.Ops[j].TP *= 2
		}
	}
	st.Devices *= 2
	return true
}

// moveOps shifts k operators across the boundary between stages from
// and from±1 (dir = -1 moves the first k ops of `from` to the previous
// stage; dir = +1 moves the last k ops to the next stage). Transferred
// ops adopt settings compatible with the receiving stage. Returns nil
// when the move is illegal.
func moveOps(s *searcher, cfg *config.Config, from, dir, k int) *config.Config {
	to := from + dir
	if to < 0 || to >= cfg.NumStages() || k <= 0 {
		return nil
	}
	if cfg.Stages[from].NumOps() <= k {
		return nil // donor must keep at least one op
	}
	out := s.clone(cfg)
	src := &out.Stages[from]
	dst := &out.Stages[to]
	// Transferred ops adopt the receiving stage's tp/dp (nearest
	// existing op as template) but keep their own sharding dim, which
	// is op-specific and stays valid.
	adopt := func(tpl, orig config.OpSetting) config.OpSetting {
		tpl.Dim = orig.Dim
		return tpl
	}
	if dir < 0 {
		tpl := dst.Ops[len(dst.Ops)-1]
		moved := src.Ops[:k]
		add := make([]config.OpSetting, k)
		for i := range add {
			add[i] = adopt(tpl, moved[i])
		}
		src.Start += k
		dst.End += k
		src.Ops = src.Ops[k:]
		dst.Ops = append(dst.Ops, add...)
	} else {
		tpl := dst.Ops[0]
		moved := src.Ops[len(src.Ops)-k:]
		add := make([]config.OpSetting, k, k+len(dst.Ops))
		for i := range add {
			add[i] = adopt(tpl, moved[i])
		}
		src.End -= k
		dst.Start -= k
		src.Ops = src.Ops[:len(src.Ops)-k]
		dst.Ops = append(add, dst.Ops...)
	}
	// Recompute flags do not transfer across stages: the template's
	// recompute choice applies (the rc-attachment pass re-optimizes).
	out.InvalidateStage(from)
	out.InvalidateStage(to)
	return out
}

// opKs returns the candidate "how many ops to move" arguments for a
// stage with n ops: 1, 2, 4, ... capped at half the stage. The result
// is appended into buf[:0] so callers on the search hot path can
// recycle a scratch slice; each call's result must be fully consumed
// before the next call reuses the buffer.
func opKs(buf []int, n int) []int {
	ks := buf[:0]
	for k := 1; k <= n/2 || k == 1 && n > 1; k *= 2 {
		ks = append(ks, k)
		if k >= n/2 {
			break
		}
	}
	return ks
}

// ---------- primitive applications ----------

func applyDecOps(s *searcher, cfg *config.Config, stage int) []*config.Config {
	est := s.estimate(cfg)
	idle := idlestStage(est, stage)
	if idle < 0 {
		return nil
	}
	dir := +1
	if idle < stage {
		dir = -1
	}
	out := s.applyOut()
	ks := opKs(s.opksBuf, cfg.Stages[stage].NumOps())
	s.opksBuf = ks
	for _, k := range ks {
		// Direct move toward the idlest stage.
		if c := moveOps(s, cfg, stage, dir, k); c != nil {
			out = append(out, c)
		}
		// Relay combination (§4.3): shift every boundary between the
		// bottleneck and the idlest stage by k. Intermediate hops are
		// dead the moment the next hop is cloned from them.
		if idle != stage+dir {
			c := cfg
			ok := true
			for cur := stage; cur != idle; cur += dir {
				next := moveOps(s, c, cur, dir, k)
				if c != cfg {
					s.discard(c)
				}
				if next == nil {
					ok = false
					break
				}
				c = next
			}
			if ok {
				out = append(out, c)
			}
		}
		// Opposite direction as a fallback candidate.
		if k == 1 {
			if c := moveOps(s, cfg, stage, -dir, k); c != nil {
				out = append(out, c)
			}
		}
	}
	return s.keepOut(out)
}

func applyIncOps(s *searcher, cfg *config.Config, stage int) []*config.Config {
	// Pull ops into this stage from whichever neighbor is busier.
	out := s.applyOut()
	for _, dir := range []int{-1, +1} {
		nb := stage + dir
		if nb < 0 || nb >= cfg.NumStages() {
			continue
		}
		ks := opKs(s.opksBuf, cfg.Stages[nb].NumOps())
		s.opksBuf = ks
		for _, k := range ks {
			if c := moveOps(s, cfg, nb, -dir, k); c != nil {
				out = append(out, c)
			}
		}
	}
	return s.keepOut(out)
}

func applyIncMBS(s *searcher, cfg *config.Config, _ int) []*config.Config {
	mbs := cfg.MicroBatch * 2
	if s.graph.GlobalBatch%mbs != 0 {
		return nil
	}
	c := s.clone(cfg)
	c.SetMicroBatch(mbs)
	return s.keepOut(append(s.applyOut(), c))
}

func applyDecMBS(s *searcher, cfg *config.Config, _ int) []*config.Config {
	if cfg.MicroBatch%2 != 0 {
		return nil
	}
	mbs := cfg.MicroBatch / 2
	// Every op's dp must still divide the microbatch.
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			if mbs%cfg.Stages[i].Ops[j].DP != 0 {
				return nil
			}
		}
	}
	c := s.clone(cfg)
	c.SetMicroBatch(mbs)
	return s.keepOut(append(s.applyOut(), c))
}

// applyGrow doubles the bottleneck stage's devices via dp or tp
// (Figure 5(c)/(d)). Device counts must balance exactly: doubling a
// d-device stage consumes d devices, which a partner frees by halving
// only when it holds 2d — so eligible partners are the stages with
// exactly twice the bottleneck's devices, the idlest first (§3.2.1).
func applyGrow(s *searcher, cfg *config.Config, stage int, useDP bool) []*config.Config {
	if cfg.NumStages() < 2 {
		return nil
	}
	est := s.estimate(cfg)
	need := cfg.Stages[stage].Devices * 2
	out := s.applyOut()
	for _, partner := range partnersBySlack(est, cfg, stage, need) {
		for _, partnerDP := range []bool{true, false} { // dec-dp or dec-tp partner primitive
			c := s.clone(cfg)
			grew := false
			c.MutStage(stage, func(st *config.Stage) {
				grew = doubleStageDevices(st, useDP, c.MicroBatch)
			})
			if !grew {
				s.discard(c)
				return s.keepOut(out)
			}
			halved := false
			c.MutStage(partner, func(st *config.Stage) {
				halved = halveStageDevices(st, partnerDP)
			})
			if !halved {
				s.discard(c)
				continue
			}
			out = append(out, c)
		}
		if len(out) > 0 {
			break // one partner is enough; multi-hop explores the rest
		}
	}
	return s.keepOut(out)
}

// applyShrink halves the bottleneck stage's devices via dp or tp; the
// freed devices double a partner holding exactly half the bottleneck's
// count. The slowest such partner benefits most, so it goes first.
func applyShrink(s *searcher, cfg *config.Config, stage int, useDP bool) []*config.Config {
	if cfg.NumStages() < 2 || cfg.Stages[stage].Devices < 2 {
		return nil
	}
	est := s.estimate(cfg)
	want := cfg.Stages[stage].Devices / 2
	partners := partnersBySlack(est, cfg, stage, want)
	// Reverse: give devices to the busiest eligible stage.
	for i, j := 0, len(partners)-1; i < j; i, j = i+1, j-1 {
		partners[i], partners[j] = partners[j], partners[i]
	}
	out := s.applyOut()
	for _, partner := range partners {
		for _, partnerDP := range []bool{true, false} { // inc-dp or inc-tp partner primitive
			c := s.clone(cfg)
			halved := false
			c.MutStage(stage, func(st *config.Stage) {
				halved = halveStageDevices(st, useDP)
			})
			if !halved {
				s.discard(c)
				return s.keepOut(out)
			}
			doubled := false
			c.MutStage(partner, func(st *config.Stage) {
				doubled = doubleStageDevices(st, partnerDP, c.MicroBatch)
			})
			if !doubled {
				s.discard(c)
				continue
			}
			out = append(out, c)
		}
		if len(out) > 0 {
			break
		}
	}
	return s.keepOut(out)
}

// partnersBySlack returns the stages (≠ stage) with exactly `devices`
// devices, ordered from idlest to busiest.
func partnersBySlack(est *perfmodel.Estimate, cfg *config.Config, stage, devices int) []int {
	var out []int
	for i := range cfg.Stages {
		if i != stage && cfg.Stages[i].Devices == devices {
			out = append(out, i)
		}
	}
	sortCands(out, func(a, b int) bool {
		return est.Stages[a].StageTime < est.Stages[b].StageTime
	})
	return out
}

func applyIncDP(s *searcher, cfg *config.Config, stage int) []*config.Config {
	// Besides borrowing devices, dp can grow in place by trading tp
	// for dp within the stage (same device count).
	out := applyGrow(s, cfg, stage, true)
	if c := retile(s, cfg, stage, true); c != nil {
		out = appendCand(s, out, c)
	}
	return out
}

func applyDecDP(s *searcher, cfg *config.Config, stage int) []*config.Config {
	out := applyShrink(s, cfg, stage, true)
	if c := retile(s, cfg, stage, false); c != nil {
		out = appendCand(s, out, c)
	}
	return out
}

func applyIncTP(s *searcher, cfg *config.Config, stage int) []*config.Config {
	out := applyGrow(s, cfg, stage, false)
	if c := retile(s, cfg, stage, false); c != nil {
		out = appendCand(s, out, c)
	}
	return out
}

func applyDecTP(s *searcher, cfg *config.Config, stage int) []*config.Config {
	out := applyShrink(s, cfg, stage, false)
	if c := retile(s, cfg, stage, true); c != nil {
		out = appendCand(s, out, c)
	}
	return out
}

// appendCand appends c to an apply result that may be nil (the helper
// bailed out before claiming the shared buffer) and re-registers the
// buffer so growth is retained.
func appendCand(s *searcher, out []*config.Config, c *config.Config) []*config.Config {
	if out == nil {
		out = s.applyOut()
	}
	return s.keepOut(append(out, c))
}

// retile converts tp↔dp within a stage without changing its device
// count: toDP doubles dp and halves tp (or the reverse).
func retile(s *searcher, cfg *config.Config, stage int, toDP bool) *config.Config {
	st := &cfg.Stages[stage]
	for j := range st.Ops {
		op := &st.Ops[j]
		if toDP {
			if op.TP < 2 || cfg.MicroBatch%(op.DP*2) != 0 {
				return nil
			}
		} else if op.DP < 2 {
			return nil
		}
	}
	c := s.clone(cfg)
	c.MutStage(stage, func(nst *config.Stage) {
		for j := range nst.Ops {
			op := &nst.Ops[j]
			if toDP {
				op.TP /= 2
				op.DP *= 2
				if op.TP < 2 {
					op.SeqPar = false
				}
			} else {
				op.DP /= 2
				op.TP *= 2
				if op.DP < 2 {
					op.ZeRO = false
				}
			}
		}
	})
	return c
}

// savedActBytes approximates the activation bytes an op stashes per
// microbatch — the greedy key for choosing recomputation targets
// (§4.1: largest activation first).
func savedActBytes(g *model.Graph, cfg *config.Config, stage, op int) float64 {
	o := &g.Ops[op]
	set := cfg.Stages[stage].Setting(op)
	samples := float64(cfg.MicroBatch / set.DP)
	return (o.ActElems + o.WorkElems) / float64(set.TP) * samples * g.Precision.BytesPerElem()
}

// rcCand ranks an op by the activation bytes its recompute choice
// stashes; both rc primitives build their ranking in the searcher's
// shared rcBuf scratch (safe: apply functions never nest, see
// searcher.rcBuf).
type rcCand struct {
	op    int
	bytes float64
}

func applyIncRC(s *searcher, cfg *config.Config, stage int) []*config.Config {
	st := &cfg.Stages[stage]
	// Rank non-recomputed ops by descending saved activation.
	cands := s.rcBuf[:0]
	for j := st.Start; j < st.End; j++ {
		if !st.Setting(j).Recompute {
			cands = append(cands, rcCand{j, savedActBytes(s.graph, cfg, stage, j)})
		}
	}
	s.rcBuf = cands
	if len(cands) == 0 {
		return nil
	}
	sortCands(cands, func(a, b rcCand) bool { return a.bytes > b.bytes })

	mark := func(k int) *config.Config {
		c := s.clone(cfg)
		c.MutStage(stage, func(st *config.Stage) {
			for i := 0; i < k && i < len(cands); i++ {
				st.Setting(cands[i].op).Recompute = true
			}
		})
		return c
	}
	out := s.applyOut()
	// Minimal k that brings the stage under the memory limit (greedy
	// goal of §4.1), plus a quarter step and "recompute everything".
	for k := 1; k <= len(cands); k *= 2 {
		c := mark(k)
		out = append(out, c)
		if e := s.estimate(c); e.Feasible {
			break
		}
	}
	if k := len(cands); k > 1 {
		out = append(out, mark(k))
	}
	return s.keepOut(out)
}

func applyDecRC(s *searcher, cfg *config.Config, stage int) []*config.Config {
	st := &cfg.Stages[stage]
	cands := s.rcBuf[:0]
	for j := st.Start; j < st.End; j++ {
		if st.Setting(j).Recompute {
			cands = append(cands, rcCand{j, savedActBytes(s.graph, cfg, stage, j)})
		}
	}
	s.rcBuf = cands
	if len(cands) == 0 {
		return nil
	}
	// Un-recompute the cheapest stashes first.
	sortCands(cands, func(a, b rcCand) bool { return a.bytes < b.bytes })
	clear := func(k int) *config.Config {
		c := s.clone(cfg)
		c.MutStage(stage, func(st *config.Stage) {
			for i := 0; i < k && i < len(cands); i++ {
				st.Setting(cands[i].op).Recompute = false
			}
		})
		return c
	}
	out := s.applyOut()
	for k := 1; k < len(cands); k *= 2 {
		out = append(out, clear(k))
	}
	out = append(out, clear(len(cands)))
	return s.keepOut(out)
}

// sortCands is a tiny insertion sort to keep the apply functions free
// of interface plumbing (candidate lists are short).
func sortCands[T any](s []T, less func(a, b T) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
