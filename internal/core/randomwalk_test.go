package core

import (
	"math/rand"
	"testing"

	"aceso/internal/model"
	"aceso/internal/pipesim"
)

// TestRandomPrimitiveWalk drives the whole system through long random
// sequences of primitive applications and asserts the global
// invariants of DESIGN.md §6 at every step:
//
//  1. every produced configuration validates;
//  2. primitives preserve total devices and op coverage;
//  3. every configuration is estimable (positive, finite metrics);
//  4. every *feasible* configuration is executable by the runtime
//     simulator without error.
func TestRandomPrimitiveWalk(t *testing.T) {
	workloads := []struct {
		name string
		g    func() *model.Graph
		dev  int
	}{
		{"gpt", func() *model.Graph { g, _ := model.GPT3("350M"); return g }, 8},
		{"wrn", func() *model.Graph { g, _ := model.WideResNet("0.5B"); return g }, 8},
		{"uniform", func() *model.Graph { return model.Uniform(24, 1e11, 1e7, 1e6, 64) }, 4},
	}
	prims := make([]*Primitive, 0, len(Table)+len(ExtensionTable))
	for i := range Table {
		prims = append(prims, &Table[i])
	}
	for i := range ExtensionTable {
		prims = append(prims, &ExtensionTable[i])
	}

	for _, wl := range workloads {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			g := wl.g()
			s := newSearcher(t, g, wl.dev)
			rng := rand.New(rand.NewSource(99))
			for _, stages := range []int{1, 2, 4} {
				cfg := mustBalanced(t, g, wl.dev, stages, 4)
				steps, applied := 0, 0
				for steps < 120 {
					steps++
					prim := prims[rng.Intn(len(prims))]
					stage := rng.Intn(cfg.NumStages())
					cands := prim.apply(s, cfg, stage)
					if len(cands) == 0 {
						continue
					}
					c := cands[rng.Intn(len(cands))]
					if c == nil {
						continue
					}
					if err := c.Validate(g, wl.dev); err != nil {
						t.Fatalf("step %d: %s on stage %d produced invalid config: %v",
							steps, prim.Name, stage, err)
					}
					if c.TotalDevices() != wl.dev {
						t.Fatalf("step %d: %s changed device count", steps, prim.Name)
					}
					if c.Hash() != c.Clone().Hash() {
						t.Fatalf("step %d: hash not stable under clone", steps)
					}
					est := s.estimate(c)
					if est.IterTime <= 0 || est.PeakMem <= 0 {
						t.Fatalf("step %d: degenerate estimate %+v", steps, est)
					}
					if est.Feasible {
						if sim, err := pipesim.Simulate(s.pm, c, 1); err != nil {
							t.Fatalf("step %d: feasible config not simulatable: %v", steps, err)
						} else if sim.IterTime <= 0 {
							t.Fatalf("step %d: simulator returned %v", steps, sim.IterTime)
						}
					}
					cfg = c
					applied++
				}
				if applied < 20 {
					t.Errorf("%d stages: only %d/%d random steps applied; walk too constrained",
						stages, applied, steps)
				}
			}
		})
	}
}
