package core

import (
	"fmt"

	"aceso/internal/config"
	"aceso/internal/model"
)

// ProjectConfig adapts a configuration found for one cluster onto a
// cluster with a different device count, preserving as much of its
// structure as possible: the pipeline's operator ranges, recomputation
// flags, microbatch size and each stage's tp:dp ratio survive; device
// counts are re-split and per-op parallelism re-factorized to fit.
//
// This is the warm start for elastic reconfiguration — the paper's
// motivating scenario of "a shared cluster with frequent changes in
// resources" (§1): after losing or gaining nodes, re-searching from
// the projected previous plan converges faster than from scratch.
func ProjectConfig(g *model.Graph, old *config.Config, newDevices int) (*config.Config, error) {
	if newDevices < 1 {
		return nil, fmt.Errorf("core: project onto %d devices", newDevices)
	}
	stages := old.NumStages()
	if stages > newDevices {
		stages = newDevices
	}
	// Merge stages if the new cluster cannot host the old depth: fold
	// the shallowest adjacent pair until it fits.
	ranges := make([][2]int, 0, old.NumStages())
	recomp := make([][]bool, 0, old.NumStages())
	tpFrac := make([]float64, 0, old.NumStages()) // tp share of the stage's devices
	for i := range old.Stages {
		st := &old.Stages[i]
		ranges = append(ranges, [2]int{st.Start, st.End})
		rc := make([]bool, st.NumOps())
		tp := 0
		for j := range st.Ops {
			rc[j] = st.Ops[j].Recompute
			tp += st.Ops[j].TP
		}
		recomp = append(recomp, rc)
		tpFrac = append(tpFrac, float64(tp)/float64(len(st.Ops))/float64(st.Devices))
	}
	for len(ranges) > stages {
		// Merge the pair with the fewest combined ops.
		best := 0
		bestOps := 1 << 30
		for i := 0; i+1 < len(ranges); i++ {
			n := ranges[i+1][1] - ranges[i][0]
			if n < bestOps {
				best, bestOps = i, n
			}
		}
		ranges[best][1] = ranges[best+1][1]
		recomp[best] = append(recomp[best], recomp[best+1]...)
		tpFrac[best] = (tpFrac[best] + tpFrac[best+1]) / 2
		ranges = append(ranges[:best+1], ranges[best+2:]...)
		recomp = append(recomp[:best+1], recomp[best+2:]...)
		tpFrac = append(tpFrac[:best+1], tpFrac[best+2:]...)
	}

	devs, err := config.DeviceSplit(newDevices, len(ranges))
	if err != nil {
		return nil, err
	}
	mbs := old.MicroBatch
	out := &config.Config{MicroBatch: mbs, Stages: make([]config.Stage, len(ranges))}
	for i, r := range ranges {
		st := config.Stage{Start: r[0], End: r[1], Devices: devs[i]}
		// Re-factorize tp×dp = devices keeping the old tp share.
		tp := 1
		for tp*2 <= devs[i] && float64(tp*2)/float64(devs[i]) <= tpFrac[i]+1e-9 {
			tp *= 2
		}
		dp := devs[i] / tp
		// dp must divide the microbatch; shift factors toward tp.
		for dp > 1 && mbs%dp != 0 {
			dp /= 2
			tp *= 2
		}
		st.Ops = make([]config.OpSetting, st.NumOps())
		for j := range st.Ops {
			st.Ops[j] = config.OpSetting{TP: tp, DP: dp, Recompute: recomp[i][j]}
		}
		out.Stages[i] = st
	}
	if err := out.Validate(g, newDevices); err != nil {
		return nil, fmt.Errorf("core: projection invalid: %w", err)
	}
	return out, nil
}

// WarmStart wraps a previous best configuration as an Initializer: the
// worker whose stage count matches the projection starts from it, and
// every other depth falls back to the balanced default.
func WarmStart(prev *config.Config) Initializer {
	return func(g *model.Graph, devices, stages, mbs int) (*config.Config, error) {
		proj, err := ProjectConfig(g, prev, devices)
		if err == nil && proj.NumStages() == stages {
			return proj, nil
		}
		return config.Balanced(g, devices, stages, mbs)
	}
}
