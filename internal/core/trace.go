package core

import (
	"sync"
	"time"
)

// IterationTrace records one iteration of the top-level search loop —
// the raw material of Exp#5 (Figure 11).
type IterationTrace struct {
	StageCount      int
	BottleneckTries int  // bottlenecks attempted before an improvement (Fig 11a)
	Hops            int  // hops of the improving reconfiguration (Fig 11b)
	Improved        bool // false when the iteration fell back to the unexplored pool
}

// ConvergencePoint is one sample of the best-found estimated iteration
// time over search wall time — the curves of Figures 12–14.
type ConvergencePoint struct {
	Elapsed time.Duration
	Score   float64 // estimated iteration time (seconds) of the best config so far
}

// Trace aggregates search statistics across the parallel per-stage-
// count workers. It is safe for concurrent use.
type Trace struct {
	mu          sync.Mutex
	iterations  []IterationTrace
	convergence []ConvergencePoint
	bestScore   float64
	start       time.Time
}

// newTrace returns a Trace anchored at the search start time.
func newTrace(start time.Time) *Trace {
	return &Trace{start: start, bestScore: infeasibleScore * 1e3}
}

func (t *Trace) addIteration(it IterationTrace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.iterations = append(t.iterations, it)
	t.mu.Unlock()
}

func (t *Trace) observe(score float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if score < t.bestScore {
		t.bestScore = score
		t.convergence = append(t.convergence, ConvergencePoint{
			Elapsed: time.Since(t.start),
			Score:   score,
		})
	}
	t.mu.Unlock()
}

// Iterations returns a copy of the per-iteration records.
func (t *Trace) Iterations() []IterationTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]IterationTrace, len(t.iterations))
	copy(out, t.iterations)
	return out
}

// Convergence returns a copy of the best-score-over-time curve.
func (t *Trace) Convergence() []ConvergencePoint {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ConvergencePoint, len(t.convergence))
	copy(out, t.convergence)
	return out
}

// TriesHistogram buckets BottleneckTries over improving iterations:
// hist[k] = number of iterations that needed k+1 bottleneck attempts.
func (t *Trace) TriesHistogram() []int {
	var hist []int
	for _, it := range t.Iterations() {
		if !it.Improved {
			continue
		}
		for len(hist) < it.BottleneckTries {
			hist = append(hist, 0)
		}
		hist[it.BottleneckTries-1]++
	}
	return hist
}

// HopsHistogram buckets Hops over improving iterations.
func (t *Trace) HopsHistogram() []int {
	var hist []int
	for _, it := range t.Iterations() {
		if !it.Improved {
			continue
		}
		for len(hist) < it.Hops {
			hist = append(hist, 0)
		}
		hist[it.Hops-1]++
	}
	return hist
}
