package core

import "aceso/internal/config"

// fineTuneCandidateCap bounds the op-level candidates evaluated per
// fine-tuning pass so that fine-tuning on 1K-layer models cannot
// starve the outer search.
const fineTuneCandidateCap = 96

// fineTune is the §4.2 op-level pass run after each improving
// iteration. It greedily applies two families of adjustments and
// returns the improved configuration (nil when nothing helped):
//
//  1. Flexible tp/dp mixes inside a stage: starting from a handful of
//     suffix positions, convert [j, end) between tp- and dp-heavier
//     tilings of the same device count. Suffixes (rather than arbitrary
//     subranges) minimize the number of concurrency changes within the
//     stage, which is what the paper prefers to bound re-layout
//     collectives.
//  2. Flexible tensor-parallel dimensions: flip individual operators
//     to their alternative sharding dim (row↔col, in↔out channel).
func (s *searcher) fineTune(cfg *config.Config) *config.Config {
	curEst := s.estimate(cfg)
	best := cfg
	bestScore := s.score(cfg, curEst)
	improved := false
	budget := fineTuneCandidateCap

	// Fine-tuning candidates differ from cfg in a single stage, so the
	// batched estimator recycles every other stage's metrics.
	s.pushBatch(cfg, curEst)
	defer s.popBatch()

	consider := func(c *config.Config) {
		if c == nil {
			return
		}
		if budget <= 0 {
			s.discard(c)
			return
		}
		budget--
		h := c.Hash()
		if s.visited[h] {
			s.discard(c)
			return
		}
		if err := c.Validate(s.graph, s.cluster.TotalDevices()); err != nil {
			s.discard(c)
			return
		}
		s.visited[h] = true
		e := s.estimate(c)
		sc := s.score(c, e)
		if e.Feasible {
			s.trace.observe(sc)
		}
		if sc < bestScore {
			// The superseded best is dead unless it is the caller's
			// input configuration.
			if best != cfg {
				s.discard(best)
			}
			best, bestScore = c, sc
			improved = true
		} else {
			s.discard(c)
		}
	}

	for si := range cfg.Stages {
		if s.expired() || budget <= 0 {
			break
		}
		st := &best.Stages[si]
		n := st.NumOps()
		// Suffix starts: stage start plus up to 6 interior positions.
		starts := []int{0}
		for _, f := range []int{8, 4, 2} {
			if p := n - n/f; p > 0 && p < n {
				starts = append(starts, p)
			}
		}
		for _, from := range starts {
			consider(retileRange(s, best, si, from, true))
			consider(retileRange(s, best, si, from, false))
		}
	}

	// Dim flips, bottleneck stage first for the remaining budget.
	est := s.estimate(best)
	bns := Bottlenecks(est, s.cluster.MemoryBytes)
	for _, bn := range bns {
		if s.expired() || budget <= 0 {
			break
		}
		// Capture the op range by value: `best` may be superseded (and
		// its predecessor recycled) while this loop runs, so no pointer
		// into a candidate's stage array may outlive a consider call.
		stStart, stEnd := best.Stages[bn.Stage].Start, best.Stages[bn.Stage].End
		for j := stStart; j < stEnd && budget > 0; j++ {
			op := &s.graph.Ops[j]
			if len(op.Dims) < 2 || best.Stages[bn.Stage].Setting(j).TP < 2 {
				continue // a dim flip on an unsharded op is a no-op
			}
			cur := best.Stages[bn.Stage].Setting(j).Dim
			for d := range op.Dims {
				if d == cur {
					continue
				}
				c := s.clone(best)
				c.MutOp(bn.Stage, j, func(op *config.OpSetting) { op.Dim = d })
				consider(c)
			}
		}
	}

	if !improved {
		return nil
	}
	return best
}

// retileRange converts ops [stage.Start+from, stage.End) between tp-
// and dp-heavier tilings of the same device count. Returns nil when
// illegal.
func retileRange(s *searcher, cfg *config.Config, stage, from int, toDP bool) *config.Config {
	st := &cfg.Stages[stage]
	any := false
	for j := from; j < st.NumOps(); j++ {
		op := &st.Ops[j]
		if toDP {
			if op.TP < 2 || cfg.MicroBatch%(op.DP*2) != 0 {
				return nil
			}
		} else if op.DP < 2 {
			return nil
		}
		any = true
	}
	if !any {
		return nil
	}
	c := s.clone(cfg)
	c.MutStage(stage, func(nst *config.Stage) {
		for j := from; j < nst.NumOps(); j++ {
			op := &nst.Ops[j]
			if toDP {
				op.TP /= 2
				op.DP *= 2
				if op.TP < 2 {
					op.SeqPar = false
				}
			} else {
				op.DP /= 2
				op.TP *= 2
				if op.DP < 2 {
					op.ZeRO = false
				}
			}
		}
	})
	return c
}
