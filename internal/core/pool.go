package core

import "sync"

// stealQueue is one worker's task deque. A mutex-guarded slice is
// enough here: tasks are whole per-stage-count searches (milliseconds
// to seconds each), so queue operations are nowhere near contended —
// the point of the structure is the stealing policy, not lock-free
// throughput.
type stealQueue struct {
	mu    sync.Mutex
	tasks []int
}

// popFront takes the owner's next task: queues are filled in priority
// order (most expensive first), so the owner always works on its most
// expensive remaining task.
func (q *stealQueue) popFront() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.tasks) == 0 {
		return 0, false
	}
	t := q.tasks[0]
	q.tasks = q.tasks[1:]
	return t, true
}

// stealBack takes a task from the opposite end — the victim's cheapest
// remaining work — so a thief never races the owner for the expensive
// task the owner is about to start.
func (q *stealQueue) stealBack() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.tasks)
	if n == 0 {
		return 0, false
	}
	t := q.tasks[n-1]
	q.tasks = q.tasks[:n-1]
	return t, true
}

// runWorkStealing executes run(w, t) exactly once for every t in
// tasks, using at most `workers` goroutines with per-worker deques and
// work stealing, and returns when all tasks have completed. w is the
// worker index (0 ≤ w < workers) executing the task; tasks run by the
// same worker run strictly serially, so per-worker state (such as a
// config arena) needs no locking.
//
// tasks must be given in scheduling-priority order (most expensive
// first); they are dealt round-robin so every worker starts on an
// expensive task, and idle workers steal the cheapest remaining task
// of a busy sibling. Compared with the previous
// one-goroutine-per-stage-count layout this keeps deep-pipeline
// searches from straggling: on a machine with fewer cores than
// pipeline depths, the deepest (slowest) searches begin immediately
// instead of time-slicing against every cheap shallow search.
//
// The task set is static — run() must not add tasks — which makes
// termination trivial: once a worker finds every deque empty, no task
// can ever appear again, so it exits.
func runWorkStealing(workers int, tasks []int, run func(worker, task int)) {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			run(0, t)
		}
		return
	}
	queues := make([]stealQueue, workers)
	for i, t := range tasks {
		q := &queues[i%workers]
		q.tasks = append(q.tasks, t)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				if t, ok := queues[self].popFront(); ok {
					run(self, t)
					continue
				}
				stolen := false
				for off := 1; off < workers; off++ {
					if t, ok := queues[(self+off)%workers].stealBack(); ok {
						run(self, t)
						stolen = true
						break
					}
				}
				if !stolen {
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
