// Property test for the contract the elastic resharder consumes: a
// replanned config addresses only surviving *logical* device ranks —
// contiguous [0, degraded.TotalDevices()) — and the degraded cluster's
// PhysOf maps each of them to a physical device the fault spec did not
// kill. It lives in package core_test because it drives core.Replan
// with chaos.RandomValidFaultSpec, and chaos imports core.
package core_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"aceso/internal/chaos"
	"aceso/internal/config"
	"aceso/internal/core"
	"aceso/internal/hardware"
	"aceso/internal/model"
)

// TestReplanCompactsDeviceRanks: over random valid fault specs, every
// candidate Replan returns fits the compacted logical rank space, and
// the logical→physical map avoids every dead device.
func TestReplanCompactsDeviceRanks(t *testing.T) {
	if testing.Short() {
		t.Skip("property test over many replans is not short")
	}
	g := model.Uniform(8, 1e9, 1e6, 1e5, 8)
	const devices = 8
	healthy := hardware.DGX1V100(1).Restrict(devices)
	prev, err := config.Balanced(g, devices, 2, 4)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(20260806))
	trials := 0
	for trials < 12 {
		spec := chaos.RandomValidFaultSpec(rng, devices)
		degraded, err := healthy.Degrade(spec)
		if err != nil {
			t.Fatalf("RandomValidFaultSpec produced a rejected spec: %v", err)
		}
		if degraded.TotalDevices() == devices {
			continue // no device actually died; the property is vacuous
		}
		trials++

		res, err := core.Replan(context.Background(), g, healthy, spec, prev, core.Options{
			TimeBudget: 150 * time.Millisecond,
			Seed:       int64(trials),
		})
		if err != nil {
			t.Fatalf("trial %d: replan: %v", trials, err)
		}

		dead := map[int]bool{}
		for _, d := range spec.Devices {
			if d.Dead {
				dead[d.Device] = true
			}
		}
		survivors := degraded.TotalDevices()
		for ci, cand := range append([]core.Candidate{res.Best}, res.TopK...) {
			c := cand.Config
			if c == nil {
				continue
			}
			// Compaction: the plan must fit the contiguous logical rank
			// space of the survivors — no plan may address a rank that
			// no longer exists.
			if c.TotalDevices() > survivors {
				t.Fatalf("trial %d cand %d: plan uses %d devices, only %d survive",
					trials, ci, c.TotalDevices(), survivors)
			}
			if verr := c.Validate(g, survivors); verr != nil {
				t.Fatalf("trial %d cand %d: plan invalid on degraded cluster: %v", trials, ci, verr)
			}
			// Every logical rank the plan addresses maps to a live
			// physical device, and the mapping is strictly increasing
			// (contiguous renumbering, no permutation surprises).
			prevPhys := -1
			for r := 0; r < c.TotalDevices(); r++ {
				phys := degraded.PhysOf(r)
				if dead[phys] {
					t.Fatalf("trial %d cand %d: logical rank %d maps to dead device %d",
						trials, ci, r, phys)
				}
				if phys < 0 || phys >= devices {
					t.Fatalf("trial %d cand %d: logical rank %d maps off-grid to %d",
						trials, ci, r, phys)
				}
				if phys <= prevPhys {
					t.Fatalf("trial %d cand %d: PhysOf not strictly increasing at rank %d (%d after %d)",
						trials, ci, r, phys, prevPhys)
				}
				prevPhys = phys
			}
		}
	}
}
