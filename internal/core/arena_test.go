package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
)

// TestArenaAliasing pins the arena's liveness contract (see
// config.Arena): a config recycled through discard() must share no
// memory with any config the searcher retained. The test replays the
// searcher's own discipline — random primitive walks where unpicked
// candidates are either retained (as a pool/top-K insert would) or
// discarded — then scribbles over every byte of recycled memory, both
// directly and through CloneIn, and checks that every retained config
// is bitwise unchanged. A failure here means CloneIn handed out a
// backing array that a live config still references.
func TestArenaAliasing(t *testing.T) {
	g, err := model.GPT3("350M")
	if err != nil {
		t.Fatal(err)
	}
	cl := hardware.DGX1V100(1) // 8 devices
	pm := perfmodel.New(g, cl, 1)
	prims := append(append([]Primitive(nil), Table...), ExtensionTable...)

	type retained struct {
		cfg  *config.Config
		hash uint64
		snap *config.Config // strippedClone at retention time; Hash never called
	}

	walk := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &searcher{
			graph:    g,
			cluster:  cl,
			pm:       pm,
			opts:     Options{ExtendedPrimitives: true}.withDefaults(),
			deadline: time.Now().Add(time.Hour),
			visited:  make(map[uint64]bool),
			pool:     make(map[uint64]Candidate),
			cache:    make(map[uint64]*perfmodel.Estimate),
			arena:    &config.Arena{},
		}
		stages := 1 << rng.Intn(3) // 1, 2 or 4 pipeline stages
		mbs := 1 << rng.Intn(3)    // 1, 2 or 4
		cfg, err := config.Balanced(g, 8, stages, mbs)
		if err != nil {
			return true // not every (stages, mbs) combination is buildable
		}
		var kept []retained
		keep := func(c *config.Config) {
			kept = append(kept, retained{c, c.Hash(), strippedClone(c)})
		}
		cur := cfg
		valid := make([]*config.Config, 0, 8)
		for step := 0; step < 8; step++ {
			prim := &prims[rng.Intn(len(prims))]
			stage := rng.Intn(cur.NumStages())
			cands := prim.apply(s, cur, stage)
			// Copy the batch out: the apply buffer itself is recycled by
			// the next apply call (searcher.applyBufs).
			valid = valid[:0]
			for _, c := range cands {
				if c != nil && c.Validate(g, cl.TotalDevices()) == nil {
					valid = append(valid, c)
				}
			}
			if len(valid) == 0 {
				continue
			}
			pick := rng.Intn(len(valid))
			for i, c := range valid {
				if i == pick {
					continue
				}
				if rng.Intn(2) == 0 {
					keep(c) // as a pool or top-K insert would
				} else {
					s.discard(c)
				}
			}
			if cur != cfg {
				s.discard(cur) // superseded intermediate, nothing aliases it
			}
			cur = valid[pick]
		}
		keep(cur) // the walk's final config is the "best" — always live

		// Scribble phase 1: overwrite every reachable field of every
		// recycled config in place.
		dead := make([]*config.Config, 0, s.arena.Len())
		for {
			c := s.arena.Get()
			if c == nil {
				break
			}
			c.MicroBatch = -1
			for i := range c.Stages {
				st := &c.Stages[i]
				st.Start, st.End, st.Devices = -1, -1, -1
				for j := range st.Ops {
					st.Ops[j] = config.OpSetting{TP: -7, DP: -7, Dim: -7, Recompute: true, ZeRO: true, SeqPar: true}
				}
			}
			dead = append(dead, c)
		}
		// Scribble phase 2: recycle them again through the production
		// path — CloneIn must overwrite every field without touching
		// memory a retained config still references.
		for _, c := range dead {
			s.arena.Put(c)
		}
		for range dead {
			c := cur.CloneIn(s.arena)
			for i := range c.Stages {
				for j := range c.Stages[i].Ops {
					c.Stages[i].Ops[j] = config.OpSetting{TP: -13, DP: -13}
				}
			}
		}

		for i, r := range kept {
			got := strippedClone(r.cfg)
			if !reflect.DeepEqual(got, r.snap) {
				t.Errorf("seed %d: retained config %d mutated by arena recycling\nnow:  %s\nwas:  %s",
					seed, i, r.cfg, r.snap)
				return false
			}
			if h := got.Hash(); h != r.hash {
				t.Errorf("seed %d: retained config %d rebuilt hash %x != %x at retention",
					seed, i, h, r.hash)
				return false
			}
		}
		return true
	}
	if err := quick.Check(walk, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPruneInsertAllocs pins the zero-allocation steady state of the
// pool maintenance path: with pruneBuf hoisted into the searcher and
// poolEntries sorted through a pointer receiver, a prune (and the limbo
// flush that follows at the iteration boundary) allocates nothing, and
// insertTopK splices into its retained backing array.
func TestPruneInsertAllocs(t *testing.T) {
	s := &searcher{pool: make(map[uint64]Candidate, 2*poolCap)}
	fill := func() {
		for i := 0; i < poolCap+1; i++ {
			h := uint64(i)*2654435761 + 1
			s.pool[h] = Candidate{Score: float64(i), hash: h}
		}
	}
	// Warm-up: grow pruneBuf, limbo and the map to steady-state capacity.
	fill()
	s.prunePool()
	s.flushLimbo()

	if got := testing.AllocsPerRun(10, func() {
		fill()
		s.prunePool()
		s.flushLimbo()
	}); got > 0 {
		t.Errorf("prunePool+flushLimbo: %.0f allocs/op in steady state, want 0", got)
	}

	const k = 5
	list := make([]Candidate, 0, k+1)
	n := 0
	if got := testing.AllocsPerRun(100, func() {
		// Each insert is a fresh hash ranking first, so it takes the
		// splice path (append + copy) every time.
		n++
		list = insertTopK(list, Candidate{Score: -float64(n), hash: uint64(n)}, k)
	}); got > 0 {
		t.Errorf("insertTopK: %.0f allocs/op in steady state, want 0", got)
	}
}
