package exps

import (
	"errors"
	"fmt"
	"io"

	"aceso/internal/baselines/alpa"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/tablefmt"
)

// Fig9Row is one layer-count point of the Exp#3 scalability study on
// 8 GPUs: search cost and achieved throughput for Aceso and the
// Alpa-like baseline.
type Fig9Row struct {
	Layers      int
	AcesoSearch float64 // seconds
	AcesoIter   float64 // simulated iteration time (s)
	AlpaSearch  float64 // seconds; 0 when failed
	AlpaIter    float64
	AlpaFailed  bool
}

// Fig9 searches DeepNet-style transformers of increasing depth over 8
// GPUs (Exp#3). Aceso must always return within budget; the Alpa-like
// baseline's layer-group DP grows with depth and fails compilation
// beyond 64 layers.
func Fig9(set Settings, layerCounts []int) ([]Fig9Row, error) {
	set = set.withDefaults()
	if len(layerCounts) == 0 {
		layerCounts = []int{8, 16, 32, 64, 128, 256, 512, 1024}
	}
	cl := hardware.DGX1V100(1)
	var out []Fig9Row
	for _, layers := range layerCounts {
		g, err := model.DeepTransformer(layers)
		if err != nil {
			return nil, err
		}
		row := Fig9Row{Layers: layers}

		run, err := runAceso(g, cl, set, nil)
		if err != nil {
			return nil, fmt.Errorf("exps: fig9 %d layers: %w", layers, err)
		}
		row.AcesoSearch = run.SearchTime.Seconds()
		if run.Simulated != nil {
			row.AcesoIter = run.Simulated.IterTime
		}

		al, err := alpa.Search(g, cl, alpa.Options{
			Seed: set.Seed,
			// Deep models need group counts tracking depth — the very
			// scaling that sinks the baseline.
			LayerGroupsGrid: []int{layers},
			MaxMicroBatch:   8,
		})
		switch {
		case errors.Is(err, alpa.ErrTooDeep):
			row.AlpaFailed = true
		case err != nil:
			row.AlpaFailed = true
		default:
			row.AlpaSearch = al.EmulatedSearchCost.Seconds()
			if sim, _, err := simulate(g, cl, al.Best, set.Seed); err == nil && !sim.OOM {
				row.AlpaIter = sim.IterTime
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderFig9 prints the scalability table.
func RenderFig9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintln(w, "Figure 9 (Exp#3): scaling to 1K-layer transformers on 8 GPUs (x = failed)")
	t := &tablefmt.Table{Header: []string{
		"layers", "Alpa search (s)", "Aceso search (s)",
		"Alpa iter (s)", "Aceso iter (s)", "Aceso speedup"}}
	for _, r := range rows {
		alpaSearch, alpaIter, speedup := "x", "x", "-"
		if !r.AlpaFailed {
			alpaSearch = fmt.Sprintf("%.1f", r.AlpaSearch)
			if r.AlpaIter > 0 {
				alpaIter = fmt.Sprintf("%.2f", r.AlpaIter)
				if r.AcesoIter > 0 {
					speedup = fmt.Sprintf("%.2fx", r.AlpaIter/r.AcesoIter)
				}
			}
		}
		t.Add(r.Layers, alpaSearch, fmt.Sprintf("%.1f", r.AcesoSearch),
			alpaIter, fmt.Sprintf("%.2f", r.AcesoIter), speedup)
	}
	t.Render(w)
}
