package exps

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// CSV writers produce machine-readable versions of every experiment's
// rows, so the figures can be re-plotted outside this repository
// (cmd/acesobench -csv <dir>).

func writeAll(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(rows); err != nil {
		return fmt.Errorf("exps: csv: %w", err)
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
func d(v int) string     { return strconv.Itoa(v) }

// WriteCSV emits every end-to-end cell (the data behind Figure 7,
// Figure 8, Tables 3–5 and Figures 15–16).
func (e *E2E) WriteCSV(w io.Writer) error {
	rows := [][]string{{
		"family", "size", "gpus",
		"aceso_iter_s", "megatron_iter_s", "alpa_iter_s",
		"aceso_tflops", "megatron_tflops", "alpa_tflops",
		"aceso_search_s", "alpa_search_s",
		"pred_time_s", "actual_time_s", "pred_mem_bytes", "actual_mem_bytes",
	}}
	for _, c := range e.Cells {
		rows = append(rows, []string{
			c.Family, c.Size, d(c.GPUs),
			f(c.AcesoIter), f(c.MegatronIter), f(c.AlpaIter),
			f(c.AcesoTF), f(c.MegatronTF), f(c.AlpaTF),
			f(c.AcesoSearch), f(c.AlpaSearch),
			f(c.PredTime), f(c.ActualTime), f(c.PredMem), f(c.ActualMem),
		})
	}
	return writeAll(w, rows)
}

// WriteFig1CSV emits the configuration-space counts.
func WriteFig1CSV(w io.Writer, rows []Fig1Row) error {
	out := [][]string{{"layers", "log10_2mech", "log10_3mech", "log10_4mech"}}
	for _, r := range rows {
		out = append(out, []string{d(r.Layers), f(r.Log10Two), f(r.Log10Three), f(r.Log10Four)})
	}
	return writeAll(w, out)
}

// WriteFig9CSV emits the deep-model scalability rows.
func WriteFig9CSV(w io.Writer, rows []Fig9Row) error {
	out := [][]string{{"layers", "aceso_search_s", "aceso_iter_s", "alpa_search_s", "alpa_iter_s", "alpa_failed"}}
	for _, r := range rows {
		out = append(out, []string{
			d(r.Layers), f(r.AcesoSearch), f(r.AcesoIter),
			f(r.AlpaSearch), f(r.AlpaIter), strconv.FormatBool(r.AlpaFailed),
		})
	}
	return writeAll(w, out)
}

// WriteFig10CSV emits the DP-vs-Aceso exploration rows.
func WriteFig10CSV(w io.Writer, rows []Fig10Row) error {
	out := [][]string{{"model", "gpus", "dp_explored", "aceso_explored", "dp_iter_s", "aceso_iter_s"}}
	for _, r := range rows {
		out = append(out, []string{
			r.Model, d(r.GPUs), d(r.DPExplored), d(r.AcesoExplored),
			f(r.DPIter), f(r.AcesoIter),
		})
	}
	return writeAll(w, out)
}

// WriteFig11CSV emits the heuristic-efficiency histograms.
func WriteFig11CSV(w io.Writer, r *Fig11Result) error {
	out := [][]string{{"metric", "bucket", "count"}}
	for i, v := range r.Tries {
		out = append(out, []string{"bottleneck_tries", d(i + 1), d(v)})
	}
	for i, v := range r.Hops {
		out = append(out, []string{"hops", d(i + 1), d(v)})
	}
	return writeAll(w, out)
}

// WriteCurvesCSV emits convergence curves: one row per (group,
// variant, time fraction).
func WriteCurvesCSV(w io.Writer, groups map[string][]Curve) error {
	out := [][]string{{"group", "variant", "budget_fraction", "elapsed_s", "best_iter_s"}}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, c := range groups[key] {
			for i, v := range c.Best {
				frac := float64(i+1) / float64(len(c.Best))
				elapsed := time.Duration(frac * float64(c.Budget))
				out = append(out, []string{
					key, c.Label, f(frac), f(elapsed.Seconds()), f(v),
				})
			}
		}
	}
	return writeAll(w, out)
}
