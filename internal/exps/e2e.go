package exps

import (
	"fmt"
	"io"
	"math"

	"aceso/internal/baselines/alpa"
	"aceso/internal/baselines/megatron"
	"aceso/internal/hardware"
	"aceso/internal/tablefmt"
)

// E2ECell is one (family, size) point of the end-to-end comparison —
// the shared raw material of Figure 7, Figure 8, Tables 3–5 and
// Figures 15–16.
type E2ECell struct {
	Family string
	Size   string
	GPUs   int

	// Simulated iteration times (seconds); 0 marks "not run / failed".
	AcesoIter, MegatronIter, AlpaIter float64
	// Effective TFLOPS per GPU (Tables 3–5).
	AcesoTF, MegatronTF, AlpaTF float64
	// Search costs in seconds (Figure 8); Alpa's includes the emulated
	// compile+profile charge.
	AcesoSearch, AlpaSearch float64

	// Performance-model accuracy on Aceso's chosen config (Fig 15/16).
	PredTime, ActualTime float64
	PredMem, ActualMem   float64 // bytes
}

// Throughputs returns the per-system throughput of the cell in
// samples/second, zero for missing systems.
func (c *E2ECell) Throughputs(batch int) (aceso, megatron, alpaT float64) {
	conv := func(t float64) float64 {
		if t <= 0 {
			return 0
		}
		return float64(batch) / t
	}
	return conv(c.AcesoIter), conv(c.MegatronIter), conv(c.AlpaIter)
}

// E2E bundles every end-to-end cell.
type E2E struct {
	Settings Settings
	Cells    []E2ECell
	batches  map[string]int // family → global batch
}

// familySizes maps families to their Table 2 size labels.
var familySizes = map[string][]string{
	"gpt3":    {"350M", "1.3B", "2.6B", "6.7B", "13B"},
	"t5":      {"770M", "3B", "6B", "11B", "22B"},
	"wresnet": {"0.5B", "2B", "4B", "6.8B", "13B"},
}

// E2EFamilies is the canonical family order of Figure 7.
var E2EFamilies = []string{"gpt3", "wresnet", "t5"}

// RunE2E executes Exp#1/#2's protocol for the given families: for each
// model size on its device count, search with Aceso (executing the
// top-5 and keeping the fastest), grid-search Megatron-LM, solve the
// Alpa-like baseline (except for T5, which had no official Alpa
// implementation), and simulate every found configuration.
func RunE2E(set Settings, families []string) (*E2E, error) {
	set = set.withDefaults()
	if len(families) == 0 {
		families = E2EFamilies
	}
	out := &E2E{Settings: set, batches: map[string]int{}}
	for _, fam := range families {
		sizes, ok := familySizes[fam]
		if !ok {
			return nil, errUnknownFamily(fam)
		}
		for si := 0; si < set.Sizes; si++ {
			size := sizes[si]
			gpus := GPUsForSize[si]
			cell, err := runE2ECell(fam, size, gpus, set)
			if err != nil {
				return nil, fmt.Errorf("exps: %s-%s on %d GPUs: %w", fam, size, gpus, err)
			}
			out.Cells = append(out.Cells, *cell)
			if _, ok := out.batches[fam]; !ok {
				g, _ := buildModel(fam, size)
				out.batches[fam] = g.GlobalBatch
			}
		}
	}
	return out, nil
}

func runE2ECell(fam, size string, gpus int, set Settings) (*E2ECell, error) {
	g, err := buildModel(fam, size)
	if err != nil {
		return nil, err
	}
	cl := hardware.DGX1V100(4).Restrict(gpus)
	cell := &E2ECell{Family: fam, Size: size, GPUs: gpus}

	// Aceso.
	run, err := runAceso(g, cl, set, nil)
	if err != nil {
		return nil, err
	}

	// §5.1: "For the 1-GPU setting, we ran all the systems under the
	// same configuration" — there is nothing to parallelize, so every
	// system executes identically.
	if gpus == 1 {
		if run.Simulated != nil {
			cell.AcesoIter = run.Simulated.IterTime
			cell.MegatronIter = cell.AcesoIter
			cell.AcesoTF = tflops(g, gpus, cell.AcesoIter)
			cell.MegatronTF = cell.AcesoTF
			if fam != "t5" {
				cell.AlpaIter = cell.AcesoIter
				cell.AlpaTF = cell.AcesoTF
			}
			cell.PredTime = run.Predicted.IterTime
			cell.ActualTime = run.Simulated.IterTime
			cell.PredMem = run.Predicted.PeakMem
			cell.ActualMem = run.Simulated.PeakMem
		}
		cell.AcesoSearch = run.SearchTime.Seconds()
		if fam != "t5" {
			if al, err := alpa.Search(g, cl, alpa.Options{Seed: set.Seed}); err == nil {
				cell.AlpaSearch = al.EmulatedSearchCost.Seconds()
			}
		}
		return cell, nil
	}
	if run.Simulated != nil {
		cell.AcesoIter = run.Simulated.IterTime
		cell.AcesoTF = tflops(g, gpus, cell.AcesoIter)
		cell.PredTime = run.Predicted.IterTime
		cell.ActualTime = run.Simulated.IterTime
		cell.PredMem = run.Predicted.PeakMem
		cell.ActualMem = run.Simulated.PeakMem
	}
	cell.AcesoSearch = run.SearchTime.Seconds()

	// Megatron-LM grid.
	if mg, err := megatron.Search(g, cl, megatron.Options{Seed: set.Seed}); err == nil {
		if sim, _, err := simulate(g, cl, mg.Best, set.Seed); err == nil && !sim.OOM {
			cell.MegatronIter = sim.IterTime
			cell.MegatronTF = tflops(g, gpus, sim.IterTime)
		}
	}

	// Alpa-like (not for T5: the paper had no official T5 support).
	if fam != "t5" {
		if al, err := alpa.Search(g, cl, alpa.Options{Seed: set.Seed}); err == nil {
			if sim, _, err := simulate(g, cl, al.Best, set.Seed); err == nil && !sim.OOM {
				cell.AlpaIter = sim.IterTime
				cell.AlpaTF = tflops(g, gpus, sim.IterTime)
			}
			cell.AlpaSearch = al.EmulatedSearchCost.Seconds()
		}
	}
	return cell, nil
}

// RenderFig7 prints normalized training throughput per family (Exp#1).
func (e *E2E) RenderFig7(w io.Writer) {
	fmt.Fprintln(w, "Figure 7 (Exp#1): normalized training throughput (higher is better; - = not run, x = failed)")
	for _, fam := range E2EFamilies {
		cells := e.family(fam)
		if len(cells) == 0 {
			continue
		}
		t := &tablefmt.Table{Header: []string{"size", "GPUs", "Megatron-LM", "Alpa", "Aceso", "Aceso speedup vs best baseline"}}
		for _, c := range cells {
			a, m, al := c.Throughputs(e.batches[fam])
			best := math.Max(a, math.Max(m, al))
			if best == 0 {
				continue
			}
			norm := func(v float64, ran bool) string {
				if !ran {
					return "-"
				}
				if v == 0 {
					return "x"
				}
				return fmt.Sprintf("%.2f", v/best)
			}
			baseline := math.Max(m, al)
			speedup := "-"
			if baseline > 0 && a > 0 {
				speedup = fmt.Sprintf("%.2fx", a/baseline)
			}
			t.Add(c.Size, c.GPUs, norm(m, true), norm(al, fam != "t5"), norm(a, true), speedup)
		}
		fmt.Fprintf(w, "\n[%s]\n", fam)
		t.Render(w)
	}
}

// RenderFig8 prints the search-cost comparison (Exp#2).
func (e *E2E) RenderFig8(w io.Writer) {
	fmt.Fprintln(w, "Figure 8 (Exp#2): configuration search cost (seconds; Alpa includes emulated compile+profile charges)")
	for _, fam := range []string{"gpt3", "wresnet"} {
		cells := e.family(fam)
		if len(cells) == 0 {
			continue
		}
		t := &tablefmt.Table{Header: []string{"size", "GPUs", "Alpa (s)", "Aceso (s)", "Aceso/Alpa"}}
		for _, c := range cells {
			if c.AlpaSearch <= 0 {
				continue
			}
			t.Add(c.Size, c.GPUs, c.AlpaSearch, c.AcesoSearch,
				fmt.Sprintf("%.1f%%", 100*c.AcesoSearch/c.AlpaSearch))
		}
		fmt.Fprintf(w, "\n[%s]\n", fam)
		t.Render(w)
	}
}

// RenderTables prints Tables 3–5: effective TFLOPS per GPU.
func (e *E2E) RenderTables(w io.Writer) {
	titles := map[string]string{
		"gpt3":    "Table 3: GPT-3 TFLOPS per GPU",
		"wresnet": "Table 4: Wide-Resnet TFLOPS per GPU",
		"t5":      "Table 5: T5 TFLOPS per GPU",
	}
	for _, fam := range E2EFamilies {
		cells := e.family(fam)
		if len(cells) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n%s\n", titles[fam])
		t := &tablefmt.Table{Header: []string{"system"}}
		for _, c := range cells {
			t.Header = append(t.Header, c.Size)
		}
		systems := []struct {
			name string
			get  func(*E2ECell) float64
		}{
			{"Megatron-LM", func(c *E2ECell) float64 { return c.MegatronTF }},
			{"Alpa", func(c *E2ECell) float64 { return c.AlpaTF }},
			{"Aceso", func(c *E2ECell) float64 { return c.AcesoTF }},
		}
		for _, sys := range systems {
			if fam == "t5" && sys.name == "Alpa" {
				continue
			}
			row := []any{sys.name}
			for i := range cells {
				row = append(row, sys.get(&cells[i]))
			}
			t.Add(row...)
		}
		t.Render(w)
	}
}

// RenderFig15 prints predicted-vs-actual iteration time (Exp#8).
func (e *E2E) RenderFig15(w io.Writer) {
	fmt.Fprintln(w, "Figure 15 (Exp#8): predicted vs actual (simulated) iteration time")
	for _, fam := range []string{"gpt3", "wresnet"} {
		cells := e.family(fam)
		if len(cells) == 0 {
			continue
		}
		t := &tablefmt.Table{Header: []string{"size", "GPUs", "predicted (s)", "actual (s)", "error"}}
		var sumErr float64
		n := 0
		for _, c := range cells {
			if c.ActualTime <= 0 {
				continue
			}
			err := math.Abs(c.PredTime-c.ActualTime) / c.ActualTime
			sumErr += err
			n++
			t.Add(c.Size, c.GPUs, fmt.Sprintf("%.3f", c.PredTime),
				fmt.Sprintf("%.3f", c.ActualTime), fmt.Sprintf("%.2f%%", 100*err))
		}
		fmt.Fprintf(w, "\n[%s]  avg error %.2f%%\n", fam, 100*sumErr/math.Max(1, float64(n)))
		t.Render(w)
	}
}

// RenderFig16 prints predicted-vs-actual memory (Exp#9).
func (e *E2E) RenderFig16(w io.Writer) {
	fmt.Fprintln(w, "Figure 16 (Exp#9): predicted vs actual (simulated) peak memory")
	const gib = 1 << 30
	for _, fam := range []string{"gpt3", "wresnet"} {
		cells := e.family(fam)
		if len(cells) == 0 {
			continue
		}
		t := &tablefmt.Table{Header: []string{"size", "GPUs", "predicted (GiB)", "actual (GiB)", "error"}}
		var sumErr float64
		n := 0
		for _, c := range cells {
			if c.ActualMem <= 0 {
				continue
			}
			err := math.Abs(c.PredMem-c.ActualMem) / c.ActualMem
			sumErr += err
			n++
			t.Add(c.Size, c.GPUs, fmt.Sprintf("%.2f", c.PredMem/gib),
				fmt.Sprintf("%.2f", c.ActualMem/gib), fmt.Sprintf("%.2f%%", 100*err))
		}
		fmt.Fprintf(w, "\n[%s]  avg error %.2f%%\n", fam, 100*sumErr/math.Max(1, float64(n)))
		t.Render(w)
	}
}

func (e *E2E) family(fam string) []E2ECell {
	var out []E2ECell
	for _, c := range e.Cells {
		if c.Family == fam {
			out = append(out, c)
		}
	}
	return out
}
