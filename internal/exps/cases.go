package exps

import (
	"fmt"
	"io"
	"sort"

	"aceso/internal/config"
	"aceso/internal/hardware"
)

// CaseStudy is the §5.4 qualitative analysis of one found config.
type CaseStudy struct {
	Title  string
	Config *config.Config
	Notes  []string
}

// Cases reproduces the two §5.4 case studies: GPT-3 1.3B on 4 GPUs
// (uneven pipeline stages with partial recomputation) and Wide-ResNet
// 6.8B on 16 GPUs (mixed per-op dp×tp inside a stage).
func Cases(set Settings) ([]CaseStudy, error) {
	set = set.withDefaults()
	var out []CaseStudy

	{
		g, err := buildModel("gpt3", "1.3B")
		if err != nil {
			return nil, err
		}
		run, err := runAceso(g, hardware.DGX1V100(1).Restrict(4), set, nil)
		if err != nil {
			return nil, err
		}
		cs := CaseStudy{Title: "GPT-3 1.3B on 4 GPUs (§5.4: uneven pipeline stages)", Config: run.Best}
		cs.Notes = describeStages(run.Best)
		out = append(out, cs)
	}
	{
		g, err := buildModel("wresnet", "6.8B")
		if err != nil {
			return nil, err
		}
		run, err := runAceso(g, hardware.DGX1V100(2), set, nil)
		if err != nil {
			return nil, err
		}
		cs := CaseStudy{Title: "Wide-ResNet 6.8B on 16 GPUs (§5.4: per-op dp×tp mixes)", Config: run.Best}
		cs.Notes = describeStages(run.Best)
		out = append(out, cs)
	}
	return out, nil
}

// describeStages summarizes stage shapes, recompute counts and
// distinct tp×dp mixes.
func describeStages(c *config.Config) []string {
	var notes []string
	notes = append(notes, fmt.Sprintf("pipeline stages: %d, microbatch %d", c.NumStages(), c.MicroBatch))
	evenOps := true
	n0 := c.Stages[0].NumOps()
	for i := range c.Stages {
		st := &c.Stages[i]
		if st.NumOps() != n0 {
			evenOps = false
		}
		mixes := map[[2]int]int{}
		for j := range st.Ops {
			mixes[[2]int{st.Ops[j].TP, st.Ops[j].DP}]++
		}
		keys := make([][2]int, 0, len(mixes))
		for k := range mixes {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a][0] != keys[b][0] {
				return keys[a][0] < keys[b][0]
			}
			return keys[a][1] < keys[b][1]
		})
		mixDesc := ""
		for _, k := range keys {
			mixDesc += fmt.Sprintf(" tp%d×dp%d(%d ops)", k[0], k[1], mixes[k])
		}
		notes = append(notes, fmt.Sprintf(
			"stage %d: %d ops on %d GPUs, %d recomputed,%s",
			i, st.NumOps(), st.Devices, c.RecomputedOps(i), mixDesc))
	}
	if !evenOps {
		notes = append(notes, "stages are UNEVEN op partitions (outside Megatron-LM/Alpa's space)")
	}
	return notes
}

// RenderCases prints the case studies.
func RenderCases(w io.Writer, cases []CaseStudy) {
	fmt.Fprintln(w, "§5.4 case studies: configurations found by Aceso")
	for _, cs := range cases {
		fmt.Fprintf(w, "\n%s\n", cs.Title)
		for _, n := range cs.Notes {
			fmt.Fprintf(w, "  %s\n", n)
		}
	}
}
