package exps

import (
	"fmt"
	"io"

	"aceso/internal/core"
	"aceso/internal/hardware"
	"aceso/internal/pipesim"
	"aceso/internal/tablefmt"
)

// AblationRow is one search-design variant's outcome on the reference
// workload (GPT-3 1.3B on 4 GPUs).
type AblationRow struct {
	Variant  string
	BestIter float64 // best estimated iteration time (s)
	Explored int
}

// Ablations quantifies this implementation's own design choices —
// beyond the paper's ablations — by re-running the reference search
// with each knob flipped: branch factor of the multi-hop recursion,
// the fine-tuning pass, Heuristic-2, and the extended (ZeRO) primitive
// space. It also reports the 1F1B-vs-GPipe memory ratio that justifies
// Eq. 1's scheduling premise.
func Ablations(set Settings) ([]AblationRow, float64, error) {
	set = set.withDefaults()
	g, err := buildModel("gpt3", "1.3B")
	if err != nil {
		return nil, 0, err
	}
	cl := hardware.DGX1V100(1).Restrict(4)

	variants := []struct {
		name string
		mut  func(*core.Options)
	}{
		{"baseline (BranchFactor=3, fine-tune, H2)", nil},
		{"BranchFactor=1", func(o *core.Options) { o.BranchFactor = 1 }},
		{"BranchFactor=6", func(o *core.Options) { o.BranchFactor = 6 }},
		{"no fine-tuning", func(o *core.Options) { o.DisableFineTune = true }},
		{"no Heuristic-2 (random order)", func(o *core.Options) { o.DisableHeuristic2 = true }},
		{"extended primitives (ZeRO)", func(o *core.Options) { o.ExtendedPrimitives = true }},
	}
	var rows []AblationRow
	for _, v := range variants {
		run, err := runAceso(g, cl, set, v.mut)
		if err != nil {
			return nil, 0, fmt.Errorf("exps: ablation %q: %w", v.name, err)
		}
		rows = append(rows, AblationRow{
			Variant:  v.name,
			BestIter: run.Predicted.IterTime,
			Explored: run.Explored,
		})
	}

	// Scheduling ablation: GPipe vs 1F1B peak memory on a 4-stage
	// pipeline (the Eq. 1 premise).
	pmRun, err := runAceso(g, cl, set, func(o *core.Options) { o.StageCounts = []int{4} })
	if err != nil {
		return nil, 0, err
	}
	memRatio := 0.0
	if pmRun.Best != nil {
		pm := pmModel(g, cl, set.Seed)
		if one, err := pipesim.Simulate(pm, pmRun.Best, set.Seed); err == nil {
			if gp, err := pipesim.SimulateSchedule(pm, pmRun.Best, set.Seed, pipesim.GPipe); err == nil && one.PeakMem > 0 {
				memRatio = gp.PeakMem / one.PeakMem
			}
		}
	}
	return rows, memRatio, nil
}

// RenderAblations prints the design-choice table.
func RenderAblations(w io.Writer, rows []AblationRow, gpipeMemRatio float64) {
	fmt.Fprintln(w, "Search-design ablations (GPT-3 1.3B, 4 GPUs; lower iteration time is better)")
	t := &tablefmt.Table{Header: []string{"variant", "best iter (s)", "configs explored"}}
	for _, r := range rows {
		t.Add(r.Variant, fmt.Sprintf("%.3f", r.BestIter), r.Explored)
	}
	t.Render(w)
	if gpipeMemRatio > 0 {
		fmt.Fprintf(w, "\nscheduling: GPipe peak memory is %.2f× 1F1B's on the 4-stage plan (why Eq.1 assumes 1F1B)\n", gpipeMemRatio)
	}
}
