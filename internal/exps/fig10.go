package exps

import (
	"fmt"
	"io"

	"aceso/internal/baselines/dpsearch"
	"aceso/internal/hardware"
	"aceso/internal/tablefmt"
)

// Fig10Row compares exploration cost and found-configuration quality
// between the pruned dynamic program and Aceso (Exp#4).
type Fig10Row struct {
	Model         string
	GPUs          int
	DPExplored    int
	AcesoExplored int
	// Simulated ("runtime") iteration times of the found configs.
	DPIter    float64
	AcesoIter float64
}

// Fig10 runs the Exp#4 comparison on GPT-3 2.6B (8 GPUs) and 6.7B
// (16 GPUs).
func Fig10(set Settings) ([]Fig10Row, error) {
	set = set.withDefaults()
	cases := []struct {
		size string
		gpus int
	}{
		{"2.6B", 8},
		{"6.7B", 16},
	}
	var out []Fig10Row
	for _, tc := range cases {
		g, err := buildModel("gpt3", tc.size)
		if err != nil {
			return nil, err
		}
		cl := hardware.DGX1V100(4).Restrict(tc.gpus)
		row := Fig10Row{Model: "GPT-3 " + tc.size, GPUs: tc.gpus}

		dp, err := dpsearch.Search(g, cl, dpsearch.Options{Seed: set.Seed})
		if err != nil {
			return nil, fmt.Errorf("exps: fig10 dp %s: %w", tc.size, err)
		}
		row.DPExplored = dp.Explored
		if sim, _, err := simulate(g, cl, dp.Best, set.Seed); err == nil && !sim.OOM {
			row.DPIter = sim.IterTime
		}

		run, err := runAceso(g, cl, set, nil)
		if err != nil {
			return nil, fmt.Errorf("exps: fig10 aceso %s: %w", tc.size, err)
		}
		row.AcesoExplored = run.Explored
		if run.Simulated != nil {
			row.AcesoIter = run.Simulated.IterTime
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderFig10 prints the exploration-efficiency comparison.
func RenderFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintln(w, "Figure 10 (Exp#4): configurations explored and found-config performance, DP vs Aceso")
	t := &tablefmt.Table{Header: []string{
		"model", "GPUs", "DP explored", "Aceso explored", "ratio",
		"DP iter (s)", "Aceso iter (s)"}}
	for _, r := range rows {
		ratio := "-"
		if r.DPExplored > 0 {
			ratio = fmt.Sprintf("%.1f%%", 100*float64(r.AcesoExplored)/float64(r.DPExplored))
		}
		t.Add(r.Model, r.GPUs, r.DPExplored, r.AcesoExplored, ratio,
			fmt.Sprintf("%.2f", r.DPIter), fmt.Sprintf("%.2f", r.AcesoIter))
	}
	t.Render(w)
}
