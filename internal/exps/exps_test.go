package exps

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"aceso/internal/core"
)

// fast returns settings tuned for unit tests.
func fast() Settings {
	return Settings{Budget: 250 * time.Millisecond, Seed: 1, Sizes: 2}
}

func TestFig1Growth(t *testing.T) {
	rows := Fig1(nil)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for i, r := range rows {
		if r.Log10Two >= r.Log10Three || r.Log10Three >= r.Log10Four {
			t.Errorf("row %d: mechanism counts not increasing: %+v", i, r)
		}
		if i > 0 && rows[i].Log10Four <= rows[i-1].Log10Four {
			t.Errorf("row %d: space must grow with layers", i)
		}
	}
	// Sanity: 2-layer, 2-mech on 16 devices = 5² = 25 → log10 ≈ 1.4.
	r := ConfigSpaceSize(2, 16)
	if r.Log10Two < 1.3 || r.Log10Two > 1.5 {
		t.Errorf("ConfigSpaceSize(2,16).Log10Two = %v, want ≈1.4", r.Log10Two)
	}
	var buf bytes.Buffer
	RenderFig1(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Error("render missing title")
	}
}

func TestE2ESmall(t *testing.T) {
	e, err := RunE2E(fast(), []string{"gpt3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(e.Cells))
	}
	for _, c := range e.Cells {
		if c.AcesoIter <= 0 {
			t.Errorf("%s-%s: Aceso produced no simulated time", c.Family, c.Size)
		}
		if c.MegatronIter <= 0 {
			t.Errorf("%s-%s: Megatron produced no simulated time", c.Family, c.Size)
		}
		if c.AlpaIter <= 0 {
			t.Errorf("%s-%s: Alpa produced no simulated time", c.Family, c.Size)
		}
		if c.PredTime <= 0 || c.ActualTime <= 0 || c.PredMem <= 0 || c.ActualMem <= 0 {
			t.Errorf("%s-%s: accuracy fields missing", c.Family, c.Size)
		}
	}
	var buf bytes.Buffer
	e.RenderFig7(&buf)
	e.RenderFig8(&buf)
	e.RenderTables(&buf)
	e.RenderFig15(&buf)
	e.RenderFig16(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 7", "Figure 8", "Table 3", "Figure 15", "Figure 16"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestE2EUnknownFamily(t *testing.T) {
	if _, err := RunE2E(fast(), []string{"resnext"}); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestFig9Small(t *testing.T) {
	rows, err := Fig9(fast(), []int{8, 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].AlpaFailed {
		t.Error("8 layers should compile in the Alpa baseline")
	}
	if !rows[1].AlpaFailed {
		t.Error("128 layers must fail Alpa compilation (Exp#3)")
	}
	if rows[1].AcesoIter <= 0 {
		t.Error("Aceso must still handle 128 layers")
	}
	var buf bytes.Buffer
	RenderFig9(&buf, rows)
	if !strings.Contains(buf.String(), "x") {
		t.Error("render should mark the Alpa failure with x")
	}
}

func TestFig11Stats(t *testing.T) {
	r, err := Fig11(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tries) == 0 || len(r.Hops) == 0 {
		t.Fatal("no histogram data collected")
	}
	if rate := r.FirstTryRate(); rate <= 0 || rate > 1 {
		t.Errorf("FirstTryRate = %v", rate)
	}
	var buf bytes.Buffer
	RenderFig11(&buf, r)
	if !strings.Contains(buf.String(), "bottlenecks tried") {
		t.Error("render missing histogram (a)")
	}
}

func TestFig12Curves(t *testing.T) {
	set := fast()
	curves, err := Fig12(set)
	if err != nil {
		t.Fatal(err)
	}
	for key, cs := range curves {
		if len(cs) != 4 { // heuristic-2 + 3 random runs
			t.Errorf("%s: %d curves, want 4", key, len(cs))
		}
		for _, c := range cs {
			if len(c.Best) != curveSamples {
				t.Errorf("%s/%s: %d samples", key, c.Label, len(c.Best))
			}
			// Curves must be non-increasing once feasible.
			last := 0.0
			for _, v := range c.Best {
				if last > 0 && v > last {
					t.Errorf("%s/%s: convergence curve increased", key, c.Label)
				}
				if v > 0 {
					last = v
				}
			}
		}
	}
	var buf bytes.Buffer
	RenderCurves(&buf, "Figure 12", curves)
	if !strings.Contains(buf.String(), "heuristic-2") {
		t.Error("render missing heuristic-2 curve")
	}
}

func TestFig14Initializers(t *testing.T) {
	curves, err := Fig14(fast())
	if err != nil {
		t.Fatal(err)
	}
	for key, cs := range curves {
		if len(cs) != 3 {
			t.Errorf("%s: %d curves, want 3", key, len(cs))
		}
	}
}

func TestCases(t *testing.T) {
	cases, err := Cases(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 2 {
		t.Fatalf("cases = %d, want 2", len(cases))
	}
	for _, cs := range cases {
		if cs.Config == nil || len(cs.Notes) < 2 {
			t.Errorf("%s: incomplete case study", cs.Title)
		}
	}
	var buf bytes.Buffer
	RenderCases(&buf, cases)
	if !strings.Contains(buf.String(), "GPT-3 1.3B") {
		t.Error("render missing GPT case")
	}
}

func TestSampleCurve(t *testing.T) {
	points := []struct {
		ms    int
		score float64
	}{{10, 5}, {50, 3}, {90, 2}}
	var conv []corePoint
	for _, p := range points {
		conv = append(conv, corePoint{time.Duration(p.ms) * time.Millisecond, p.score})
	}
	got := sampleCurve(toConv(conv), 100*time.Millisecond, 4)
	want := []float64{5, 3, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sampleCurve[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// corePoint mirrors core.ConvergencePoint for table-driven tests.
type corePoint struct {
	elapsed time.Duration
	score   float64
}

func toConv(ps []corePoint) []core.ConvergencePoint {
	out := make([]core.ConvergencePoint, len(ps))
	for i, p := range ps {
		out[i] = core.ConvergencePoint{Elapsed: p.elapsed, Score: p.score}
	}
	return out
}

func TestCSVWriters(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFig1CSV(&buf, Fig1([]int{2, 4})); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Errorf("fig1 csv has %d lines, want 3", lines)
	}

	e, err := RunE2E(Settings{Budget: 150 * time.Millisecond, Seed: 1, Sizes: 1}, []string{"gpt3"})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := e.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gpt3,350M,1,") {
		t.Errorf("e2e csv missing row: %s", buf.String())
	}

	buf.Reset()
	if err := WriteFig9CSV(&buf, []Fig9Row{{Layers: 8, AcesoSearch: 1, AlpaFailed: true}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "8,1,0,0,0,true") {
		t.Errorf("fig9 csv = %s", buf.String())
	}

	buf.Reset()
	if err := WriteFig10CSV(&buf, []Fig10Row{{Model: "m", GPUs: 8, DPExplored: 10, AcesoExplored: 1}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "m,8,10,1,") {
		t.Errorf("fig10 csv = %s", buf.String())
	}

	buf.Reset()
	if err := WriteFig11CSV(&buf, &Fig11Result{Tries: []int{5}, Hops: []int{3, 2}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bottleneck_tries,1,5") || !strings.Contains(buf.String(), "hops,2,2") {
		t.Errorf("fig11 csv = %s", buf.String())
	}

	buf.Reset()
	groups := map[string][]Curve{
		"g": {{Label: "v", Budget: time.Second, Best: []float64{2, 1}}},
	}
	if err := WriteCurvesCSV(&buf, groups); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "g,v,0.5,0.5,2") {
		t.Errorf("curves csv = %s", buf.String())
	}
}

func TestFig13MaxHopsCurves(t *testing.T) {
	curves, err := Fig13(fast())
	if err != nil {
		t.Fatal(err)
	}
	for key, cs := range curves {
		if len(cs) != 4 { // MaxHops 1, 3, 7, 11
			t.Errorf("%s: %d curves, want 4", key, len(cs))
		}
	}
}

func TestAblations(t *testing.T) {
	rows, memRatio, err := Ablations(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.BestIter <= 0 || r.Explored <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Variant, r)
		}
	}
	if memRatio <= 1 {
		t.Errorf("GPipe/1F1B memory ratio = %v, want > 1", memRatio)
	}
	var buf bytes.Buffer
	RenderAblations(&buf, rows, memRatio)
	if !strings.Contains(buf.String(), "GPipe peak memory") {
		t.Error("render missing scheduling note")
	}
}
