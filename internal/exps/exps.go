// Package exps drives the paper's evaluation: one function per figure
// or table (Figure 1, Exp#1–9 → Figures 7–16, Tables 3–5, and the §5.4
// case studies), each returning structured rows plus a text rendering.
//
// The per-experiment index in DESIGN.md §4 maps every function here to
// the paper artifact it regenerates. Search budgets are scaled down
// from the paper's 200 s to seconds (Settings.Budget) — the search is
// CPU-only here and the models are cost-function backed, so
// convergence happens orders of magnitude faster.
package exps

import (
	"time"

	"aceso/internal/config"
	"aceso/internal/core"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
	"aceso/internal/pipesim"
)

// Settings scales the experiments.
type Settings struct {
	// Budget is the per-search time budget (default 2s; the paper used
	// 200s on its Python implementation).
	Budget time.Duration
	// Seed drives the profiler and any randomized ablation.
	Seed int64
	// Sizes limits how many of the five model sizes run (default 5).
	Sizes int
	// MaxHops for the Aceso searches (default 7, as §5.1).
	MaxHops int
}

func (s Settings) withDefaults() Settings {
	if s.Budget <= 0 {
		s.Budget = 2 * time.Second
	}
	if s.Sizes <= 0 || s.Sizes > 5 {
		s.Sizes = 5
	}
	if s.MaxHops <= 0 {
		s.MaxHops = 7
	}
	return s
}

// GPUsForSize is the paper's device scaling: 1, 4, 8, 16 and 32 GPUs
// for the five model sizes.
var GPUsForSize = []int{1, 4, 8, 16, 32}

// buildModel dispatches the Table 2 model families.
func buildModel(family, size string) (*model.Graph, error) {
	switch family {
	case "gpt3":
		return model.GPT3(size)
	case "t5":
		return model.T5(size)
	case "wresnet":
		return model.WideResNet(size)
	}
	return nil, errUnknownFamily(family)
}

func errUnknownFamily(f string) error {
	return &unknownFamilyError{f}
}

type unknownFamilyError struct{ f string }

func (e *unknownFamilyError) Error() string {
	return "exps: unknown model family " + e.f + " (want gpt3, t5 or wresnet)"
}

// AcesoRun is the outcome of one Aceso search plus the §5.1 protocol
// of executing the top-5 candidates and keeping the fastest.
type AcesoRun struct {
	Best       *config.Config
	Predicted  *perfmodel.Estimate // performance-model view of Best
	Simulated  *pipesim.Result     // runtime view of Best
	SearchTime time.Duration
	Explored   int
	Trace      *core.Trace
}

// runAceso searches and then "executes" (simulates) the top-K
// candidates, returning the one that is fastest in the runtime.
func runAceso(g *model.Graph, cl hardware.Cluster, set Settings, mut func(*core.Options)) (*AcesoRun, error) {
	opts := core.Options{
		TimeBudget:   set.Budget,
		MaxHops:      set.MaxHops,
		Seed:         set.Seed,
		CollectTrace: true,
	}
	if mut != nil {
		mut(&opts)
	}
	res, err := core.Search(g, cl, opts)
	if err != nil {
		return nil, err
	}
	pm := perfmodel.New(g, cl, set.Seed)
	run := &AcesoRun{SearchTime: res.Elapsed, Explored: res.Explored, Trace: res.Trace}
	for _, cand := range res.TopK {
		if !cand.Estimate.Feasible {
			continue
		}
		sim, err := pipesim.Simulate(pm, cand.Config, set.Seed)
		if err != nil || sim.OOM {
			continue
		}
		if run.Simulated == nil || sim.IterTime < run.Simulated.IterTime {
			run.Best = cand.Config
			run.Predicted = cand.Estimate
			run.Simulated = sim
		}
	}
	if run.Simulated == nil {
		// Fall back to the best estimate even if the runtime rejected
		// the top-K (mirrors a failed execution in the paper's setup).
		run.Best = res.Best.Config
		run.Predicted = res.Best.Estimate
	}
	return run, nil
}

// simulate executes a configuration in the runtime substrate.
func simulate(g *model.Graph, cl hardware.Cluster, cfg *config.Config, seed int64) (*pipesim.Result, *perfmodel.Estimate, error) {
	pm := perfmodel.New(g, cl, seed)
	est := pm.Estimate(cfg)
	sim, err := pipesim.Simulate(pm, cfg, seed)
	if err != nil {
		return nil, est, err
	}
	return sim, est, nil
}

// tflops computes effective TFLOPS/GPU from a simulated iteration.
func tflops(g *model.Graph, devices int, iterTime float64) float64 {
	if iterTime <= 0 {
		return 0
	}
	var flops float64
	for i := range g.Ops {
		o := &g.Ops[i]
		flops += o.FwdFLOPs * (1 + o.BwdFLOPsFactor)
	}
	flops *= float64(g.GlobalBatch)
	return flops / iterTime / float64(devices) / 1e12
}

// pmModel builds the shared performance model for ad-hoc simulation.
func pmModel(g *model.Graph, cl hardware.Cluster, seed int64) *perfmodel.Model {
	return perfmodel.New(g, cl, seed)
}
