package exps

import (
	"fmt"
	"io"
	"sort"
	"time"

	"aceso/internal/config"
	"aceso/internal/core"
	"aceso/internal/hardware"
	"aceso/internal/tablefmt"
)

// Fig11Result aggregates Heuristic-1/2 efficiency statistics across
// searches (Exp#5, Figure 11): how many bottlenecks were attempted and
// how many hops were needed per improving iteration.
type Fig11Result struct {
	Tries []int // Tries[k] = iterations that needed k+1 bottleneck attempts
	Hops  []int // Hops[k]  = iterations whose improvement used k+1 hops
}

// FirstTryRate returns the fraction of improving iterations that
// found the right bottleneck on the first attempt (≈90% in the paper).
func (f *Fig11Result) FirstTryRate() float64 {
	total := 0
	for _, v := range f.Tries {
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(f.Tries[0]) / float64(total)
}

// MultiHopRate returns the fraction of improving iterations that
// needed more than one hop (≈68% in the paper).
func (f *Fig11Result) MultiHopRate() float64 {
	total, multi := 0, 0
	for k, v := range f.Hops {
		total += v
		if k > 0 {
			multi += v
		}
	}
	if total == 0 {
		return 0
	}
	return float64(multi) / float64(total)
}

// Fig11 runs trace-instrumented searches over a sample of the Exp#1
// workloads and aggregates the heuristic statistics.
func Fig11(set Settings) (*Fig11Result, error) {
	set = set.withDefaults()
	out := &Fig11Result{}
	cases := []struct {
		family, size string
		gpus         int
	}{
		{"gpt3", "1.3B", 4},
		{"gpt3", "2.6B", 8},
		{"wresnet", "2B", 4},
		{"t5", "770M", 4},
	}
	for _, tc := range cases {
		g, err := buildModel(tc.family, tc.size)
		if err != nil {
			return nil, err
		}
		run, err := runAceso(g, hardware.DGX1V100(4).Restrict(tc.gpus), set, nil)
		if err != nil {
			return nil, err
		}
		merge(&out.Tries, run.Trace.TriesHistogram())
		merge(&out.Hops, run.Trace.HopsHistogram())
	}
	return out, nil
}

func merge(dst *[]int, src []int) {
	for len(*dst) < len(src) {
		*dst = append(*dst, 0)
	}
	for i, v := range src {
		(*dst)[i] += v
	}
}

// RenderFig11 prints the two distributions.
func RenderFig11(w io.Writer, r *Fig11Result) {
	fmt.Fprintf(w, "Figure 11 (Exp#5): heuristic efficiency — first-try bottleneck rate %.0f%%, multi-hop rate %.0f%%\n",
		100*r.FirstTryRate(), 100*r.MultiHopRate())
	labels := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprint(i + 1)
		}
		return out
	}
	toF := func(v []int) []float64 {
		out := make([]float64, len(v))
		for i := range v {
			out[i] = float64(v[i])
		}
		return out
	}
	tablefmt.Bars(w, "(a) bottlenecks tried before improvement", labels(len(r.Tries)), toF(r.Tries), "")
	tablefmt.Bars(w, "(b) hops per improving reconfiguration", labels(len(r.Hops)), toF(r.Hops), "")
}

// Curve is a convergence curve: the best estimated iteration time
// sampled on a uniform wall-time grid.
type Curve struct {
	Label  string
	Budget time.Duration
	Best   []float64 // len == samples; 0 marks "no feasible config yet"
}

// sampleCurve resamples trace convergence points onto `samples`
// uniform steps across the budget, carrying the best score forward.
func sampleCurve(points []core.ConvergencePoint, budget time.Duration, samples int) []float64 {
	out := make([]float64, samples)
	best := 0.0
	pi := 0
	for i := 0; i < samples; i++ {
		cutoff := budget * time.Duration(i+1) / time.Duration(samples)
		for pi < len(points) && points[pi].Elapsed <= cutoff {
			best = points[pi].Score
			pi++
		}
		out[i] = best
	}
	return out
}

// convergenceRun executes one trace-collected search and samples it.
func convergenceRun(family, size string, gpus int, set Settings, label string, samples int, mut func(*core.Options)) (Curve, error) {
	g, err := buildModel(family, size)
	if err != nil {
		return Curve{}, err
	}
	run, err := runAceso(g, hardware.DGX1V100(4).Restrict(gpus), set, mut)
	if err != nil {
		return Curve{}, err
	}
	return Curve{
		Label:  label,
		Budget: set.Budget,
		Best:   sampleCurve(run.Trace.Convergence(), set.Budget, samples),
	}, nil
}

const curveSamples = 8

// Fig12 compares convergence with and without Heuristic-2 (3 random-
// order runs), Exp#5 / Figure 12, on GPT-3 and Wide-ResNet.
func Fig12(set Settings) (map[string][]Curve, error) {
	set = set.withDefaults()
	out := map[string][]Curve{}
	cases := []struct {
		key, family, size string
		gpus              int
	}{
		{"GPT-3 1.3B, 4 GPUs", "gpt3", "1.3B", 4},
		{"Wide-ResNet 2B, 4 GPUs", "wresnet", "2B", 4},
	}
	for _, tc := range cases {
		var curves []Curve
		c, err := convergenceRun(tc.family, tc.size, tc.gpus, set, "heuristic-2", curveSamples, nil)
		if err != nil {
			return nil, err
		}
		curves = append(curves, c)
		for r := 0; r < 3; r++ {
			seed := set.Seed + int64(r+1)*101
			c, err := convergenceRun(tc.family, tc.size, tc.gpus, set,
				fmt.Sprintf("random-%d", r+1), curveSamples, func(o *core.Options) {
					o.DisableHeuristic2 = true
					o.Seed = seed
				})
			if err != nil {
				return nil, err
			}
			curves = append(curves, c)
		}
		out[tc.key] = curves
	}
	return out, nil
}

// Fig13 sweeps MaxHops ∈ {1, 3, 7, 11} (Exp#6 / Figure 13).
func Fig13(set Settings) (map[string][]Curve, error) {
	set = set.withDefaults()
	out := map[string][]Curve{}
	cases := []struct {
		key, family, size string
		gpus              int
		stages            []int
	}{
		{"GPT-3 2.6B (6 stages)", "gpt3", "2.6B", 8, []int{6}},
		{"GPT-3 2.6B (8 stages)", "gpt3", "2.6B", 8, []int{8}},
		{"Wide-ResNet 4B (8 stages)", "wresnet", "4B", 8, []int{8}},
		{"Wide-ResNet 4B (4 stages)", "wresnet", "4B", 8, []int{4}},
	}
	for _, tc := range cases {
		var curves []Curve
		for _, hops := range []int{1, 3, 7, 11} {
			hops := hops
			c, err := convergenceRun(tc.family, tc.size, tc.gpus, set,
				fmt.Sprintf("MaxHops=%d", hops), curveSamples, func(o *core.Options) {
					o.MaxHops = hops
					o.StageCounts = tc.stages
				})
			if err != nil {
				return nil, err
			}
			curves = append(curves, c)
		}
		out[tc.key] = curves
	}
	return out, nil
}

// Fig14 compares initial configurations (Exp#7 / Figure 14).
func Fig14(set Settings) (map[string][]Curve, error) {
	set = set.withDefaults()
	out := map[string][]Curve{}
	inits := []struct {
		label string
		fn    core.Initializer
	}{
		{"balanced", config.Balanced},
		{"imbalance-op", config.ImbalancedOps},
		{"imbalance-GPU", config.ImbalancedGPUs},
	}
	cases := []struct {
		key, family, size string
		gpus              int
	}{
		{"GPT-3 2.6B, 8 GPUs", "gpt3", "2.6B", 8},
		{"Wide-ResNet 4B, 8 GPUs", "wresnet", "4B", 8},
	}
	for _, tc := range cases {
		var curves []Curve
		for _, in := range inits {
			in := in
			c, err := convergenceRun(tc.family, tc.size, tc.gpus, set,
				in.label, curveSamples, func(o *core.Options) {
					o.Initializer = in.fn
				})
			if err != nil {
				return nil, err
			}
			curves = append(curves, c)
		}
		out[tc.key] = curves
	}
	return out, nil
}

// RenderCurves prints convergence curves as a time-gridded table.
func RenderCurves(w io.Writer, title string, groups map[string][]Curve) {
	fmt.Fprintln(w, title)
	keys := make([]string, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		curves := groups[key]
		fmt.Fprintf(w, "\n[%s]  best estimated iteration time (s) over search time (- = nothing feasible yet)\n", key)
		t := &tablefmt.Table{Header: []string{"variant"}}
		if len(curves) > 0 {
			for i := range curves[0].Best {
				frac := float64(i+1) / float64(len(curves[0].Best))
				t.Header = append(t.Header, fmt.Sprintf("%.0f%%", 100*frac))
			}
		}
		for _, c := range curves {
			row := []any{c.Label}
			for _, v := range c.Best {
				if v == 0 {
					row = append(row, "-")
				} else {
					row = append(row, fmt.Sprintf("%.2f", v))
				}
			}
			t.Add(row...)
		}
		t.Render(w)
	}
}
