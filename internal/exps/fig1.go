package exps

import (
	"fmt"
	"io"
	"math"

	"aceso/internal/tablefmt"
)

// Fig1Row is one point of Figure 1: the size of the configuration
// space (log10) at a layer count, under 2, 3 and 4 mechanisms.
type Fig1Row struct {
	Layers                          int
	Log10Two, Log10Three, Log10Four float64
}

// ConfigSpaceSize counts (in log10) the possible configurations of an
// L-layer model over D devices, reproducing Figure 1's growth:
//
//   - 2 mechanisms (data + tensor parallelism): every layer picks a
//     tp×dp factorization of D — (log2 D + 1) choices per layer.
//   - 3 mechanisms (+ pipeline parallelism): every layer boundary may
//     start a new stage — ×2^(L−1) stage partitions.
//   - 4 mechanisms (+ recomputation): every layer independently
//     recomputes or not — ×2^L.
func ConfigSpaceSize(layers, devices int) Fig1Row {
	perLayer := math.Log2(float64(devices)) + 1
	l := float64(layers)
	two := l * math.Log10(perLayer)
	three := two + (l-1)*math.Log10(2)
	four := three + l*math.Log10(2)
	return Fig1Row{Layers: layers, Log10Two: two, Log10Three: three, Log10Four: four}
}

// Fig1 computes the configuration-space growth for GPT-style models on
// 16 devices across the given layer counts.
func Fig1(layerCounts []int) []Fig1Row {
	if len(layerCounts) == 0 {
		layerCounts = []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1000}
	}
	out := make([]Fig1Row, 0, len(layerCounts))
	for _, l := range layerCounts {
		out = append(out, ConfigSpaceSize(l, 16))
	}
	return out
}

// RenderFig1 prints the configuration-space table.
func RenderFig1(w io.Writer, rows []Fig1Row) {
	fmt.Fprintln(w, "Figure 1: possible configurations (log10) vs model layers, GPT on 16 devices")
	t := &tablefmt.Table{Header: []string{"layers", "2 mechanisms", "3 mechanisms", "4 mechanisms"}}
	for _, r := range rows {
		t.Add(r.Layers,
			fmt.Sprintf("1e%.0f", r.Log10Two),
			fmt.Sprintf("1e%.0f", r.Log10Three),
			fmt.Sprintf("1e%.0f", r.Log10Four))
	}
	t.Render(w)
}
