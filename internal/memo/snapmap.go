// Package memo provides SnapMap, a concurrent read-optimized memo map
// for values that are pure functions of their keys.
package memo

import (
	"sync"
	"sync/atomic"
)

// SnapMap is a concurrent memo map whose read path on a settled key is
// one atomic pointer load plus a plain map lookup — no locks, no
// read-modify-write atomics, no interface boxing — which is what
// search hot paths need: the profiler database and the performance
// model's stage cache are queried millions of times per search, and
// both sync.RWMutex (two atomic RMWs per lookup) and sync.Map
// (interface-keyed hashing, pointer chasing) showed up prominently in
// CPU profiles.
//
// Writes go to a small mutex-guarded overflow map; once the overflow
// exceeds the merge threshold it is folded into a freshly copied
// snapshot and published atomically. Until a key is merged, readers
// that miss the snapshot fall through to the overflow under the
// mutex — a bounded, shrinking set of keys. Correctness requires that
// every value is a pure function of its key: a racing reader that
// misses both maps simply recomputes the same value and stores it
// again.
//
// The zero value is ready to use with the default merge threshold.
type SnapMap[K comparable, V any] struct {
	snap atomic.Pointer[map[K]V]

	mu   sync.Mutex
	over map[K]V

	// Threshold overrides the default overflow size that triggers a
	// merge. Merging copies the whole snapshot, so total copy work is
	// entries²/threshold: small caches want a small threshold (fast
	// promotion to the lock-free path), large ones a bigger threshold
	// (bounded merge churn). Read on the store path; set it before
	// concurrent use.
	Threshold int
}

// DefaultThreshold is the merge threshold when Threshold is unset.
const DefaultThreshold = 256

// Load returns the memoized value for k.
func (m *SnapMap[K, V]) Load(k K) (V, bool) {
	if s := m.snap.Load(); s != nil {
		if v, ok := (*s)[k]; ok {
			return v, true
		}
	}
	m.mu.Lock()
	v, ok := m.over[k]
	m.mu.Unlock()
	return v, ok
}

// Store memoizes v for k, merging the overflow into a new snapshot
// once it grows past the threshold.
func (m *SnapMap[K, V]) Store(k K, v V) {
	m.mu.Lock()
	if m.over == nil {
		m.over = make(map[K]V)
	}
	m.over[k] = v
	t := m.Threshold
	if t <= 0 {
		t = DefaultThreshold
	}
	if len(m.over) > t {
		m.mergeLocked()
	}
	m.mu.Unlock()
}

// mergeLocked publishes snapshot ∪ overflow as the new snapshot and
// empties the overflow. Callers hold m.mu.
func (m *SnapMap[K, V]) mergeLocked() {
	var old map[K]V
	if s := m.snap.Load(); s != nil {
		old = *s
	}
	next := make(map[K]V, len(old)+len(m.over))
	for k, v := range old {
		next[k] = v
	}
	for k, v := range m.over {
		next[k] = v
	}
	m.snap.Store(&next)
	m.over = make(map[K]V)
}

// Len returns the number of memoized entries.
func (m *SnapMap[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.over)
	if s := m.snap.Load(); s != nil {
		n += len(*s)
	}
	return n
}

// ForEach calls fn for every entry (snapshot first, then overflow;
// overflow entries shadow snapshot ones, though with pure values the
// two never disagree).
func (m *SnapMap[K, V]) ForEach(fn func(K, V)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s := m.snap.Load(); s != nil {
		for k, v := range *s {
			if _, shadowed := m.over[k]; !shadowed {
				fn(k, v)
			}
		}
	}
	for k, v := range m.over {
		fn(k, v)
	}
}

// Replace swaps the entire contents for db.
func (m *SnapMap[K, V]) Replace(db map[K]V) {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := make(map[K]V, len(db))
	for k, v := range db {
		snap[k] = v
	}
	m.snap.Store(&snap)
	m.over = make(map[K]V)
}
