package memo

import (
	"sync"
	"testing"
)

func TestSnapMapBasics(t *testing.T) {
	var m SnapMap[int, string]
	if _, ok := m.Load(1); ok {
		t.Fatal("empty map reported a hit")
	}
	m.Store(1, "one")
	m.Store(2, "two")
	if v, ok := m.Load(1); !ok || v != "one" {
		t.Fatalf("Load(1) = %q, %v; want \"one\", true", v, ok)
	}
	if got := m.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

// TestSnapMapMerge drives the overflow past the threshold so entries
// are promoted into the snapshot, and checks nothing is lost or
// duplicated across the merge boundary.
func TestSnapMapMerge(t *testing.T) {
	m := SnapMap[int, int]{Threshold: 8}
	const n = 100
	for i := 0; i < n; i++ {
		m.Store(i, i*i)
	}
	if got := m.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Load(i); !ok || v != i*i {
			t.Fatalf("Load(%d) = %d, %v; want %d, true", i, v, ok, i*i)
		}
	}
	seen := make(map[int]int)
	m.ForEach(func(k, v int) { seen[k] = v })
	if len(seen) != n {
		t.Fatalf("ForEach visited %d entries, want %d", len(seen), n)
	}
	for k, v := range seen {
		if v != k*k {
			t.Fatalf("ForEach saw %d → %d, want %d", k, v, k*k)
		}
	}
}

func TestSnapMapReplace(t *testing.T) {
	var m SnapMap[string, int]
	m.Store("stale", 1)
	m.Replace(map[string]int{"a": 10, "b": 20})
	if _, ok := m.Load("stale"); ok {
		t.Fatal("Replace kept a pre-existing entry")
	}
	if v, ok := m.Load("a"); !ok || v != 10 {
		t.Fatalf("Load(a) = %d, %v; want 10, true", v, ok)
	}
	if got := m.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

// TestSnapMapConcurrent hammers Load/Store from many goroutines with a
// tiny threshold so merges happen constantly. Values are pure functions
// of their keys — the SnapMap correctness precondition — so every hit
// must return the canonical value. Run under -race in make ci.
func TestSnapMapConcurrent(t *testing.T) {
	m := SnapMap[int, int]{Threshold: 4}
	const (
		workers = 8
		keys    = 64
		rounds  = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := (seed*31 + r) % keys
				if v, ok := m.Load(k); ok {
					if v != k*3 {
						t.Errorf("Load(%d) = %d, want %d", k, v, k*3)
						return
					}
				} else {
					m.Store(k, k*3)
				}
			}
		}(w)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if v, ok := m.Load(k); !ok || v != k*3 {
			t.Fatalf("after run: Load(%d) = %d, %v; want %d, true", k, v, ok, k*3)
		}
	}
}
