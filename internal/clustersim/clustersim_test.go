package clustersim

import (
	"testing"
	"time"

	"aceso/internal/hardware"
	"aceso/internal/model"
)

func trace() []Event {
	return []Event{
		{At: 0, GPUs: 8},
		{At: 30 * time.Minute, GPUs: 4},
		{At: 60 * time.Minute, GPUs: 8},
	}
}

func TestRunComparesStrategies(t *testing.T) {
	g, _ := model.GPT3("1.3B")
	base := hardware.DGX1V100(1)
	results, err := Run(g, base, trace(), 90*time.Minute, []Strategy{
		AcesoStrategy{Budget: 300 * time.Millisecond, Seed: 1},
		AcesoStrategy{Budget: 300 * time.Millisecond, Seed: 1, Warm: true},
		AlpaStrategy{Seed: 1},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Strategy] = r
		if r.Samples <= 0 {
			t.Errorf("%s trained no samples", r.Strategy)
		}
		if len(r.Windows) != 3 {
			t.Errorf("%s: %d windows, want 3", r.Strategy, len(r.Windows))
		}
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Errorf("%s: utilization %v", r.Strategy, r.Utilization)
		}
	}
	// The Alpa-like planner's emulated compile time must cost real
	// training time compared to Aceso — the paper's motivation.
	if byName["alpa"].PlanOverhead <= byName["aceso"].PlanOverhead {
		t.Error("alpa plan overhead should exceed aceso's")
	}
	if byName["alpa"].Utilization >= byName["aceso"].Utilization {
		t.Error("aceso should utilize the cluster better under churn")
	}
}

func TestRunValidatesTrace(t *testing.T) {
	g, _ := model.GPT3("350M")
	base := hardware.DGX1V100(1)
	strat := []Strategy{AcesoStrategy{Budget: 100 * time.Millisecond, Seed: 1}}

	if _, err := Run(g, base, nil, time.Hour, strat, 1); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := Run(g, base, []Event{{At: time.Minute, GPUs: 4}}, time.Hour, strat, 1); err == nil {
		t.Error("trace not starting at 0 accepted")
	}
	if _, err := Run(g, base, []Event{{At: 0, GPUs: 4}, {At: 0, GPUs: 8}}, time.Hour, strat, 1); err == nil {
		t.Error("unordered trace accepted")
	}
	if _, err := Run(g, base, []Event{{At: 0, GPUs: 4}}, 0, strat, 1); err == nil {
		t.Error("horizon before last event accepted")
	}
}

func TestPlanningTimeEatsTraining(t *testing.T) {
	// A window shorter than the planning time yields zero samples.
	g, _ := model.GPT3("350M")
	base := hardware.DGX1V100(1)
	events := []Event{{At: 0, GPUs: 4}, {At: 200 * time.Millisecond, GPUs: 8}}
	results, err := Run(g, base, events, time.Hour, []Strategy{
		AcesoStrategy{Budget: 400 * time.Millisecond, Seed: 1},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w := results[0].Windows[0]; w.Samples != 0 {
		t.Errorf("window shorter than planning trained %v samples, want 0", w.Samples)
	}
	if results[0].Windows[1].Samples <= 0 {
		t.Error("long window should train")
	}
}
