// Package clustersim quantifies the paper's motivating scenario (§1):
// "search overhead can be a huge burden when quick reconfiguration is
// needed, e.g., in a shared cluster with frequent changes in
// resources". It simulates a long-running training job whose GPU
// allocation changes over time; after every change the job must plan a
// new parallel configuration before it can train again, so planning
// time directly eats training time. Different planning strategies
// (Aceso, warm-started Aceso, the Alpa-like solver) can then be
// compared on total samples trained.
package clustersim

import (
	"fmt"
	"time"

	"aceso/internal/baselines/alpa"
	"aceso/internal/config"
	"aceso/internal/core"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
	"aceso/internal/pipesim"
)

// Event is one allocation change: from At onward the job owns GPUs
// devices. Events must be sorted by At, starting at 0.
type Event struct {
	At   time.Duration
	GPUs int
}

// Strategy plans a configuration for a (re)allocated cluster and
// reports how long the planning took (in simulated job wall time —
// time the job cannot train).
type Strategy interface {
	Name() string
	Plan(g *model.Graph, cl hardware.Cluster, prev *config.Config) (*config.Config, time.Duration, error)
}

// AcesoStrategy plans with the bottleneck-alleviation search.
type AcesoStrategy struct {
	Budget time.Duration
	Seed   int64
	// Warm re-uses the previous configuration as the starting point.
	Warm bool
}

// Name implements Strategy.
func (s AcesoStrategy) Name() string {
	if s.Warm {
		return "aceso-warm"
	}
	return "aceso"
}

// Plan implements Strategy.
func (s AcesoStrategy) Plan(g *model.Graph, cl hardware.Cluster, prev *config.Config) (*config.Config, time.Duration, error) {
	opts := core.Options{TimeBudget: s.Budget, Seed: s.Seed}
	if s.Warm && prev != nil {
		opts.Initializer = core.WarmStart(prev)
	}
	res, err := core.Search(g, cl, opts)
	if err != nil {
		return nil, 0, err
	}
	return res.Best.Config, res.Elapsed, nil
}

// AlpaStrategy plans with the Alpa-like solver; its planning time is
// the emulated compile+profile cost, which is what makes frequent
// reconfiguration expensive.
type AlpaStrategy struct {
	Seed int64
}

// Name implements Strategy.
func (AlpaStrategy) Name() string { return "alpa" }

// Plan implements Strategy.
func (s AlpaStrategy) Plan(g *model.Graph, cl hardware.Cluster, _ *config.Config) (*config.Config, time.Duration, error) {
	res, err := alpa.Search(g, cl, alpa.Options{Seed: s.Seed})
	if err != nil {
		return nil, 0, err
	}
	return res.Best, res.EmulatedSearchCost, nil
}

// Window is the outcome of one allocation interval.
type Window struct {
	GPUs     int
	Duration time.Duration
	PlanTime time.Duration // simulated time lost to planning
	IterTime float64       // seconds/iteration of the planned config
	Samples  float64       // samples trained in the window
}

// Result is one strategy's outcome over the whole trace.
type Result struct {
	Strategy     string
	Samples      float64
	PlanOverhead time.Duration
	Utilization  float64 // share of wall time spent training
	Windows      []Window
}

// Run plays the allocation trace for each strategy and returns the
// samples each one trains. horizon is the simulation end time.
func Run(g *model.Graph, base hardware.Cluster, events []Event, horizon time.Duration,
	strategies []Strategy, seed int64) ([]Result, error) {

	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(events) == 0 || events[0].At != 0 {
		return nil, fmt.Errorf("clustersim: trace must start with an event at t=0")
	}
	for i := 1; i < len(events); i++ {
		if events[i].At <= events[i-1].At {
			return nil, fmt.Errorf("clustersim: events not strictly ordered at %d", i)
		}
	}
	if horizon <= events[len(events)-1].At {
		return nil, fmt.Errorf("clustersim: horizon %v before last event", horizon)
	}

	var out []Result
	for _, strat := range strategies {
		res := Result{Strategy: strat.Name()}
		var prev *config.Config
		for i, ev := range events {
			end := horizon
			if i+1 < len(events) {
				end = events[i+1].At
			}
			window := end - ev.At
			cl := base.Restrict(ev.GPUs)
			cfg, planTime, err := strat.Plan(g, cl, prev)
			if err != nil {
				return nil, fmt.Errorf("clustersim: %s at %v: %w", strat.Name(), ev.At, err)
			}
			prev = cfg
			pm := perfmodel.New(g, cl, seed)
			sim, err := pipesim.Simulate(pm, cfg, seed)
			if err != nil {
				return nil, fmt.Errorf("clustersim: %s simulate: %w", strat.Name(), err)
			}
			w := Window{GPUs: ev.GPUs, Duration: window, PlanTime: planTime, IterTime: sim.IterTime}
			trainTime := window - planTime
			if trainTime > 0 && sim.IterTime > 0 {
				iters := trainTime.Seconds() / sim.IterTime
				w.Samples = iters * float64(g.GlobalBatch)
			}
			res.Samples += w.Samples
			res.PlanOverhead += planTime
			res.Windows = append(res.Windows, w)
		}
		res.Utilization = 1 - res.PlanOverhead.Seconds()/horizon.Seconds()
		if res.Utilization < 0 {
			res.Utilization = 0
		}
		out = append(out, res)
	}
	return out, nil
}
