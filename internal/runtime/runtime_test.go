package runtime

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"aceso/internal/config"
	"aceso/internal/core"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/tensor"
)

const (
	dim    = 8
	layers = 4
	batch  = 16
	lr     = 0.05
	iters  = 3
	tol    = 1e-9
)

func buildMLP(t testing.TB) *model.Graph {
	t.Helper()
	g, err := model.MLP(layers, dim, batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func data(seed int64) (x, y *tensor.Mat) {
	rng := rand.New(rand.NewSource(seed))
	x = tensor.New(batch, dim)
	y = tensor.New(batch, dim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	return x, y
}

// checkEquivalence trains serially and under cfg, then compares losses
// and final weights.
func checkEquivalence(t *testing.T, g *model.Graph, cfg *config.Config) {
	t.Helper()
	x, y := data(42)
	ref := InitParams(g, 7)
	par := ref.Clone()

	refLosses, err := Serial(g, ref, x, y, cfg.MicroBatch, lr, iters)
	if err != nil {
		t.Fatal(err)
	}
	parLosses, err := Parallel(g, cfg, par, x, y, lr, iters)
	if err != nil {
		t.Fatal(err)
	}
	if len(refLosses) != len(parLosses) {
		t.Fatalf("loss count %d vs %d", len(refLosses), len(parLosses))
	}
	for i := range refLosses {
		if math.Abs(refLosses[i]-parLosses[i]) > tol {
			t.Errorf("iter %d: serial loss %.12f vs parallel %.12f", i, refLosses[i], parLosses[i])
		}
	}
	if d := ref.MaxDiff(par); d > tol {
		t.Errorf("final weights differ by %g (config %v)", d, cfg)
	}
	// Training must actually make progress.
	if refLosses[len(refLosses)-1] >= refLosses[0] {
		t.Errorf("loss did not decrease: %v", refLosses)
	}
}

// uniform builds a config with the same tp/dp on every op.
func uniform(t *testing.T, g *model.Graph, stages, devPerStage, tp, dp, mbs int) *config.Config {
	t.Helper()
	cfg, err := config.Balanced(g, stages*devPerStage, stages, mbs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j] = config.OpSetting{TP: tp, DP: dp, Dim: 0}
		}
	}
	if err := cfg.Validate(g, stages*devPerStage); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestSingleDeviceMatchesSerial(t *testing.T) {
	g := buildMLP(t)
	checkEquivalence(t, g, uniform(t, g, 1, 1, 1, 1, 4))
}

func TestDataParallel(t *testing.T) {
	g := buildMLP(t)
	checkEquivalence(t, g, uniform(t, g, 1, 4, 1, 4, 8))
}

func TestColumnTensorParallel(t *testing.T) {
	g := buildMLP(t)
	checkEquivalence(t, g, uniform(t, g, 1, 4, 4, 1, 4))
}

func TestRowTensorParallel(t *testing.T) {
	g := buildMLP(t)
	cfg := uniform(t, g, 1, 4, 4, 1, 4)
	// Flip every linear to its row-parallel dim.
	for j := range cfg.Stages[0].Ops {
		if g.Ops[j].Kind == model.KindMatMul {
			cfg.Stages[0].Ops[j].Dim = g.Ops[j].DimIndex("row")
		}
	}
	checkEquivalence(t, g, cfg)
}

func TestHybridTPDP(t *testing.T) {
	g := buildMLP(t)
	checkEquivalence(t, g, uniform(t, g, 1, 4, 2, 2, 4))
}

func TestPipelineParallel(t *testing.T) {
	g := buildMLP(t)
	checkEquivalence(t, g, uniform(t, g, 2, 1, 1, 1, 4))
	checkEquivalence(t, g, uniform(t, g, 4, 1, 1, 1, 2))
}

func TestPipelineWithTPAndDP(t *testing.T) {
	g := buildMLP(t)
	checkEquivalence(t, g, uniform(t, g, 2, 4, 2, 2, 4))
}

func TestRecomputation(t *testing.T) {
	g := buildMLP(t)
	cfg := uniform(t, g, 2, 2, 2, 1, 4)
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j].Recompute = true
		}
	}
	checkEquivalence(t, g, cfg)
}

func TestPartialRecomputation(t *testing.T) {
	g := buildMLP(t)
	cfg := uniform(t, g, 2, 2, 1, 2, 4)
	cfg.Stages[0].Ops[1].Recompute = true
	cfg.Stages[1].Ops[0].Recompute = true
	checkEquivalence(t, g, cfg)
}

func TestMixedTilingWithinStage(t *testing.T) {
	// The §4.2 fine-tuning shape: first half 2dp×2tp, second half
	// 4-way tp, same stage.
	g := buildMLP(t)
	cfg := uniform(t, g, 1, 4, 2, 2, 4)
	half := len(cfg.Stages[0].Ops) / 2
	for j := half; j < len(cfg.Stages[0].Ops); j++ {
		cfg.Stages[0].Ops[j] = config.OpSetting{TP: 4, DP: 1, Dim: 0}
	}
	if err := cfg.Validate(g, 4); err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, g, cfg)
}

func TestMixedDimsWithinStage(t *testing.T) {
	g := buildMLP(t)
	cfg := uniform(t, g, 1, 2, 2, 1, 4)
	// Alternate col/row linear sharding.
	flip := true
	for j := range cfg.Stages[0].Ops {
		if g.Ops[j].Kind != model.KindMatMul {
			continue
		}
		if flip {
			cfg.Stages[0].Ops[j].Dim = g.Ops[j].DimIndex("row")
		}
		flip = !flip
	}
	checkEquivalence(t, g, cfg)
}

// TestSearchedConfigsAreSemanticPreserving is the paper's §4
// correctness check end to end: run the Aceso search on an MLP, then
// numerically execute its top candidates and require every one to
// train identically to the serial reference.
func TestSearchedConfigsAreSemanticPreserving(t *testing.T) {
	g := buildMLP(t)
	cl := hardware.DGX1V100(1).Restrict(4)
	res, err := core.Search(g, cl, core.Options{
		TimeBudget:  400 * time.Millisecond,
		StageCounts: []int{1, 2, 4},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, cand := range res.TopK {
		cfg := cand.Config
		// Skip configs whose tp exceeds the tiny dim's divisibility.
		ok := true
		for i := range cfg.Stages {
			for j := cfg.Stages[i].Start; j < cfg.Stages[i].End; j++ {
				if g.Ops[j].Kind == model.KindMatMul &&
					dim%cfg.Stages[i].Setting(j).TP != 0 {
					ok = false
				}
			}
		}
		if !ok {
			continue
		}
		checkEquivalence(t, g, cfg)
		checked++
	}
	if checked == 0 {
		t.Fatal("no searched candidate was executable")
	}
	t.Logf("validated %d searched configurations numerically", checked)
}

func TestParallelRejectsBadInputs(t *testing.T) {
	g := buildMLP(t)
	cfg := uniform(t, g, 1, 1, 1, 1, 4)
	x, y := data(1)
	p := InitParams(g, 1)

	short := tensor.New(batch-1, dim)
	if _, err := Parallel(g, cfg, p, short, y, lr, 1); err == nil {
		t.Error("short X accepted")
	}
	if _, err := Parallel(g, cfg, p, x, short, lr, 1); err == nil {
		t.Error("short Y accepted")
	}
	bad := uniform(t, g, 1, 1, 1, 1, 4)
	bad.MicroBatch = 3 // does not divide 16
	if _, err := Parallel(g, bad, p, x, y, lr, 1); err == nil {
		t.Error("non-dividing microbatch accepted")
	}
	// tp that does not divide dim.
	g2, err := model.MLP(2, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := config.Balanced(g2, 4, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	x2 := tensor.New(8, 6)
	y2 := tensor.New(8, 6)
	if _, err := Parallel(g2, cfg2, InitParams(g2, 1), x2, y2, lr, 1); err == nil {
		t.Error("tp=4 on dim 6 accepted")
	}
}

func TestSerialRejectsBadInputs(t *testing.T) {
	g := buildMLP(t)
	x, y := data(1)
	p := InitParams(g, 1)
	if _, err := Serial(g, p, x, y, 3, lr, 1); err == nil {
		t.Error("non-dividing microbatch accepted")
	}
	if _, err := Serial(g, p, tensor.New(4, dim), y, 2, lr, 1); err == nil {
		t.Error("short X accepted")
	}
}

func TestInitParamsDeterministic(t *testing.T) {
	g := buildMLP(t)
	a, b := InitParams(g, 5), InitParams(g, 5)
	if a.MaxDiff(b) != 0 {
		t.Error("InitParams not deterministic")
	}
	c := InitParams(g, 6)
	if a.MaxDiff(c) == 0 {
		t.Error("different seeds give identical params")
	}
}

func buildMLPLN(t testing.TB) *model.Graph {
	t.Helper()
	g, err := model.MLPWithNorm(layers, dim, batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLayerNormSerialMatchesParallel(t *testing.T) {
	g := buildMLPLN(t)
	checkEquivalence(t, g, uniform(t, g, 1, 1, 1, 1, 4))
	checkEquivalence(t, g, uniform(t, g, 1, 4, 1, 4, 8)) // dp
	checkEquivalence(t, g, uniform(t, g, 2, 2, 2, 1, 4)) // pp × tp
}

func TestLayerNormUnderTensorParallelGather(t *testing.T) {
	// With tp, the layer norm receives a column-split activation from
	// the preceding column-parallel linear: the runtime must gather,
	// compute replicated, and continue — exactly the relayout the
	// performance model charges for.
	g := buildMLPLN(t)
	checkEquivalence(t, g, uniform(t, g, 1, 4, 4, 1, 4))
}

func TestLayerNormWithRecompute(t *testing.T) {
	g := buildMLPLN(t)
	cfg := uniform(t, g, 2, 2, 2, 1, 4)
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j].Recompute = true
		}
	}
	checkEquivalence(t, g, cfg)
}

func TestAdamSerialMatchesParallel(t *testing.T) {
	// Adam's per-parameter moment state must evolve identically under
	// every parallelism mode — this is what makes M_opt in Eq. 1 a
	// fixed per-parameter cost that tp can shard.
	g := buildMLP(t)
	for _, cfg := range []*config.Config{
		uniform(t, g, 1, 4, 1, 4, 8), // dp
		uniform(t, g, 1, 4, 4, 1, 4), // tp
		uniform(t, g, 2, 2, 2, 1, 4), // pp × tp
	} {
		x, y := data(42)
		ref := InitParams(g, 7)
		ref.Opt = Adam
		par := ref.Clone()
		refLosses, err := Serial(g, ref, x, y, cfg.MicroBatch, lr, iters)
		if err != nil {
			t.Fatal(err)
		}
		parLosses, err := Parallel(g, cfg, par, x, y, lr, iters)
		if err != nil {
			t.Fatal(err)
		}
		for i := range refLosses {
			if math.Abs(refLosses[i]-parLosses[i]) > tol {
				t.Errorf("iter %d: serial %.12f vs parallel %.12f", i, refLosses[i], parLosses[i])
			}
		}
		if d := ref.MaxDiff(par); d > tol {
			t.Errorf("Adam weights differ by %g under %v", d, cfg)
		}
	}
}

func TestAdamConvergesFasterHere(t *testing.T) {
	// Not a general truth, but on this conditioning Adam's adaptive
	// steps should at least train (sanity that the state math moves).
	g := buildMLP(t)
	x, y := data(42)
	sgd := InitParams(g, 7)
	sgdLosses, err := Serial(g, sgd, x, y, 4, lr, 5)
	if err != nil {
		t.Fatal(err)
	}
	adam := InitParams(g, 7)
	adam.Opt = Adam
	adamLosses, err := Serial(g, adam, x, y, 4, lr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if adamLosses[4] >= adamLosses[0] {
		t.Errorf("Adam did not descend: %v", adamLosses)
	}
	if sgdLosses[4] >= sgdLosses[0] {
		t.Errorf("SGD did not descend: %v", sgdLosses)
	}
	// The two optimizers must actually differ.
	if math.Abs(adamLosses[4]-sgdLosses[4]) < 1e-15 {
		t.Error("Adam and SGD produced identical trajectories")
	}
}
