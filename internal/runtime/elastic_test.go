package runtime

import (
	"errors"
	"math"
	"testing"
	"time"

	"aceso/internal/comm"
	"aceso/internal/model"
	"aceso/internal/tensor"
)

// trainedParams returns params that have actually trained: all four
// Adam moment maps are populated and Step > 0, so shallow-copy bugs
// have state to corrupt.
func trainedParams(t *testing.T, g *model.Graph) *Params {
	t.Helper()
	p := InitParams(g, 7)
	p.Opt = Adam
	x, y := data(42)
	if _, err := Serial(g, p, x, y, 4, lr, 2); err != nil {
		t.Fatal(err)
	}
	if p.Step != 2 {
		t.Fatalf("Step = %d after 2 iters, want 2", p.Step)
	}
	return p
}

// TestCloneIsDeepCopy is the mutation-based audit of satellite 2: every
// mutable field of a Clone must be independent storage. A shallow alias
// of the Adam moment maps would let a "snapshot" keep training with the
// live parameters, silently corrupting every checkpoint built from it.
func TestCloneIsDeepCopy(t *testing.T) {
	g := buildMLP(t)
	p := trainedParams(t, g)
	snap := p.Clone()
	if d := p.MaxDiff(snap); d != 0 {
		t.Fatalf("fresh clone differs by %g", d)
	}

	// Mutate every tensor of the original in place; the clone must not move.
	pristine := snap.Clone()
	bump := func(mm map[int]*tensor.Mat) {
		for _, v := range mm {
			for i := range v.Data {
				v.Data[i] += 1e3
			}
		}
	}
	bump(p.W)
	bump(p.B)
	bump(p.MW)
	bump(p.VW)
	bump(p.MB)
	bump(p.VB)
	p.Step += 17

	if d := snap.MaxDiff(pristine); d != 0 {
		t.Fatalf("mutating the original changed the clone by %g — shallow alias", d)
	}
	// And the reverse direction: mutating the clone must not touch pristine.
	bump(snap.MW)
	if d := snap.MaxDiff(pristine); d == 0 {
		t.Fatal("mutation of clone moments not visible to MaxDiff — moments not compared")
	}
}

// TestMaxDiffStrictness: a step mismatch or one-sided optimizer state is
// an unbounded divergence, not a near-match.
func TestMaxDiffStrictness(t *testing.T) {
	g := buildMLP(t)
	p := trainedParams(t, g)
	q := p.Clone()
	q.Step++
	if d := p.MaxDiff(q); !math.IsInf(d, 1) {
		t.Errorf("step mismatch: MaxDiff = %g, want +Inf", d)
	}
	q = p.Clone()
	q.MW, q.VW, q.MB, q.VB = nil, nil, nil, nil
	if d := p.MaxDiff(q); !math.IsInf(d, 1) {
		t.Errorf("one-sided optimizer state: MaxDiff = %g, want +Inf", d)
	}
}

// TestFaultInjectionReturnsTypedError: killing a device at iteration k
// must surface as *DeviceLostError at the iteration boundary — with the
// other stages failing fast through comm — never as a deadlock.
func TestFaultInjectionReturnsTypedError(t *testing.T) {
	g := buildMLP(t)
	cfg := uniform(t, g, 2, 2, 2, 1, 4) // 2 stages × 2 devices
	x, y := data(42)
	for _, rank := range []int{0, 2} { // one rank per stage
		p := InitParams(g, 7)
		p.Opt = Adam
		start := time.Now()
		losses, err := ParallelOpts(g, cfg, p, x, y, lr, iters, RunOptions{
			Fault:        &FaultPlan{Rank: rank, Iteration: 1},
			CommDeadline: 2 * time.Second,
		})
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("rank %d: fault handling took %v — deadline not honored", rank, elapsed)
		}
		var dl *DeviceLostError
		if !errors.As(err, &dl) {
			t.Fatalf("rank %d: err = %v, want *DeviceLostError", rank, err)
		}
		if dl.Rank != rank || dl.Iteration != 1 || dl.Step != 1 {
			t.Errorf("rank %d: fault detail = %+v", rank, dl)
		}
		if len(losses) > 1 {
			t.Errorf("rank %d: %d losses survived a fault at iteration 1", rank, len(losses))
		}
	}
}

// TestFaultOnLastStageStillUnblocksFirst: the failure cascade must
// travel backwards through the pipeline (stage 0 blocks on bwd traffic
// from stage 1), not just forwards.
func TestFaultOnLastStageStillUnblocksFirst(t *testing.T) {
	g := buildMLP(t)
	cfg := uniform(t, g, 4, 1, 1, 1, 2) // deep pipeline
	x, y := data(42)
	p := InitParams(g, 7)
	done := make(chan error, 1)
	go func() {
		_, err := ParallelOpts(g, cfg, p, x, y, lr, iters, RunOptions{
			Fault: &FaultPlan{Rank: 3, Iteration: 0}, // no deadline: cascade only
		})
		done <- err
	}()
	select {
	case err := <-done:
		var dl *DeviceLostError
		if !errors.As(err, &dl) || dl.Stage != 3 {
			t.Fatalf("err = %v, want DeviceLostError on stage 3", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("fault on last stage deadlocked the pipeline")
	}
}

// TestFaultPlanValidation: out-of-range plans are rejected up front.
func TestFaultPlanValidation(t *testing.T) {
	g := buildMLP(t)
	cfg := uniform(t, g, 1, 1, 1, 1, 4)
	x, y := data(42)
	p := InitParams(g, 7)
	for _, f := range []FaultPlan{{Rank: -1, Iteration: 0}, {Rank: 9, Iteration: 0}, {Rank: 0, Iteration: iters}} {
		f := f
		if _, err := ParallelOpts(g, cfg, p, x, y, lr, iters, RunOptions{Fault: &f}); err == nil {
			t.Errorf("fault %+v accepted", f)
		}
	}
}

// TestResumeMatchesUninterrupted: a run split into two ParallelOpts
// segments (the checkpoint/resume pattern, Adam bias correction resuming
// from Step+1) must reproduce the single uninterrupted run exactly.
func TestResumeMatchesUninterrupted(t *testing.T) {
	g := buildMLP(t)
	cfg := uniform(t, g, 2, 2, 2, 1, 4)
	x, y := data(42)

	whole := InitParams(g, 7)
	whole.Opt = Adam
	wholeLosses, err := Parallel(g, cfg, whole, x, y, lr, 6)
	if err != nil {
		t.Fatal(err)
	}

	split := InitParams(g, 7)
	split.Opt = Adam
	l1, err := Parallel(g, cfg, split, x, y, lr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if split.Step != 3 {
		t.Fatalf("Step = %d after first segment, want 3", split.Step)
	}
	resumed := split.Clone() // the checkpoint
	l2, err := Parallel(g, cfg, resumed, x, y, lr, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := append(append([]float64{}, l1...), l2...)
	for i := range wholeLosses {
		if math.Abs(wholeLosses[i]-got[i]) > tol {
			t.Errorf("iter %d: uninterrupted %.12f vs segmented %.12f", i, wholeLosses[i], got[i])
		}
	}
	if d := whole.MaxDiff(resumed); d > tol {
		t.Errorf("final state differs by %g between whole and segmented runs", d)
	}
}

// TestCommDeadlineZeroValueUnbounded: RunOptions zero value must behave
// exactly like Parallel (regression guard on the delegation).
func TestCommDeadlineZeroValueUnbounded(t *testing.T) {
	g := buildMLP(t)
	cfg := uniform(t, g, 2, 1, 1, 1, 4)
	x, y := data(42)
	a, b := InitParams(g, 7), InitParams(g, 7)
	la, err := Parallel(g, cfg, a, x, y, lr, iters)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := ParallelOpts(g, cfg, b, x, y, lr, iters, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("iter %d: Parallel %v vs ParallelOpts{} %v", i, la[i], lb[i])
		}
	}
	if d := a.MaxDiff(b); d != 0 {
		t.Fatalf("states differ by %g", d)
	}
}

// Interface check: the comm layer's typed errors unwrap through the
// runtime's stage wrapping.
func TestCommErrorsUnwrapThroughStageWrapping(t *testing.T) {
	var _ error = (*comm.CollectiveTimeoutError)(nil)
	var _ error = (*comm.DeadRankError)(nil)
	var _ error = (*DeviceLostError)(nil)
}
