package runtime

import (
	"fmt"

	"aceso/internal/model"
	"aceso/internal/tensor"
)

// Arch describes how a transformer graph's activations decompose: the
// numeric runtime lays them out as (samples·Seq) rows of per-token
// feature columns. Heads is the attention head count; Hidden the
// per-token model width. A nil Arch (plain MLP graphs) means one row
// per sample.
type Arch struct {
	Seq, Hidden, Heads int
	// Causal applies decoder-style masking: token i attends only to
	// tokens ≤ i within its sequence.
	Causal bool
}

// rowsPerSample returns how many activation rows one sample spans.
func (p *Params) rowsPerSample() int {
	if p.Arch == nil {
		return 1
	}
	return p.Arch.Seq
}

// widths returns each op's output width (columns) given the model
// input width, validating the chain.
func widths(g *model.Graph, inputWidth int) ([]int, error) {
	out := make([]int, len(g.Ops))
	cur := inputWidth
	for i := range g.Ops {
		op := &g.Ops[i]
		switch op.Kind {
		case model.KindMatMul:
			cur = int(op.ActElems)
		case model.KindAttentionCore:
			if cur%3 != 0 {
				return nil, fmt.Errorf("runtime: attention op %d input width %d not 3·h", i, cur)
			}
			cur /= 3
		case model.KindLayerNorm, model.KindElementwise:
			if int(op.ActElems) != cur {
				return nil, fmt.Errorf("runtime: op %d width %d != chain %d", i, int(op.ActElems), cur)
			}
		default:
			return nil, fmt.Errorf("runtime: unsupported op kind %v", op.Kind)
		}
		out[i] = cur
	}
	return out, nil
}

// InitParamsArch initializes weights for a transformer graph
// (model.TinyGPT): matmul weights take their input width from the
// preceding op, layer norms get per-feature gain/bias, and the
// returned Params carry the Arch so Serial/Parallel interpret rows as
// tokens.
func InitParamsArch(g *model.Graph, arch Arch, seed int64) (*Params, error) {
	ws, err := widths(g, arch.Hidden)
	if err != nil {
		return nil, err
	}
	p := InitParams(g, seed) // square defaults, replaced below
	p.Arch = &arch
	rng := newRNG(seed + 1)
	cur := arch.Hidden
	for i := range g.Ops {
		op := &g.Ops[i]
		switch op.Kind {
		case model.KindMatMul:
			in, out := cur, ws[i]
			w := tensor.New(in, out)
			scale := 1 / float64(in)
			for j := range w.Data {
				w.Data[j] = rng.NormFloat64() * scale
			}
			b := tensor.New(1, out)
			for j := range b.Data {
				b.Data[j] = rng.NormFloat64() * 0.01
			}
			p.W[i], p.B[i] = w, b
		case model.KindLayerNorm:
			gain := tensor.New(1, ws[i])
			for j := range gain.Data {
				gain.Data[j] = 1
			}
			p.W[i], p.B[i] = gain, tensor.New(1, ws[i])
		}
		cur = ws[i]
	}
	return p, nil
}

// attnForward runs multi-head attention over x: rows are tokens
// grouped in blocks of `seq` per sample; columns are head-major
// [q|k|v] blocks of width 3·dh per head. The context keeps head-major
// column order (dh per head).
func attnForward(x *tensor.Mat, seq, dh int, causal bool) *tensor.Mat {
	heads := x.Cols / (3 * dh)
	out := tensor.New(x.Rows, heads*dh)
	for s0 := 0; s0 < x.Rows; s0 += seq {
		block := tensor.RowSlice(x, s0, s0+seq)
		for hd := 0; hd < heads; hd++ {
			base := hd * 3 * dh
			q := tensor.ColSlice(block, base, base+dh)
			k := tensor.ColSlice(block, base+dh, base+2*dh)
			v := tensor.ColSlice(block, base+2*dh, base+3*dh)
			ctx, _ := tensor.AttentionHead(q, k, v, causal)
			for i := 0; i < seq; i++ {
				copy(out.Data[(s0+i)*out.Cols+hd*dh:(s0+i)*out.Cols+(hd+1)*dh],
					ctx.Data[i*dh:(i+1)*dh])
			}
		}
	}
	return out
}

// attnBackward propagates dctx through attnForward, recomputing the
// attention probabilities from the stashed input.
func attnBackward(dctx, x *tensor.Mat, seq, dh int, causal bool) *tensor.Mat {
	heads := x.Cols / (3 * dh)
	dx := tensor.New(x.Rows, x.Cols)
	for s0 := 0; s0 < x.Rows; s0 += seq {
		block := tensor.RowSlice(x, s0, s0+seq)
		dBlock := tensor.RowSlice(dctx, s0, s0+seq)
		for hd := 0; hd < heads; hd++ {
			base := hd * 3 * dh
			q := tensor.ColSlice(block, base, base+dh)
			k := tensor.ColSlice(block, base+dh, base+2*dh)
			v := tensor.ColSlice(block, base+2*dh, base+3*dh)
			_, probs := tensor.AttentionHead(q, k, v, causal)
			dHead := tensor.ColSlice(dBlock, hd*dh, (hd+1)*dh)
			dq, dk, dv := tensor.AttentionHeadBackward(dHead, q, k, v, probs)
			for i := 0; i < seq; i++ {
				row := dx.Data[(s0+i)*dx.Cols:]
				copy(row[base:base+dh], dq.Data[i*dh:(i+1)*dh])
				copy(row[base+dh:base+2*dh], dk.Data[i*dh:(i+1)*dh])
				copy(row[base+2*dh:base+3*dh], dv.Data[i*dh:(i+1)*dh])
			}
		}
	}
	return dx
}
