// Package runtime numerically executes parallel-training
// configurations, reproducing the paper's correctness methodology:
// §4 validates Aceso's implementation "by comparing the output with
// that of the original Megatron-LM". Here, any valid configuration of
// an MLP graph (model.MLP) — pipeline stages as concurrent goroutines
// exchanging activations through the channel-based collectives of
// internal/comm, column/row-parallel linear layers, data-parallel row
// sharding with gradient summation, microbatching and recomputation —
// is executed end to end and compared against a serial reference.
// Because every reconfiguration primitive is semantic-preserving, the
// parallel execution must converge identically (up to floating-point
// summation order) for every configuration the search visits.
package runtime

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"aceso/internal/comm"
	"aceso/internal/config"
	"aceso/internal/model"
	"aceso/internal/tensor"
)

// UnsupportedOpError reports an operator kind the numeric runtime
// cannot execute. It is returned (never panicked) so that a caller
// handing the runtime an exotic graph gets a diagnosable failure
// instead of a crashed process.
type UnsupportedOpError struct {
	Op   int // operator index in the graph
	Kind model.OpKind
}

// Error implements the error interface.
func (e *UnsupportedOpError) Error() string {
	return fmt.Sprintf("runtime: op %d has unsupported kind %v", e.Op, e.Kind)
}

// Optimizer selects the update rule applied after each iteration.
type Optimizer int

const (
	// SGD applies plain stochastic gradient descent.
	SGD Optimizer = iota
	// Adam applies Adam (Kingma & Ba) with β1 = 0.9, β2 = 0.999 —
	// the optimizer the paper's workloads actually train with, and
	// the reason optimizer state dominates Eq. 1's M_opt term.
	Adam
)

// Adam hyper-parameters.
const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

// Params holds the full training state of an executable graph: per op
// ID, a weight matrix and a 1×out bias (gain/bias for layer norms).
// Arch is non-nil for transformer graphs (see InitParamsArch). Opt
// selects the update rule; Adam keeps first/second-moment state per
// parameter in MW/VW/MB/VB. Step counts completed optimizer steps —
// Adam's bias correction depends on it, so a checkpoint that loses
// Step silently changes the training trajectory on resume. Seed
// records the RNG cursor the weights were drawn from (checkpoint
// provenance).
type Params struct {
	W    map[int]*tensor.Mat
	B    map[int]*tensor.Mat
	Arch *Arch
	Opt  Optimizer

	// Step is the number of optimizer steps already applied. Serial
	// and Parallel resume Adam's bias correction from Step+1 and
	// advance it by the iterations they complete.
	Step int

	// Seed is the RNG cursor the parameters were initialized from.
	Seed int64

	// Adam first/second-moment state, keyed like W and B (lazily sized
	// by EnsureOptState before training; stages update disjoint op IDs,
	// so no locking is needed). Checkpoints must capture these four
	// maps: losing them resets the optimizer's memory on resume.
	MW, VW map[int]*tensor.Mat
	MB, VB map[int]*tensor.Mat
}

// EnsureOptState sizes the Adam moment buffers. It must run before
// concurrent stage goroutines start (map writes are not synchronized).
// Exported so the checkpoint layer can shard a not-yet-trained Adam
// state deterministically.
func (p *Params) EnsureOptState() {
	if p.Opt != Adam || p.MW != nil {
		return
	}
	p.MW, p.VW = map[int]*tensor.Mat{}, map[int]*tensor.Mat{}
	p.MB, p.VB = map[int]*tensor.Mat{}, map[int]*tensor.Mat{}
	for id, w := range p.W {
		p.MW[id] = tensor.New(w.Rows, w.Cols)
		p.VW[id] = tensor.New(w.Rows, w.Cols)
		b := p.B[id]
		p.MB[id] = tensor.New(1, b.Cols)
		p.VB[id] = tensor.New(1, b.Cols)
	}
}

// newRNG returns a deterministic generator.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// InitParams initializes deterministic weights for every linear op.
func InitParams(g *model.Graph, seed int64) *Params {
	rng := rand.New(rand.NewSource(seed))
	p := &Params{W: map[int]*tensor.Mat{}, B: map[int]*tensor.Mat{}, Seed: seed}
	for i := range g.Ops {
		op := &g.Ops[i]
		dim := int(op.ActElems)
		switch op.Kind {
		case model.KindMatMul:
			w := tensor.New(dim, dim)
			scale := 1 / float64(dim)
			for j := range w.Data {
				w.Data[j] = rng.NormFloat64() * scale
			}
			b := tensor.New(1, dim)
			for j := range b.Data {
				b.Data[j] = rng.NormFloat64() * 0.01
			}
			p.W[i] = w
			p.B[i] = b
		case model.KindLayerNorm:
			// Gain initialized to ones, bias to zeros, as frameworks do.
			gain := tensor.New(1, dim)
			for j := range gain.Data {
				gain.Data[j] = 1
			}
			p.W[i] = gain
			p.B[i] = tensor.New(1, dim)
		}
	}
	return p
}

// Clone deep-copies the full training state: weights, biases, the
// step counter and — critically for checkpoints — the Adam moment
// maps. A shallow alias of MW/VW/MB/VB here would let a "snapshot"
// keep training along with the live parameters, silently corrupting
// every checkpoint built from it.
func (p *Params) Clone() *Params {
	out := &Params{
		W: map[int]*tensor.Mat{}, B: map[int]*tensor.Mat{},
		Arch: p.Arch, Opt: p.Opt, Step: p.Step, Seed: p.Seed,
	}
	for k, v := range p.W {
		out.W[k] = v.Clone()
	}
	for k, v := range p.B {
		out.B[k] = v.Clone()
	}
	out.MW = cloneMatMap(p.MW)
	out.VW = cloneMatMap(p.VW)
	out.MB = cloneMatMap(p.MB)
	out.VB = cloneMatMap(p.VB)
	return out
}

func cloneMatMap(m map[int]*tensor.Mat) map[int]*tensor.Mat {
	if m == nil {
		return nil
	}
	out := make(map[int]*tensor.Mat, len(m))
	for k, v := range m {
		out[k] = v.Clone()
	}
	return out
}

// MaxDiff returns the largest element-wise difference between two
// complete training states: weights, biases and Adam moments. A step
// mismatch — or optimizer state present on one side only — is an
// unbounded divergence (+Inf): the two states cannot produce the same
// continuation, no matter how close the weights look.
func (p *Params) MaxDiff(q *Params) float64 {
	if p.Step != q.Step {
		return math.Inf(1)
	}
	var max float64
	for k, v := range p.W {
		if d := tensor.MaxAbsDiff(v, q.W[k]); d > max {
			max = d
		}
	}
	for k, v := range p.B {
		if d := tensor.MaxAbsDiff(v, q.B[k]); d > max {
			max = d
		}
	}
	for _, pair := range [][2]map[int]*tensor.Mat{{p.MW, q.MW}, {p.VW, q.VW}, {p.MB, q.MB}, {p.VB, q.VB}} {
		a, b := pair[0], pair[1]
		if (a == nil) != (b == nil) {
			return math.Inf(1)
		}
		for k, v := range a {
			if b[k] == nil {
				return math.Inf(1)
			}
			if d := tensor.MaxAbsDiff(v, b[k]); d > max {
				max = d
			}
		}
	}
	return max
}

type grads struct {
	W map[int]*tensor.Mat
	B map[int]*tensor.Mat
}

func newGrads(p *Params, ops []int) *grads {
	g := &grads{W: map[int]*tensor.Mat{}, B: map[int]*tensor.Mat{}}
	for _, id := range ops {
		if w, ok := p.W[id]; ok {
			g.W[id] = tensor.New(w.Rows, w.Cols)
			g.B[id] = tensor.New(1, p.B[id].Cols)
		}
	}
	return g
}

// Serial trains the MLP for iters steps of microbatched SGD on one
// device and returns the per-iteration losses. It is the reference
// that Parallel must match.
func Serial(g *model.Graph, p *Params, x, y *tensor.Mat, microBatch int, lr float64, iters int) ([]float64, error) {
	rps := p.rowsPerSample()
	if err := checkData(g, x, y, microBatch, rps); err != nil {
		return nil, err
	}
	mbRows := microBatch * rps
	numMB := x.Rows / mbRows
	p.EnsureOptState()
	base := p.Step
	losses := make([]float64, 0, iters)
	opIDs := make([]int, len(g.Ops))
	for i := range opIDs {
		opIDs[i] = i
	}
	for it := 0; it < iters; it++ {
		acc := newGrads(p, opIDs)
		var lossSum float64
		for mb := 0; mb < numMB; mb++ {
			xmb := tensor.RowSlice(x, mb*mbRows, (mb+1)*mbRows)
			ymb := tensor.RowSlice(y, mb*mbRows, (mb+1)*mbRows)
			// Forward, stashing each op's input.
			stash := make([]*tensor.Mat, len(g.Ops))
			act := xmb
			for i := range g.Ops {
				stash[i] = act
				switch g.Ops[i].Kind {
				case model.KindMatMul:
					act = tensor.AddBias(tensor.MatMul(act, p.W[i]), p.B[i])
				case model.KindLayerNorm:
					act, _ = tensor.LayerNorm(act, p.W[i], p.B[i])
				case model.KindAttentionCore:
					if p.Arch == nil {
						return nil, fmt.Errorf("runtime: attention op %d needs Arch params", i)
					}
					act = attnForward(act, p.Arch.Seq, p.Arch.Hidden/p.Arch.Heads, p.Arch.Causal)
				case model.KindElementwise:
					act = tensor.ReLU(act)
				default:
					return nil, &UnsupportedOpError{Op: i, Kind: g.Ops[i].Kind}
				}
			}
			loss, d := tensor.MSE(act, ymb)
			lossSum += loss
			// Backward.
			for i := len(g.Ops) - 1; i >= 0; i-- {
				switch g.Ops[i].Kind {
				case model.KindMatMul:
					tensor.AddInPlace(acc.W[i], tensor.MatMul(tensor.Transpose(stash[i]), d))
					tensor.ColSumTo(acc.B[i], d)
					d = tensor.MatMul(d, tensor.Transpose(p.W[i]))
				case model.KindLayerNorm:
					// Recompute the normalization cache from the input.
					_, cache := tensor.LayerNorm(stash[i], p.W[i], p.B[i])
					d = tensor.LayerNormBackward(d, cache, p.W[i], acc.W[i], acc.B[i])
				case model.KindAttentionCore:
					d = attnBackward(d, stash[i], p.Arch.Seq, p.Arch.Hidden/p.Arch.Heads, p.Arch.Causal)
				case model.KindElementwise:
					d = tensor.ReLUBackward(d, stash[i])
				}
			}
		}
		applyUpdate(p, acc, lr, 1/float64(numMB), base+it+1)
		losses = append(losses, lossSum/float64(numMB))
	}
	p.Step = base + iters
	return losses, nil
}

// applyUpdate applies one optimizer step to the ops present in acc.
// gradScale folds the microbatch averaging (1/numMB); step is the
// 1-based iteration count (Adam bias correction).
func applyUpdate(p *Params, acc *grads, lr, gradScale float64, step int) {
	for id, dw := range acc.W {
		updateTensor(p, id, p.W[id], dw, p.MW, p.VW, lr, gradScale, step)
		updateTensor(p, id, p.B[id], acc.B[id], p.MB, p.VB, lr, gradScale, step)
	}
}

func updateTensor(p *Params, id int, w, g *tensor.Mat, ms, vs map[int]*tensor.Mat, lr, gradScale float64, step int) {
	if p.Opt != Adam {
		s := lr * gradScale
		for i := range w.Data {
			w.Data[i] -= s * g.Data[i]
		}
		return
	}
	m, v := ms[id], vs[id]
	c1 := 1 - pow(adamBeta1, step)
	c2 := 1 - pow(adamBeta2, step)
	for i := range w.Data {
		grad := g.Data[i] * gradScale
		m.Data[i] = adamBeta1*m.Data[i] + (1-adamBeta1)*grad
		v.Data[i] = adamBeta2*v.Data[i] + (1-adamBeta2)*grad*grad
		mhat := m.Data[i] / c1
		vhat := v.Data[i] / c2
		w.Data[i] -= lr * mhat / (sqrtf(vhat) + adamEps)
	}
}

func pow(b float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= b
	}
	return out
}

func sqrtf(v float64) float64 { return math.Sqrt(v) }

func checkData(g *model.Graph, x, y *tensor.Mat, microBatch, rowsPerSample int) error {
	if x.Rows != g.GlobalBatch*rowsPerSample {
		return fmt.Errorf("runtime: X has %d rows, want batch %d × %d rows/sample",
			x.Rows, g.GlobalBatch, rowsPerSample)
	}
	if y.Rows != x.Rows {
		return fmt.Errorf("runtime: X/Y row mismatch %d vs %d", x.Rows, y.Rows)
	}
	if microBatch <= 0 || g.GlobalBatch%microBatch != 0 {
		return fmt.Errorf("runtime: microbatch %d does not divide batch %d", microBatch, g.GlobalBatch)
	}
	return nil
}

// FaultPlan injects a device failure into a ParallelOpts run: the
// device with global rank Rank dies at the start of iteration
// Iteration (0-based, counted within the run). The stage hosting the
// device surfaces a typed *DeviceLostError at that iteration boundary
// and the World marks the stage's ranks dead, so every other stage
// fails fast through the comm layer instead of deadlocking.
type FaultPlan struct {
	Rank      int
	Iteration int
}

// RunOptions tunes a ParallelOpts execution beyond the core training
// arguments. The zero value reproduces Parallel exactly.
type RunOptions struct {
	// Fault, when non-nil, kills a device mid-run (see FaultPlan).
	Fault *FaultPlan
	// CommDeadline bounds every collective/p2p wait; 0 = unbounded.
	// Any elastic or chaos caller should set it: it converts a bug
	// that would deadlock the World into a typed timeout error.
	CommDeadline time.Duration
}

// DeviceLostError reports a device failure injected (or detected) at
// an iteration boundary. Step is the global optimizer step count at
// the failure point — the resume floor for checkpoint recovery.
type DeviceLostError struct {
	Rank      int // the lost device's global rank
	Stage     int // pipeline stage hosting the device
	Iteration int // run-local iteration at whose start it died
	Step      int // global optimizer steps completed before the loss
}

// Error implements the error interface.
func (e *DeviceLostError) Error() string {
	return fmt.Sprintf("runtime: device %d (stage %d) lost at iteration %d (step %d)",
		e.Rank, e.Stage, e.Iteration, e.Step)
}

// CheckRunnable verifies that the numeric runtime can execute cfg with
// the given parameters: every op kind is supported, weights exist and
// divide by their tensor-parallel degrees. Exported so elastic
// replanning can filter searched candidates down to executable ones
// before committing a resharded state to one of them.
func CheckRunnable(g *model.Graph, cfg *config.Config, p *Params) error {
	for si := range cfg.Stages {
		st := &cfg.Stages[si]
		for j := st.Start; j < st.End; j++ {
			op := &g.Ops[j]
			set := st.Setting(j)
			switch op.Kind {
			case model.KindMatMul:
				w := p.W[j]
				if w == nil {
					return fmt.Errorf("runtime: op %d has no weights", j)
				}
				if w.Cols%set.TP != 0 || w.Rows%set.TP != 0 {
					return fmt.Errorf("runtime: op %d weight %d×%d not divisible by tp %d",
						j, w.Rows, w.Cols, set.TP)
				}
			case model.KindAttentionCore:
				if p.Arch == nil {
					return fmt.Errorf("runtime: attention op %d needs Arch params", j)
				}
				if p.Arch.Heads%set.TP != 0 {
					return fmt.Errorf("runtime: op %d: %d heads not divisible by tp %d",
						j, p.Arch.Heads, set.TP)
				}
			case model.KindLayerNorm, model.KindElementwise:
				// Executable with no extra parameters.
			default:
				// Rejecting unknown kinds up front keeps the error out
				// of the concurrent stage executors, where a failing
				// stage would leave its neighbors blocked on Recv.
				return &UnsupportedOpError{Op: j, Kind: op.Kind}
			}
		}
	}
	return nil
}

// Parallel trains the MLP under cfg — concurrent pipeline stages,
// column/row tensor parallelism, data-parallel row sharding,
// microbatching and recomputation — and returns per-iteration losses.
// The final parameters are written back into p; they must match
// Serial's up to floating-point summation order.
func Parallel(g *model.Graph, cfg *config.Config, p *Params, x, y *tensor.Mat, lr float64, iters int) ([]float64, error) {
	return ParallelOpts(g, cfg, p, x, y, lr, iters, RunOptions{})
}

// ParallelOpts is Parallel with fault injection and comm deadlines.
//
// On a device loss (injected via opt.Fault, or any comm-layer failure)
// it returns the losses of the iterations the last stage completed
// plus a typed error — *DeviceLostError when a planned fault fired.
// The parameter state p is torn in that case (stages stop at
// different iterations) and must be restored from a checkpoint; that
// is exactly the contract the elastic layer is built around.
func ParallelOpts(g *model.Graph, cfg *config.Config, p *Params, x, y *tensor.Mat, lr float64, iters int, opt RunOptions) ([]float64, error) {
	rps := p.rowsPerSample()
	if err := checkData(g, x, y, cfg.MicroBatch, rps); err != nil {
		return nil, err
	}
	if err := cfg.Validate(g, cfg.TotalDevices()); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	if err := CheckRunnable(g, cfg, p); err != nil {
		return nil, err
	}

	p.EnsureOptState()
	world, err := comm.NewWorld(cfg.TotalDevices())
	if err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	world.SetDeadline(opt.CommDeadline)
	if f := opt.Fault; f != nil {
		if f.Rank < 0 || f.Rank >= cfg.TotalDevices() {
			return nil, fmt.Errorf("runtime: fault rank %d out of range [0, %d)", f.Rank, cfg.TotalDevices())
		}
		if f.Iteration < 0 || f.Iteration >= iters {
			return nil, fmt.Errorf("runtime: fault iteration %d out of range [0, %d)", f.Iteration, iters)
		}
	}
	numMB := g.GlobalBatch / cfg.MicroBatch
	p0 := cfg.NumStages()
	base := p.Step

	type stageOut struct {
		losses []float64
		err    error
	}
	outs := make([]stageOut, p0)
	var wg sync.WaitGroup
	for si := 0; si < p0; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			ex := &stageExec{
				g: g, cfg: cfg, si: si, st: &cfg.Stages[si],
				world: world, params: p,
				firstDev: cfg.FirstDev(si),
				baseStep: base,
				fault:    opt.Fault,
			}
			losses, err := ex.run(x, y, lr, iters, numMB)
			if err != nil {
				// Cascade: a failed stage takes its ranks down so
				// neighbors blocked on its traffic fail fast instead of
				// waiting out the deadline (or hanging without one).
				world.FailRange(ex.firstDev, ex.st.Devices)
			}
			outs[si] = stageOut{losses, err}
		}(si)
	}
	wg.Wait()

	// Partial losses: whatever the last stage completed before the run
	// ended (all of them on success).
	losses := outs[p0-1].losses
	// A planned fault is the root cause — report it over the secondary
	// comm errors the other stages died of.
	for si := range outs {
		var dl *DeviceLostError
		if errors.As(outs[si].err, &dl) {
			return losses, fmt.Errorf("runtime: stage %d: %w", si, outs[si].err)
		}
	}
	for si := range outs {
		if outs[si].err != nil {
			return losses, fmt.Errorf("runtime: stage %d: %w", si, outs[si].err)
		}
	}
	p.Step = base + iters
	return losses, nil
}

// acts is the in-stage activation state: dp row-shards, each either a
// single replicated matrix or tp column shards.
type acts struct {
	dp, tp int
	layout model.Layout
	parts  [][]*tensor.Mat // [dpIdx][tpIdx]; tp==1 ⇒ one full part
}

// full assembles the complete microbatch activation.
func (a *acts) full() *tensor.Mat {
	rows := make([]*tensor.Mat, a.dp)
	for d := 0; d < a.dp; d++ {
		if a.layout == model.Split && a.tp > 1 {
			rows[d] = tensor.ConcatCols(a.parts[d]...)
		} else {
			rows[d] = a.parts[d][0]
		}
	}
	if a.dp == 1 {
		return rows[0]
	}
	return tensor.ConcatRows(rows...)
}

func fromFull(m *tensor.Mat, dp int) *acts {
	a := &acts{dp: dp, tp: 1, layout: model.Replicated, parts: make([][]*tensor.Mat, dp)}
	rows := m.Rows / dp
	for d := 0; d < dp; d++ {
		a.parts[d] = []*tensor.Mat{tensor.RowSlice(m, d*rows, (d+1)*rows)}
	}
	return a
}

// stageExec runs one pipeline stage.
type stageExec struct {
	g        *model.Graph
	cfg      *config.Config
	si       int
	st       *config.Stage
	world    *comm.World
	params   *Params
	firstDev int
	baseStep int        // optimizer steps completed before this run
	fault    *FaultPlan // nil unless a failure is scheduled
}

// ownsRank reports whether the fault's rank lives on this stage.
func (e *stageExec) ownsRank(rank int) bool {
	return rank >= e.firstDev && rank < e.firstDev+e.st.Devices
}

// tpGroup returns the global ranks of replica d's tensor-parallel
// group for an op with degree tp.
func (e *stageExec) tpGroup(d, tp int) []int {
	base := e.firstDev + d*tp
	out := make([]int, tp)
	for t := range out {
		out[t] = base + t
	}
	return out
}

// tpAllReduce sums parts across the tp group using one goroutine per
// rank — the runtime's NCCL-equivalent path. Any rank's comm failure
// fails the whole group-local reduce.
func (e *stageExec) tpAllReduce(d int, parts []*tensor.Mat) (*tensor.Mat, error) {
	group := e.tpGroup(d, len(parts))
	outs := make([]*tensor.Mat, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for t := range parts {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			outs[t], errs[t] = e.world.AllReduceSum(group, group[t], parts[t])
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs[0], nil
}

// stash holds what one microbatch's backward needs: the input acts of
// every op (nil for recomputed ops) plus the stage input.
type stash struct {
	input  *tensor.Mat // stage-boundary input (full rows)
	perOp  []*acts     // index: op - st.Start
	output *acts       // final activation (last stage only)
}

// forward runs the stage's ops for one microbatch, returning the
// stash. When record is false (recompute's regeneration pass skips
// nothing), rc ops stash too.
func (e *stageExec) forward(in *tensor.Mat, record bool) (*stash, error) {
	s := &stash{input: in, perOp: make([]*acts, e.st.NumOps())}
	var a *acts
	for j := e.st.Start; j < e.st.End; j++ {
		set := e.st.Setting(j)
		if a == nil || a.dp != set.DP {
			var fullIn *tensor.Mat
			if a == nil {
				fullIn = in
			} else {
				fullIn = a.full()
			}
			a = fromFull(fullIn, set.DP)
		}
		if record || !set.Recompute {
			s.perOp[j-e.st.Start] = a
		}
		var err error
		a, err = e.forwardOp(j, a)
		if err != nil {
			return nil, err
		}
	}
	s.output = a
	return s, nil
}

// forwardOp applies op j to activation a.
func (e *stageExec) forwardOp(j int, a *acts) (*acts, error) {
	op := &e.g.Ops[j]
	set := e.st.Setting(j)
	switch op.Kind {
	case model.KindMatMul:
		dim := op.Dims[set.Dim]
		w, b := e.params.W[j], e.params.B[j]
		cols := w.Cols
		out := &acts{dp: set.DP, tp: set.TP, parts: make([][]*tensor.Mat, set.DP)}
		for d := 0; d < set.DP; d++ {
			xFull := replicaFull(a, d)
			if set.TP == 1 {
				out.tp = 1
				out.layout = model.Replicated
				out.parts[d] = []*tensor.Mat{tensor.AddBias(tensor.MatMul(xFull, w), b)}
				continue
			}
			if dim.Name == "col" {
				// Column-parallel: shard W's columns; outputs stay split.
				shard := cols / set.TP
				parts := make([]*tensor.Mat, set.TP)
				for t := 0; t < set.TP; t++ {
					wt := tensor.ColSlice(w, t*shard, (t+1)*shard)
					bt := tensor.ColSlice(b, t*shard, (t+1)*shard)
					parts[t] = tensor.AddBias(tensor.MatMul(xFull, wt), bt)
				}
				out.layout = model.Split
				out.parts[d] = parts
			} else {
				// Row-parallel: shard X's columns and W's rows; the
				// partial products all-reduce to the full output.
				shard := w.Rows / set.TP
				partials := make([]*tensor.Mat, set.TP)
				for t := 0; t < set.TP; t++ {
					xt := tensor.ColSlice(xFull, t*shard, (t+1)*shard)
					wt := tensor.RowSlice(w, t*shard, (t+1)*shard)
					partials[t] = tensor.MatMul(xt, wt)
				}
				sum, err := e.tpAllReduce(d, partials)
				if err != nil {
					return nil, err
				}
				out.tp = 1
				out.layout = model.Replicated
				out.parts[d] = []*tensor.Mat{tensor.AddBias(sum, b)}
			}
		}
		return out, nil
	case model.KindAttentionCore:
		// DimHead: each tp rank attends over its own heads. A matching
		// column-split input (head-major QKV blocks from the column-
		// parallel projection) is consumed shard-by-shard; otherwise
		// gather and re-slice on head boundaries.
		arch := e.params.Arch
		dh := arch.Hidden / arch.Heads
		out := &acts{dp: set.DP, tp: set.TP, layout: model.Split, parts: make([][]*tensor.Mat, set.DP)}
		if set.TP == 1 {
			out.layout = model.Replicated
		}
		for d := 0; d < set.DP; d++ {
			parts := headParts(a, d, set.TP)
			outParts := make([]*tensor.Mat, len(parts))
			for t, qkv := range parts {
				outParts[t] = attnForward(qkv, arch.Seq, dh, arch.Causal)
			}
			out.parts[d] = outParts
		}
		return out, nil
	case model.KindLayerNorm:
		// DimNone: computed replicated on every tp rank over the full
		// hidden dimension — a column-split input gathers first (the
		// relayout the performance model charges for).
		out := &acts{dp: set.DP, tp: 1, layout: model.Replicated, parts: make([][]*tensor.Mat, set.DP)}
		gain, bias := e.params.W[j], e.params.B[j]
		for d := 0; d < set.DP; d++ {
			xFull := replicaFull(a, d)
			y, _ := tensor.LayerNorm(xFull, gain, bias)
			out.parts[d] = []*tensor.Mat{y}
		}
		return out, nil
	case model.KindElementwise:
		out := &acts{dp: a.dp, tp: a.tp, layout: a.layout, parts: make([][]*tensor.Mat, a.dp)}
		for d := range a.parts {
			out.parts[d] = make([]*tensor.Mat, len(a.parts[d]))
			for t := range a.parts[d] {
				out.parts[d][t] = tensor.ReLU(a.parts[d][t])
			}
		}
		return out, nil
	default:
		return nil, &UnsupportedOpError{Op: j, Kind: op.Kind}
	}
}

// replicaFull returns replica d's rows as one full-width matrix.
func replicaFull(a *acts, d int) *tensor.Mat {
	if a.layout == model.Split && a.tp > 1 {
		return tensor.ConcatCols(a.parts[d]...)
	}
	return a.parts[d][0]
}

// backward runs the stage's backward for one microbatch, accumulating
// weight gradients into acc and returning the gradient for the
// previous stage (full rows).
func (e *stageExec) backward(s *stash, dOut *tensor.Mat, acc *grads) (*tensor.Mat, error) {
	// Regenerate missing stashes (recomputation).
	for j := e.st.Start; j < e.st.End; j++ {
		if s.perOp[j-e.st.Start] == nil {
			var err error
			s, err = e.forward(s.input, true)
			if err != nil {
				return nil, err
			}
			break
		}
	}
	d := fromFull(dOut, e.st.Setting(e.st.End-1).DP)
	for j := e.st.End - 1; j >= e.st.Start; j-- {
		set := e.st.Setting(j)
		if d.dp != set.DP {
			d = fromFull(d.full(), set.DP)
		}
		in := s.perOp[j-e.st.Start]
		var err error
		d, err = e.backwardOp(j, in, d, acc)
		if err != nil {
			return nil, err
		}
	}
	return d.full(), nil
}

// backwardOp propagates gradients through op j given its stashed input.
func (e *stageExec) backwardOp(j int, in, d *acts, acc *grads) (*acts, error) {
	op := &e.g.Ops[j]
	set := e.st.Setting(j)
	switch op.Kind {
	case model.KindMatMul:
		dim := op.Dims[set.Dim]
		w := e.params.W[j]
		out := &acts{dp: set.DP, tp: 1, layout: model.Replicated, parts: make([][]*tensor.Mat, set.DP)}
		for dp := 0; dp < set.DP; dp++ {
			xFull := replicaFull(in, dp)
			if set.TP == 1 {
				dy := replicaFull(d, dp)
				tensor.AddInPlace(acc.W[j], tensor.MatMul(tensor.Transpose(xFull), dy))
				tensor.ColSumTo(acc.B[j], dy)
				out.parts[dp] = []*tensor.Mat{tensor.MatMul(dy, tensor.Transpose(w))}
				continue
			}
			if dim.Name == "col" {
				// dY arrives split; each shard contributes to its W
				// columns, and dX all-reduces across the group.
				shard := w.Cols / set.TP
				dyParts := splitCols(d, dp, set.TP)
				partials := make([]*tensor.Mat, set.TP)
				for t := 0; t < set.TP; t++ {
					dwt := tensor.MatMul(tensor.Transpose(xFull), dyParts[t])
					accCols(acc.W[j], dwt, t*shard)
					accColsBias(acc.B[j], dyParts[t], t*shard)
					wt := tensor.ColSlice(w, t*shard, (t+1)*shard)
					partials[t] = tensor.MatMul(dyParts[t], tensor.Transpose(wt))
				}
				dx, err := e.tpAllReduce(dp, partials)
				if err != nil {
					return nil, err
				}
				out.parts[dp] = []*tensor.Mat{dx}
			} else {
				// Row-parallel: dY is replicated; X was column-split.
				shard := w.Rows / set.TP
				dy := replicaFull(d, dp)
				dxParts := make([]*tensor.Mat, set.TP)
				for t := 0; t < set.TP; t++ {
					xt := tensor.ColSlice(xFull, t*shard, (t+1)*shard)
					dwt := tensor.MatMul(tensor.Transpose(xt), dy)
					accRows(acc.W[j], dwt, t*shard)
					dxParts[t] = tensor.MatMul(dy, tensor.Transpose(tensor.RowSlice(w, t*shard, (t+1)*shard)))
				}
				tensor.ColSumTo(acc.B[j], dy)
				out.parts[dp] = []*tensor.Mat{tensor.ConcatCols(dxParts...)}
			}
		}
		return out, nil
	case model.KindAttentionCore:
		arch := e.params.Arch
		dh := arch.Hidden / arch.Heads
		out := &acts{dp: set.DP, tp: set.TP, layout: model.Split, parts: make([][]*tensor.Mat, set.DP)}
		if set.TP == 1 {
			out.layout = model.Replicated
		}
		for dp := 0; dp < set.DP; dp++ {
			qkvParts := headParts(in, dp, set.TP)
			dyParts := ctxParts(d, dp, set.TP)
			dParts := make([]*tensor.Mat, len(qkvParts))
			for t := range qkvParts {
				dParts[t] = attnBackward(dyParts[t], qkvParts[t], arch.Seq, dh, arch.Causal)
			}
			out.parts[dp] = dParts
		}
		return out, nil
	case model.KindLayerNorm:
		out := &acts{dp: set.DP, tp: 1, layout: model.Replicated, parts: make([][]*tensor.Mat, set.DP)}
		gain := e.params.W[j]
		for dp := 0; dp < set.DP; dp++ {
			dy := replicaFull(d, dp)
			x := replicaFull(in, dp)
			_, cache := tensor.LayerNorm(x, gain, e.params.B[j])
			out.parts[dp] = []*tensor.Mat{tensor.LayerNormBackward(dy, cache, gain, acc.W[j], acc.B[j])}
		}
		return out, nil
	case model.KindElementwise:
		out := &acts{dp: d.dp, tp: 1, layout: model.Replicated, parts: make([][]*tensor.Mat, d.dp)}
		for dp := 0; dp < d.dp; dp++ {
			dy := replicaFull(d, dp)
			x := replicaFull(in, dp)
			out.parts[dp] = []*tensor.Mat{tensor.ReLUBackward(dy, x)}
		}
		return out, nil
	default:
		return nil, &UnsupportedOpError{Op: j, Kind: op.Kind}
	}
}

// headParts views replica dp's QKV activation as tp head-aligned
// column shards (width = total/tp, whole heads per shard).
func headParts(a *acts, dp, tp int) []*tensor.Mat {
	if a.layout == model.Split && a.tp == tp {
		return a.parts[dp]
	}
	full := replicaFull(a, dp)
	shard := full.Cols / tp
	out := make([]*tensor.Mat, tp)
	for t := 0; t < tp; t++ {
		out[t] = tensor.ColSlice(full, t*shard, (t+1)*shard)
	}
	return out
}

// ctxParts is headParts for the context-gradient side (same slicing).
func ctxParts(a *acts, dp, tp int) []*tensor.Mat {
	return headParts(a, dp, tp)
}

// splitCols views replica dp's gradient as tp column shards.
func splitCols(a *acts, dp, tp int) []*tensor.Mat {
	if a.layout == model.Split && a.tp == tp {
		return a.parts[dp]
	}
	full := replicaFull(a, dp)
	shard := full.Cols / tp
	out := make([]*tensor.Mat, tp)
	for t := 0; t < tp; t++ {
		out[t] = tensor.ColSlice(full, t*shard, (t+1)*shard)
	}
	return out
}

// accCols accumulates a column-shard gradient into the full matrix.
func accCols(dst, shard *tensor.Mat, colOff int) {
	for i := 0; i < shard.Rows; i++ {
		for j := 0; j < shard.Cols; j++ {
			dst.Data[i*dst.Cols+colOff+j] += shard.At(i, j)
		}
	}
}

func accColsBias(dst, dy *tensor.Mat, colOff int) {
	for i := 0; i < dy.Rows; i++ {
		for j := 0; j < dy.Cols; j++ {
			dst.Data[colOff+j] += dy.At(i, j)
		}
	}
}

// accRows accumulates a row-shard gradient into the full matrix.
func accRows(dst, shard *tensor.Mat, rowOff int) {
	copyOff := rowOff * dst.Cols
	for i := range shard.Data {
		dst.Data[copyOff+i] += shard.Data[i]
	}
}

// run executes the stage's training loop: per iteration, forward every
// microbatch (stashing), then backward every microbatch, then apply
// the accumulated update to this stage's weights.
func (e *stageExec) run(x, y *tensor.Mat, lr float64, iters, numMB int) ([]float64, error) {
	opIDs := make([]int, 0, e.st.NumOps())
	for j := e.st.Start; j < e.st.End; j++ {
		opIDs = append(opIDs, j)
	}
	prevDev, nextDev := -1, -1
	if e.si > 0 {
		prevDev = e.cfg.FirstDev(e.si - 1)
	}
	if e.si < e.cfg.NumStages()-1 {
		nextDev = e.cfg.FirstDev(e.si + 1)
	}
	last := nextDev < 0
	mbRows := e.cfg.MicroBatch * e.params.rowsPerSample()

	var losses []float64
	for it := 0; it < iters; it++ {
		// Planned fault: the owning stage dies at the top of iteration
		// `it`, before any traffic for it. Marking the stage's ranks dead
		// first makes every peer blocked on them fail fast through comm.
		if f := e.fault; f != nil && it == f.Iteration && e.ownsRank(f.Rank) {
			e.world.FailRange(e.firstDev, e.st.Devices)
			return losses, &DeviceLostError{
				Rank: f.Rank, Stage: e.si, Iteration: it, Step: e.baseStep + it,
			}
		}
		acc := newGrads(e.params, opIDs)
		stashes := make([]*stash, numMB)
		dTop := make([]*tensor.Mat, numMB)
		var lossSum float64
		for mb := 0; mb < numMB; mb++ {
			var in *tensor.Mat
			if prevDev < 0 {
				in = tensor.RowSlice(x, mb*mbRows, (mb+1)*mbRows)
			} else {
				var err error
				in, err = e.world.Recv(prevDev, e.firstDev, tag("fwd", it, mb))
				if err != nil {
					return losses, err
				}
			}
			s, err := e.forward(in, false)
			if err != nil {
				return losses, err
			}
			stashes[mb] = s
			if last {
				out := s.output.full()
				ymb := tensor.RowSlice(y, mb*mbRows, (mb+1)*mbRows)
				loss, d := tensor.MSE(out, ymb)
				lossSum += loss
				dTop[mb] = d
			} else {
				if err := e.world.Send(e.firstDev, nextDev, tag("fwd", it, mb), s.output.full()); err != nil {
					return losses, err
				}
			}
		}
		for mb := numMB - 1; mb >= 0; mb-- {
			var d *tensor.Mat
			if last {
				d = dTop[mb]
			} else {
				var err error
				d, err = e.world.Recv(nextDev, e.firstDev, tag("bwd", it, mb))
				if err != nil {
					return losses, err
				}
			}
			dIn, err := e.backward(stashes[mb], d, acc)
			if err != nil {
				return losses, err
			}
			if prevDev >= 0 {
				if err := e.world.Send(e.firstDev, prevDev, tag("bwd", it, mb), dIn); err != nil {
					return losses, err
				}
			}
		}
		applyUpdate(e.params, acc, lr, 1/float64(numMB), e.baseStep+it+1)
		if last {
			losses = append(losses, lossSum/float64(numMB))
		}
	}
	return losses, nil
}

func tag(kind string, it, mb int) string {
	return fmt.Sprintf("%s:%d:%d", kind, it, mb)
}
