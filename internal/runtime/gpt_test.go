package runtime

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"aceso/internal/config"
	"aceso/internal/core"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/tensor"
)

const (
	gptLayers = 2
	gptSeq    = 6
	gptHidden = 8
	gptHeads  = 4
	gptBatch  = 8
)

func buildTinyGPT(t testing.TB) (*model.Graph, Arch) {
	t.Helper()
	g, err := model.TinyGPT(gptLayers, gptSeq, gptHidden, gptHeads, gptBatch)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, Arch{Seq: gptSeq, Hidden: gptHidden, Heads: gptHeads}
}

func gptData(seed int64) (x, y *tensor.Mat) {
	rng := rand.New(rand.NewSource(seed))
	rows := gptBatch * gptSeq
	x = tensor.New(rows, gptHidden)
	y = tensor.New(rows, gptHidden)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	return x, y
}

// checkGPTEquivalence trains the transformer serially and under cfg.
func checkGPTEquivalence(t *testing.T, g *model.Graph, arch Arch, cfg *config.Config) {
	t.Helper()
	x, y := gptData(21)
	ref, err := InitParamsArch(g, arch, 7)
	if err != nil {
		t.Fatal(err)
	}
	par := ref.Clone()

	refLosses, err := Serial(g, ref, x, y, cfg.MicroBatch, lr, iters)
	if err != nil {
		t.Fatal(err)
	}
	parLosses, err := Parallel(g, cfg, par, x, y, lr, iters)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refLosses {
		if math.Abs(refLosses[i]-parLosses[i]) > tol {
			t.Errorf("iter %d: serial loss %.12f vs parallel %.12f", i, refLosses[i], parLosses[i])
		}
	}
	if d := ref.MaxDiff(par); d > tol {
		t.Errorf("final weights differ by %g", d)
	}
	if refLosses[len(refLosses)-1] >= refLosses[0] {
		t.Errorf("transformer loss did not decrease: %v", refLosses)
	}
}

// gptUniform builds a uniform config over the TinyGPT graph.
func gptUniform(t *testing.T, g *model.Graph, stages, devPerStage, tp, dp, mbs int) *config.Config {
	t.Helper()
	cfg, err := config.Balanced(g, stages*devPerStage, stages, mbs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j] = config.OpSetting{TP: tp, DP: dp, Dim: 0}
		}
	}
	if err := cfg.Validate(g, stages*devPerStage); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestGPTSingleDevice(t *testing.T) {
	g, arch := buildTinyGPT(t)
	checkGPTEquivalence(t, g, arch, gptUniform(t, g, 1, 1, 1, 1, 4))
}

func TestGPTDataParallel(t *testing.T) {
	g, arch := buildTinyGPT(t)
	checkGPTEquivalence(t, g, arch, gptUniform(t, g, 1, 4, 1, 4, 4))
}

func TestGPTTensorParallelHeads(t *testing.T) {
	// tp=2 and tp=4 split the 4 attention heads across ranks; QKV is
	// column-parallel head-major, the projection row-parallel.
	g, arch := buildTinyGPT(t)
	checkGPTEquivalence(t, g, arch, gptUniform(t, g, 1, 2, 2, 1, 4))
	checkGPTEquivalence(t, g, arch, gptUniform(t, g, 1, 4, 4, 1, 4))
}

func TestGPTPipeline(t *testing.T) {
	g, arch := buildTinyGPT(t)
	checkGPTEquivalence(t, g, arch, gptUniform(t, g, 2, 1, 1, 1, 2))
	checkGPTEquivalence(t, g, arch, gptUniform(t, g, 4, 1, 1, 1, 2))
}

func TestGPTHybridWithRecompute(t *testing.T) {
	g, arch := buildTinyGPT(t)
	cfg := gptUniform(t, g, 2, 4, 2, 2, 4)
	for j := range cfg.Stages[0].Ops {
		cfg.Stages[0].Ops[j].Recompute = true
	}
	checkGPTEquivalence(t, g, arch, cfg)
}

func TestGPTMegatronShape(t *testing.T) {
	// The canonical Megatron layout: 2 stages × (2tp × 2dp), every
	// mechanism at once.
	g, arch := buildTinyGPT(t)
	checkGPTEquivalence(t, g, arch, gptUniform(t, g, 2, 4, 2, 2, 4))
}

func TestGPTRejectsBadHeads(t *testing.T) {
	// tp=8 > 4 heads must be rejected, not mis-sharded.
	g, arch := buildTinyGPT(t)
	cfg, err := config.Balanced(g, 8, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := InitParamsArch(g, arch, 1)
	if err != nil {
		t.Fatal(err)
	}
	x, y := gptData(1)
	if _, err := Parallel(g, cfg, p, x, y, lr, 1); err == nil {
		t.Fatal("tp=8 over 4 heads accepted")
	}
}

func TestInitParamsArchShapes(t *testing.T) {
	g, arch := buildTinyGPT(t)
	p, err := InitParamsArch(g, arch, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Ops {
		op := &g.Ops[i]
		switch op.Kind {
		case model.KindMatMul:
			w := p.W[i]
			if w.Cols != int(op.ActElems) {
				t.Errorf("op %d (%s): W cols %d, want %d", i, op.Name, w.Cols, int(op.ActElems))
			}
			if w.Rows%gptHidden != 0 {
				t.Errorf("op %d (%s): W rows %d not multiple of hidden", i, op.Name, w.Rows)
			}
		case model.KindLayerNorm:
			if p.W[i].Cols != gptHidden {
				t.Errorf("op %d: LN width %d", i, p.W[i].Cols)
			}
		}
	}
	// Width chain errors surface.
	bad := model.Uniform(2, 1e9, 1e6, 8, 4)
	bad.Ops[1].Kind = model.KindAttentionCore // 8 not divisible by 3
	if _, err := InitParamsArch(bad, Arch{Seq: 2, Hidden: 8, Heads: 2}, 1); err == nil {
		t.Error("bad width chain accepted")
	}
}

// TestSearchedGPTConfigsAreSemanticPreserving closes the loop for
// transformers: the Aceso search plans parallelizations of the TinyGPT
// graph, and every runnable candidate must train identically to the
// serial reference.
func TestSearchedGPTConfigsAreSemanticPreserving(t *testing.T) {
	g, arch := buildTinyGPT(t)
	cl := hardware.DGX1V100(1).Restrict(4)
	res, err := core.Search(g, cl, core.Options{
		TimeBudget:  400 * time.Millisecond,
		StageCounts: []int{1, 2},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := InitParamsArch(g, arch, 1)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, cand := range res.TopK {
		cfg := cand.Config
		ok := true
		for i := range cfg.Stages {
			for j := cfg.Stages[i].Start; j < cfg.Stages[i].End; j++ {
				set := cfg.Stages[i].Setting(j)
				switch g.Ops[j].Kind {
				case model.KindMatMul:
					w := p.W[j]
					if w.Cols%set.TP != 0 || w.Rows%set.TP != 0 {
						ok = false
					}
				case model.KindAttentionCore:
					if arch.Heads%set.TP != 0 {
						ok = false
					}
				}
			}
		}
		if !ok {
			continue
		}
		checkGPTEquivalence(t, g, arch, cfg)
		checked++
	}
	if checked == 0 {
		t.Fatal("no searched transformer candidate was executable")
	}
	t.Logf("validated %d searched transformer configurations numerically", checked)
}

func TestCausalGPTEquivalence(t *testing.T) {
	// Decoder-style masking through every parallelism mode.
	g, arch := buildTinyGPT(t)
	arch.Causal = true
	checkGPTEquivalenceArch(t, g, arch, gptUniform(t, g, 1, 4, 4, 1, 4))
	checkGPTEquivalenceArch(t, g, arch, gptUniform(t, g, 2, 2, 1, 2, 4))
}

// checkGPTEquivalenceArch is checkGPTEquivalence with an explicit arch
// (e.g. causal variants).
func checkGPTEquivalenceArch(t *testing.T, g *model.Graph, arch Arch, cfg *config.Config) {
	t.Helper()
	x, y := gptData(33)
	ref, err := InitParamsArch(g, arch, 7)
	if err != nil {
		t.Fatal(err)
	}
	par := ref.Clone()
	refLosses, err := Serial(g, ref, x, y, cfg.MicroBatch, lr, iters)
	if err != nil {
		t.Fatal(err)
	}
	parLosses, err := Parallel(g, cfg, par, x, y, lr, iters)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refLosses {
		if math.Abs(refLosses[i]-parLosses[i]) > tol {
			t.Errorf("iter %d: serial %.12f vs parallel %.12f", i, refLosses[i], parLosses[i])
		}
	}
	if d := ref.MaxDiff(par); d > tol {
		t.Errorf("final weights differ by %g", d)
	}
}
