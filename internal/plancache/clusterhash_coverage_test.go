package plancache

import (
	"reflect"
	"testing"

	"aceso/internal/hardware"
)

// baseCluster returns a cluster with every hashed feature present:
// heterogeneous classes, a ragged tail, and an attached fault spec —
// so perturbing any field is visible in the key.
func baseCluster() hardware.Cluster {
	c := hardware.A100V100(2, 2)
	c.TailDevices = 3
	c.Faults = &hardware.FaultSpec{
		Devices: []hardware.DeviceFault{
			{Device: 1, FLOPSScale: 0.5, MemScale: 0.75},
			{Device: 9, Dead: true},
		},
		IntraBWScale:  0.9,
		InterBWScale:  0.8,
		IntraLatScale: 2,
		InterLatScale: 3,
	}
	return c
}

// TestClusterHashCoversEveryField walks the exported fields of
// hardware.Cluster (and of the nested DeviceClass, FaultSpec and
// DeviceFault types) by reflection and perturbs each one: the key must
// change every time, and a field with no registered perturbation fails
// the test by name. Adding a Cluster field therefore forces updating
// both ClusterHash and this table — stale bit-identical cache hits on
// a field the hash ignores become impossible.
func TestClusterHashCoversEveryField(t *testing.T) {
	clusterMuts := map[string]func(*hardware.Cluster){
		"Nodes":          func(c *hardware.Cluster) { c.Nodes++ },
		"DevicesPerNode": func(c *hardware.Cluster) { c.DevicesPerNode++ },
		"FP16FLOPS":      func(c *hardware.Cluster) { c.FP16FLOPS *= 2 },
		"FP32FLOPS":      func(c *hardware.Cluster) { c.FP32FLOPS *= 2 },
		"MaxUtil":        func(c *hardware.Cluster) { c.MaxUtil *= 0.5 },
		"MemoryBytes":    func(c *hardware.Cluster) { c.MemoryBytes *= 2 },
		"IntraBW":        func(c *hardware.Cluster) { c.IntraBW *= 2 },
		"InterBW":        func(c *hardware.Cluster) { c.InterBW *= 2 },
		"IntraLat":       func(c *hardware.Cluster) { c.IntraLat *= 2 },
		"InterLat":       func(c *hardware.Cluster) { c.InterLat *= 2 },
		"TailDevices":    func(c *hardware.Cluster) { c.TailDevices++ },
		"Classes":        func(c *hardware.Cluster) { c.Classes = c.Classes[:1] },
		"NodeClass":      func(c *hardware.Cluster) { c.NodeClass[0] = 1 },
		"Faults":         func(c *hardware.Cluster) { c.Faults = nil },
	}
	checkType(t, reflect.TypeOf(hardware.Cluster{}), clusterMuts)

	classMuts := map[string]func(*hardware.Cluster){
		"Name":        func(c *hardware.Cluster) { c.Classes[0].Name = "x" },
		"FP16FLOPS":   func(c *hardware.Cluster) { c.Classes[0].FP16FLOPS *= 0.5 },
		"FP32FLOPS":   func(c *hardware.Cluster) { c.Classes[0].FP32FLOPS *= 0.5 },
		"MaxUtil":     func(c *hardware.Cluster) { c.Classes[0].MaxUtil *= 0.5 },
		"MemoryBytes": func(c *hardware.Cluster) { c.Classes[0].MemoryBytes *= 0.5 },
		"IntraBW":     func(c *hardware.Cluster) { c.Classes[0].IntraBW *= 0.5 },
		"InterBW":     func(c *hardware.Cluster) { c.Classes[0].InterBW *= 0.5 },
		"IntraLat":    func(c *hardware.Cluster) { c.Classes[0].IntraLat *= 0.5 },
		"InterLat":    func(c *hardware.Cluster) { c.Classes[0].InterLat *= 0.5 },
		"Capacity":    func(c *hardware.Cluster) { c.Classes[0].Capacity = hardware.Spot },
		"HazardRate":  func(c *hardware.Cluster) { c.Classes[0].HazardRate = 0.5 },
		"NoticeSeconds": func(c *hardware.Cluster) {
			c.Classes[0].NoticeSeconds = 30
		},
	}
	checkType(t, reflect.TypeOf(hardware.DeviceClass{}), classMuts)

	faultMuts := map[string]func(*hardware.Cluster){
		"Devices":       func(c *hardware.Cluster) { c.Faults.Devices = c.Faults.Devices[:1] },
		"IntraBWScale":  func(c *hardware.Cluster) { c.Faults.IntraBWScale = 0.1 },
		"InterBWScale":  func(c *hardware.Cluster) { c.Faults.InterBWScale = 0.1 },
		"IntraLatScale": func(c *hardware.Cluster) { c.Faults.IntraLatScale = 9 },
		"InterLatScale": func(c *hardware.Cluster) { c.Faults.InterLatScale = 9 },
	}
	checkType(t, reflect.TypeOf(hardware.FaultSpec{}), faultMuts)

	deviceFaultMuts := map[string]func(*hardware.Cluster){
		"Device":     func(c *hardware.Cluster) { c.Faults.Devices[0].Device = 2 },
		"Dead":       func(c *hardware.Cluster) { c.Faults.Devices[0].Dead = true },
		"FLOPSScale": func(c *hardware.Cluster) { c.Faults.Devices[0].FLOPSScale = 0.25 },
		"MemScale":   func(c *hardware.Cluster) { c.Faults.Devices[0].MemScale = 0.25 },
	}
	checkType(t, reflect.TypeOf(hardware.DeviceFault{}), deviceFaultMuts)
}

// checkType asserts that every exported field of typ has a registered
// perturbation and that applying it changes the hash. The fault-spec
// mutators mutate the attached spec in place, so each run works on a
// freshly built base cluster.
func checkType(t *testing.T, typ reflect.Type, muts map[string]func(*hardware.Cluster)) {
	t.Helper()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		mut, ok := muts[f.Name]
		if !ok {
			t.Errorf("%s.%s is not covered: add it to ClusterHash and to this test's perturbation table",
				typ.Name(), f.Name)
			continue
		}
		base := baseCluster()
		before := ClusterHash(&base)
		mut(&base)
		if after := ClusterHash(&base); after == before {
			t.Errorf("perturbing %s.%s did not change ClusterHash — stale cache hits possible",
				typ.Name(), f.Name)
		}
	}
}
