package plancache

import (
	"encoding/json"
	"fmt"
	"testing"

	"aceso/internal/hardware"
	"aceso/internal/model"
)

func entry(g, c, o uint64) *Entry {
	return &Entry{
		Key:  Key{Graph: g, Cluster: c, Options: o},
		Plan: json.RawMessage(fmt.Sprintf(`{"g":%d,"c":%d,"o":%d}`, g, c, o)),
	}
}

func TestCacheExactHitAndMiss(t *testing.T) {
	c := New(8)
	if _, ok := c.Get(Key{1, 2, 3}); ok {
		t.Fatal("hit on empty cache")
	}
	e := entry(1, 2, 3)
	c.Put(e)
	got, ok := c.Get(Key{1, 2, 3})
	if !ok || string(got.Plan) != string(e.Plan) {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := c.Get(Key{1, 9, 3}); ok {
		t.Fatal("hit on different cluster hash")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Puts != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCacheWarmIndex(t *testing.T) {
	c := New(8)
	c.Put(entry(1, 100, 3))
	c.Put(entry(1, 200, 3)) // same graph+options, newer cluster

	// Exact miss on a third cluster, but warm donor available — the
	// most recently inserted one.
	if _, ok := c.Get(Key{1, 300, 3}); ok {
		t.Fatal("unexpected exact hit")
	}
	w, ok := c.Warm(1, 3)
	if !ok {
		t.Fatal("no warm donor")
	}
	if w.Key.Cluster != 200 {
		t.Fatalf("warm donor cluster = %d, want most recent 200", w.Key.Cluster)
	}
	// Different options: no donor.
	if _, ok := c.Warm(1, 4); ok {
		t.Fatal("warm hit across different options")
	}
	if s := c.Stats(); s.WarmHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCacheLRUEvictionClearsWarmPointer(t *testing.T) {
	c := New(2)
	c.Put(entry(1, 10, 0))
	c.Put(entry(2, 20, 0))
	c.Get(Key{1, 10, 0})    // bump 1 → LRU order: 1, 2
	c.Put(entry(3, 30, 0))  // evicts graph-2 entry
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if _, ok := c.Get(Key{2, 20, 0}); ok {
		t.Fatal("evicted entry still present")
	}
	if _, ok := c.Warm(2, 0); ok {
		t.Fatal("warm pointer survived eviction")
	}
	if _, ok := c.Get(Key{1, 10, 0}); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCacheReplaceSameKey(t *testing.T) {
	c := New(2)
	c.Put(entry(1, 10, 0))
	e2 := entry(1, 10, 0)
	e2.Plan = json.RawMessage(`{"v":2}`)
	c.Put(e2)
	if c.Len() != 1 {
		t.Fatalf("len = %d after same-key Put", c.Len())
	}
	got, _ := c.Get(Key{1, 10, 0})
	if string(got.Plan) != `{"v":2}` {
		t.Fatalf("plan = %s", got.Plan)
	}
}

func tinyGraph(t *testing.T) *model.Graph {
	t.Helper()
	g, err := model.TinyGPT(2, 128, 256, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphHashSensitivity(t *testing.T) {
	a := tinyGraph(t)
	b := tinyGraph(t)
	if GraphHash(a) != GraphHash(b) {
		t.Fatal("identical builders hash differently")
	}
	// Every cost field the perf model reads must perturb the hash.
	mut := []func(*model.Graph){
		func(g *model.Graph) { g.GlobalBatch++ },
		func(g *model.Graph) { g.SeqLen++ },
		func(g *model.Graph) { g.Name = "other" },
		func(g *model.Graph) { g.Ops[1].FwdFLOPs *= 1.0000001 },
		func(g *model.Graph) { g.Ops[1].Params++ },
		func(g *model.Graph) { g.Ops[1].ActElems++ },
		func(g *model.Graph) { g.Ops = g.Ops[:len(g.Ops)-1] },
	}
	for i, m := range mut {
		g := tinyGraph(t)
		m(g)
		if GraphHash(g) == GraphHash(a) {
			t.Errorf("mutation %d did not change graph hash", i)
		}
	}
}

func TestClusterHashCanonicalFaultOrder(t *testing.T) {
	base := hardware.DGX1V100(2)
	if ClusterHash(&base) != ClusterHash(&base) {
		t.Fatal("non-deterministic cluster hash")
	}
	d1, err := base.Degrade(hardware.FaultSpec{Devices: []hardware.DeviceFault{
		{Device: 3, Dead: true},
		{Device: 7, FLOPSScale: 0.5, MemScale: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := base.Degrade(hardware.FaultSpec{Devices: []hardware.DeviceFault{
		{Device: 7, FLOPSScale: 0.5, MemScale: 1},
		{Device: 3, Dead: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ClusterHash(&d1) != ClusterHash(&d2) {
		t.Fatal("fault listing order changed cluster hash")
	}
	if ClusterHash(&d1) == ClusterHash(&base) {
		t.Fatal("degraded cluster hashes equal to healthy")
	}
	small := base
	small.Nodes = 1
	if ClusterHash(&small) == ClusterHash(&base) {
		t.Fatal("node count not hashed")
	}
}
