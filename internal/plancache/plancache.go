// Package plancache caches completed plan searches for the acesod
// daemon. A plan is keyed by three independent content hashes — the
// model graph, the cluster (including faults), and the normalized
// search options — so an identical request returns the cached plan
// bytes without re-running the search, bit-identical to a fresh
// search (CFP's plan-generation-cost-avoidance framing, arXiv
// 2504.00598).
//
// The cache additionally keeps a *warm index* per (graph, options)
// pair: when an exact lookup misses but the same model was previously
// planned under a different cluster (the common shape after a device
// failure), the most recent such entry seeds the new search via
// core.Replan's warm-start path instead of starting cold.
//
// Concurrency contract: entries are immutable after Put. Callers must
// freeze the stored config's hash memos (config.Config.Hash) before
// inserting so concurrent readers never race on lazy memoization.
package plancache

import (
	"container/list"
	"encoding/json"
	"math"
	"sort"
	"sync"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
)

// Key identifies a plan request by content, not by name: two requests
// that build the same graph, cluster and options hash to the same Key
// regardless of how they were spelled.
type Key struct {
	Graph   uint64
	Cluster uint64
	Options uint64
}

// warmKey indexes entries that can warm-start each other: same model
// and search options, any cluster.
type warmKey struct {
	Graph   uint64
	Options uint64
}

// Entry is one cached plan. Plan holds the marshaled response body
// exactly as first produced, so cache hits are bit-identical to the
// original miss. Config is the winning configuration (hash-frozen,
// read-only) retained for warm-starting related searches.
type Entry struct {
	Key      Key
	Plan     json.RawMessage
	Config   *config.Config
	Score    float64
	Explored int
}

// Stats counts cache outcomes since construction.
type Stats struct {
	Hits      int64 `json:"hits"`
	WarmHits  int64 `json:"warm_hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
}

// Cache is a bounded LRU over Entries with the warm index layered on
// top. All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *Entry
	entries map[Key]*list.Element
	warm    map[warmKey]*list.Element
	stats   Stats
}

// New returns a cache bounded to capacity entries (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[Key]*list.Element),
		warm:    make(map[warmKey]*list.Element),
	}
}

// Get returns the entry for an exact key match, bumping its recency.
func (c *Cache) Get(k Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*Entry), true
}

// Warm returns the most recently inserted entry for the same (graph,
// options) under any cluster — the seed for a warm-started search
// after an exact miss. It does not bump recency (the warm donor is
// not the requested plan) and counts a warm hit only when found.
func (c *Cache) Warm(graph, options uint64) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.warm[warmKey{Graph: graph, Options: options}]
	if !ok {
		return nil, false
	}
	c.stats.WarmHits++
	return el.Value.(*Entry), true
}

// Put inserts or replaces the entry for e.Key, evicting the least
// recently used entry if the cache is over capacity.
func (c *Cache) Put(e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Puts++
	wk := warmKey{Graph: e.Key.Graph, Options: e.Key.Options}
	if el, ok := c.entries[e.Key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		c.warm[wk] = el
		return
	}
	el := c.ll.PushFront(e)
	c.entries[e.Key] = el
	c.warm[wk] = el
	if c.ll.Len() > c.cap {
		c.evictOldest()
	}
}

// evictOldest removes the LRU tail. Caller holds c.mu.
func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	ev := el.Value.(*Entry)
	c.ll.Remove(el)
	delete(c.entries, ev.Key)
	wk := warmKey{Graph: ev.Key.Graph, Options: ev.Key.Options}
	if c.warm[wk] == el {
		delete(c.warm, wk)
	}
	c.stats.Evictions++
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ---------------------------------------------------------------------------
// Content hashing
// ---------------------------------------------------------------------------

// Hasher folds typed values into a 64-bit FNV-1a state. Field *order*
// is the schema: hash the same fields in the same order to get
// comparable keys. Strings are length-prefixed so adjacent fields
// cannot alias.
type Hasher struct{ h uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewHasher returns a Hasher in the FNV-1a initial state.
func NewHasher() *Hasher { return &Hasher{h: fnvOffset} }

func (h *Hasher) byte(b byte) {
	h.h ^= uint64(b)
	h.h *= fnvPrime
}

// Int folds a signed integer.
func (h *Hasher) Int(v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h.byte(byte(u >> (8 * i)))
	}
}

// Float folds a float64 by bit pattern (so -0 and NaN payloads are
// distinguished exactly as stored).
func (h *Hasher) Float(v float64) {
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		h.byte(byte(u >> (8 * i)))
	}
}

// Bool folds a boolean.
func (h *Hasher) Bool(v bool) {
	if v {
		h.byte(1)
	} else {
		h.byte(0)
	}
}

// Str folds a length-prefixed string.
func (h *Hasher) Str(s string) {
	h.Int(int64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

// Sum returns the current hash state.
func (h *Hasher) Sum() uint64 { return h.h }

// GraphHash hashes every field of the graph that the search or the
// performance model reads: identity, precision, batch geometry, and
// all per-op analytic costs including the partition-dimension table.
func GraphHash(g *model.Graph) uint64 {
	h := NewHasher()
	h.Str(g.Name)
	h.Int(int64(g.Precision))
	h.Int(int64(g.GlobalBatch))
	h.Int(int64(g.SeqLen))
	h.Int(int64(len(g.Ops)))
	for i := range g.Ops {
		o := &g.Ops[i]
		h.Int(int64(o.ID))
		h.Str(o.Name)
		h.Int(int64(o.Kind))
		h.Int(int64(o.Layer))
		h.Float(o.FwdFLOPs)
		h.Float(o.BwdFLOPsFactor)
		h.Float(o.Params)
		h.Float(o.ActElems)
		h.Float(o.WorkElems)
		h.Int(int64(len(o.Dims)))
		for _, d := range o.Dims {
			h.Str(d.Name)
			h.Int(int64(d.In))
			h.Int(int64(d.Out))
			h.Bool(d.AllReduceOut)
		}
	}
	return h.Sum()
}

// ClusterHash hashes the cluster's parametric description plus any
// attached fault spec. Degrade preserves the caller's device-fault
// order, so the hash sorts a copy by device rank first — two clusters
// with the same faults listed in different orders hash equal.
func ClusterHash(c *hardware.Cluster) uint64 {
	h := NewHasher()
	h.Int(int64(c.Nodes))
	h.Int(int64(c.DevicesPerNode))
	h.Float(c.FP16FLOPS)
	h.Float(c.FP32FLOPS)
	h.Float(c.MaxUtil)
	h.Float(c.MemoryBytes)
	h.Float(c.IntraBW)
	h.Float(c.InterBW)
	h.Float(c.IntraLat)
	h.Float(c.InterLat)
	h.Int(int64(c.TailDevices))
	// Device classes: every class field and the per-node layout feed
	// the key — two fleets with equal envelopes but different class
	// mixes must never share a cached plan.
	h.Int(int64(len(c.Classes)))
	for i := range c.Classes {
		d := &c.Classes[i]
		h.Str(d.Name)
		h.Float(d.FP16FLOPS)
		h.Float(d.FP32FLOPS)
		h.Float(d.MaxUtil)
		h.Float(d.MemoryBytes)
		h.Float(d.IntraBW)
		h.Float(d.InterBW)
		h.Float(d.IntraLat)
		h.Float(d.InterLat)
		h.Int(int64(d.Capacity))
		h.Float(d.HazardRate)
		h.Float(d.NoticeSeconds)
	}
	h.Int(int64(len(c.NodeClass)))
	for _, k := range c.NodeClass {
		h.Int(int64(k))
	}
	if f := c.Faults; f != nil {
		h.Bool(true)
		devs := make([]hardware.DeviceFault, len(f.Devices))
		copy(devs, f.Devices)
		sort.Slice(devs, func(a, b int) bool { return devs[a].Device < devs[b].Device })
		h.Int(int64(len(devs)))
		for _, d := range devs {
			h.Int(int64(d.Device))
			h.Bool(d.Dead)
			h.Float(d.FLOPSScale)
			h.Float(d.MemScale)
		}
		h.Float(f.IntraBWScale)
		h.Float(f.InterBWScale)
		h.Float(f.IntraLatScale)
		h.Float(f.InterLatScale)
	} else {
		h.Bool(false)
	}
	return h.Sum()
}
