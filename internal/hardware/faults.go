// Degraded-cluster modeling: a FaultSpec describes how a cluster
// deviates from its healthy parametric description — dead devices,
// derated device throughput or memory (stragglers, thermal throttling,
// partially-failed HBM), and derated or cut links. The search consumes
// a degraded cluster exactly like a healthy one, which is what lets it
// plan *around* faults instead of crashing into them (TensorOpt's
// resource-availability framing; PipeDream's placement brittleness
// under heterogeneous devices).
//
// Contract: a FaultSpec is applied with Cluster.Degrade, which
// validates the spec, removes dead devices from the device count and
// attaches a normalized, read-only copy to the returned Cluster. All
// per-device accessors (RangeFLOPSScale, RangeMemory, NodeOf, …) take
// *logical* ranks — survivors renumbered contiguously — and map to the
// physical grid internally. Prefer Degrade after Restrict; Restrict
// after Degrade is also safe — it refits the spec to the new shape,
// dropping entries whose physical rank no longer exists.
package hardware

import (
	"fmt"
	"math"
	"sort"
)

// DeviceFault derates or removes one device of the healthy cluster.
type DeviceFault struct {
	// Device is the global device rank in the healthy (pre-Degrade)
	// numbering.
	Device int
	// Dead removes the device entirely; the scales are ignored.
	Dead bool
	// FLOPSScale in (0, 1] derates the device's peak throughput
	// (1 = healthy). Synchronous SPMD groups run at the pace of their
	// slowest member, so a derate drags down every device that shares a
	// stage with this one.
	FLOPSScale float64
	// MemScale in (0, 1] derates the device's usable memory.
	MemScale float64
}

// FaultSpec describes degraded hardware. The zero value is a healthy
// cluster. Link scales of 0 mean "unchanged"; bandwidth scales must
// otherwise lie in (0, 1] and latency scales must be ≥ 1.
type FaultSpec struct {
	Devices []DeviceFault

	// Cluster-wide link derates (a flaky NIC, a congested or
	// partially-cut fabric).
	IntraBWScale  float64
	InterBWScale  float64
	IntraLatScale float64
	InterLatScale float64

	// dead holds the sorted physical ranks removed by Degrade.
	dead []int
	// derated maps surviving physical rank → its fault entry.
	derated map[int]DeviceFault
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// scaleOK reports whether v is a valid (0, 1] derating scale.
func scaleOK(v float64) bool { return finite(v) && v > 0 && v <= 1 }

// latScaleOK reports whether v is a valid latency scale (0 = unchanged,
// else ≥ 1: faults never make links faster).
func latScaleOK(v float64) bool { return v == 0 || (finite(v) && v >= 1) }

// bwScaleOK reports whether v is a valid bandwidth scale (0 = unchanged).
func bwScaleOK(v float64) bool { return v == 0 || scaleOK(v) }

// Validate checks the spec against the healthy cluster c. Every error
// names the offending physical device index (or the specific link
// scale), so a spec rejected deep inside Cluster.Validate still points
// at the bad entry.
func (f *FaultSpec) Validate(c Cluster) error {
	total := c.physTotal()
	seen := make(map[int]bool, len(f.Devices))
	deadCount := 0
	for i := range f.Devices {
		d := &f.Devices[i]
		if d.Device < 0 || d.Device >= total {
			return fmt.Errorf("hardware: fault device %d out of range [0, %d)", d.Device, total)
		}
		if seen[d.Device] {
			return fmt.Errorf("hardware: duplicate fault for device %d", d.Device)
		}
		seen[d.Device] = true
		if d.Dead {
			deadCount++
			continue
		}
		if !scaleOK(d.FLOPSScale) {
			return fmt.Errorf("hardware: device %d FLOPSScale = %v, want (0, 1]", d.Device, d.FLOPSScale)
		}
		if !scaleOK(d.MemScale) {
			return fmt.Errorf("hardware: device %d MemScale = %v, want (0, 1]", d.Device, d.MemScale)
		}
	}
	if deadCount >= total {
		return fmt.Errorf("hardware: all %d devices dead", total)
	}
	if !bwScaleOK(f.IntraBWScale) {
		return fmt.Errorf("hardware: IntraBWScale = %v, want 0 (unchanged) or (0, 1]", f.IntraBWScale)
	}
	if !bwScaleOK(f.InterBWScale) {
		return fmt.Errorf("hardware: InterBWScale = %v, want 0 (unchanged) or (0, 1]", f.InterBWScale)
	}
	if !latScaleOK(f.IntraLatScale) {
		return fmt.Errorf("hardware: IntraLatScale = %v, want 0 (unchanged) or ≥ 1", f.IntraLatScale)
	}
	if !latScaleOK(f.InterLatScale) {
		return fmt.Errorf("hardware: InterLatScale = %v, want 0 (unchanged) or ≥ 1", f.InterLatScale)
	}
	return nil
}

// refitFaults rebuilds a normalized fault spec for a cluster reshaped
// to total physical devices: entries for ranks ≥ total are dropped
// (those devices no longer exist), in-range entries and link derates
// are kept. The result is freshly normalized — never the old pointer —
// so Restrict can't leak a spec whose private index structures were
// built for the old grid. Returns nil when nothing survives.
func refitFaults(f *FaultSpec, total int) *FaultSpec {
	if f == nil {
		return nil
	}
	norm := FaultSpec{
		IntraBWScale:  f.IntraBWScale,
		InterBWScale:  f.InterBWScale,
		IntraLatScale: f.IntraLatScale,
		InterLatScale: f.InterLatScale,
		derated:       make(map[int]DeviceFault),
	}
	for _, d := range f.Devices {
		if d.Device < 0 || d.Device >= total {
			continue
		}
		norm.Devices = append(norm.Devices, d)
		if d.Dead {
			norm.dead = append(norm.dead, d.Device)
		} else if d.FLOPSScale < 1 || d.MemScale < 1 {
			norm.derated[d.Device] = d
		}
	}
	sort.Ints(norm.dead)
	if len(norm.Devices) == 0 && norm.IntraBWScale == 0 && norm.InterBWScale == 0 &&
		norm.IntraLatScale == 0 && norm.InterLatScale == 0 {
		return nil
	}
	return &norm
}

// Degrade applies a fault spec to the cluster: dead devices are removed
// from the logical device count, deratings and link scales attach to
// the returned copy. The input cluster must be healthy (not already
// degraded) and the spec must validate against it.
func (c *Cluster) Degrade(f FaultSpec) (Cluster, error) {
	if c.Faults != nil {
		return *c, fmt.Errorf("hardware: cluster already degraded")
	}
	if err := c.Validate(); err != nil {
		return *c, err
	}
	if err := f.Validate(*c); err != nil {
		return *c, err
	}
	norm := FaultSpec{
		IntraBWScale:  f.IntraBWScale,
		InterBWScale:  f.InterBWScale,
		IntraLatScale: f.IntraLatScale,
		InterLatScale: f.InterLatScale,
		derated:       make(map[int]DeviceFault),
	}
	for _, d := range f.Devices {
		norm.Devices = append(norm.Devices, d)
		if d.Dead {
			norm.dead = append(norm.dead, d.Device)
		} else if d.FLOPSScale < 1 || d.MemScale < 1 {
			norm.derated[d.Device] = d
		}
	}
	sort.Ints(norm.dead)
	out := *c
	out.Faults = &norm
	return out, nil
}

// Restore returns a copy of the cluster with the fault on physical
// device phys cleared — the inverse of one Degrade entry. A restored
// dead device rejoins the logical numbering (logical-rank
// re-expansion: survivors above it shift up by one); a derated device
// returns to full throughput and memory. Cluster-wide link derates are
// untouched — clear those with RestoreLinks. When the last device
// entry is removed and no link derate remains, the returned cluster is
// healthy (Faults == nil), bitwise equal to the pre-Degrade value.
func (c *Cluster) Restore(phys int) (Cluster, error) {
	if c.Faults == nil {
		return *c, fmt.Errorf("hardware: restore device %d: cluster is not degraded", phys)
	}
	remaining := make([]DeviceFault, 0, len(c.Faults.Devices))
	found := false
	for _, d := range c.Faults.Devices {
		if d.Device == phys {
			found = true
			continue
		}
		remaining = append(remaining, d)
	}
	if !found {
		return *c, fmt.Errorf("hardware: restore device %d: no fault recorded for it", phys)
	}
	return c.reapply(FaultSpec{
		Devices:       remaining,
		IntraBWScale:  c.Faults.IntraBWScale,
		InterBWScale:  c.Faults.InterBWScale,
		IntraLatScale: c.Faults.IntraLatScale,
		InterLatScale: c.Faults.InterLatScale,
	})
}

// RestoreLinks returns a copy of the cluster with the cluster-wide
// link derates cleared (the fabric healed); per-device faults are
// kept. Calling it on a cluster without link derates — including a
// healthy one — is a no-op, so a "link restored" event needs no
// state check at the call site.
func (c *Cluster) RestoreLinks() (Cluster, error) {
	if c.Faults == nil {
		return *c, nil
	}
	return c.reapply(FaultSpec{Devices: append([]DeviceFault(nil), c.Faults.Devices...)})
}

// reapply degrades a healthy copy of c with spec, or returns the
// healthy copy itself when spec is empty — the shared tail of the
// Restore paths, which guarantees a fully-restored cluster compares
// bitwise equal to the original.
func (c *Cluster) reapply(spec FaultSpec) (Cluster, error) {
	healthy := *c
	healthy.Faults = nil
	if len(spec.Devices) == 0 && spec.IntraBWScale == 0 && spec.InterBWScale == 0 &&
		spec.IntraLatScale == 0 && spec.InterLatScale == 0 {
		return healthy, nil
	}
	return healthy.Degrade(spec)
}

// DeadDevices returns how many devices the fault spec removed.
func (c *Cluster) DeadDevices() int {
	if c.Faults == nil {
		return 0
	}
	return len(c.Faults.dead)
}

// PhysOf maps a logical device rank (survivors renumbered
// contiguously) to its physical rank on the healthy grid.
func (c *Cluster) PhysOf(logical int) int {
	if c.Faults == nil || len(c.Faults.dead) == 0 {
		return logical
	}
	phys := logical
	for _, d := range c.Faults.dead {
		if d <= phys {
			phys++
		}
	}
	return phys
}

// deviceFault returns the fault entry for a logical rank, or nil.
func (c *Cluster) deviceFault(logical int) *DeviceFault {
	if c.Faults == nil || len(c.Faults.derated) == 0 {
		return nil
	}
	if d, ok := c.Faults.derated[c.PhysOf(logical)]; ok {
		return &d
	}
	return nil
}

// clampScale guards hand-constructed fault entries that bypassed
// Validate: a non-positive or non-finite scale would turn derated
// times into Inf/NaN and poison every score downstream.
func clampScale(v float64) float64 {
	if !finite(v) || v <= 0 {
		return 1e-6
	}
	if v > 1 {
		return 1
	}
	return v
}

// DeviceFLOPSScale returns the throughput derate of one logical rank
// relative to the scalar envelope at precision p (1 = healthy,
// best-class). Class derates (a V100 in an A100-envelope cluster) and
// fault derates (a throttled device) compose by multiplication: a
// throttled slow device is slower than either effect alone.
func (c *Cluster) DeviceFLOPSScale(logical int, p Precision) float64 {
	s := c.classComputeScale(logical, p)
	if d := c.deviceFault(logical); d != nil {
		s *= clampScale(d.FLOPSScale)
	}
	return s
}

// DeviceMemory returns the usable memory of one logical rank: its
// class capacity derated by any memory fault.
func (c *Cluster) DeviceMemory(logical int) float64 {
	mem := c.classMemory(logical)
	if d := c.deviceFault(logical); d != nil {
		mem *= clampScale(d.MemScale)
	}
	return mem
}

// RangeFLOPSScale returns the minimum throughput derate over the
// logical range [first, first+size) at precision p: a synchronous
// group runs at its slowest member's pace, whether that member is slow
// by class or by fault.
func (c *Cluster) RangeFLOPSScale(first, size int, p Precision) float64 {
	if (c.Faults == nil || len(c.Faults.derated) == 0) && len(c.Classes) == 0 {
		return 1
	}
	min := 1.0
	for d := first; d < first+size; d++ {
		if s := c.DeviceFLOPSScale(d, p); s < min {
			min = s
		}
	}
	return min
}

// RangeMemory returns the minimum usable memory over the logical range
// [first, first+size): symmetric stages are sized for their most
// constrained device, by class capacity and fault derate alike.
func (c *Cluster) RangeMemory(first, size int) float64 {
	if (c.Faults == nil || len(c.Faults.derated) == 0) && len(c.Classes) == 0 {
		return c.MemoryBytes
	}
	min := math.Inf(1)
	for d := first; d < first+size; d++ {
		if m := c.DeviceMemory(d); m < min {
			min = m
		}
	}
	if !finite(min) {
		return c.MemoryBytes
	}
	return min
}

// MinDeviceMemory returns the smallest usable per-device memory in the
// cluster (the normalizer for infeasibility penalties).
func (c *Cluster) MinDeviceMemory() float64 {
	return c.RangeMemory(0, c.TotalDevices())
}

// EffIntraBW returns the intra-node bandwidth after link faults.
func (c *Cluster) EffIntraBW() float64 {
	if c.Faults == nil || c.Faults.IntraBWScale == 0 {
		return c.IntraBW
	}
	return c.IntraBW * clampScale(c.Faults.IntraBWScale)
}

// EffInterBW returns the inter-node bandwidth after link faults.
func (c *Cluster) EffInterBW() float64 {
	if c.Faults == nil || c.Faults.InterBWScale == 0 {
		return c.InterBW
	}
	return c.InterBW * clampScale(c.Faults.InterBWScale)
}

// EffIntraLat returns the intra-node latency after link faults.
func (c *Cluster) EffIntraLat() float64 {
	if c.Faults == nil || c.Faults.IntraLatScale == 0 {
		return c.IntraLat
	}
	return c.IntraLat * c.Faults.IntraLatScale
}

// EffInterLat returns the inter-node latency after link faults.
func (c *Cluster) EffInterLat() float64 {
	if c.Faults == nil || c.Faults.InterLatScale == 0 {
		return c.InterLat
	}
	return c.InterLat * c.Faults.InterLatScale
}
