package hardware

import (
	"strings"
	"testing"
)

// TestRestrictExactNonMultiples pins the "exactly n devices" contract
// on non-multiple device counts: Restrict(12) on DGX-1 used to round
// up to 2 full nodes (16 usable devices); the ragged last node makes
// it exactly 12.
func TestRestrictExactNonMultiples(t *testing.T) {
	for _, n := range []int{12, 20, 33} {
		c := DGX1V100((n + 7) / 8).Restrict(n)
		if got := c.TotalDevices(); got != n {
			t.Errorf("Restrict(%d).TotalDevices() = %d, want exactly %d", n, got, n)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("Restrict(%d).Validate() = %v", n, err)
		}
		wantNodes := (n + 7) / 8
		if c.Nodes != wantNodes || c.TailDevices != n%8 {
			t.Errorf("Restrict(%d) = %d nodes tail %d, want %d nodes tail %d",
				n, c.Nodes, c.TailDevices, wantNodes, n%8)
		}
		// The tail ranks still live on the last node.
		if got := c.NodeOf(n - 1); got != wantNodes-1 {
			t.Errorf("Restrict(%d).NodeOf(%d) = %d, want %d", n, n-1, got, wantNodes-1)
		}
	}
}

// TestRestrictRefitsFaults pins the Restrict/Degrade interaction:
// before the fix, Restrict copied the Faults pointer unchanged, so a
// spec derating device 12 survived a shrink to 8 devices and the copy
// failed Validate (fault device 12 out of range [0, 8)).
func TestRestrictRefitsFaults(t *testing.T) {
	base := DGX1V100(2)
	deg, err := base.Degrade(FaultSpec{
		Devices: []DeviceFault{
			{Device: 2, FLOPSScale: 0.5, MemScale: 1},
			{Device: 12, Dead: true},
		},
		InterBWScale: 0.5,
	})
	if err != nil {
		t.Fatalf("Degrade: %v", err)
	}
	small := deg.Restrict(8)
	if err := small.Validate(); err != nil {
		t.Fatalf("Restrict(8) after Degrade: Validate = %v (stale out-of-range fault survived)", err)
	}
	if got := small.TotalDevices(); got != 8 {
		t.Errorf("Restrict(8).TotalDevices() = %d, want 8 (dead device 12 no longer exists)", got)
	}
	// The in-range derate and the link derate must survive the refit.
	if got := small.DeviceFLOPSScale(2, FP16); got != 0.5 {
		t.Errorf("DeviceFLOPSScale(2) = %v, want 0.5 after refit", got)
	}
	if got := small.EffInterBW(); got != small.InterBW*0.5 {
		t.Errorf("EffInterBW() = %v, want link derate preserved", got)
	}
	if small.Faults == deg.Faults {
		t.Error("Restrict shared the old FaultSpec pointer instead of refitting a copy")
	}

	// A refit that leaves nothing behind yields a healthy cluster.
	base2 := DGX1V100(2)
	onlyFar, err := base2.Degrade(FaultSpec{
		Devices: []DeviceFault{{Device: 12, Dead: true}},
	})
	if err != nil {
		t.Fatalf("Degrade: %v", err)
	}
	if got := onlyFar.Restrict(8); got.Faults != nil {
		t.Errorf("Restrict(8) kept Faults = %+v, want nil (every entry out of range)", got.Faults)
	}
}

// TestValidateNamesOffendingDevice pins satellite 3: every derate path
// (dead, FLOPS, memory, link) must surface an error that names the
// offending physical device index or link scale, even when the spec is
// attached to a cluster and rejected via Cluster.Validate.
func TestValidateNamesOffendingDevice(t *testing.T) {
	base := DGX1V100(1)
	cases := []struct {
		name string
		spec FaultSpec
		want []string
	}{
		{"dead out of range", FaultSpec{Devices: []DeviceFault{{Device: 11, Dead: true}}},
			[]string{"device 11", "out of range [0, 8)"}},
		{"flops scale", FaultSpec{Devices: []DeviceFault{{Device: 3, FLOPSScale: -1, MemScale: 1}}},
			[]string{"device 3", "FLOPSScale"}},
		{"mem scale", FaultSpec{Devices: []DeviceFault{{Device: 5, FLOPSScale: 1, MemScale: 2}}},
			[]string{"device 5", "MemScale"}},
		{"intra bw", FaultSpec{IntraBWScale: 7}, []string{"IntraBWScale = 7"}},
		{"inter lat", FaultSpec{InterLatScale: 0.2}, []string{"InterLatScale = 0.2"}},
	}
	for _, tc := range cases {
		c := base
		spec := tc.spec
		c.Faults = &spec
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
			continue
		}
		// Cluster.Validate must add the cluster-shape context and keep
		// the device-naming detail of FaultSpec.Validate.
		if !strings.Contains(err.Error(), "invalid fault spec for 8-device cluster") {
			t.Errorf("%s: error %q lost the cluster context", tc.name, err)
		}
		for _, want := range tc.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not name %q", tc.name, err, want)
			}
		}
	}
}

func TestMixedConstructorEnvelope(t *testing.T) {
	c := A100V100(2, 2)
	if err := c.Validate(); err != nil {
		t.Fatalf("A100V100(2,2).Validate() = %v", err)
	}
	if got := c.TotalDevices(); got != 32 {
		t.Errorf("TotalDevices() = %d, want 32", got)
	}
	// Envelope scalars take the per-field max across classes.
	if c.FP16FLOPS != 312e12 || c.MemoryBytes != 80*(1<<30) || c.MaxUtil != 0.55 {
		t.Errorf("envelope = (%v FLOPS, %v B, util %v), want per-field max", c.FP16FLOPS, c.MemoryBytes, c.MaxUtil)
	}
	// A100 nodes first: device 0 is class 0, device 31 class 1.
	if c.ClassOf(0).Name != "a100" || c.ClassOf(31).Name != "v100" {
		t.Errorf("ClassOf = %q/%q, want a100/v100", c.ClassOf(0).Name, c.ClassOf(31).Name)
	}
}

func TestClassAwareAccessors(t *testing.T) {
	c := A100V100(1, 1) // devices 0-7 A100, 8-15 V100
	a, v := A100Class(), V100Class()
	ref16 := c.FP16FLOPS * c.MaxUtil

	wantA := a.FP16FLOPS * a.MaxUtil / ref16
	if got := c.DeviceFLOPSScale(0, FP16); got != wantA {
		t.Errorf("DeviceFLOPSScale(0, fp16) = %v, want %v", got, wantA)
	}
	wantV := v.FP16FLOPS * v.MaxUtil / ref16
	if got := c.DeviceFLOPSScale(8, FP16); got != wantV {
		t.Errorf("DeviceFLOPSScale(8, fp16) = %v, want %v", got, wantV)
	}
	if wantV >= wantA {
		t.Fatalf("test premise broken: V100 scale %v should be below A100 scale %v", wantV, wantA)
	}
	// A range spanning both classes runs at the slowest member's pace.
	if got := c.RangeFLOPSScale(0, 16, FP16); got != wantV {
		t.Errorf("RangeFLOPSScale(0,16) = %v, want slowest-class %v", got, wantV)
	}
	if got := c.RangeFLOPSScale(0, 8, FP16); got != wantA {
		t.Errorf("RangeFLOPSScale(0,8) = %v, want A100-only %v", got, wantA)
	}
	// Memory floors likewise.
	if got := c.RangeMemory(0, 8); got != a.MemoryBytes {
		t.Errorf("RangeMemory(0,8) = %v, want %v", got, a.MemoryBytes)
	}
	if got := c.RangeMemory(0, 16); got != v.MemoryBytes {
		t.Errorf("RangeMemory(0,16) = %v, want %v", got, v.MemoryBytes)
	}
	if got := c.MinDeviceMemory(); got != v.MemoryBytes {
		t.Errorf("MinDeviceMemory() = %v, want %v", got, v.MemoryBytes)
	}
	// Precision matters: fp32 scales differ from fp16 scales.
	want32 := v.FP32FLOPS * v.MaxUtil / (c.FP32FLOPS * c.MaxUtil)
	if got := c.DeviceFLOPSScale(8, FP32); got != want32 {
		t.Errorf("DeviceFLOPSScale(8, fp32) = %v, want %v", got, want32)
	}
}

func TestClassAndFaultDeratesCompose(t *testing.T) {
	mixed := A100V100(1, 1)
	deg, err := mixed.Degrade(FaultSpec{
		Devices: []DeviceFault{{Device: 8, FLOPSScale: 0.5, MemScale: 0.5}},
	})
	if err != nil {
		t.Fatalf("Degrade: %v", err)
	}
	v := V100Class()
	wantF := (v.FP16FLOPS * v.MaxUtil / (deg.FP16FLOPS * deg.MaxUtil)) * 0.5
	if got := deg.DeviceFLOPSScale(8, FP16); got != wantF {
		t.Errorf("class×fault FLOPS scale = %v, want %v", got, wantF)
	}
	if got := deg.DeviceMemory(8); got != v.MemoryBytes*0.5 {
		t.Errorf("class×fault memory = %v, want %v", got, v.MemoryBytes*0.5)
	}
	// The healthy A100 half is untouched.
	if got := deg.DeviceFLOPSScale(0, FP16); got != A100Class().FP16FLOPS*A100Class().MaxUtil/(deg.FP16FLOPS*deg.MaxUtil) {
		t.Errorf("healthy A100 scale = %v disturbed by the V100 fault", got)
	}
}

func TestValidateRejectsBadClassLayouts(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Cluster)
		want string
	}{
		{"nodeclass without classes", func(c *Cluster) { c.Classes = nil }, "without device classes"},
		{"nodeclass length", func(c *Cluster) { c.NodeClass = []int{0} }, "NodeClass has 1 entries for 2 nodes"},
		{"class index out of range", func(c *Cluster) { c.NodeClass = []int{0, 5} }, "node 1 has class 5"},
		{"zero flops", func(c *Cluster) { c.Classes[1].FP16FLOPS = 0 }, "non-positive or non-finite FLOPS"},
		{"bad util", func(c *Cluster) { c.Classes[0].MaxUtil = 2 }, "MaxUtil"},
		{"exceeds envelope", func(c *Cluster) { c.Classes[0].FP16FLOPS = 1e15 }, "exceeds the cluster throughput envelope"},
		{"exceeds memory envelope", func(c *Cluster) { c.Classes[1].MemoryBytes = 2 * c.MemoryBytes }, "exceeds the cluster envelope"},
		{"bad tail", func(c *Cluster) { c.TailDevices = 8 }, "TailDevices"},
	}
	for _, tc := range cases {
		c := A100V100(1, 1)
		tc.mut(&c)
		err := c.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// TestRestrictPreservesClassLayout: shrinking a mixed cluster keeps
// the surviving nodes' classes; growing repeats the last class.
func TestRestrictPreservesClassLayout(t *testing.T) {
	c := A100V100(1, 1)
	small := c.Restrict(8)
	if err := small.Validate(); err != nil {
		t.Fatalf("Restrict(8): %v", err)
	}
	if small.ClassOf(7).Name != "a100" {
		t.Errorf("Restrict(8) lost the A100 node class")
	}
	ragged := c.Restrict(12)
	if err := ragged.Validate(); err != nil {
		t.Fatalf("Restrict(12): %v", err)
	}
	if ragged.TotalDevices() != 12 || ragged.ClassOf(11).Name != "v100" {
		t.Errorf("Restrict(12) = %d devices, tail class %q; want 12 devices on a v100 tail",
			ragged.TotalDevices(), ragged.ClassOf(11).Name)
	}
	grown := c.Restrict(24)
	if err := grown.Validate(); err != nil {
		t.Fatalf("Restrict(24): %v", err)
	}
	if grown.ClassOf(23).Name != "v100" {
		t.Errorf("Restrict(24) should repeat the last class for grown nodes, got %q", grown.ClassOf(23).Name)
	}
}

func TestGroupLinkDefaults(t *testing.T) {
	// Homogeneous cluster: the class table is empty and the device link
	// accessors fall back to the scalars.
	h := DGX1V100(2)
	if got := h.DeviceIntraBW(3); got != h.IntraBW {
		t.Errorf("DeviceIntraBW = %v, want scalar %v", got, h.IntraBW)
	}
	c := A100V100(1, 1)
	if got := c.DeviceIntraBW(0); got != 300e9 {
		t.Errorf("A100 DeviceIntraBW = %v, want 300e9", got)
	}
	if got := c.DeviceIntraBW(8); got != 130e9 {
		t.Errorf("V100 DeviceIntraBW = %v, want 130e9", got)
	}
}
