package hardware

import "testing"

// FuzzRestrictExact drives Restrict over arbitrary shapes, class
// layouts and fault positions: the result must always hold exactly n
// physical devices, validate cleanly, and never resurrect an
// out-of-range fault entry.
func FuzzRestrictExact(f *testing.F) {
	f.Add(4, 12, uint8(0), -1)
	f.Add(2, 20, uint8(1), 3)
	f.Add(5, 33, uint8(2), 17)
	f.Add(1, 1, uint8(3), 0)
	f.Fuzz(func(t *testing.T, nodes, n int, layout uint8, faultDev int) {
		if nodes < 1 || nodes > 64 || n < 1 || n > 512 {
			t.Skip()
		}
		var c Cluster
		switch layout % 3 {
		case 0:
			c = DGX1V100(nodes)
		case 1:
			c = A100V100(nodes, nodes)
		default:
			nc := make([]int, nodes)
			for i := range nc {
				nc[i] = i % 2
			}
			c = Mixed(8, nc, A100Class(), V100Class())
		}
		if faultDev >= 0 && faultDev < c.physTotal() {
			deg, err := c.Degrade(FaultSpec{
				Devices:      []DeviceFault{{Device: faultDev, FLOPSScale: 0.5, MemScale: 0.5}},
				InterBWScale: 0.5,
			})
			if err != nil {
				t.Fatalf("Degrade(%d): %v", faultDev, err)
			}
			c = deg
		}
		r := c.Restrict(n)
		if got := r.physTotal(); got != n {
			t.Fatalf("Restrict(%d) holds %d physical devices", n, got)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("Restrict(%d).Validate() = %v", n, err)
		}
		// Every usable rank must resolve to a class and to positive
		// capability figures.
		for _, d := range []int{0, r.TotalDevices() - 1} {
			if s := r.DeviceFLOPSScale(d, FP16); s <= 0 || s > 1 {
				t.Fatalf("DeviceFLOPSScale(%d) = %v out of (0, 1]", d, s)
			}
			if m := r.DeviceMemory(d); m <= 0 {
				t.Fatalf("DeviceMemory(%d) = %v", d, m)
			}
		}
	})
}
