// Spot/preemptible capacity: real fleets mix reserved devices that
// stay up with spot devices that are cheap but can be reclaimed at any
// time, usually with a short advance notice (30–120 s on the major
// clouds). The planner prices that risk — a plan's *expected* iteration
// time folds in the rework a preemption forces (perfmodel.Rework) — and
// the elastic supervisor turns the notice into a proactive drain
// (elastic.PreemptNotice).
//
// Representation follows the class/derate discipline of classes.go:
// capacity is a property of a DeviceClass, so a homogeneous cluster
// (len(Classes) == 0) is hazard-free by construction and every accessor
// below has the same fast path that keeps hazard-free searches
// bit-identical (the explored=24701 pin in BENCH_search.json).
package hardware

import "fmt"

// Capacity classifies a device class's provisioning tier.
type Capacity int

const (
	// Reserved devices are owned for the duration of the job; they
	// carry no preemption hazard. The zero value, so every class built
	// before spot capacity existed is Reserved.
	Reserved Capacity = iota
	// Spot devices can be reclaimed by the provider: HazardRate gives
	// the expected preemption rate, NoticeSeconds the advance warning.
	Spot

	numCapacities
)

// String implements fmt.Stringer.
func (c Capacity) String() string {
	switch c {
	case Reserved:
		return "reserved"
	case Spot:
		return "spot"
	}
	return fmt.Sprintf("capacity-%d", int(c))
}

// AsSpot returns a copy of d marked as spot capacity with the given
// Poisson preemption rate (expected preemptions per hour per device)
// and advance reclaim notice.
func AsSpot(d DeviceClass, hazardPerHour, noticeSeconds float64) DeviceClass {
	d.Capacity = Spot
	d.HazardRate = hazardPerHour
	d.NoticeSeconds = noticeSeconds
	return d
}

// ReservedSpotV100 builds the canonical mixed-capacity fleet:
// reservedNodes V100 nodes followed by spotNodes spot V100 nodes,
// devicesPerNode devices each. Both classes share the V100 envelope, so
// the fleet is capability-uniform and only the preemption hazard
// differs — the shape that isolates risk-aware planning effects.
// Reserved nodes come first: low device ranks are the safe ones.
func ReservedSpotV100(devicesPerNode, reservedNodes, spotNodes int, hazardPerHour, noticeSeconds float64) Cluster {
	nodeClass := make([]int, reservedNodes+spotNodes)
	for i := reservedNodes; i < len(nodeClass); i++ {
		nodeClass[i] = 1
	}
	return Mixed(devicesPerNode, nodeClass,
		V100Class(), AsSpot(V100Class(), hazardPerHour, noticeSeconds))
}

// SpotOf returns the device class of a logical rank when that class is
// spot capacity, or nil for reserved devices and homogeneous clusters.
// Fast path: a cluster without classes has no spot capacity.
func (c *Cluster) SpotOf(logical int) *DeviceClass {
	if len(c.Classes) == 0 {
		return nil
	}
	d := c.ClassOf(logical)
	if d == nil || d.Capacity != Spot {
		return nil
	}
	return d
}

// DeviceHazard returns the preemption hazard rate (expected
// preemptions per hour) of a logical rank: the class rate for spot
// devices, 0 for reserved devices and homogeneous clusters.
func (c *Cluster) DeviceHazard(logical int) float64 {
	if d := c.SpotOf(logical); d != nil {
		return d.HazardRate
	}
	return 0
}

// RangeHazard returns the summed preemption hazard rate (expected
// preemptions per hour) over the contiguous logical device range
// [first, first+size). Poisson hazards compose by addition: losing
// *any* device of a group stalls the group, so the group's reclaim
// rate is the sum of its members'. Fast path: hazard-free clusters
// (no device classes) return 0 without touching per-device state, so
// hazard-free searches stay bit-identical.
func (c *Cluster) RangeHazard(first, size int) float64 {
	if len(c.Classes) == 0 {
		return 0
	}
	var sum float64
	for d := first; d < first+size; d++ {
		sum += c.DeviceHazard(d)
	}
	return sum
}

// HasSpot reports whether any class carries a live preemption hazard —
// the gate the search uses to switch to the risk-aware objective.
func (c *Cluster) HasSpot() bool {
	for i := range c.Classes {
		if c.Classes[i].Capacity == Spot && c.Classes[i].HazardRate > 0 {
			return true
		}
	}
	return false
}

// StripHazard returns a copy of the cluster with every class's
// preemption hazard and notice zeroed (capacities become Reserved) —
// the risk-blind twin used by benchmarks to measure what ignoring the
// hazard costs.
func (c Cluster) StripHazard() Cluster {
	if len(c.Classes) == 0 {
		return c
	}
	classes := append([]DeviceClass(nil), c.Classes...)
	for i := range classes {
		classes[i].Capacity = Reserved
		classes[i].HazardRate = 0
		classes[i].NoticeSeconds = 0
	}
	c.Classes = classes
	return c
}

// validateSpot checks one class's capacity fields; part of
// validateClasses.
func validateSpot(i int, d *DeviceClass) error {
	switch {
	case d.Capacity < 0 || d.Capacity >= numCapacities:
		return fmt.Errorf("hardware: class %d (%s): unknown capacity %d", i, d.Name, int(d.Capacity))
	case !finite(d.HazardRate) || d.HazardRate < 0:
		return fmt.Errorf("hardware: class %d (%s): negative or non-finite HazardRate %v", i, d.Name, d.HazardRate)
	case !finite(d.NoticeSeconds) || d.NoticeSeconds < 0:
		return fmt.Errorf("hardware: class %d (%s): negative or non-finite NoticeSeconds %v", i, d.Name, d.NoticeSeconds)
	case d.Capacity == Reserved && (d.HazardRate != 0 || d.NoticeSeconds != 0):
		return fmt.Errorf("hardware: class %d (%s): reserved capacity with a preemption hazard (hazard %v, notice %vs) — mark it Spot",
			i, d.Name, d.HazardRate, d.NoticeSeconds)
	}
	return nil
}
