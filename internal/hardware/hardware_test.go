package hardware

import "testing"

func TestDGX1V100Defaults(t *testing.T) {
	c := DGX1V100(4)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	if got := c.TotalDevices(); got != 32 {
		t.Errorf("TotalDevices() = %d, want 32", got)
	}
	if c.MemoryBytes != 32*(1<<30) {
		t.Errorf("MemoryBytes = %v, want 32 GiB", c.MemoryBytes)
	}
	if c.PeakFLOPS(FP16) <= c.PeakFLOPS(FP32) {
		t.Errorf("FP16 peak (%v) should exceed FP32 peak (%v)",
			c.PeakFLOPS(FP16), c.PeakFLOPS(FP32))
	}
}

func TestPrecision(t *testing.T) {
	if FP16.BytesPerElem() != 2 || FP32.BytesPerElem() != 4 {
		t.Errorf("BytesPerElem: fp16=%v fp32=%v, want 2 and 4",
			FP16.BytesPerElem(), FP32.BytesPerElem())
	}
	if FP16.String() != "fp16" || FP32.String() != "fp32" {
		t.Errorf("String: %q, %q", FP16.String(), FP32.String())
	}
}

func TestNodeOf(t *testing.T) {
	c := DGX1V100(4)
	cases := []struct{ dev, node int }{
		{0, 0}, {7, 0}, {8, 1}, {15, 1}, {31, 3},
	}
	for _, tc := range cases {
		if got := c.NodeOf(tc.dev); got != tc.node {
			t.Errorf("NodeOf(%d) = %d, want %d", tc.dev, got, tc.node)
		}
	}
}

func TestGroupSpansNodes(t *testing.T) {
	c := DGX1V100(4)
	cases := []struct {
		first, size int
		want        bool
	}{
		{0, 1, false},
		{0, 8, false},
		{0, 9, true},
		{4, 8, true},  // straddles nodes 0 and 1
		{8, 8, false}, // exactly node 1
		{0, 32, true},
		{7, 1, false},
	}
	for _, tc := range cases {
		if got := c.GroupSpansNodes(tc.first, tc.size); got != tc.want {
			t.Errorf("GroupSpansNodes(%d, %d) = %v, want %v",
				tc.first, tc.size, got, tc.want)
		}
	}
}

func TestRestrict(t *testing.T) {
	c := DGX1V100(4)
	cases := []struct {
		n, nodes, perNode int
	}{
		{1, 1, 1},
		{4, 1, 4},
		{8, 1, 8},
		{16, 2, 8},
		{32, 4, 8},
	}
	for _, tc := range cases {
		r := c.Restrict(tc.n)
		if r.Nodes != tc.nodes || r.DevicesPerNode != tc.perNode {
			t.Errorf("Restrict(%d) = %d nodes × %d, want %d × %d",
				tc.n, r.Nodes, r.DevicesPerNode, tc.nodes, tc.perNode)
		}
		if r.TotalDevices() != tc.n {
			t.Errorf("Restrict(%d).TotalDevices() = %d", tc.n, r.TotalDevices())
		}
		if err := r.Validate(); err != nil {
			t.Errorf("Restrict(%d).Validate() = %v", tc.n, err)
		}
	}
}

func TestValidateRejectsBadClusters(t *testing.T) {
	good := DGX1V100(1)
	mutations := []func(*Cluster){
		func(c *Cluster) { c.Nodes = 0 },
		func(c *Cluster) { c.DevicesPerNode = -1 },
		func(c *Cluster) { c.FP16FLOPS = 0 },
		func(c *Cluster) { c.FP32FLOPS = -1 },
		func(c *Cluster) { c.MaxUtil = 0 },
		func(c *Cluster) { c.MaxUtil = 1.5 },
		func(c *Cluster) { c.MemoryBytes = 0 },
		func(c *Cluster) { c.IntraBW = 0 },
		func(c *Cluster) { c.InterBW = -2 },
		func(c *Cluster) { c.IntraLat = -1e-9 },
	}
	for i, mut := range mutations {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: Validate() = nil, want error", i)
		}
	}
}
