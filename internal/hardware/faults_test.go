package hardware

import (
	"math"
	"strings"
	"testing"
)

func TestFaultSpecValidateRejectsBadSpecs(t *testing.T) {
	cl := DGX1V100(1)
	cases := []struct {
		name string
		spec FaultSpec
		want string
	}{
		{"out of range", FaultSpec{Devices: []DeviceFault{{Device: 8, FLOPSScale: 1, MemScale: 1}}}, "out of range"},
		{"negative rank", FaultSpec{Devices: []DeviceFault{{Device: -1, Dead: true}}}, "out of range"},
		{"duplicate", FaultSpec{Devices: []DeviceFault{
			{Device: 2, FLOPSScale: 0.5, MemScale: 1},
			{Device: 2, Dead: true},
		}}, "duplicate"},
		{"zero flops scale", FaultSpec{Devices: []DeviceFault{{Device: 0, FLOPSScale: 0, MemScale: 1}}}, "FLOPSScale"},
		{"nan flops scale", FaultSpec{Devices: []DeviceFault{{Device: 0, FLOPSScale: math.NaN(), MemScale: 1}}}, "FLOPSScale"},
		{"over-unity mem scale", FaultSpec{Devices: []DeviceFault{{Device: 0, FLOPSScale: 1, MemScale: 1.5}}}, "MemScale"},
		{"negative bw scale", FaultSpec{InterBWScale: -0.5}, "InterBWScale"},
		{"inf bw scale", FaultSpec{IntraBWScale: math.Inf(1)}, "IntraBWScale"},
		{"sub-unity lat scale", FaultSpec{InterLatScale: 0.5}, "InterLatScale"},
		{"nan lat scale", FaultSpec{IntraLatScale: math.NaN()}, "IntraLatScale"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate(cl)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	allDead := FaultSpec{}
	for d := 0; d < 8; d++ {
		allDead.Devices = append(allDead.Devices, DeviceFault{Device: d, Dead: true})
	}
	if err := allDead.Validate(cl); err == nil {
		t.Error("Validate accepted a spec that kills every device")
	}
}

func TestDegradeRemovesDeadDevices(t *testing.T) {
	cl := DGX1V100(2) // 16 devices
	deg, err := cl.Degrade(FaultSpec{Devices: []DeviceFault{
		{Device: 3, Dead: true},
		{Device: 10, Dead: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := deg.TotalDevices(); got != 14 {
		t.Fatalf("TotalDevices = %d, want 14", got)
	}
	// Logical ranks skip the dead physical ranks.
	wantPhys := map[int]int{0: 0, 2: 2, 3: 4, 8: 9, 9: 11, 13: 15}
	for logical, phys := range wantPhys {
		if got := deg.PhysOf(logical); got != phys {
			t.Errorf("PhysOf(%d) = %d, want %d", logical, got, phys)
		}
	}
	// Logical rank 9 lands on physical 11 → node 1.
	if got := deg.NodeOf(9); got != 1 {
		t.Errorf("NodeOf(9) = %d, want 1", got)
	}
	// The healthy original is untouched.
	if cl.TotalDevices() != 16 || cl.Faults != nil {
		t.Error("Degrade mutated the receiver")
	}
}

func TestDegradeIsSingleShot(t *testing.T) {
	cl := DGX1V100(1)
	deg, err := cl.Degrade(FaultSpec{Devices: []DeviceFault{{Device: 0, FLOPSScale: 0.5, MemScale: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := deg.Degrade(FaultSpec{}); err == nil {
		t.Error("Degrade of an already-degraded cluster should fail")
	}
}

func TestRangeScalesUseSlowestMember(t *testing.T) {
	cl := DGX1V100(1)
	deg, err := cl.Degrade(FaultSpec{Devices: []DeviceFault{
		{Device: 2, FLOPSScale: 0.25, MemScale: 0.5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := deg.RangeFLOPSScale(0, 2, FP16); got != 1 {
		t.Errorf("RangeFLOPSScale(0,2) = %v, want 1 (straggler outside range)", got)
	}
	if got := deg.RangeFLOPSScale(0, 4, FP16); got != 0.25 {
		t.Errorf("RangeFLOPSScale(0,4) = %v, want 0.25", got)
	}
	if got := deg.RangeMemory(2, 1); got != 0.5*cl.MemoryBytes {
		t.Errorf("RangeMemory(2,1) = %v, want half capacity", got)
	}
	if got := deg.RangeMemory(4, 4); got != cl.MemoryBytes {
		t.Errorf("RangeMemory(4,4) = %v, want full capacity", got)
	}
	if got := deg.MinDeviceMemory(); got != 0.5*cl.MemoryBytes {
		t.Errorf("MinDeviceMemory = %v, want half capacity", got)
	}
}

func TestLinkDerates(t *testing.T) {
	cl := DGX1V100(2)
	deg, err := cl.Degrade(FaultSpec{
		InterBWScale:  0.5,
		InterLatScale: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := deg.EffInterBW(); got != 0.5*cl.InterBW {
		t.Errorf("EffInterBW = %v, want %v", got, 0.5*cl.InterBW)
	}
	if got := deg.EffInterLat(); got != 4*cl.InterLat {
		t.Errorf("EffInterLat = %v, want %v", got, 4*cl.InterLat)
	}
	// Unset scales (0) leave the intra-node link unchanged.
	if deg.EffIntraBW() != cl.IntraBW || deg.EffIntraLat() != cl.IntraLat {
		t.Error("unset link scales must mean unchanged")
	}
}

func TestDegradedClusterValidates(t *testing.T) {
	cl := DGX1V100(1)
	deg, err := cl.Degrade(FaultSpec{Devices: []DeviceFault{
		{Device: 1, Dead: true},
		{Device: 5, FLOPSScale: 0.3, MemScale: 0.9},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := deg.Validate(); err != nil {
		t.Errorf("degraded cluster failed Validate: %v", err)
	}
}

func TestClusterValidateRejectsNonFinite(t *testing.T) {
	for _, mutate := range []func(*Cluster){
		func(c *Cluster) { c.FP16FLOPS = math.NaN() },
		func(c *Cluster) { c.MemoryBytes = math.Inf(1) },
		func(c *Cluster) { c.InterBW = math.NaN() },
		func(c *Cluster) { c.IntraLat = math.Inf(-1) },
		func(c *Cluster) { c.MaxUtil = math.NaN() },
	} {
		c := DGX1V100(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("Validate accepted non-finite cluster %+v", c)
		}
	}
}
