// Heterogeneous device classes: real fleets mix accelerator
// generations (A100 + V100 pools, spot capacity from an older SKU) and
// the planner must price each pipeline stage at the capability of the
// devices it actually lands on, not a cluster-wide scalar
// (TensorOpt's cost–memory frontier argument; PipeDream's non-uniform
// stage/device assignment).
//
// Representation: the Cluster keeps its scalar fields as a *reference
// envelope* — the best class, the figure the profiler's roofline uses
// — and every DeviceClass expresses its capability relative to that
// envelope. A slower class is therefore a *derate*, exactly like a
// fault-spec FLOPSScale, so class and fault effects compose by
// multiplication in the same accessors (DeviceFLOPSScale,
// RangeMemory, …) and every consumer of those accessors becomes
// class-aware for free. Validate enforces the envelope invariant
// (no class exceeds the scalars), which keeps every scale in (0, 1].
package hardware

import "fmt"

// DeviceClass describes one device generation in a heterogeneous
// cluster: per-class throughput, utilization ceiling and memory, plus
// optional link overrides for classes wired differently (0 inherits
// the cluster scalar).
type DeviceClass struct {
	Name string

	// Peak per-device throughput in FLOP/s by precision.
	FP16FLOPS float64
	FP32FLOPS float64
	// MaxUtil is the class's achievable fraction of peak.
	MaxUtil float64
	// MemoryBytes is the class's per-device memory capacity.
	MemoryBytes float64

	// Link overrides; 0 means "inherit the cluster scalar". A group's
	// links are priced from its slowest member class (min bandwidth,
	// max latency — see DeviceIntraBW and collective.GroupLink).
	IntraBW  float64
	InterBW  float64
	IntraLat float64
	InterLat float64

	// Capacity marks the provisioning tier: Reserved (the zero value)
	// devices stay up for the job's lifetime; Spot devices carry a
	// preemption hazard and an advance reclaim notice. See spot.go.
	Capacity Capacity
	// HazardRate is the Poisson preemption rate of one Spot device,
	// in expected preemptions per hour. Must be 0 on Reserved capacity.
	HazardRate float64
	// NoticeSeconds is the advance warning a Spot reclaim gives before
	// the device disappears (0 = the device vanishes without notice).
	NoticeSeconds float64
}

// PeakFLOPS returns the class's peak throughput for a precision.
func (d *DeviceClass) PeakFLOPS(p Precision) float64 {
	if p == FP32 {
		return d.FP32FLOPS
	}
	return d.FP16FLOPS
}

// A100Class is the canonical A100-80GB description (SXM: 312 TFLOPS
// fp16, 19.5 fp32, NVLink3).
func A100Class() DeviceClass {
	return DeviceClass{
		Name:        "a100",
		FP16FLOPS:   312e12,
		FP32FLOPS:   19.5e12,
		MaxUtil:     0.5,
		MemoryBytes: 80 * (1 << 30),
		IntraBW:     300e9,
		InterBW:     12.5e9,
		IntraLat:    4e-6,
		InterLat:    20e-6,
	}
}

// V100Class is the canonical V100-32GB description, matching the
// DGX1V100 scalars.
func V100Class() DeviceClass {
	return DeviceClass{
		Name:        "v100",
		FP16FLOPS:   125e12,
		FP32FLOPS:   15.7e12,
		MaxUtil:     0.55,
		MemoryBytes: 32 * (1 << 30),
		IntraBW:     130e9,
		InterBW:     12.5e9,
		IntraLat:    5e-6,
		InterLat:    20e-6,
	}
}

// Mixed builds a heterogeneous cluster of len(nodeClass) nodes with
// devicesPerNode devices each; nodeClass[i] indexes into classes. The
// scalar fields are set to the per-field envelope (max over classes),
// so every class scale lies in (0, 1] and Validate's envelope
// invariant holds by construction.
func Mixed(devicesPerNode int, nodeClass []int, classes ...DeviceClass) Cluster {
	c := Cluster{
		Nodes:          len(nodeClass),
		DevicesPerNode: devicesPerNode,
		Classes:        append([]DeviceClass(nil), classes...),
		NodeClass:      append([]int(nil), nodeClass...),
	}
	for i := range classes {
		cl := &classes[i]
		c.FP16FLOPS = maxf(c.FP16FLOPS, cl.FP16FLOPS)
		c.FP32FLOPS = maxf(c.FP32FLOPS, cl.FP32FLOPS)
		c.MaxUtil = maxf(c.MaxUtil, cl.MaxUtil)
		c.MemoryBytes = maxf(c.MemoryBytes, cl.MemoryBytes)
		c.IntraBW = maxf(c.IntraBW, cl.IntraBW)
		c.InterBW = maxf(c.InterBW, cl.InterBW)
		c.IntraLat = maxf(c.IntraLat, cl.IntraLat)
		c.InterLat = maxf(c.InterLat, cl.InterLat)
	}
	return c
}

// A100V100 builds the canonical mixed fleet: a100Nodes DGX-A100-like
// nodes followed by v100Nodes DGX-1-like nodes, 8 devices each. The
// A100 nodes come first, so low device ranks are the fast ones —
// pipeline stage 0 lands on A100s.
func A100V100(a100Nodes, v100Nodes int) Cluster {
	nodeClass := make([]int, a100Nodes+v100Nodes)
	for i := a100Nodes; i < len(nodeClass); i++ {
		nodeClass[i] = 1
	}
	return Mixed(8, nodeClass, A100Class(), V100Class())
}

func maxf(a, b float64) float64 {
	if b > a {
		return b
	}
	return a
}

// validateClasses checks the class table and per-node layout against
// the scalar envelope. Errors name the offending class or node.
func (c *Cluster) validateClasses() error {
	if len(c.Classes) == 0 {
		if len(c.NodeClass) > 0 {
			return fmt.Errorf("hardware: NodeClass set on a cluster without device classes")
		}
		return nil
	}
	if len(c.NodeClass) != c.Nodes {
		return fmt.Errorf("hardware: NodeClass has %d entries for %d nodes", len(c.NodeClass), c.Nodes)
	}
	for i := range c.Classes {
		d := &c.Classes[i]
		switch {
		case !finite(d.FP16FLOPS) || !finite(d.FP32FLOPS) || d.FP16FLOPS <= 0 || d.FP32FLOPS <= 0:
			return fmt.Errorf("hardware: class %d (%s): non-positive or non-finite FLOPS", i, d.Name)
		case !finite(d.MaxUtil) || d.MaxUtil <= 0 || d.MaxUtil > 1:
			return fmt.Errorf("hardware: class %d (%s): MaxUtil = %v, want (0, 1]", i, d.Name, d.MaxUtil)
		case !finite(d.MemoryBytes) || d.MemoryBytes <= 0:
			return fmt.Errorf("hardware: class %d (%s): non-positive or non-finite MemoryBytes", i, d.Name)
		case !finite(d.IntraBW) || !finite(d.InterBW) || d.IntraBW < 0 || d.InterBW < 0:
			return fmt.Errorf("hardware: class %d (%s): negative or non-finite link bandwidth override", i, d.Name)
		case !finite(d.IntraLat) || !finite(d.InterLat) || d.IntraLat < 0 || d.InterLat < 0:
			return fmt.Errorf("hardware: class %d (%s): negative or non-finite link latency override", i, d.Name)
		}
		if err := validateSpot(i, d); err != nil {
			return err
		}
		// Envelope invariant: no class exceeds the scalar fields, so
		// every class scale is a true derate in (0, 1].
		if d.FP16FLOPS*d.MaxUtil > c.FP16FLOPS*c.MaxUtil ||
			d.FP32FLOPS*d.MaxUtil > c.FP32FLOPS*c.MaxUtil {
			return fmt.Errorf("hardware: class %d (%s) exceeds the cluster throughput envelope", i, d.Name)
		}
		if d.MemoryBytes > c.MemoryBytes {
			return fmt.Errorf("hardware: class %d (%s) MemoryBytes %v exceeds the cluster envelope %v",
				i, d.Name, d.MemoryBytes, c.MemoryBytes)
		}
	}
	for n, k := range c.NodeClass {
		if k < 0 || k >= len(c.Classes) {
			return fmt.Errorf("hardware: node %d has class %d, want [0, %d)", n, k, len(c.Classes))
		}
	}
	return nil
}

// ClassOf returns the device class of a logical rank, or nil on a
// homogeneous cluster.
func (c *Cluster) ClassOf(logical int) *DeviceClass {
	if len(c.Classes) == 0 {
		return nil
	}
	n := c.NodeOf(logical)
	if n < 0 || n >= len(c.NodeClass) {
		return nil
	}
	return &c.Classes[c.NodeClass[n]]
}

// classComputeScale returns the throughput derate of a logical rank's
// class relative to the scalar envelope at precision p (1 on a
// homogeneous cluster). Effective throughput is peak × utilization:
// two classes with equal peaks but different achievable utilization
// still run at different speeds.
func (c *Cluster) classComputeScale(logical int, p Precision) float64 {
	d := c.ClassOf(logical)
	if d == nil {
		return 1
	}
	ref := c.PeakFLOPS(p) * c.MaxUtil
	if ref <= 0 {
		return 1
	}
	return clampScale(d.PeakFLOPS(p) * d.MaxUtil / ref)
}

// classMemory returns the per-device memory of a logical rank's class
// (the cluster scalar on a homogeneous cluster), before fault derates.
func (c *Cluster) classMemory(logical int) float64 {
	if d := c.ClassOf(logical); d != nil {
		return d.MemoryBytes
	}
	return c.MemoryBytes
}

// DeviceIntraBW returns the intra-node bandwidth of a logical rank's
// class before fault derates (the cluster scalar when the class has no
// override or the cluster is homogeneous).
func (c *Cluster) DeviceIntraBW(logical int) float64 {
	if d := c.ClassOf(logical); d != nil && d.IntraBW > 0 {
		return d.IntraBW
	}
	return c.IntraBW
}

// DeviceInterBW is DeviceIntraBW for the inter-node link.
func (c *Cluster) DeviceInterBW(logical int) float64 {
	if d := c.ClassOf(logical); d != nil && d.InterBW > 0 {
		return d.InterBW
	}
	return c.InterBW
}

// DeviceIntraLat returns the intra-node hop latency of a logical
// rank's class before fault derates.
func (c *Cluster) DeviceIntraLat(logical int) float64 {
	if d := c.ClassOf(logical); d != nil && d.IntraLat > 0 {
		return d.IntraLat
	}
	return c.IntraLat
}

// DeviceInterLat is DeviceIntraLat for the inter-node link.
func (c *Cluster) DeviceInterLat(logical int) float64 {
	if d := c.ClassOf(logical); d != nil && d.InterLat > 0 {
		return d.InterLat
	}
	return c.InterLat
}

// LinkFaultScales returns the cluster-wide link derates of the
// attached fault spec as plain multipliers (all 1 when healthy):
// bandwidth scales in (0, 1], latency scales ≥ 1. Group-range link
// pricing (collective.GroupLink) composes these with the per-class
// link parameters the same way EffIntraBW composes them with the
// scalars.
func (c *Cluster) LinkFaultScales() (intraBW, interBW, intraLat, interLat float64) {
	intraBW, interBW, intraLat, interLat = 1, 1, 1, 1
	if c.Faults == nil {
		return
	}
	if c.Faults.IntraBWScale != 0 {
		intraBW = clampScale(c.Faults.IntraBWScale)
	}
	if c.Faults.InterBWScale != 0 {
		interBW = clampScale(c.Faults.InterBWScale)
	}
	if c.Faults.IntraLatScale != 0 {
		intraLat = c.Faults.IntraLatScale
	}
	if c.Faults.InterLatScale != 0 {
		interLat = c.Faults.InterLatScale
	}
	return
}
