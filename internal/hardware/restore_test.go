// Degrade/Restore round-trip property tests. This file lives in the
// external test package so it can draw specs from
// chaos.RandomValidFaultSpec (chaos imports hardware; the test binary
// may import both without a cycle).
package hardware_test

import (
	"math/rand"
	"reflect"
	"testing"

	"aceso/internal/chaos"
	"aceso/internal/hardware"
)

// TestDegradeRestoreRoundTrip is the satellite property test: for
// random valid fault specs, restoring every faulted device (in random
// order) and then the links reproduces the original cluster bitwise —
// including the logical-rank compaction/expansion in between.
func TestDegradeRestoreRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		devices := 2 << rng.Intn(4) // 2, 4, 8 or 16
		cl := hardware.DGX1V100(4).Restrict(devices)
		spec := chaos.RandomValidFaultSpec(rng, devices)
		cur, err := cl.Degrade(spec)
		if err != nil {
			t.Fatalf("seed %d: degrade: %v", seed, err)
		}

		// The expected dead set, maintained across restores.
		dead := map[int]bool{}
		for _, d := range spec.Devices {
			if d.Dead {
				dead[d.Device] = true
			}
		}

		checkRanks := func(c *hardware.Cluster) {
			t.Helper()
			wantAlive := devices - len(dead)
			if got := c.TotalDevices(); got != wantAlive {
				t.Fatalf("seed %d: TotalDevices = %d, want %d (dead %v)", seed, got, wantAlive, dead)
			}
			prev := -1
			for l := 0; l < wantAlive; l++ {
				p := c.PhysOf(l)
				if p <= prev {
					t.Fatalf("seed %d: PhysOf not strictly increasing at logical %d: %d after %d", seed, l, p, prev)
				}
				if dead[p] {
					t.Fatalf("seed %d: logical %d maps to dead physical %d", seed, l, p)
				}
				prev = p
			}
		}
		checkRanks(&cur)

		for _, i := range rng.Perm(len(spec.Devices)) {
			d := spec.Devices[i]
			next, err := cur.Restore(d.Device)
			if err != nil {
				t.Fatalf("seed %d: restore %d: %v", seed, d.Device, err)
			}
			delete(dead, d.Device)
			cur = next
			checkRanks(&cur)
			if err := cur.Validate(); err != nil {
				t.Fatalf("seed %d: cluster invalid after restoring %d: %v", seed, d.Device, err)
			}
			if s := cur.DeviceFLOPSScale(logicalOf(t, &cur, d.Device), hardware.FP16); s != 1 {
				t.Fatalf("seed %d: device %d still derated (scale %v) after restore", seed, d.Device, s)
			}
		}
		cur, err = cur.RestoreLinks()
		if err != nil {
			t.Fatalf("seed %d: restore links: %v", seed, err)
		}
		if !reflect.DeepEqual(cur, cl) {
			t.Fatalf("seed %d: round trip diverged:\n got %#v\nwant %#v", seed, cur, cl)
		}
	}
}

// logicalOf finds the logical rank of a physical device (which must be
// alive).
func logicalOf(t *testing.T, c *hardware.Cluster, phys int) int {
	t.Helper()
	for l := 0; l < c.TotalDevices(); l++ {
		if c.PhysOf(l) == phys {
			return l
		}
	}
	t.Fatalf("physical device %d not alive", phys)
	return -1
}

func TestRestoreErrors(t *testing.T) {
	cl := hardware.DGX1V100(1).Restrict(4)
	if _, err := cl.Restore(0); err == nil {
		t.Fatal("Restore on a healthy cluster should fail")
	}
	deg, err := cl.Degrade(hardware.FaultSpec{Devices: []hardware.DeviceFault{{Device: 1, Dead: true}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := deg.Restore(2); err == nil {
		t.Fatal("Restore of an unfaulted device should fail")
	}
	back, err := deg.Restore(1)
	if err != nil {
		t.Fatal(err)
	}
	if back.Faults != nil {
		t.Fatalf("fully restored cluster should be healthy, got %#v", back.Faults)
	}
	if _, err := back.Restore(1); err == nil {
		t.Fatal("double Restore should fail")
	}
	// RestoreLinks is a no-op on healthy clusters.
	same, err := cl.RestoreLinks()
	if err != nil || !reflect.DeepEqual(same, cl) {
		t.Fatalf("RestoreLinks on healthy cluster: %v, %#v", err, same)
	}
}

// TestRestoreKeepsOtherFaults pins that Restore removes exactly one
// entry and RestoreLinks exactly the link scales.
func TestRestoreKeepsOtherFaults(t *testing.T) {
	cl := hardware.DGX1V100(1).Restrict(4)
	deg, err := cl.Degrade(hardware.FaultSpec{
		Devices: []hardware.DeviceFault{
			{Device: 0, Dead: true},
			{Device: 2, FLOPSScale: 0.5, MemScale: 1},
		},
		InterBWScale: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := deg.Restore(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalDevices() != 4 {
		t.Fatalf("TotalDevices = %d after restoring the dead device, want 4", r.TotalDevices())
	}
	if s := r.DeviceFLOPSScale(2, hardware.FP16); s != 0.5 {
		t.Fatalf("device 2 derate lost: scale = %v, want 0.5", s)
	}
	if bw := r.EffInterBW(); bw != cl.InterBW*0.25 {
		t.Fatalf("link derate lost: EffInterBW = %v", bw)
	}
	r, err = r.RestoreLinks()
	if err != nil {
		t.Fatal(err)
	}
	if bw := r.EffInterBW(); bw != cl.InterBW {
		t.Fatalf("EffInterBW = %v after RestoreLinks, want healthy %v", bw, cl.InterBW)
	}
	if s := r.DeviceFLOPSScale(2, hardware.FP16); s != 0.5 {
		t.Fatalf("RestoreLinks dropped the device derate: scale = %v", s)
	}
}
