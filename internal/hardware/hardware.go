// Package hardware describes the accelerator cluster that parallel
// configurations are mapped onto.
//
// The paper evaluates on 4 DGX-1 nodes (8×V100-32GB each, NVLink
// intra-node, 100 Gb/s InfiniBand inter-node). This repository has no
// GPUs, so a Cluster is a purely parametric description: per-device
// throughput and memory plus a two-level (intra-node / inter-node)
// interconnect. Every cost consumed by the search is derived from these
// parameters; see DESIGN.md §2 for the substitution rationale.
package hardware

import "fmt"

// Precision selects which throughput figure applies to a workload.
type Precision int

const (
	// FP16 is mixed-precision training (tensor cores on V100).
	FP16 Precision = iota
	// FP32 is single-precision training.
	FP32
)

// BytesPerElem returns the activation element size for the precision.
func (p Precision) BytesPerElem() float64 {
	if p == FP32 {
		return 4
	}
	return 2
}

// String implements fmt.Stringer.
func (p Precision) String() string {
	if p == FP32 {
		return "fp32"
	}
	return "fp16"
}

// Cluster describes a homogeneous accelerator cluster with a two-level
// interconnect: fast links inside a node, a slower network across nodes.
type Cluster struct {
	Nodes          int
	DevicesPerNode int

	// Peak per-device throughput in FLOP/s by precision.
	FP16FLOPS float64
	FP32FLOPS float64
	// MaxUtil is the fraction of peak a perfectly-sized dense kernel
	// reaches in practice; smaller kernels reach less (see profiler).
	MaxUtil float64

	// MemoryBytes is per-device memory capacity.
	MemoryBytes float64

	// IntraBW/InterBW are per-device link bandwidths (bytes/s) for
	// groups contained in one node vs. groups spanning nodes.
	IntraBW float64
	InterBW float64
	// IntraLat/InterLat are per-hop latencies in seconds.
	IntraLat float64
	InterLat float64

	// TailDevices, when non-zero, makes the last node ragged: it hosts
	// only TailDevices devices instead of DevicesPerNode. Restrict sets
	// it so that non-multiple device counts yield *exactly* n devices.
	// 0 means the last node is full.
	TailDevices int

	// Classes, when non-empty, makes the cluster heterogeneous: the
	// scalar fields above become the reference envelope (best class)
	// and NodeClass assigns each node a class index. See classes.go.
	Classes   []DeviceClass
	NodeClass []int

	// Faults describes degraded hardware; nil means healthy. Set via
	// Degrade (never directly): Degrade validates and normalizes the
	// spec, and the attached value is read-only afterwards — Cluster
	// copies share it.
	Faults *FaultSpec
}

// DGX1V100 returns a cluster of n DGX-1-like nodes: 8 V100-32GB per
// node, NVLink inside the node, 100 Gb/s InfiniBand between nodes.
func DGX1V100(nodes int) Cluster {
	return Cluster{
		Nodes:          nodes,
		DevicesPerNode: 8,
		FP16FLOPS:      125e12,
		FP32FLOPS:      15.7e12,
		MaxUtil:        0.55,
		MemoryBytes:    32 * (1 << 30),
		IntraBW:        130e9,
		InterBW:        12.5e9,
		IntraLat:       5e-6,
		InterLat:       20e-6,
	}
}

// physTotal returns the number of physical device slots on the grid,
// accounting for a ragged last node. Fault device ranks index into
// [0, physTotal).
func (c *Cluster) physTotal() int {
	total := c.Nodes * c.DevicesPerNode
	if c.TailDevices > 0 {
		total -= c.DevicesPerNode - c.TailDevices
	}
	return total
}

// TotalDevices returns the number of usable devices in the cluster
// (dead devices removed by Degrade do not count).
func (c *Cluster) TotalDevices() int { return c.physTotal() - c.DeadDevices() }

// PeakFLOPS returns the peak per-device throughput for a precision.
func (c *Cluster) PeakFLOPS(p Precision) float64 {
	if p == FP32 {
		return c.FP32FLOPS
	}
	return c.FP16FLOPS
}

// Validate reports whether the cluster description is usable. Every
// numeric field must be finite: NaN compares false against any bound,
// so explicit non-finite checks are what keeps poisoned descriptions
// out of the search's scores.
func (c *Cluster) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("hardware: Nodes = %d, want > 0", c.Nodes)
	case c.DevicesPerNode <= 0:
		return fmt.Errorf("hardware: DevicesPerNode = %d, want > 0", c.DevicesPerNode)
	case !finite(c.FP16FLOPS) || !finite(c.FP32FLOPS) || c.FP16FLOPS <= 0 || c.FP32FLOPS <= 0:
		return fmt.Errorf("hardware: non-positive or non-finite FLOPS")
	case !finite(c.MaxUtil) || c.MaxUtil <= 0 || c.MaxUtil > 1:
		return fmt.Errorf("hardware: MaxUtil = %v, want (0, 1]", c.MaxUtil)
	case !finite(c.MemoryBytes) || c.MemoryBytes <= 0:
		return fmt.Errorf("hardware: non-positive or non-finite MemoryBytes")
	case !finite(c.IntraBW) || !finite(c.InterBW) || c.IntraBW <= 0 || c.InterBW <= 0:
		return fmt.Errorf("hardware: non-positive or non-finite bandwidth")
	case !finite(c.IntraLat) || !finite(c.InterLat) || c.IntraLat < 0 || c.InterLat < 0:
		return fmt.Errorf("hardware: negative or non-finite latency")
	case c.TailDevices < 0 || c.TailDevices >= c.DevicesPerNode:
		return fmt.Errorf("hardware: TailDevices = %d, want 0 (full last node) or (0, %d)",
			c.TailDevices, c.DevicesPerNode)
	}
	if err := c.validateClasses(); err != nil {
		return err
	}
	if c.Faults != nil {
		healthy := *c
		healthy.Faults = nil
		if err := c.Faults.Validate(healthy); err != nil {
			// Name the cluster shape so a fault error surfacing far from
			// the Degrade call (e.g. out of a Restrict-shrunken copy)
			// still says which grid the device index was checked against.
			return fmt.Errorf("hardware: invalid fault spec for %d-device cluster: %w",
				healthy.physTotal(), err)
		}
	}
	return nil
}

// NodeOf returns the node index hosting a (logical) device rank.
func (c *Cluster) NodeOf(dev int) int { return c.PhysOf(dev) / c.DevicesPerNode }

// GroupSpansNodes reports whether the contiguous device range
// [first, first+size) crosses a node boundary.
func (c *Cluster) GroupSpansNodes(first, size int) bool {
	if size <= 1 {
		return false
	}
	return c.NodeOf(first) != c.NodeOf(first+size-1)
}

// Restrict returns a copy of the cluster with exactly n physical
// devices. n ≤ DevicesPerNode shrinks to a single (smaller) node;
// larger non-multiple n leaves the last node ragged via TailDevices
// instead of rounding the node count up — Restrict(12) on DGX-1 is 12
// usable devices, not 16. It is used to run experiments on device
// subsets (1, 4, 12, 20, 33 … GPUs).
//
// An attached FaultSpec is refit to the new shape: entries for
// physical ranks outside [0, n) are dropped (the devices they derated
// no longer exist), in-range entries and cluster-wide link derates
// survive.
func (c Cluster) Restrict(n int) Cluster {
	out := c
	if n <= c.DevicesPerNode {
		out.Nodes = 1
		out.DevicesPerNode = n
		out.TailDevices = 0
	} else {
		out.Nodes = (n + c.DevicesPerNode - 1) / c.DevicesPerNode
		out.TailDevices = n % c.DevicesPerNode
	}
	if len(c.NodeClass) > 0 {
		nc := make([]int, out.Nodes)
		for i := range nc {
			if i < len(c.NodeClass) {
				nc[i] = c.NodeClass[i]
			} else {
				// Growing past the described nodes: repeat the last class.
				nc[i] = c.NodeClass[len(c.NodeClass)-1]
			}
		}
		out.NodeClass = nc
	}
	out.Faults = refitFaults(c.Faults, out.physTotal())
	return out
}
