// Package config defines the parallel-training configuration that
// Aceso searches over: a pipeline-stage partition of the operator
// list, per-operator tensor/data-parallel settings and recomputation
// flags, and the global microbatch size (§3.1, Figure 2).
package config

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"aceso/internal/model"
)

// FNV-1a constants. Hashing is inlined instead of going through
// hash/fnv: the stdlib hasher costs one allocation per New64a plus a
// string→[]byte copy per io.WriteString, and Config.Hash is the single
// hottest function of the search (DESIGN.md §5g). The fold below is
// byte-identical to fnv.New64a().Write(...).Sum64(), so every memoized
// hash — and every hash-based tie-break in the search — is unchanged.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvString folds s into an FNV-1a state.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// fnvBytes folds b into an FNV-1a state.
func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}


// OpSetting is the parallelization of a single operator inside its
// pipeline stage. TP·DP always equals the stage's device count; the
// fine-tuning pass (§4.2) may give different ops in one stage
// different TP/DP mixes and sharding dims.
type OpSetting struct {
	TP, DP int
	// Dim indexes the operator's PartitionDims (sharding choice).
	Dim int
	// Recompute releases this op's saved activations and re-runs its
	// forward during backward (§2.1).
	Recompute bool
	// ZeRO shards this op's optimizer states across its data-parallel
	// group (ZeRO stage 1), trading an extra parameter all-gather per
	// iteration for 1/dp the optimizer memory. This is an extension
	// primitive beyond the paper's Table 1 (§3.2.1 invites them);
	// only meaningful — and only valid — when DP > 1.
	ZeRO bool
	// SeqPar applies Megatron-style sequence parallelism: activations
	// the op would keep replicated across its tensor-parallel group
	// (layer norms, dropout) are sharded along the sequence dimension
	// instead, cutting their memory and compute by tp at equal
	// communication volume (all-reduce ⇒ reduce-scatter + all-gather).
	// Extension primitive; only valid when TP > 1.
	SeqPar bool
}

// Stage is one pipeline stage: the contiguous operator range
// [Start, End) executed on Devices GPUs.
//
// Stages memoize their canonical segment and semantic sub-hash (the
// search hot path hashes every candidate several times). The caches
// are invalidated by the Config mutation helpers (MutStage, MutOp,
// SetMicroBatch, InvalidateStage, Invalidate); code that writes the
// exported fields directly after a Hash/SubHash call must invalidate
// by hand or the caches go stale (DESIGN.md §5b).
type Stage struct {
	Start, End int
	Devices    int
	Ops        []OpSetting // len == End-Start, indexed by op - Start

	// canon memoizes the stage's canonical segment ("" = not yet
	// computed; a valid segment is never empty). sub is its FNV-1a
	// sub-hash — the perfmodel stage-cache key component.
	canon string
	sub   uint64
}

// NumOps returns the number of operators in the stage.
func (s *Stage) NumOps() int { return s.End - s.Start }

// Setting returns the OpSetting for global operator index op.
// Mutating through the returned pointer bypasses hash invalidation;
// use Config.MutOp (or invalidate explicitly) on hashed configs.
func (s *Stage) Setting(op int) *OpSetting { return &s.Ops[op-s.Start] }

// invalidate drops the stage's memoized segment and sub-hash.
func (s *Stage) invalidate() { s.canon, s.sub = "", 0 }

// segScratch recycles segment()'s build buffer: rebuilding a mutated
// stage's segment is the second-hottest allocation site of the search,
// and only the memoized string needs to outlive the call.
var segScratch = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// appendDec is strconv.AppendInt specialized for the small
// non-negative integers that dominate canonical segments (parallelism
// degrees and op indices; one or two digits almost always).
func appendDec(b []byte, v int) []byte {
	if v >= 0 {
		if v < 10 {
			return append(b, byte('0'+v))
		}
		if v < 100 {
			return append(b, byte('0'+v/10), byte('0'+v%10))
		}
	}
	return strconv.AppendInt(b, int64(v), 10)
}

// segment returns the stage's canonical segment, computing and
// memoizing it (and the sub-hash) on first use. The byte format is
// identical to what Config.canonical historically produced.
func (s *Stage) segment() string {
	if s.canon == "" {
		bp := segScratch.Get().(*[]byte)
		b := (*bp)[:0]
		b = append(b, "s["...)
		b = appendDec(b, s.Start)
		b = append(b, ',')
		b = appendDec(b, s.End)
		b = append(b, ")x"...)
		b = appendDec(b, s.Devices)
		b = append(b, ':')
		for j := range s.Ops {
			op := &s.Ops[j]
			b = appendDec(b, op.TP)
			b = append(b, '.')
			b = appendDec(b, op.DP)
			b = append(b, '.')
			b = appendDec(b, op.Dim)
			b = append(b, '.')
			b = appendBit(b, op.Recompute)
			b = append(b, '.')
			b = appendBit(b, op.ZeRO)
			b = append(b, '.')
			b = appendBit(b, op.SeqPar)
			b = append(b, ',')
		}
		b = append(b, ';')
		s.canon = string(b)
		s.sub = fnvBytes(fnvOffset64, b)
		*bp = b
		segScratch.Put(bp)
	}
	return s.canon
}

// SubHash returns the stage's semantic sub-hash: two stages have equal
// sub-hashes iff their canonical segments (op range, device count and
// every op setting) are byte-identical. Memoized; see Stage.
func (s *Stage) SubHash() uint64 {
	s.segment()
	return s.sub
}

// appendBit appends '1' for true, '0' for false.
func appendBit(b []byte, v bool) []byte {
	if v {
		return append(b, '1')
	}
	return append(b, '0')
}

// Config is a complete parallel configuration for one model on one
// cluster: an ordered pipeline partition plus the aggregate microbatch
// size. Stages occupy contiguous device ranks in order.
type Config struct {
	Stages []Stage
	// MicroBatch is the aggregate microbatch size: the number of
	// samples injected into the pipeline per microbatch. Each op's
	// data-parallel group splits it (per-replica samples =
	// MicroBatch / DP), preserving semantics when DP changes
	// (Figure 5(c)).
	MicroBatch int

	// hash memoizes Hash(); hashOK marks it valid. Invalidated by the
	// mutation helpers below.
	hash   uint64
	hashOK bool

	// hpfx caches FNV-1a prefix states: hpfx[i] is the hash state after
	// folding the "mb=<n>;" prefix and stages [0..i]. hpfxN counts the
	// valid entries — mutating stage k clamps it to k, changing the
	// microbatch resets it to 0. Hash() resumes folding at the first
	// invalid stage, so a clone-plus-single-stage-mutation neighbor
	// re-folds only the stages from the mutation onward instead of the
	// whole pipeline. The final hash value is identical either way:
	// FNV-1a is a left fold, so the state after a byte prefix is a pure
	// function of that prefix. (A cheaper stage-level fold of the
	// memoized sub-hashes was tried and rejected: it changes hash
	// values, and score ties broken by hash order make the exploration
	// sequence — pinned by the benchmark baselines — drift.)
	hpfx  []uint64
	hpfxN int

	// flat remembers the full backing array behind the stages' Ops
	// slices (Clone carves per-stage windows out of one allocation,
	// clamping each window's capacity — which hides the backing's true
	// capacity from the arena). Total op count is invariant within one
	// search, so a recycled config's flat always fits the next clone and
	// CloneIn reuses it instead of allocating.
	flat []OpSetting
}

// NumStages returns the pipeline depth.
func (c *Config) NumStages() int { return len(c.Stages) }

// TotalDevices returns the summed device count of all stages.
func (c *Config) TotalDevices() int {
	n := 0
	for i := range c.Stages {
		n += c.Stages[i].Devices
	}
	return n
}

// FirstDev returns the global rank of stage i's first device.
func (c *Config) FirstDev(i int) int {
	n := 0
	for j := 0; j < i; j++ {
		n += c.Stages[j].Devices
	}
	return n
}

// StageOf returns the index of the stage containing global op index
// op, or -1 if out of range.
func (c *Config) StageOf(op int) int {
	for i := range c.Stages {
		if op >= c.Stages[i].Start && op < c.Stages[i].End {
			return i
		}
	}
	return -1
}

// NumMicrobatches returns the number of microbatches per iteration.
func (c *Config) NumMicrobatches(globalBatch int) int {
	if c.MicroBatch <= 0 {
		return 0
	}
	return globalBatch / c.MicroBatch
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Validate checks every structural invariant of the configuration
// against its model and cluster size (DESIGN.md §6, invariant 1).
func (c *Config) Validate(g *model.Graph, totalDevices int) error {
	if len(c.Stages) == 0 {
		return fmt.Errorf("config: no stages")
	}
	if c.MicroBatch <= 0 {
		return fmt.Errorf("config: MicroBatch = %d, want > 0", c.MicroBatch)
	}
	if g.GlobalBatch%c.MicroBatch != 0 {
		return fmt.Errorf("config: MicroBatch %d does not divide global batch %d",
			c.MicroBatch, g.GlobalBatch)
	}
	if got := c.TotalDevices(); got != totalDevices {
		return fmt.Errorf("config: stages use %d devices, cluster has %d", got, totalDevices)
	}
	next := 0
	for i := range c.Stages {
		s := &c.Stages[i]
		if s.Start != next {
			return fmt.Errorf("config: stage %d starts at op %d, want %d", i, s.Start, next)
		}
		if s.End <= s.Start {
			return fmt.Errorf("config: stage %d is empty [%d, %d)", i, s.Start, s.End)
		}
		next = s.End
		if !IsPow2(s.Devices) {
			return fmt.Errorf("config: stage %d has %d devices, want a power of two", i, s.Devices)
		}
		if len(s.Ops) != s.NumOps() {
			return fmt.Errorf("config: stage %d has %d settings for %d ops", i, len(s.Ops), s.NumOps())
		}
		for j := range s.Ops {
			op := &s.Ops[j]
			if !IsPow2(op.TP) || !IsPow2(op.DP) {
				return fmt.Errorf("config: stage %d op %d: tp=%d dp=%d, want powers of two",
					i, s.Start+j, op.TP, op.DP)
			}
			if op.TP*op.DP != s.Devices {
				return fmt.Errorf("config: stage %d op %d: tp·dp = %d, want %d devices",
					i, s.Start+j, op.TP*op.DP, s.Devices)
			}
			if c.MicroBatch%op.DP != 0 {
				return fmt.Errorf("config: stage %d op %d: dp=%d does not divide microbatch %d",
					i, s.Start+j, op.DP, c.MicroBatch)
			}
			if op.ZeRO && op.DP < 2 {
				return fmt.Errorf("config: stage %d op %d: ZeRO requires dp > 1", i, s.Start+j)
			}
			if op.SeqPar && op.TP < 2 {
				return fmt.Errorf("config: stage %d op %d: sequence parallelism requires tp > 1", i, s.Start+j)
			}
			dims := g.Ops[s.Start+j].Dims
			if op.Dim < 0 || op.Dim >= len(dims) {
				return fmt.Errorf("config: stage %d op %d: dim %d out of range [0,%d)",
					i, s.Start+j, op.Dim, len(dims))
			}
		}
	}
	if next != len(g.Ops) {
		return fmt.Errorf("config: stages cover %d ops, model has %d", next, len(g.Ops))
	}
	return nil
}

// Clone returns a deep copy of the configuration. Memoized hashes are
// carried over (they describe identical content), so a neighbor built
// by Clone plus a mutation helper re-hashes only the mutated stage.
//
// All stages' op settings share one backing array, sliced with
// cap==len per stage so an append on any stage's Ops reallocates
// instead of clobbering its neighbor — the same semantics the old
// exact-size per-stage allocations had, at three allocations per
// clone instead of stages+2.
func (c *Config) Clone() *Config {
	out := &Config{
		Stages:     make([]Stage, len(c.Stages)),
		MicroBatch: c.MicroBatch,
		hash:       c.hash,
		hashOK:     c.hashOK,
		hpfxN:      c.hpfxN,
	}
	if c.hpfxN > 0 {
		out.hpfx = make([]uint64, c.hpfxN)
		copy(out.hpfx, c.hpfx[:c.hpfxN])
	}
	total := 0
	for i := range c.Stages {
		total += len(c.Stages[i].Ops)
	}
	flat := make([]OpSetting, total)
	out.flat = flat
	off := 0
	for i := range c.Stages {
		s := c.Stages[i]
		n := len(s.Ops)
		dst := flat[off : off+n : off+n]
		copy(dst, s.Ops)
		s.Ops = dst
		out.Stages[i] = s
		off += n
	}
	return out
}

// ---------- mutation helpers (the cache-invalidation contract) ----------
//
// The search hot path memoizes Hash(), per-stage sub-hashes, and (in
// perfmodel) per-stage metrics keyed by those sub-hashes. All of that
// is only sound if every post-construction mutation goes through the
// helpers below, which invalidate exactly the touched caches. Building
// a Config from literals and mutating it before the first Hash call
// needs no helpers — the caches are filled lazily.

// SetMicroBatch sets the aggregate microbatch size. Stage sub-hashes
// are unaffected (the microbatch is keyed separately everywhere).
func (c *Config) SetMicroBatch(mbs int) {
	c.MicroBatch = mbs
	c.hashOK = false
	c.hpfxN = 0 // the mb prefix feeds every stage's fold state
}

// MutStage applies fn to stage i and invalidates its memoized hashes.
func (c *Config) MutStage(i int, fn func(*Stage)) {
	fn(&c.Stages[i])
	c.InvalidateStage(i)
}

// MutOp applies fn to the setting of global operator index op inside
// stage i and invalidates the stage's memoized hashes.
func (c *Config) MutOp(i, op int, fn func(*OpSetting)) {
	fn(c.Stages[i].Setting(op))
	c.InvalidateStage(i)
}

// InvalidateStage drops stage i's memoized hashes (and the config
// hash) after a direct mutation that bypassed MutStage/MutOp.
func (c *Config) InvalidateStage(i int) {
	c.Stages[i].invalidate()
	c.hashOK = false
	if c.hpfxN > i {
		c.hpfxN = i
	}
}

// Invalidate drops every memoized hash. The escape hatch for code that
// hand-mutates exported fields of an already-hashed configuration.
func (c *Config) Invalidate() {
	for i := range c.Stages {
		c.Stages[i].invalidate()
	}
	c.hashOK = false
	c.hpfxN = 0
}

// canonical writes the semantic content of the configuration in a
// canonical form. Two configurations are semantically identical iff
// their canonical forms are byte-identical.
func (c *Config) canonical(sb *strings.Builder) {
	sb.WriteString("mb=")
	sb.WriteString(strconv.Itoa(c.MicroBatch))
	sb.WriteByte(';')
	for i := range c.Stages {
		sb.WriteString(c.Stages[i].segment())
	}
}

// Hash returns the configuration-semantic hash used for search
// deduplication (§4.3): FNV-1a over the canonical form. Memoized two
// ways: a valid hash returns instantly, and otherwise the fold resumes
// from the cached prefix state of the last unmutated stage — a
// neighbor that mutated stage k re-folds only segments k..p-1 instead
// of the whole canonical form.
func (c *Config) Hash() uint64 {
	if c.hashOK {
		return c.hash
	}
	p := len(c.Stages)
	i := c.hpfxN
	if i > p {
		i = p // defensive: stages were truncated without Invalidate
	}
	if cap(c.hpfx) >= p {
		c.hpfx = c.hpfx[:p]
	} else {
		np := make([]uint64, p)
		copy(np, c.hpfx[:i])
		c.hpfx = np
	}
	var h uint64
	if i == 0 {
		var buf [16]byte
		b := append(buf[:0], "mb="...)
		b = strconv.AppendInt(b, int64(c.MicroBatch), 10)
		b = append(b, ';')
		h = fnvBytes(fnvOffset64, b)
	} else {
		h = c.hpfx[i-1]
	}
	for ; i < p; i++ {
		h = fnvString(h, c.Stages[i].segment())
		c.hpfx[i] = h
	}
	c.hpfxN = p
	c.hash = h
	c.hashOK = true
	return c.hash
}

// Canonical returns the canonical string form (exposed for tests of
// the hash ⇔ string equivalence invariant).
func (c *Config) Canonical() string {
	var sb strings.Builder
	c.canonical(&sb)
	return sb.String()
}

// String renders a compact human-readable summary, collapsing runs of
// identical op settings inside each stage.
func (c *Config) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "mbs=%d |", c.MicroBatch)
	for i := range c.Stages {
		s := &c.Stages[i]
		fmt.Fprintf(&sb, " stage%d[ops %d-%d, %dGPU", i, s.Start, s.End-1, s.Devices)
		runStart := 0
		for j := 1; j <= len(s.Ops); j++ {
			if j < len(s.Ops) && s.Ops[j] == s.Ops[runStart] {
				continue
			}
			op := s.Ops[runStart]
			rc := ""
			if op.Dim != 0 {
				rc += fmt.Sprintf(",dim%d", op.Dim)
			}
			if op.Recompute {
				rc += ",rc"
			}
			if op.ZeRO {
				rc += ",zero"
			}
			if op.SeqPar {
				rc += ",sp"
			}
			if runStart == 0 && j == len(s.Ops) {
				fmt.Fprintf(&sb, ", tp%d×dp%d%s", op.TP, op.DP, rc)
			} else {
				fmt.Fprintf(&sb, ", ops%d-%d:tp%d×dp%d%s",
					s.Start+runStart, s.Start+j-1, op.TP, op.DP, rc)
			}
			runStart = j
		}
		sb.WriteString("]")
	}
	return sb.String()
}

// RecomputedOps returns the number of recomputed ops in stage i.
func (c *Config) RecomputedOps(i int) int {
	n := 0
	for j := range c.Stages[i].Ops {
		if c.Stages[i].Ops[j].Recompute {
			n++
		}
	}
	return n
}
