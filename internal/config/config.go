// Package config defines the parallel-training configuration that
// Aceso searches over: a pipeline-stage partition of the operator
// list, per-operator tensor/data-parallel settings and recomputation
// flags, and the global microbatch size (§3.1, Figure 2).
package config

import (
	"fmt"
	"hash/fnv"
	"strings"

	"aceso/internal/model"
)

// OpSetting is the parallelization of a single operator inside its
// pipeline stage. TP·DP always equals the stage's device count; the
// fine-tuning pass (§4.2) may give different ops in one stage
// different TP/DP mixes and sharding dims.
type OpSetting struct {
	TP, DP int
	// Dim indexes the operator's PartitionDims (sharding choice).
	Dim int
	// Recompute releases this op's saved activations and re-runs its
	// forward during backward (§2.1).
	Recompute bool
	// ZeRO shards this op's optimizer states across its data-parallel
	// group (ZeRO stage 1), trading an extra parameter all-gather per
	// iteration for 1/dp the optimizer memory. This is an extension
	// primitive beyond the paper's Table 1 (§3.2.1 invites them);
	// only meaningful — and only valid — when DP > 1.
	ZeRO bool
	// SeqPar applies Megatron-style sequence parallelism: activations
	// the op would keep replicated across its tensor-parallel group
	// (layer norms, dropout) are sharded along the sequence dimension
	// instead, cutting their memory and compute by tp at equal
	// communication volume (all-reduce ⇒ reduce-scatter + all-gather).
	// Extension primitive; only valid when TP > 1.
	SeqPar bool
}

// Stage is one pipeline stage: the contiguous operator range
// [Start, End) executed on Devices GPUs.
type Stage struct {
	Start, End int
	Devices    int
	Ops        []OpSetting // len == End-Start, indexed by op - Start
}

// NumOps returns the number of operators in the stage.
func (s *Stage) NumOps() int { return s.End - s.Start }

// Setting returns the OpSetting for global operator index op.
func (s *Stage) Setting(op int) *OpSetting { return &s.Ops[op-s.Start] }

// Config is a complete parallel configuration for one model on one
// cluster: an ordered pipeline partition plus the aggregate microbatch
// size. Stages occupy contiguous device ranks in order.
type Config struct {
	Stages []Stage
	// MicroBatch is the aggregate microbatch size: the number of
	// samples injected into the pipeline per microbatch. Each op's
	// data-parallel group splits it (per-replica samples =
	// MicroBatch / DP), preserving semantics when DP changes
	// (Figure 5(c)).
	MicroBatch int
}

// NumStages returns the pipeline depth.
func (c *Config) NumStages() int { return len(c.Stages) }

// TotalDevices returns the summed device count of all stages.
func (c *Config) TotalDevices() int {
	n := 0
	for i := range c.Stages {
		n += c.Stages[i].Devices
	}
	return n
}

// FirstDev returns the global rank of stage i's first device.
func (c *Config) FirstDev(i int) int {
	n := 0
	for j := 0; j < i; j++ {
		n += c.Stages[j].Devices
	}
	return n
}

// StageOf returns the index of the stage containing global op index
// op, or -1 if out of range.
func (c *Config) StageOf(op int) int {
	for i := range c.Stages {
		if op >= c.Stages[i].Start && op < c.Stages[i].End {
			return i
		}
	}
	return -1
}

// NumMicrobatches returns the number of microbatches per iteration.
func (c *Config) NumMicrobatches(globalBatch int) int {
	if c.MicroBatch <= 0 {
		return 0
	}
	return globalBatch / c.MicroBatch
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Validate checks every structural invariant of the configuration
// against its model and cluster size (DESIGN.md §6, invariant 1).
func (c *Config) Validate(g *model.Graph, totalDevices int) error {
	if len(c.Stages) == 0 {
		return fmt.Errorf("config: no stages")
	}
	if c.MicroBatch <= 0 {
		return fmt.Errorf("config: MicroBatch = %d, want > 0", c.MicroBatch)
	}
	if g.GlobalBatch%c.MicroBatch != 0 {
		return fmt.Errorf("config: MicroBatch %d does not divide global batch %d",
			c.MicroBatch, g.GlobalBatch)
	}
	if got := c.TotalDevices(); got != totalDevices {
		return fmt.Errorf("config: stages use %d devices, cluster has %d", got, totalDevices)
	}
	next := 0
	for i := range c.Stages {
		s := &c.Stages[i]
		if s.Start != next {
			return fmt.Errorf("config: stage %d starts at op %d, want %d", i, s.Start, next)
		}
		if s.End <= s.Start {
			return fmt.Errorf("config: stage %d is empty [%d, %d)", i, s.Start, s.End)
		}
		next = s.End
		if !IsPow2(s.Devices) {
			return fmt.Errorf("config: stage %d has %d devices, want a power of two", i, s.Devices)
		}
		if len(s.Ops) != s.NumOps() {
			return fmt.Errorf("config: stage %d has %d settings for %d ops", i, len(s.Ops), s.NumOps())
		}
		for j := range s.Ops {
			op := &s.Ops[j]
			if !IsPow2(op.TP) || !IsPow2(op.DP) {
				return fmt.Errorf("config: stage %d op %d: tp=%d dp=%d, want powers of two",
					i, s.Start+j, op.TP, op.DP)
			}
			if op.TP*op.DP != s.Devices {
				return fmt.Errorf("config: stage %d op %d: tp·dp = %d, want %d devices",
					i, s.Start+j, op.TP*op.DP, s.Devices)
			}
			if c.MicroBatch%op.DP != 0 {
				return fmt.Errorf("config: stage %d op %d: dp=%d does not divide microbatch %d",
					i, s.Start+j, op.DP, c.MicroBatch)
			}
			if op.ZeRO && op.DP < 2 {
				return fmt.Errorf("config: stage %d op %d: ZeRO requires dp > 1", i, s.Start+j)
			}
			if op.SeqPar && op.TP < 2 {
				return fmt.Errorf("config: stage %d op %d: sequence parallelism requires tp > 1", i, s.Start+j)
			}
			dims := g.Ops[s.Start+j].Dims
			if op.Dim < 0 || op.Dim >= len(dims) {
				return fmt.Errorf("config: stage %d op %d: dim %d out of range [0,%d)",
					i, s.Start+j, op.Dim, len(dims))
			}
		}
	}
	if next != len(g.Ops) {
		return fmt.Errorf("config: stages cover %d ops, model has %d", next, len(g.Ops))
	}
	return nil
}

// Clone returns a deep copy of the configuration.
func (c *Config) Clone() *Config {
	out := &Config{
		Stages:     make([]Stage, len(c.Stages)),
		MicroBatch: c.MicroBatch,
	}
	for i := range c.Stages {
		s := c.Stages[i]
		ops := make([]OpSetting, len(s.Ops))
		copy(ops, s.Ops)
		s.Ops = ops
		out.Stages[i] = s
	}
	return out
}

// canonical writes the semantic content of the configuration in a
// canonical form. Two configurations are semantically identical iff
// their canonical forms are byte-identical.
func (c *Config) canonical(sb *strings.Builder) {
	fmt.Fprintf(sb, "mb=%d;", c.MicroBatch)
	for i := range c.Stages {
		s := &c.Stages[i]
		fmt.Fprintf(sb, "s[%d,%d)x%d:", s.Start, s.End, s.Devices)
		for j := range s.Ops {
			op := &s.Ops[j]
			r := 0
			if op.Recompute {
				r = 1
			}
			z := 0
			if op.ZeRO {
				z = 1
			}
			sp := 0
			if op.SeqPar {
				sp = 1
			}
			fmt.Fprintf(sb, "%d.%d.%d.%d.%d.%d,", op.TP, op.DP, op.Dim, r, z, sp)
		}
		sb.WriteByte(';')
	}
}

// Hash returns the configuration-semantic hash used for search
// deduplication (§4.3).
func (c *Config) Hash() uint64 {
	var sb strings.Builder
	c.canonical(&sb)
	h := fnv.New64a()
	h.Write([]byte(sb.String()))
	return h.Sum64()
}

// Canonical returns the canonical string form (exposed for tests of
// the hash ⇔ string equivalence invariant).
func (c *Config) Canonical() string {
	var sb strings.Builder
	c.canonical(&sb)
	return sb.String()
}

// String renders a compact human-readable summary, collapsing runs of
// identical op settings inside each stage.
func (c *Config) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "mbs=%d |", c.MicroBatch)
	for i := range c.Stages {
		s := &c.Stages[i]
		fmt.Fprintf(&sb, " stage%d[ops %d-%d, %dGPU", i, s.Start, s.End-1, s.Devices)
		runStart := 0
		for j := 1; j <= len(s.Ops); j++ {
			if j < len(s.Ops) && s.Ops[j] == s.Ops[runStart] {
				continue
			}
			op := s.Ops[runStart]
			rc := ""
			if op.Dim != 0 {
				rc += fmt.Sprintf(",dim%d", op.Dim)
			}
			if op.Recompute {
				rc += ",rc"
			}
			if op.ZeRO {
				rc += ",zero"
			}
			if op.SeqPar {
				rc += ",sp"
			}
			if runStart == 0 && j == len(s.Ops) {
				fmt.Fprintf(&sb, ", tp%d×dp%d%s", op.TP, op.DP, rc)
			} else {
				fmt.Fprintf(&sb, ", ops%d-%d:tp%d×dp%d%s",
					s.Start+runStart, s.Start+j-1, op.TP, op.DP, rc)
			}
			runStart = j
		}
		sb.WriteString("]")
	}
	return sb.String()
}

// RecomputedOps returns the number of recomputed ops in stage i.
func (c *Config) RecomputedOps(i int) int {
	n := 0
	for j := range c.Stages[i].Ops {
		if c.Stages[i].Ops[j].Recompute {
			n++
		}
	}
	return n
}
