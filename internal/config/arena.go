package config

// Arena is a free-list of Config allocations for the search hot path.
// The multi-hop search clones a configuration for every primitive
// trial and throws most of the clones away within the same iteration
// (rejected by validation, deduplicated, outscored); recycling them
// through an arena turns the dominant allocation source of the search
// (Clone was ~53% of allocated objects) into slice reuse.
//
// An Arena is deliberately dumb: it does not track liveness. The
// caller must guarantee that a Put config is no longer referenced
// anywhere — CloneIn overwrites every field of a recycled Config, so a
// stale reference would silently read another candidate's data. In
// the searcher this discipline is: only configs that were never
// inserted into the pool, the top-K list, or returned as the current/
// found configuration are recycled directly; pool-pruned configs park
// in a limbo list until the top-level iteration boundary (see
// core.searcher). The aliasing property test in internal/core pins
// this contract.
//
// Not safe for concurrent use; each searcher owns one.
type Arena struct {
	free []*Config

	// gets/puts/reuses are lifetime counters for observability and
	// tests: reuses counts CloneIn calls served from the free list.
	gets, puts, reuses int
}

// Put returns a dead Config to the arena. A nil config — and a nil
// arena — are ignored, so callers without an arena degrade to plain
// garbage collection.
func (a *Arena) Put(c *Config) {
	if a == nil || c == nil {
		return
	}
	a.puts++
	a.free = append(a.free, c)
}

// Get pops a recycled Config, or nil when the free list is empty (or
// the arena itself is nil). Exposed for tests that scribble on
// recycled memory; CloneIn is the production consumer.
func (a *Arena) Get() *Config {
	if a == nil {
		return nil
	}
	n := len(a.free)
	if n == 0 {
		return nil
	}
	c := a.free[n-1]
	a.free[n-1] = nil
	a.free = a.free[:n-1]
	a.gets++
	return c
}

// Len returns the current free-list size.
func (a *Arena) Len() int { return len(a.free) }

// Stats returns lifetime counters: configs handed out from the free
// list (gets), configs returned (puts), and CloneIn calls that reused
// recycled memory instead of allocating (reuses).
func (a *Arena) Stats() (gets, puts, reuses int) { return a.gets, a.puts, a.reuses }

// CloneIn is Clone backed by an arena: when a recycled Config with
// enough capacity is available its Stage and OpSetting slices are
// reused, otherwise it falls back to fresh allocation. The result is
// indistinguishable from Clone(): every field — including the
// memoized canonical segments and hashes — is copied or overwritten,
// so no state of the recycled config's previous life survives.
// (Stage value copies share the source's canon string; that is safe
// because a canonical segment is immutable once built — mutation
// helpers replace it rather than writing into it.)
//
// A nil arena degrades to Clone.
func (c *Config) CloneIn(a *Arena) *Config {
	if a == nil {
		return c.Clone()
	}
	out := a.Get()
	if out == nil {
		return c.Clone()
	}
	a.reuses++
	out.MicroBatch = c.MicroBatch
	out.hash = c.hash
	out.hashOK = c.hashOK
	out.hpfxN = c.hpfxN
	if n := c.hpfxN; n > 0 {
		if cap(out.hpfx) >= n {
			out.hpfx = out.hpfx[:n]
		} else {
			out.hpfx = make([]uint64, n)
		}
		copy(out.hpfx, c.hpfx[:n])
	} else {
		out.hpfx = out.hpfx[:0]
	}
	if cap(out.Stages) >= len(c.Stages) {
		out.Stages = out.Stages[:len(c.Stages)]
	} else {
		out.Stages = make([]Stage, len(c.Stages))
	}
	// Reuse the recycled config's flat ops backing (see Config.flat);
	// per-stage windows get cap==len exactly like Clone, so appends on
	// one stage's Ops never clobber a neighbor.
	total := 0
	for i := range c.Stages {
		total += len(c.Stages[i].Ops)
	}
	flat := out.flat
	if cap(flat) >= total {
		flat = flat[:total]
	} else {
		flat = make([]OpSetting, total)
	}
	out.flat = flat
	off := 0
	for i := range c.Stages {
		src := c.Stages[i]
		n := len(src.Ops)
		dst := flat[off : off+n : off+n]
		copy(dst, src.Ops)
		src.Ops = dst
		out.Stages[i] = src
		off += n
	}
	return out
}
