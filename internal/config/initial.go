package config

import (
	"fmt"

	"aceso/internal/model"
)

// DeviceSplit partitions total devices across stages so every stage
// receives a power of two and the counts sum exactly to total. The
// split is as even as possible; when total/stages is not a power of
// two, later stages receive the larger shares (matching the paper's
// found configurations such as 4,4,8 GPUs for 3 stages on 16).
func DeviceSplit(total, stages int) ([]int, error) {
	if stages <= 0 || total < stages {
		return nil, fmt.Errorf("config: cannot split %d devices into %d stages", total, stages)
	}
	base := 1
	for base*2 <= total/stages {
		base *= 2
	}
	out := make([]int, stages)
	sum := 0
	for i := range out {
		out[i] = base
		sum += base
	}
	for sum < total {
		// Double the smallest stage whose doubling still fits,
		// preferring the right-most on ties so extra capacity lands on
		// later (activation-lighter) stages.
		pick := -1
		for i := stages - 1; i >= 0; i-- {
			if sum+out[i] <= total && (pick < 0 || out[i] < out[pick]) {
				pick = i
			}
		}
		if pick >= 0 {
			sum += out[pick]
			out[pick] *= 2
		} else {
			return nil, fmt.Errorf("config: no power-of-two split of %d devices into %d stages", total, stages)
		}
	}
	return out, nil
}

// OpSplit partitions the model's operators into `stages` contiguous
// ranges with near-equal forward FLOPs. Every range is non-empty.
func OpSplit(g *model.Graph, stages int) ([][2]int, error) {
	n := len(g.Ops)
	if stages <= 0 || n < stages {
		return nil, fmt.Errorf("config: cannot split %d ops into %d stages", n, stages)
	}
	prefix := make([]float64, n+1)
	for i := range g.Ops {
		prefix[i+1] = prefix[i] + g.Ops[i].FwdFLOPs
	}
	out := make([][2]int, 0, stages)
	start := 0
	for s := 0; s < stages; s++ {
		if s == stages-1 {
			out = append(out, [2]int{start, n})
			break
		}
		target := prefix[start] + (prefix[n]-prefix[start])/float64(stages-s)
		end := start + 1
		// Advance while adding the next op keeps us closer to target,
		// but leave at least one op per remaining stage.
		maxEnd := n - (stages - s - 1)
		for end < maxEnd {
			if prefix[end]-target < target-prefix[end] { // end is left of target
				end++
				continue
			}
			// Crossing the target: keep whichever boundary is closer.
			if prefix[end]-target > target-prefix[end-1] && end-1 > start {
				end--
			}
			break
		}
		if end > maxEnd {
			end = maxEnd
		}
		out = append(out, [2]int{start, end})
		start = end
	}
	return out, nil
}

// Balanced builds the paper's default initial configuration: FLOPs-
// balanced contiguous operator ranges, an (as even as possible)
// power-of-two device split, full tensor parallelism inside each
// stage (memory-safest start), default sharding dims, no
// recomputation, and the given (minimum) microbatch size.
func Balanced(g *model.Graph, totalDevices, stages, microBatch int) (*Config, error) {
	devs, err := DeviceSplit(totalDevices, stages)
	if err != nil {
		return nil, err
	}
	ranges, err := OpSplit(g, stages)
	if err != nil {
		return nil, err
	}
	c := &Config{MicroBatch: microBatch, Stages: make([]Stage, stages)}
	for s := 0; s < stages; s++ {
		st := Stage{Start: ranges[s][0], End: ranges[s][1], Devices: devs[s]}
		st.Ops = make([]OpSetting, st.NumOps())
		for j := range st.Ops {
			st.Ops[j] = OpSetting{TP: devs[s], DP: 1, Dim: 0}
		}
		c.Stages[s] = st
	}
	if err := c.Validate(g, totalDevices); err != nil {
		return nil, err
	}
	return c, nil
}

// ImbalancedOps builds the "imbalance-op" initial configuration of
// Exp#7: the first stage takes half of all operators and the rest are
// spread evenly.
func ImbalancedOps(g *model.Graph, totalDevices, stages, microBatch int) (*Config, error) {
	c, err := Balanced(g, totalDevices, stages, microBatch)
	if err != nil {
		return nil, err
	}
	if stages == 1 {
		return c, nil
	}
	n := len(g.Ops)
	bounds := make([]int, stages+1)
	bounds[0] = 0
	bounds[1] = n / 2
	rest := n - n/2
	for s := 1; s < stages; s++ {
		bounds[s+1] = bounds[s] + rest/(stages-1)
	}
	bounds[stages] = n
	// Guarantee non-empty stages.
	for s := 1; s <= stages; s++ {
		if bounds[s] <= bounds[s-1] {
			bounds[s] = bounds[s-1] + 1
		}
	}
	if bounds[stages] > n {
		return nil, fmt.Errorf("config: model too small for %d imbalanced stages", stages)
	}
	bounds[stages] = n
	for s := 0; s < stages; s++ {
		st := &c.Stages[s]
		st.Start, st.End = bounds[s], bounds[s+1]
		st.Ops = make([]OpSetting, st.NumOps())
		for j := range st.Ops {
			st.Ops[j] = OpSetting{TP: st.Devices, DP: 1, Dim: 0}
		}
	}
	return c, c.Validate(g, totalDevices)
}

// ImbalancedGPUs builds the "imbalance-GPU" initial configuration of
// Exp#7: the first stage hoards devices (half of the total when that
// is a power of two) and the remainder is split across the rest.
func ImbalancedGPUs(g *model.Graph, totalDevices, stages, microBatch int) (*Config, error) {
	c, err := Balanced(g, totalDevices, stages, microBatch)
	if err != nil {
		return nil, err
	}
	if stages == 1 {
		return c, nil
	}
	first := totalDevices / 2
	for !IsPow2(first) && first > 1 {
		first--
	}
	restSplit, err := DeviceSplit(totalDevices-first, stages-1)
	if err != nil {
		return nil, err
	}
	devs := append([]int{first}, restSplit...)
	for s := 0; s < stages; s++ {
		st := &c.Stages[s]
		st.Devices = devs[s]
		for j := range st.Ops {
			st.Ops[j] = OpSetting{TP: devs[s], DP: 1, Dim: 0}
		}
	}
	return c, c.Validate(g, totalDevices)
}
