package config

import "testing"

// FuzzDeviceSplit asserts DeviceSplit's contract over arbitrary
// inputs: on success, the parts are powers of two summing exactly to
// the total; failures happen only when total < stages or no
// power-of-two composition exists.
func FuzzDeviceSplit(f *testing.F) {
	f.Add(16, 3)
	f.Add(32, 5)
	f.Add(1, 1)
	f.Add(7, 2)
	f.Add(1024, 9)
	f.Fuzz(func(t *testing.T, total, stages int) {
		if total < 0 || total > 1<<16 || stages < 0 || stages > 256 {
			t.Skip()
		}
		parts, err := DeviceSplit(total, stages)
		if err != nil {
			return
		}
		if len(parts) != stages {
			t.Fatalf("DeviceSplit(%d, %d) returned %d parts", total, stages, len(parts))
		}
		sum := 0
		for _, p := range parts {
			if !IsPow2(p) {
				t.Fatalf("part %d not a power of two (total %d, stages %d)", p, total, stages)
			}
			sum += p
		}
		if sum != total {
			t.Fatalf("parts sum to %d, want %d", sum, total)
		}
	})
}
