package config

import (
	"fmt"

	"aceso/internal/model"
)

// OpSplitWeighted partitions the model's operators into len(weights)
// contiguous ranges whose forward FLOPs are proportional to the
// weights: stage s targets the fraction weights[s]/Σweights. With
// uniform weights it reduces exactly to OpSplit. Every range is
// non-empty; non-positive weights are treated as a minimal share.
func OpSplitWeighted(g *model.Graph, weights []float64) ([][2]int, error) {
	n := len(g.Ops)
	stages := len(weights)
	if stages <= 0 || n < stages {
		return nil, fmt.Errorf("config: cannot split %d ops into %d stages", n, stages)
	}
	w := make([]float64, stages)
	var totalW float64
	for s, v := range weights {
		if v <= 0 {
			v = 1e-9
		}
		w[s] = v
		totalW += v
	}
	if totalW <= 0 {
		return OpSplit(g, stages)
	}
	prefix := make([]float64, n+1)
	for i := range g.Ops {
		prefix[i+1] = prefix[i] + g.Ops[i].FwdFLOPs
	}
	// Suffix weight sums: restWeight[s] = Σ_{k ≥ s} w[k], so the target
	// for stage s is its share of the *remaining* FLOPs — the same
	// rebalancing-as-we-go scheme OpSplit uses with uniform shares.
	restWeight := make([]float64, stages+1)
	for s := stages - 1; s >= 0; s-- {
		restWeight[s] = restWeight[s+1] + w[s]
	}
	out := make([][2]int, 0, stages)
	start := 0
	for s := 0; s < stages; s++ {
		if s == stages-1 {
			out = append(out, [2]int{start, n})
			break
		}
		target := prefix[start] + (prefix[n]-prefix[start])*w[s]/restWeight[s]
		end := start + 1
		maxEnd := n - (stages - s - 1)
		for end < maxEnd {
			if prefix[end]-target < target-prefix[end] { // end is left of target
				end++
				continue
			}
			if prefix[end]-target > target-prefix[end-1] && end-1 > start {
				end--
			}
			break
		}
		if end > maxEnd {
			end = maxEnd
		}
		out = append(out, [2]int{start, end})
		start = end
	}
	return out, nil
}

// CapacityBalanced returns an initializer for heterogeneous clusters:
// the device split is Balanced's, but operators are assigned to stages
// in proportion to the *compute capacity* of the devices each stage
// lands on — devScale[d] is device d's throughput relative to the best
// class (hardware.DeviceFLOPSScale), so fast classes attract
// compute-heavy stages from the very first candidate. Devices beyond
// len(devScale) count as full-speed. With uniform scales the result is
// identical to Balanced.
func CapacityBalanced(devScale []float64) func(g *model.Graph, totalDevices, stages, microBatch int) (*Config, error) {
	return RiskBalanced(devScale, nil)
}

// RiskBalanced is the spot-capacity initializer: CapacityBalanced's
// capacity-proportional operator shares with two hazard biases.
// Stage-boundary bias: a device's weight is its capacity discounted by
// its preemption hazard (hazard[d], any unit — only relative magnitude
// matters), so hazardous stages attract fewer operators and are
// cheaper to re-execute. Placement bias: a stage landing on any
// hazardous device starts dp-replicated (TP devs/2 × DP 2) when device
// count and microbatch divisibility permit, so the work a preemption
// can touch is held by a surviving replica from the very first
// candidate. With nil or all-zero hazards both biases vanish and the
// result is exactly CapacityBalanced's.
func RiskBalanced(devScale, hazard []float64) func(g *model.Graph, totalDevices, stages, microBatch int) (*Config, error) {
	return func(g *model.Graph, totalDevices, stages, microBatch int) (*Config, error) {
		devs, err := DeviceSplit(totalDevices, stages)
		if err != nil {
			return nil, err
		}
		weights := make([]float64, stages)
		hazardous := make([]bool, stages)
		first := 0
		for s := 0; s < stages; s++ {
			var cap float64
			for d := first; d < first+devs[s]; d++ {
				w := 1.0
				if d < len(devScale) && devScale[d] > 0 {
					w = devScale[d]
				}
				if d < len(hazard) && hazard[d] > 0 {
					// Cap the discount at 1.25x: the bias should nudge stage
					// boundaries, not starve hazardous stages of work the
					// search then has to claw back from a distorted start.
					h := hazard[d]
					if h > 1 {
						h = 1
					}
					w /= 1 + h/4
					hazardous[s] = true
				}
				cap += w
			}
			weights[s] = cap
			first += devs[s]
		}
		ranges, err := OpSplitWeighted(g, weights)
		if err != nil {
			return nil, err
		}
		c := &Config{MicroBatch: microBatch, Stages: make([]Stage, stages)}
		for s := 0; s < stages; s++ {
			st := Stage{Start: ranges[s][0], End: ranges[s][1], Devices: devs[s]}
			st.Ops = make([]OpSetting, st.NumOps())
			tp, dp := devs[s], 1
			if hazardous[s] && devs[s]%2 == 0 && microBatch%2 == 0 {
				tp, dp = devs[s]/2, 2
			}
			for j := range st.Ops {
				st.Ops[j] = OpSetting{TP: tp, DP: dp, Dim: 0}
			}
			c.Stages[s] = st
		}
		if err := c.Validate(g, totalDevices); err != nil {
			return nil, err
		}
		return c, nil
	}
}
