package config

import (
	"strings"
	"testing"
	"testing/quick"

	"aceso/internal/model"
)

func mustBalanced(t *testing.T, g *model.Graph, devices, stages, mbs int) *Config {
	t.Helper()
	c, err := Balanced(g, devices, stages, mbs)
	if err != nil {
		t.Fatalf("Balanced(%d devices, %d stages): %v", devices, stages, err)
	}
	return c
}

func TestDeviceSplit(t *testing.T) {
	cases := []struct {
		total, stages int
		want          []int
	}{
		{16, 3, []int{4, 4, 8}},
		{32, 5, []int{4, 4, 8, 8, 8}},
		{8, 3, []int{2, 2, 4}},
		{4, 3, []int{1, 1, 2}},
		{32, 4, []int{8, 8, 8, 8}},
		{1, 1, []int{1}},
		{24, 2, []int{8, 16}},
	}
	for _, tc := range cases {
		got, err := DeviceSplit(tc.total, tc.stages)
		if err != nil {
			t.Errorf("DeviceSplit(%d, %d): %v", tc.total, tc.stages, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("DeviceSplit(%d, %d) = %v, want %v", tc.total, tc.stages, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("DeviceSplit(%d, %d) = %v, want %v", tc.total, tc.stages, got, tc.want)
				break
			}
		}
	}
	if _, err := DeviceSplit(2, 3); err == nil {
		t.Error("DeviceSplit(2, 3) should fail")
	}
	if _, err := DeviceSplit(0, 1); err == nil {
		t.Error("DeviceSplit(0, 1) should fail")
	}
}

// Property: DeviceSplit always returns powers of two summing to total.
func TestDeviceSplitProperty(t *testing.T) {
	f := func(tRaw, sRaw uint8) bool {
		total := 1 << (tRaw % 7) // 1..64
		stages := int(sRaw%8) + 1
		got, err := DeviceSplit(total, stages)
		if err != nil {
			return total < stages // only legitimate failure
		}
		sum := 0
		for _, d := range got {
			if !IsPow2(d) {
				return false
			}
			sum += d
		}
		return sum == total && len(got) == stages
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpSplitBalance(t *testing.T) {
	g := model.Uniform(100, 1e9, 1e6, 1e5, 64)
	ranges, err := OpSplit(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ranges {
		n := r[1] - r[0]
		if n < 20 || n > 30 {
			t.Errorf("stage %d got %d uniform ops, want ≈25", i, n)
		}
	}
}

func TestOpSplitSkewed(t *testing.T) {
	// With 4× heavier ops at the end, the last stage must hold fewer
	// ops than the first for a FLOPs-balanced split.
	g := model.Skewed(100, 1e9, 1e6, 1e5, 0.1, 64)
	ranges, err := OpSplit(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	first := ranges[0][1] - ranges[0][0]
	last := ranges[3][1] - ranges[3][0]
	if last >= first {
		t.Errorf("last stage has %d ops, first has %d; want fewer in last", last, first)
	}
	// Cover: contiguous, complete.
	if ranges[0][0] != 0 || ranges[3][1] != 100 {
		t.Errorf("ranges don't cover the model: %v", ranges)
	}
	for i := 1; i < 4; i++ {
		if ranges[i][0] != ranges[i-1][1] {
			t.Errorf("ranges not contiguous: %v", ranges)
		}
	}
}

func TestOpSplitErrors(t *testing.T) {
	g := model.Uniform(3, 1e9, 1e6, 1e5, 64)
	if _, err := OpSplit(g, 4); err == nil {
		t.Error("OpSplit with more stages than ops should fail")
	}
	if _, err := OpSplit(g, 0); err == nil {
		t.Error("OpSplit(0 stages) should fail")
	}
}

func TestBalancedValidates(t *testing.T) {
	g := model.Uniform(32, 1e9, 1e6, 1e5, 64)
	for _, tc := range []struct{ dev, st int }{{16, 4}, {16, 3}, {8, 1}, {4, 4}, {1, 1}} {
		c := mustBalanced(t, g, tc.dev, tc.st, 1)
		if err := c.Validate(g, tc.dev); err != nil {
			t.Errorf("Balanced(%d, %d) invalid: %v", tc.dev, tc.st, err)
		}
		if c.NumStages() != tc.st {
			t.Errorf("stages = %d, want %d", c.NumStages(), tc.st)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	g := model.Uniform(16, 1e9, 1e6, 1e5, 64)
	fresh := func() *Config { return mustBalanced(t, g, 8, 2, 4) }

	c := fresh()
	c.MicroBatch = 3 // does not divide batch 64... actually it doesn't divide 64
	if err := c.Validate(g, 8); err == nil {
		t.Error("non-dividing microbatch not caught")
	}

	c = fresh()
	c.Stages[0].Devices = 3
	if err := c.Validate(g, 8); err == nil {
		t.Error("non-power-of-two devices not caught")
	}

	c = fresh()
	c.Stages[1].Start++ // gap between stages
	c.Stages[1].Ops = c.Stages[1].Ops[1:]
	if err := c.Validate(g, 8); err == nil {
		t.Error("op-range gap not caught")
	}

	c = fresh()
	c.Stages[0].Ops[0].TP = 2 // tp·dp != devices
	if err := c.Validate(g, 8); err == nil {
		t.Error("tp·dp mismatch not caught")
	}

	c = fresh()
	c.Stages[0].Ops[0].Dim = 5
	if err := c.Validate(g, 8); err == nil {
		t.Error("out-of-range dim not caught")
	}

	c = fresh()
	if err := c.Validate(g, 16); err == nil {
		t.Error("device-count mismatch not caught")
	}

	c = fresh()
	c.MicroBatch = 0
	if err := c.Validate(g, 8); err == nil {
		t.Error("zero microbatch not caught")
	}
}

func TestValidateDPDividesMicrobatch(t *testing.T) {
	g := model.Uniform(16, 1e9, 1e6, 1e5, 64)
	c := mustBalanced(t, g, 8, 2, 2)
	for j := range c.Stages[0].Ops {
		c.Stages[0].Ops[j] = OpSetting{TP: 1, DP: 4, Dim: 0}
	}
	// dp=4 does not divide mbs=2.
	if err := c.Validate(g, 8); err == nil {
		t.Error("dp not dividing microbatch not caught")
	}
	c.MicroBatch = 4
	if err := c.Validate(g, 8); err != nil {
		t.Errorf("mbs=4 dp=4 should be valid: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := model.Uniform(16, 1e9, 1e6, 1e5, 64)
	c := mustBalanced(t, g, 8, 2, 4)
	d := c.Clone()
	d.Stages[0].Ops[0].Recompute = true
	d.MicroBatch = 8
	if c.Stages[0].Ops[0].Recompute {
		t.Error("Clone shares op settings with original")
	}
	if c.MicroBatch != 4 {
		t.Error("Clone shares scalar state")
	}
}

func TestHashDistinguishesAndMatches(t *testing.T) {
	g := model.Uniform(16, 1e9, 1e6, 1e5, 64)
	a := mustBalanced(t, g, 8, 2, 4)
	b := a.Clone()
	if a.Hash() != b.Hash() {
		t.Error("clone hash differs")
	}
	if a.Canonical() != b.Canonical() {
		t.Error("clone canonical differs")
	}
	b.MutOp(0, 3, func(op *OpSetting) { op.Recompute = true })
	if a.Hash() == b.Hash() {
		t.Error("recompute flag not reflected in hash")
	}
	c := a.Clone()
	c.SetMicroBatch(8)
	if a.Hash() == c.Hash() {
		t.Error("microbatch not reflected in hash")
	}
	d := a.Clone()
	d.MutOp(0, 0, func(op *OpSetting) { op.Dim = 1 })
	if a.Hash() == d.Hash() {
		t.Error("dim not reflected in hash")
	}
}

// The memoized hash must always equal a from-scratch rebuild — the
// invalidation contract of the mutation helpers (DESIGN.md §5b).
func rebuiltHash(c *Config) uint64 {
	fresh := &Config{MicroBatch: c.MicroBatch, Stages: make([]Stage, len(c.Stages))}
	for i := range c.Stages {
		s := c.Stages[i]
		fresh.Stages[i] = Stage{Start: s.Start, End: s.End, Devices: s.Devices,
			Ops: append([]OpSetting(nil), s.Ops...)}
	}
	return fresh.Hash()
}

func TestMutationHelpersInvalidate(t *testing.T) {
	g := model.Uniform(16, 1e9, 1e6, 1e5, 64)
	c := mustBalanced(t, g, 8, 2, 4)
	check := func(what string) {
		t.Helper()
		if got, want := c.Hash(), rebuiltHash(c); got != want {
			t.Errorf("%s: memoized hash %x != rebuilt hash %x", what, got, want)
		}
		if got, want := c.Stages[0].SubHash(), rebuiltSubHash(&c.Stages[0]); got != want {
			t.Errorf("%s: memoized sub-hash %x != rebuilt %x", what, got, want)
		}
	}
	check("fresh")
	c.MutOp(0, 1, func(op *OpSetting) { op.Recompute = true })
	check("MutOp")
	c.MutStage(1, func(s *Stage) {
		for j := range s.Ops {
			s.Ops[j].Recompute = true
		}
	})
	check("MutStage")
	c.SetMicroBatch(8)
	check("SetMicroBatch")

	// Direct mutation after hashing goes stale until Invalidate.
	c.Hash()
	c.Stages[0].Ops[0].Dim = 1
	c.Invalidate()
	check("Invalidate after direct mutation")

	c.Hash()
	c.Stages[1].Ops[0].Dim = 1
	c.InvalidateStage(1)
	check("InvalidateStage after direct mutation")
}

func rebuiltSubHash(s *Stage) uint64 {
	fresh := Stage{Start: s.Start, End: s.End, Devices: s.Devices,
		Ops: append([]OpSetting(nil), s.Ops...)}
	return fresh.SubHash()
}

// SetMicroBatch must not disturb stage sub-hashes: the perfmodel stage
// cache keys the microbatch separately.
func TestSubHashIgnoresMicroBatch(t *testing.T) {
	g := model.Uniform(16, 1e9, 1e6, 1e5, 64)
	c := mustBalanced(t, g, 8, 2, 4)
	before := c.Stages[0].SubHash()
	c.SetMicroBatch(8)
	if c.Stages[0].SubHash() != before {
		t.Error("SetMicroBatch changed a stage sub-hash")
	}
	// But a stage mutation must change it.
	c.MutOp(0, 0, func(op *OpSetting) { op.Recompute = true })
	if c.Stages[0].SubHash() == before {
		t.Error("stage mutation did not change the sub-hash")
	}
}

// Property: hash equality ⇔ canonical equality on random mutations
// (DESIGN.md §6, invariant 7).
func TestHashCanonicalEquivalence(t *testing.T) {
	g := model.Uniform(16, 1e9, 1e6, 1e5, 64)
	base := mustBalanced(t, g, 8, 2, 4)
	mutate := func(seed uint32) *Config {
		c := base.Clone()
		s := int(seed) % len(c.Stages)
		j := int(seed/7) % len(c.Stages[s].Ops)
		switch seed % 3 {
		case 0:
			c.MutStage(s, func(st *Stage) { st.Ops[j].Recompute = !st.Ops[j].Recompute })
		case 1:
			c.MutStage(s, func(st *Stage) { st.Ops[j].Dim ^= 1 })
		case 2:
			c.SetMicroBatch(1 << (seed % 5))
		}
		return c
	}
	f := func(s1, s2 uint32) bool {
		a, b := mutate(s1), mutate(s2)
		return (a.Hash() == b.Hash()) == (a.Canonical() == b.Canonical())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStageOfAndFirstDev(t *testing.T) {
	g := model.Uniform(16, 1e9, 1e6, 1e5, 64)
	c := mustBalanced(t, g, 16, 3, 4) // devices 4,4,8
	if c.FirstDev(0) != 0 || c.FirstDev(1) != 4 || c.FirstDev(2) != 8 {
		t.Errorf("FirstDev = %d,%d,%d, want 0,4,8",
			c.FirstDev(0), c.FirstDev(1), c.FirstDev(2))
	}
	if c.StageOf(0) != 0 {
		t.Errorf("StageOf(0) = %d", c.StageOf(0))
	}
	if c.StageOf(15) != 2 {
		t.Errorf("StageOf(15) = %d", c.StageOf(15))
	}
	if c.StageOf(99) != -1 {
		t.Errorf("StageOf(99) = %d, want -1", c.StageOf(99))
	}
}

func TestNumMicrobatches(t *testing.T) {
	g := model.Uniform(16, 1e9, 1e6, 1e5, 64)
	c := mustBalanced(t, g, 8, 2, 4)
	if got := c.NumMicrobatches(g.GlobalBatch); got != 16 {
		t.Errorf("NumMicrobatches = %d, want 16", got)
	}
}

func TestStringCollapsesRuns(t *testing.T) {
	g := model.Uniform(16, 1e9, 1e6, 1e5, 64)
	c := mustBalanced(t, g, 8, 2, 4)
	s := c.String()
	if !strings.Contains(s, "mbs=4") {
		t.Errorf("String() = %q, missing mbs", s)
	}
	if !strings.Contains(s, "stage0") || !strings.Contains(s, "stage1") {
		t.Errorf("String() = %q, missing stages", s)
	}
	// Mixed settings should print per-range.
	c.Stages[0].Ops[0].TP, c.Stages[0].Ops[0].DP = 1, 4
	if !strings.Contains(c.String(), "tp1×dp4") {
		t.Errorf("String() = %q, missing heterogeneous run", c.String())
	}
}

func TestImbalancedInitializers(t *testing.T) {
	g := model.Uniform(32, 1e9, 1e6, 1e5, 64)
	io, err := ImbalancedOps(g, 8, 4, 1)
	if err != nil {
		t.Fatalf("ImbalancedOps: %v", err)
	}
	if err := io.Validate(g, 8); err != nil {
		t.Errorf("ImbalancedOps invalid: %v", err)
	}
	if got := io.Stages[0].NumOps(); got != 16 {
		t.Errorf("ImbalancedOps first stage has %d ops, want 16", got)
	}

	ig, err := ImbalancedGPUs(g, 16, 4, 1)
	if err != nil {
		t.Fatalf("ImbalancedGPUs: %v", err)
	}
	if err := ig.Validate(g, 16); err != nil {
		t.Errorf("ImbalancedGPUs invalid: %v", err)
	}
	if ig.Stages[0].Devices != 8 {
		t.Errorf("ImbalancedGPUs first stage has %d devices, want 8", ig.Stages[0].Devices)
	}
}

func TestRecomputedOps(t *testing.T) {
	g := model.Uniform(16, 1e9, 1e6, 1e5, 64)
	c := mustBalanced(t, g, 8, 2, 4)
	if c.RecomputedOps(0) != 0 {
		t.Error("fresh config has recomputed ops")
	}
	c.Stages[0].Ops[0].Recompute = true
	c.Stages[0].Ops[2].Recompute = true
	if got := c.RecomputedOps(0); got != 2 {
		t.Errorf("RecomputedOps = %d, want 2", got)
	}
}
