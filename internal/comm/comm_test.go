package comm

import (
	"errors"
	"sync"
	"testing"

	"aceso/internal/tensor"
)

func vec(vals ...float64) *tensor.Mat {
	return &tensor.Mat{Rows: 1, Cols: len(vals), Data: vals}
}

func mustWorld(t *testing.T, n int) *World {
	t.Helper()
	w, err := NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAllReduceSum(t *testing.T) {
	w := mustWorld(t, 4)
	group := []int{0, 1, 2, 3}
	results := make([]*tensor.Mat, 4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r] = w.AllReduceSum(group, r, vec(float64(r+1), 10*float64(r+1)))
		}(r)
	}
	wg.Wait()
	for r := 0; r < 4; r++ {
		if results[r].Data[0] != 10 || results[r].Data[1] != 100 {
			t.Errorf("rank %d got %v, want [10 100]", r, results[r].Data)
		}
	}
}

func TestAllReduceIndependentGroups(t *testing.T) {
	w := mustWorld(t, 4)
	groups := [][]int{{0, 1}, {2, 3}}
	results := make([]*tensor.Mat, 4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r] = w.AllReduceSum(groups[r/2], r, vec(float64(r)))
		}(r)
	}
	wg.Wait()
	if results[0].Data[0] != 1 || results[1].Data[0] != 1 {
		t.Errorf("group {0,1}: got %v, %v, want 1", results[0].Data, results[1].Data)
	}
	if results[2].Data[0] != 5 || results[3].Data[0] != 5 {
		t.Errorf("group {2,3}: got %v, %v, want 5", results[2].Data, results[3].Data)
	}
}

func TestConsecutiveCollectivesDoNotCollide(t *testing.T) {
	w := mustWorld(t, 2)
	group := []int{0, 1}
	out := make([][]float64, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			a := w.AllReduceSum(group, r, vec(1))
			b := w.AllReduceSum(group, r, vec(10))
			out[r] = []float64{a.Data[0], b.Data[0]}
		}(r)
	}
	wg.Wait()
	for r := 0; r < 2; r++ {
		if out[r][0] != 2 || out[r][1] != 20 {
			t.Errorf("rank %d: %v, want [2 20]", r, out[r])
		}
	}
}

func TestAllGatherColsOrdering(t *testing.T) {
	w := mustWorld(t, 3)
	group := []int{0, 1, 2}
	results := make([]*tensor.Mat, 3)
	var wg sync.WaitGroup
	// Ranks enter in arbitrary order; the gather must still be in
	// group-rank order.
	for _, r := range []int{2, 0, 1} {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r] = w.AllGatherCols(group, r, vec(float64(r)))
		}(r)
	}
	wg.Wait()
	for r := 0; r < 3; r++ {
		got := results[r].Data
		if got[0] != 0 || got[1] != 1 || got[2] != 2 {
			t.Errorf("rank %d gathered %v, want [0 1 2]", r, got)
		}
	}
}

func TestSendRecv(t *testing.T) {
	w := mustWorld(t, 2)
	w.Send(0, 1, "fwd:0", vec(42))
	got := w.Recv(0, 1, "fwd:0")
	if got.Data[0] != 42 {
		t.Fatalf("Recv = %v", got.Data)
	}
	// Tags keep streams separate.
	w.Send(0, 1, "a", vec(1))
	w.Send(0, 1, "b", vec(2))
	if w.Recv(0, 1, "b").Data[0] != 2 {
		t.Error("tag b delivered wrong payload")
	}
	if w.Recv(0, 1, "a").Data[0] != 1 {
		t.Error("tag a delivered wrong payload")
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := mustWorld(t, 2)
	m := vec(7)
	w.Send(0, 1, "t", m)
	m.Data[0] = 99 // mutate after send
	if got := w.Recv(0, 1, "t"); got.Data[0] != 7 {
		t.Errorf("Recv = %v, want 7 (send must copy)", got.Data)
	}
}

func TestAllReduceResultIsolated(t *testing.T) {
	w := mustWorld(t, 2)
	group := []int{0, 1}
	results := make([]*tensor.Mat, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r] = w.AllReduceSum(group, r, vec(1))
		}(r)
	}
	wg.Wait()
	results[0].Data[0] = 123
	if results[1].Data[0] != 2 {
		t.Error("ranks share all-reduce output storage")
	}
}

func TestNewWorldRejectsBadSize(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		w, err := NewWorld(n)
		if err == nil || w != nil {
			t.Fatalf("NewWorld(%d) = %v, %v; want typed error", n, w, err)
		}
		var sizeErr *InvalidWorldSizeError
		if !errors.As(err, &sizeErr) || sizeErr.Size != n {
			t.Fatalf("NewWorld(%d) error %v is not an InvalidWorldSizeError", n, err)
		}
	}
}
