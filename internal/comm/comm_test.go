package comm

import (
	"errors"
	"sync"
	"testing"
	"time"

	"aceso/internal/tensor"
)

func vec(vals ...float64) *tensor.Mat {
	return &tensor.Mat{Rows: 1, Cols: len(vals), Data: vals}
}

func mustWorld(t *testing.T, n int) *World {
	t.Helper()
	w, err := NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// reduce is the test helper for the happy path, where an error is a
// test failure rather than a behavior under test.
func reduce(t *testing.T, w *World, group []int, rank int, in *tensor.Mat) *tensor.Mat {
	t.Helper()
	out, err := w.AllReduceSum(group, rank, in)
	if err != nil {
		t.Errorf("AllReduceSum rank %d: %v", rank, err)
		return in
	}
	return out
}

func TestAllReduceSum(t *testing.T) {
	w := mustWorld(t, 4)
	group := []int{0, 1, 2, 3}
	results := make([]*tensor.Mat, 4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r] = reduce(t, w, group, r, vec(float64(r+1), 10*float64(r+1)))
		}(r)
	}
	wg.Wait()
	for r := 0; r < 4; r++ {
		if results[r].Data[0] != 10 || results[r].Data[1] != 100 {
			t.Errorf("rank %d got %v, want [10 100]", r, results[r].Data)
		}
	}
}

func TestAllReduceIndependentGroups(t *testing.T) {
	w := mustWorld(t, 4)
	groups := [][]int{{0, 1}, {2, 3}}
	results := make([]*tensor.Mat, 4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r] = reduce(t, w, groups[r/2], r, vec(float64(r)))
		}(r)
	}
	wg.Wait()
	if results[0].Data[0] != 1 || results[1].Data[0] != 1 {
		t.Errorf("group {0,1}: got %v, %v, want 1", results[0].Data, results[1].Data)
	}
	if results[2].Data[0] != 5 || results[3].Data[0] != 5 {
		t.Errorf("group {2,3}: got %v, %v, want 5", results[2].Data, results[3].Data)
	}
}

func TestConsecutiveCollectivesDoNotCollide(t *testing.T) {
	w := mustWorld(t, 2)
	group := []int{0, 1}
	out := make([][]float64, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			a := reduce(t, w, group, r, vec(1))
			b := reduce(t, w, group, r, vec(10))
			out[r] = []float64{a.Data[0], b.Data[0]}
		}(r)
	}
	wg.Wait()
	for r := 0; r < 2; r++ {
		if out[r][0] != 2 || out[r][1] != 20 {
			t.Errorf("rank %d: %v, want [2 20]", r, out[r])
		}
	}
}

func TestAllGatherColsOrdering(t *testing.T) {
	w := mustWorld(t, 3)
	group := []int{0, 1, 2}
	results := make([]*tensor.Mat, 3)
	var wg sync.WaitGroup
	// Ranks enter in arbitrary order; the gather must still be in
	// group-rank order.
	for _, r := range []int{2, 0, 1} {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out, err := w.AllGatherCols(group, r, vec(float64(r)))
			if err != nil {
				t.Errorf("AllGatherCols rank %d: %v", r, err)
				return
			}
			results[r] = out
		}(r)
	}
	wg.Wait()
	for r := 0; r < 3; r++ {
		got := results[r].Data
		if got[0] != 0 || got[1] != 1 || got[2] != 2 {
			t.Errorf("rank %d gathered %v, want [0 1 2]", r, got)
		}
	}
}

func TestSendRecv(t *testing.T) {
	w := mustWorld(t, 2)
	if err := w.Send(0, 1, "fwd:0", vec(42)); err != nil {
		t.Fatal(err)
	}
	got, err := w.Recv(0, 1, "fwd:0")
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 42 {
		t.Fatalf("Recv = %v", got.Data)
	}
	// Tags keep streams separate.
	w.Send(0, 1, "a", vec(1))
	w.Send(0, 1, "b", vec(2))
	if m, _ := w.Recv(0, 1, "b"); m.Data[0] != 2 {
		t.Error("tag b delivered wrong payload")
	}
	if m, _ := w.Recv(0, 1, "a"); m.Data[0] != 1 {
		t.Error("tag a delivered wrong payload")
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := mustWorld(t, 2)
	m := vec(7)
	w.Send(0, 1, "t", m)
	m.Data[0] = 99 // mutate after send
	if got, _ := w.Recv(0, 1, "t"); got.Data[0] != 7 {
		t.Errorf("Recv = %v, want 7 (send must copy)", got.Data)
	}
}

func TestAllReduceResultIsolated(t *testing.T) {
	w := mustWorld(t, 2)
	group := []int{0, 1}
	results := make([]*tensor.Mat, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r] = reduce(t, w, group, r, vec(1))
		}(r)
	}
	wg.Wait()
	results[0].Data[0] = 123
	if results[1].Data[0] != 2 {
		t.Error("ranks share all-reduce output storage")
	}
}

func TestNewWorldRejectsBadSize(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		w, err := NewWorld(n)
		if err == nil || w != nil {
			t.Fatalf("NewWorld(%d) = %v, %v; want typed error", n, w, err)
		}
		var sizeErr *InvalidWorldSizeError
		if !errors.As(err, &sizeErr) || sizeErr.Size != n {
			t.Fatalf("NewWorld(%d) error %v is not an InvalidWorldSizeError", n, err)
		}
	}
}

// TestAllReduceTimesOutOnAbsentRank is the satellite contract: a rank
// that never shows up inside AllReduceSum must surface as a typed
// *CollectiveTimeoutError at the deadline, not as a deadlock.
func TestAllReduceTimesOutOnAbsentRank(t *testing.T) {
	w := mustWorld(t, 3)
	w.SetDeadline(30 * time.Millisecond)
	group := []int{0, 1, 2}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	// Ranks 0 and 1 enter; rank 2 never does.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, errs[r] = w.AllReduceSum(group, r, vec(1))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		var te *CollectiveTimeoutError
		if !errors.As(err, &te) {
			t.Fatalf("rank %d: err = %v, want *CollectiveTimeoutError", r, err)
		}
		if te.Op != "all-reduce" || te.Rank != r {
			t.Errorf("rank %d: timeout error = %+v", r, te)
		}
	}
}

func TestRecvTimesOutOnAbsentSender(t *testing.T) {
	w := mustWorld(t, 2)
	w.SetDeadline(20 * time.Millisecond)
	start := time.Now()
	_, err := w.Recv(0, 1, "never")
	var te *CollectiveTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("Recv err = %v, want *CollectiveTimeoutError", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("Recv took %v, want prompt timeout", waited)
	}
}

// TestFailWakesBlockedWaiters: ranks blocked in a collective or a Recv
// when a group member dies must fail fast with *DeadRankError — no
// deadline required.
func TestFailWakesBlockedWaiters(t *testing.T) {
	w := mustWorld(t, 3) // no deadline at all
	group := []int{0, 1, 2}
	errCh := make(chan error, 2)
	for r := 0; r < 2; r++ {
		go func(r int) {
			_, err := w.AllReduceSum(group, r, vec(1))
			errCh <- err
		}(r)
	}
	recvErr := make(chan error, 1)
	go func() {
		_, err := w.Recv(2, 0, "fwd")
		recvErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiters block
	w.Fail(2)
	for i := 0; i < 2; i++ {
		select {
		case err := <-errCh:
			var de *DeadRankError
			if !errors.As(err, &de) || de.Dead != 2 {
				t.Fatalf("collective err = %v, want DeadRankError{Dead: 2}", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("collective still blocked after Fail")
		}
	}
	select {
	case err := <-recvErr:
		var de *DeadRankError
		if !errors.As(err, &de) || de.Dead != 2 {
			t.Fatalf("recv err = %v, want DeadRankError{Dead: 2}", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv still blocked after Fail")
	}
}

func TestOpsOnDeadRankFailImmediately(t *testing.T) {
	w := mustWorld(t, 4)
	w.FailRange(2, 2) // ranks 2 and 3 die
	if w.Alive(2) || w.Alive(3) || !w.Alive(0) {
		t.Fatal("FailRange marked the wrong ranks")
	}
	var de *DeadRankError
	if err := w.Send(0, 2, "t", vec(1)); !errors.As(err, &de) {
		t.Errorf("Send to dead rank: err = %v", err)
	}
	if _, err := w.Recv(3, 0, "t"); !errors.As(err, &de) {
		t.Errorf("Recv from dead rank: err = %v", err)
	}
	if _, err := w.AllReduceSum([]int{0, 2}, 0, vec(1)); !errors.As(err, &de) {
		t.Errorf("AllReduceSum with dead rank: err = %v", err)
	}
}

func TestRecvDrainsBufferedMessageFromDeadSender(t *testing.T) {
	w := mustWorld(t, 2)
	w.Send(0, 1, "fwd", vec(5))
	w.Fail(0)
	got, err := w.Recv(0, 1, "fwd")
	if err != nil || got.Data[0] != 5 {
		t.Fatalf("Recv = %v, %v; want buffered 5 (in-flight traffic survives)", got, err)
	}
	// The next Recv (nothing buffered) must fail.
	if _, err := w.Recv(0, 1, "fwd"); err == nil {
		t.Fatal("second Recv from dead sender succeeded")
	}
}
