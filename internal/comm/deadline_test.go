package comm

import (
	"errors"
	"testing"
	"time"

	"aceso/internal/tensor"
)

// These tests pin the race between the per-op deadline timer and
// operation completion: a success condition that is established by the
// time the timeout verdict is decided must win. Before the re-check in
// the timeout branches, a timer and a completion ready at the same
// select were picked between at random, so an operation that in fact
// completed could surface a spurious *CollectiveTimeoutError — and
// during a dead-rank cascade that spuriously killed a stage that had
// succeeded.
//
// The race window is nondeterministic, so the tests drive it through
// the testTimeoutFired hook: the waiter blocks after its timer fires,
// the test lands the completion (or the death) inside that window, and
// the released waiter must honor it. Removing the re-check makes every
// test here fail deterministically.

// gateTimeout installs a hook that, the first time a deadline timer
// fires, reports it on `fired` and blocks until `resume` closes.
// The caller must start the waiter after gateTimeout (so the write to
// testTimeoutFired happens-before the read) and call the returned
// cleanup after the waiter finished.
func gateTimeout(fired chan<- struct{}, resume <-chan struct{}) func() {
	first := true
	testTimeoutFired = func() {
		if first {
			first = false
			fired <- struct{}{}
			<-resume
		}
	}
	return func() { testTimeoutFired = nil }
}

func TestAwaitTimeoutDoesNotMaskCompletion(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	w.SetDeadline(time.Millisecond)
	fired := make(chan struct{})
	resume := make(chan struct{})
	defer gateTimeout(fired, resume)()
	done := make(chan struct{})
	errCh := make(chan error, 1)
	go func() { errCh <- w.await(done, "all-reduce", 0, []int{0, 1}) }()
	<-fired     // the waiter's deadline has expired; verdict pending
	close(done) // completion lands inside the window
	close(resume)
	if err := <-errCh; err != nil {
		t.Fatalf("await returned %v for a collective completed before the timeout verdict", err)
	}
}

func TestAwaitTimeoutPrefersDeadRank(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	w.SetDeadline(time.Millisecond)
	fired := make(chan struct{})
	resume := make(chan struct{})
	defer gateTimeout(fired, resume)()
	done := make(chan struct{})
	errCh := make(chan error, 1)
	go func() { errCh <- w.await(done, "all-reduce", 0, []int{0, 1}) }()
	<-fired
	w.Fail(1) // the cascade names the culprit while the verdict is pending
	close(resume)
	var de *DeadRankError
	if err := <-errCh; !errors.As(err, &de) {
		t.Fatalf("await returned %v, want *DeadRankError for a peer known dead at the verdict", err)
	} else if de.Dead != 1 {
		t.Fatalf("wrong culprit %d, want 1", de.Dead)
	}
}

func TestRecvTimeoutDoesNotMaskDelivery(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	w.SetDeadline(time.Millisecond)
	fired := make(chan struct{})
	resume := make(chan struct{})
	defer gateTimeout(fired, resume)()
	type res struct {
		m   *tensor.Mat
		err error
	}
	resCh := make(chan res, 1)
	go func() {
		m, err := w.Recv(0, 1, "t")
		resCh <- res{m, err}
	}()
	<-fired
	m := tensor.New(1, 1)
	m.Data[0] = 42
	if err := w.Send(0, 1, "t", m); err != nil {
		t.Fatalf("send: %v", err)
	}
	close(resume)
	r := <-resCh
	if r.err != nil {
		t.Fatalf("Recv returned %v for a message buffered before the timeout verdict", r.err)
	}
	if r.m.Data[0] != 42 {
		t.Fatalf("wrong payload %v", r.m.Data[0])
	}
}

func TestSendTimeoutDoesNotMaskDelivery(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	w.SetDeadline(time.Millisecond)
	// Fill the mailbox so Send blocks.
	filler := tensor.New(1, 1)
	for i := 0; ; i++ {
		if err := w.Send(0, 1, "t", filler); err != nil {
			var te *CollectiveTimeoutError
			if !errors.As(err, &te) {
				t.Fatalf("filling mailbox: %v", err)
			}
			break
		}
		if i > 1<<20 {
			t.Fatal("mailbox never filled")
		}
	}
	fired := make(chan struct{})
	resume := make(chan struct{})
	defer gateTimeout(fired, resume)()
	m := tensor.New(1, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- w.Send(0, 1, "t", m) }()
	<-fired
	if _, err := w.Recv(0, 1, "t"); err != nil { // free one slot in the window
		t.Fatalf("recv: %v", err)
	}
	close(resume)
	if err := <-errCh; err != nil {
		t.Fatalf("Send returned %v though a mailbox slot freed before the timeout verdict", err)
	}
}

// TestDeadlineDuringCascadeUnblocksPipeline drives the scenario from
// the elastic runtime: a 4-rank receive chain with a per-op deadline
// in force, where a middle rank dies and the failure broadcast races
// the deadline timers. Every operation must return a typed error well
// before the test's own watchdog — the deadline firing during the
// cascade must not leave anyone blocked — and a peer known dead must
// be reported as dead even if the mailbox still holds traffic.
func TestDeadlineDuringCascadeUnblocksPipeline(t *testing.T) {
	const deadline = 50 * time.Millisecond
	w, err := NewWorld(4)
	if err != nil {
		t.Fatal(err)
	}
	w.SetDeadline(deadline)
	errsCh := make(chan error, 3)
	// Ranks 1..3 each wait for a message from their predecessor; rank 0
	// never sends, and rank 1 is failed while everyone blocks.
	for r := 1; r < 4; r++ {
		r := r
		go func() {
			_, err := w.Recv(r-1, r, "fwd")
			errsCh <- err
		}()
	}
	time.Sleep(5 * time.Millisecond)
	w.Fail(1)
	for i := 0; i < 3; i++ {
		select {
		case err := <-errsCh:
			if err == nil {
				t.Fatal("Recv with no sender returned nil")
			}
			var de *DeadRankError
			var te *CollectiveTimeoutError
			if !errors.As(err, &de) && !errors.As(err, &te) {
				t.Fatalf("untyped error from blocked Recv: %v", err)
			}
		case <-time.After(10 * deadline):
			t.Fatal("pipeline still blocked long after deadline + cascade")
		}
	}
	// A fresh Recv involving the dead rank fails immediately and names it.
	var de *DeadRankError
	if _, err := w.Recv(1, 2, "fwd"); !errors.As(err, &de) {
		t.Fatalf("Recv from dead sender: got %v, want *DeadRankError", err)
	}
	// In-flight traffic from a rank that dies afterwards is not lost:
	// the buffered message still delivers, and only then does death win.
	m := tensor.New(1, 1)
	if err := w.Send(3, 2, "back", m); err != nil {
		t.Fatalf("send to live rank: %v", err)
	}
	w.Fail(3)
	if _, err := w.Recv(3, 2, "back"); err != nil {
		t.Fatalf("buffered message from dead sender must still deliver: %v", err)
	}
	if _, err := w.Recv(3, 2, "back"); !errors.As(err, &de) {
		t.Fatalf("drained mailbox of dead sender: got %v, want *DeadRankError", err)
	}
}
