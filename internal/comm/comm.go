// Package comm provides the collective-communication layer of the
// numeric runtime: a miniature in-process NCCL where devices are
// goroutines and transports are channels. The runtime's data-,
// tensor- and pipeline-parallel executors are SPMD programs whose
// ranks synchronize exclusively through a World.
package comm

import (
	"fmt"
	"sync"

	"aceso/internal/tensor"
)

// World connects n ranks. All collective calls are group-scoped: every
// member of the group must call with the same group and op sequence,
// or the collective deadlocks (as a real NCCL communicator would).
type World struct {
	n  int
	mu sync.Mutex
	// In-flight rendezvous per group key; removed on completion so
	// consecutive collectives on the same group start fresh.
	points map[string]*rendezvous
	// p2p mailboxes keyed by (from, to, tag).
	mail map[mailKey]chan *tensor.Mat
}

type mailKey struct {
	from, to int
	tag      string
}

type rendezvous struct {
	want    int
	entered int
	inputs  []*tensor.Mat
	ranks   []int
	done    chan struct{}
	outputs map[int]*tensor.Mat
}

// InvalidWorldSizeError reports a World requested with a non-positive
// rank count.
type InvalidWorldSizeError struct{ Size int }

// Error implements the error interface.
func (e *InvalidWorldSizeError) Error() string {
	return fmt.Sprintf("comm: invalid world size %d", e.Size)
}

// NewWorld returns a communicator over n ranks. A non-positive n is a
// configuration error reported to the caller, not a panic: the rank
// count comes from user-supplied configurations, which must never be
// able to take the process down.
func NewWorld(n int) (*World, error) {
	if n <= 0 {
		return nil, &InvalidWorldSizeError{Size: n}
	}
	return &World{
		n:      n,
		points: make(map[string]*rendezvous),
		mail:   make(map[mailKey]chan *tensor.Mat),
	}, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// enter joins rank's collective on group, contributing in; it blocks
// until all members arrive and returns the rendezvous for reduction.
func (w *World) enter(group []int, rank int, in *tensor.Mat) *rendezvous {
	key := fmt.Sprint(group)
	w.mu.Lock()
	r, ok := w.points[key]
	if !ok {
		r = &rendezvous{
			want:    len(group),
			done:    make(chan struct{}),
			outputs: make(map[int]*tensor.Mat),
		}
		w.points[key] = r
	}
	r.entered++
	r.inputs = append(r.inputs, in)
	r.ranks = append(r.ranks, rank)
	last := r.entered == r.want
	if last {
		// This rendezvous is complete; detach it so the next collective
		// on the same group starts fresh.
		delete(w.points, key)
	}
	w.mu.Unlock()
	if last {
		return r
	}
	<-r.done
	return r
}

// AllReduceSum sums the contributions of every rank in group and
// returns the result to each caller. Must be called by every member.
func (w *World) AllReduceSum(group []int, rank int, in *tensor.Mat) *tensor.Mat {
	r := w.enter(group, rank, in)
	if r.entered == r.want && !closed(r.done) {
		// The completing rank reduces.
		sum := r.inputs[0].Clone()
		for _, m := range r.inputs[1:] {
			tensor.AddInPlace(sum, m)
		}
		for _, rk := range r.ranks {
			r.outputs[rk] = sum
		}
		close(r.done)
	}
	<-r.done
	return r.outputs[rank].Clone()
}

// AllGatherCols concatenates each rank's column shard in group-rank
// order and returns the full matrix to every caller.
func (w *World) AllGatherCols(group []int, rank int, in *tensor.Mat) *tensor.Mat {
	r := w.enter(group, rank, in)
	if r.entered == r.want && !closed(r.done) {
		// Order contributions by position within the group.
		byRank := map[int]*tensor.Mat{}
		for i, rk := range r.ranks {
			byRank[rk] = r.inputs[i]
		}
		parts := make([]*tensor.Mat, 0, len(group))
		for _, rk := range group {
			parts = append(parts, byRank[rk])
		}
		full := tensor.ConcatCols(parts...)
		for _, rk := range r.ranks {
			r.outputs[rk] = full
		}
		close(r.done)
	}
	<-r.done
	return r.outputs[rank].Clone()
}

func closed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// Send transfers m from rank `from` to rank `to` under a tag
// (pipeline-stage boundary traffic). Buffered: Send does not block.
func (w *World) Send(from, to int, tag string, m *tensor.Mat) {
	w.box(from, to, tag) <- m.Clone()
}

// Recv blocks until the matching Send arrives.
func (w *World) Recv(from, to int, tag string) *tensor.Mat {
	return <-w.box(from, to, tag)
}

func (w *World) box(from, to int, tag string) chan *tensor.Mat {
	key := mailKey{from, to, tag}
	w.mu.Lock()
	defer w.mu.Unlock()
	ch, ok := w.mail[key]
	if !ok {
		ch = make(chan *tensor.Mat, 1024)
		w.mail[key] = ch
	}
	return ch
}
