// Package comm provides the collective-communication layer of the
// numeric runtime: a miniature in-process NCCL where devices are
// goroutines and transports are channels. The runtime's data-,
// tensor- and pipeline-parallel executors are SPMD programs whose
// ranks synchronize exclusively through a World.
//
// Fault semantics: a World tracks dead ranks (Fail/FailRange) and an
// optional per-operation deadline (SetDeadline). A collective that
// involves a dead rank — or that waits past the deadline for a rank
// that never arrives — returns a typed error (*DeadRankError,
// *CollectiveTimeoutError) instead of blocking forever. This is what
// lets the elastic runtime surface a device loss as a diagnosable
// error at an iteration boundary rather than a deadlocked process.
package comm

import (
	"fmt"
	"sync"
	"time"

	"aceso/internal/tensor"
)

// World connects n ranks. All collective calls are group-scoped: every
// member of the group must call with the same group and op sequence,
// or the collective deadlocks (as a real NCCL communicator would) —
// bounded by the per-op deadline when one is set.
type World struct {
	n        int
	deadline time.Duration

	mu sync.Mutex
	// In-flight rendezvous per group key; removed on completion so
	// consecutive collectives on the same group start fresh.
	points map[string]*rendezvous
	// p2p mailboxes keyed by (from, to, tag).
	mail map[mailKey]chan *tensor.Mat
	// dead marks failed ranks; failCh is closed (and replaced) on every
	// Fail so blocked waiters can re-check their peers.
	dead   map[int]bool
	failCh chan struct{}
}

type mailKey struct {
	from, to int
	tag      string
}

type rendezvous struct {
	want    int
	entered int
	inputs  []*tensor.Mat
	ranks   []int
	done    chan struct{}
	outputs map[int]*tensor.Mat
}

// InvalidWorldSizeError reports a World requested with a non-positive
// rank count.
type InvalidWorldSizeError struct{ Size int }

// Error implements the error interface.
func (e *InvalidWorldSizeError) Error() string {
	return fmt.Sprintf("comm: invalid world size %d", e.Size)
}

// CollectiveTimeoutError reports an operation that waited past the
// World's per-op deadline for a peer that never arrived — the fail-fast
// replacement for an indefinitely blocked collective.
type CollectiveTimeoutError struct {
	Op     string // "all-reduce" | "all-gather" | "send" | "recv"
	Rank   int    // the rank that timed out
	Waited time.Duration
}

// Error implements the error interface.
func (e *CollectiveTimeoutError) Error() string {
	return fmt.Sprintf("comm: %s on rank %d timed out after %v (peer missing or stalled)",
		e.Op, e.Rank, e.Waited)
}

// DeadRankError reports an operation that involves a rank previously
// marked dead with Fail. Unlike a timeout it is immediate: the faulty
// peer is known, not merely suspected.
type DeadRankError struct {
	Op   string
	Rank int // the rank attempting the operation
	Dead int // the dead peer
}

// Error implements the error interface.
func (e *DeadRankError) Error() string {
	return fmt.Sprintf("comm: %s on rank %d involves dead rank %d", e.Op, e.Rank, e.Dead)
}

// NewWorld returns a communicator over n ranks. A non-positive n is a
// configuration error reported to the caller, not a panic: the rank
// count comes from user-supplied configurations, which must never be
// able to take the process down.
func NewWorld(n int) (*World, error) {
	if n <= 0 {
		return nil, &InvalidWorldSizeError{Size: n}
	}
	return &World{
		n:      n,
		points: make(map[string]*rendezvous),
		mail:   make(map[mailKey]chan *tensor.Mat),
		dead:   make(map[int]bool),
		failCh: make(chan struct{}),
	}, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// SetDeadline bounds every subsequent collective/p2p wait: an operation
// that blocks longer returns *CollectiveTimeoutError. Zero (the
// default) means wait forever. Must be set before the ranks start
// communicating; it is not synchronized against in-flight operations.
func (w *World) SetDeadline(d time.Duration) { w.deadline = d }

// Fail marks ranks as dead and wakes every blocked waiter so that
// operations involving the dead ranks return *DeadRankError.
func (w *World) Fail(ranks ...int) {
	w.mu.Lock()
	for _, r := range ranks {
		w.dead[r] = true
	}
	close(w.failCh)
	w.failCh = make(chan struct{})
	w.mu.Unlock()
}

// FailRange marks the contiguous rank range [first, first+size) dead.
func (w *World) FailRange(first, size int) {
	ranks := make([]int, 0, size)
	for r := first; r < first+size; r++ {
		ranks = append(ranks, r)
	}
	w.Fail(ranks...)
}

// Alive reports whether rank has not been marked dead.
func (w *World) Alive(rank int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.dead[rank]
}

// deadPeer returns the first dead rank among peers (or -1) and the
// current fail-broadcast channel, atomically.
func (w *World) deadPeer(peers []int) (int, chan struct{}) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, p := range peers {
		if w.dead[p] {
			return p, w.failCh
		}
	}
	return -1, w.failCh
}

// testTimeoutFired, when non-nil, runs after a deadline timer fires
// and before the timeout verdict is decided. Tests use it to land a
// completion inside that window and pin the completion-beats-timeout
// re-check below; it is nil outside tests.
var testTimeoutFired func()

// timeoutC returns a channel that fires at the deadline (nil = never)
// and the cleanup for its timer.
func (w *World) timeoutC() (<-chan time.Time, func()) {
	if w.deadline <= 0 {
		return nil, func() {}
	}
	t := time.NewTimer(w.deadline)
	return t.C, func() { t.Stop() }
}

// await blocks until done closes, a peer dies, or the deadline expires.
func (w *World) await(done <-chan struct{}, op string, rank int, peers []int) error {
	timeout, stop := w.timeoutC()
	defer stop()
	for {
		dead, failCh := w.deadPeer(peers)
		if dead >= 0 {
			return &DeadRankError{Op: op, Rank: rank, Dead: dead}
		}
		select {
		case <-done:
			return nil
		case <-failCh:
			// A rank died somewhere; loop to re-check our peers.
		case <-timeout:
			if f := testTimeoutFired; f != nil {
				f()
			}
			// Completion (or a known-dead peer) beats the timeout: when
			// the timer and the success condition are ready at the same
			// select, a random pick could manufacture a spurious timeout
			// for a collective that in fact completed — and during a
			// dead-rank cascade that would kill a stage that succeeded.
			select {
			case <-done:
				return nil
			default:
			}
			if dead, _ := w.deadPeer(peers); dead >= 0 {
				return &DeadRankError{Op: op, Rank: rank, Dead: dead}
			}
			return &CollectiveTimeoutError{Op: op, Rank: rank, Waited: w.deadline}
		}
	}
}

// enter joins rank's collective on group, contributing in; it blocks
// until all members arrive (or the wait fails) and returns the
// rendezvous for reduction.
func (w *World) enter(op string, group []int, rank int, in *tensor.Mat) (*rendezvous, error) {
	if dead, _ := w.deadPeer(group); dead >= 0 {
		return nil, &DeadRankError{Op: op, Rank: rank, Dead: dead}
	}
	key := fmt.Sprint(group)
	w.mu.Lock()
	r, ok := w.points[key]
	if !ok {
		r = &rendezvous{
			want:    len(group),
			done:    make(chan struct{}),
			outputs: make(map[int]*tensor.Mat),
		}
		w.points[key] = r
	}
	r.entered++
	r.inputs = append(r.inputs, in)
	r.ranks = append(r.ranks, rank)
	last := r.entered == r.want
	if last {
		// This rendezvous is complete; detach it so the next collective
		// on the same group starts fresh.
		delete(w.points, key)
	}
	w.mu.Unlock()
	if last {
		return r, nil
	}
	if err := w.await(r.done, op, rank, group); err != nil {
		return nil, err
	}
	return r, nil
}

// AllReduceSum sums the contributions of every rank in group and
// returns the result to each caller. Must be called by every member;
// a dead member fails the call with a typed error instead of blocking.
func (w *World) AllReduceSum(group []int, rank int, in *tensor.Mat) (*tensor.Mat, error) {
	r, err := w.enter("all-reduce", group, rank, in)
	if err != nil {
		return nil, err
	}
	if r.entered == r.want && !closed(r.done) {
		// The completing rank reduces.
		sum := r.inputs[0].Clone()
		for _, m := range r.inputs[1:] {
			tensor.AddInPlace(sum, m)
		}
		for _, rk := range r.ranks {
			r.outputs[rk] = sum
		}
		close(r.done)
	}
	<-r.done
	return r.outputs[rank].Clone(), nil
}

// AllGatherCols concatenates each rank's column shard in group-rank
// order and returns the full matrix to every caller.
func (w *World) AllGatherCols(group []int, rank int, in *tensor.Mat) (*tensor.Mat, error) {
	r, err := w.enter("all-gather", group, rank, in)
	if err != nil {
		return nil, err
	}
	if r.entered == r.want && !closed(r.done) {
		// Order contributions by position within the group.
		byRank := map[int]*tensor.Mat{}
		for i, rk := range r.ranks {
			byRank[rk] = r.inputs[i]
		}
		parts := make([]*tensor.Mat, 0, len(group))
		for _, rk := range group {
			parts = append(parts, byRank[rk])
		}
		full := tensor.ConcatCols(parts...)
		for _, rk := range r.ranks {
			r.outputs[rk] = full
		}
		close(r.done)
	}
	<-r.done
	return r.outputs[rank].Clone(), nil
}

func closed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// Send transfers m from rank `from` to rank `to` under a tag
// (pipeline-stage boundary traffic). Buffered: Send does not block
// unless the mailbox is full, in which case the deadline applies.
func (w *World) Send(from, to int, tag string, m *tensor.Mat) error {
	if dead, _ := w.deadPeer([]int{from, to}); dead >= 0 {
		return &DeadRankError{Op: "send", Rank: from, Dead: dead}
	}
	box := w.box(from, to, tag)
	payload := m.Clone()
	select {
	case box <- payload:
		return nil
	default:
	}
	timeout, stop := w.timeoutC()
	defer stop()
	for {
		dead, failCh := w.deadPeer([]int{from, to})
		if dead >= 0 {
			return &DeadRankError{Op: "send", Rank: from, Dead: dead}
		}
		select {
		case box <- payload:
			return nil
		case <-failCh:
		case <-timeout:
			if f := testTimeoutFired; f != nil {
				f()
			}
			// Delivery or a known-dead peer beats the timeout (see await).
			select {
			case box <- payload:
				return nil
			default:
			}
			if dead, _ := w.deadPeer([]int{from, to}); dead >= 0 {
				return &DeadRankError{Op: "send", Rank: from, Dead: dead}
			}
			return &CollectiveTimeoutError{Op: "send", Rank: from, Waited: w.deadline}
		}
	}
}

// Recv blocks until the matching Send arrives, the sender dies, or the
// deadline expires. A message already buffered before the sender died
// is still delivered — p2p traffic in flight at the moment of failure
// is not lost.
func (w *World) Recv(from, to int, tag string) (*tensor.Mat, error) {
	box := w.box(from, to, tag)
	// Drain an already-delivered message first, even from a dead sender.
	select {
	case m := <-box:
		return m, nil
	default:
	}
	timeout, stop := w.timeoutC()
	defer stop()
	for {
		dead, failCh := w.deadPeer([]int{from})
		if dead >= 0 {
			// One last non-blocking drain: Fail may have raced the Send.
			select {
			case m := <-box:
				return m, nil
			default:
			}
			return nil, &DeadRankError{Op: "recv", Rank: to, Dead: dead}
		}
		select {
		case m := <-box:
			return m, nil
		case <-failCh:
		case <-timeout:
			if f := testTimeoutFired; f != nil {
				f()
			}
			// An already-buffered message or a known-dead sender beats the
			// timeout (see await); in-flight traffic is never lost.
			select {
			case m := <-box:
				return m, nil
			default:
			}
			if dead, _ := w.deadPeer([]int{from}); dead >= 0 {
				return nil, &DeadRankError{Op: "recv", Rank: to, Dead: dead}
			}
			return nil, &CollectiveTimeoutError{Op: "recv", Rank: to, Waited: w.deadline}
		}
	}
}

func (w *World) box(from, to int, tag string) chan *tensor.Mat {
	key := mailKey{from, to, tag}
	w.mu.Lock()
	defer w.mu.Unlock()
	ch, ok := w.mail[key]
	if !ok {
		ch = make(chan *tensor.Mat, 1024)
		w.mail[key] = ch
	}
	return ch
}
