package perfmodel

import (
	"fmt"

	"aceso/internal/config"
)

// EvalStage evaluates a hypothetical pipeline stage with uniform
// settings — the building block of the dynamic-programming baselines,
// which enumerate stages without materializing full configurations.
//
//	start, end  operator range [start, end)
//	devices     devices assigned to the stage (power of two)
//	tp, dp      uniform tensor/data parallelism (tp·dp == devices)
//	recompute   recompute every op in the stage
//	microBatch  aggregate microbatch size (dp must divide it)
//	firstDev    global rank of the stage's first device
//	inflight    stashed microbatches (Eq. 1's p−i term)
//	prevDevices devices of the preceding stage (0 when first)
func (m *Model) EvalStage(start, end, devices, tp, dp int, recompute bool,
	microBatch, firstDev, inflight, prevDevices int) (StageMetrics, error) {

	switch {
	case start < 0 || end <= start || end > len(m.Graph.Ops):
		return StageMetrics{}, fmt.Errorf("perfmodel: bad op range [%d, %d)", start, end)
	case tp*dp != devices || !config.IsPow2(tp) || !config.IsPow2(dp):
		return StageMetrics{}, fmt.Errorf("perfmodel: tp %d · dp %d != devices %d (or not powers of two)", tp, dp, devices)
	case microBatch <= 0 || microBatch%dp != 0:
		return StageMetrics{}, fmt.Errorf("perfmodel: dp %d does not divide microbatch %d", dp, microBatch)
	case inflight < 1:
		return StageMetrics{}, fmt.Errorf("perfmodel: inflight %d < 1", inflight)
	}
	st := config.Stage{Start: start, End: end, Devices: devices}
	st.Ops = make([]config.OpSetting, end-start)
	for j := range st.Ops {
		st.Ops[j] = config.OpSetting{TP: tp, DP: dp, Recompute: recompute}
	}
	// Route through the shared stage memo: the DP baselines enumerate
	// the same (range, tp, dp) stages under many pipeline contexts.
	sm := m.stageMetrics(&st, microBatch, firstDev, inflight, prevDevices)
	// CapMem depends on the device range, not the stage contents, so
	// it is filled outside the memoized value (exactly as Estimate
	// does).
	sm.CapMem = m.Cluster.RangeMemory(firstDev, devices)
	return sm, nil
}

// ComposePipeline turns per-stage metrics into an Estimate for a
// pipeline executing n microbatches per iteration: Eq. 2 timing plus
// the per-stage memory-feasibility verdicts of Estimate.
func (m *Model) ComposePipeline(stages []StageMetrics, n int) *Estimate {
	est := &Estimate{
		Stages:       append([]StageMetrics(nil), stages...),
		OOMStage:     -1,
		Feasible:     true,
		Microbatches: n,
	}
	firstDev := 0
	for i := range est.Stages {
		sm := &est.Stages[i]
		est.Devices += sm.Devices
		if sm.CapMem == 0 {
			// Capacity of the devices this stage lands on — the class
			// floor, not the cluster-wide envelope.
			sm.CapMem = m.Cluster.RangeMemory(firstDev, sm.Devices)
		}
		firstDev += sm.Devices
		if sm.PeakMem > sm.CapMem {
			est.Feasible = false
			if est.OOMStage < 0 || sm.PeakMem > est.Stages[est.OOMStage].PeakMem {
				est.OOMStage = i
			}
		}
		if sm.PeakMem > est.PeakMem {
			est.PeakMem = sm.PeakMem
		}
	}
	m.composeIterTime(est, n)
	return est
}
