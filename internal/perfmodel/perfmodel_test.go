package perfmodel

import (
	"errors"
	"testing"
	"testing/quick"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
)

func newModel(t *testing.T, g *model.Graph, devices int) *Model {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return New(g, hardware.DGX1V100(4).Restrict(devices), 1)
}

func balanced(t *testing.T, g *model.Graph, devices, stages, mbs int) *config.Config {
	t.Helper()
	c, err := config.Balanced(g, devices, stages, mbs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEstimateDeterministic(t *testing.T) {
	g, _ := model.GPT3("350M")
	m := newModel(t, g, 4)
	c := balanced(t, g, 4, 2, 1)
	a, b := m.Estimate(c), m.Estimate(c)
	if a.IterTime != b.IterTime || a.PeakMem != b.PeakMem {
		t.Errorf("Estimate not deterministic: %v/%v vs %v/%v",
			a.IterTime, a.PeakMem, b.IterTime, b.PeakMem)
	}
}

func TestSingleStageIterTime(t *testing.T) {
	// For p=1 the Eq.2 decomposition degenerates to N·(f+b)+sync.
	g := model.Uniform(8, 1e11, 1e7, 1e6, 64)
	m := newModel(t, g, 4)
	c := balanced(t, g, 4, 1, 4)
	e := m.Estimate(c)
	s := e.Stages[0]
	want := float64(e.Microbatches)*(s.FwdTime+s.BwdTime) + s.DPSync
	if diff := e.IterTime/want - 1; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("IterTime = %v, want %v", e.IterTime, want)
	}
	if e.Microbatches != 16 {
		t.Errorf("Microbatches = %d, want 16", e.Microbatches)
	}
}

func TestSteadyStateLowerBound(t *testing.T) {
	// Invariant 5: iteration time ≥ N · max(f+b).
	g, _ := model.GPT3("350M")
	m := newModel(t, g, 8)
	for _, stages := range []int{1, 2, 4} {
		c := balanced(t, g, 8, stages, 2)
		e := m.Estimate(c)
		var worst float64
		for i := range e.Stages {
			if fb := e.Stages[i].FwdTime + e.Stages[i].BwdTime; fb > worst {
				worst = fb
			}
		}
		if lb := float64(e.Microbatches) * worst; e.IterTime < lb*(1-1e-12) {
			t.Errorf("%d stages: IterTime %v below steady-state bound %v", stages, e.IterTime, lb)
		}
	}
}

func TestEq1EarlierStagesStashMore(t *testing.T) {
	// Invariant 5: with identical stages, activation pressure (and so
	// peak memory) decreases with stage index.
	g := model.Uniform(16, 1e11, 1e7, 1e7, 64)
	m := newModel(t, g, 4)
	c := balanced(t, g, 4, 4, 4)
	e := m.Estimate(c)
	for i := 1; i < 4; i++ {
		if e.Stages[i].PeakMem >= e.Stages[i-1].PeakMem {
			t.Errorf("stage %d peak (%v) should be below stage %d (%v)",
				i, e.Stages[i].PeakMem, i-1, e.Stages[i-1].PeakMem)
		}
	}
}

func TestRecomputationTradesMemoryForTime(t *testing.T) {
	// Invariant 4: recomputation never increases memory, never
	// decreases stage backward time.
	g, _ := model.GPT3("1.3B")
	m := newModel(t, g, 4)
	plain := balanced(t, g, 4, 2, 1)
	rc := plain.Clone()
	rc.MutStage(0, func(st *config.Stage) {
		for j := range st.Ops {
			st.Ops[j].Recompute = true
		}
	})
	pe, re := m.Estimate(plain), m.Estimate(rc)
	if re.Stages[0].PeakMem >= pe.Stages[0].PeakMem {
		t.Errorf("recompute peak %v should be below plain %v",
			re.Stages[0].PeakMem, pe.Stages[0].PeakMem)
	}
	if re.Stages[0].BwdTime <= pe.Stages[0].BwdTime {
		t.Errorf("recompute bwd %v should exceed plain %v",
			re.Stages[0].BwdTime, pe.Stages[0].BwdTime)
	}
	if re.Stages[0].Recomp <= 0 {
		t.Error("Recomp share not recorded")
	}
	// Stage 1 untouched.
	if re.Stages[1].PeakMem != pe.Stages[1].PeakMem {
		t.Error("recompute in stage 0 changed stage 1 memory")
	}
}

func TestTensorParallelismReducesMemory(t *testing.T) {
	g, _ := model.GPT3("1.3B")
	m := newModel(t, g, 8)
	tp8 := balanced(t, g, 8, 1, 8) // tp=8 dp=1
	dp8 := tp8.Clone()
	dp8.MutStage(0, func(st *config.Stage) {
		for j := range st.Ops {
			st.Ops[j] = config.OpSetting{TP: 1, DP: 8, Dim: 0}
		}
	})
	te, de := m.Estimate(tp8), m.Estimate(dp8)
	if te.PeakMem >= de.PeakMem {
		t.Errorf("tp8 peak (%v) should be below dp8 peak (%v): tp shards params",
			te.PeakMem, de.PeakMem)
	}
}

func TestDataParallelSyncCost(t *testing.T) {
	g := model.Uniform(8, 1e11, 1e8, 1e6, 64)
	m := newModel(t, g, 8)
	c := balanced(t, g, 8, 1, 8)
	for j := range c.Stages[0].Ops {
		c.Stages[0].Ops[j] = config.OpSetting{TP: 1, DP: 8, Dim: 0}
	}
	e := m.Estimate(c)
	if e.Stages[0].DPSync <= 0 {
		t.Error("dp=8 should incur gradient sync cost")
	}
	solo := balanced(t, g, 8, 1, 8) // tp=8: no dp sync
	se := m.Estimate(solo)
	if se.Stages[0].DPSync != 0 {
		t.Errorf("tp-only stage has DPSync = %v, want 0", se.Stages[0].DPSync)
	}
}

func TestOOMDetection(t *testing.T) {
	g, _ := model.GPT3("13B")
	m := newModel(t, g, 4)
	c := balanced(t, g, 4, 1, 1)
	e := m.Estimate(c)
	if e.Feasible {
		t.Fatal("13B on 4 GPUs without pipeline/recompute should be infeasible")
	}
	if e.OOMStage != 0 {
		t.Errorf("OOMStage = %d, want 0", e.OOMStage)
	}
	if e.Throughput(g.GlobalBatch) != 0 {
		t.Error("infeasible config should have zero throughput")
	}
}

func TestThroughputAndTFLOPS(t *testing.T) {
	g, _ := model.GPT3("350M")
	m := newModel(t, g, 4)
	c := balanced(t, g, 4, 2, 1)
	e := m.Estimate(c)
	if !e.Feasible {
		t.Fatal("expected feasible")
	}
	tput := e.Throughput(g.GlobalBatch)
	if tput <= 0 {
		t.Fatalf("Throughput = %v", tput)
	}
	tf := m.EffectiveTFLOPS(e)
	// V100 fp16 peak is 125; effective must be positive and below peak.
	if tf <= 0 || tf >= 125 {
		t.Errorf("EffectiveTFLOPS = %v, want (0, 125)", tf)
	}
}

func TestMorePipelineStagesCutMemory(t *testing.T) {
	g, _ := model.GPT3("2.6B")
	m := newModel(t, g, 8)
	e1 := m.Estimate(balanced(t, g, 8, 1, 1))
	e4 := m.Estimate(balanced(t, g, 8, 4, 1))
	// 4 stages shard parameters across the pipeline; per-device param
	// memory must drop even though tp per stage is smaller.
	p1 := e1.Stages[0].ParamMem + e1.Stages[0].OptMem
	var p4 float64
	for i := range e4.Stages {
		if v := e4.Stages[i].ParamMem + e4.Stages[i].OptMem; v > p4 {
			p4 = v
		}
	}
	if p4 >= p1*1.2 {
		t.Errorf("4-stage worst param+opt mem %v should not exceed 1-stage %v", p4, p1)
	}
}

func TestTPCommTrackedForTransformers(t *testing.T) {
	g, _ := model.GPT3("350M")
	m := newModel(t, g, 4)
	c := balanced(t, g, 4, 1, 1) // tp=4
	e := m.Estimate(c)
	if e.Stages[0].TPComm <= 0 {
		t.Error("tp=4 transformer should record tensor-parallel comm time")
	}
	dp := c.Clone()
	dp.MutStage(0, func(st *config.Stage) {
		for j := range st.Ops {
			st.Ops[j] = config.OpSetting{TP: 1, DP: 4, Dim: 0}
		}
	})
	de := m.Estimate(dp)
	if de.Stages[0].TPComm != 0 {
		t.Errorf("tp=1 stage has TPComm = %v, want 0", de.Stages[0].TPComm)
	}
}

func TestP2PBetweenStages(t *testing.T) {
	g, _ := model.GPT3("350M")
	m := newModel(t, g, 4)
	c := balanced(t, g, 4, 2, 1)
	e := m.Estimate(c)
	if e.Stages[0].P2P != 0 {
		t.Errorf("stage 0 has inbound P2P = %v, want 0", e.Stages[0].P2P)
	}
	if e.Stages[1].P2P <= 0 {
		t.Error("stage 1 should pay boundary communication")
	}
}

func TestCompCommDecomposition(t *testing.T) {
	g, _ := model.GPT3("350M")
	m := newModel(t, g, 8)
	c := balanced(t, g, 8, 2, 2)
	e := m.Estimate(c)
	for i := range e.Stages {
		s := &e.Stages[i]
		if s.CompTime() <= 0 {
			t.Errorf("stage %d CompTime = %v, want > 0", i, s.CompTime())
		}
		if s.CommTime(e.Microbatches) < 0 {
			t.Errorf("stage %d CommTime negative", i)
		}
		total := s.CompTime() + s.TPComm + s.P2P + s.Recomp + s.ReshardComm
		if diff := total/(s.FwdTime+s.BwdTime) - 1; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("stage %d decomposition does not add up", i)
		}
	}
}

// Property: doubling the microbatch size never reduces per-microbatch
// stage time and never reduces activation memory per microbatch.
func TestMicrobatchMonotonicity(t *testing.T) {
	g, _ := model.GPT3("350M")
	m := newModel(t, g, 4)
	f := func(mbsExp uint8) bool {
		mbs := 1 << (mbsExp % 5) // 1..16
		c1 := balanced(t, g, 4, 2, mbs)
		c2 := balanced(t, g, 4, 2, mbs*2)
		e1, e2 := m.Estimate(c1), m.Estimate(c2)
		for i := range e1.Stages {
			if e2.Stages[i].FwdTime < e1.Stages[i].FwdTime {
				return false
			}
			if e2.Stages[i].ActPerMB < e1.Stages[i].ActPerMB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: estimates are strictly positive and finite for any valid
// balanced configuration.
func TestEstimateWellFormed(t *testing.T) {
	g, _ := model.T5("770M")
	m := newModel(t, g, 16)
	f := func(stRaw, mbsRaw uint8) bool {
		stages := 1 << (stRaw % 4) // 1,2,4,8
		mbs := 1 << (mbsRaw % 4)   // 1..8
		c, err := config.Balanced(g, 16, stages, mbs)
		if err != nil {
			return true
		}
		e := m.Estimate(c)
		if e.IterTime <= 0 || e.PeakMem <= 0 {
			return false
		}
		for i := range e.Stages {
			s := &e.Stages[i]
			if s.FwdTime <= 0 || s.BwdTime <= 0 || s.PeakMem <= 0 || s.StageTime <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestZeroMicrobatchConfigInfeasible(t *testing.T) {
	// Regression (PR 4, found by diffcheck): a degenerate config whose
	// micro-batch exceeds the global batch executes zero microbatches —
	// zero work per iteration. Estimate historically returned a
	// finite-IterTime Feasible:true estimate for it (warm-up-only Eq. 2)
	// while pipesim rejected the same config with an error, so the
	// search could score "do nothing" as a win.
	g := model.Uniform(8, 1e11, 1e7, 1e6, 64) // GlobalBatch 64
	m := newModel(t, g, 4)
	c := balanced(t, g, 4, 2, 1)
	c.SetMicroBatch(128) // > GlobalBatch → zero microbatches
	if n := c.NumMicrobatches(g.GlobalBatch); n != 0 {
		t.Fatalf("setup: NumMicrobatches = %d, want 0", n)
	}
	e := m.Estimate(c)
	if e.Feasible {
		t.Error("zero-work estimate must be infeasible")
	}
	if e.Microbatches != 0 {
		t.Errorf("Microbatches = %d, want 0", e.Microbatches)
	}

	// EstimateChecked surfaces the typed error.
	_, err := m.EstimateChecked(c)
	var nmb *NoMicrobatchesError
	if !errors.As(err, &nmb) {
		t.Fatalf("EstimateChecked error = %v, want *NoMicrobatchesError", err)
	}
	if nmb.MicroBatch != 128 || nmb.GlobalBatch != 64 {
		t.Errorf("error payload = %+v, want {128 64}", nmb)
	}
}
