package perfmodel

// EstArena bump-allocates Estimates and their StageMetrics backing for
// one search. The searcher memoizes every estimate by config hash and
// never releases one individually (eviction would re-count explored
// configurations), so the natural allocator is a bump arena: carve
// each Estimate and its Stages window out of chunks, drop everything
// at end of search. This collapses the search's two largest remaining
// allocation sites (≈45% of allocated objects: one Estimate plus one
// StageMetrics slice per unique candidate) into a handful of chunk
// allocations.
//
// An EstArena is single-goroutine state owned by one searcher; chunks
// are never reused within a lifetime, so carved memory starts zeroed
// and escapes safely into the searcher's estimate cache.
type EstArena struct {
	ests []Estimate
	sm   []StageMetrics
}

const (
	estChunk = 1024
	smChunk  = 8192
)

// alloc returns a zeroed *Estimate with a zeroed p-entry Stages slice
// (cap==len, so an append would reallocate rather than clobber the
// next carve). A nil receiver degrades to plain allocation, keeping
// every non-search caller of the model allocation-compatible.
func (a *EstArena) alloc(p int) *Estimate {
	if a == nil {
		return &Estimate{Stages: make([]StageMetrics, p)}
	}
	if len(a.ests) == cap(a.ests) {
		a.ests = make([]Estimate, 0, estChunk)
	}
	a.ests = a.ests[:len(a.ests)+1]
	e := &a.ests[len(a.ests)-1]
	if len(a.sm)+p > cap(a.sm) {
		n := smChunk
		if p > n {
			n = p
		}
		a.sm = make([]StageMetrics, 0, n)
	}
	lo := len(a.sm)
	a.sm = a.sm[:lo+p]
	e.Stages = a.sm[lo : lo+p : lo+p]
	return e
}
