package perfmodel

import "aceso/internal/config"

// Batch evaluates many candidate configurations against one shared
// base configuration in a single pass each: the per-stage cache keys
// of the base are computed once (BeginBatch), and a candidate's stages
// whose keys match the base's are copied from the base estimate
// instead of re-derived through the stage cache's map-and-lock path.
//
// This is the "batched stage estimation" of DESIGN.md §5g: the
// multi-hop search evaluates all candidate primitives of one
// bottleneck against the same base configuration, and a primitive
// mutates only one or two stages — so almost every stage of every
// candidate is a memcpy of base metrics plus shared profiler lookups
// already folded into them.
//
// Bitwise equivalence: StageMetrics is a pure function of the stage
// key (the profiler is deterministic), so copying the base's metrics
// for an equal key yields exactly the bytes Model.Estimate would have
// produced — including CapMem, which is a function of (firstDev,
// Devices), both pinned by the key. The aggregation and Eq. 2
// composition below mirror Model.Estimate statement for statement.
//
// A Batch is single-goroutine state owned by one searcher; the
// underlying Model remains shared and thread-safe.
type Batch struct {
	m     *Model
	base  *Estimate
	arena *EstArena
	mbs   int
	keys  []stageKey

	// copied/evaluated count per-stage outcomes across the batch's
	// lifetime (copied from base vs routed through stageMetrics).
	copied, evaluated uint64
}

// BeginBatch (re)initializes b to evaluate candidates against the
// base configuration cfg and its estimate est (which must be
// m.Estimate(cfg)'s result). Results are carved out of arena (nil
// degrades to plain allocation). The key slice is reused across
// re-initializations, so a searcher can keep one Batch per recursion
// depth with no per-node allocation.
func (m *Model) BeginBatch(b *Batch, cfg *config.Config, est *Estimate, arena *EstArena) {
	b.m = m
	b.base = est
	b.arena = arena
	b.mbs = cfg.MicroBatch
	p := cfg.NumStages()
	if cap(b.keys) >= p {
		b.keys = b.keys[:p]
	} else {
		b.keys = make([]stageKey, p)
	}
	n := est.Microbatches
	firstDev := 0
	for si := range cfg.Stages {
		st := &cfg.Stages[si]
		inflight := p - si
		if inflight > n {
			inflight = n
		}
		prevDevices := 0
		if si > 0 {
			prevDevices = cfg.Stages[si-1].Devices
		}
		b.keys[si] = stageKey{st.SubHash(), cfg.MicroBatch, firstDev, inflight, prevDevices}
		firstDev += st.Devices
	}
}

// Stats returns how many candidate stages were copied from the base
// estimate vs evaluated through the stage cache.
func (b *Batch) Stats() (copied, evaluated uint64) { return b.copied, b.evaluated }

// Estimate predicts cfg, reusing the base estimate's per-stage metrics
// wherever cfg's stage keys equal the base's. Candidates with a
// different pipeline depth or microbatch size — or a model running in
// DisableStageCache reference mode — fall back to the full path; the
// result is identical either way.
func (b *Batch) Estimate(cfg *config.Config) *Estimate {
	m := b.m
	if b.base == nil || m.DisableStageCache || cfg.NumStages() != len(b.keys) || cfg.MicroBatch != b.mbs {
		return m.EstimateIn(cfg, b.arena)
	}
	g := m.Graph
	p := cfg.NumStages()
	n := cfg.NumMicrobatches(g.GlobalBatch)

	est := b.arena.alloc(p)
	est.OOMStage = -1
	est.Feasible = true
	est.Microbatches = n
	if n <= 0 {
		est.Feasible = false
	}
	firstDev := 0
	for si := range cfg.Stages {
		st := &cfg.Stages[si]
		inflight := p - si
		if inflight > n {
			inflight = n
		}
		prevDevices := 0
		if si > 0 {
			prevDevices = cfg.Stages[si-1].Devices
		}
		key := stageKey{st.SubHash(), cfg.MicroBatch, firstDev, inflight, prevDevices}
		if key == b.keys[si] {
			b.copied++
			est.Stages[si] = b.base.Stages[si] // includes CapMem and Devices
		} else {
			b.evaluated++
			est.Stages[si] = m.stageMetrics(st, cfg.MicroBatch, firstDev, inflight, prevDevices)
			est.Stages[si].CapMem = m.Cluster.RangeMemory(firstDev, st.Devices)
		}
		firstDev += st.Devices
		est.Devices += st.Devices
		sm := &est.Stages[si]
		if sm.PeakMem > sm.CapMem {
			est.Feasible = false
			if est.OOMStage < 0 || sm.PeakMem > est.Stages[est.OOMStage].PeakMem {
				est.OOMStage = si
			}
		}
		if sm.PeakMem > est.PeakMem {
			est.PeakMem = sm.PeakMem
		}
	}
	m.composeIterTime(est, n)
	return est
}
