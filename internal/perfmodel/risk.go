package perfmodel

import "math"

// Risk model for spot/preemptible capacity. A plan running on devices
// with a Poisson preemption hazard does not deliver its nominal
// iteration time: each preemption costs a fixed recovery (replan +
// reshard + restore) plus the re-execution of every step since the last
// checkpoint — on average half a checkpoint interval. The planner
// therefore optimizes the *expected* iteration time
//
//	ExpectedIterTime = IterTime × Rework(hazard, cadence, recovery)
//	                 + checkpointCost / cadence
//
// and reports the cadence minimizing it (the Young–Daly optimum).
// Hazard rates here are per *second* — callers convert from the
// per-hour rates hardware.DeviceClass carries.

// Rework returns the multiplicative inflation of iteration time under
// a Poisson preemption hazard (events per second over the whole plan)
// when checkpoints are taken every cadence iterations of iterTime
// seconds and each preemption costs recovery seconds on top of the
// lost work. Expected events per iteration are hazard·iterTime; each
// costs recovery plus on average cadence·iterTime/2 of re-executed
// steps, so
//
//	Rework = 1 + hazard·(recovery + cadence·iterTime/2)
//
// Hazard-free (or degenerate) inputs return exactly 1, and the factor
// is monotone non-decreasing in hazard, cadence, iterTime and
// recovery.
func Rework(hazardPerSec float64, cadence int, iterTime, recovery float64) float64 {
	if hazardPerSec <= 0 || iterTime <= 0 || !finite(hazardPerSec) {
		return 1
	}
	if cadence < 1 {
		cadence = 1
	}
	if recovery < 0 {
		recovery = 0
	}
	return 1 + hazardPerSec*(recovery+0.5*float64(cadence)*iterTime)
}

// ExpectedIterTime returns the hazard-adjusted cost of one iteration:
// the nominal iterTime inflated by Rework plus the amortized
// checkpoint overhead ckptCost/cadence. With zero hazard and zero
// checkpoint cost it returns iterTime exactly.
func ExpectedIterTime(iterTime, hazardPerSec float64, cadence int, recovery, ckptCost float64) float64 {
	if cadence < 1 {
		cadence = 1
	}
	t := iterTime * Rework(hazardPerSec, cadence, iterTime, recovery)
	if ckptCost > 0 {
		t += ckptCost / float64(cadence)
	}
	return t
}

// RecommendedCadence returns the checkpoint cadence (iterations per
// checkpoint) minimizing ExpectedIterTime: the Young–Daly optimal
// interval τ* = sqrt(2·ckptCost/hazard) expressed in iterations and
// clamped to [1, maxCadence]. Hazard-free plans checkpoint as rarely
// as allowed (maxCadence); maxCadence ≤ 0 means uncapped.
func RecommendedCadence(hazardPerSec, iterTime, ckptCost float64, maxCadence int) int {
	if hazardPerSec <= 0 || iterTime <= 0 || !finite(hazardPerSec) {
		if maxCadence > 0 {
			return maxCadence
		}
		return 1
	}
	if ckptCost <= 0 {
		return 1 // free checkpoints: take one every iteration
	}
	k := int(math.Round(math.Sqrt(2*ckptCost/hazardPerSec) / iterTime))
	if k < 1 {
		k = 1
	}
	if maxCadence > 0 && k > maxCadence {
		k = maxCadence
	}
	return k
}

func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}
