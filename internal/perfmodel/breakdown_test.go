package perfmodel

import (
	"math"
	"testing"

	"aceso/internal/collective"
	"aceso/internal/config"
	"aceso/internal/model"
)

// mixedDPConfig builds a single-stage config on 4 devices whose dp
// degree changes mid-stage (tp4·dp1 then tp2·dp2) — the fine-tuning
// shape that triggers the mid-stage resample collective.
func mixedDPConfig(t *testing.T, g *model.Graph, mbs int) *config.Config {
	t.Helper()
	c := &config.Config{
		Stages:     []config.Stage{{Start: 0, End: len(g.Ops), Devices: 4}},
		MicroBatch: mbs,
	}
	c.Stages[0].Ops = make([]config.OpSetting, len(g.Ops))
	half := len(g.Ops) / 2
	for j := range c.Stages[0].Ops {
		if j < half {
			c.Stages[0].Ops[j] = config.OpSetting{TP: 4, DP: 1}
		} else {
			c.Stages[0].Ops[j] = config.OpSetting{TP: 2, DP: 2}
		}
	}
	if err := c.Validate(g, 4); err != nil {
		t.Fatal(err)
	}
	return c
}

// Regression for the resource-accounting bug that booked mid-stage
// dp-change resample traffic into TPComm: the cost is data-parallel
// reshard traffic and must live in its own ReshardComm bucket —
// included in CommTime, excluded from TPComm — or Heuristic-2's
// resource proportions steer the search on phantom tensor-parallel
// time.
func TestReshardCommBucket(t *testing.T) {
	g, _ := model.GPT3("350M")
	m := newModel(t, g, 4)
	c := mixedDPConfig(t, g, 2)
	e := m.Estimate(c)
	s := &e.Stages[0]

	if s.ReshardComm <= 0 {
		t.Fatalf("ReshardComm = %v, want > 0 for a mid-stage dp change", s.ReshardComm)
	}

	// Pin the bucket to the exact resample cost: one all-gather over
	// the whole stage group per direction (forward redistribution and
	// its mirrored backward), sized by the boundary activation.
	half := len(g.Ops) / 2
	prevAct := g.Ops[half-1].ActElems
	bpe := g.Precision.BytesPerElem()
	pl := collective.PlacementFor(&m.Cluster, 0, 4)
	want := 2 * m.Prof.AllGather(prevAct*float64(c.MicroBatch)*bpe/4, 0, 4, pl)
	if diff := s.ReshardComm/want - 1; math.Abs(diff) > 1e-9 {
		t.Errorf("ReshardComm = %v, want %v (the resample all-gather pair)", s.ReshardComm, want)
	}

	// TPComm must carry only genuine tensor-parallel collectives: a
	// uniform tp4·dp1 stage pays at least as much TP traffic per op,
	// so the mixed stage's TPComm staying below it proves the reshard
	// cost no longer leaks into the TP bucket.
	uni := balanced(t, g, 4, 1, 2) // tp=4 throughout
	ue := m.Estimate(uni)
	if s.TPComm >= ue.Stages[0].TPComm+want/2 {
		t.Errorf("TPComm = %v carries reshard traffic (uniform tp4 stage: %v)",
			s.TPComm, ue.Stages[0].TPComm)
	}

	// The breakdown identity and the CommTime contract.
	total := s.CompTime() + s.TPComm + s.P2P + s.Recomp + s.ReshardComm
	if diff := total/(s.FwdTime+s.BwdTime) - 1; math.Abs(diff) > 1e-9 {
		t.Errorf("breakdown does not add up: %v vs %v", total, s.FwdTime+s.BwdTime)
	}
	wantComm := s.TPComm + s.P2P + s.ReshardComm + s.DPSync/float64(e.Microbatches)
	if diff := s.CommTime(e.Microbatches)/wantComm - 1; math.Abs(diff) > 1e-9 {
		t.Errorf("CommTime = %v does not include ReshardComm (want %v)",
			s.CommTime(e.Microbatches), wantComm)
	}

	// Uniform-dp stages must not pay the bucket.
	if ue.Stages[0].ReshardComm != 0 {
		t.Errorf("uniform stage has ReshardComm = %v, want 0", ue.Stages[0].ReshardComm)
	}
}

// Regression for EffectiveTFLOPS dividing by the cluster's total
// device count even when the estimated configuration spans fewer
// devices (core.ProjectConfig shrink paths): the per-GPU figure must
// use the configuration's own span.
func TestEffectiveTFLOPSPartialSpan(t *testing.T) {
	g, _ := model.GPT3("350M")
	m := newModel(t, g, 16)
	c := balanced(t, g, 8, 2, 1) // spans half the 16-device cluster
	e := m.Estimate(c)
	if !e.Feasible {
		t.Fatal("expected feasible")
	}
	if e.Devices != 8 {
		t.Fatalf("Estimate.Devices = %d, want 8", e.Devices)
	}
	var flops float64
	for i := range g.Ops {
		o := &g.Ops[i]
		flops += o.FwdFLOPs * (1 + o.BwdFLOPsFactor)
	}
	want := flops * float64(g.GlobalBatch) / e.IterTime / 8 / 1e12
	got := m.EffectiveTFLOPS(e)
	if diff := got/want - 1; math.Abs(diff) > 1e-9 {
		t.Errorf("EffectiveTFLOPS = %v, want %v (divide by the 8 devices spanned, not the 16-device cluster)",
			got, want)
	}

	// Full-span estimates are unchanged: Devices == cluster total.
	fe := m.Estimate(balanced(t, g, 16, 2, 1))
	if fe.Devices != 16 {
		t.Errorf("full-span Estimate.Devices = %d, want 16", fe.Devices)
	}
}
