package perfmodel

import (
	"math"
	"testing"
)

// Closed-form cases for the rework model.
func TestReworkClosedForm(t *testing.T) {
	cases := []struct {
		name                       string
		hazard                     float64
		cadence                    int
		iterTime, recovery, expect float64
	}{
		{"hazard-free", 0, 4, 2, 10, 1},
		{"negative-hazard-clamps", -1, 4, 2, 10, 1},
		{"zero-iter-time", 0.5, 4, 0, 10, 1},
		// 1 + 0.01·(10 + 4·2/2) = 1 + 0.01·14 = 1.14
		{"textbook", 0.01, 4, 2, 10, 1.14},
		// recovery only: 1 + 0.1·(5 + 1·1/2) = 1.55
		{"cadence-one", 0.1, 1, 1, 5, 1.55},
		// cadence < 1 clamps to 1: same as above
		{"cadence-zero-clamps", 0.1, 0, 1, 5, 1.55},
		// negative recovery clamps to 0: 1 + 0.1·(0 + 2·1/2) = 1.1
		{"negative-recovery-clamps", 0.1, 2, 1, -3, 1.1},
	}
	for _, c := range cases {
		got := Rework(c.hazard, c.cadence, c.iterTime, c.recovery)
		if math.Abs(got-c.expect) > 1e-12 {
			t.Errorf("%s: Rework(%v, %d, %v, %v) = %v, want %v",
				c.name, c.hazard, c.cadence, c.iterTime, c.recovery, got, c.expect)
		}
	}
}

func TestExpectedIterTimeClosedForm(t *testing.T) {
	// No hazard, no checkpoint cost: identity.
	if got := ExpectedIterTime(2, 0, 4, 10, 0); got != 2 {
		t.Fatalf("hazard-free ExpectedIterTime = %v, want exactly 2", got)
	}
	// 2·1.14 + 1/4 = 2.53 (textbook Rework case plus amortized ckpt).
	if got := ExpectedIterTime(2, 0.01, 4, 10, 1); math.Abs(got-2.53) > 1e-12 {
		t.Fatalf("ExpectedIterTime = %v, want 2.53", got)
	}
	// cadence < 1 clamps to 1: 2·(1+0.01·(10+1)) + 1 = 3.22
	if got := ExpectedIterTime(2, 0.01, 0, 10, 1); math.Abs(got-3.22) > 1e-12 {
		t.Fatalf("ExpectedIterTime(cadence 0) = %v, want 3.22", got)
	}
}

func TestRecommendedCadence(t *testing.T) {
	// Young–Daly: τ* = sqrt(2·8/0.01) = 40 s → 20 iterations of 2 s.
	if got := RecommendedCadence(0.01, 2, 8, 64); got != 20 {
		t.Fatalf("RecommendedCadence = %d, want 20", got)
	}
	// Cap binds.
	if got := RecommendedCadence(0.01, 2, 8, 4); got != 4 {
		t.Fatalf("capped RecommendedCadence = %d, want 4", got)
	}
	// Hazard-free: checkpoint as rarely as allowed.
	if got := RecommendedCadence(0, 2, 8, 16); got != 16 {
		t.Fatalf("hazard-free RecommendedCadence = %d, want 16", got)
	}
	if got := RecommendedCadence(0, 2, 8, 0); got != 1 {
		t.Fatalf("hazard-free uncapped RecommendedCadence = %d, want 1", got)
	}
	// Free checkpoints: every iteration.
	if got := RecommendedCadence(0.5, 2, 0, 64); got != 1 {
		t.Fatalf("free-checkpoint RecommendedCadence = %d, want 1", got)
	}
	// Very high hazard: floor at 1, never 0.
	if got := RecommendedCadence(1e6, 2, 1e-9, 64); got != 1 {
		t.Fatalf("high-hazard RecommendedCadence = %d, want 1", got)
	}
}
