package perfmodel

import (
	"math"
	"testing"

	"aceso/internal/hardware"
	"aceso/internal/model"
)

func TestStragglerSlowsItsStage(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	cfg := balanced(t, g, 4, 2, 1)

	healthy := New(g, cl, 1).Estimate(cfg)
	deg, err := cl.Degrade(hardware.FaultSpec{Devices: []hardware.DeviceFault{
		{Device: 3, FLOPSScale: 0.25, MemScale: 1}, // stage 1's devices are {2, 3}
	}})
	if err != nil {
		t.Fatal(err)
	}
	degraded := New(g, deg, 1).Estimate(cfg)

	h0, h1 := healthy.Stages[0], healthy.Stages[1]
	d0, d1 := degraded.Stages[0], degraded.Stages[1]
	if d0.FwdTime != h0.FwdTime {
		t.Errorf("stage 0 (healthy devices) changed: %v -> %v", h0.FwdTime, d0.FwdTime)
	}
	if d1.FwdTime <= h1.FwdTime {
		t.Errorf("stage 1 (hosts the straggler) did not slow: %v -> %v", h1.FwdTime, d1.FwdTime)
	}
	if degraded.IterTime <= healthy.IterTime {
		t.Errorf("iteration time did not grow: %v -> %v", healthy.IterTime, degraded.IterTime)
	}
}

func TestMemoryDeratingTriggersOOM(t *testing.T) {
	g, _ := model.GPT3("1.3B")
	cl := hardware.DGX1V100(1).Restrict(4)
	cfg := balanced(t, g, 4, 2, 1)
	healthy := New(g, cl, 1).Estimate(cfg)
	if !healthy.Feasible {
		t.Skip("baseline config infeasible; derating test needs a feasible start")
	}
	deg, err := cl.Degrade(hardware.FaultSpec{Devices: []hardware.DeviceFault{
		{Device: 0, FLOPSScale: 1, MemScale: 0.05},
	}})
	if err != nil {
		t.Fatal(err)
	}
	degraded := New(g, deg, 1).Estimate(cfg)
	if degraded.Feasible {
		t.Error("config still feasible with 5% memory on device 0")
	}
	if degraded.OOMStage != 0 {
		t.Errorf("OOMStage = %d, want 0 (the derated device's stage)", degraded.OOMStage)
	}
}

func TestEstimateCheckedCatchesPoison(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	m := New(g, cl, 1)
	cfg := balanced(t, g, 4, 2, 1)
	if _, err := m.EstimateChecked(cfg); err != nil {
		t.Fatalf("clean estimate rejected: %v", err)
	}
	// Hand-poison an estimate and check ValidateEstimate flags it.
	est := m.Estimate(cfg)
	est.IterTime = math.NaN()
	if err := ValidateEstimate(est); err == nil {
		t.Error("ValidateEstimate accepted a NaN IterTime")
	}
	est = m.Estimate(cfg)
	est.Stages[1].PeakMem = math.Inf(1)
	if err := ValidateEstimate(est); err == nil {
		t.Error("ValidateEstimate accepted an Inf stage PeakMem")
	}
	est = m.Estimate(cfg)
	est.Stages[0].DPSync = -1
	if err := ValidateEstimate(est); err == nil {
		t.Error("ValidateEstimate accepted a negative DPSync")
	}
}
