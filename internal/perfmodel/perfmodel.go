// Package perfmodel implements Aceso's performance model (§3.3): given
// a parallel configuration it predicts per-stage computation time,
// communication time and memory consumption, and composes them into a
// full-iteration time under 1F1B pipeline scheduling.
//
// Memory follows Eq. 1:
//
//	Memory_i = M_param_i + M_act_i · (p − i) + M_opt_i  (+ extra)
//
// where the extra term deliberately over-estimates framework/allocator
// overhead as the largest per-operator working set in the stage
// ("safety first": an over-estimate can cost throughput, an
// under-estimate crashes training).
//
// Iteration time follows Eq. 2: per stage,
//
//	T_stage_i = T_warmup_i + T_steady_i + T_cooldown_i
//
// with warm-up the forward of one microbatch through stages 0..i,
// cool-down the corresponding backward, and steady state (N−1)
// back-to-back microbatches; the pipeline finishes with the slowest
// stage.
package perfmodel

import (
	"fmt"
	"math"
	"sync/atomic"

	"aceso/internal/collective"
	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/memo"
	"aceso/internal/model"
	"aceso/internal/profiler"
)

// Optimizer state bytes per parameter beyond the weights themselves.
// FP16 training keeps fp16 gradients plus fp32 master weights and Adam
// moments (2+4+4+4); FP32 keeps fp32 gradients and moments (4+4+4).
const (
	optBytesPerParamFP16 = 14
	optBytesPerParamFP32 = 12
)

// actStashFactor scales per-op saved activations: besides its output,
// an operator's backward needs its inputs, masks and intermediate
// tensors (Megatron-LM stashes ≈34·s·h bytes per transformer layer
// versus ≈12·s·h of op outputs). Attention/working buffers (WorkElems)
// are counted once, unscaled.
const actStashFactor = 2.5

// StageMetrics is the predicted resource consumption of one pipeline
// stage, per device (stages are internally symmetric; §3.1).
type StageMetrics struct {
	// Per-microbatch times (seconds).
	FwdTime float64 // forward compute + collectives + boundary recv
	BwdTime float64 // backward compute + collectives + recompute + boundary send
	TPComm  float64 // tensor-parallel collective share of Fwd+Bwd
	P2P     float64 // stage-boundary share of Fwd+Bwd
	Recomp  float64 // recomputation share of Bwd
	// ReshardComm is the data-parallel resample traffic share of
	// Fwd+Bwd: when a stage changes its dp degree mid-stage, samples
	// redistribute across the whole stage group. It is data-parallel
	// reshard traffic, not a tensor-parallel collective, so it gets its
	// own bucket (booking it into TPComm would distort the
	// Heuristic-2 resource proportions).
	ReshardComm float64

	// Per-iteration times.
	DPSync    float64 // gradient all-reduce across data-parallel groups
	StageTime float64 // Eq. 2 total for this stage

	// Memory (bytes per device).
	ParamMem float64
	OptMem   float64
	ActPerMB float64 // activation stash per in-flight microbatch
	ExtraMem float64 // allocator over-estimate (max op working set)
	PeakMem  float64 // Eq. 1 total

	// CapMem is the usable memory of the stage's most constrained
	// device (equal to Cluster.MemoryBytes on a healthy cluster; less
	// when a fault spec derates a device in the stage's range). Filled
	// by Estimate, not cached with the stage metrics.
	CapMem float64

	// Devices is the stage's device count, copied from the evaluated
	// stage so an Estimate knows how many devices its configuration
	// actually spans (configurations from shrink/projection paths may
	// span less than the full cluster).
	Devices int
}

// CompTime returns the pure-compute share of one microbatch.
func (s *StageMetrics) CompTime() float64 {
	return s.FwdTime + s.BwdTime - s.TPComm - s.P2P - s.Recomp - s.ReshardComm
}

// CommTime returns the communication share of one microbatch,
// including the per-microbatch amortization of the gradient sync.
func (s *StageMetrics) CommTime(microbatches int) float64 {
	t := s.TPComm + s.P2P + s.ReshardComm
	if microbatches > 0 {
		t += s.DPSync / float64(microbatches)
	}
	return t
}

// Estimate is the performance model's verdict on one configuration.
type Estimate struct {
	Stages   []StageMetrics
	IterTime float64 // seconds per training iteration
	PeakMem  float64 // max over stages, bytes per device
	Feasible bool    // every stage fits in device memory
	OOMStage int     // index of worst over-memory stage, -1 if feasible

	Microbatches int
	// Devices is the summed device count of the evaluated stages — the
	// devices the configuration actually spans, which may be less than
	// the cluster total (elastic shrink/projection paths).
	Devices int
}

// Throughput returns samples/second (0 for infeasible configs).
func (e *Estimate) Throughput(globalBatch int) float64 {
	if !e.Feasible || e.IterTime <= 0 {
		return 0
	}
	return float64(globalBatch) / e.IterTime
}

// stageKey identifies one memoized stage evaluation: the stage's
// semantic sub-hash plus every evalStage input that is not part of the
// stage itself. Two evaluations with equal keys are identical — the
// profiler is deterministic — so the cache never changes results, only
// skips recomputation.
type stageKey struct {
	sub         uint64
	microBatch  int
	firstDev    int
	inflight    int
	prevDevices int
}

// stageCacheCap bounds the stage-metrics memo. Entries are ~150 bytes;
// the cap keeps a long search under ~40 MB of cache. Values are pure
// functions of the key, so the occasional wholesale reset on overflow
// is invisible to results.
const stageCacheCap = 1 << 18

// Model evaluates configurations for one (graph, cluster) pair. It is
// safe for concurrent use: the per-stage metrics memo below is shared
// by core.Search's per-pipeline-depth worker goroutines, so identical
// stages reached by different workers are evaluated once.
type Model struct {
	Graph   *model.Graph
	Cluster hardware.Cluster
	Prof    *profiler.Profiler

	// DisableStageCache forces every Estimate to recompute all stages
	// from scratch — the reference path for equivalence tests.
	DisableStageCache bool

	scache memo.SnapMap[stageKey, StageMetrics]

	// Cache effectiveness counters, exposed through StageCacheStats for
	// the observability layer (internal/obs). Always on: two atomic
	// adds are noise next to the map+lock they instrument.
	scHits   atomic.Uint64
	scMisses atomic.Uint64
}

// New builds a performance model backed by a profiler database.
func New(g *model.Graph, c hardware.Cluster, seed int64) *Model {
	m := &Model{
		Graph:   g,
		Cluster: c,
		Prof:    profiler.New(c, seed),
	}
	// The stage cache grows to tens of thousands of entries in a long
	// search; a larger merge threshold keeps the snapshot-copy churn
	// (entries²/threshold) bounded. See memo.SnapMap.
	m.scache.Threshold = 4096
	return m
}

// StageCacheEntries returns the number of memoized stage evaluations.
func (m *Model) StageCacheEntries() int {
	return m.scache.Len()
}

// StageCacheStats returns the cumulative stage-cache hit and miss
// counts over the model's lifetime (both zero while DisableStageCache
// bypasses the cache).
func (m *Model) StageCacheStats() (hits, misses uint64) {
	return m.scHits.Load(), m.scMisses.Load()
}

// stageMetrics returns the metrics for st under the given pipeline
// context, consulting the shared memo keyed by the stage's sub-hash.
// An Estimate of a Clone-plus-one-mutation neighbor therefore
// recomputes only the mutated stage; every other stage is a lookup.
func (m *Model) stageMetrics(st *config.Stage, microBatch, firstDev, inflight, prevDevices int) StageMetrics {
	if m.DisableStageCache {
		return m.evalStage(st, microBatch, firstDev, inflight, prevDevices)
	}
	key := stageKey{st.SubHash(), microBatch, firstDev, inflight, prevDevices}
	if sm, ok := m.scache.Load(key); ok {
		m.scHits.Add(1)
		return sm
	}
	m.scMisses.Add(1)
	sm := m.evalStage(st, microBatch, firstDev, inflight, prevDevices)
	if m.scache.Len() >= stageCacheCap {
		// Values are pure functions of keys, so a wholesale reset on
		// overflow changes no results, only recomputation counts.
		m.scache.Replace(nil)
	}
	m.scache.Store(key, sm)
	return sm
}

// optBytes returns optimizer-state bytes per parameter.
func optBytes(p hardware.Precision) float64 {
	if p == hardware.FP32 {
		return optBytesPerParamFP32
	}
	return optBytesPerParamFP16
}

// Estimate predicts the execution of cfg. cfg must be valid for the
// model's graph and cluster.
func (m *Model) Estimate(cfg *config.Config) *Estimate {
	return m.EstimateIn(cfg, nil)
}

// EstimateIn is Estimate with the result carved out of a (a nil arena
// degrades to plain allocation). The search hot path passes its
// per-searcher arena; every other caller goes through Estimate.
func (m *Model) EstimateIn(cfg *config.Config, a *EstArena) *Estimate {
	g := m.Graph
	p := cfg.NumStages()
	n := cfg.NumMicrobatches(g.GlobalBatch)

	est := a.alloc(p)
	est.OOMStage = -1
	est.Feasible = true
	est.Microbatches = n
	// A degenerate configuration whose microbatch (times dp) exceeds the
	// global batch performs zero microbatches — zero work. Historically
	// this returned a finite-IterTime Feasible estimate (all-warm-up, no
	// steady state) that the search could score as a "win" while the
	// simulator rejected the same config outright. Zero work is not a
	// plan; mark it infeasible so no consumer ranks it.
	if n <= 0 {
		est.Feasible = false
	}

	firstDev := 0
	for si := range cfg.Stages {
		st := &cfg.Stages[si]
		// Eq. 1: earlier stages stash more in-flight microbatches.
		inflight := p - si
		if inflight > n {
			inflight = n
		}
		prevDevices := 0
		if si > 0 {
			prevDevices = cfg.Stages[si-1].Devices
		}
		est.Stages[si] = m.stageMetrics(st, cfg.MicroBatch, firstDev, inflight, prevDevices)
		cap := m.Cluster.RangeMemory(firstDev, st.Devices)
		firstDev += st.Devices
		est.Devices += st.Devices
		sm := &est.Stages[si]
		sm.CapMem = cap
		if sm.PeakMem > cap {
			est.Feasible = false
			if est.OOMStage < 0 || sm.PeakMem > est.Stages[est.OOMStage].PeakMem {
				est.OOMStage = si
			}
		}
		if sm.PeakMem > est.PeakMem {
			est.PeakMem = sm.PeakMem
		}
	}

	m.composeIterTime(est, n)
	return est
}

// evalStage predicts one pipeline stage's per-microbatch times and
// memory. firstDev is the stage's first global device rank, inflight
// the number of stashed microbatches (Eq. 1's p−i), prevDevices the
// preceding stage's device count (0 for the first stage).
func (m *Model) evalStage(st *config.Stage, microBatch, firstDev, inflight, prevDevices int) StageMetrics {
	g := m.Graph
	prec := g.Precision
	bpe := prec.BytesPerElem()
	// Straggler semantics: the stage's SPMD ranks advance in lockstep,
	// so every kernel runs at the pace of the range's slowest device
	// (1 on a healthy cluster).
	derate := m.Cluster.RangeFLOPSScale(firstDev, st.Devices, prec)
	var sm StageMetrics
	{
		// Layout tracking across the stage for relayout collectives.
		curLayout := model.Replicated
		curTP := 1
		prevDP := 0
		var prevActBytes float64 // per-sample output bytes of previous op

		for j := st.Start; j < st.End; j++ {
			op := &g.Ops[j]
			set := st.Setting(j)
			dim := op.Dims[set.Dim]
			samples := microBatch / set.DP
			tpPlace := collective.PlacementFor(&m.Cluster, firstDev, set.TP)

			// Effective compute sharding.
			shards := 1
			outLayout := dim.Out
			switch dim.Name {
			case model.DimNone.Name:
				shards = 1
				outLayout = model.Replicated
				if set.SeqPar && set.TP > 1 {
					// Sequence parallelism splits the replicated
					// region's tokens across the tp group.
					shards = set.TP
				}
			case model.DimPass.Name:
				// Layout-polymorphic: follows the incoming layout.
				if curLayout == model.Split && set.TP == curTP {
					shards = set.TP
					outLayout = model.Split
				} else {
					shards = 1
					outLayout = curLayout
				}
			default:
				if set.TP > 1 {
					shards = set.TP
				}
				// Relayout: a Split activation feeding an op that
				// expects Replicated input costs an all-gather.
				if dim.In == model.Replicated && curLayout == model.Split && curTP > 1 {
					t := m.Prof.AllGather(prevActBytes*float64(samples)*bpe, firstDev, curTP, tpPlace)
					sm.FwdTime += t
					sm.BwdTime += t // mirrored reduce-scatter in backward
					sm.TPComm += 2 * t
				}
			}
			// Changing the dp degree mid-stage redistributes samples
			// across the whole stage group. This is data-parallel
			// reshard traffic, not a tensor-parallel collective.
			if prevDP != 0 && set.DP != prevDP {
				t := m.Prof.AllGather(prevActBytes*float64(microBatch)*bpe/float64(st.Devices), firstDev, st.Devices,
					collective.PlacementFor(&m.Cluster, firstDev, st.Devices))
				sm.FwdTime += t
				sm.BwdTime += t
				sm.ReshardComm += 2 * t
			}

			fwd := m.Prof.OpTime(op, set.TP, set.Dim, samples, shards, false, prec) / derate
			bwd := m.Prof.OpTime(op, set.TP, set.Dim, samples, shards, true, prec) / derate
			sm.FwdTime += fwd
			sm.BwdTime += bwd
			if set.Recompute {
				sm.BwdTime += fwd
				sm.Recomp += fwd
			}

			// Tensor-parallel collectives (Megatron f/g conjugates):
			// row-parallel all-reduces its output in forward; the
			// paired column-parallel all-reduces gradients in backward.
			if set.TP > 1 {
				arBytes := op.ActElems * float64(samples) * bpe
				switch {
				case dim.AllReduceOut:
					t := m.Prof.AllReduce(arBytes, firstDev, set.TP, tpPlace)
					sm.FwdTime += t
					sm.TPComm += t
					if set.Recompute {
						sm.BwdTime += t
						sm.Recomp += t
					}
				case dim.In == model.Replicated && dim.Out == model.Split:
					// Column-parallel: backward all-reduces the input
					// gradient (per-sample size = previous activation).
					t := m.Prof.AllReduce(prevActBytes*float64(samples)*bpe, firstDev, set.TP, tpPlace)
					sm.BwdTime += t
					sm.TPComm += t
				}
			}

			// Memory.
			paramBytes := op.Params * bpe / float64(set.TP)
			sm.ParamMem += paramBytes
			opt := op.Params * optBytes(prec) / float64(set.TP)
			if set.ZeRO {
				// ZeRO-1: optimizer states shard across the dp group.
				opt /= float64(set.DP)
			}
			sm.OptMem += opt

			actShare := 1.0
			if outLayout == model.Split {
				actShare = float64(shards)
			} else if set.SeqPar && set.TP > 1 {
				// Sequence-parallel regions stash 1/tp of the tokens.
				actShare = float64(set.TP)
			}
			saved := actStashFactor*op.ActElems*float64(samples)*bpe/actShare +
				op.WorkElems*float64(samples)*bpe/float64(shards)
			if set.Recompute {
				saved = 0
			}
			sm.ActPerMB += saved
			working := (op.ActElems/actShare + op.WorkElems/float64(shards)) * float64(samples) * bpe
			if working > sm.ExtraMem {
				sm.ExtraMem = working
			}

			// Data-parallel gradient sync (per iteration).
			if set.DP > 1 && op.Params > 0 {
				dpPlace := collective.PlacementFor(&m.Cluster, firstDev, st.Devices)
				sm.DPSync += m.Prof.AllReduce(paramBytes, firstDev, set.DP, dpPlace)
				if set.ZeRO {
					// Each rank updates its optimizer shard; the
					// refreshed parameters all-gather back.
					sm.DPSync += m.Prof.AllGather(paramBytes, firstDev, set.DP, dpPlace)
				}
			}

			curLayout = outLayout
			curTP = set.TP
			prevActBytes = op.ActElems
			prevDP = set.DP
		}

		// Stage input stash: the boundary activation is always kept so
		// recomputation can restart from it.
		if st.Start > 0 {
			in := &g.Ops[st.Start-1]
			firstSet := st.Setting(st.Start)
			sm.ActPerMB += in.ActElems * float64(microBatch/firstSet.DP) * bpe
		}

		// Stage-boundary transfer from the previous stage.
		if prevDevices > 0 {
			in := &g.Ops[st.Start-1]
			lanes := prevDevices
			if st.Devices < lanes {
				lanes = st.Devices
			}
			bytes := in.ActElems * float64(microBatch) * bpe / float64(lanes)
			pl := collective.PlacementFor(&m.Cluster, firstDev-1, 2)
			t := m.Prof.P2P(bytes, firstDev-1, pl)
			sm.FwdTime += t
			sm.BwdTime += t
			sm.P2P += 2 * t
		}
	}

	sm.PeakMem = sm.ParamMem + sm.OptMem + sm.ActPerMB*float64(inflight) + sm.ExtraMem
	sm.Devices = st.Devices
	return sm
}

// composeIterTime fills StageTime and IterTime from the per-stage
// metrics under 1F1B scheduling (Eq. 2). The warm-up prefix sums are
// staged through the StageTime fields themselves instead of scratch
// slices, keeping the per-estimate hot path allocation-free; the
// addition order matches the historical two-slice form exactly
// (warm + steady + cool + sync, left-associated), so StageTime is
// bitwise unchanged.
func (m *Model) composeIterTime(est *Estimate, n int) {
	p := len(est.Stages)
	var warm float64
	for i := 0; i < p; i++ {
		warm += est.Stages[i].FwdTime
		est.Stages[i].StageTime = warm
	}
	steadyN := float64(n - 1)
	if steadyN < 0 {
		steadyN = 0
	}
	var cool float64
	for i := p - 1; i >= 0; i-- {
		sm := &est.Stages[i]
		cool += sm.BwdTime
		sm.StageTime = sm.StageTime + steadyN*(sm.FwdTime+sm.BwdTime) + cool + sm.DPSync
		if sm.StageTime > est.IterTime {
			est.IterTime = sm.StageTime
		}
	}
}

// ValidateEstimate rejects estimates containing non-finite or negative
// times or memories — the symptom of poisoned profiler entries or
// hand-constructed graphs/clusters that slipped past input validation.
// The search's comparators silently mis-order on NaN (every comparison
// is false), so a poisoned estimate must fail loudly here instead.
func ValidateEstimate(e *Estimate) error {
	if e == nil {
		return fmt.Errorf("perfmodel: nil estimate")
	}
	bad := func(what string, v float64) error {
		return fmt.Errorf("perfmodel: estimate has non-finite or negative %s (%v)", what, v)
	}
	if math.IsNaN(e.IterTime) || math.IsInf(e.IterTime, 0) || e.IterTime < 0 {
		return bad("IterTime", e.IterTime)
	}
	if math.IsNaN(e.PeakMem) || math.IsInf(e.PeakMem, 0) || e.PeakMem < 0 {
		return bad("PeakMem", e.PeakMem)
	}
	for i := range e.Stages {
		s := &e.Stages[i]
		for _, f := range [...]struct {
			name string
			v    float64
		}{
			{"FwdTime", s.FwdTime}, {"BwdTime", s.BwdTime}, {"StageTime", s.StageTime},
			{"TPComm", s.TPComm}, {"P2P", s.P2P}, {"Recomp", s.Recomp},
			{"ReshardComm", s.ReshardComm},
			{"DPSync", s.DPSync}, {"ParamMem", s.ParamMem}, {"OptMem", s.OptMem},
			{"ActPerMB", s.ActPerMB}, {"ExtraMem", s.ExtraMem}, {"PeakMem", s.PeakMem},
		} {
			if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
				return fmt.Errorf("perfmodel: stage %d has non-finite or negative %s (%v)", i, f.name, f.v)
			}
		}
	}
	return nil
}

// NoMicrobatchesError reports a degenerate configuration whose
// microbatch size (times data parallelism) exceeds the global batch:
// it would execute zero microbatches per iteration, i.e. no work.
// Estimate marks such configs infeasible; EstimateChecked surfaces
// this typed error so tooling can distinguish "cannot fit" from
// "does nothing".
type NoMicrobatchesError struct {
	MicroBatch  int
	GlobalBatch int
}

func (e *NoMicrobatchesError) Error() string {
	return fmt.Sprintf("perfmodel: zero microbatches per iteration (micro-batch %d exceeds global batch %d)",
		e.MicroBatch, e.GlobalBatch)
}

// EstimateChecked is Estimate followed by ValidateEstimate — the entry
// point for callers that consume untrusted graphs, clusters or
// profiler databases (the chaos harness, external tooling). A
// zero-work configuration returns a *NoMicrobatchesError.
func (m *Model) EstimateChecked(cfg *config.Config) (*Estimate, error) {
	est := m.Estimate(cfg)
	if est.Microbatches <= 0 {
		return nil, &NoMicrobatchesError{
			MicroBatch:  cfg.MicroBatch,
			GlobalBatch: m.Graph.GlobalBatch,
		}
	}
	if err := ValidateEstimate(est); err != nil {
		return nil, err
	}
	return est, nil
}

// EffectiveTFLOPS returns the per-GPU effective TFLOPS of an estimate:
// useful model FLOPs (forward + backward, excluding recomputation) per
// second per device — the metric of Tables 3–5.
func (m *Model) EffectiveTFLOPS(est *Estimate) float64 {
	if !est.Feasible || est.IterTime <= 0 {
		return 0
	}
	var flops float64
	for i := range m.Graph.Ops {
		o := &m.Graph.Ops[i]
		flops += o.FwdFLOPs * (1 + o.BwdFLOPsFactor)
	}
	flops *= float64(m.Graph.GlobalBatch)
	// Per-GPU means per GPU the configuration actually uses: elastic
	// shrink/projection paths produce estimates spanning less than the
	// full cluster, and dividing by the cluster total would understate
	// their efficiency. Fall back to the cluster only for estimates
	// built before Devices was recorded (hand-assembled metrics).
	devices := est.Devices
	if devices <= 0 {
		devices = m.Cluster.TotalDevices()
	}
	return flops / est.IterTime / float64(devices) / 1e12
}
