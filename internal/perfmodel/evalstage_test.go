package perfmodel

import (
	"testing"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
)

func TestEvalStageMatchesEstimate(t *testing.T) {
	// EvalStage on a uniform stage must agree exactly with the same
	// stage inside a full Estimate (they share evalStage).
	g, _ := model.GPT3("350M")
	m := New(g, hardware.DGX1V100(1).Restrict(8), 1)
	cfg, err := config.Balanced(g, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	est := m.Estimate(cfg)
	for si := range cfg.Stages {
		st := &cfg.Stages[si]
		set := st.Ops[0]
		prev := 0
		if si > 0 {
			prev = cfg.Stages[si-1].Devices
		}
		inflight := cfg.NumStages() - si
		sm, err := m.EvalStage(st.Start, st.End, st.Devices, set.TP, set.DP, false,
			cfg.MicroBatch, cfg.FirstDev(si), inflight, prev)
		if err != nil {
			t.Fatal(err)
		}
		if sm.FwdTime != est.Stages[si].FwdTime || sm.PeakMem != est.Stages[si].PeakMem {
			t.Errorf("stage %d: EvalStage (%v/%v) != Estimate (%v/%v)",
				si, sm.FwdTime, sm.PeakMem, est.Stages[si].FwdTime, est.Stages[si].PeakMem)
		}
	}
}

func TestEvalStageRejectsBadArgs(t *testing.T) {
	g, _ := model.GPT3("350M")
	m := New(g, hardware.DGX1V100(1).Restrict(8), 1)
	cases := []struct {
		name                            string
		start, end, dev, tp, dp         int
		mbs, firstDev, inflight, prevDv int
	}{
		{"empty range", 5, 5, 4, 4, 1, 4, 0, 1, 0},
		{"negative start", -1, 5, 4, 4, 1, 4, 0, 1, 0},
		{"end out of range", 0, 10000, 4, 4, 1, 4, 0, 1, 0},
		{"tp·dp != devices", 0, 5, 4, 2, 1, 4, 0, 1, 0},
		{"non-pow2", 0, 5, 6, 3, 2, 6, 0, 1, 0},
		{"dp does not divide mbs", 0, 5, 4, 1, 4, 2, 0, 1, 0},
		{"zero inflight", 0, 5, 4, 4, 1, 4, 0, 0, 0},
	}
	for _, tc := range cases {
		if _, err := m.EvalStage(tc.start, tc.end, tc.dev, tc.tp, tc.dp, false,
			tc.mbs, tc.firstDev, tc.inflight, tc.prevDv); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestComposePipelineMatchesEstimate(t *testing.T) {
	g, _ := model.GPT3("350M")
	m := New(g, hardware.DGX1V100(1).Restrict(8), 1)
	cfg, err := config.Balanced(g, 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	est := m.Estimate(cfg)
	re := m.ComposePipeline(est.Stages, est.Microbatches)
	if re.IterTime != est.IterTime {
		t.Errorf("ComposePipeline IterTime %v != Estimate %v", re.IterTime, est.IterTime)
	}
	if re.Feasible != est.Feasible || re.PeakMem != est.PeakMem {
		t.Error("feasibility/memory mismatch")
	}
}

func TestComposePipelineFlagsOOM(t *testing.T) {
	g, _ := model.GPT3("350M")
	m := New(g, hardware.DGX1V100(1).Restrict(4), 1)
	sm := StageMetrics{FwdTime: 1, BwdTime: 2, PeakMem: 2 * m.Cluster.MemoryBytes}
	est := m.ComposePipeline([]StageMetrics{sm}, 4)
	if est.Feasible || est.OOMStage != 0 {
		t.Errorf("OOM not flagged: %+v", est)
	}
}

func TestEvalStageRecomputeCutsActivation(t *testing.T) {
	g, _ := model.GPT3("350M")
	m := New(g, hardware.DGX1V100(1).Restrict(4), 1)
	plain, err := m.EvalStage(0, 50, 4, 4, 1, false, 2, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := m.EvalStage(0, 50, 4, 4, 1, true, 2, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rc.ActPerMB >= plain.ActPerMB {
		t.Errorf("recompute ActPerMB %v should be below plain %v", rc.ActPerMB, plain.ActPerMB)
	}
	if rc.BwdTime <= plain.BwdTime {
		t.Error("recompute should lengthen backward")
	}
}
