package pipesim

import (
	"math"
	"testing"
	"testing/quick"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
)

func setup(t *testing.T, g *model.Graph, devices, stages, mbs int) (*perfmodel.Model, *config.Config) {
	t.Helper()
	pm := perfmodel.New(g, hardware.DGX1V100(4).Restrict(devices), 1)
	c, err := config.Balanced(g, devices, stages, mbs)
	if err != nil {
		t.Fatal(err)
	}
	return pm, c
}

func TestSimulateDeterministic(t *testing.T) {
	g, _ := model.GPT3("350M")
	pm, c := setup(t, g, 4, 2, 1)
	a, err := Simulate(pm, c, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(pm, c, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.IterTime != b.IterTime || a.PeakMem != b.PeakMem {
		t.Errorf("not deterministic: %v/%v vs %v/%v", a.IterTime, a.PeakMem, b.IterTime, b.PeakMem)
	}
	c2, err := Simulate(pm, c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c2.IterTime == a.IterTime {
		t.Error("different seeds should perturb the simulation")
	}
}

func TestSimulateRejectsInvalidConfig(t *testing.T) {
	g, _ := model.GPT3("350M")
	pm, c := setup(t, g, 4, 2, 1)
	c.Stages[0].Devices = 16 // now invalid for 4-device cluster
	if _, err := Simulate(pm, c, 1); err == nil {
		t.Fatal("invalid config should be rejected")
	}
}

func TestCriticalPathLowerBound(t *testing.T) {
	// Invariant 6: the simulated makespan is at least the steady-state
	// work of the busiest stage and at least the pipeline fill time.
	g, _ := model.GPT3("350M")
	for _, stages := range []int{1, 2, 4} {
		pm, c := setup(t, g, 4, stages, 2)
		est := pm.Estimate(c)
		r, err := Simulate(pm, c, 3)
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		var fill float64
		for i := range est.Stages {
			fb := est.Stages[i].FwdTime + est.Stages[i].BwdTime
			if fb > worst {
				worst = fb
			}
			fill += fb
		}
		// Durations in the simulator are ≥ analytic (positive bias +
		// task overhead), so these are valid lower bounds.
		lb := worst * float64(est.Microbatches) * (1 + skewBias - skewAmp/2)
		if r.IterTime < lb {
			t.Errorf("%d stages: makespan %v below steady bound %v", stages, r.IterTime, lb)
		}
		if r.IterTime < fill*(1+skewBias-skewAmp/2) {
			t.Errorf("%d stages: makespan %v below fill bound %v", stages, r.IterTime, fill)
		}
	}
}

func TestInflightMatchesEq1(t *testing.T) {
	// 1F1B keeps at most (p − i) microbatches alive on stage i — the
	// premise of Eq. 1 — and exactly that many when N ≥ p.
	g, _ := model.GPT3("350M")
	pm, c := setup(t, g, 8, 4, 4) // N = 256 ≥ p
	r, err := Simulate(pm, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := c.NumStages()
	for i, got := range r.PeakInflight {
		if want := p - i; got != want {
			t.Errorf("stage %d peak inflight = %d, want %d", i, got, want)
		}
	}
}

func TestPredictionErrorSmallButNonzero(t *testing.T) {
	// The substrate must disagree with the analytic model (otherwise
	// Exp#8 is circular) but only by a few percent (otherwise the
	// search would be steering blind).
	g, _ := model.GPT3("1.3B")
	pm, c := setup(t, g, 8, 4, 2)
	est := pm.Estimate(c)
	r, err := Simulate(pm, c, 11)
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(est.IterTime-r.IterTime) / r.IterTime
	if relErr == 0 {
		t.Error("prediction exactly matches simulation: substrate is circular")
	}
	if relErr > 0.15 {
		t.Errorf("prediction error %.1f%% too large for the search to be useful", relErr*100)
	}
}

func TestMemoryPredictionOverestimates(t *testing.T) {
	// §3.3: the model deliberately over-estimates allocator reserve, so
	// prediction ≥ simulation for the dominant stage in typical configs.
	g, _ := model.GPT3("1.3B")
	pm, c := setup(t, g, 8, 4, 2)
	est := pm.Estimate(c)
	r, err := Simulate(pm, c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if est.PeakMem < r.PeakMem {
		t.Errorf("predicted peak %v below simulated %v: over-estimation broken",
			est.PeakMem, r.PeakMem)
	}
	relErr := (est.PeakMem - r.PeakMem) / r.PeakMem
	if relErr > 0.30 {
		t.Errorf("memory over-estimation %.1f%% unreasonably large", relErr*100)
	}
}

func TestOOMSurfacing(t *testing.T) {
	g, _ := model.GPT3("13B")
	pm, c := setup(t, g, 4, 1, 1)
	r, err := Simulate(pm, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OOM {
		t.Error("13B on 4 GPUs in one stage should OOM in simulation")
	}
}

func TestStageTimesBoundedByMakespan(t *testing.T) {
	g, _ := model.T5("770M")
	pm, c := setup(t, g, 8, 4, 2)
	r, err := Simulate(pm, c, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range r.StageTime {
		if st > r.IterTime {
			t.Errorf("stage %d time %v exceeds makespan %v", i, st, r.IterTime)
		}
	}
}

// Property: the simulator completes and satisfies basic sanity for a
// range of pipeline depths and microbatch sizes.
func TestSimulateWellFormed(t *testing.T) {
	g, _ := model.GPT3("350M")
	pm := perfmodel.New(g, hardware.DGX1V100(1), 1)
	f := func(stRaw, mbsRaw uint8) bool {
		stages := 1 << (stRaw % 4)
		mbs := 1 << (mbsRaw % 4)
		c, err := config.Balanced(g, 8, stages, mbs)
		if err != nil {
			return true
		}
		r, err := Simulate(pm, c, 9)
		if err != nil {
			return false
		}
		if r.IterTime <= 0 || r.PeakMem <= 0 {
			return false
		}
		for i := range r.PeakInflight {
			if r.PeakInflight[i] < 1 || r.PeakInflight[i] > stages {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGPipeStashesAllMicrobatches(t *testing.T) {
	// GPipe's forward-then-backward order keeps every microbatch alive
	// on every stage — the memory blow-up 1F1B (and Eq. 1) avoids.
	g, _ := model.GPT3("350M")
	pm, c := setup(t, g, 8, 4, 8) // N = 128
	r1f1b, err := Simulate(pm, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	rgpipe, err := SimulateSchedule(pm, c, 1, GPipe)
	if err != nil {
		t.Fatal(err)
	}
	n := c.NumMicrobatches(g.GlobalBatch)
	for i, got := range rgpipe.PeakInflight {
		if got != n {
			t.Errorf("GPipe stage %d inflight = %d, want all %d microbatches", i, got, n)
		}
	}
	if rgpipe.PeakMem <= r1f1b.PeakMem {
		t.Errorf("GPipe peak memory %v should exceed 1F1B %v", rgpipe.PeakMem, r1f1b.PeakMem)
	}
}

func TestBusyFractions(t *testing.T) {
	g, _ := model.GPT3("350M")
	pm, c := setup(t, g, 4, 4, 2)
	r, err := Simulate(pm, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range r.StageBusy {
		if b <= 0 || b > 1 {
			t.Errorf("stage %d busy fraction %v out of (0, 1]", i, b)
		}
	}
	bf := r.BubbleFraction()
	if bf < 0 || bf >= 1 {
		t.Errorf("bubble fraction %v out of [0, 1)", bf)
	}
	// A single-stage pipeline has no bubbles beyond rounding.
	solo, err := Simulate(pm, mustCfg(t, g, 4, 1, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if solo.BubbleFraction() > 0.05 {
		t.Errorf("1-stage bubble fraction %v, want ≈0", solo.BubbleFraction())
	}
	if bf <= solo.BubbleFraction() {
		t.Errorf("4-stage bubbles (%v) should exceed 1-stage (%v)", bf, solo.BubbleFraction())
	}
}

func TestDPSyncCountsAsBusy(t *testing.T) {
	// The gradient all-reduce extends StageTime, so it must count as
	// busy time too. The historical bug divided compute-only busy time
	// by a DPSync-inclusive makespan, deflating every dp>1 stage's busy
	// fraction and inflating BubbleFraction.
	g, _ := model.GPT3("350M")
	pm, c := setup(t, g, 4, 1, 2)
	// Balanced starts at full TP; flip to tp2·dp2 so the stage runs a
	// gradient all-reduce (DPSync > 0).
	for j := range c.Stages[0].Ops {
		c.Stages[0].Ops[j] = config.OpSetting{TP: 2, DP: 2, Dim: 0}
	}
	if err := c.Validate(g, 4); err != nil {
		t.Fatal(err)
	}
	est := pm.Estimate(c)
	if est.Stages[0].DPSync <= 0 {
		t.Fatal("setup needs a dp-synchronizing stage")
	}
	r, err := Simulate(pm, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A single stage is never dependency-blocked: it is busy for the
	// entire makespan, DPSync tail included.
	if r.StageBusy[0] < 0.999 {
		t.Errorf("1-stage busy fraction = %v, want ≈1 (DPSync not counted as busy?)", r.StageBusy[0])
	}
	// And in a deep pipeline, every stage's busy fraction covers at
	// least its own DPSync share of the makespan.
	pm4, c4 := setup(t, g, 8, 4, 2)
	est4 := pm4.Estimate(c4)
	r4, err := Simulate(pm4, c4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range r4.StageBusy {
		if share := est4.Stages[i].DPSync / r4.IterTime; b < share {
			t.Errorf("stage %d busy %v below its DPSync share %v", i, b, share)
		}
	}
}

// Property: GPipe's peak memory is never below 1F1B's — it stashes a
// superset of the microbatches on every stage (equality only when one
// microbatch makes the schedules coincide).
func TestGPipePeakMemAtLeast1F1B(t *testing.T) {
	g, _ := model.GPT3("350M")
	pm := perfmodel.New(g, hardware.DGX1V100(1), 1)
	f := func(stRaw, mbsRaw uint8, seed int16) bool {
		stages := 1 << (stRaw % 4)
		mbs := 1 << (mbsRaw % 4)
		c, err := config.Balanced(g, 8, stages, mbs)
		if err != nil {
			return true
		}
		a, err := Simulate(pm, c, int64(seed))
		if err != nil {
			return false
		}
		b, err := SimulateSchedule(pm, c, int64(seed), GPipe)
		if err != nil {
			return false
		}
		for i := range a.PeakInflight {
			if b.PeakInflight[i] < a.PeakInflight[i] {
				return false
			}
		}
		return b.PeakMem >= a.PeakMem
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func mustCfg(t *testing.T, g *model.Graph, devices, stages, mbs int) *config.Config {
	t.Helper()
	c, err := config.Balanced(g, devices, stages, mbs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestModelFaithfulRealizesEq1(t *testing.T) {
	// With effects off the simulator's per-stage memory must equal the
	// model's Eq. 1 composition bitwise: every knob multiplies by
	// exactly 1.0, and the addition order matches the model's.
	g, _ := model.GPT3("1.3B")
	pm, c := setup(t, g, 8, 4, 2)
	est := pm.Estimate(c)
	r, err := SimulateEffects(pm, c, 5, OneFOneB, ModelFaithful())
	if err != nil {
		t.Fatal(err)
	}
	n := est.Microbatches
	p := c.NumStages()
	for i := range r.StagePeakMem {
		inflight := p - i
		if inflight > n {
			inflight = n
		}
		if r.PeakInflight[i] != inflight {
			t.Errorf("stage %d inflight %d, want min(p-i, n) = %d", i, r.PeakInflight[i], inflight)
		}
		sm := &est.Stages[i]
		want := sm.ParamMem + sm.OptMem + sm.ActPerMB*float64(inflight) + sm.ExtraMem
		if r.StagePeakMem[i] != want {
			t.Errorf("stage %d mem %v, want Eq.1 composition %v (diff %g)",
				i, r.StagePeakMem[i], want, r.StagePeakMem[i]-want)
		}
		if r.StageOOM[i] != (want > sm.CapMem) {
			t.Errorf("stage %d OOM verdict %v disagrees with Eq.1 vs CapMem", i, r.StageOOM[i])
		}
	}
	// Seeds must not matter when every stochastic knob is off.
	r2, err := SimulateEffects(pm, c, 99, OneFOneB, ModelFaithful())
	if err != nil {
		t.Fatal(err)
	}
	if r.IterTime != r2.IterTime || r.PeakMem != r2.PeakMem {
		t.Errorf("model-faithful mode must be seed-independent: %v/%v vs %v/%v",
			r.IterTime, r.PeakMem, r2.IterTime, r2.PeakMem)
	}
}

func TestMemSkewOwnStream(t *testing.T) {
	// Regression (PR 4): memory perturbation historically reused the
	// time-skew stream via skew(seed, cfg, i+1000, false), applying the
	// time-oriented bias to memory and colliding with compute-skew
	// indices for deep pipelines. Memory now draws from its own
	// "mem|"-keyed stream with its own (smaller) bias.
	g, _ := model.GPT3("1.3B")
	pm, c := setup(t, g, 8, 4, 2)
	est := pm.Estimate(c)
	r, err := Simulate(pm, c, 5)
	if err != nil {
		t.Fatal(err)
	}
	fx := DefaultEffects()
	oldStream := 0
	for i := range r.StagePeakMem {
		// The new accounting must match the exported composition helper…
		want := ExpectedStageMem(&est.Stages[i], r.PeakInflight[i], fx, 5, c, i)
		if r.StagePeakMem[i] != want {
			t.Errorf("stage %d mem %v != ExpectedStageMem %v", i, r.StagePeakMem[i], want)
		}
		// …and must NOT match the historical time-stream reuse.
		sm := &est.Stages[i]
		base := sm.ParamMem + sm.OptMem +
			sm.ActPerMB*fx.ActSlack*float64(r.PeakInflight[i]) +
			sm.ExtraMem*fx.AllocRetain
		old := base * fx.timeSkew(5, c, i+1000, false)
		if r.StagePeakMem[i] == old {
			oldStream++
		}
		// The mem factor stays within its own tight band, not the time
		// band: |factor − 1| ≤ MemSkewBias + MemSkewAmp/2 < 1.6%.
		factor := r.StagePeakMem[i] / base
		if lim := fx.MemSkewBias + fx.MemSkewAmp/2 + 1e-12; math.Abs(factor-1) > lim {
			t.Errorf("stage %d mem skew factor %v outside ±%v band", i, factor, lim)
		}
	}
	if oldStream == len(r.StagePeakMem) {
		t.Error("memory perturbation still rides the time-skew stream")
	}
}

func TestSimulateBitDeterminismPinned(t *testing.T) {
	// Byte-identical determinism at a fixed seed: two runs of the same
	// (model, config, seed) must agree to the last bit in every field.
	g, _ := model.GPT3("1.3B")
	pm, c := setup(t, g, 8, 4, 2)
	a, err := Simulate(pm, c, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(pm, c, 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.IterTime) != math.Float64bits(b.IterTime) ||
		math.Float64bits(a.PeakMem) != math.Float64bits(b.PeakMem) {
		t.Fatalf("bit-level determinism broken: %x/%x vs %x/%x",
			math.Float64bits(a.IterTime), math.Float64bits(a.PeakMem),
			math.Float64bits(b.IterTime), math.Float64bits(b.PeakMem))
	}
	for i := range a.StagePeakMem {
		if math.Float64bits(a.StagePeakMem[i]) != math.Float64bits(b.StagePeakMem[i]) {
			t.Errorf("stage %d peak mem differs across identical runs", i)
		}
		if math.Float64bits(a.StageTime[i]) != math.Float64bits(b.StageTime[i]) {
			t.Errorf("stage %d time differs across identical runs", i)
		}
	}
}

func TestEffectsValidate(t *testing.T) {
	g, _ := model.GPT3("350M")
	pm, c := setup(t, g, 4, 2, 1)
	bad := []Effects{
		{TaskOverhead: -1, AllocRetain: 1, ActSlack: 1},
		{SkewAmp: -0.1, AllocRetain: 1, ActSlack: 1},
		{AllocRetain: 1.5, ActSlack: 1},
		{AllocRetain: 1, ActSlack: -0.2},
	}
	for i, fx := range bad {
		if _, err := SimulateEffects(pm, c, 1, OneFOneB, fx); err == nil {
			t.Errorf("bad effects #%d accepted", i)
		}
	}
}
