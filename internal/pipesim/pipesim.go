// Package pipesim is the execution substrate of this reproduction: a
// discrete-event simulator of the 1F1B pipeline schedule that plays
// the role of the paper's Megatron-LM runtime on real GPUs.
//
// Where the performance model (internal/perfmodel) composes closed-form
// expressions (Eq. 1–2), the simulator actually *schedules* every
// forward and backward task of every microbatch on every stage,
// honoring cross-stage data dependencies and per-stage serialization,
// and it layers deterministic second-order effects the analytic model
// ignores — per-stage execution skew (kernel-level behaviour the
// profiled averages miss), per-task framework overhead, and a caching
// allocator whose retained blocks differ from the model's conservative
// over-estimate. The gap between prediction and simulation is what
// Exp#8/#9 measure; without an independent substrate those experiments
// would be circular (DESIGN.md §2).
//
// The second-order effects are parameterized by an Effects struct:
// DefaultEffects is the realistic runtime, ModelFaithful zeroes every
// deviation so the simulator realizes exactly the model's assumptions.
// The model-faithful mode is what internal/diffcheck cross-checks
// Eq. 1–2 against: with effects off, any model/simulator divergence is
// a bug on one of the two sides, not a modeling gap (DESIGN.md §5e).
package pipesim

import (
	"fmt"
	"hash/fnv"

	"aceso/internal/config"
	"aceso/internal/perfmodel"
)

const (
	// taskOverhead is the per-task host-side cost (scheduler, Python
	// dispatch, NCCL enqueue) the analytic model does not see.
	taskOverhead = 60e-6
	// skewAmp is the amplitude of per-stage execution skew: real
	// kernels deviate from profiled averages by a few percent, biased
	// slightly slow (cache effects, clock throttling).
	skewAmp  = 0.05
	skewBias = 0.015
	// memSkewAmp/memSkewBias drive the *memory* perturbation (padding,
	// stream-ordered frees). Memory has its own keyed skew stream and
	// its own, smaller bias: allocator jitter is not kernel-time jitter,
	// and the historical bug of reusing the time stream (offset by
	// +1000) both applied the time-oriented bias to memory and collided
	// with compute-skew indices for deep pipelines.
	memSkewAmp  = 0.02
	memSkewBias = 0.005
	// allocRetain is the fraction of the model's worst-case allocator
	// reserve that a caching allocator actually holds on to. The model
	// intentionally over-estimates (§3.3); the simulator realizes less.
	allocRetain = 0.45
	// actSlack is the fraction of predicted per-microbatch activation
	// the runtime actually stashes (some buffers are reused in place).
	actSlack = 0.93
)

// Effects parameterizes every second-order deviation the simulator
// layers on top of the analytic model. The zero value is meaningless;
// construct with DefaultEffects (the realistic runtime) or
// ModelFaithful (all deviations off — the diffcheck oracle mode).
type Effects struct {
	// TaskOverhead is the per-task host-side cost added to every
	// forward and backward task (seconds).
	TaskOverhead float64
	// SkewAmp/SkewBias shape the multiplicative execution-time skew:
	// each (stage, direction) draws a deterministic multiplier
	// 1 + SkewBias + SkewAmp·(u − 0.5) with u uniform in [0, 1).
	SkewAmp  float64
	SkewBias float64
	// MemSkewAmp/MemSkewBias shape the multiplicative memory
	// perturbation, drawn from a dedicated "mem"-keyed stream.
	MemSkewAmp  float64
	MemSkewBias float64
	// AllocRetain scales the model's allocator over-estimate
	// (StageMetrics.ExtraMem); 1 realizes the model's assumption.
	AllocRetain float64
	// ActSlack scales the per-microbatch activation stash
	// (StageMetrics.ActPerMB); 1 realizes the model's assumption.
	ActSlack float64
}

// DefaultEffects returns the realistic runtime: overhead, skew and an
// allocator that retains less than the model's conservative reserve.
func DefaultEffects() Effects {
	return Effects{
		TaskOverhead: taskOverhead,
		SkewAmp:      skewAmp,
		SkewBias:     skewBias,
		MemSkewAmp:   memSkewAmp,
		MemSkewBias:  memSkewBias,
		AllocRetain:  allocRetain,
		ActSlack:     actSlack,
	}
}

// ModelFaithful returns the effects knob that makes the simulator
// realize exactly the performance model's assumptions: no overhead, no
// skew, the full activation stash and the full allocator reserve. In
// this mode the simulated per-stage peak memory equals Eq. 1
// term-for-term and the makespan differs from Eq. 2 only by genuine
// scheduling structure (see internal/diffcheck's signed band).
func ModelFaithful() Effects {
	return Effects{AllocRetain: 1, ActSlack: 1}
}

// validate rejects knobs outside their meaningful ranges.
func (fx Effects) validate() error {
	switch {
	case fx.TaskOverhead < 0:
		return fmt.Errorf("pipesim: TaskOverhead %v < 0", fx.TaskOverhead)
	case fx.SkewAmp < 0 || fx.MemSkewAmp < 0:
		return fmt.Errorf("pipesim: negative skew amplitude")
	case fx.AllocRetain < 0 || fx.AllocRetain > 1:
		return fmt.Errorf("pipesim: AllocRetain %v outside [0, 1]", fx.AllocRetain)
	case fx.ActSlack < 0 || fx.ActSlack > 1:
		return fmt.Errorf("pipesim: ActSlack %v outside [0, 1]", fx.ActSlack)
	}
	return nil
}

// Schedule selects the pipeline execution order.
type Schedule int

const (
	// OneFOneB is 1F1B (PipeDream-flush): stage i keeps at most p−i
	// microbatches in flight — the premise of the paper's Eq. 1.
	OneFOneB Schedule = iota
	// GPipe runs all forwards, then all backwards: identical compute,
	// but every stage stashes all N microbatches. Used by the ablation
	// benches to show why the memory model assumes 1F1B.
	GPipe
)

// Result is the outcome of simulating one training iteration.
type Result struct {
	IterTime float64 // makespan of the iteration (seconds)
	PeakMem  float64 // worst per-device memory across stages (bytes)
	OOM      bool    // true when some stage exceeded device memory

	StageTime    []float64 // per-stage busy-until time
	StagePeakMem []float64 // per-stage simulated peak memory
	PeakInflight []int     // per-stage max concurrently stashed microbatches
	StageBusy    []float64 // per-stage busy fraction of the makespan
	StageOOM     []bool    // per-stage memory verdict against CapMem
}

// BubbleFraction returns the mean pipeline idleness: 1 − average
// stage busy fraction.
func (r *Result) BubbleFraction() float64 {
	if len(r.StageBusy) == 0 {
		return 0
	}
	var sum float64
	for _, b := range r.StageBusy {
		sum += b
	}
	return 1 - sum/float64(len(r.StageBusy))
}

// timeSkew returns the deterministic execution-skew multiplier for one
// stage of one configuration. The stream keying (seed|stage|direction|
// config hash) predates the Effects struct and is kept byte-compatible
// so fixed-seed simulations reproduce across versions.
func (fx Effects) timeSkew(seed int64, cfg *config.Config, stage int, backward bool) float64 {
	if fx.SkewAmp == 0 && fx.SkewBias == 0 {
		return 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%v|%d", seed, stage, backward, cfg.Hash())
	u := float64(h.Sum64()%(1<<20)) / float64(1 << 20)
	return 1 + fx.SkewBias + fx.SkewAmp*(u-0.5)
}

// memSkew returns the deterministic memory-perturbation multiplier for
// one stage. Memory draws from its own "mem"-keyed stream: the
// historical implementation reused the time stream at index stage+1000,
// which collided with compute-skew indices for deep pipelines and
// applied the time-oriented bias to memory.
func (fx Effects) memSkew(seed int64, cfg *config.Config, stage int) float64 {
	if fx.MemSkewAmp == 0 && fx.MemSkewBias == 0 {
		return 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "mem|%d|%d|%d", seed, stage, cfg.Hash())
	u := float64(h.Sum64()%(1<<20)) / float64(1 << 20)
	return 1 + fx.MemSkewBias + fx.MemSkewAmp*(u-0.5)
}

// ExpectedStageMem composes the memory the simulator charges one stage:
// Eq. 1's terms with the effects knobs applied, times the stage's
// deterministic memory-skew multiplier. Exported so the differential
// harness (and tests) can assert the simulator's memory accounting
// term-for-term against an independently computed in-flight count.
func ExpectedStageMem(sm *perfmodel.StageMetrics, peakInflight int, fx Effects, seed int64, cfg *config.Config, stage int) float64 {
	mem := sm.ParamMem + sm.OptMem +
		sm.ActPerMB*fx.ActSlack*float64(peakInflight) +
		sm.ExtraMem*fx.AllocRetain
	return mem * fx.memSkew(seed, cfg, stage)
}

// Simulate executes one training iteration of cfg under the 1F1B
// schedule with the default (realistic) effects and returns the
// observed time and memory. The configuration must be valid for pm's
// graph and cluster.
func Simulate(pm *perfmodel.Model, cfg *config.Config, seed int64) (*Result, error) {
	return SimulateSchedule(pm, cfg, seed, OneFOneB)
}

// SimulateSchedule is Simulate with an explicit pipeline schedule.
func SimulateSchedule(pm *perfmodel.Model, cfg *config.Config, seed int64, sched Schedule) (*Result, error) {
	return SimulateEffects(pm, cfg, seed, sched, DefaultEffects())
}

// SimulateEffects is SimulateSchedule with an explicit effects knob —
// the entry point of the differential-validation harness, which runs
// the simulator in ModelFaithful mode against the analytic model.
func SimulateEffects(pm *perfmodel.Model, cfg *config.Config, seed int64, sched Schedule, fx Effects) (*Result, error) {
	if err := fx.validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(pm.Graph, pm.Cluster.TotalDevices()); err != nil {
		return nil, fmt.Errorf("pipesim: %w", err)
	}
	est := pm.Estimate(cfg)
	p := cfg.NumStages()
	n := est.Microbatches
	if n <= 0 {
		return nil, fmt.Errorf("pipesim: no microbatches (mbs %d > batch %d?)",
			cfg.MicroBatch, pm.Graph.GlobalBatch)
	}

	// Per-stage task durations with simulator-side effects applied.
	fwd := make([]float64, p)
	bwd := make([]float64, p)
	for i := 0; i < p; i++ {
		fwd[i] = est.Stages[i].FwdTime*fx.timeSkew(seed, cfg, i, false) + fx.TaskOverhead
		bwd[i] = est.Stages[i].BwdTime*fx.timeSkew(seed, cfg, i, true) + fx.TaskOverhead
	}

	// Build each stage's 1F1B task order: w warm-up forwards, then
	// alternating (forward, backward) pairs, then the cool-down
	// backwards. Stage p-1 has no warm-up; stage 0 warms up p-1 deep.
	type task struct {
		mb      int
		forward bool
	}
	order := make([][]task, p)
	for i := 0; i < p; i++ {
		w := p - 1 - i
		if w > n {
			w = n
		}
		if sched == GPipe {
			w = n // all forwards first
		}
		tasks := make([]task, 0, 2*n)
		for m := 0; m < w; m++ {
			tasks = append(tasks, task{m, true})
		}
		for m := w; m < n; m++ {
			tasks = append(tasks, task{m, true})
			tasks = append(tasks, task{m - w, false})
		}
		for m := n - w; m < n; m++ {
			tasks = append(tasks, task{m, false})
		}
		order[i] = tasks
	}

	// List-schedule: repeatedly advance any stage whose next task has
	// its cross-stage dependency satisfied. fwdDone/bwdDone hold
	// completion times; stageFree is per-stage serialization.
	fwdDone := make([][]float64, p)
	bwdDone := make([][]float64, p)
	for i := range fwdDone {
		fwdDone[i] = make([]float64, n)
		bwdDone[i] = make([]float64, n)
		for m := 0; m < n; m++ {
			fwdDone[i][m] = -1
			bwdDone[i][m] = -1
		}
	}
	stageFree := make([]float64, p)
	busy := make([]float64, p)
	next := make([]int, p)
	inflight := make([]int, p)
	peakInflight := make([]int, p)

	remaining := 0
	for i := range order {
		remaining += len(order[i])
	}
	for remaining > 0 {
		progressed := false
		for i := 0; i < p; i++ {
			for next[i] < len(order[i]) {
				t := order[i][next[i]]
				// Dependency readiness.
				ready := 0.0
				ok := true
				if t.forward {
					if i > 0 {
						ready = fwdDone[i-1][t.mb]
						ok = ready >= 0
					}
				} else {
					if i < p-1 {
						ready = bwdDone[i+1][t.mb]
						ok = ready >= 0
					} else {
						// The last stage's backward follows its own forward.
						ready = fwdDone[i][t.mb]
						ok = ready >= 0
					}
				}
				if !ok {
					break
				}
				start := stageFree[i]
				if ready > start {
					start = ready
				}
				if t.forward {
					end := start + fwd[i]
					fwdDone[i][t.mb] = end
					stageFree[i] = end
					busy[i] += fwd[i]
					inflight[i]++
					if inflight[i] > peakInflight[i] {
						peakInflight[i] = inflight[i]
					}
				} else {
					end := start + bwd[i]
					bwdDone[i][t.mb] = end
					stageFree[i] = end
					busy[i] += bwd[i]
					inflight[i]--
				}
				next[i]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("pipesim: schedule deadlock (internal error)")
		}
	}

	res := &Result{
		StageTime:    make([]float64, p),
		StagePeakMem: make([]float64, p),
		PeakInflight: peakInflight,
		StageBusy:    make([]float64, p),
		StageOOM:     make([]bool, p),
	}
	firstDev := 0
	for i := 0; i < p; i++ {
		t := stageFree[i] + est.Stages[i].DPSync
		res.StageTime[i] = t
		// The gradient all-reduce occupies the stage's devices just like
		// compute does: it extends StageTime, so it must count as busy
		// time too, or every dp>1 stage reads as artificially idle and
		// BubbleFraction overstates pipeline bubbles.
		busy[i] += est.Stages[i].DPSync
		if t > res.IterTime {
			res.IterTime = t
		}
		mem := ExpectedStageMem(&est.Stages[i], peakInflight[i], fx, seed, cfg, i)
		res.StagePeakMem[i] = mem
		if mem > res.PeakMem {
			res.PeakMem = mem
		}
		// Fault- and class-aware capacity: a derated or lower-class
		// device shrinks its stage's budget (CapMem ==
		// Cluster.MemoryBytes on healthy homogeneous hardware).
		cap := est.Stages[i].CapMem
		if cap <= 0 {
			cap = pm.Cluster.RangeMemory(firstDev, cfg.Stages[i].Devices)
		}
		if mem > cap {
			res.StageOOM[i] = true
			res.OOM = true
		}
		firstDev += cfg.Stages[i].Devices
	}
	for i := 0; i < p; i++ {
		if res.IterTime > 0 {
			res.StageBusy[i] = busy[i] / res.IterTime
		}
	}
	return res, nil
}
