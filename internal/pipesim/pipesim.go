// Package pipesim is the execution substrate of this reproduction: a
// discrete-event simulator of the 1F1B pipeline schedule that plays
// the role of the paper's Megatron-LM runtime on real GPUs.
//
// Where the performance model (internal/perfmodel) composes closed-form
// expressions (Eq. 1–2), the simulator actually *schedules* every
// forward and backward task of every microbatch on every stage,
// honoring cross-stage data dependencies and per-stage serialization,
// and it layers deterministic second-order effects the analytic model
// ignores — per-stage execution skew (kernel-level behaviour the
// profiled averages miss), per-task framework overhead, and a caching
// allocator whose retained blocks differ from the model's conservative
// over-estimate. The gap between prediction and simulation is what
// Exp#8/#9 measure; without an independent substrate those experiments
// would be circular (DESIGN.md §2).
package pipesim

import (
	"fmt"
	"hash/fnv"

	"aceso/internal/config"
	"aceso/internal/perfmodel"
)

const (
	// taskOverhead is the per-task host-side cost (scheduler, Python
	// dispatch, NCCL enqueue) the analytic model does not see.
	taskOverhead = 60e-6
	// skewAmp is the amplitude of per-stage execution skew: real
	// kernels deviate from profiled averages by a few percent, biased
	// slightly slow (cache effects, clock throttling).
	skewAmp  = 0.05
	skewBias = 0.015
	// allocRetain is the fraction of the model's worst-case allocator
	// reserve that a caching allocator actually holds on to. The model
	// intentionally over-estimates (§3.3); the simulator realizes less.
	allocRetain = 0.45
	// actSlack is the fraction of predicted per-microbatch activation
	// the runtime actually stashes (some buffers are reused in place).
	actSlack = 0.93
)

// Schedule selects the pipeline execution order.
type Schedule int

const (
	// OneFOneB is 1F1B (PipeDream-flush): stage i keeps at most p−i
	// microbatches in flight — the premise of the paper's Eq. 1.
	OneFOneB Schedule = iota
	// GPipe runs all forwards, then all backwards: identical compute,
	// but every stage stashes all N microbatches. Used by the ablation
	// benches to show why the memory model assumes 1F1B.
	GPipe
)

// Result is the outcome of simulating one training iteration.
type Result struct {
	IterTime float64 // makespan of the iteration (seconds)
	PeakMem  float64 // worst per-device memory across stages (bytes)
	OOM      bool    // true when some stage exceeded device memory

	StageTime    []float64 // per-stage busy-until time
	StagePeakMem []float64 // per-stage simulated peak memory
	PeakInflight []int     // per-stage max concurrently stashed microbatches
	StageBusy    []float64 // per-stage busy fraction of the makespan
}

// BubbleFraction returns the mean pipeline idleness: 1 − average
// stage busy fraction.
func (r *Result) BubbleFraction() float64 {
	if len(r.StageBusy) == 0 {
		return 0
	}
	var sum float64
	for _, b := range r.StageBusy {
		sum += b
	}
	return 1 - sum/float64(len(r.StageBusy))
}

// skew returns the deterministic execution-skew multiplier for one
// stage of one configuration.
func skew(seed int64, cfg *config.Config, stage int, backward bool) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%v|%d", seed, stage, backward, cfg.Hash())
	u := float64(h.Sum64()%(1<<20)) / float64(1<<20)
	return 1 + skewBias + skewAmp*(u-0.5)
}

// Simulate executes one training iteration of cfg under the 1F1B
// schedule and returns the observed time and memory. The configuration
// must be valid for pm's graph and cluster.
func Simulate(pm *perfmodel.Model, cfg *config.Config, seed int64) (*Result, error) {
	return SimulateSchedule(pm, cfg, seed, OneFOneB)
}

// SimulateSchedule is Simulate with an explicit pipeline schedule.
func SimulateSchedule(pm *perfmodel.Model, cfg *config.Config, seed int64, sched Schedule) (*Result, error) {
	if err := cfg.Validate(pm.Graph, pm.Cluster.TotalDevices()); err != nil {
		return nil, fmt.Errorf("pipesim: %w", err)
	}
	est := pm.Estimate(cfg)
	p := cfg.NumStages()
	n := est.Microbatches
	if n <= 0 {
		return nil, fmt.Errorf("pipesim: no microbatches (mbs %d > batch %d?)",
			cfg.MicroBatch, pm.Graph.GlobalBatch)
	}

	// Per-stage task durations with simulator-side effects applied.
	fwd := make([]float64, p)
	bwd := make([]float64, p)
	for i := 0; i < p; i++ {
		fwd[i] = est.Stages[i].FwdTime*skew(seed, cfg, i, false) + taskOverhead
		bwd[i] = est.Stages[i].BwdTime*skew(seed, cfg, i, true) + taskOverhead
	}

	// Build each stage's 1F1B task order: w warm-up forwards, then
	// alternating (forward, backward) pairs, then the cool-down
	// backwards. Stage p-1 has no warm-up; stage 0 warms up p-1 deep.
	type task struct {
		mb      int
		forward bool
	}
	order := make([][]task, p)
	for i := 0; i < p; i++ {
		w := p - 1 - i
		if w > n {
			w = n
		}
		if sched == GPipe {
			w = n // all forwards first
		}
		tasks := make([]task, 0, 2*n)
		for m := 0; m < w; m++ {
			tasks = append(tasks, task{m, true})
		}
		for m := w; m < n; m++ {
			tasks = append(tasks, task{m, true})
			tasks = append(tasks, task{m - w, false})
		}
		for m := n - w; m < n; m++ {
			tasks = append(tasks, task{m, false})
		}
		order[i] = tasks
	}

	// List-schedule: repeatedly advance any stage whose next task has
	// its cross-stage dependency satisfied. fwdDone/bwdDone hold
	// completion times; stageFree is per-stage serialization.
	fwdDone := make([][]float64, p)
	bwdDone := make([][]float64, p)
	for i := range fwdDone {
		fwdDone[i] = make([]float64, n)
		bwdDone[i] = make([]float64, n)
		for m := 0; m < n; m++ {
			fwdDone[i][m] = -1
			bwdDone[i][m] = -1
		}
	}
	stageFree := make([]float64, p)
	busy := make([]float64, p)
	next := make([]int, p)
	inflight := make([]int, p)
	peakInflight := make([]int, p)

	remaining := 0
	for i := range order {
		remaining += len(order[i])
	}
	for remaining > 0 {
		progressed := false
		for i := 0; i < p; i++ {
			for next[i] < len(order[i]) {
				t := order[i][next[i]]
				// Dependency readiness.
				ready := 0.0
				ok := true
				if t.forward {
					if i > 0 {
						ready = fwdDone[i-1][t.mb]
						ok = ready >= 0
					}
				} else {
					if i < p-1 {
						ready = bwdDone[i+1][t.mb]
						ok = ready >= 0
					} else {
						// The last stage's backward follows its own forward.
						ready = fwdDone[i][t.mb]
						ok = ready >= 0
					}
				}
				if !ok {
					break
				}
				start := stageFree[i]
				if ready > start {
					start = ready
				}
				if t.forward {
					end := start + fwd[i]
					fwdDone[i][t.mb] = end
					stageFree[i] = end
					busy[i] += fwd[i]
					inflight[i]++
					if inflight[i] > peakInflight[i] {
						peakInflight[i] = inflight[i]
					}
				} else {
					end := start + bwd[i]
					bwdDone[i][t.mb] = end
					stageFree[i] = end
					busy[i] += bwd[i]
					inflight[i]--
				}
				next[i]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("pipesim: schedule deadlock (internal error)")
		}
	}

	res := &Result{
		StageTime:    make([]float64, p),
		StagePeakMem: make([]float64, p),
		PeakInflight: peakInflight,
		StageBusy:    make([]float64, p),
	}
	for i := 0; i < p; i++ {
		t := stageFree[i] + est.Stages[i].DPSync
		res.StageTime[i] = t
		// The gradient all-reduce occupies the stage's devices just like
		// compute does: it extends StageTime, so it must count as busy
		// time too, or every dp>1 stage reads as artificially idle and
		// BubbleFraction overstates pipeline bubbles.
		busy[i] += est.Stages[i].DPSync
		if t > res.IterTime {
			res.IterTime = t
		}
		sm := &est.Stages[i]
		mem := sm.ParamMem + sm.OptMem +
			sm.ActPerMB*actSlack*float64(peakInflight[i]) +
			sm.ExtraMem*allocRetain
		// The same deterministic skew stream perturbs memory slightly
		// (padding, stream-ordered frees).
		mem *= skew(seed, cfg, i+1000, false)
		res.StagePeakMem[i] = mem
		if mem > res.PeakMem {
			res.PeakMem = mem
		}
		// Fault-aware capacity: a derated device shrinks its stage's
		// budget (CapMem == Cluster.MemoryBytes on healthy hardware).
		cap := sm.CapMem
		if cap <= 0 {
			cap = pm.Cluster.MemoryBytes
		}
		if mem > cap {
			res.OOM = true
		}
	}
	for i := 0; i < p; i++ {
		if res.IterTime > 0 {
			res.StageBusy[i] = busy[i] / res.IterTime
		}
	}
	return res, nil
}
