package dpsearch

import (
	"testing"

	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
)

func TestSearchFindsFeasibleConfig(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	res, err := Search(g, cl, Options{Seed: 1, MaxStages: 4, MicroBatches: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || !res.Estimate.Feasible {
		t.Fatal("no feasible configuration")
	}
	if err := res.Best.Validate(g, 4); err != nil {
		t.Fatalf("best config invalid: %v", err)
	}
	if res.Explored < 1000 {
		t.Errorf("Explored = %d; the DP should consider many candidates", res.Explored)
	}
}

func TestExploredGrowsWithModelSize(t *testing.T) {
	cl := hardware.DGX1V100(1).Restrict(4)
	small := model.Uniform(32, 1e11, 1e7, 1e6, 64)
	large := model.Uniform(96, 1e11, 1e7, 1e6, 64)
	opts := Options{Seed: 1, MaxStages: 4, MicroBatches: []int{1}}
	rs, err := Search(small, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Search(large, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Explored <= rs.Explored {
		t.Errorf("explored: 96 ops (%d) should exceed 32 ops (%d)", rl.Explored, rs.Explored)
	}
}

func TestDPFindsBalancedPartitionOnSkewedModel(t *testing.T) {
	// With heavy ops at the end, the DP should give the last stage
	// fewer ops than the first.
	g := model.Skewed(48, 2e11, 1e7, 1e6, 0.2, 64)
	cl := hardware.DGX1V100(1).Restrict(4)
	res, err := Search(g, cl, Options{Seed: 1, MaxStages: 4, MicroBatches: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.NumStages() < 2 {
		t.Skip("DP chose a single stage; imbalance test not applicable")
	}
	first := res.Best.Stages[0].NumOps()
	last := res.Best.Stages[res.Best.NumStages()-1].NumOps()
	if last > first {
		t.Errorf("last stage (%d ops) should not exceed first (%d) on a tail-heavy model", last, first)
	}
}

func TestSharedModelReuse(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	pm := perfmodel.New(g, cl, 1)
	res1, err := Search(g, cl, Options{Model: pm, MaxStages: 2, MicroBatches: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Search(g, cl, Options{Model: pm, MaxStages: 2, MicroBatches: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Estimate.IterTime != res2.Estimate.IterTime {
		t.Error("DP search not deterministic with a shared model")
	}
	if res1.Explored != res2.Explored {
		t.Error("explored counts differ across identical runs")
	}
}

func TestSearchErrors(t *testing.T) {
	g, _ := model.GPT3("350M")
	bad := hardware.DGX1V100(1)
	bad.Nodes = 0
	if _, err := Search(g, bad, Options{}); err == nil {
		t.Error("invalid cluster accepted")
	}
	bg := model.Uniform(4, 1e9, 1e6, 1e5, 64)
	bg.Ops[0].ActElems = 0
	if _, err := Search(bg, hardware.DGX1V100(1), Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
	// Unsatisfiable memory.
	tiny := hardware.DGX1V100(1).Restrict(1)
	tiny.MemoryBytes = 1 << 10
	if _, err := Search(g, tiny, Options{MaxStages: 1, MicroBatches: []int{1}}); err == nil {
		t.Error("expected no-feasible-configuration error")
	}
}
