// Package dpsearch is the pruned dynamic-programming comparator of
// Exp#4: a mathematical-programming search over the same configuration
// space (pipeline partition × per-stage tp/dp × per-stage
// recomputation × microbatch size), sharing Aceso's performance model
// for fairness, that explores orders of magnitude more configurations
// than the bottleneck-guided search to reach comparable plans.
//
// As in the paper, the space is pruned to stay tractable: stage sizes
// are bounded around the even split, tp/dp are powers of two, and the
// microbatch axis is a short list. Explored counts every candidate
// (op-range, devices, tp, dp, recompute) transition the DP considers —
// the figure Figure 10(a) plots.
package dpsearch

import (
	"fmt"
	"time"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
)

// Options bounds the pruned DP.
type Options struct {
	// MaxStages caps the pipeline depth (default 8).
	MaxStages int
	// MicroBatches lists the microbatch sizes to try (default {1,2,4}).
	MicroBatches []int
	// SlackFactor bounds stage op counts to [even/SlackFactor,
	// even·SlackFactor] (default 2).
	SlackFactor int
	// Model optionally reuses a shared performance model.
	Model *perfmodel.Model
	// Seed feeds the profiler when Model is nil.
	Seed int64
}

// Result is the outcome of the DP search.
type Result struct {
	Best     *config.Config
	Estimate *perfmodel.Estimate
	Explored int // candidate stage assignments considered (Fig 10a)
	Elapsed  time.Duration
}

// Search runs the pruned dynamic program for graph g over cluster cl.
func Search(g *model.Graph, cl hardware.Cluster, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxStages <= 0 {
		opts.MaxStages = 8
	}
	if len(opts.MicroBatches) == 0 {
		opts.MicroBatches = []int{1, 2, 4}
	}
	if opts.SlackFactor <= 1 {
		opts.SlackFactor = 2
	}
	pm := opts.Model
	if pm == nil {
		pm = perfmodel.New(g, cl, opts.Seed)
	}
	start := time.Now()
	res := &Result{}
	var bestTime float64
	devices := cl.TotalDevices()

	for _, mbs := range opts.MicroBatches {
		if g.GlobalBatch%mbs != 0 {
			continue
		}
		for s := 1; s <= opts.MaxStages && s <= devices && s <= len(g.Ops); s++ {
			devs, err := config.DeviceSplit(devices, s)
			if err != nil {
				continue
			}
			cfg := run(pm, g, devs, mbs, opts.SlackFactor, &res.Explored)
			if cfg == nil {
				continue
			}
			est := pm.Estimate(cfg)
			if !est.Feasible {
				continue
			}
			if res.Best == nil || est.IterTime < bestTime {
				res.Best, res.Estimate, bestTime = cfg, est, est.IterTime
			}
		}
	}
	res.Elapsed = time.Since(start)
	if res.Best == nil {
		return res, fmt.Errorf("dpsearch: no feasible configuration found")
	}
	return res, nil
}

// choice is a memoized per-stage evaluation.
type choice struct {
	cost float64 // per-microbatch fwd+bwd (steady-state contribution)
	mem  float64 // param+opt+extra (activation added per inflight)
	act  float64 // activation per in-flight microbatch
	ok   bool
}

type choiceKey struct {
	from, to, devices, tp, dp, mbs int
	rc                             bool
}

// run performs the linear-partition DP at op granularity for a fixed
// per-stage device split, minimizing the bottleneck per-microbatch
// stage time subject to per-position memory feasibility.
func run(pm *perfmodel.Model, g *model.Graph, devs []int, mbs, slack int, explored *int) *config.Config {
	n := len(g.Ops)
	s := len(devs)
	even := (n + s - 1) / s
	minOps := even / slack
	if minOps < 1 {
		minOps = 1
	}
	maxOps := even * slack

	memo := make(map[choiceKey]choice)
	eval := func(from, to, devices, tp, dp int, rc bool) choice {
		key := choiceKey{from, to, devices, tp, dp, mbs, rc}
		if c, ok := memo[key]; ok {
			return c
		}
		sm, err := pm.EvalStage(from, to, devices, tp, dp, rc, mbs, 0, 1, 0)
		c := choice{}
		if err == nil {
			c = choice{
				cost: sm.FwdTime + sm.BwdTime,
				mem:  sm.ParamMem + sm.OptMem + sm.ExtraMem,
				act:  sm.ActPerMB,
				ok:   true,
			}
		}
		memo[key] = c
		return c
	}

	const inf = 1e30
	type cell struct {
		cost   float64
		cut    int
		tp, dp int
		rc     bool
	}
	// f[i][j]: ops[0..i) in stages[0..j).
	f := make([][]cell, n+1)
	for i := range f {
		f[i] = make([]cell, s+1)
		for j := range f[i] {
			f[i][j].cost = inf
		}
	}
	f[0][0].cost = 0
	for j := 1; j <= s; j++ {
		inflight := s - (j - 1) // Eq. 1 position term for stage j-1
		for i := j; i <= n-(s-j); i++ {
			lo := i - maxOps
			if lo < j-1 {
				lo = j - 1
			}
			hi := i - minOps
			for k := lo; k <= hi; k++ {
				if f[k][j-1].cost >= inf {
					continue
				}
				d := devs[j-1]
				for tp := 1; tp <= d; tp *= 2 {
					dp := d / tp
					if tp*dp != d || mbs%dp != 0 {
						continue
					}
					for _, rc := range []bool{false, true} {
						*explored++
						c := eval(k, i, d, tp, dp, rc)
						if !c.ok {
							continue
						}
						if c.mem+c.act*float64(inflight) > pm.Cluster.MemoryBytes {
							continue
						}
						v := f[k][j-1].cost
						if c.cost > v {
							v = c.cost
						}
						if v < f[i][j].cost {
							f[i][j] = cell{cost: v, cut: k, tp: tp, dp: dp, rc: rc}
						}
					}
				}
			}
		}
	}
	if f[n][s].cost >= inf {
		return nil
	}
	cfg := &config.Config{MicroBatch: mbs, Stages: make([]config.Stage, s)}
	i := n
	for j := s; j >= 1; j-- {
		c := f[i][j]
		st := config.Stage{Start: c.cut, End: i, Devices: devs[j-1]}
		st.Ops = make([]config.OpSetting, st.NumOps())
		for x := range st.Ops {
			st.Ops[x] = config.OpSetting{TP: c.tp, DP: c.dp, Recompute: c.rc}
		}
		cfg.Stages[j-1] = st
		i = c.cut
	}
	if err := cfg.Validate(g, devsSum(devs)); err != nil {
		return nil
	}
	return cfg
}

func devsSum(devs []int) int {
	n := 0
	for _, d := range devs {
		n += d
	}
	return n
}
