package megatron

import (
	"testing"

	"aceso/internal/hardware"
	"aceso/internal/model"
)

func TestSearchFindsFeasibleGlobalConfig(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	res, err := Search(g, cl, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || !res.Estimate.Feasible {
		t.Fatal("no feasible grid point")
	}
	if err := res.Best.Validate(g, 4); err != nil {
		t.Fatalf("best config invalid: %v", err)
	}
	if res.Evaluated < 10 {
		t.Errorf("Evaluated = %d, grid suspiciously small", res.Evaluated)
	}
}

func TestConfigsAreGlobal(t *testing.T) {
	// Every op in a Megatron config shares the same tp, dp and
	// recompute setting — the global restriction the paper describes.
	g, _ := model.GPT3("1.3B")
	cl := hardware.DGX1V100(1)
	res, err := Search(g, cl, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Best.Stages[0].Ops[0]
	for i := range res.Best.Stages {
		st := &res.Best.Stages[i]
		if st.Devices != res.Best.Stages[0].Devices {
			t.Error("stages have unequal device counts")
		}
		for j := range st.Ops {
			if st.Ops[j] != first {
				t.Fatalf("op setting %+v differs from %+v: not global", st.Ops[j], first)
			}
		}
	}
	// Stage op counts must be even (±1 rounding).
	n0 := res.Best.Stages[0].NumOps()
	for i := range res.Best.Stages {
		d := res.Best.Stages[i].NumOps() - n0
		if d < -1 || d > 1 {
			t.Error("stage partition not even")
		}
	}
}

func TestMemoryPressureForcesRecomputeOrSharding(t *testing.T) {
	g, _ := model.GPT3("2.6B")
	cl := hardware.DGX1V100(1)
	res, err := Search(g, cl, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s0 := res.Best.Stages[0].Ops[0]
	if !s0.Recompute && s0.TP == 1 && res.Best.NumStages() == 1 {
		t.Error("2.6B on one 8-GPU node needs recompute, tp, or pipelining")
	}
}

func TestSearchErrors(t *testing.T) {
	g, _ := model.GPT3("350M")
	bad := hardware.DGX1V100(1)
	bad.MemoryBytes = 0
	if _, err := Search(g, bad, Options{}); err == nil {
		t.Error("invalid cluster accepted")
	}
	// Impossible memory: every grid point infeasible.
	tiny := hardware.DGX1V100(1).Restrict(1)
	tiny.MemoryBytes = 1 << 20
	if _, err := Search(g, tiny, Options{}); err == nil {
		t.Error("expected no-feasible-configuration error")
	}
}
