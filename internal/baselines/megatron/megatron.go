// Package megatron reproduces the paper's Megatron-LM baseline: a grid
// search over the five global configuration options (tp, dp, pp, b,
// recomp) evaluated with Aceso's performance model, exactly as §5
// describes ("to maximize its performance as a strong baseline, we
// performed a grid search over all these options using Aceso's
// performance model").
//
// Megatron-LM sets every option globally — all layers share the same
// tensor/data-parallel degrees, stages are (layer-)even partitions,
// and recomputation is all-or-nothing — which is precisely the
// configuration-space restriction the case studies in §5.4 exploit.
package megatron

import (
	"fmt"
	"time"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
)

// Result is the outcome of the grid search.
type Result struct {
	Best      *config.Config
	Estimate  *perfmodel.Estimate
	Evaluated int // grid points evaluated
	Elapsed   time.Duration
}

// Options bounds the grid.
type Options struct {
	// MaxMicroBatch caps the microbatch axis (default 64).
	MaxMicroBatch int
	// Model optionally reuses a shared performance model.
	Model *perfmodel.Model
	// Seed feeds the profiler when Model is nil.
	Seed int64
}

// Search grid-searches (pp, tp, dp, b, recomp) for graph g over
// cluster cl and returns the best feasible configuration.
func Search(g *model.Graph, cl hardware.Cluster, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxMicroBatch <= 0 {
		opts.MaxMicroBatch = 64
	}
	pm := opts.Model
	if pm == nil {
		pm = perfmodel.New(g, cl, opts.Seed)
	}
	start := time.Now()
	devices := cl.TotalDevices()

	res := &Result{}
	var bestTime float64
	for pp := 1; pp <= devices && pp <= len(g.Ops); pp *= 2 {
		perStage := devices / pp
		if perStage*pp != devices {
			continue
		}
		for tp := 1; tp <= perStage; tp *= 2 {
			dp := perStage / tp
			if tp*dp != perStage {
				continue
			}
			for mbs := dp; mbs <= g.GlobalBatch && mbs <= opts.MaxMicroBatch; mbs *= 2 {
				if g.GlobalBatch%mbs != 0 || mbs%dp != 0 {
					continue
				}
				for _, recomp := range []bool{false, true} {
					cfg, err := build(g, devices, pp, tp, dp, mbs, recomp)
					if err != nil {
						continue
					}
					res.Evaluated++
					est := pm.Estimate(cfg)
					if !est.Feasible {
						continue
					}
					if res.Best == nil || est.IterTime < bestTime {
						res.Best, res.Estimate, bestTime = cfg, est, est.IterTime
					}
				}
			}
		}
	}
	res.Elapsed = time.Since(start)
	if res.Best == nil {
		return res, fmt.Errorf("megatron: no feasible configuration in the grid")
	}
	return res, nil
}

// build constructs the global Megatron-style configuration: even
// op-count stages, uniform tp×dp everywhere, all-or-nothing
// recomputation.
func build(g *model.Graph, devices, pp, tp, dp, mbs int, recomp bool) (*config.Config, error) {
	n := len(g.Ops)
	if pp > n {
		return nil, fmt.Errorf("megatron: more stages than ops")
	}
	c := &config.Config{MicroBatch: mbs, Stages: make([]config.Stage, pp)}
	perStage := devices / pp
	for s := 0; s < pp; s++ {
		startOp := s * n / pp
		endOp := (s + 1) * n / pp
		st := config.Stage{Start: startOp, End: endOp, Devices: perStage}
		st.Ops = make([]config.OpSetting, st.NumOps())
		for j := range st.Ops {
			st.Ops[j] = config.OpSetting{TP: tp, DP: dp, Recompute: recomp}
		}
		c.Stages[s] = st
	}
	if err := c.Validate(g, devices); err != nil {
		return nil, err
	}
	return c, nil
}
