package alpa

import (
	"errors"
	"testing"
	"time"

	"aceso/internal/hardware"
	"aceso/internal/model"
)

func TestSearchFindsFeasibleConfig(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	res, err := Search(g, cl, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || !res.Estimate.Feasible {
		t.Fatal("no feasible configuration")
	}
	if err := res.Best.Validate(g, 4); err != nil {
		t.Fatalf("best config invalid: %v", err)
	}
	if res.Kernels == 0 {
		t.Error("no kernels recorded")
	}
	if res.EmulatedSearchCost <= res.Elapsed {
		t.Error("emulated cost must include the compile charge")
	}
}

func TestStageSettingsUniform(t *testing.T) {
	// Alpa never configures below layer-group granularity, and our
	// stage materialization is uniform per stage.
	g, _ := model.GPT3("1.3B")
	cl := hardware.DGX1V100(1)
	res, err := Search(g, cl, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Best.Stages {
		st := &res.Best.Stages[i]
		for j := 1; j < len(st.Ops); j++ {
			if st.Ops[j] != st.Ops[0] {
				t.Fatal("intra-stage op settings differ: exceeds Alpa's space")
			}
		}
	}
	// Recomputation is all-or-nothing model-wide.
	rc := res.Best.Stages[0].Ops[0].Recompute
	for i := range res.Best.Stages {
		for j := range res.Best.Stages[i].Ops {
			if res.Best.Stages[i].Ops[j].Recompute != rc {
				t.Fatal("per-op recomputation: exceeds Alpa's space")
			}
		}
	}
}

func TestDeepModelFailsCompilation(t *testing.T) {
	g, err := model.DeepTransformer(128)
	if err != nil {
		t.Fatal(err)
	}
	cl := hardware.DGX1V100(1)
	_, err = Search(g, cl, Options{Seed: 1})
	if !errors.Is(err, ErrTooDeep) {
		t.Fatalf("err = %v, want ErrTooDeep", err)
	}
	// 64 layers still compiles.
	g64, _ := model.DeepTransformer(64)
	if _, err := Search(g64, cl, Options{Seed: 1, LayerGroupsGrid: []int{8}, MaxMicroBatch: 4}); err != nil {
		t.Fatalf("64 layers should compile: %v", err)
	}
}

func TestSearchCostGrowsWithLayerGroups(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	small, err := Search(g, cl, Options{Seed: 1, LayerGroupsGrid: []int{4}, MaxMicroBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Search(g, cl, Options{Seed: 1, LayerGroupsGrid: []int{24}, MaxMicroBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if big.Kernels <= small.Kernels {
		t.Errorf("kernels: l=24 (%d) should exceed l=4 (%d)", big.Kernels, small.Kernels)
	}
	if big.EmulatedSearchCost <= small.EmulatedSearchCost {
		t.Error("emulated search cost should grow with l")
	}
}

func TestCompileCostHonored(t *testing.T) {
	g, _ := model.GPT3("350M")
	cl := hardware.DGX1V100(1).Restrict(4)
	res, err := Search(g, cl, Options{Seed: 1, LayerGroupsGrid: []int{4}, MaxMicroBatch: 2, CompileCost: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	want := res.Elapsed + time.Duration(res.Kernels)*time.Second
	if res.EmulatedSearchCost != want {
		t.Errorf("EmulatedSearchCost = %v, want %v", res.EmulatedSearchCost, want)
	}
}

func TestSearchErrors(t *testing.T) {
	g, _ := model.GPT3("350M")
	bad := hardware.DGX1V100(1)
	bad.IntraBW = 0
	if _, err := Search(g, bad, Options{}); err == nil {
		t.Error("invalid cluster accepted")
	}
	bg := model.Uniform(4, 1e9, 1e6, 1e5, 64)
	bg.GlobalBatch = -1
	if _, err := Search(bg, hardware.DGX1V100(1), Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
}
