// Package alpa implements an Alpa-like two-level automated-parallelism
// baseline (Zheng et al., OSDI'22) against the same performance
// substrate as Aceso.
//
// Faithfully to the system the paper compares against, this baseline:
//
//   - groups operators into l contiguous layer groups and never
//     configures below group granularity;
//   - runs an inter-op dynamic program that partitions the groups into
//     pipeline stages over an even device split;
//   - chooses each stage's intra-op plan (tp×dp factorization) with a
//     communication-only cost estimator — the §5.1 simplification
//     ("the computation time of all operators is treated as 0 ... only
//     communication time is considered") that makes Alpa prefer data
//     parallelism and miss compute-efficiency-driven mixes;
//   - treats recomputation and microbatch size as manual grid axes
//     (model-wide recomputation only, no op-level choice);
//   - pays a compile-and-profile charge per distinct kernel it
//     evaluates. Real Alpa compiles XLA executables for every (group,
//     sharding) it costs, which dominates its hours-long search time;
//     with no XLA here, each distinct kernel is charged
//     Options.CompileCost and reported in EmulatedSearchCost.
//
// Deep-model behaviour follows the published observation (Exp#3):
// compilation fails beyond 64 layers, reported as ErrTooDeep.
package alpa

import (
	"errors"
	"fmt"
	"time"

	"aceso/internal/config"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/perfmodel"
)

// MaxCompilableLayers is the deepest model the emulated XLA pipeline
// accepts, matching the failure point observed in the paper's Exp#3.
const MaxCompilableLayers = 64

// ErrTooDeep reports the emulated compilation failure on deep models.
var ErrTooDeep = errors.New("alpa: XLA compilation failed (model deeper than 64 layers)")

// Options bounds the grid axes that Alpa configures manually.
type Options struct {
	// LayerGroupsGrid lists the l values to grid over (default {8, 16},
	// clamped to the model's layer count).
	LayerGroupsGrid []int
	// MaxMicroBatch caps the microbatch axis (default 64).
	MaxMicroBatch int
	// CompileCost is the emulated per-kernel compile+profile charge
	// (default 200ms — of the order real XLA compilation costs).
	CompileCost time.Duration
	// Model optionally reuses a shared performance model.
	Model *perfmodel.Model
	// Seed feeds the profiler when Model is nil.
	Seed int64
}

// Result is the outcome of the Alpa-like search.
type Result struct {
	Best      *config.Config
	Estimate  *perfmodel.Estimate
	Evaluated int // full configurations evaluated
	Kernels   int // distinct kernels compiled+profiled
	// Elapsed is the solver's measured wall time; EmulatedSearchCost
	// adds the per-kernel compile charge (the figure comparable to the
	// paper's reported Alpa search cost).
	Elapsed            time.Duration
	EmulatedSearchCost time.Duration
}

// Search runs the Alpa-like search for graph g over cluster cl.
func Search(g *model.Graph, cl hardware.Cluster, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	if layers := g.Layers(); layers > MaxCompilableLayers {
		return nil, fmt.Errorf("%w: %d layers", ErrTooDeep, layers)
	}
	if opts.MaxMicroBatch <= 0 {
		opts.MaxMicroBatch = 64
	}
	if opts.CompileCost <= 0 {
		opts.CompileCost = 200 * time.Millisecond
	}
	if len(opts.LayerGroupsGrid) == 0 {
		opts.LayerGroupsGrid = []int{8, 16}
	}
	pm := opts.Model
	if pm == nil {
		pm = perfmodel.New(g, cl, opts.Seed)
	}
	start := time.Now()
	devices := cl.TotalDevices()

	res := &Result{}
	kernels := make(map[kernelKey]bool)
	var bestTime float64
	for _, l := range opts.LayerGroupsGrid {
		if l > len(g.Ops) {
			l = len(g.Ops)
		}
		if l < 1 {
			continue
		}
		// Alpa clusters operators into l uniform layer groups before
		// solving; boundaries are op-count-even, not cost-balanced —
		// part of why coarse granularity costs it plan quality.
		groups := evenGroups(len(g.Ops), l)
		for mbs := 1; mbs <= g.GlobalBatch && mbs <= opts.MaxMicroBatch; mbs *= 2 {
			if g.GlobalBatch%mbs != 0 {
				continue
			}
			for _, recomp := range []bool{false, true} {
				cfg := interOpDP(pm, g, groups, devices, mbs, recomp, kernels)
				if cfg == nil {
					continue
				}
				res.Evaluated++
				est := pm.Estimate(cfg)
				if !est.Feasible {
					continue
				}
				if res.Best == nil || est.IterTime < bestTime {
					res.Best, res.Estimate, bestTime = cfg, est, est.IterTime
				}
			}
		}
	}
	res.Kernels = len(kernels)
	res.Elapsed = time.Since(start)
	res.EmulatedSearchCost = res.Elapsed + time.Duration(res.Kernels)*opts.CompileCost
	if res.Best == nil {
		return res, fmt.Errorf("alpa: no feasible configuration found")
	}
	return res, nil
}

type kernelKey struct {
	gFrom, gTo, tp, dp, mbs int
	recomp                  bool
}

// interOpDP partitions the layer groups into pipeline stages. For each
// stage count it runs the classic linear-partition DP minimizing the
// bottleneck stage cost, then materializes the best configuration.
func interOpDP(pm *perfmodel.Model, g *model.Graph, groups [][2]int,
	devices, mbs int, recomp bool, kernels map[kernelKey]bool) *config.Config {

	l := len(groups)
	var best *config.Config
	var bestCost float64
	maxStages := l
	if devices < maxStages {
		maxStages = devices
	}
	for s := 1; s <= maxStages; s++ {
		devs, err := config.DeviceSplit(devices, s)
		if err != nil {
			continue
		}
		cfg, cost := partitionDP(pm, g, groups, devs, mbs, recomp, kernels)
		if cfg == nil {
			continue
		}
		if best == nil || cost < bestCost {
			best, bestCost = cfg, cost
		}
	}
	return best
}

// partitionDP assigns contiguous group ranges to the given per-stage
// device counts, minimizing the maximum per-stage cost under Alpa's
// comm-only intra-op estimator.
func partitionDP(pm *perfmodel.Model, g *model.Graph, groups [][2]int,
	devs []int, mbs int, recomp bool, kernels map[kernelKey]bool) (*config.Config, float64) {

	l := len(groups)
	s := len(devs)
	if l < s {
		return nil, 0
	}
	const inf = 1e30
	// f[i][j]: groups[0..i) assigned to stages[0..j); value = max cost.
	f := make([][]float64, l+1)
	cut := make([][]int, l+1)
	tpOf := make([][]int, l+1) // chosen tp for the stage ending the prefix
	for i := range f {
		f[i] = make([]float64, s+1)
		cut[i] = make([]int, s+1)
		tpOf[i] = make([]int, s+1)
		for j := range f[i] {
			f[i][j] = inf
		}
	}
	f[0][0] = 0
	for j := 1; j <= s; j++ {
		for i := j; i <= l-(s-j); i++ {
			for k := j - 1; k < i; k++ {
				if f[k][j-1] >= inf {
					continue
				}
				cost, tp := stageCost(pm, g, groups[k][0], groups[i-1][1], devs[j-1], mbs, recomp, k, i, kernels)
				if cost >= inf {
					continue
				}
				v := f[k][j-1]
				if cost > v {
					v = cost
				}
				if v < f[i][j] {
					f[i][j] = v
					cut[i][j] = k
					tpOf[i][j] = tp
				}
			}
		}
	}
	if f[l][s] >= inf {
		return nil, 0
	}
	// Reconstruct.
	type stagePlan struct{ from, to, tp int }
	plans := make([]stagePlan, s)
	i := l
	for j := s; j >= 1; j-- {
		k := cut[i][j]
		plans[j-1] = stagePlan{groups[k][0], groups[i-1][1], tpOf[i][j]}
		i = k
	}
	cfg := &config.Config{MicroBatch: mbs, Stages: make([]config.Stage, s)}
	for j := 0; j < s; j++ {
		st := config.Stage{Start: plans[j].from, End: plans[j].to, Devices: devs[j]}
		tp := plans[j].tp
		dp := devs[j] / tp
		st.Ops = make([]config.OpSetting, st.NumOps())
		for x := range st.Ops {
			st.Ops[x] = config.OpSetting{TP: tp, DP: dp, Recompute: recomp}
		}
		cfg.Stages[j] = st
	}
	if err := cfg.Validate(g, devsSum(devs)); err != nil {
		return nil, 0
	}
	return cfg, f[l][s]
}

func devsSum(devs []int) int {
	n := 0
	for _, d := range devs {
		n += d
	}
	return n
}

// stageCost evaluates one candidate stage the way Alpa does: the
// intra-op pass enumerates tp×dp factorizations of the stage's devices,
// keeps the memory-feasible ones, and picks the one with the lowest
// communication time — computation differences between shardings are
// ignored (the §5.1 simplification that makes Alpa miss compute-
// efficiency-driven mixes). The inter-op DP, however, balances stages
// on their full per-microbatch latency, which Alpa's stage model does
// capture; that latency of the comm-chosen sharding is returned.
func stageCost(pm *perfmodel.Model, g *model.Graph, from, to, devices, mbs int,
	recomp bool, gFrom, gTo int, kernels map[kernelKey]bool) (float64, int) {

	const inf = 1e30
	bestComm := inf
	bestTime := inf
	bestTP := 0
	for tp := 1; tp <= devices; tp *= 2 {
		dp := devices / tp
		if tp*dp != devices || mbs%dp != 0 {
			continue
		}
		kernels[kernelKey{gFrom, gTo, tp, dp, mbs, recomp}] = true
		sm, err := pm.EvalStage(from, to, devices, tp, dp, recomp, mbs, 0, 1, 0)
		if err != nil {
			continue
		}
		if sm.ParamMem+sm.OptMem+sm.ActPerMB+sm.ExtraMem > pm.Cluster.MemoryBytes {
			continue
		}
		comm := sm.TPComm + sm.DPSync/float64(maxInt(1, g.GlobalBatch/mbs))
		if comm < bestComm {
			bestComm = comm
			bestTime = sm.FwdTime + sm.BwdTime
			bestTP = tp
		}
	}
	if bestTP == 0 {
		return inf, 0
	}
	return bestTime, bestTP
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// evenGroups clusters n operators into l contiguous, op-count-even
// groups.
func evenGroups(n, l int) [][2]int {
	if l > n {
		l = n
	}
	out := make([][2]int, 0, l)
	for i := 0; i < l; i++ {
		out = append(out, [2]int{i * n / l, (i + 1) * n / l})
	}
	return out
}
