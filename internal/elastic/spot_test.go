package elastic

import (
	"context"
	"math"
	"strings"
	"testing"

	"aceso/internal/hardware"
	"aceso/internal/obs"
	"aceso/internal/runtime"
)

func countTransitions(rep *ChurnReport, kind TransitionKind) int {
	n := 0
	for _, tr := range rep.Transitions {
		if tr.Kind == kind {
			n++
		}
	}
	return n
}

// TestSuperviseNoticeDrainZeroLostSteps is the spot acceptance core: a
// preemption notice whose window covers the checkpoint cost drains the
// doomed device proactively — final checkpoint inside the window,
// switchover to the pre-warmed plan, zero lost steps, and a trajectory
// that still matches the uninterrupted run to float tolerance.
func TestSuperviseNoticeDrainZeroLostSteps(t *testing.T) {
	const iters = 8
	refLosses, ref := refRun(t, iters)

	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	cl := hardware.DGX1V100(1).Restrict(4)
	x, y := trainData(42)
	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam

	reg := obs.NewRegistry()
	opt := superviseOpts(t)
	opt.Metrics = reg
	opt.CheckpointCost = 1
	// Notice at iteration 3 with a 2-iteration window: reclaim at 5,
	// switchover at 4 — the window covers the checkpoint cost.
	spec := ChurnSpec{Events: []ChurnEvent{
		{Iteration: 3, Kind: PreemptNotice, Device: 2, Notice: 2},
	}}
	rep, err := Supervise(context.Background(), g, cl, cfg, p, x, y, iters, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Notices != 1 || rep.CleanDrains != 1 || rep.NoticesMissed != 0 {
		t.Fatalf("notices %d, clean drains %d, missed %d; want 1/1/0",
			rep.Notices, rep.CleanDrains, rep.NoticesMissed)
	}
	if rep.StepsLost != 0 {
		t.Fatalf("steps lost %d, want 0: a covered notice must drain losslessly", rep.StepsLost)
	}
	if rep.FaultsDetected != 0 {
		t.Fatalf("faults detected %d, want 0: the drain pre-empts the fault path", rep.FaultsDetected)
	}
	if len(rep.Losses) != iters || rep.FinalStep != iters {
		t.Fatalf("losses %d, final step %d; want %d", len(rep.Losses), rep.FinalStep, iters)
	}
	for i := range refLosses {
		if math.Abs(rep.Losses[i]-refLosses[i]) > tol {
			t.Errorf("iter %d: loss %.12f vs reference %.12f", i, rep.Losses[i], refLosses[i])
		}
	}
	if d := ref.MaxDiff(rep.Params); d > tol {
		t.Errorf("final state differs by %g from uninterrupted run", d)
	}
	if !hasTransition(rep, TransNotice) || !hasTransition(rep, TransDrain) {
		t.Errorf("transition log missing notice/drain: %+v", rep.Transitions)
	}
	if rep.Replans == 0 {
		t.Error("no pre-warmed replan recorded for an in-use device drain")
	}
	checkMonotone(t, rep.Steps)
	for _, name := range []string{
		obs.SpotNoticesTotal, obs.SpotCleanDrainsTotal, obs.SpotPrewarmReplansTotal,
		obs.ChurnEventsTotal + `{kind="preempt-notice"}`,
	} {
		if reg.Counter(name).Value() == 0 {
			t.Errorf("metric %s = 0, want > 0", name)
		}
	}
	if v := reg.Counter(obs.SpotNoticesMissedTotal).Value(); v != 0 {
		t.Errorf("metric %s = %v, want 0", obs.SpotNoticesMissedTotal, v)
	}
}

// TestSuperviseNoticeMissedFallsBack: a window shorter than the
// checkpoint cost cannot drain cleanly — the supervisor records a typed
// *NoticeMissedError and the reclaim fires through the ordinary in-plan
// preemption path (mid-segment fault, rollback, ladder recovery).
func TestSuperviseNoticeMissedFallsBack(t *testing.T) {
	const iters = 8
	refLosses, ref := refRun(t, iters)

	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	cl := hardware.DGX1V100(1).Restrict(4)
	x, y := trainData(42)
	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam

	reg := obs.NewRegistry()
	opt := superviseOpts(t)
	opt.Metrics = reg
	opt.CheckpointCost = 3
	// Notice at iteration 2 with a 1-iteration window: cost 3 > window
	// 1, so the drain is impossible — reclaim lands mid-segment at 3.
	spec := ChurnSpec{Events: []ChurnEvent{
		{Iteration: 2, Kind: PreemptNotice, Device: 2, Notice: 1},
	}}
	rep, err := Supervise(context.Background(), g, cl, cfg, p, x, y, iters, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Notices != 1 || rep.NoticesMissed != 1 || rep.CleanDrains != 0 {
		t.Fatalf("notices %d, missed %d, clean drains %d; want 1/1/0",
			rep.Notices, rep.NoticesMissed, rep.CleanDrains)
	}
	if len(rep.NoticeMisses) != 1 {
		t.Fatalf("NoticeMisses %v, want exactly one typed entry", rep.NoticeMisses)
	}
	nm := rep.NoticeMisses[0]
	if nm.Device != 2 || nm.Window != 1 || nm.Cost != 3 || nm.Deadline != 3 {
		t.Fatalf("NoticeMissedError fields %+v, want device 2, window 1, cost 3, deadline 3", nm)
	}
	if !strings.Contains(nm.Error(), "device 2") {
		t.Errorf("NoticeMissedError message %q does not name the device", nm.Error())
	}
	if rep.FaultsDetected != 1 {
		t.Fatalf("faults detected %d, want 1: the reclaim must reuse the preempt path", rep.FaultsDetected)
	}
	if rep.StepsLost == 0 {
		t.Error("a missed notice reclaiming mid-segment should lose work")
	}
	if !hasTransition(rep, TransNoticeMissed) || !hasTransition(rep, TransFault) {
		t.Errorf("transition log missing notice-missed/fault: %+v", rep.Transitions)
	}
	if hasTransition(rep, TransDrain) {
		t.Errorf("unexpected clean drain in %+v", rep.Transitions)
	}
	if len(rep.Losses) != iters || rep.FinalStep != iters {
		t.Fatalf("losses %d, final step %d; want %d", len(rep.Losses), rep.FinalStep, iters)
	}
	for i := range refLosses {
		if math.Abs(rep.Losses[i]-refLosses[i]) > tol {
			t.Errorf("iter %d: loss %.12f vs reference %.12f", i, rep.Losses[i], refLosses[i])
		}
	}
	if d := ref.MaxDiff(rep.Params); d > tol {
		t.Errorf("final state differs by %g from uninterrupted run", d)
	}
	if reg.Counter(obs.SpotNoticesMissedTotal).Value() == 0 {
		t.Errorf("metric %s = 0, want > 0", obs.SpotNoticesMissedTotal)
	}
	if v := reg.Counter(obs.SpotCleanDrainsTotal).Value(); v != 0 {
		t.Errorf("metric %s = %v, want 0", obs.SpotCleanDrainsTotal, v)
	}
}

// TestSuperviseDoublePreemptSameDevice pins the semantics of the shared
// in-plan-preemption predicate: a second preempt of an already-dead
// device is a pure no-op — no second fault, no rollback, no cadence or
// hysteresis churn.
func TestSuperviseDoublePreemptSameDevice(t *testing.T) {
	const iters = 8

	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	cl := hardware.DGX1V100(1).Restrict(4)
	x, y := trainData(42)
	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam

	spec := ChurnSpec{Events: []ChurnEvent{
		{Iteration: 3, Kind: Preempt, Device: 2},
		{Iteration: 5, Kind: Preempt, Device: 2},
	}}
	rep, err := Supervise(context.Background(), g, cl, cfg, p, x, y, iters, spec, superviseOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultsDetected != 1 {
		t.Fatalf("faults detected %d, want 1: the second preempt must not fire", rep.FaultsDetected)
	}
	if n := countTransitions(rep, TransFault); n != 1 {
		t.Fatalf("%d fault transitions, want exactly 1", n)
	}
	if rep.EventsApplied != 2 || rep.EventCounts["preempt"] != 2 {
		t.Fatalf("events applied %d (%v), want both preempts consumed", rep.EventsApplied, rep.EventCounts)
	}
	sawNoOp := false
	for _, tr := range rep.Transitions {
		if tr.Kind == TransEvent && strings.Contains(tr.Detail, "already dead") {
			sawNoOp = true
		}
	}
	if !sawNoOp {
		t.Errorf("second preempt did not log the already-dead no-op: %+v", rep.Transitions)
	}
	// The no-op must not disturb recovery bookkeeping: exactly one
	// recovery, and the run still completes every iteration.
	if len(rep.Recoveries) != 1 {
		t.Errorf("%d recoveries recorded, want 1", len(rep.Recoveries))
	}
	if rep.FinalStep != iters || len(rep.Losses) != iters {
		t.Fatalf("final step %d, losses %d; want %d", rep.FinalStep, len(rep.Losses), iters)
	}
	checkMonotone(t, rep.Steps)
}

// TestSuperviseNoticeCanceledByRealPreempt: an unnoticed preempt that
// reclaims a device before its armed drain fires cancels the drain —
// the device dies through the fault path and the drain never double
// fires.
func TestSuperviseNoticeCanceledByRealPreempt(t *testing.T) {
	const iters = 8

	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	cl := hardware.DGX1V100(1).Restrict(4)
	x, y := trainData(42)
	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam

	opt := superviseOpts(t)
	opt.CheckpointCost = 1
	// Drain armed at 2 (switchover at 5), but the device is yanked
	// without ceremony at 3.
	spec := ChurnSpec{Events: []ChurnEvent{
		{Iteration: 2, Kind: PreemptNotice, Device: 2, Notice: 4},
		{Iteration: 3, Kind: Preempt, Device: 2},
	}}
	rep, err := Supervise(context.Background(), g, cl, cfg, p, x, y, iters, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Notices != 1 || rep.FaultsDetected != 1 {
		t.Fatalf("notices %d, faults %d; want 1/1", rep.Notices, rep.FaultsDetected)
	}
	if rep.CleanDrains != 0 {
		t.Fatalf("clean drains %d, want 0: the real preempt canceled the drain", rep.CleanDrains)
	}
	if hasTransition(rep, TransDrain) {
		t.Errorf("canceled drain still fired: %+v", rep.Transitions)
	}
	if rep.FinalStep != iters {
		t.Fatalf("final step %d, want %d", rep.FinalStep, iters)
	}
	checkMonotone(t, rep.Steps)
}
