package elastic

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"aceso/internal/config"
	"aceso/internal/model"
	"aceso/internal/runtime"
	"aceso/internal/tensor"
)

const (
	dim    = 8
	layers = 4
	batch  = 16
	lr     = 0.05
)

func buildMLP(t testing.TB) *model.Graph {
	t.Helper()
	g, err := model.MLP(layers, dim, batch)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func trainData(seed int64) (x, y *tensor.Mat) {
	rng := rand.New(rand.NewSource(seed))
	x = tensor.New(batch, dim)
	y = tensor.New(batch, dim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	return x, y
}

// uniformCfg builds a config with the same tp/dp on every op.
func uniformCfg(t testing.TB, g *model.Graph, stages, devPerStage, tp, dp, mbs int) *config.Config {
	t.Helper()
	cfg, err := config.Balanced(g, stages*devPerStage, stages, mbs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Stages {
		for j := range cfg.Stages[i].Ops {
			cfg.Stages[i].Ops[j] = config.OpSetting{TP: tp, DP: dp, Dim: 0}
		}
	}
	if err := cfg.Validate(g, stages*devPerStage); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// trainedState returns a sharded state with real Adam moments.
func trainedState(t *testing.T, g *model.Graph, cfg *config.Config) (*State, *runtime.Params) {
	t.Helper()
	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam
	x, y := trainData(42)
	if _, err := runtime.Serial(g, p, x, y, cfg.MicroBatch, lr, 2); err != nil {
		t.Fatal(err)
	}
	st, err := ShardState(g, cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return st, p
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	st, p := trainedState(t, g, cfg)

	got, err := Decode(Encode(st))
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != st.Step || got.Seed != st.Seed || got.Opt != st.Opt {
		t.Fatalf("scalar state: got {%d %d %d}, want {%d %d %d}",
			got.Step, got.Seed, got.Opt, st.Step, st.Seed, st.Opt)
	}
	// Bitwise identity through assembly.
	q, err := AssembleState(got)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.MaxDiff(q); d != 0 {
		t.Fatalf("round-tripped state differs by %g, want bitwise identity", d)
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	g := buildMLP(t)
	cfg := uniformCfg(t, g, 1, 4, 2, 2, 4)
	st, p := trainedState(t, g, cfg)
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries after Save, want 1", len(entries))
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	q, err := AssembleState(got)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.MaxDiff(q); d != 0 {
		t.Fatalf("loaded state differs by %g", d)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 1, 1, 1, 4)
	st, _ := trainedState(t, g, cfg)
	good := Encode(st)

	t.Run("bit flip payload", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[headerLen+5] ^= 0x40
		var ce *ChecksumError
		if _, err := Decode(bad); !errors.As(err, &ce) {
			t.Fatalf("err = %v, want *ChecksumError", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 7, headerLen, len(good) - 9, len(good) - 1} {
			if _, err := Decode(good[:n]); err == nil {
				t.Fatalf("truncation to %d bytes accepted", n)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 'X'
		var fe *FormatError
		if _, err := Decode(bad); !errors.As(err, &fe) {
			t.Fatalf("err = %v, want *FormatError", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[8] = 99
		var ve *VersionError
		if _, err := Decode(bad); !errors.As(err, &ve) || ve.Got != 99 {
			t.Fatalf("err = %v, want *VersionError{Got: 99}", err)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := Decode(append(append([]byte(nil), good...), 0xAB)); err == nil {
			t.Fatal("trailing byte accepted")
		}
	})
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.ckpt")); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
}

func TestAssembleRejectsGapsAndOverlaps(t *testing.T) {
	g := buildMLP(t)
	cfg := uniformCfg(t, g, 1, 4, 4, 1, 4)
	st, _ := trainedState(t, g, cfg)

	// Gap: drop one rank's shards entirely.
	gap := &State{Step: st.Step, Seed: st.Seed, Opt: st.Opt, Ranks: st.Ranks[1:]}
	if _, err := AssembleState(gap); err == nil {
		t.Fatal("assembly with a missing rank succeeded")
	}

	// Overlap: duplicate a rank.
	dup := &State{Step: st.Step, Seed: st.Seed, Opt: st.Opt,
		Ranks: append(append([]RankShard(nil), st.Ranks...), st.Ranks[0])}
	if _, err := AssembleState(dup); err == nil {
		t.Fatal("assembly with duplicated shards succeeded")
	}
}

// TestCrashBetweenWriteAndRenameLeavesLineageIntact simulates Save
// dying after its temp file was fully written and fsynced but before
// the rename: the prior checkpoint must still load (atomicity), and
// SweepTemps must clear exactly the orphaned temp on startup.
func TestCrashBetweenWriteAndRenameLeavesLineageIntact(t *testing.T) {
	g := buildMLP(t)
	cfg := uniformCfg(t, g, 1, 4, 2, 2, 4)
	st, p := trainedState(t, g, cfg)
	dir := t.TempDir()
	path := filepath.Join(dir, "aceso.ckpt")
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}

	// Replay Save's steps up to (not including) the rename — the crash
	// point. The orphan is a fully-written, checksummed payload of a
	// *newer* state that never became the checkpoint.
	newer := &State{Step: st.Step + 1, Seed: st.Seed, Opt: st.Opt, Ranks: st.Ranks}
	f, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(Encode(newer)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// A second, torn orphan from an even earlier crash mid-write.
	torn := filepath.Join(dir, ".ckpt-torn")
	if err := os.WriteFile(torn, Encode(newer)[:10], 0o644); err != nil {
		t.Fatal(err)
	}

	// The committed checkpoint is untouched by the crashed attempt.
	got, err := Load(path)
	if err != nil {
		t.Fatalf("checkpoint unreadable after crashed save attempt: %v", err)
	}
	if got.Step != st.Step {
		t.Fatalf("loaded step %d, want %d (the orphan must not be visible)", got.Step, st.Step)
	}

	removed, err := SweepTemps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("SweepTemps removed %d files, want 2", removed)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "aceso.ckpt" {
		t.Fatalf("dir not clean after sweep: %v", entries)
	}
	// Lineage continues: the next Save + Load round-trips bitwise.
	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	q, err := AssembleState(got)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.MaxDiff(q); d != 0 {
		t.Fatalf("post-sweep lineage differs by %g", d)
	}
	if _, err := SweepTemps(dir); err != nil {
		t.Fatal(err)
	}
}
