package elastic

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"aceso/internal/config"
	"aceso/internal/core"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/obs"
	"aceso/internal/runtime"
	"aceso/internal/tensor"
)

// Options tunes the elastic training driver.
type Options struct {
	// LR is the learning rate passed through to the runtime.
	LR float64
	// CheckpointEvery is the segment length in iterations: training
	// runs in segments of this many iterations with a checkpoint at
	// every boundary (default 1 — checkpoint each iteration).
	CheckpointEvery int
	// Dir, when non-empty, persists each checkpoint to
	// Dir/aceso.ckpt via the atomic Save path and recovers through
	// Load — the full file round trip. Empty keeps checkpoints in
	// memory.
	Dir string
	// CommDeadline bounds every collective wait in the runtime
	// (default 30s); it is what turns a missing rank into a typed
	// error instead of a hung World.
	CommDeadline time.Duration
	// SearchBudget bounds the Replan search after a fault
	// (default 200ms).
	SearchBudget time.Duration
	// Seed drives the replan search.
	Seed int64
	// Metrics, when non-nil, receives aceso_elastic_* counters and the
	// recovery timer. Nil disables metering at zero overhead.
	Metrics *obs.Registry
}

// Report is the outcome of an elastic training run.
type Report struct {
	// Losses holds one loss per completed iteration, stitched across
	// the fault: pre-fault segments up to the last checkpoint, then
	// the resumed trajectory.
	Losses []float64
	// Steps records the optimizer step counter after every successful
	// segment — the chaos harness asserts it is strictly monotone.
	Steps []int
	// Params is the final training state. On a fault the caller's
	// params object is torn (stages stopped mid-iteration at different
	// points, like a crashed fleet); the recovered state lives here.
	Params *runtime.Params
	// Config is the plan training ended on (the replanned config when
	// a fault fired, the original otherwise).
	Config *config.Config
	// FinalStep is Params.Step at exit.
	FinalStep int
	// FaultsInjected / Checkpoints / Reshards count recovery events.
	FaultsInjected int
	Checkpoints    int
	Reshards       int
	// Recovery is the wall time from fault detection to resumed
	// training (replan + reshard + restore).
	Recovery time.Duration
	// ReshardBytesMoved is the physical data movement the reshard
	// implied (shard overlap that changed devices).
	ReshardBytesMoved int64
}

// meters holds pre-resolved metric handles; a nil *meters disables
// metering (the nil-guarded zero-overhead-off pattern).
type meters struct {
	faults      *obs.Counter
	checkpoints *obs.Counter
	restores    *obs.Counter
	reshards    *obs.Counter
	bytesMoved  *obs.Counter
	recovery    *obs.Timer
}

func newMeters(reg *obs.Registry) *meters {
	if reg == nil {
		return nil
	}
	return &meters{
		faults:      reg.Counter(obs.ElasticFaultsInjectedTotal),
		checkpoints: reg.Counter(obs.ElasticCheckpointsTotal),
		restores:    reg.Counter(obs.ElasticRestoresTotal),
		reshards:    reg.Counter(obs.ElasticReshardsTotal),
		bytesMoved:  reg.Counter(obs.ElasticReshardBytesMovedTotal),
		recovery:    reg.Timer(obs.ElasticRecovery),
	}
}

func (m *meters) fault() {
	if m != nil {
		m.faults.Inc()
	}
}

func (m *meters) checkpoint() {
	if m != nil {
		m.checkpoints.Inc()
	}
}

func (m *meters) restore() {
	if m != nil {
		m.restores.Inc()
	}
}

func (m *meters) reshard(bytes int64) {
	if m != nil {
		m.reshards.Inc()
		m.bytesMoved.Add(bytes)
	}
}

func (m *meters) recovered(d time.Duration) {
	if m != nil {
		m.recovery.Observe(d)
	}
}

// Train runs iters iterations of elastic training: segments of
// Options.CheckpointEvery iterations with a checkpoint at every
// boundary. When fault is non-nil the runtime kills device fault.Rank
// at the top of iteration fault.Iteration (0-based, absolute within
// this run); Train then closes the recovery loop — mark the device
// dead in a hardware.FaultSpec, core.Replan on the degraded cluster,
// reshard the last checkpoint onto the best runnable candidate, and
// resume until all iters are done. One fault per run is supported: the
// healthy cluster degrades once, and the checkpoint lineage stays
// linear.
//
// Because checkpoint/reshard are exact and every valid config is
// semantic-preserving, the recovered run re-joins the uninterrupted
// trajectory: the stitched loss curve matches a fault-free run on the
// original config to floating-point tolerance.
func Train(ctx context.Context, g *model.Graph, cl hardware.Cluster, cfg *config.Config, p *runtime.Params, x, y *tensor.Mat, iters int, fault *runtime.FaultPlan, opt Options) (*Report, error) {
	if opt.CheckpointEvery <= 0 {
		opt.CheckpointEvery = 1
	}
	if opt.CommDeadline <= 0 {
		opt.CommDeadline = 30 * time.Second
	}
	if opt.SearchBudget <= 0 {
		opt.SearchBudget = 200 * time.Millisecond
	}
	if fault != nil && (fault.Iteration < 0 || fault.Iteration >= iters) {
		return nil, fmt.Errorf("elastic: fault iteration %d out of range [0, %d)", fault.Iteration, iters)
	}
	m := newMeters(opt.Metrics)
	rep := &Report{Params: p, Config: cfg}
	stepZero := p.Step

	// Clear temp files orphaned by a crash mid-Save before the lineage
	// starts growing again.
	if opt.Dir != "" {
		if _, err := SweepTemps(opt.Dir); err != nil {
			return nil, err
		}
	}

	// ckpt is the most recent durable state; take one before the first
	// iteration so even an iteration-0 fault has something to restore.
	ckpt, err := ShardState(g, cfg, p)
	if err != nil {
		return nil, err
	}
	if err := persist(opt.Dir, ckpt); err != nil {
		return nil, err
	}
	m.checkpoint()
	rep.Checkpoints++

	cur, curP := cfg, p
	done := 0
	for done < iters {
		seg := opt.CheckpointEvery
		if left := iters - done; left < seg {
			seg = left
		}
		ro := runtime.RunOptions{CommDeadline: opt.CommDeadline}
		if fault != nil && fault.Iteration >= done && fault.Iteration < done+seg {
			ro.Fault = &runtime.FaultPlan{Rank: fault.Rank, Iteration: fault.Iteration - done}
		}
		losses, err := runtime.ParallelOpts(g, cur, curP, x, y, opt.LR, seg, ro)
		if err == nil {
			rep.Losses = append(rep.Losses, losses...)
			rep.Steps = append(rep.Steps, curP.Step)
			done += seg
			if ckpt, err = ShardState(g, cur, curP); err != nil {
				return rep, err
			}
			if err := persist(opt.Dir, ckpt); err != nil {
				return rep, err
			}
			m.checkpoint()
			rep.Checkpoints++
			continue
		}

		var lost *runtime.DeviceLostError
		if !errors.As(err, &lost) {
			// Not a planned device loss: surface it. Partial losses from
			// the failed segment are discarded — the state is torn.
			return rep, err
		}
		fault = nil // consumed
		m.fault()
		rep.FaultsInjected++
		began := time.Now()

		newCfg, newP, bytes, err := recoverPlan(ctx, g, cl, cur, curP.Arch, lost.Rank, ckpt, opt, m)
		if err != nil {
			return rep, err
		}
		rep.Recovery = time.Since(began)
		m.recovered(rep.Recovery)
		rep.Reshards++
		rep.ReshardBytesMoved = bytes

		// Roll back to the checkpointed step: iterations after it re-run
		// on the new plan (their losses were never recorded — Losses only
		// grows at segment boundaries, which is where checkpoints are).
		done = ckpt.Step - stepZero
		cur, curP = newCfg, newP
		rep.Config, rep.Params = cur, curP
	}
	rep.FinalStep = curP.Step
	return rep, nil
}

// recoverPlan turns a device loss into a resumable (config, params) pair:
// degrade the cluster, Replan, pick the best runnable candidate,
// reshard the last checkpoint onto it, and reassemble full params.
func recoverPlan(ctx context.Context, g *model.Graph, cl hardware.Cluster, prev *config.Config, arch *runtime.Arch, deadRank int, ckpt *State, opt Options, m *meters) (*config.Config, *runtime.Params, int64, error) {
	spec := hardware.FaultSpec{Devices: []hardware.DeviceFault{{Device: deadRank, Dead: true}}}
	degraded, err := cl.Degrade(spec)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("elastic: degrade: %w", err)
	}

	// Restore once up front: candidate filtering needs the weights to
	// check runnability (tp divisibility against actual tensor shapes).
	if opt.Dir != "" {
		if ckpt, err = Load(ckptPath(opt.Dir)); err != nil {
			return nil, nil, 0, err
		}
	}
	restored, err := AssembleState(ckpt)
	if err != nil {
		return nil, nil, 0, err
	}
	restored.Arch = arch
	m.restore()

	res, err := core.Replan(ctx, g, cl, spec, prev, core.Options{
		TimeBudget: opt.SearchBudget,
		Seed:       opt.Seed,
	})
	if err != nil {
		return nil, nil, 0, fmt.Errorf("elastic: replan: %w", err)
	}
	next := pickRunnable(g, degraded, res, restored)
	if next == nil {
		// The search found nothing executable; fall back to the direct
		// projection of the surviving plan.
		proj, err := core.ProjectConfig(g, prev, degraded.TotalDevices())
		if err != nil {
			return nil, nil, 0, fmt.Errorf("elastic: no runnable replanned config and projection failed: %w", err)
		}
		if !runnable(g, degraded, proj, restored) {
			return nil, nil, 0, fmt.Errorf("elastic: projected config not runnable on %d devices", degraded.TotalDevices())
		}
		next = proj
	}

	resharded, err := Reshard(g, next, ckpt)
	if err != nil {
		return nil, nil, 0, err
	}
	// Bytes moved compares physical devices: the checkpoint's ranks are
	// healthy-cluster physical ranks, the new plan's are logical ranks
	// of the degraded cluster.
	bytes := BytesMoved(ckpt, resharded, nil, degraded.PhysOf)
	m.reshard(bytes)

	// Resume from the *resharded* state, not the assembly shortcut —
	// this is the path that proves reshard exactness end to end.
	newP, err := AssembleState(resharded)
	if err != nil {
		return nil, nil, 0, err
	}
	newP.Arch = arch
	return next, newP, bytes, nil
}

// pickRunnable returns the first candidate (best first) the runtime
// can actually execute, or nil.
func pickRunnable(g *model.Graph, cl hardware.Cluster, res *core.Result, p *runtime.Params) *config.Config {
	cands := append([]core.Candidate{res.Best}, res.TopK...)
	for i := range cands {
		c := cands[i].Config
		if c != nil && runnable(g, cl, c, p) {
			return c
		}
	}
	return nil
}

// runnable checks a candidate against both the config validator and
// the runtime's executability preflight.
func runnable(g *model.Graph, cl hardware.Cluster, c *config.Config, p *runtime.Params) bool {
	if c.Validate(g, cl.TotalDevices()) != nil {
		return false
	}
	if c.MicroBatch <= 0 || g.GlobalBatch%c.MicroBatch != 0 {
		return false
	}
	return runtime.CheckRunnable(g, c, p) == nil
}

// ckptPath is the single-lineage checkpoint file under dir.
func ckptPath(dir string) string { return filepath.Join(dir, "aceso.ckpt") }

// persist saves the checkpoint when a directory is configured.
func persist(dir string, st *State) error {
	if dir == "" {
		return nil
	}
	return Save(ckptPath(dir), st)
}
