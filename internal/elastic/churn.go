// Continuous-churn supervision: where Train recovers from a single
// planned fault, Supervise rides an arbitrary stream of fleet events —
// preemptions, re-additions, stragglers, fabric derates — the
// operating reality of spot/preemptible capacity. The supervisor owns
// the *policy* layer the one-shot path did not need: backoff for
// transient timeouts, hysteresis before paying for a replan search, a
// checkpoint cadence that adapts to the observed fault rate, and a
// graceful-degradation ladder (project → warm replan → shrink → pause)
// when capacity drops. Every decision is emitted as a typed Transition
// through obs, so a run's recovery story is inspectable after the fact.
package elastic

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"aceso/internal/comm"
	"aceso/internal/config"
	"aceso/internal/core"
	"aceso/internal/hardware"
	"aceso/internal/model"
	"aceso/internal/obs"
	"aceso/internal/perfmodel"
	"aceso/internal/runtime"
	"aceso/internal/tensor"
)

// ChurnKind enumerates the fleet events a training run can experience.
type ChurnKind uint8

const (
	// Preempt removes a physical device (spot reclaim, crash). If the
	// device is part of the running plan the loss surfaces through the
	// runtime as a mid-iteration *DeviceLostError; an idle spare is
	// removed at the segment boundary.
	Preempt ChurnKind = iota
	// Readd returns a previously-removed or derated physical device to
	// full service (hardware.Restore; logical-rank re-expansion).
	Readd
	// SlowNode derates a device's throughput to Scale (thermal
	// throttling, a noisy neighbor). Scale 1 restores full speed.
	SlowNode
	// LinkDerate scales the cluster's link bandwidth to Scale
	// (congestion, a flaky NIC). Scale 1 restores the healthy fabric.
	LinkDerate
	// PreemptNotice announces that Device will be reclaimed Notice
	// iterations after Iteration — the advance warning spot capacity
	// gives before a reclaim. The supervisor drains the device
	// proactively: immediate checkpoint, pre-warmed replan on the
	// post-reclaim fleet while the doomed device still serves, and a
	// switchover timed so the final checkpoint completes inside the
	// window — zero lost steps when Notice ≥ CheckpointCost. A window
	// too short for a checkpoint falls back to the plain Preempt path
	// (typed *NoticeMissedError).
	PreemptNotice

	numChurnKinds
)

// String implements fmt.Stringer.
func (k ChurnKind) String() string {
	switch k {
	case Preempt:
		return "preempt"
	case Readd:
		return "readd"
	case SlowNode:
		return "slow-node"
	case LinkDerate:
		return "link-derate"
	case PreemptNotice:
		return "preempt-notice"
	}
	return fmt.Sprintf("churn-kind-%d", uint8(k))
}

// ChurnEvent is one fleet change, due at the boundary of the 0-based
// absolute training iteration Iteration (in-plan preemptions fire
// mid-iteration through the runtime's fault injection instead).
type ChurnEvent struct {
	Iteration int
	Kind      ChurnKind
	// Device is the physical rank on the healthy cluster (Preempt,
	// Readd, SlowNode; ignored for LinkDerate).
	Device int
	// Scale is the derate factor for SlowNode (FLOPS) and LinkDerate
	// (bandwidth): (0, 1), with 1 meaning "restored".
	Scale float64
	// Notice is PreemptNotice's advance warning in iterations: the
	// device is reclaimed at Iteration+Notice. Ignored by other kinds.
	Notice int
}

// ChurnSpec is a schedule of churn events. Order does not matter;
// Supervise sorts a copy by iteration (stable, so same-iteration
// events keep their relative order). Events stamped past the run's
// iteration count are normally never reached, but a paused run (see
// the degradation ladder) consumes the remaining schedule in order
// while it waits for capacity.
type ChurnSpec struct {
	Events []ChurnEvent
}

// Validate checks the schedule against a cluster size. All failure
// modes are errors, never panics — specs may come from fuzzers.
func (s *ChurnSpec) Validate(totalDevices int) error {
	for i, ev := range s.Events {
		if ev.Iteration < 0 {
			return fmt.Errorf("elastic: event %d: iteration %d < 0", i, ev.Iteration)
		}
		if ev.Kind >= numChurnKinds {
			return fmt.Errorf("elastic: event %d: unknown kind %d", i, uint8(ev.Kind))
		}
		if ev.Kind != LinkDerate && (ev.Device < 0 || ev.Device >= totalDevices) {
			return fmt.Errorf("elastic: event %d: device %d out of range [0, %d)", i, ev.Device, totalDevices)
		}
		if ev.Kind == SlowNode || ev.Kind == LinkDerate {
			if math.IsNaN(ev.Scale) || ev.Scale <= 0 || ev.Scale > 1 {
				return fmt.Errorf("elastic: event %d: scale %v outside (0, 1]", i, ev.Scale)
			}
		}
		if ev.Kind == PreemptNotice && ev.Notice < 0 {
			return fmt.Errorf("elastic: event %d: negative notice window %d", i, ev.Notice)
		}
	}
	return nil
}

// TransitionKind labels supervisor state transitions.
type TransitionKind string

// Supervisor transition kinds, in rough lifecycle order.
const (
	TransEvent          TransitionKind = "event"           // churn event applied at a boundary
	TransFault          TransitionKind = "fault"           // in-plan device loss detected mid-segment
	TransCadence        TransitionKind = "cadence"         // adaptive checkpoint cadence changed
	TransLadderProject  TransitionKind = "ladder-project"  // recovered via ProjectConfig (no search)
	TransLadderReplan   TransitionKind = "ladder-replan"   // recovered via warm Replan search
	TransLadderShrink   TransitionKind = "ladder-shrink"   // shrunk to the largest runnable subset
	TransLadderPause    TransitionKind = "ladder-pause"    // out of capacity; waiting for re-addition
	TransResume         TransitionKind = "resume"          // training resumed after recovery
	TransReplanDeferred TransitionKind = "replan-deferred" // hysteresis absorbed a degradation
	TransReplanForced   TransitionKind = "replan-forced"   // threshold or persistence forced a replan
	TransReplanKept     TransitionKind = "replan-kept"     // forced replan found nothing better
	TransBackoffRetry   TransitionKind = "backoff-retry"   // timeout retried after backoff
	TransNotice         TransitionKind = "preempt-notice"  // advance reclaim warning received; drain armed
	TransDrain          TransitionKind = "notice-drain"    // proactive switchover completed inside the window
	TransNoticeMissed   TransitionKind = "notice-missed"   // window too short for a checkpoint; reclaim falls back to preempt
)

// Transition is one supervisor decision, stamped with the optimizer
// step it was taken at.
type Transition struct {
	Step   int
	Kind   TransitionKind
	Detail string
}

// StalledError reports a supervised run that ran out of capacity with
// no re-addition left in the churn schedule: the graceful-degradation
// ladder reached pause-and-wait and the wait cannot end.
type StalledError struct {
	Step  int // optimizer step of the last durable checkpoint
	Alive int // devices still alive
}

// Error implements the error interface.
func (e *StalledError) Error() string {
	return fmt.Sprintf("elastic: training stalled at step %d: %d devices alive and no usable re-addition left in the churn schedule",
		e.Step, e.Alive)
}

// NoticeMissedError reports a preempt notice whose window could not
// absorb a checkpoint (Window < CheckpointCost): the proactive drain
// is impossible and the reclaim falls back to the in-plan Preempt
// path, where the partial segment at the deadline is lost. Recorded in
// ChurnReport.NoticeMisses and counted in aceso_spot_* metrics rather
// than returned — the supervisor still recovers.
type NoticeMissedError struct {
	Device   int
	Window   int // iterations of advance warning the notice gave
	Cost     int // configured checkpoint cost in iterations
	Deadline int // absolute iteration the device is reclaimed at
}

// Error implements the error interface.
func (e *NoticeMissedError) Error() string {
	return fmt.Sprintf("elastic: preempt notice for device %d missed: %d-iteration window cannot absorb a %d-iteration checkpoint; reclaim at iteration %d falls back to the preempt path",
		e.Device, e.Window, e.Cost, e.Deadline)
}

// SuperviseOptions tunes the churn supervisor. The embedded Options
// are shared with Train; CheckpointEvery seeds the adaptive cadence.
type SuperviseOptions struct {
	Options

	// ReplanThreshold is the projected fractional throughput loss (or
	// idle-capacity gain) above which a churn event triggers an
	// immediate warm replan; smaller blips are debounced. Default 0.15.
	ReplanThreshold float64
	// HysteresisEvents is how many consecutive deferred degradations
	// accumulate before the supervisor replans anyway — persistence
	// beats the threshold. Default 3.
	HysteresisEvents int
	// BackoffBase/BackoffCap bound the capped exponential backoff
	// between retries of a segment that failed with
	// *comm.CollectiveTimeoutError. Defaults 2ms / 50ms; jitter is
	// deterministic from Seed.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// MaxRetries caps consecutive timeout retries of one segment
	// before the error is surfaced. Default 3.
	MaxRetries int
	// MaxCadence caps the adaptive checkpoint cadence (iterations per
	// checkpoint); the floor is 1. Default 4.
	MaxCadence int
	// SimulateTimeouts fails the first N segment attempts with a
	// synthetic *comm.CollectiveTimeoutError before touching the
	// runtime — a deterministic hook for exercising the backoff policy
	// from tests and the chaos harness.
	SimulateTimeouts int
	// CheckpointCost is how many iterations' worth of time one
	// checkpoint write occupies when racing a preempt notice's window:
	// a PreemptNotice with Notice ≥ CheckpointCost drains proactively
	// (the switchover fires CheckpointCost iterations before the
	// deadline so the final checkpoint completes in time) with zero
	// lost steps; a shorter window is a missed notice and the reclaim
	// falls back to the in-plan Preempt path. Default 0: checkpoints
	// are instantaneous and every window fits.
	CheckpointCost int
	// OnTransition, when non-nil, observes every supervisor transition
	// as it happens (they are also collected in ChurnReport).
	OnTransition func(Transition)
}

// ChurnReport is the outcome of a supervised run.
type ChurnReport struct {
	// Losses, Steps, Params, Config, FinalStep mirror Report.
	Losses    []float64
	Steps     []int
	Params    *runtime.Params
	Config    *config.Config
	FinalStep int

	// EventsApplied counts schedule events consumed; EventCounts
	// breaks them down by ChurnKind string.
	EventsApplied int
	EventCounts   map[string]int
	// FaultsDetected counts in-plan device losses surfaced by the
	// runtime (a subset of the preempt events).
	FaultsDetected int
	// Checkpoints/Reshards/ReshardBytesMoved mirror Report.
	Checkpoints       int
	Reshards          int
	ReshardBytesMoved int64
	// Replans counts replan searches run; ReplansAvoided counts the
	// searches hysteresis (or a good-enough projection) avoided.
	Replans        int
	ReplansAvoided int
	// Ladder counts recovery commits per rung ("project", "replan",
	// "shrink").
	Ladder map[string]int
	// Retries counts timeout retries; Pauses counts pause-and-wait
	// episodes.
	Retries int
	Pauses  int
	// Recoveries holds the wall time of each fault recovery
	// (detection → resumed training).
	Recoveries []time.Duration
	// IterationsExecuted counts every iteration the fleet ran,
	// including partial segments discarded by a rollback; StepsLost is
	// the discarded portion. Availability derives from the two.
	IterationsExecuted int
	StepsLost          int
	// FinalCadence is the adaptive checkpoint cadence at exit.
	FinalCadence int
	// Notices counts preempt notices received; CleanDrains the
	// notice-driven drains completed with zero lost steps (proactive
	// switchover or idle reclaim inside the window); NoticesMissed the
	// notices whose window could not absorb a checkpoint, so the
	// reclaim fell back to the Preempt path.
	Notices       int
	CleanDrains   int
	NoticesMissed int
	// NoticeMisses holds the typed error recorded for each missed
	// notice, in schedule order.
	NoticeMisses []*NoticeMissedError
	// Transitions is the full supervisor decision log.
	Transitions []Transition
}

// Availability is the fraction of executed iterations that counted
// toward training progress (1 = no work was ever discarded).
func (r *ChurnReport) Availability() float64 {
	if r.IterationsExecuted == 0 {
		return 1
	}
	return float64(len(r.Losses)) / float64(r.IterationsExecuted)
}

// RecoveryPercentile returns the q-quantile (0 ≤ q ≤ 1) of recovery
// wall times, or 0 when no recovery happened.
func (r *ChurnReport) RecoveryPercentile(q float64) time.Duration {
	if len(r.Recoveries) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.Recoveries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// churnMeters extends the elastic meters with churn-policy counters;
// nil disables metering at zero overhead.
type churnMeters struct {
	*meters
	reg            *obs.Registry
	faults         *obs.Counter
	replans        *obs.Counter
	replansAvoided *obs.Counter
	retries        *obs.Counter
	pauses         *obs.Counter
	stepsLost      *obs.Counter
	recovery       *obs.Timer
	notices        *obs.Counter
	cleanDrains    *obs.Counter
	noticesMissed  *obs.Counter
	prewarms       *obs.Counter
}

func newChurnMeters(reg *obs.Registry) *churnMeters {
	if reg == nil {
		return nil
	}
	return &churnMeters{
		meters:         newMeters(reg),
		reg:            reg,
		faults:         reg.Counter(obs.ChurnFaultsTotal),
		replans:        reg.Counter(obs.ChurnReplansTotal),
		replansAvoided: reg.Counter(obs.ChurnReplansAvoidedTotal),
		retries:        reg.Counter(obs.ChurnBackoffRetriesTotal),
		pauses:         reg.Counter(obs.ChurnPausesTotal),
		stepsLost:      reg.Counter(obs.ChurnStepsLostTotal),
		recovery:       reg.Timer(obs.ChurnRecovery),
		notices:        reg.Counter(obs.SpotNoticesTotal),
		cleanDrains:    reg.Counter(obs.SpotCleanDrainsTotal),
		noticesMissed:  reg.Counter(obs.SpotNoticesMissedTotal),
		prewarms:       reg.Counter(obs.SpotPrewarmReplansTotal),
	}
}

func (m *churnMeters) event(k ChurnKind) {
	if m != nil {
		m.reg.Counter(obs.ChurnEventsTotal + `{kind="` + k.String() + `"}`).Inc()
	}
}

func (m *churnMeters) ladderCommit(rung string) {
	if m != nil {
		m.reg.Counter(obs.ChurnLadderTotal + `{rung="` + rung + `"}`).Inc()
	}
}

func (m *churnMeters) transition(k TransitionKind) {
	if m != nil {
		m.reg.Counter(obs.ChurnTransitionsTotal + `{kind="` + string(k) + `"}`).Inc()
	}
}

func (m *churnMeters) churnFault() {
	if m != nil {
		m.faults.Inc()
	}
}

func (m *churnMeters) replan() {
	if m != nil {
		m.replans.Inc()
	}
}

func (m *churnMeters) replanAvoided() {
	if m != nil {
		m.replansAvoided.Inc()
	}
}

func (m *churnMeters) retry() {
	if m != nil {
		m.retries.Inc()
	}
}

func (m *churnMeters) pause() {
	if m != nil {
		m.pauses.Inc()
	}
}

func (m *churnMeters) lost(n int) {
	if m != nil {
		m.stepsLost.Add(int64(n))
	}
}

func (m *churnMeters) notice() {
	if m != nil {
		m.notices.Inc()
	}
}

func (m *churnMeters) cleanDrain() {
	if m != nil {
		m.cleanDrains.Inc()
	}
}

func (m *churnMeters) noticeMissed() {
	if m != nil {
		m.noticesMissed.Inc()
	}
}

func (m *churnMeters) prewarm() {
	if m != nil {
		m.prewarms.Inc()
	}
}

func (m *churnMeters) recovered(d time.Duration) {
	if m != nil {
		m.recovery.Observe(d)
		m.meters.recovered(d)
	}
}

// base returns the embedded elastic meters (nil-safe).
func (m *churnMeters) base() *meters {
	if m == nil {
		return nil
	}
	return m.meters
}

// fleet is the supervisor's composed view of fleet health, kept in
// healthy-cluster physical ranks so churn events compose naturally.
type fleet struct {
	healthy hardware.Cluster
	dead    map[int]bool
	slow    map[int]float64 // phys → FLOPS scale < 1
	linkBW  float64         // bandwidth scale; 0 or 1 = healthy fabric
}

func (f *fleet) total() int { return f.healthy.Nodes * f.healthy.DevicesPerNode }

func (f *fleet) alive() int { return f.total() - len(f.dead) }

// spec renders the composed fleet state as a FaultSpec (deterministic
// device order).
func (f *fleet) spec() hardware.FaultSpec {
	var s hardware.FaultSpec
	devs := make([]int, 0, len(f.dead)+len(f.slow))
	for d := range f.dead {
		devs = append(devs, d)
	}
	for d := range f.slow {
		if !f.dead[d] {
			devs = append(devs, d)
		}
	}
	sort.Ints(devs)
	for _, d := range devs {
		if f.dead[d] {
			s.Devices = append(s.Devices, hardware.DeviceFault{Device: d, Dead: true})
		} else {
			s.Devices = append(s.Devices, hardware.DeviceFault{Device: d, FLOPSScale: f.slow[d], MemScale: 1})
		}
	}
	if f.linkBW != 0 && f.linkBW != 1 {
		s.IntraBWScale = f.linkBW
		s.InterBWScale = f.linkBW
	}
	return s
}

// cluster derives the active cluster from the composed state. At least
// one device must be alive.
func (f *fleet) cluster() (hardware.Cluster, error) {
	s := f.spec()
	if len(s.Devices) == 0 && s.IntraBWScale == 0 && s.InterBWScale == 0 {
		return f.healthy, nil
	}
	return f.healthy.Degrade(s)
}

// logicalRank maps a physical device to its logical rank on c, or -1
// if it is dead there.
func logicalRank(c *hardware.Cluster, phys int) int {
	for l := 0; l < c.TotalDevices(); l++ {
		if c.PhysOf(l) == phys {
			return l
		}
	}
	return -1
}

// physMap captures a cluster's logical→physical mapping by value, so
// later mutations of the supervisor's active cluster cannot skew a
// checkpoint's rank accounting.
func physMap(c hardware.Cluster) func(int) int {
	return func(l int) int { return c.PhysOf(l) }
}

// runnableOn is runnable() for clusters the candidate need not fill
// exactly: a shrunken plan validates against its own device count and
// merely has to fit within the survivors.
func runnableOn(g *model.Graph, cl *hardware.Cluster, c *config.Config, p *runtime.Params) bool {
	if c == nil || c.TotalDevices() > cl.TotalDevices() {
		return false
	}
	if c.Validate(g, c.TotalDevices()) != nil {
		return false
	}
	if c.MicroBatch <= 0 || g.GlobalBatch%c.MicroBatch != 0 {
		return false
	}
	return runtime.CheckRunnable(g, c, p) == nil
}

// backoffDelay is the capped exponential backoff with deterministic
// jitter: attempt n waits base·2^(n-1), capped, plus up to half of
// that again, derived from (seed, attempt) by a splitmix-style hash so
// retries are reproducible yet de-synchronized across seeds.
func backoffDelay(base, cap time.Duration, attempt int, seed int64) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	z := uint64(seed) + uint64(attempt)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	jitter := time.Duration(z % uint64(d/2+1))
	return d + jitter
}

// estIterTime estimates cur's iteration time on a cluster, or +Inf
// when the plan does not fit it (infeasible or oversubscribed) — the
// common currency of the hysteresis and ladder quality checks.
func estIterTime(g *model.Graph, cl *hardware.Cluster, c *config.Config, seed int64) float64 {
	if c == nil || c.TotalDevices() > cl.TotalDevices() {
		return math.Inf(1)
	}
	e := perfmodel.New(g, *cl, seed).Estimate(c)
	if e == nil || !e.Feasible || !(e.IterTime > 0) || math.IsInf(e.IterTime, 0) {
		return math.Inf(1)
	}
	return e.IterTime
}

// Supervise runs iters iterations of training under a churn schedule,
// recovering from every event per the configured policies. The input
// cluster must be healthy (Faults == nil): it is the reference frame
// the schedule's physical device ranks live in. On success the final
// trajectory matches an uninterrupted run of the same model to
// floating-point tolerance — every reconfiguration is
// semantics-preserving, so churn costs only wall time, never training
// fidelity.
func Supervise(ctx context.Context, g *model.Graph, cl hardware.Cluster, cfg *config.Config, p *runtime.Params, x, y *tensor.Mat, iters int, spec ChurnSpec, opt SuperviseOptions) (*ChurnReport, error) {
	if cl.Faults != nil {
		return nil, fmt.Errorf("elastic: Supervise needs a healthy cluster (degrade via the churn schedule)")
	}
	if err := spec.Validate(cl.TotalDevices()); err != nil {
		return nil, err
	}
	if opt.CheckpointEvery <= 0 {
		opt.CheckpointEvery = 1
	}
	if opt.CommDeadline <= 0 {
		opt.CommDeadline = 30 * time.Second
	}
	if opt.SearchBudget <= 0 {
		opt.SearchBudget = 200 * time.Millisecond
	}
	if opt.ReplanThreshold <= 0 {
		opt.ReplanThreshold = 0.15
	}
	if opt.HysteresisEvents <= 0 {
		opt.HysteresisEvents = 3
	}
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = 2 * time.Millisecond
	}
	if opt.BackoffCap <= 0 {
		opt.BackoffCap = 50 * time.Millisecond
	}
	if opt.MaxRetries <= 0 {
		opt.MaxRetries = 3
	}
	if opt.MaxCadence <= 0 {
		opt.MaxCadence = 4
	}
	if opt.CheckpointCost < 0 {
		opt.CheckpointCost = 0
	}

	m := newChurnMeters(opt.Metrics)
	rep := &ChurnReport{
		Params: p, Config: cfg,
		EventCounts: map[string]int{},
		Ladder:      map[string]int{},
	}
	emit := func(step int, kind TransitionKind, format string, args ...any) {
		tr := Transition{Step: step, Kind: kind, Detail: fmt.Sprintf(format, args...)}
		rep.Transitions = append(rep.Transitions, tr)
		m.transition(kind)
		if opt.OnTransition != nil {
			opt.OnTransition(tr)
		}
	}

	events := append([]ChurnEvent(nil), spec.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Iteration < events[j].Iteration })

	fl := &fleet{healthy: cl, dead: map[int]bool{}, slow: map[int]float64{}}
	active := cl
	cur, curP := cfg, p
	stepZero := p.Step
	done := 0
	ei := 0
	cadence := opt.CheckpointEvery
	if cadence > opt.MaxCadence {
		cadence = opt.MaxCadence
	}
	pendingDefer := 0
	retries := 0
	simLeft := opt.SimulateTimeouts
	lastFaultAt := -1
	emaGap := 0.0

	if opt.Dir != "" {
		if _, err := SweepTemps(opt.Dir); err != nil {
			return nil, err
		}
	}

	// The durable lineage: ckpt is the last durable state, ckptAt the
	// cluster it was taken on (for physical-rank move accounting).
	var ckpt *State
	ckptAt := active
	saveCkpt := func() error {
		st, err := ShardState(g, cur, curP)
		if err != nil {
			return err
		}
		if err := persist(opt.Dir, st); err != nil {
			return err
		}
		ckpt, ckptAt = st, active
		m.base().checkpoint()
		rep.Checkpoints++
		return nil
	}
	loadCkpt := func() (*State, error) {
		if opt.Dir != "" {
			st, err := Load(ckptPath(opt.Dir))
			if err != nil {
				return nil, err
			}
			ckpt = st
		}
		return ckpt, nil
	}
	if err := saveCkpt(); err != nil {
		return nil, err
	}

	inUse := func(phys int) bool {
		l := logicalRank(&active, phys)
		return l >= 0 && l < cur.TotalDevices()
	}
	// inPlanPreempt is the one definition of "this preempt event must
	// fire mid-iteration through the runtime": the device is alive and
	// the running plan actually spans it. The boundary-settle loop and
	// the segment scheduler both consult it, so the two sites cannot
	// drift.
	inPlanPreempt := func(ev *ChurnEvent) bool {
		return ev.Kind == Preempt && !fl.dead[ev.Device] && inUse(ev.Device)
	}

	// commit reshards the durable checkpoint onto next and makes it the
	// running plan.
	commit := func(next *config.Config, arch *runtime.Arch) error {
		st, err := loadCkpt()
		if err != nil {
			return err
		}
		resharded, err := Reshard(g, next, st)
		if err != nil {
			return err
		}
		bytes := BytesMoved(st, resharded, physMap(ckptAt), physMap(active))
		m.base().reshard(bytes)
		rep.Reshards++
		rep.ReshardBytesMoved += bytes
		newP, err := AssembleState(resharded)
		if err != nil {
			return err
		}
		newP.Arch = arch
		m.base().restore()
		cur, curP = next, newP
		rep.Config, rep.Params = cur, curP
		done = st.Step - stepZero
		return nil
	}

	// ladder walks the graceful-degradation rungs after capacity
	// changed: reuse the projection when its projected slowdown is
	// tolerable, otherwise pay for a warm replan, otherwise shrink to
	// the largest runnable subset. It reports false when no rung
	// produced a plan (the caller pauses).
	ladder := func(preT float64) (bool, error) {
		st, err := loadCkpt()
		if err != nil {
			return false, err
		}
		restored, err := AssembleState(st)
		if err != nil {
			return false, err
		}
		arch := curP.Arch
		restored.Arch = arch
		survivors := active.TotalDevices()

		var next *config.Config
		rung := ""
		if proj, perr := core.ProjectConfig(g, cur, survivors); perr == nil && runnableOn(g, &active, proj, restored) {
			next, rung = proj, "project"
		}
		escalate := next == nil
		if next != nil {
			projT := estIterTime(g, &active, next, opt.Seed)
			if !math.IsInf(preT, 1) && preT > 0 && (projT-preT)/preT >= opt.ReplanThreshold {
				escalate = true
			} else {
				// The projection is within tolerance of the pre-fault plan:
				// hysteresis just avoided a replan search.
				rep.ReplansAvoided++
				m.replanAvoided()
			}
		}
		if escalate {
			rep.Replans++
			m.replan()
			res, rerr := core.Replan(ctx, g, fl.healthy, fl.spec(), cur, core.Options{
				TimeBudget: opt.SearchBudget,
				Seed:       opt.Seed,
			})
			if rerr == nil {
				if cand := pickRunnable(g, active, res, restored); cand != nil &&
					(next == nil || estIterTime(g, &active, cand, opt.Seed) < estIterTime(g, &active, next, opt.Seed)) {
					next, rung = cand, "replan"
				}
			}
		}
		if next == nil {
			for n := survivors - 1; n >= 1; n-- {
				if proj, perr := core.ProjectConfig(g, cur, n); perr == nil && runnableOn(g, &active, proj, restored) {
					next, rung = proj, "shrink"
					break
				}
			}
		}
		if next == nil {
			return false, nil
		}
		if err := commit(next, arch); err != nil {
			return false, err
		}
		rep.Ladder[rung]++
		m.ladderCommit(rung)
		switch rung {
		case "project":
			emit(curP.Step, TransLadderProject, "projected plan onto %d survivors (search avoided)", survivors)
		case "replan":
			emit(curP.Step, TransLadderReplan, "warm replan onto %d survivors (%d stages)", survivors, cur.NumStages())
		case "shrink":
			emit(curP.Step, TransLadderShrink, "shrunk to %d of %d survivors", cur.TotalDevices(), survivors)
		}
		return true, nil
	}

	// activeStale marks that active could not follow the fleet (the
	// fleet went all-dead, which Degrade cannot represent); the next
	// event that restores capacity resyncs from the composed state.
	activeStale := false
	syncActive := func() error {
		if fl.alive() == 0 {
			activeStale = true
			return nil
		}
		next, err := fl.cluster()
		if err != nil {
			return err
		}
		active = next
		activeStale = false
		return nil
	}

	// applyEvent folds one schedule event into the fleet state at a
	// point where no segment is running. It does not decide policy.
	applyEvent := func(ev ChurnEvent) error {
		rep.EventsApplied++
		rep.EventCounts[ev.Kind.String()]++
		m.event(ev.Kind)
		switch ev.Kind {
		case Preempt:
			if fl.dead[ev.Device] {
				emit(curP.Step, TransEvent, "preempt device %d (already dead)", ev.Device)
				return nil
			}
			fl.dead[ev.Device] = true
			delete(fl.slow, ev.Device)
			emit(curP.Step, TransEvent, "preempt device %d (idle spare, %d alive)", ev.Device, fl.alive())
			// On alive()==0 syncActive only flags staleness — the caller's
			// pause rung takes over.
			return syncActive()
		case Readd:
			if !fl.dead[ev.Device] && fl.slow[ev.Device] == 0 {
				emit(curP.Step, TransEvent, "readd device %d (already healthy)", ev.Device)
				return nil
			}
			delete(fl.dead, ev.Device)
			delete(fl.slow, ev.Device)
			if !activeStale && active.Faults != nil {
				// The common path exercises the incremental inverse of
				// Degrade: re-expand logical ranks in place.
				next, err := active.Restore(ev.Device)
				if err != nil {
					return err
				}
				active = next
			} else if err := syncActive(); err != nil {
				return err
			}
			emit(curP.Step, TransEvent, "readd device %d (%d alive)", ev.Device, fl.alive())
			return nil
		case SlowNode:
			if fl.dead[ev.Device] {
				emit(curP.Step, TransEvent, "slow-node device %d ignored (dead)", ev.Device)
				return nil
			}
			if ev.Scale == 1 {
				if fl.slow[ev.Device] == 0 {
					emit(curP.Step, TransEvent, "slow-node device %d restored (was healthy)", ev.Device)
					return nil
				}
				delete(fl.slow, ev.Device)
				if !activeStale {
					next, err := active.Restore(ev.Device)
					if err != nil {
						return err
					}
					active = next
				} else if err := syncActive(); err != nil {
					return err
				}
				emit(curP.Step, TransEvent, "slow-node device %d restored to full speed", ev.Device)
				return nil
			}
			fl.slow[ev.Device] = ev.Scale
			if err := syncActive(); err != nil {
				return err
			}
			emit(curP.Step, TransEvent, "slow-node device %d derated to %.2f", ev.Device, ev.Scale)
			return nil
		case LinkDerate:
			if ev.Scale == 1 {
				fl.linkBW = 0
				if !activeStale {
					next, err := active.RestoreLinks()
					if err != nil {
						return err
					}
					active = next
				}
				emit(curP.Step, TransEvent, "links restored to full bandwidth")
				return nil
			}
			fl.linkBW = ev.Scale
			if err := syncActive(); err != nil {
				return err
			}
			emit(curP.Step, TransEvent, "links derated to %.2f bandwidth", ev.Scale)
			return nil
		case PreemptNotice:
			// Only reached from pauseAndWait: the main loop routes
			// notices through beginDrain instead. While paused no
			// segment is running and the state is durably checkpointed,
			// so there is nothing to drain — fold the reclaim directly.
			if fl.dead[ev.Device] {
				emit(curP.Step, TransEvent, "preempt-notice device %d (already dead)", ev.Device)
				return nil
			}
			fl.dead[ev.Device] = true
			delete(fl.slow, ev.Device)
			emit(curP.Step, TransEvent, "preempt-notice device %d folded as immediate preempt while paused (%d alive)", ev.Device, fl.alive())
			return syncActive()
		}
		return fmt.Errorf("elastic: unknown churn kind %d", uint8(ev.Kind))
	}

	// policy is the replan-hysteresis decision after a boundary event
	// changed the fleet: defer transient blips, replan when the
	// projected throughput loss (or idle capacity) crosses the
	// threshold or persists.
	policy := func(before hardware.Cluster) error {
		oldT := estIterTime(g, &before, cur, opt.Seed)
		newT := estIterTime(g, &active, cur, opt.Seed)
		lossFrac := 0.0
		switch {
		case math.IsInf(newT, 1):
			lossFrac = math.Inf(1) // current plan no longer fits: must act
		case !math.IsInf(oldT, 1) && oldT > 0:
			lossFrac = (newT - oldT) / oldT
		}
		gainFrac := 0.0
		if cur.TotalDevices() > 0 {
			gainFrac = float64(active.TotalDevices()-cur.TotalDevices()) / float64(cur.TotalDevices())
		}
		const eps = 1e-9
		if lossFrac < -eps {
			// Things got faster (a restore): degradation pressure is gone.
			pendingDefer = 0
		}
		trigger := lossFrac >= opt.ReplanThreshold || gainFrac >= opt.ReplanThreshold
		forced := ""
		if trigger {
			forced = fmt.Sprintf("projected loss %.1f%%, idle capacity %.1f%% over threshold %.0f%%",
				100*lossFrac, 100*gainFrac, 100*opt.ReplanThreshold)
		} else if lossFrac > eps || gainFrac > eps {
			pendingDefer++
			if pendingDefer >= opt.HysteresisEvents {
				trigger = true
				forced = fmt.Sprintf("degradation persisted across %d deferred events", pendingDefer)
			} else {
				rep.ReplansAvoided++
				m.replanAvoided()
				emit(curP.Step, TransReplanDeferred, "projected loss %.1f%%, idle capacity %.1f%% below threshold %.0f%% (%d/%d deferred)",
					100*lossFrac, 100*gainFrac, 100*opt.ReplanThreshold, pendingDefer, opt.HysteresisEvents)
			}
		}
		if !trigger {
			return nil
		}
		emit(curP.Step, TransReplanForced, "%s", forced)
		pendingDefer = 0
		// State is intact at a boundary: checkpoint it, search, reshard.
		if err := saveCkpt(); err != nil {
			return err
		}
		rep.Replans++
		m.replan()
		res, err := core.Replan(ctx, g, fl.healthy, fl.spec(), cur, core.Options{
			TimeBudget: opt.SearchBudget,
			Seed:       opt.Seed,
		})
		if err != nil {
			emit(curP.Step, TransReplanKept, "replan search failed (%v); keeping current plan", err)
			return nil
		}
		next := pickRunnable(g, active, res, curP)
		if next == nil || next.Hash() == cur.Hash() ||
			!(estIterTime(g, &active, next, opt.Seed) < newT) {
			emit(curP.Step, TransReplanKept, "replan found no better runnable plan; keeping current")
			return nil
		}
		arch := curP.Arch
		if err := commit(next, arch); err != nil {
			return err
		}
		if err := saveCkpt(); err != nil { // re-anchor the lineage on the new layout
			return err
		}
		emit(curP.Step, TransResume, "replanned onto %d devices, %d stages", cur.TotalDevices(), cur.NumStages())
		return nil
	}

	// Pending notice-driven drains. The state machine per notice:
	//
	//	notice at I (window W, deadline D = I+W)
	//	  ├─ W ≥ CheckpointCost: ARM — immediate out-of-cadence
	//	  │    checkpoint + pre-warmed Replan on the post-reclaim fleet
	//	  │    while the doomed device still serves; switchover fires at
	//	  │    the boundary switchIter = D − CheckpointCost, so the
	//	  │    final checkpoint completes inside the window → commit the
	//	  │    pre-warmed plan (ladder fallback) with ZERO lost steps.
	//	  └─ W < CheckpointCost: MISSED — record *NoticeMissedError and
	//	       schedule a plain Preempt at D: the reclaim fires through
	//	       the existing in-plan path (mid-segment fault, rollback,
	//	       cadence adaptation, ladder).
	//
	// A real preempt of a drained device before its switchover cancels
	// the drain (settleDrains drops dead devices).
	type pendingDrain struct {
		device     int
		switchIter int            // absolute iteration the switchover fires at
		deadline   int            // absolute iteration of the reclaim
		window     int            // iterations of advance warning
		plan       *config.Config // pre-warmed post-reclaim plan (nil: ladder fallback)
	}
	var drains []*pendingDrain

	// insertEvent splices a synthetic event into the sorted schedule
	// after every event at the same iteration (stable order).
	insertEvent := func(ev ChurnEvent) {
		at := len(events)
		for i := ei; i < len(events); i++ {
			if events[i].Iteration > ev.Iteration {
				at = i
				break
			}
		}
		events = append(events, ChurnEvent{})
		copy(events[at+1:], events[at:])
		events[at] = ev
	}

	// beginDrain consumes one PreemptNotice at a boundary.
	beginDrain := func(ev ChurnEvent) error {
		rep.EventsApplied++
		rep.EventCounts[ev.Kind.String()]++
		m.event(ev.Kind)
		if fl.dead[ev.Device] {
			emit(curP.Step, TransEvent, "preempt-notice device %d (already dead)", ev.Device)
			return nil
		}
		for _, d := range drains {
			if d.device == ev.Device {
				emit(curP.Step, TransEvent, "preempt-notice device %d (drain already armed for iteration %d)", ev.Device, d.switchIter)
				return nil
			}
		}
		rep.Notices++
		m.notice()
		deadline := ev.Iteration + ev.Notice
		if ev.Notice < opt.CheckpointCost {
			nm := &NoticeMissedError{Device: ev.Device, Window: ev.Notice, Cost: opt.CheckpointCost, Deadline: deadline}
			rep.NoticesMissed++
			m.noticeMissed()
			rep.NoticeMisses = append(rep.NoticeMisses, nm)
			emit(curP.Step, TransNoticeMissed, "%v", nm)
			insertEvent(ChurnEvent{Iteration: deadline, Kind: Preempt, Device: ev.Device})
			return nil
		}
		emit(curP.Step, TransNotice, "preempt notice for device %d: reclaim at iteration %d (%d-iteration window ≥ checkpoint cost %d); drain armed",
			ev.Device, deadline, ev.Notice, opt.CheckpointCost)
		// Immediate out-of-cadence checkpoint: even if the fleet churns
		// again before the switchover, rollback reaches at most the
		// notice, never past it.
		if err := saveCkpt(); err != nil {
			return err
		}
		// Pre-warm the replan on the post-reclaim fleet while the
		// doomed device still serves; the switchover commits it without
		// searching inside the window.
		var plan *config.Config
		if inUse(ev.Device) && fl.alive() > 1 {
			fl.dead[ev.Device] = true
			postSpec := fl.spec()
			delete(fl.dead, ev.Device)
			rep.Replans++
			m.replan()
			m.prewarm()
			if res, rerr := core.Replan(ctx, g, fl.healthy, postSpec, cur, core.Options{
				TimeBudget: opt.SearchBudget,
				Seed:       opt.Seed,
			}); rerr == nil {
				if post, derr := fl.healthy.Degrade(postSpec); derr == nil {
					plan = pickRunnable(g, post, res, curP)
				}
			}
		}
		drains = append(drains, &pendingDrain{
			device:     ev.Device,
			switchIter: deadline - opt.CheckpointCost,
			deadline:   deadline,
			window:     ev.Notice,
			plan:       plan,
		})
		return nil
	}

	// fireSwitch executes one armed drain at its switchover boundary.
	// The boundary checkpoint (saved after the last segment) plus the
	// final save here mean commit rolls forward from the current step:
	// zero lost steps by construction.
	fireSwitch := func(d *pendingDrain) error {
		if err := saveCkpt(); err != nil {
			return err
		}
		began := time.Now()
		wasInUse := inUse(d.device)
		preT := estIterTime(g, &active, cur, opt.Seed)
		fl.dead[d.device] = true
		delete(fl.slow, d.device)
		if err := syncActive(); err != nil {
			return err
		}
		if !wasInUse {
			rep.CleanDrains++
			m.cleanDrain()
			emit(curP.Step, TransDrain, "device %d drained at iteration %d (idle spare, %d alive)", d.device, done, fl.alive())
			return nil
		}
		if fl.alive() > 0 && d.plan != nil && runnableOn(g, &active, d.plan, curP) {
			arch := curP.Arch
			if err := commit(d.plan, arch); err != nil {
				return err
			}
			if err := saveCkpt(); err != nil { // re-anchor on the new layout
				return err
			}
			rep.CleanDrains++
			m.cleanDrain()
			rep.Ladder["drain"]++
			m.ladderCommit("drain")
			rep.Recoveries = append(rep.Recoveries, time.Since(began))
			m.recovered(time.Since(began))
			emit(curP.Step, TransDrain, "device %d drained at iteration %d: switched to pre-warmed plan (%d devices, %d stages), zero lost steps",
				d.device, done, cur.TotalDevices(), cur.NumStages())
			return nil
		}
		// The pre-warmed plan no longer fits (the fleet churned since
		// the notice) or never existed: recover down the ordinary
		// ladder. The deadline checkpoint keeps the drain lossless.
		recovered := false
		if fl.alive() > 0 {
			ok, lerr := ladder(preT)
			if lerr != nil {
				return lerr
			}
			recovered = ok
		}
		if recovered {
			rep.CleanDrains++
			m.cleanDrain()
			rep.Recoveries = append(rep.Recoveries, time.Since(began))
			m.recovered(time.Since(began))
			emit(curP.Step, TransDrain, "device %d drained at iteration %d via ladder, zero lost steps", d.device, done)
			return nil
		}
		emit(curP.Step, TransDrain, "device %d drained at iteration %d; no runnable plan on %d survivors — pausing", d.device, done, fl.alive())
		return nil // the main loop's runnability check pauses
	}

	// settleDrains cancels drains of devices that died by other means
	// and fires every drain whose switchover boundary has arrived.
	settleDrains := func() error {
		kept := drains[:0]
		for _, d := range drains {
			if fl.dead[d.device] {
				continue // an unnoticed preempt got there first
			}
			if done < d.switchIter {
				kept = append(kept, d)
				continue
			}
			if err := fireSwitch(d); err != nil {
				return err
			}
		}
		drains = kept
		return nil
	}

	// pauseAndWait consumes the remaining schedule while training is
	// impossible, resuming at the first point the ladder finds a plan.
	pauseAndWait := func() error {
		rep.Pauses++
		m.pause()
		emit(ckpt.Step, TransLadderPause, "paused: %d devices alive, no runnable plan; waiting for capacity", fl.alive())
		for ei < len(events) {
			ev := events[ei]
			ei++
			if err := applyEvent(ev); err != nil {
				return err
			}
			if fl.alive() == 0 || activeStale {
				// applyEvent could not produce a usable cluster (still
				// stale after an error path); keep consuming the schedule.
				if fl.alive() == 0 {
					continue
				}
				if err := syncActive(); err != nil {
					return err
				}
			}
			ok, err := ladder(math.Inf(1))
			if err != nil {
				return err
			}
			if ok {
				emit(curP.Step, TransResume, "capacity restored: resumed on %d devices", active.TotalDevices())
				return nil
			}
		}
		return &StalledError{Step: ckpt.Step, Alive: fl.alive()}
	}

	for done < iters {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		// Settle boundary events that are due. In-plan preemptions fire
		// through the runtime below instead.
		for ei < len(events) && events[ei].Iteration <= done {
			ev := events[ei]
			if inPlanPreempt(&ev) {
				break
			}
			ei++
			if ev.Kind == PreemptNotice {
				// Notices do not change the fleet; they arm a drain.
				if err := beginDrain(ev); err != nil {
					return rep, err
				}
				continue
			}
			before := active
			if err := applyEvent(ev); err != nil {
				return rep, err
			}
			if fl.alive() == 0 {
				break
			}
			if err := policy(before); err != nil {
				return rep, err
			}
		}
		if err := settleDrains(); err != nil {
			return rep, err
		}
		if fl.alive() == 0 || !runnableOn(g, &active, cur, curP) {
			began := time.Now()
			if err := pauseAndWait(); err != nil {
				return rep, err
			}
			rep.Recoveries = append(rep.Recoveries, time.Since(began))
			m.recovered(time.Since(began))
			continue
		}

		// Segment length: the adaptive cadence, clipped to the next
		// scheduled boundary event and the end of the run.
		seg := cadence
		if left := iters - done; left < seg {
			seg = left
		}
		// Clip to the next drain switchover so its boundary checkpoint
		// lands exactly CheckpointCost iterations before the deadline.
		for _, d := range drains {
			if s := d.switchIter - done; s > 0 && s < seg {
				seg = s
			}
		}
		var fp *runtime.FaultPlan
		var faultEv *ChurnEvent
		if ei < len(events) {
			ev := events[ei]
			d := ev.Iteration - done
			if inPlanPreempt(&ev) {
				if d < 0 {
					d = 0
				}
				if d < seg {
					fp = &runtime.FaultPlan{Rank: logicalRank(&active, ev.Device), Iteration: d}
					faultEv = &events[ei]
				}
			} else if d > 0 && d < seg {
				seg = d
			}
		}

		var losses []float64
		var err error
		if simLeft > 0 {
			simLeft--
			err = &comm.CollectiveTimeoutError{Op: "all-reduce", Rank: 0, Waited: opt.CommDeadline}
		} else {
			ro := runtime.RunOptions{CommDeadline: opt.CommDeadline, Fault: fp}
			losses, err = runtime.ParallelOpts(g, cur, curP, x, y, opt.LR, seg, ro)
		}
		if err == nil {
			if fp != nil {
				return rep, fmt.Errorf("elastic: planned preemption of device %d did not surface", faultEv.Device)
			}
			rep.Losses = append(rep.Losses, losses...)
			rep.Steps = append(rep.Steps, curP.Step)
			rep.IterationsExecuted += seg
			done += seg
			retries = 0
			if err := saveCkpt(); err != nil {
				return rep, err
			}
			continue
		}

		var lostErr *runtime.DeviceLostError
		var timeoutErr *comm.CollectiveTimeoutError
		switch {
		case errors.As(err, &lostErr):
			if faultEv == nil {
				// A device loss nothing scheduled: not ours to recover.
				return rep, err
			}
			// The scheduled in-plan preemption fired: consume the event,
			// fold it in, and recover down the ladder.
			ev := events[ei]
			ei++
			rep.EventsApplied++
			rep.EventCounts[ev.Kind.String()]++
			m.event(ev.Kind)
			rep.FaultsDetected++
			m.churnFault()
			wasted := lostErr.Iteration
			rep.IterationsExecuted += wasted
			rep.StepsLost += wasted
			m.lost(wasted)
			at := done + wasted
			emit(ckpt.Step, TransFault, "device %d (stage %d) lost mid-iteration %d; rolling back %d steps",
				ev.Device, lostErr.Stage, at, wasted)

			// Adapt the checkpoint cadence to the observed fault rate:
			// aim at half the expected inter-fault gap.
			gap := float64(at + 1)
			if lastFaultAt >= 0 {
				gap = float64(at - lastFaultAt)
				if gap < 1 {
					gap = 1
				}
			}
			lastFaultAt = at
			if emaGap == 0 {
				emaGap = gap
			} else {
				emaGap = 0.5*emaGap + 0.5*gap
			}
			newCad := int(math.Round(emaGap / 2))
			if newCad < 1 {
				newCad = 1
			}
			if newCad > opt.MaxCadence {
				newCad = opt.MaxCadence
			}
			if newCad != cadence {
				emit(ckpt.Step, TransCadence, "checkpoint cadence %d → %d (inter-fault EMA %.1f iters)", cadence, newCad, emaGap)
				cadence = newCad
			}

			began := time.Now()
			fl.dead[ev.Device] = true
			delete(fl.slow, ev.Device)
			preT := estIterTime(g, &active, cur, opt.Seed) // pre-fault reference
			if cerr := syncActive(); cerr != nil {
				return rep, cerr
			}
			recovered := false
			if fl.alive() > 0 {
				ok, lerr := ladder(preT)
				if lerr != nil {
					return rep, lerr
				}
				recovered = ok
			}
			if !recovered {
				if err := pauseAndWait(); err != nil {
					return rep, err
				}
			}
			rep.Recoveries = append(rep.Recoveries, time.Since(began))
			m.recovered(time.Since(began))
			retries = 0
			emit(curP.Step, TransResume, "resumed from step %d on %d devices", curP.Step, cur.TotalDevices())

		case errors.As(err, &timeoutErr):
			retries++
			rep.Retries++
			m.retry()
			if retries > opt.MaxRetries {
				return rep, fmt.Errorf("elastic: segment failed after %d timeout retries: %w", opt.MaxRetries, err)
			}
			delay := backoffDelay(opt.BackoffBase, opt.BackoffCap, retries, opt.Seed)
			emit(ckpt.Step, TransBackoffRetry, "timeout (%s); retry %d/%d after %v", timeoutErr.Op, retries, opt.MaxRetries, delay)
			if delay > 0 {
				time.Sleep(delay)
			}
			// A timed-out segment leaves torn state: restore the durable
			// checkpoint before retrying on the same plan.
			st, lerr := loadCkpt()
			if lerr != nil {
				return rep, lerr
			}
			restored, aerr := AssembleState(st)
			if aerr != nil {
				return rep, aerr
			}
			restored.Arch = curP.Arch
			m.base().restore()
			curP = restored
			rep.Params = curP
			done = st.Step - stepZero

		default:
			return rep, err
		}
	}

	rep.FinalStep = curP.Step
	rep.Params, rep.Config = curP, cur
	rep.FinalCadence = cadence
	return rep, nil
}
