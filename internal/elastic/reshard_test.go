package elastic

import (
	"testing"

	"aceso/internal/config"
	"aceso/internal/model"
)

// reshardConfigs is the cross-product of plans the identity test walks:
// different pipeline cut points, tensor-parallel widths, data-parallel
// degrees, and mixed row/col partition dims.
func reshardConfigs(t *testing.T, g *model.Graph) map[string]*config.Config {
	cfgs := map[string]*config.Config{
		"pp1":        uniformCfg(t, g, 1, 1, 1, 1, 4),
		"pp2":        uniformCfg(t, g, 2, 1, 1, 1, 4),
		"pp4":        uniformCfg(t, g, 4, 1, 1, 1, 4),
		"tp4":        uniformCfg(t, g, 1, 4, 4, 1, 4),
		"dp4":        uniformCfg(t, g, 1, 4, 1, 4, 8),
		"tp2dp2":     uniformCfg(t, g, 1, 4, 2, 2, 4),
		"pp2tp2":     uniformCfg(t, g, 2, 2, 2, 1, 4),
		"pp2_tp2dp2": uniformCfg(t, g, 2, 4, 2, 2, 4),
	}
	// Row-parallel variant: shard matmul weights along rows instead
	// (other op kinds have a single partition dim).
	row := uniformCfg(t, g, 1, 4, 4, 1, 4)
	for i := range row.Stages {
		st := &row.Stages[i]
		for j := st.Start; j < st.End; j++ {
			if g.Ops[j].Kind == model.KindMatMul {
				st.Setting(j).Dim = 1
			}
		}
	}
	if err := row.Validate(g, 4); err != nil {
		t.Fatal(err)
	}
	cfgs["tp4row"] = row
	return cfgs
}

// TestReshardRoundTripIsBitwiseIdentity is the tentpole equivalence
// contract: for every pair of plans (A, B), shard-under-A → reshard to
// B → reshard back to A must reproduce the exact float64 bits of the
// original state — weights, biases, step and all four Adam moment maps.
func TestReshardRoundTripIsBitwiseIdentity(t *testing.T) {
	g := buildMLP(t)
	cfgs := reshardConfigs(t, g)
	base := uniformCfg(t, g, 2, 2, 2, 1, 4)
	stA, p := trainedState(t, g, base)

	for name, cfgB := range cfgs {
		t.Run("via_"+name, func(t *testing.T) {
			stB, err := Reshard(g, cfgB, stA)
			if err != nil {
				t.Fatal(err)
			}
			back, err := Reshard(g, base, stB)
			if err != nil {
				t.Fatal(err)
			}
			q, err := AssembleState(back)
			if err != nil {
				t.Fatal(err)
			}
			if d := p.MaxDiff(q); d != 0 {
				t.Fatalf("A→%s→A differs by %g, want bitwise identity", name, d)
			}
			if back.Step != stA.Step || back.Seed != stA.Seed || back.Opt != stA.Opt {
				t.Fatalf("scalar state lost in round trip: %+v vs %+v",
					back.Step, stA.Step)
			}
		})
	}
}

// TestReshardAllPairsAssemble: every plan's sharding covers the state
// exactly (assembly succeeds and matches) — not just the round trip.
func TestReshardAllPairsAssemble(t *testing.T) {
	g := buildMLP(t)
	cfgs := reshardConfigs(t, g)
	base := uniformCfg(t, g, 1, 1, 1, 1, 4)
	stA, p := trainedState(t, g, base)
	for name, cfg := range cfgs {
		st, err := Reshard(g, cfg, stA)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		q, err := AssembleState(st)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := p.MaxDiff(q); d != 0 {
			t.Errorf("%s: assembled state differs by %g", name, d)
		}
	}
}

// TestBytesMovedZeroForIdentity: resharding a state onto its own plan
// moves nothing; onto a different plan it moves something.
func TestBytesMovedZeroForIdentity(t *testing.T) {
	g := buildMLP(t)
	cfgA := uniformCfg(t, g, 2, 2, 2, 1, 4)
	cfgB := uniformCfg(t, g, 1, 4, 4, 1, 4)
	stA, _ := trainedState(t, g, cfgA)

	same, err := Reshard(g, cfgA, stA)
	if err != nil {
		t.Fatal(err)
	}
	if b := BytesMoved(stA, same, nil, nil); b != 0 {
		t.Errorf("identity reshard moved %d bytes, want 0", b)
	}

	stB, err := Reshard(g, cfgB, stA)
	if err != nil {
		t.Fatal(err)
	}
	if b := BytesMoved(stA, stB, nil, nil); b <= 0 {
		t.Errorf("cross-plan reshard moved %d bytes, want > 0", b)
	}
}

// TestBytesMovedRankMapping: with a rank-mapping that relocates every
// destination rank to a different physical device, even an identical
// plan must move all its bytes.
func TestBytesMovedRankMapping(t *testing.T) {
	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	st, _ := trainedState(t, g, cfg)
	shift := func(r int) int { return r + 100 } // disjoint physical ranks
	moved := BytesMoved(st, st, nil, shift)
	var total int64
	for ri := range st.Ranks {
		for ti := range st.Ranks[ri].Tensors {
			total += int64(len(st.Ranks[ri].Tensors[ti].Data)) * 8
		}
	}
	if moved != total {
		t.Errorf("full relocation moved %d bytes, want all %d", moved, total)
	}
}
