package elastic

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"aceso/internal/comm"
	"aceso/internal/hardware"
	"aceso/internal/obs"
	"aceso/internal/runtime"
)

// superviseOpts returns fast-test defaults: file round trip, tiny
// backoff, short search budget.
func superviseOpts(t *testing.T) SuperviseOptions {
	t.Helper()
	return SuperviseOptions{
		Options: Options{
			LR:              lr,
			CheckpointEvery: 2,
			Dir:             t.TempDir(),
			CommDeadline:    10 * time.Second,
			SearchBudget:    300 * time.Millisecond,
		},
		BackoffBase: time.Microsecond,
		BackoffCap:  8 * time.Microsecond,
	}
}

// refRun trains the uninterrupted reference trajectory.
func refRun(t *testing.T, iters int) ([]float64, *runtime.Params) {
	t.Helper()
	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	x, y := trainData(42)
	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam
	losses, err := runtime.Parallel(g, cfg, p, x, y, lr, iters)
	if err != nil {
		t.Fatal(err)
	}
	return losses, p
}

func checkMonotone(t *testing.T, steps []int) {
	t.Helper()
	for i := 1; i < len(steps); i++ {
		if steps[i] <= steps[i-1] {
			t.Fatalf("step counter not monotone: %v", steps)
		}
	}
}

func hasTransition(rep *ChurnReport, kind TransitionKind) bool {
	for _, tr := range rep.Transitions {
		if tr.Kind == kind {
			return true
		}
	}
	return false
}

// TestSuperviseNoEventsMatchesPlainRun: with an empty schedule the
// supervisor is segmented training — bitwise identical to one Parallel
// call, at 100% availability.
func TestSuperviseNoEventsMatchesPlainRun(t *testing.T) {
	const iters = 5
	refLosses, ref := refRun(t, iters)

	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	cl := hardware.DGX1V100(1).Restrict(4)
	x, y := trainData(42)
	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam

	rep, err := Supervise(context.Background(), g, cl, cfg, p, x, y, iters, ChurnSpec{}, superviseOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Losses) != iters || rep.FinalStep != iters {
		t.Fatalf("losses %d, final step %d; want %d", len(rep.Losses), rep.FinalStep, iters)
	}
	for i := range refLosses {
		if rep.Losses[i] != refLosses[i] {
			t.Errorf("iter %d: loss %g != reference %g", i, rep.Losses[i], refLosses[i])
		}
	}
	if d := ref.MaxDiff(rep.Params); d != 0 {
		t.Errorf("final state differs by %g, want bitwise match", d)
	}
	if a := rep.Availability(); a != 1 {
		t.Errorf("availability %v, want 1", a)
	}
	if rep.Replans != 0 || rep.Reshards != 0 || rep.FaultsDetected != 0 {
		t.Errorf("idle schedule caused work: %+v", rep)
	}
	checkMonotone(t, rep.Steps)
}

// TestSupervisePreemptReaddEndToEnd is the churn acceptance core: an
// in-plan preemption mid-run, recovery down the ladder, a later
// re-addition — and the final trajectory still matches the
// uninterrupted run to float tolerance.
func TestSupervisePreemptReaddEndToEnd(t *testing.T) {
	const iters = 8
	refLosses, ref := refRun(t, iters)

	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	cl := hardware.DGX1V100(1).Restrict(4)
	x, y := trainData(42)
	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam

	reg := obs.NewRegistry()
	opt := superviseOpts(t)
	opt.Metrics = reg
	spec := ChurnSpec{Events: []ChurnEvent{
		{Iteration: 3, Kind: Preempt, Device: 2},
		{Iteration: 6, Kind: Readd, Device: 2},
	}}
	rep, err := Supervise(context.Background(), g, cl, cfg, p, x, y, iters, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultsDetected != 1 {
		t.Fatalf("faults detected %d, want 1", rep.FaultsDetected)
	}
	if rep.EventsApplied != 2 || rep.EventCounts["preempt"] != 1 || rep.EventCounts["readd"] != 1 {
		t.Fatalf("events applied %d (%v), want preempt+readd", rep.EventsApplied, rep.EventCounts)
	}
	if rep.Reshards == 0 {
		t.Error("no reshard recorded for a recovery that changed the plan")
	}
	if len(rep.Recoveries) == 0 {
		t.Error("no recovery duration recorded")
	}
	if len(rep.Losses) != iters || rep.FinalStep != iters {
		t.Fatalf("losses %d, final step %d; want %d", len(rep.Losses), rep.FinalStep, iters)
	}
	for i := range refLosses {
		if math.Abs(rep.Losses[i]-refLosses[i]) > tol {
			t.Errorf("iter %d: loss %.12f vs reference %.12f", i, rep.Losses[i], refLosses[i])
		}
	}
	if d := ref.MaxDiff(rep.Params); d > tol {
		t.Errorf("final state differs by %g from uninterrupted run", d)
	}
	checkMonotone(t, rep.Steps)
	if !hasTransition(rep, TransFault) || !hasTransition(rep, TransResume) {
		t.Errorf("transition log missing fault/resume: %+v", rep.Transitions)
	}
	if rep.StepsLost == 0 || rep.Availability() >= 1 {
		t.Errorf("mid-segment fault should lose work: lost %d, availability %v",
			rep.StepsLost, rep.Availability())
	}
	for _, name := range []string{
		obs.ChurnFaultsTotal, obs.ChurnStepsLostTotal, obs.ChurnTransitionsTotal + `{kind="fault"}`,
		obs.ChurnEventsTotal + `{kind="preempt"}`, obs.ChurnEventsTotal + `{kind="readd"}`,
	} {
		if reg.Counter(name).Value() == 0 {
			t.Errorf("metric %s = 0, want > 0", name)
		}
	}
	if reg.Timer(obs.ChurnRecovery).Count() == 0 {
		t.Error("churn recovery timer has no observations")
	}
}

// TestSuperviseHysteresisDefersMildBlips: a transient derate below the
// replan threshold is debounced — no search, no reshard, and because
// the plan never changed the run stays bitwise identical.
func TestSuperviseHysteresisDefersMildBlips(t *testing.T) {
	const iters = 6
	refLosses, ref := refRun(t, iters)

	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	cl := hardware.DGX1V100(1).Restrict(4)
	x, y := trainData(42)
	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam

	opt := superviseOpts(t)
	opt.ReplanThreshold = 0.95 // nothing short of a collapse triggers
	spec := ChurnSpec{Events: []ChurnEvent{
		{Iteration: 1, Kind: SlowNode, Device: 0, Scale: 0.9},
		{Iteration: 4, Kind: SlowNode, Device: 0, Scale: 1},
	}}
	rep, err := Supervise(context.Background(), g, cl, cfg, p, x, y, iters, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplansAvoided == 0 {
		t.Error("hysteresis avoided no replans")
	}
	if rep.Replans != 0 || rep.Reshards != 0 {
		t.Errorf("mild blip caused %d replans, %d reshards; want 0", rep.Replans, rep.Reshards)
	}
	if !hasTransition(rep, TransReplanDeferred) {
		t.Errorf("no replan-deferred transition: %+v", rep.Transitions)
	}
	for i := range refLosses {
		if rep.Losses[i] != refLosses[i] {
			t.Errorf("iter %d: loss %g != reference %g (plan should not have changed)", i, rep.Losses[i], refLosses[i])
		}
	}
	if d := ref.MaxDiff(rep.Params); d != 0 {
		t.Errorf("final state differs by %g, want bitwise (no reconfiguration happened)", d)
	}
}

// TestSuperviseForcedReplanOnHarshDegradation: a derate whose projected
// slowdown clears the threshold forces an immediate replan decision.
func TestSuperviseForcedReplanOnHarshDegradation(t *testing.T) {
	const iters = 6
	refLosses, ref := refRun(t, iters)

	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	cl := hardware.DGX1V100(1).Restrict(4)
	x, y := trainData(42)
	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam

	opt := superviseOpts(t)
	opt.ReplanThreshold = 0.15
	spec := ChurnSpec{Events: []ChurnEvent{
		{Iteration: 2, Kind: SlowNode, Device: 0, Scale: 0.05},
	}}
	rep, err := Supervise(context.Background(), g, cl, cfg, p, x, y, iters, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !hasTransition(rep, TransReplanForced) {
		t.Fatalf("no replan-forced transition: %+v", rep.Transitions)
	}
	if rep.Replans == 0 {
		t.Error("forced replan ran no search")
	}
	// Whatever plan the search picked, semantics are preserved.
	for i := range refLosses {
		if math.Abs(rep.Losses[i]-refLosses[i]) > tol {
			t.Errorf("iter %d: loss %.12f vs reference %.12f", i, rep.Losses[i], refLosses[i])
		}
	}
	if d := ref.MaxDiff(rep.Params); d > tol {
		t.Errorf("final state differs by %g from uninterrupted run", d)
	}
}

// TestSupervisePersistenceForcesReplan: each blip is individually below
// threshold, but HysteresisEvents consecutive deferrals escalate.
func TestSupervisePersistenceForcesReplan(t *testing.T) {
	const iters = 8
	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	cl := hardware.DGX1V100(1).Restrict(4)
	x, y := trainData(42)
	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam

	opt := superviseOpts(t)
	opt.ReplanThreshold = 0.95
	opt.HysteresisEvents = 2
	spec := ChurnSpec{Events: []ChurnEvent{
		{Iteration: 1, Kind: SlowNode, Device: 0, Scale: 0.9},
		// Device 2 lives on the other pipeline stage, so the second blip
		// degrades a fresh bottleneck rather than hiding behind the first.
		{Iteration: 3, Kind: SlowNode, Device: 2, Scale: 0.9},
	}}
	rep, err := Supervise(context.Background(), g, cl, cfg, p, x, y, iters, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !hasTransition(rep, TransReplanDeferred) {
		t.Errorf("first blip was not deferred: %+v", rep.Transitions)
	}
	if !hasTransition(rep, TransReplanForced) {
		t.Errorf("persistent degradation never escalated: %+v", rep.Transitions)
	}
	if rep.ReplansAvoided != 1 {
		t.Errorf("replans avoided %d, want exactly 1 (second blip escalates)", rep.ReplansAvoided)
	}
}

// TestSuperviseBackoffRetries: transient timeouts are retried with
// backoff and checkpoint restore; the run still completes exactly.
func TestSuperviseBackoffRetries(t *testing.T) {
	const iters = 4
	refLosses, ref := refRun(t, iters)

	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	cl := hardware.DGX1V100(1).Restrict(4)
	x, y := trainData(42)
	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam

	opt := superviseOpts(t)
	opt.SimulateTimeouts = 2
	opt.MaxRetries = 3
	rep, err := Supervise(context.Background(), g, cl, cfg, p, x, y, iters, ChurnSpec{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries != 2 {
		t.Errorf("retries %d, want 2", rep.Retries)
	}
	if !hasTransition(rep, TransBackoffRetry) {
		t.Errorf("no backoff-retry transition: %+v", rep.Transitions)
	}
	for i := range refLosses {
		if math.Abs(rep.Losses[i]-refLosses[i]) > tol {
			t.Errorf("iter %d: loss %.12f vs reference %.12f", i, rep.Losses[i], refLosses[i])
		}
	}
	if d := ref.MaxDiff(rep.Params); d > tol {
		t.Errorf("final state differs by %g from uninterrupted run", d)
	}
}

// TestSuperviseBackoffExhausted: more consecutive timeouts than
// MaxRetries surfaces the typed timeout error.
func TestSuperviseBackoffExhausted(t *testing.T) {
	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	cl := hardware.DGX1V100(1).Restrict(4)
	x, y := trainData(42)
	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam

	opt := superviseOpts(t)
	opt.SimulateTimeouts = 5
	opt.MaxRetries = 2
	_, err := Supervise(context.Background(), g, cl, cfg, p, x, y, 4, ChurnSpec{}, opt)
	var te *comm.CollectiveTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("error %v, want wrapped *comm.CollectiveTimeoutError", err)
	}
}

// TestSupervisePauseAndResume: losing every device parks the run on its
// last checkpoint until the schedule re-adds capacity.
func TestSupervisePauseAndResume(t *testing.T) {
	const iters = 6
	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 1, 1, 1, 4) // pp2 on 2 devices
	cl := hardware.DGX1V100(1).Restrict(2)
	x, y := trainData(42)

	ref := runtime.InitParams(g, 7)
	ref.Opt = runtime.Adam
	refLosses, err := runtime.Parallel(g, cfg, ref, x, y, lr, iters)
	if err != nil {
		t.Fatal(err)
	}

	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam
	spec := ChurnSpec{Events: []ChurnEvent{
		{Iteration: 2, Kind: Preempt, Device: 0},
		{Iteration: 2, Kind: Preempt, Device: 1},
		{Iteration: 4, Kind: Readd, Device: 0},
		{Iteration: 5, Kind: Readd, Device: 1},
	}}
	rep, err := Supervise(context.Background(), g, cl, cfg, p, x, y, iters, spec, superviseOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pauses == 0 {
		t.Errorf("losing all devices did not pause: %+v", rep.Transitions)
	}
	if !hasTransition(rep, TransLadderPause) || !hasTransition(rep, TransResume) {
		t.Errorf("transition log missing pause/resume: %+v", rep.Transitions)
	}
	if len(rep.Losses) != iters || rep.FinalStep != iters {
		t.Fatalf("losses %d, final step %d; want %d", len(rep.Losses), rep.FinalStep, iters)
	}
	for i := range refLosses {
		if math.Abs(rep.Losses[i]-refLosses[i]) > tol {
			t.Errorf("iter %d: loss %.12f vs reference %.12f", i, rep.Losses[i], refLosses[i])
		}
	}
	if d := ref.MaxDiff(rep.Params); d > tol {
		t.Errorf("final state differs by %g from uninterrupted run", d)
	}
	checkMonotone(t, rep.Steps)
}

// TestSuperviseStallsWithoutCapacity: all devices gone and no
// re-addition left — a typed StalledError, not a hang.
func TestSuperviseStallsWithoutCapacity(t *testing.T) {
	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 1, 1, 1, 4)
	cl := hardware.DGX1V100(1).Restrict(2)
	x, y := trainData(42)
	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam

	spec := ChurnSpec{Events: []ChurnEvent{
		{Iteration: 1, Kind: Preempt, Device: 0},
		{Iteration: 1, Kind: Preempt, Device: 1},
	}}
	_, err := Supervise(context.Background(), g, cl, cfg, p, x, y, 4, spec, superviseOpts(t))
	var stalled *StalledError
	if !errors.As(err, &stalled) {
		t.Fatalf("error %v, want *StalledError", err)
	}
	if stalled.Alive != 0 {
		t.Errorf("stalled with %d alive, want 0", stalled.Alive)
	}
}

// TestSuperviseAdaptiveCadence: frequent faults pull the checkpoint
// cadence down toward the observed inter-fault interval.
func TestSuperviseAdaptiveCadence(t *testing.T) {
	const iters = 8
	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	cl := hardware.DGX1V100(1).Restrict(4)
	x, y := trainData(42)
	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam

	opt := superviseOpts(t)
	opt.CheckpointEvery = 4
	opt.MaxCadence = 4
	spec := ChurnSpec{Events: []ChurnEvent{
		{Iteration: 1, Kind: Preempt, Device: 3},
		{Iteration: 3, Kind: Preempt, Device: 2},
	}}
	rep, err := Supervise(context.Background(), g, cl, cfg, p, x, y, iters, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultsDetected != 2 {
		t.Fatalf("faults detected %d, want 2", rep.FaultsDetected)
	}
	if rep.FinalCadence >= 4 {
		t.Errorf("final cadence %d, want < 4 after back-to-back faults", rep.FinalCadence)
	}
	if !hasTransition(rep, TransCadence) {
		t.Errorf("no cadence transition: %+v", rep.Transitions)
	}
}

// TestChurnSpecValidate rejects hostile schedules with typed errors.
func TestChurnSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		ev   ChurnEvent
		ok   bool
	}{
		{"valid-preempt", ChurnEvent{Iteration: 0, Kind: Preempt, Device: 1}, true},
		{"valid-slow", ChurnEvent{Iteration: 3, Kind: SlowNode, Device: 0, Scale: 0.5}, true},
		{"valid-link", ChurnEvent{Iteration: 2, Kind: LinkDerate, Scale: 0.7}, true},
		{"negative-iteration", ChurnEvent{Iteration: -1, Kind: Preempt, Device: 0}, false},
		{"unknown-kind", ChurnEvent{Iteration: 0, Kind: ChurnKind(99), Device: 0}, false},
		{"device-low", ChurnEvent{Iteration: 0, Kind: Preempt, Device: -1}, false},
		{"device-high", ChurnEvent{Iteration: 0, Kind: Readd, Device: 4}, false},
		{"scale-zero", ChurnEvent{Iteration: 0, Kind: SlowNode, Device: 0, Scale: 0}, false},
		{"scale-high", ChurnEvent{Iteration: 0, Kind: LinkDerate, Scale: 1.5}, false},
		{"scale-nan", ChurnEvent{Iteration: 0, Kind: SlowNode, Device: 0, Scale: math.NaN()}, false},
	}
	for _, tc := range cases {
		spec := ChurnSpec{Events: []ChurnEvent{tc.ev}}
		err := spec.Validate(4)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}

	g := buildMLP(t)
	cfg := uniformCfg(t, g, 2, 2, 2, 1, 4)
	x, y := trainData(42)
	p := runtime.InitParams(g, 7)
	p.Opt = runtime.Adam

	// Supervise refuses an invalid schedule and a pre-degraded cluster.
	cl := hardware.DGX1V100(1).Restrict(4)
	bad := ChurnSpec{Events: []ChurnEvent{{Iteration: -1, Kind: Preempt}}}
	if _, err := Supervise(context.Background(), g, cl, cfg, p, x, y, 2, bad, superviseOpts(t)); err == nil {
		t.Error("invalid spec accepted")
	}
	degraded, err := cl.Degrade(hardware.FaultSpec{Devices: []hardware.DeviceFault{{Device: 3, Dead: true}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Supervise(context.Background(), g, degraded, cfg, p, x, y, 2, ChurnSpec{}, superviseOpts(t)); err == nil {
		t.Error("degraded input cluster accepted")
	}
}

// TestChurnKindString covers the label mapping the metrics depend on.
func TestChurnKindString(t *testing.T) {
	want := map[ChurnKind]string{
		Preempt: "preempt", Readd: "readd", SlowNode: "slow-node", LinkDerate: "link-derate",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if ChurnKind(200).String() == "" {
		t.Error("unknown kind has empty string")
	}
}

// TestRecoveryPercentile checks the quantile helper on known data.
func TestRecoveryPercentile(t *testing.T) {
	rep := &ChurnReport{}
	if rep.RecoveryPercentile(0.5) != 0 {
		t.Error("empty recoveries should yield 0")
	}
	rep.Recoveries = []time.Duration{4 * time.Millisecond, 1 * time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond}
	if got := rep.RecoveryPercentile(0.5); got != 2*time.Millisecond {
		t.Errorf("p50 = %v, want 2ms", got)
	}
	if got := rep.RecoveryPercentile(0.99); got != 4*time.Millisecond {
		t.Errorf("p99 = %v, want 4ms", got)
	}
}
