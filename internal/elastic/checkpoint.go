package elastic

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"

	"aceso/internal/runtime"
)

// Checkpoint file layout (all integers little-endian):
//
//	8  bytes  magic "ACESOCKP"
//	4  bytes  format version (uint32)
//	8  bytes  payload length (uint64)
//	N  bytes  payload (the encoded State)
//	8  bytes  FNV-1a 64 checksum of the payload
//
// Payload:
//
//	u64 step · u64 seed (two's complement) · u32 optimizer
//	u32 rank count, then per rank:
//	  u32 rank · u32 tensor count, then per tensor:
//	    u32 op · u32 kind · u32 rowOff · u32 colOff
//	    u32 rows · u32 cols · u32 fullRows · u32 fullCols
//	    rows*cols × u64 (IEEE-754 bits)
//
// The decoder bounds-checks every read and returns typed errors —
// *FormatError, *ChecksumError, *VersionError — never panics, no
// matter what bytes it is fed (FuzzCheckpointLoadNeverPanics pins
// this). Loads of a torn or bit-flipped file therefore fail cleanly
// and the caller falls back to the previous checkpoint.

const (
	// FormatVersion is the current checkpoint format version.
	FormatVersion = 1
	headerLen     = 8 + 4 + 8
	// maxDim caps a single tensor dimension — far beyond any model this
	// runtime executes, small enough that a corrupt length field cannot
	// drive a multi-gigabyte allocation before the checksum is verified.
	maxDim = 1 << 20
)

var magic = [8]byte{'A', 'C', 'E', 'S', 'O', 'C', 'K', 'P'}

// FormatError reports structurally invalid checkpoint bytes.
type FormatError struct {
	Offset int // byte offset the decoder had reached
	Msg    string
}

// Error implements the error interface.
func (e *FormatError) Error() string {
	return fmt.Sprintf("elastic: invalid checkpoint at byte %d: %s", e.Offset, e.Msg)
}

// ChecksumError reports a payload whose checksum does not match —
// bit rot, a torn write, or deliberate tampering.
type ChecksumError struct {
	Want, Got uint64
}

// Error implements the error interface.
func (e *ChecksumError) Error() string {
	return fmt.Sprintf("elastic: checkpoint checksum mismatch: stored %016x, computed %016x", e.Want, e.Got)
}

// VersionError reports a checkpoint written by an unknown format
// version.
type VersionError struct {
	Got uint32
}

// Error implements the error interface.
func (e *VersionError) Error() string {
	return fmt.Sprintf("elastic: unsupported checkpoint version %d (supported: %d)", e.Got, FormatVersion)
}

// Encode serializes the state to the versioned, checksummed format.
func Encode(st *State) []byte {
	payload := make([]byte, 0, encodedSize(st))
	u64 := func(v uint64) { payload = binary.LittleEndian.AppendUint64(payload, v) }
	u32 := func(v uint32) { payload = binary.LittleEndian.AppendUint32(payload, v) }
	u64(uint64(st.Step))
	u64(uint64(st.Seed))
	u32(uint32(st.Opt))
	u32(uint32(len(st.Ranks)))
	for ri := range st.Ranks {
		rs := &st.Ranks[ri]
		u32(uint32(rs.Rank))
		u32(uint32(len(rs.Tensors)))
		for ti := range rs.Tensors {
			sh := &rs.Tensors[ti]
			u32(uint32(sh.Op))
			u32(uint32(sh.Kind))
			u32(uint32(sh.RowOff))
			u32(uint32(sh.ColOff))
			u32(uint32(sh.Rows))
			u32(uint32(sh.Cols))
			u32(uint32(sh.FullRows))
			u32(uint32(sh.FullCols))
			for _, v := range sh.Data {
				u64(math.Float64bits(v))
			}
		}
	}

	out := make([]byte, 0, headerLen+len(payload)+8)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, FormatVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	h := fnv.New64a()
	h.Write(payload)
	out = binary.LittleEndian.AppendUint64(out, h.Sum64())
	return out
}

func encodedSize(st *State) int {
	n := 8 + 8 + 4 + 4
	for ri := range st.Ranks {
		n += 8
		for ti := range st.Ranks[ri].Tensors {
			n += 8*4 + 8*len(st.Ranks[ri].Tensors[ti].Data)
		}
	}
	return n
}

// decoder is a bounds-checked cursor over checkpoint bytes.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) fail(msg string) error { return &FormatError{Offset: d.off, Msg: msg} }

func (d *decoder) u32(what string) (uint32, error) {
	if len(d.b)-d.off < 4 {
		return 0, d.fail("truncated reading " + what)
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64(what string) (uint64, error) {
	if len(d.b)-d.off < 8 {
		return 0, d.fail("truncated reading " + what)
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

// count reads a collection length and sanity-checks it against the
// bytes remaining (each element needs at least minElem bytes), so a
// corrupted count cannot drive an absurd allocation.
func (d *decoder) count(what string, minElem int) (int, error) {
	v, err := d.u32(what)
	if err != nil {
		return 0, err
	}
	n := int(v)
	if n < 0 || n > (len(d.b)-d.off)/minElem {
		return 0, d.fail(fmt.Sprintf("%s %d exceeds remaining payload", what, n))
	}
	return n, nil
}

// Decode parses checkpoint bytes into a State. It returns a typed
// error for any malformed input — truncation, bad magic, unknown
// version, checksum mismatch, or inconsistent structure counts — and
// is panic-free by construction (every read is bounds-checked).
func Decode(data []byte) (*State, error) {
	d := &decoder{b: data}
	if len(data) < headerLen+8 {
		return nil, d.fail("shorter than header")
	}
	for i := range magic {
		if data[i] != magic[i] {
			return nil, d.fail("bad magic")
		}
	}
	d.off = 8
	version, err := d.u32("version")
	if err != nil {
		return nil, err
	}
	if version != FormatVersion {
		return nil, &VersionError{Got: version}
	}
	plen64, err := d.u64("payload length")
	if err != nil {
		return nil, err
	}
	if plen64 != uint64(len(data)-headerLen-8) {
		return nil, d.fail(fmt.Sprintf("payload length %d does not match file size %d", plen64, len(data)))
	}
	payload := data[headerLen : len(data)-8]
	stored := binary.LittleEndian.Uint64(data[len(data)-8:])
	h := fnv.New64a()
	h.Write(payload)
	if got := h.Sum64(); got != stored {
		return nil, &ChecksumError{Want: stored, Got: got}
	}

	d = &decoder{b: payload}
	st := &State{}
	step, err := d.u64("step")
	if err != nil {
		return nil, err
	}
	st.Step = int(int64(step))
	if st.Step < 0 {
		return nil, d.fail(fmt.Sprintf("negative step %d", st.Step))
	}
	seed, err := d.u64("seed")
	if err != nil {
		return nil, err
	}
	st.Seed = int64(seed)
	opt, err := d.u32("optimizer")
	if err != nil {
		return nil, err
	}
	if opt > uint32(runtime.Adam) {
		return nil, d.fail(fmt.Sprintf("unknown optimizer %d", opt))
	}
	st.Opt = runtime.Optimizer(opt)

	nRanks, err := d.count("rank count", 8)
	if err != nil {
		return nil, err
	}
	st.Ranks = make([]RankShard, 0, nRanks)
	for r := 0; r < nRanks; r++ {
		rank, err := d.u32("rank id")
		if err != nil {
			return nil, err
		}
		rs := RankShard{Rank: int(rank)}
		nTensors, err := d.count("tensor count", 8*4)
		if err != nil {
			return nil, err
		}
		rs.Tensors = make([]TensorShard, 0, nTensors)
		for t := 0; t < nTensors; t++ {
			sh, err := d.tensorShard()
			if err != nil {
				return nil, err
			}
			rs.Tensors = append(rs.Tensors, sh)
		}
		st.Ranks = append(st.Ranks, rs)
	}
	if d.off != len(payload) {
		return nil, d.fail(fmt.Sprintf("%d trailing payload bytes", len(payload)-d.off))
	}
	return st, nil
}

func (d *decoder) tensorShard() (TensorShard, error) {
	var sh TensorShard
	fields := []struct {
		what string
		dst  *int
	}{
		{"op", &sh.Op}, {"kind", nil},
		{"row offset", &sh.RowOff}, {"col offset", &sh.ColOff},
		{"rows", &sh.Rows}, {"cols", &sh.Cols},
		{"full rows", &sh.FullRows}, {"full cols", &sh.FullCols},
	}
	for _, f := range fields {
		v, err := d.u32(f.what)
		if err != nil {
			return sh, err
		}
		if f.dst == nil {
			if v >= uint32(numTensorKinds) {
				return sh, d.fail(fmt.Sprintf("unknown tensor kind %d", v))
			}
			sh.Kind = TensorKind(v)
			continue
		}
		if v > maxDim {
			return sh, d.fail(fmt.Sprintf("%s %d exceeds limit %d", f.what, v, maxDim))
		}
		*f.dst = int(v)
	}
	elems := sh.Rows * sh.Cols
	if elems > (len(d.b)-d.off)/8 {
		return sh, d.fail(fmt.Sprintf("shard of %d elems exceeds remaining payload", elems))
	}
	sh.Data = make([]float64, elems)
	for i := range sh.Data {
		sh.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
		d.off += 8
	}
	return sh, nil
}

// Save atomically writes the state to path: encode, write to a unique
// temp file in the same directory, fsync the file, rename, fsync the
// parent directory. A crash mid-save leaves either the old checkpoint
// or the new one — never a torn file (and a torn rename target would
// still be caught by the checksum). The directory fsync is what makes
// the rename itself durable: without it a power cut can roll the
// directory entry back to the old checkpoint even though Save
// returned. A crash between write and rename leaves an orphaned
// `.ckpt-*` temp file behind; SweepTemps clears those on startup.
func Save(path string, st *State) error {
	data := Encode(st)
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("elastic: save checkpoint: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("elastic: save checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("elastic: save checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("elastic: save checkpoint: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("elastic: save checkpoint: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// SweepTemps removes orphaned checkpoint temp files left in dir by a
// crash between Save's write and rename. It returns how many were
// removed. Call it before training starts (Train and Supervise do) —
// it must not run concurrently with an in-flight Save in the same
// directory, or it could unlink a temp file about to be renamed.
func SweepTemps(dir string) (int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, ".ckpt-*"))
	if err != nil {
		return 0, fmt.Errorf("elastic: sweep temps: %w", err)
	}
	removed := 0
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			return removed, fmt.Errorf("elastic: sweep temps: %w", err)
		}
		removed++
	}
	return removed, nil
}

// Load reads and decodes a checkpoint file. All failure modes —
// missing file, truncation, corruption — come back as errors; the
// decoder never panics.
func Load(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("elastic: load checkpoint: %w", err)
	}
	st, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("elastic: load checkpoint %s: %w", path, err)
	}
	return st, nil
}
