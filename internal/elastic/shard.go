// Package elastic is the fault-recovery layer over the numeric
// runtime: versioned checkpoints of the full training state
// (checkpoint.go), a resharder that maps that state between arbitrary
// parallelization plans (this file), and a driver that closes the
// paper's bottleneck-alleviation loop at execution time — train,
// lose a device mid-iteration, core.Replan on the degraded cluster,
// reshard the last checkpoint onto the new plan, resume (elastic.go).
//
// The reshard contract is exactness: sharding is pure partitioning
// (every scalar of every tensor lives in exactly one shard), so
// A→assemble→B→assemble round trips are bitwise identity, and a
// fault-resume run continues the identical training trajectory the
// uninterrupted run would have followed.
package elastic

import (
	"fmt"

	"aceso/internal/config"
	"aceso/internal/model"
	"aceso/internal/runtime"
	"aceso/internal/tensor"
)

// TensorKind identifies which of a parameter's tensors a shard slices:
// the weight/bias themselves or one of Adam's four moment buffers.
type TensorKind uint8

// The tensor kinds a checkpoint can carry, mirroring runtime.Params.
const (
	KindW TensorKind = iota
	KindB
	KindMW
	KindVW
	KindMB
	KindVB
	numTensorKinds
)

var kindNames = [numTensorKinds]string{"W", "B", "MW", "VW", "MB", "VB"}

// String implements fmt.Stringer.
func (k TensorKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("TensorKind(%d)", int(k))
}

// TensorShard is a rectangular slice of one parameter tensor as it
// lives on one device rank: the sub-matrix [RowOff, RowOff+Rows) ×
// [ColOff, ColOff+Cols) of the FullRows×FullCols tensor of op Op.
type TensorShard struct {
	Op                 int
	Kind               TensorKind
	RowOff, ColOff     int
	Rows, Cols         int
	FullRows, FullCols int
	Data               []float64 // row-major, len == Rows*Cols
}

// elems returns the scalar count of the shard.
func (s *TensorShard) elems() int { return s.Rows * s.Cols }

// RankShard is the checkpointed state owned by one device rank.
type RankShard struct {
	Rank    int
	Tensors []TensorShard
}

// State is a complete sharded training state: runtime.Params cut along
// a specific config's tensor-parallel boundaries, plus the scalar
// state (optimizer step, RNG seed cursor, optimizer choice) that a
// resume needs to continue the same trajectory.
type State struct {
	Step  int
	Seed  int64
	Opt   runtime.Optimizer
	Ranks []RankShard
}

// sliceKind captures how one op's tensors are cut across its tp group.
type sliceKind int

const (
	sliceNone sliceKind = iota // full tensors on the stage's first rank
	sliceCols                  // column-parallel: W and B column-cut
	sliceRows                  // row-parallel: W row-cut, B on rank 0
)

// opSlicing decides the shard layout for op j under setting set.
func opSlicing(g *model.Graph, j int, set *config.OpSetting) sliceKind {
	if g.Ops[j].Kind != model.KindMatMul || set.TP <= 1 {
		return sliceNone
	}
	if g.Ops[j].Dims[set.Dim].Name == "col" {
		return sliceCols
	}
	return sliceRows
}

// subMat copies the rectangle [r0, r0+rows) × [c0, c0+cols) of m.
func subMat(m *tensor.Mat, r0, c0, rows, cols int) []float64 {
	out := make([]float64, rows*cols)
	for i := 0; i < rows; i++ {
		copy(out[i*cols:(i+1)*cols], m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+cols])
	}
	return out
}

// ShardState cuts the full training state p along cfg's parallelization
// boundaries into per-rank shards. Weights replicated across a
// data-parallel group are checkpointed once, on the group's first
// replica (they are identical by construction — the runtime applies
// the same summed update on every replica). The shard data is copied:
// the returned State is independent of p.
func ShardState(g *model.Graph, cfg *config.Config, p *runtime.Params) (*State, error) {
	p.EnsureOptState()
	st := &State{Step: p.Step, Seed: p.Seed, Opt: p.Opt}
	byRank := map[int]*RankShard{}
	rank := func(r int) *RankShard {
		rs, ok := byRank[r]
		if !ok {
			rs = &RankShard{Rank: r}
			byRank[r] = rs
		}
		return rs
	}

	add := func(r int, op int, kind TensorKind, m *tensor.Mat, r0, c0, rows, cols int) {
		rank(r).Tensors = append(rank(r).Tensors, TensorShard{
			Op: op, Kind: kind, RowOff: r0, ColOff: c0, Rows: rows, Cols: cols,
			FullRows: m.Rows, FullCols: m.Cols,
			Data: subMat(m, r0, c0, rows, cols),
		})
	}
	type kindMat struct {
		kind TensorKind
		m    *tensor.Mat
	}
	// wLike/bLike pair each primary tensor with its Adam moments so the
	// moments always follow their tensor's slicing.
	wLike := func(op int) []kindMat {
		out := []kindMat{{KindW, p.W[op]}}
		if p.MW != nil {
			out = append(out, kindMat{KindMW, p.MW[op]}, kindMat{KindVW, p.VW[op]})
		}
		return out
	}
	bLike := func(op int) []kindMat {
		out := []kindMat{{KindB, p.B[op]}}
		if p.MB != nil {
			out = append(out, kindMat{KindMB, p.MB[op]}, kindMat{KindVB, p.VB[op]})
		}
		return out
	}

	for si := range cfg.Stages {
		stage := &cfg.Stages[si]
		firstDev := cfg.FirstDev(si)
		for j := stage.Start; j < stage.End; j++ {
			w := p.W[j]
			if w == nil {
				continue // op carries no parameters
			}
			set := stage.Setting(j)
			b := p.B[j]
			switch opSlicing(g, j, set) {
			case sliceCols:
				if w.Cols%set.TP != 0 || b.Cols%set.TP != 0 {
					return nil, fmt.Errorf("elastic: op %d cols %d not divisible by tp %d", j, w.Cols, set.TP)
				}
				cs := w.Cols / set.TP
				for t := 0; t < set.TP; t++ {
					for _, kv := range wLike(j) {
						add(firstDev+t, j, kv.kind, kv.m, 0, t*cs, w.Rows, cs)
					}
					for _, kv := range bLike(j) {
						add(firstDev+t, j, kv.kind, kv.m, 0, t*cs, 1, cs)
					}
				}
			case sliceRows:
				if w.Rows%set.TP != 0 {
					return nil, fmt.Errorf("elastic: op %d rows %d not divisible by tp %d", j, w.Rows, set.TP)
				}
				rs := w.Rows / set.TP
				for t := 0; t < set.TP; t++ {
					for _, kv := range wLike(j) {
						add(firstDev+t, j, kv.kind, kv.m, t*rs, 0, rs, w.Cols)
					}
				}
				// Row-parallel bias is applied after the all-reduce: it is
				// not sharded; the tp group's first rank owns it whole.
				for _, kv := range bLike(j) {
					add(firstDev, j, kv.kind, kv.m, 0, 0, 1, b.Cols)
				}
			default:
				for _, kv := range wLike(j) {
					add(firstDev, j, kv.kind, kv.m, 0, 0, w.Rows, w.Cols)
				}
				for _, kv := range bLike(j) {
					add(firstDev, j, kv.kind, kv.m, 0, 0, 1, b.Cols)
				}
			}
		}
	}

	// Deterministic rank order (map iteration is not).
	for r := 0; r < cfg.TotalDevices(); r++ {
		if rs, ok := byRank[r]; ok {
			st.Ranks = append(st.Ranks, *rs)
		}
	}
	return st, nil
}

// tensorKey identifies one full tensor across shards.
type tensorKey struct {
	op   int
	kind TensorKind
}

// AssembleState reconstructs the full runtime.Params from a sharded
// State, verifying exact coverage: every scalar of every tensor must be
// written by exactly one shard — a gap or an overlap is a corruption
// (or a resharder bug) reported as an error, never silently absorbed.
// The caller attaches Arch for transformer graphs.
func AssembleState(st *State) (*runtime.Params, error) {
	fulls := map[tensorKey]*tensor.Mat{}
	covered := map[tensorKey][]uint8{}
	for ri := range st.Ranks {
		for ti := range st.Ranks[ri].Tensors {
			sh := &st.Ranks[ri].Tensors[ti]
			if sh.Kind >= numTensorKinds {
				return nil, fmt.Errorf("elastic: op %d has unknown tensor kind %d", sh.Op, sh.Kind)
			}
			if sh.Rows < 0 || sh.Cols < 0 || sh.RowOff < 0 || sh.ColOff < 0 ||
				sh.RowOff+sh.Rows > sh.FullRows || sh.ColOff+sh.Cols > sh.FullCols {
				return nil, fmt.Errorf("elastic: op %d %v shard %dx%d@(%d,%d) outside full %dx%d",
					sh.Op, sh.Kind, sh.Rows, sh.Cols, sh.RowOff, sh.ColOff, sh.FullRows, sh.FullCols)
			}
			if len(sh.Data) != sh.elems() {
				return nil, fmt.Errorf("elastic: op %d %v shard has %d elems, want %d",
					sh.Op, sh.Kind, len(sh.Data), sh.elems())
			}
			key := tensorKey{sh.Op, sh.Kind}
			full, ok := fulls[key]
			if !ok {
				full = tensor.New(sh.FullRows, sh.FullCols)
				fulls[key] = full
				covered[key] = make([]uint8, sh.FullRows*sh.FullCols)
			}
			if full.Rows != sh.FullRows || full.Cols != sh.FullCols {
				return nil, fmt.Errorf("elastic: op %d %v shards disagree on full shape (%dx%d vs %dx%d)",
					sh.Op, sh.Kind, full.Rows, full.Cols, sh.FullRows, sh.FullCols)
			}
			cov := covered[key]
			for i := 0; i < sh.Rows; i++ {
				for c := 0; c < sh.Cols; c++ {
					idx := (sh.RowOff+i)*full.Cols + sh.ColOff + c
					if cov[idx] != 0 {
						return nil, fmt.Errorf("elastic: op %d %v element (%d,%d) covered twice",
							sh.Op, sh.Kind, sh.RowOff+i, sh.ColOff+c)
					}
					cov[idx] = 1
					full.Data[idx] = sh.Data[i*sh.Cols+c]
				}
			}
		}
	}
	for key, cov := range covered {
		for idx, c := range cov {
			if c == 0 {
				return nil, fmt.Errorf("elastic: op %d %v element %d uncovered (gap in shards)",
					key.op, key.kind, idx)
			}
		}
	}

	p := &runtime.Params{
		W: map[int]*tensor.Mat{}, B: map[int]*tensor.Mat{},
		Opt: st.Opt, Step: st.Step, Seed: st.Seed,
	}
	hasMoments := false
	for key := range fulls {
		if key.kind != KindW && key.kind != KindB {
			hasMoments = true
			break
		}
	}
	if hasMoments {
		p.MW, p.VW = map[int]*tensor.Mat{}, map[int]*tensor.Mat{}
		p.MB, p.VB = map[int]*tensor.Mat{}, map[int]*tensor.Mat{}
	}
	for key, full := range fulls {
		switch key.kind {
		case KindW:
			p.W[key.op] = full
		case KindB:
			p.B[key.op] = full
		case KindMW:
			p.MW[key.op] = full
		case KindVW:
			p.VW[key.op] = full
		case KindMB:
			p.MB[key.op] = full
		case KindVB:
			p.VB[key.op] = full
		}
	}
	return p, nil
}

// Reshard maps a state checkpointed under one config onto config `to`:
// assemble the full tensors, then cut them along the new plan's
// boundaries. Because both halves are pure partitioning over float64
// storage, any A→B→A round trip is bitwise identity.
func Reshard(g *model.Graph, to *config.Config, st *State) (*State, error) {
	p, err := AssembleState(st)
	if err != nil {
		return nil, fmt.Errorf("elastic: reshard assemble: %w", err)
	}
	out, err := ShardState(g, to, p)
	if err != nil {
		return nil, fmt.Errorf("elastic: reshard cut: %w", err)
	}
	return out, nil
}

// BytesMoved estimates the data movement a reshard from `from` to `to`
// implies: for every pair of overlapping shard rectangles of the same
// tensor, the overlap must travel unless source and destination are the
// same device. mapRank translates a state's logical ranks to physical
// devices (e.g. hardware.Cluster.PhysOf for a degraded cluster, where
// logical rank r of the new plan is a different physical GPU than
// logical rank r of the old one); nil means identity on both sides.
func BytesMoved(from, to *State, mapFrom, mapTo func(int) int) int64 {
	ident := func(r int) int { return r }
	if mapFrom == nil {
		mapFrom = ident
	}
	if mapTo == nil {
		mapTo = ident
	}
	type span struct {
		rank                       int
		rowOff, colOff, rows, cols int
	}
	src := map[tensorKey][]span{}
	for ri := range from.Ranks {
		for ti := range from.Ranks[ri].Tensors {
			sh := &from.Ranks[ri].Tensors[ti]
			src[tensorKey{sh.Op, sh.Kind}] = append(src[tensorKey{sh.Op, sh.Kind}],
				span{from.Ranks[ri].Rank, sh.RowOff, sh.ColOff, sh.Rows, sh.Cols})
		}
	}
	var bytes int64
	for ri := range to.Ranks {
		for ti := range to.Ranks[ri].Tensors {
			sh := &to.Ranks[ri].Tensors[ti]
			dst := mapTo(to.Ranks[ri].Rank)
			for _, s := range src[tensorKey{sh.Op, sh.Kind}] {
				if mapFrom(s.rank) == dst {
					continue
				}
				rows := overlap1D(s.rowOff, s.rows, sh.RowOff, sh.Rows)
				cols := overlap1D(s.colOff, s.cols, sh.ColOff, sh.Cols)
				bytes += int64(rows) * int64(cols) * 8
			}
		}
	}
	return bytes
}

// overlap1D returns the length of the intersection of [aOff, aOff+aLen)
// and [bOff, bOff+bLen).
func overlap1D(aOff, aLen, bOff, bLen int) int {
	lo := aOff
	if bOff > lo {
		lo = bOff
	}
	hi := aOff + aLen
	if bOff+bLen < hi {
		hi = bOff + bLen
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}
